package gstored

import (
	"fmt"
	"sort"
	"testing"

	"gstored/internal/store"
)

// centralizedAnswer evaluates a benchmark query on a single store.
func centralizedAnswer(t *testing.T, ds *Dataset, sparqlText string) []string {
	t.Helper()
	st := store.FromGraph(ds.Graph)
	q, err := Open(ds.Graph, Config{Sites: 1})
	if err != nil {
		t.Fatal(err)
	}
	qg, err := q.Parse(sparqlText)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, b := range st.Match(qg) {
		keys = append(keys, fmt.Sprint(b.Vars))
	}
	sort.Strings(keys)
	return keys
}

func distributedAnswer(t *testing.T, db *DB, sparqlText string, mode Mode) []string {
	t.Helper()
	res, err := db.QueryMode(sparqlText, mode)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		keys = append(keys, fmt.Sprint([]TermID(r)))
	}
	sort.Strings(keys)
	return keys
}

// TestIntegrationAllWorkloads: for every benchmark query of every dataset,
// the full distributed system over every partitioning strategy returns the
// centralized answer — the end-to-end statement of the paper's
// partitioning-tolerance and correctness claims.
func TestIntegrationAllWorkloads(t *testing.T) {
	datasets := []*Dataset{
		GenerateLUBM(3),
		GenerateYAGO(1),
		GenerateBTC(1),
	}
	for _, ds := range datasets {
		for _, strategy := range []string{"hash", "semantic-hash", "metis"} {
			db, err := Open(ds.Graph, Config{Sites: 6, Strategy: strategy})
			if err != nil {
				t.Fatalf("%s/%s: %v", ds.Name, strategy, err)
			}
			for _, bq := range ds.Queries {
				want := centralizedAnswer(t, ds, bq.SPARQL)
				got := distributedAnswer(t, db, bq.SPARQL, ModeFull)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Errorf("%s/%s/%s: %d rows, want %d",
						ds.Name, strategy, bq.Name, len(got), len(want))
				}
			}
		}
	}
}

// TestIntegrationModesAgreeOnYAGOAndBTC: the four ablation modes agree on
// the selective queries of the two heterogeneous datasets (the expensive
// unselective ones are covered by the engine's property tests).
func TestIntegrationModesAgreeOnYAGOAndBTC(t *testing.T) {
	for _, ds := range []*Dataset{GenerateYAGO(1), GenerateBTC(1)} {
		db, err := Open(ds.Graph, Config{Sites: 6})
		if err != nil {
			t.Fatal(err)
		}
		for _, bq := range ds.Queries {
			if !bq.Selective {
				continue
			}
			want := distributedAnswer(t, db, bq.SPARQL, ModeFull)
			for _, mode := range []Mode{ModeBasic, ModeLA, ModeLO} {
				got := distributedAnswer(t, db, bq.SPARQL, mode)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Errorf("%s/%s: mode %v disagrees with Full", ds.Name, bq.Name, mode)
				}
			}
		}
	}
}

// TestIntegrationSiteCounts: correctness is independent of the number of
// sites, including the degenerate single-site deployment.
func TestIntegrationSiteCounts(t *testing.T) {
	ds := GenerateLUBM(2)
	bq, err := ds.Query("LQ1")
	if err != nil {
		t.Fatal(err)
	}
	want := centralizedAnswer(t, ds, bq.SPARQL)
	for _, sites := range []int{1, 2, 3, 7, 24} {
		db, err := Open(ds.Graph, Config{Sites: sites})
		if err != nil {
			t.Fatalf("sites=%d: %v", sites, err)
		}
		got := distributedAnswer(t, db, bq.SPARQL, ModeFull)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("sites=%d: %d rows, want %d", sites, len(got), len(want))
		}
	}
}
