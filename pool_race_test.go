package gstored

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"gstored/internal/partial"
)

// These tests exist to run under -race (CI does): they drive the
// bounded evaluation pool through generation swaps, early-LIMIT
// cancellation, and first-error propagation, and check that no pool
// worker outlives its query.

const ubPrefix = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"

// checkGoroutines asserts the goroutine count settles back to the
// pre-test baseline (plus slack for runtime helpers): pool workers are
// per-query and must all exit with it.
func checkGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d now vs %d baseline\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPoolQueriesDuringSwaps runs parallel queries (ordered and
// streaming) while Update and Repartition swap the generation under
// them. Every query must answer from one coherent generation: no
// errors, no torn reads, and the pool must not leak workers across
// swaps.
func TestPoolQueriesDuringSwaps(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ds := GenerateLUBM(1)
	db, err := Open(ds.Graph, Config{Sites: 4, EvalWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	pathQ, err := db.Parse(fmt.Sprintf(
		`SELECT ?x ?z WHERE { ?x <%sadvisor> ?y . ?y <%sworksFor> ?z }`, ubPrefix, ubPrefix))
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.QueryGraph(pathQ)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("fixture query has no rows")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	report := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(ordered bool) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if ordered {
					res, err := db.QueryGraph(pathQ)
					if err != nil {
						report(err)
						return
					}
					if len(res.Rows) != len(want.Rows) {
						report(fmt.Errorf("ordered rows = %d, want %d", len(res.Rows), len(want.Rows)))
						return
					}
				} else {
					n := 0
					if _, err := db.QueryGraphStreamContext(context.Background(), pathQ,
						func(Row) bool { n++; return true }); err != nil {
						report(err)
						return
					}
					if n != len(want.Rows) {
						report(fmt.Errorf("streamed rows = %d, want %d", n, len(want.Rows)))
						return
					}
				}
			}
		}(i%2 == 0)
	}

	// Writer: alternate updates (epoch bumps through Apply + stats
	// rebuild) and repartitions (full cluster rebuild + swap).
	for i := 0; i < 6; i++ {
		ins := fmt.Sprintf(`INSERT DATA { <http://ex/swap%d> <http://ex/tag> <http://ex/t> }`, i)
		if _, err := db.Update(context.Background(), ins); err != nil {
			t.Fatal(err)
		}
		k := 3 + i%2
		plan, err := db.PlanPartition("hash", k)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Repartition(plan); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	checkGoroutines(t, baseline)
}

// TestPoolEarlyLimitCancel streams a small LIMIT off a large answer
// with a wide pool, repeatedly: the sink's cancellation must stop the
// in-flight chunk tasks and every worker must exit.
func TestPoolEarlyLimitCancel(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ds := GenerateLUBM(1)
	db, err := Open(ds.Graph, Config{Sites: 4, EvalWorkers: 8})
	if err != nil {
		t.Fatal(err)
	}
	q, err := db.Parse(fmt.Sprintf(
		`SELECT ?x ?y WHERE { ?x <%sname> ?y } LIMIT 3`, ubPrefix))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		n := 0
		res, err := db.QueryGraphStreamContext(context.Background(), q, func(Row) bool {
			n++
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if n != 3 {
			t.Fatalf("iteration %d: streamed %d rows, want 3", i, n)
		}
		if !res.Stats.EarlyStop {
			t.Fatalf("iteration %d: LIMIT did not cancel early", i)
		}
	}
	checkGoroutines(t, baseline)
}

// TestPoolFirstErrorWins caps partial matches at 1 so several chunk
// tasks fail concurrently: the surfaced error must be the real
// ErrTooManyMatches, not a cascade-cancellation artifact, and the
// failed query must not strand workers.
func TestPoolFirstErrorWins(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ds := GenerateLUBM(1)
	db, err := Open(ds.Graph, Config{Sites: 4, EvalWorkers: 8, MaxPartialMatches: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Three edges with no shared center: the star fast path cannot take
	// this, so it runs distributed partial evaluation (54 partials on
	// this fixture — far over the cap on every site).
	text := fmt.Sprintf(
		`SELECT ?x ?w WHERE { ?x <%sadvisor> ?y . ?y <%sworksFor> ?z . ?z <%ssubOrganizationOf> ?w }`,
		ubPrefix, ubPrefix, ubPrefix)
	for i := 0; i < 10; i++ {
		_, err := db.Query(text)
		if err == nil {
			t.Fatal("MaxPartialMatches=1 did not fail the crossing query")
		}
		var tm partial.ErrTooManyMatches
		if !errors.As(err, &tm) {
			t.Fatalf("error is %v, want partial.ErrTooManyMatches", err)
		}
		if errors.Is(err, context.Canceled) {
			t.Fatalf("real error was masked by cancellation: %v", err)
		}
	}
	checkGoroutines(t, baseline)
}
