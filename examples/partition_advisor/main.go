// Partition advisor demonstrates Section VII and the workload-aware
// loop built on top of it.
//
// Act 1 evaluates the paper's cost model CostPartitioning(F) = E_F(V) ×
// max|E_i ∪ E_i^c| for the three strategies on a LUBM-style graph and
// shows the choice reflected in actual query behaviour.
//
// Act 2 closes the feedback loop: a skewed query mix (80% complex
// cross-fragment joins) is fed into a query log, the workload-weighted
// cost model reweights crossing edges by how often the traffic actually
// traverses them, and the advisor's recommendation — different from the
// data-only pick — is applied with DB.Repartition. Serving the same mix
// on both picks shows the workload-aware one generating far less
// partial-match crossing traffic, which is the whole point.
package main

import (
	"fmt"
	"log"

	"gstored"
)

func main() {
	ds := gstored.GenerateLUBM(8)
	fmt.Printf("LUBM-style graph: %d triples\n\n", ds.Graph.Len())

	fmt.Println("=== Act 1: the data-only Section VII cost model ===")
	fmt.Printf("%-14s %12s %10s %10s %10s\n", "strategy", "cost", "E_F(V)", "maxEdges", "crossing")
	best, bestCost := "", 0.0
	for _, name := range []string{"hash", "semantic-hash", "metis"} {
		c, err := gstored.PartitionCost(ds.Graph, name, 12)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %12.1f %10.2f %10d %10d\n", name, c.Cost, c.EV, c.MaxFragmentEdges, c.NumCrossing)
		if best == "" || c.Cost < bestCost {
			best, bestCost = name, c.Cost
		}
	}
	fmt.Printf("\nSection VII selection: %s\n\n", best)

	// Show the consequence on a cross-university query (LQ6).
	bq, err := ds.Query("LQ6")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %12s %14s %14s\n", "strategy", "matches", "partial match", "PM traffic KB")
	for _, name := range []string{"hash", "semantic-hash", "metis"} {
		db, err := gstored.Open(ds.Graph, gstored.Config{Sites: 12, Strategy: name})
		if err != nil {
			log.Fatal(err)
		}
		res, err := db.Query(bq.SPARQL)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Stats
		fmt.Printf("%-14s %12d %14d %14.2f\n",
			name, s.NumMatches, s.NumPartialMatches,
			float64(s.LECShipment+s.AssemblyShipment)/1024)
	}
	fmt.Println("\nfewer crossing edges ⇒ fewer partial matches ⇒ less partial-match traffic —")
	fmt.Println("exactly what the Section VII cost model predicts.")

	fmt.Println("\n=== Act 2: the workload changes the verdict ===")
	// A skewed serving mix: 80% of the traffic is LQ1/LQ7-style complex
	// cross-fragment joins; stars (LQ2, LQ4) and the selective LQ6 make
	// up the rest. The data-only model never sees this skew.
	mix := map[string]int{"LQ1": 40, "LQ7": 40, "LQ6": 10, "LQ2": 5, "LQ4": 5}
	fmt.Printf("query mix (per 100 requests): %v\n\n", mix)

	db, err := gstored.Open(ds.Graph, gstored.Config{Sites: 12, Strategy: "hash"})
	if err != nil {
		log.Fatal(err)
	}

	// In production `gstored serve` feeds this log on every answered
	// query; here we replay the mix by hand.
	qlog := gstored.NewQueryLog(0)
	for name, n := range mix {
		bq, err := ds.Query(name)
		if err != nil {
			log.Fatal(err)
		}
		q, err := db.ParseReadOnly(bq.SPARQL)
		if err != nil {
			log.Fatal(err)
		}
		res, err := db.QueryGraph(q)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < n; i++ {
			qlog.Observe(name, bq.SPARQL, q, res.Stats)
		}
	}

	rec, err := db.Advise(qlog.Snapshot().Workload(0), 4, 8, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %4s %14s %14s\n", "strategy", "k", "workload cost", "data cost")
	for _, c := range rec.Candidates {
		fmt.Printf("%-14s %4d %14.1f %14.1f\n", c.Strategy, c.K, c.WorkloadCost.Cost, c.DataCost.Cost)
	}
	fmt.Printf("\nworkload-weighted recommendation: %s, k=%d\n", rec.Strategy, rec.K)
	fmt.Printf("data-only §VII selection:         %s, k=%d\n", rec.DataStrategy, rec.DataK)
	if !rec.Differs() {
		fmt.Println("(the workload agrees with the data-only model on this mix)")
		return
	}

	// Apply each pick with an online hot-swap and serve the mix on it.
	fmt.Printf("\n%-16s %-14s %4s %14s %14s %12s\n", "pick", "strategy", "k", "partial match", "crossing", "traffic KB")
	for _, cfg := range []struct {
		label, strategy string
		k               int
	}{
		{"data-only", rec.DataStrategy, rec.DataK},
		{"workload-aware", rec.Strategy, rec.K},
	} {
		a, err := db.PlanPartition(cfg.strategy, cfg.k)
		if err != nil {
			log.Fatal(err)
		}
		if err := db.Repartition(a); err != nil {
			log.Fatal(err)
		}
		var pms, crossing int
		var kb float64
		for name, n := range mix {
			bq, err := ds.Query(name)
			if err != nil {
				log.Fatal(err)
			}
			res, err := db.Query(bq.SPARQL)
			if err != nil {
				log.Fatal(err)
			}
			pms += n * res.Stats.NumPartialMatches
			crossing += n * res.Stats.NumCrossingMatches
			kb += float64(n) * float64(res.Stats.LECShipment+res.Stats.AssemblyShipment) / 1024
		}
		fmt.Printf("%-16s %-14s %4d %14d %14d %12.1f\n", cfg.label, cfg.strategy, cfg.k, pms, crossing, kb)
	}
	fmt.Println("\nthe data-only model optimizes for edges nobody queries; weighting the")
	fmt.Println("crossing edges by observed traversal frequency moves the hot joins inside")
	fmt.Println("fragments, and the partial-match traffic of the real mix collapses.")
}
