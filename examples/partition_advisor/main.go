// Partition advisor demonstrates Section VII: evaluate the cost model
// CostPartitioning(F) = E_F(V) × max|E_i ∪ E_i^c| for the three strategies
// on a LUBM-style graph, pick the cheapest, and show that the choice is
// reflected in actual query behaviour (data shipment and LEC feature
// traffic).
package main

import (
	"fmt"
	"log"
)

import "gstored"

func main() {
	ds := gstored.GenerateLUBM(8)
	fmt.Printf("LUBM-style graph: %d triples\n\n", ds.Graph.Len())

	fmt.Printf("%-14s %12s %10s %10s %10s\n", "strategy", "cost", "E_F(V)", "maxEdges", "crossing")
	best, bestCost := "", 0.0
	for _, name := range []string{"hash", "semantic-hash", "metis"} {
		c, err := gstored.PartitionCost(ds.Graph, name, 12)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %12.1f %10.2f %10d %10d\n", name, c.Cost, c.EV, c.MaxFragmentEdges, c.NumCrossing)
		if best == "" || c.Cost < bestCost {
			best, bestCost = name, c.Cost
		}
	}
	fmt.Printf("\nSection VII selection: %s\n\n", best)

	// Show the consequence on a cross-university query (LQ6).
	bq, err := ds.Query("LQ6")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %12s %14s %14s\n", "strategy", "matches", "partial match", "PM traffic KB")
	for _, name := range []string{"hash", "semantic-hash", "metis"} {
		db, err := gstored.Open(ds.Graph, gstored.Config{Sites: 12, Strategy: name})
		if err != nil {
			log.Fatal(err)
		}
		res, err := db.Query(bq.SPARQL)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Stats
		fmt.Printf("%-14s %12d %14d %14.2f\n",
			name, s.NumMatches, s.NumPartialMatches,
			float64(s.LECShipment+s.AssemblyShipment)/1024)
	}
	fmt.Println("\nfewer crossing edges ⇒ fewer partial matches ⇒ less partial-match traffic —")
	fmt.Println("exactly what the Section VII cost model predicts.")
}
