// Bioportal models the paper's motivating scenario (Section I): a
// federation like the European Bioinformatics Institute's RDF platform,
// where datasets from different publishers are *administratively*
// partitioned — the system does not control placement, so it must be
// partitioning-tolerant.
//
// Three publishers (proteins, pathways, compounds) each publish their own
// RDF under their own domain; cross-references between them become the
// crossing edges. Semantic-hash partitioning recovers the administrative
// boundaries from the URI hierarchies, and the engine answers a query that
// must join data across all three publishers.
package main

import (
	"fmt"
	"log"
	"strings"

	"gstored"
)

const (
	proteins  = "http://proteins.example.org/"
	pathways  = "http://pathways.example.org/"
	compounds = "http://compounds.example.org/"
)

func main() {
	g := gstored.NewGraph()
	addI := func(s, p, o string) { g.Add(gstored.IRI(s), gstored.IRI(p), gstored.IRI(o)) }
	addL := func(s, p, l string) { g.Add(gstored.IRI(s), gstored.IRI(p), gstored.Literal(l)) }

	// Publisher 1: proteins with names, each catalyzing reactions that
	// live in the pathway dataset (cross-publisher references).
	for i := 0; i < 40; i++ {
		prot := fmt.Sprintf("%sP%05d", proteins, i)
		addL(prot, proteins+"name", fmt.Sprintf("protein %d", i))
		addI(prot, proteins+"catalyzes", fmt.Sprintf("%sreaction%d", pathways, i%15))
	}
	// Publisher 2: pathways containing reactions.
	for i := 0; i < 15; i++ {
		rx := fmt.Sprintf("%sreaction%d", pathways, i)
		pw := fmt.Sprintf("%spathway%d", pathways, i%4)
		addI(rx, pathways+"partOf", pw)
		addL(pw, pathways+"title", fmt.Sprintf("pathway %d", i%4))
		// Reactions consume compounds from the third publisher.
		addI(rx, pathways+"consumes", fmt.Sprintf("%sC%03d", compounds, i%8))
	}
	// Publisher 3: compounds.
	for i := 0; i < 8; i++ {
		c := fmt.Sprintf("%sC%03d", compounds, i)
		addL(c, compounds+"formula", fmt.Sprintf("C%dH%dO%d", i+1, 2*i+2, i%3+1))
	}

	// The administrative split: publishers' URI hierarchies. Semantic hash
	// recovers it; the engine tolerates whatever partitioning exists.
	db, err := gstored.Open(g, gstored.Config{Sites: 3, Strategy: "semantic-hash"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("federated %d triples from 3 publishers over %d sites (%s)\n",
		g.Len(), db.NumSites(), db.StrategyName)

	// Which proteins catalyze a reaction in pathway 2, and what compound
	// does that reaction consume? Joins all three publishers.
	res, err := db.Query(`
PREFIX prot: <` + proteins + `>
PREFIX pw:   <` + pathways + `>
PREFIX cmp:  <` + compounds + `>
SELECT ?name ?formula WHERE {
  ?p prot:name ?name .
  ?p prot:catalyzes ?rx .
  ?rx pw:partOf <` + pathways + `pathway2> .
  ?rx pw:consumes ?c .
  ?c cmp:formula ?formula .
}`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range db.Rows(res) {
		fmt.Println(strings.Join(row, "\t"))
	}
	s := res.Stats
	fmt.Printf("\ncross-publisher joins: %d crossing matches assembled from %d partial matches; %.1f KB shipped\n",
		s.NumCrossingMatches, s.NumPartialMatches, float64(s.TotalShipment)/1024)
}
