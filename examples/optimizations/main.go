// Optimizations walks through the paper's Fig. 9 ablation on one complex
// query: the same query evaluated under gStoreD-Basic, -LA, -LO and the
// full system, printing how each optimization changes the per-stage
// numbers — LA cuts join attempts, LO prunes partial matches before they
// are shipped, and the candidate vectors of the full system stop false
// positives from ever being generated.
package main

import (
	"fmt"
	"log"

	"gstored"
)

func main() {
	ds := gstored.GenerateLUBM(8)
	db, err := gstored.Open(ds.Graph, gstored.Config{Sites: 12})
	if err != nil {
		log.Fatal(err)
	}
	bq, err := ds.Query("LQ1") // the advisor/course triangle
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %s over %d triples, %d sites\n\n", bq.Name, ds.Graph.Len(), db.NumSites())
	fmt.Printf("%-14s %9s %8s %9s %9s %12s %9s %8s\n",
		"mode", "total ms", "LPMs", "retained", "features", "joinAttempts", "ship KB", "matches")

	modes := []gstored.Mode{gstored.ModeBasic, gstored.ModeLA, gstored.ModeLO, gstored.ModeFull}
	for _, mode := range modes {
		res, err := db.QueryMode(bq.SPARQL, mode)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Stats
		fmt.Printf("%-14s %9.1f %8d %9d %9d %12d %9.1f %8d\n",
			s.Mode,
			float64(s.TotalTime.Microseconds())/1000,
			s.NumPartialMatches,
			s.NumRetainedPartialMatches,
			s.NumLECFeatures,
			s.JoinAttempts,
			float64(s.TotalShipment)/1024,
			s.NumMatches)
	}
	fmt.Println(`
reading the table:
  Basic ships every partial match and joins them pairwise (the [18] framework);
  LA    groups by LECSign and joins through a crossing-edge index (fewer attempts);
  LO    additionally ships LEC features first and prunes matches that cannot
        contribute to any complete match (Theorem 4);
  full  additionally exchanges candidate bit vectors so false-positive partial
        matches are never generated at all (Section VI).`)
}
