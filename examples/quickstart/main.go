// Quickstart: build a small RDF graph by hand — the paper's Section I
// example about philosophers — distribute it over three sites, and run the
// paper's example query ("all people influencing Crispin Wright and their
// interests") through the full gStoreD pipeline.
package main

import (
	"fmt"
	"log"
	"strings"

	"gstored"
)

func main() {
	g := gstored.NewGraph()
	ns := "http://example.org/"
	iri := func(s string) gstored.Term { return gstored.IRI(ns + s) }

	add := func(s string, p string, o gstored.Term) {
		g.Add(iri(s), iri(p), o)
	}
	// The data of the paper's Fig. 1, slightly simplified.
	add("CrispinWright", "name", gstored.LangLiteral("Crispin Wright", "en"))
	add("CrispinWright", "influencedBy", iri("MichaelDummett"))
	add("CrispinWright", "influencedBy", iri("LudwigWittgenstein"))
	add("MichaelDummett", "mainInterest", iri("Metaphysics"))
	add("MichaelDummett", "mainInterest", iri("PhilosophyOfLanguage"))
	add("LudwigWittgenstein", "mainInterest", iri("Logic"))
	add("Metaphysics", "label", gstored.LangLiteral("Metaphysics", "en"))
	add("PhilosophyOfLanguage", "label", gstored.LangLiteral("Philosophy of language", "en"))
	add("Logic", "label", gstored.LangLiteral("Logic", "en"))

	// Partition over 3 simulated sites, as in the paper's running example.
	db, err := gstored.Open(g, gstored.Config{Sites: 3})
	if err != nil {
		log.Fatal(err)
	}

	res, err := db.Query(`
SELECT ?p2 ?l WHERE {
  ?t <` + ns + `label> ?l .
  ?p1 <` + ns + `influencedBy> ?p2 .
  ?p2 <` + ns + `mainInterest> ?t .
  ?p1 <` + ns + `name> "Crispin Wright"@en .
}`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(strings.Join(db.Columns(res.Query), "\t"))
	for _, row := range db.Rows(res) {
		fmt.Println(strings.Join(row, "\t"))
	}
	s := res.Stats
	fmt.Printf("\n%d matches (%d crossing sites) — %d partial matches computed, %d bytes shipped\n",
		s.NumMatches, s.NumCrossingMatches, s.NumPartialMatches, s.TotalShipment)
}
