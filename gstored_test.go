package gstored

import (
	"bytes"
	"strings"
	"testing"
)

func TestOpenAndQueryQuickstart(t *testing.T) {
	g := NewGraph()
	g.Add(IRI("http://ex/alice"), IRI("http://ex/knows"), IRI("http://ex/bob"))
	g.Add(IRI("http://ex/bob"), IRI("http://ex/knows"), IRI("http://ex/carol"))
	g.Add(IRI("http://ex/carol"), IRI("http://ex/name"), LangLiteral("Carol", "en"))

	db, err := Open(g, Config{Sites: 3})
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSites() != 3 {
		t.Errorf("sites = %d", db.NumSites())
	}
	res, err := db.Query(`SELECT ?x ?n WHERE { ?x <http://ex/knows> ?y . ?y <http://ex/name> ?n }`)
	if err != nil {
		t.Fatal(err)
	}
	rows := db.Rows(res)
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0] != "<http://ex/bob>" || rows[0][1] != `"Carol"@en` {
		t.Errorf("row = %v", rows[0])
	}
	cols := db.Columns(res.Query)
	if len(cols) != 2 || cols[0] != "?x" || cols[1] != "?n" {
		t.Errorf("columns = %v", cols)
	}
}

func TestOpenStrategies(t *testing.T) {
	ds := GenerateLUBM(2)
	for _, strat := range []string{"hash", "semantic-hash", "metis", "best", ""} {
		db, err := Open(ds.Graph, Config{Sites: 4, Strategy: strat})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if len(db.Costs) == 0 {
			t.Errorf("%s: no costs recorded", strat)
		}
		if strat == "best" && len(db.Costs) != 3 {
			t.Errorf("best should record 3 costs, got %d", len(db.Costs))
		}
	}
	if _, err := Open(ds.Graph, Config{Strategy: "nope"}); err == nil {
		t.Error("unknown strategy should error")
	}
}

func TestQueryModesAgree(t *testing.T) {
	ds := GenerateLUBM(2)
	db, err := Open(ds.Graph, Config{Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	bq, err := ds.Query("LQ6")
	if err != nil {
		t.Fatal(err)
	}
	var want string
	for _, mode := range []Mode{ModeBasic, ModeLA, ModeLO, ModeFull} {
		res, err := db.QueryMode(bq.SPARQL, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		keys := make([]string, 0, len(res.Rows))
		for _, r := range res.Rows {
			keys = append(keys, r.Key())
		}
		got := strings.Join(keys, ";")
		if want == "" {
			want = got
		} else if got != want {
			t.Errorf("%v disagrees with other modes", mode)
		}
	}
}

func TestGenerators(t *testing.T) {
	if g := GenerateLUBM(0); g.Graph.Len() == 0 || len(g.Queries) != 7 {
		t.Error("LUBM default generation broken")
	}
	if g := GenerateYAGO(0); g.Graph.Len() == 0 || len(g.Queries) != 4 {
		t.Error("YAGO default generation broken")
	}
	if g := GenerateBTC(0); g.Graph.Len() == 0 || len(g.Queries) != 7 {
		t.Error("BTC default generation broken")
	}
}

func TestNTriplesRoundTripThroughFacade(t *testing.T) {
	ds := GenerateLUBM(1)
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, ds.Graph); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ds.Graph.Len() {
		t.Errorf("round trip %d -> %d triples", ds.Graph.Len(), back.Len())
	}
	// The re-read graph answers the same query identically.
	db1, err := Open(ds.Graph, Config{Sites: 3})
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Open(back, Config{Sites: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Queries[3].SPARQL // LQ4
	r1, err := db1.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != len(r2.Rows) {
		t.Errorf("row counts differ: %d vs %d", len(r1.Rows), len(r2.Rows))
	}
}

func TestPartitionCostFacade(t *testing.T) {
	ds := GenerateLUBM(2)
	c, err := PartitionCost(ds.Graph, "hash", 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cost <= 0 || c.NumCrossing == 0 {
		t.Errorf("cost = %+v", c)
	}
	if _, err := PartitionCost(ds.Graph, "bogus", 4); err == nil {
		t.Error("bogus strategy should error")
	}
}

func TestStatsExposed(t *testing.T) {
	ds := GenerateLUBM(2)
	db, err := Open(ds.Graph, Config{Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	bq, _ := ds.Query("LQ1")
	res, err := db.Query(bq.SPARQL)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.TotalShipment == 0 || s.TotalTime == 0 || s.NumPartialMatches == 0 {
		t.Errorf("stats incomplete: %+v", s)
	}
}
