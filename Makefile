GO ?= go

.PHONY: build test race lint fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint drives the eight invariant analyzers (genswap, ctxflow, spanpair,
# metriclabel, looseerr, lockpath, chanleak, deferloop) through the vet
# protocol, exactly as CI does.
lint:
	$(GO) build -o bin/gstored-lint ./cmd/gstored-lint
	$(GO) vet -vettool=$(CURDIR)/bin/gstored-lint ./...

# fuzz-smoke mirrors CI's 10-second-per-target fuzz window.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz='^FuzzParse$$' -fuzztime=10s ./internal/sparql/
	$(GO) test -run=NONE -fuzz='^FuzzParseUpdate$$' -fuzztime=10s ./internal/sparql/
	$(GO) test -run=NONE -fuzz='^FuzzLexer$$' -fuzztime=10s ./internal/sparql/
	$(GO) test -run=NONE -fuzz='^FuzzReadNTriples$$' -fuzztime=10s ./internal/rdf/
	$(GO) test -run=NONE -fuzz='^FuzzCFG$$' -fuzztime=10s ./internal/analysis/
