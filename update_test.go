package gstored

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"gstored/internal/engine"
)

// updateTestDB is a small social graph over 3 sites.
func updateTestDB(t *testing.T) *DB {
	t.Helper()
	g := NewGraph()
	g.AddIRIs("http://ex/alice", "http://ex/knows", "http://ex/bob")
	g.AddIRIs("http://ex/bob", "http://ex/knows", "http://ex/carol")
	g.AddIRIs("http://ex/carol", "http://ex/knows", "http://ex/alice")
	db, err := Open(g, Config{Sites: 3})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func rowsOf(t *testing.T, db *DB, q string) [][]string {
	t.Helper()
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	return db.Rows(res)
}

func checkDBInvariants(t *testing.T, db *DB) {
	t.Helper()
	if err := db.Distributed().CheckInvariants(); err != nil {
		t.Fatalf("post-update invariants: %v", err)
	}
}

func TestUpdateInsertThenDelete(t *testing.T) {
	db := updateTestDB(t)
	const q = `SELECT ?x WHERE { ?x <http://ex/knows> <http://ex/bob> }`
	if got := rowsOf(t, db, q); len(got) != 1 {
		t.Fatalf("pre-update rows = %v", got)
	}
	e0 := db.Epoch()

	stats, err := db.Update(context.Background(),
		`INSERT DATA { <http://ex/dave> <http://ex/knows> <http://ex/bob> }`)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Inserted != 1 || stats.Deleted != 0 {
		t.Errorf("stats = %+v", stats)
	}
	if db.Epoch() != e0+1 || stats.Epoch != e0+1 {
		t.Errorf("epoch = %d (stats %d), want %d", db.Epoch(), stats.Epoch, e0+1)
	}
	checkDBInvariants(t, db)
	if got := rowsOf(t, db, q); len(got) != 2 {
		t.Fatalf("post-insert rows = %v, want alice and dave", got)
	}
	if db.NumTriples() != 4 {
		t.Errorf("NumTriples = %d, want 4", db.NumTriples())
	}

	stats, err = db.Update(context.Background(),
		`DELETE DATA { <http://ex/dave> <http://ex/knows> <http://ex/bob> }`)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Deleted != 1 || stats.Inserted != 0 {
		t.Errorf("delete stats = %+v", stats)
	}
	if db.Epoch() != e0+2 {
		t.Errorf("epoch = %d, want %d", db.Epoch(), e0+2)
	}
	checkDBInvariants(t, db)
	if got := rowsOf(t, db, q); len(got) != 1 {
		t.Fatalf("post-delete rows = %v", got)
	}
	if db.NumTriples() != 3 {
		t.Errorf("NumTriples = %d, want 3", db.NumTriples())
	}
}

// TestUpdateNoopKeepsEpoch: inserting a present triple or deleting an
// absent one must not produce a new generation — caches stay warm.
func TestUpdateNoopKeepsEpoch(t *testing.T) {
	db := updateTestDB(t)
	e0 := db.Epoch()
	for _, u := range []string{
		`INSERT DATA { <http://ex/alice> <http://ex/knows> <http://ex/bob> }`,
		`DELETE DATA { <http://ex/nobody> <http://ex/knows> <http://ex/noone> }`,
		// Net zero: insert and delete of the same absent triple.
		`INSERT DATA { <http://ex/x> <http://ex/p> <http://ex/y> } ;
		 DELETE DATA { <http://ex/x> <http://ex/p> <http://ex/y> }`,
	} {
		stats, err := db.Update(context.Background(), u)
		if err != nil {
			t.Fatalf("%s: %v", u, err)
		}
		if stats.Inserted != 0 || stats.Deleted != 0 || stats.Epoch != e0 {
			t.Errorf("%s: stats = %+v, want all-zero at epoch %d", u, stats, e0)
		}
	}
	if db.Epoch() != e0 {
		t.Errorf("epoch advanced to %d on no-op updates", db.Epoch())
	}
	// Deleting an existing triple after re-inserting it in the same
	// request is also net zero.
	if db.NumTriples() != 3 {
		t.Errorf("NumTriples = %d, want 3", db.NumTriples())
	}
}

// TestUpdateNoopDoesNotGrowDictionary: a request that nets to nothing —
// including inserts of never-seen terms cancelled within the same
// request — must not assign dictionary IDs; otherwise a writable
// endpoint leaks memory on no-op traffic. Failed updates must not grow
// it either.
func TestUpdateNoopDoesNotGrowDictionary(t *testing.T) {
	db := updateTestDB(t)
	before := db.Graph.Dict.Len()
	for i, u := range []string{
		// Insert-then-delete of fresh IRIs: empty net delta.
		`INSERT DATA { <http://ex/fresh1> <http://ex/freshp> <http://ex/fresh2> } ;
		 DELETE DATA { <http://ex/fresh1> <http://ex/freshp> <http://ex/fresh2> }`,
		// Delete of never-seen terms: no-op via Lookup.
		`DELETE DATA { <http://ex/fresh3> <http://ex/freshp> <http://ex/fresh4> }`,
	} {
		stats, err := db.Update(context.Background(), u)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Inserted != 0 || stats.Deleted != 0 {
			t.Fatalf("update %d stats = %+v, want no-op", i, stats)
		}
	}
	if got := db.Graph.Dict.Len(); got != before {
		t.Errorf("dictionary grew from %d to %d terms on no-op updates", before, got)
	}
	// A real insert does grow it — by exactly its surviving terms.
	if _, err := db.Update(context.Background(),
		`INSERT DATA { <http://ex/fresh5> <http://ex/freshp> <http://ex/fresh6> }`); err != nil {
		t.Fatal(err)
	}
	if got := db.Graph.Dict.Len(); got != before+3 {
		t.Errorf("dictionary = %d terms after a 3-new-term insert, want %d", got, before+3)
	}
}

// TestUpdateSequencedOps: ops in one request execute in order and commit
// as one epoch.
func TestUpdateSequencedOps(t *testing.T) {
	db := updateTestDB(t)
	e0 := db.Epoch()
	stats, err := db.Update(context.Background(), `
		PREFIX ex: <http://ex/>
		DELETE DATA { ex:alice ex:knows ex:bob } ;
		INSERT DATA { ex:alice ex:knows ex:dave . ex:dave ex:knows ex:bob }`)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Inserted != 2 || stats.Deleted != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if db.Epoch() != e0+1 {
		t.Errorf("one request advanced the epoch %d times", db.Epoch()-e0)
	}
	checkDBInvariants(t, db)
	got := rowsOf(t, db, `SELECT ?y WHERE { <http://ex/alice> <http://ex/knows> ?y }`)
	if len(got) != 1 || got[0][0] != "<http://ex/dave>" {
		t.Errorf("alice now knows %v, want dave only", got)
	}
}

// TestUpdateNewVertexRouting: inserting triples over IRIs the graph has
// never seen must extend the assignment and keep Definition 1 intact.
func TestUpdateNewVertexRouting(t *testing.T) {
	db := updateTestDB(t)
	stats, err := db.Update(context.Background(), `
		INSERT DATA {
			<http://ex/n1> <http://ex/knows> <http://ex/n2> .
			<http://ex/n2> <http://ex/knows> <http://ex/alice> .
			<http://ex/n2> <http://ex/name> "Newcomer"@en
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Inserted != 3 {
		t.Errorf("stats = %+v", stats)
	}
	checkDBInvariants(t, db)
	got := rowsOf(t, db, `SELECT ?n WHERE { ?x <http://ex/knows> <http://ex/alice> . ?x <http://ex/name> ?n }`)
	if len(got) != 1 || got[0][0] != `"Newcomer"@en` {
		t.Errorf("rows = %v", got)
	}
	// And the literal delete works through Lookup on the way back out.
	if _, err := db.Update(context.Background(),
		`DELETE DATA { <http://ex/n2> <http://ex/name> "Newcomer"@en }`); err != nil {
		t.Fatal(err)
	}
	checkDBInvariants(t, db)
	if got := rowsOf(t, db, `SELECT ?n WHERE { ?x <http://ex/name> ?n }`); len(got) != 0 {
		t.Errorf("deleted literal still answered: %v", got)
	}
}

// TestUpdateDeleteRemovesAllInstances: the source graph is a multiset
// (generators emit duplicates); DELETE DATA takes the triple out of the
// graph entirely, instances and all.
func TestUpdateDeleteRemovesAllInstances(t *testing.T) {
	g := NewGraph()
	g.AddIRIs("http://ex/a", "http://ex/p", "http://ex/b")
	g.AddIRIs("http://ex/a", "http://ex/p", "http://ex/b") // duplicate instance
	g.AddIRIs("http://ex/b", "http://ex/p", "http://ex/c")
	db, err := Open(g, Config{Sites: 2})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := db.Update(context.Background(), `DELETE DATA { <http://ex/a> <http://ex/p> <http://ex/b> }`)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Deleted != 1 {
		t.Errorf("stats = %+v (set semantics: one triple deleted)", stats)
	}
	if db.NumTriples() != 1 {
		t.Errorf("NumTriples = %d, want 1 (both instances gone)", db.NumTriples())
	}
	if len(db.Graph.Triples) != 1 {
		t.Errorf("Graph.Triples = %v, want the b-p-c triple only", db.Graph.Triples)
	}
	checkDBInvariants(t, db)
}

// TestUpdatePinsGeneration is the acceptance-criteria pin: an execution
// holding the pre-update generation keeps answering against it after
// the update commits, while new executions see the new data.
func TestUpdatePinsGeneration(t *testing.T) {
	db := updateTestDB(t)
	q, err := db.Parse(`SELECT ?x ?y WHERE { ?x <http://ex/knows> ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	pre := db.load() // what an in-flight query pinned at its start

	if _, err := db.Update(context.Background(),
		`INSERT DATA { <http://ex/dave> <http://ex/knows> <http://ex/alice> }`); err != nil {
		t.Fatal(err)
	}

	// The pinned generation still answers exactly the pre-update graph.
	res, err := pre.eng.ExecuteContext(context.Background(), q, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Errorf("pinned generation sees %d rows, want the pre-update 3", res.Len())
	}
	// A fresh execution sees the write.
	if got := rowsOf(t, db, `SELECT ?x ?y WHERE { ?x <http://ex/knows> ?y }`); len(got) != 4 {
		t.Errorf("new generation sees %d rows, want 4", len(got))
	}
	// And the old generation's store was never mutated.
	if pre.dist.Global.Len() != 3 {
		t.Errorf("pre-update store grew to %d triples", pre.dist.Global.Len())
	}
}

// TestConcurrentQueriesDuringUpdates hammers queries from several
// goroutines while a writer inserts and deletes a marker triple in a
// loop: under -race every result must be one of the two consistent
// states, never an error, never a mix.
func TestConcurrentQueriesDuringUpdates(t *testing.T) {
	db := updateTestDB(t)
	const q = `SELECT ?x WHERE { ?x <http://ex/knows> <http://ex/alice> }`

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 16)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := db.Query(q)
				if err != nil {
					errs <- err
					return
				}
				if n := res.Len(); n != 1 && n != 2 {
					errs <- fmt.Errorf("saw %d rows, want 1 (pre) or 2 (post)", n)
					return
				}
			}
		}()
	}
	for i := 0; i < 25; i++ {
		if _, err := db.Update(context.Background(),
			`INSERT DATA { <http://ex/mallory> <http://ex/knows> <http://ex/alice> }`); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Update(context.Background(),
			`DELETE DATA { <http://ex/mallory> <http://ex/knows> <http://ex/alice> }`); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	checkDBInvariants(t, db)
}

// TestUpdateThenRepartition: after updates added vertices, planning and
// applying a fresh partitioning must cover them (PlanPartition works on
// the live store, not the Open-time one).
func TestUpdateThenRepartition(t *testing.T) {
	db := updateTestDB(t)
	if _, err := db.Update(context.Background(),
		`INSERT DATA { <http://ex/new1> <http://ex/knows> <http://ex/new2> }`); err != nil {
		t.Fatal(err)
	}
	a, err := db.PlanPartition("semantic-hash", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Repartition(a); err != nil {
		t.Fatalf("repartition after update: %v", err)
	}
	checkDBInvariants(t, db)
	if got := rowsOf(t, db, `SELECT ?y WHERE { <http://ex/new1> <http://ex/knows> ?y }`); len(got) != 1 {
		t.Errorf("rows = %v", got)
	}
	// And updating again after the repartition still works.
	if _, err := db.Update(context.Background(),
		`DELETE DATA { <http://ex/new1> <http://ex/knows> <http://ex/new2> }`); err != nil {
		t.Fatal(err)
	}
	checkDBInvariants(t, db)
}

// TestUpdateParseErrors: a malformed or unsupported update fails without
// touching the database.
func TestUpdateParseErrors(t *testing.T) {
	db := updateTestDB(t)
	e0 := db.Epoch()
	for _, u := range []string{
		`INSERT DATA { ?x <http://ex/p> <http://ex/b> }`,
		`DELETE WHERE { <http://ex/a> <http://ex/p> <http://ex/b> }`,
		`nonsense`,
	} {
		if _, err := db.Update(context.Background(), u); err == nil {
			t.Errorf("Update(%q) succeeded, want parse error", u)
		}
	}
	if db.Epoch() != e0 || db.NumTriples() != 3 {
		t.Error("failed updates mutated the database")
	}
}

// TestUpdateCanceledContext: a dead context aborts the update with its
// error and an unchanged database — no partial commit, no epoch bump.
func TestUpdateCanceledContext(t *testing.T) {
	db := updateTestDB(t)
	e0 := db.Epoch()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.Update(ctx, `INSERT DATA { <http://ex/x> <http://ex/p> <http://ex/y> }`); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled update = %v, want context.Canceled", err)
	}
	if db.Epoch() != e0 || db.NumTriples() != 3 {
		t.Error("canceled update mutated the database")
	}
}

// TestUpdateOnLUBM exercises the incremental path at dataset scale:
// mutate a LUBM graph, check invariants and that only a strict subset of
// fragments was rebuilt.
func TestUpdateOnLUBM(t *testing.T) {
	ds := GenerateLUBM(1)
	db, err := Open(ds.Graph, Config{Sites: 12, Strategy: "semantic-hash"})
	if err != nil {
		t.Fatal(err)
	}
	before := db.NumTriples()
	var b strings.Builder
	b.WriteString("INSERT DATA {\n")
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&b, "<http://ex/updates/s%d> <http://swat.cse.lehigh.edu/onto/univ-bench.owl#advisor> <http://ex/updates/o%d> .\n", i, i%7)
	}
	b.WriteString("}")
	stats, err := db.Update(context.Background(), b.String())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Inserted != 50 {
		t.Errorf("inserted %d, want 50", stats.Inserted)
	}
	if stats.RebuiltFragments >= 12 {
		t.Logf("note: delta touched all %d fragments", stats.RebuiltFragments)
	}
	if db.NumTriples() != before+50 {
		t.Errorf("NumTriples = %d, want %d", db.NumTriples(), before+50)
	}
	checkDBInvariants(t, db)
	got := rowsOf(t, db, `SELECT ?s WHERE { ?s <http://swat.cse.lehigh.edu/onto/univ-bench.owl#advisor> <http://ex/updates/o0> }`)
	if len(got) < 8 {
		t.Errorf("inserted advisor rows = %d, want >= 8", len(got))
	}
}
