package gstored

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"gstored/internal/partition"
	"gstored/internal/rdf"
)

// skewedMix is the acceptance-scenario workload: 80% of the traffic is
// LQ1/LQ7-style complex cross-fragment traffic, with some star queries
// mixed in. Under this skew the crossing edges those joins traverse
// dominate the workload-weighted cost, while the data-only Section VII
// model keeps weighing every edge equally.
var skewedMix = map[string]int{"LQ1": 40, "LQ7": 40, "LQ6": 10, "LQ2": 5, "LQ4": 5}

// feedMix executes each query of the mix once and observes it into a
// fresh log at its traffic multiplicity, returning the log.
func feedMix(t *testing.T, db *DB, ds *Dataset, mix map[string]int) *QueryLog {
	t.Helper()
	qlog := NewQueryLog(0)
	for name, n := range mix {
		bq, err := ds.Query(name)
		if err != nil {
			t.Fatal(err)
		}
		q, err := db.ParseReadOnly(bq.SPARQL)
		if err != nil {
			t.Fatal(err)
		}
		res, err := db.QueryGraph(q)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			qlog.Observe(name, bq.SPARQL, q, res.Stats)
		}
	}
	return qlog
}

// mixCrossing totals partial and crossing matches over the mix,
// weighted by traffic share — the quantity the advisor is supposed to
// shrink.
func mixCrossing(t *testing.T, db *DB, ds *Dataset, mix map[string]int) (partials, crossings int) {
	t.Helper()
	for name, n := range mix {
		bq, err := ds.Query(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := db.Query(bq.SPARQL)
		if err != nil {
			t.Fatal(err)
		}
		partials += n * res.Stats.NumPartialMatches
		crossings += n * res.Stats.NumCrossingMatches
	}
	return
}

// TestWorkloadAdvisorBeatsDataOnly pins the issue's acceptance
// criterion: on a skewed LUBM query mix the workload-weighted advisor
// recommends a different (strategy, k) than the data-only Section VII
// model, and applying the recommendation via DB.Repartition reduces the
// partial-match crossing traffic the mix actually generates.
func TestWorkloadAdvisorBeatsDataOnly(t *testing.T) {
	ds := GenerateLUBM(8)
	db, err := Open(ds.Graph, Config{Sites: 12, Strategy: "hash"})
	if err != nil {
		t.Fatal(err)
	}

	qlog := feedMix(t, db, ds, skewedMix)
	rec, err := db.Advise(qlog.Snapshot().Workload(0), 4, 8, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Differs() {
		t.Fatalf("workload advisor agrees with data-only model (%s,%d); the skewed mix should change the verdict",
			rec.Strategy, rec.K)
	}

	// Serve the mix under the data-only pick, then under the
	// workload-weighted pick, and compare what the queries report.
	dataAssign, err := db.PlanPartition(rec.DataStrategy, rec.DataK)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Repartition(dataAssign); err != nil {
		t.Fatal(err)
	}
	dataPartials, dataCrossings := mixCrossing(t, db, ds, skewedMix)

	if err := db.Repartition(rec.Assignment); err != nil {
		t.Fatal(err)
	}
	wlPartials, wlCrossings := mixCrossing(t, db, ds, skewedMix)

	if wlPartials >= dataPartials {
		t.Errorf("workload pick (%s,%d) partial matches = %d, not below data pick (%s,%d) = %d",
			rec.Strategy, rec.K, wlPartials, rec.DataStrategy, rec.DataK, dataPartials)
	}
	if wlCrossings >= dataCrossings {
		t.Errorf("workload pick crossing matches = %d, not below data pick = %d", wlCrossings, dataCrossings)
	}
	if db.Strategy() != rec.Strategy || db.NumSites() != rec.K {
		t.Errorf("live cluster = (%s,%d), want applied recommendation (%s,%d)",
			db.Strategy(), db.NumSites(), rec.Strategy, rec.K)
	}
}

// TestRepartitionSwapsAtomically drives queries from many goroutines
// while the cluster is repeatedly repartitioned. Every query must see
// one consistent cluster generation — identical result rows regardless
// of which side of a swap it lands on — and the epoch must advance once
// per swap. go test -race is part of the assertion.
func TestRepartitionSwapsAtomically(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 30; i++ {
		g.AddIRIs(fmt.Sprintf("http://ex/p%d", i), "http://ex/knows", fmt.Sprintf("http://ex/p%d", (i+1)%30))
		g.AddIRIs(fmt.Sprintf("http://ex/p%d", i), "http://ex/likes", fmt.Sprintf("http://ex/p%d", (i+7)%30))
	}
	db, err := Open(g, Config{Sites: 3})
	if err != nil {
		t.Fatal(err)
	}
	const q = `SELECT ?x ?z WHERE { ?x <http://ex/knows> ?y . ?y <http://ex/likes> ?z }`
	baseline, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := baseline.Len()
	if wantRows == 0 {
		t.Fatal("baseline query is empty; the consistency check would be vacuous")
	}

	startEpoch := db.Epoch()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	stop := make(chan struct{})
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := db.Query(q)
				if err != nil {
					errs <- err
					return
				}
				if res.Len() != wantRows {
					errs <- fmt.Errorf("query saw %d rows, want %d (inconsistent cluster mid-swap?)", res.Len(), wantRows)
					return
				}
			}
		}()
	}

	const swaps = 20
	strategies := []string{"hash", "semantic-hash", "metis"}
	for i := 0; i < swaps; i++ {
		a, err := db.PlanPartition(strategies[i%len(strategies)], 2+i%3)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Repartition(a); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := db.Epoch(); got != startEpoch+swaps {
		t.Errorf("epoch = %d, want %d (+1 per swap)", got, startEpoch+swaps)
	}
}

// TestRepartitionRejectsPartialAssignment pins the swap-boundary
// invariant behind Assignment.Lookup: an assignment that does not cover
// every vertex must be rejected before the swap, leaving the previous
// generation serving and the epoch untouched.
func TestRepartitionRejectsPartialAssignment(t *testing.T) {
	g := NewGraph()
	g.AddIRIs("http://ex/a", "http://ex/p", "http://ex/b")
	g.AddIRIs("http://ex/b", "http://ex/p", "http://ex/c")
	db, err := Open(g, Config{Sites: 2})
	if err != nil {
		t.Fatal(err)
	}
	epoch, sites := db.Epoch(), db.NumSites()

	if err := db.Repartition(nil); err == nil {
		t.Error("nil assignment accepted")
	}
	partial := &Assignment{K: 2, Frag: map[rdf.TermID]int{}} // covers nothing
	if err := db.Repartition(partial); err == nil {
		t.Error("uncovered assignment accepted; FragmentOf's fragment-0 fallback would mis-route")
	}
	if db.Epoch() != epoch || db.NumSites() != sites {
		t.Errorf("failed repartition mutated the cluster: epoch %d→%d, sites %d→%d",
			epoch, db.Epoch(), sites, db.NumSites())
	}
	if _, err := db.Query(`SELECT ?x WHERE { ?x <http://ex/p> ?y }`); err != nil {
		t.Errorf("serving broken after rejected repartition: %v", err)
	}
}

// TestReplayQueryLog round-trips the offline path: records written the
// way `gstored serve -query-log` writes them replay into a workload the
// advisor accepts, with unparseable entries skipped, not fatal.
func TestReplayQueryLog(t *testing.T) {
	ds := GenerateLUBM(1)
	db, err := Open(ds.Graph, Config{Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	lq1, err := ds.Query("LQ1")
	if err != nil {
		t.Fatal(err)
	}
	lq2, err := ds.Query("LQ2")
	if err != nil {
		t.Fatal(err)
	}
	log := strings.Join([]string{
		`# replayed by TestReplayQueryLog`,
		fmt.Sprintf(`{"query": %q}`, lq1.SPARQL),
		fmt.Sprintf(`{"query": %q, "count": 9}`, lq1.SPARQL),
		fmt.Sprintf(`{"query": %q, "count": 3}`, lq2.SPARQL),
		`{"query": "THIS IS NOT SPARQL"}`,
	}, "\n")

	qlog, replayed, skipped, err := ReplayQueryLog(db, strings.NewReader(log), 0)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 13 || skipped != 1 {
		t.Fatalf("replayed=%d skipped=%d, want 13/1", replayed, skipped)
	}
	snap := qlog.Snapshot()
	if snap.Distinct != 2 {
		t.Fatalf("distinct = %d, want 2 (textual repeats of LQ1 share a canonical key)", snap.Distinct)
	}
	if snap.Entries[0].Count != 10 {
		t.Errorf("hottest entry count = %d, want 10", snap.Entries[0].Count)
	}
	if _, err := db.Advise(snap.Workload(0), 2, 4); err != nil {
		t.Errorf("advising over a replayed log: %v", err)
	}
}

// TestAdviseStrategies checks the restricted-strategy path and its
// error handling.
func TestAdviseStrategies(t *testing.T) {
	ds := GenerateLUBM(1)
	db, err := Open(ds.Graph, Config{Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := db.AdviseStrategies(Workload{}, []string{"hash", "semantic-hash"}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Candidates) != 4 {
		t.Errorf("candidates = %d, want 2 strategies × 2 ks", len(rec.Candidates))
	}
	for _, c := range rec.Candidates {
		if c.Strategy == "metis" {
			t.Error("excluded strategy evaluated")
		}
	}
	if _, err := db.AdviseStrategies(Workload{}, []string{"no-such-strategy"}, 2); err == nil {
		t.Error("unknown strategy accepted")
	}
}

// Compile-time check that the re-exported aliases stay wired.
var (
	_                           = partition.Workload(Workload{})
	_ *partition.Recommendation = (*Recommendation)(nil)
)
