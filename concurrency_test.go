package gstored

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestZeroConfigRunsFullSystem is the regression test for the DB.mode
// contract: the zero value of Config.Mode is engine.ModeUnset, which
// resolves to the full system (ModeFull), not ModeBasic.
func TestZeroConfigRunsFullSystem(t *testing.T) {
	ds := GenerateLUBM(1)
	db, err := Open(ds.Graph, Config{Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	if db.Mode() != ModeFull {
		t.Errorf("zero-config DB.Mode() = %v, want ModeFull", db.Mode())
	}
	lq1, err := ds.Query("LQ1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(lq1.SPARQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Mode != ModeFull {
		t.Errorf("zero-config execution ran %v, want ModeFull", res.Stats.Mode)
	}
	// And it must agree with an explicit ModeFull run.
	full, err := db.QueryMode(lq1.SPARQL, ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(full.Rows) {
		t.Errorf("zero-config rows = %d, explicit ModeFull rows = %d", len(res.Rows), len(full.Rows))
	}
}

// TestConcurrentQueries fires many simultaneous DB.Query calls across all
// modes against one DB and checks every result against a sequential
// baseline. Run under -race (the CI does) this is the regression test for
// the serving layer's thread-safety contract.
func TestConcurrentQueries(t *testing.T) {
	ds := GenerateLUBM(1)
	db, err := Open(ds.Graph, Config{Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	modes := []Mode{ModeBasic, ModeLA, ModeLO, ModeFull}

	// Sequential baseline per (query, mode).
	type key struct {
		name string
		mode Mode
	}
	baseline := make(map[key]string)
	for _, bq := range ds.Queries {
		for _, m := range modes {
			res, err := db.QueryMode(bq.SPARQL, m)
			if err != nil {
				t.Fatalf("%s/%v: %v", bq.Name, m, err)
			}
			baseline[key{bq.Name, m}] = renderRows(db, res)
		}
	}

	const iterations = 3
	var wg sync.WaitGroup
	errs := make(chan error, len(ds.Queries)*len(modes)*iterations)
	for _, bq := range ds.Queries {
		for _, m := range modes {
			for i := 0; i < iterations; i++ {
				wg.Add(1)
				go func(bq BenchQuery, m Mode) {
					defer wg.Done()
					res, err := db.QueryMode(bq.SPARQL, m)
					if err != nil {
						errs <- fmt.Errorf("%s/%v: %w", bq.Name, m, err)
						return
					}
					if got := renderRows(db, res); got != baseline[key{bq.Name, m}] {
						errs <- fmt.Errorf("%s/%v: concurrent result diverged from baseline", bq.Name, m)
					}
				}(bq, m)
			}
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestQueryContextCancellation checks the cooperative-cancellation path:
// an already-expired context fails fast with its error and no result.
func TestQueryContextCancellation(t *testing.T) {
	ds := GenerateLUBM(1)
	db, err := Open(ds.Graph, Config{Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	lq1, err := ds.Query("LQ1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryContext(ctx, lq1.SPARQL); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled query = %v, want context.Canceled", err)
	}
}

// renderRows flattens a result into one deterministic string (rows are
// already sorted by the engine).
func renderRows(db *DB, res *Result) string {
	var b strings.Builder
	for _, row := range db.Rows(res) {
		b.WriteString(strings.Join(row, "\x1f"))
		b.WriteByte('\n')
	}
	return b.String()
}
