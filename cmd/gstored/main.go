// Command gstored loads an N-Triples file, partitions it across simulated
// sites, and either evaluates one SPARQL BGP query — printing the result
// rows and the per-stage statistics of the paper's Tables I-III — or, with
// the serve subcommand, answers a query stream over HTTP via the SPARQL
// 1.1 Protocol.
//
// Usage:
//
//	gstored -data graph.nt -query 'SELECT ?x WHERE { ?x <p> ?y }'
//	gstored -data graph.nt -queryfile q.rq -sites 12 -strategy semantic-hash -mode full
//	gstored serve -data graph.nt -addr :8080 -sites 12 -strategy hash -mode full
//	gstored serve -dataset lubm -scale 2 -addr :8080
//
// The server exposes /sparql (GET query= or POST), /metrics (Prometheus
// text format: scheduler, cache and per-stage engine counters) and
// /healthz.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"gstored"
	"gstored/internal/server"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serveMain(os.Args[2:])
		return
	}
	var (
		dataPath  = flag.String("data", "", "N-Triples input file (required)")
		queryText = flag.String("query", "", "SPARQL query text")
		queryFile = flag.String("queryfile", "", "file containing the SPARQL query")
		sites     = flag.Int("sites", 12, "number of simulated sites")
		strategy  = flag.String("strategy", "hash", "partitioning: hash, semantic-hash, metis, best")
		mode      = flag.String("mode", "full", "engine mode: basic, la, lo, full")
		stats     = flag.Bool("stats", true, "print per-stage statistics")
	)
	flag.Parse()

	if *dataPath == "" {
		fmt.Fprintln(os.Stderr, "gstored: -data is required")
		flag.Usage()
		os.Exit(2)
	}
	q := *queryText
	if *queryFile != "" {
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			fail(err)
		}
		q = string(b)
	}
	if q == "" {
		fmt.Fprintln(os.Stderr, "gstored: provide -query or -queryfile")
		os.Exit(2)
	}
	m := parseMode(*mode)
	g := loadGraph(*dataPath, "", 0)
	db, err := gstored.Open(g, gstored.Config{Sites: *sites, Strategy: *strategy, Mode: m})
	if err != nil {
		fail(err)
	}
	fmt.Printf("loaded %d triples over %d sites (%s partitioning)\n", g.Len(), db.NumSites(), db.StrategyName)

	res, err := db.Query(q)
	if err != nil {
		fail(err)
	}
	cols := db.Columns(res.Query)
	fmt.Println(strings.Join(cols, "\t"))
	for _, row := range db.Rows(res) {
		fmt.Println(strings.Join(row, "\t"))
	}
	if *stats {
		s := res.Stats
		fmt.Fprintf(os.Stderr, "\n%s: %d matches (%d local, %d crossing) in %v\n",
			s.Mode, s.NumMatches, s.NumLocalMatches, s.NumCrossingMatches, s.TotalTime)
		fmt.Fprintf(os.Stderr, "stages: candidates %v (%d B), partial eval %v (%d LPMs), LEC %v (%d B, %d features, %d retained), assembly %v (%d B)\n",
			s.CandidatesTime, s.CandidatesShipment,
			s.PartialTime, s.NumPartialMatches,
			s.LECTime, s.LECShipment, s.NumLECFeatures, s.NumRetainedPartialMatches,
			s.AssemblyTime, s.AssemblyShipment)
		fmt.Fprintf(os.Stderr, "network: %d bytes in %d messages (est. comm time %v)\n",
			s.TotalShipment, s.Messages, s.EstimatedCommTime)
	}
}

// serveMain runs the SPARQL 1.1 Protocol server over a loaded or
// generated dataset.
func serveMain(args []string) {
	fs := flag.NewFlagSet("gstored serve", flag.ExitOnError)
	var (
		addr        = fs.String("addr", ":8080", "HTTP listen address")
		dataPath    = fs.String("data", "", "N-Triples input file")
		dataset     = fs.String("dataset", "", "generated benchmark dataset: lubm, yago, btc")
		scale       = fs.Int("scale", 0, "dataset scale (universities for lubm; 0 = default)")
		sites       = fs.Int("sites", 12, "number of simulated sites")
		strategy    = fs.String("strategy", "hash", "partitioning: hash, semantic-hash, metis, best")
		mode        = fs.String("mode", "full", "engine mode: basic, la, lo, full")
		cache       = fs.Int("cache", 256, "result-cache entries (negative disables)")
		cacheRows   = fs.Int("cache-max-rows", 0, "max projected rows admitted per cache entry; larger results stream uncached (0 = default 65536, negative = uncapped)")
		timeout     = fs.Duration("timeout", 30*time.Second, "per-query time limit")
		maxInFlight = fs.Int("max-inflight", 64, "admitted-query limit before shedding with 503")
		workers     = fs.Int("workers", 0, "query worker pool size (0 = GOMAXPROCS)")
	)
	fs.Parse(args)
	if (*dataPath == "") == (*dataset == "") {
		fmt.Fprintln(os.Stderr, "gstored serve: provide exactly one of -data or -dataset")
		os.Exit(2)
	}

	g := loadGraph(*dataPath, *dataset, *scale)
	db, err := gstored.Open(g, gstored.Config{Sites: *sites, Strategy: *strategy, Mode: parseMode(*mode)})
	if err != nil {
		fail(err)
	}
	srv := server.New(db, server.Config{
		MaxInFlight:  *maxInFlight,
		Workers:      *workers,
		QueryTimeout: *timeout,
		CacheEntries: *cache,
		CacheMaxRows: *cacheRows,
	})
	fmt.Printf("serving %d triples over %d sites (%s partitioning, %s) on %s\n",
		g.Len(), db.NumSites(), db.StrategyName, db.Mode(), *addr)
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv,
		// Bound slow clients at the connection level; without these a
		// trickled request holds a goroutine forever and the per-query
		// timeout never engages.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	fail(hs.ListenAndServe())
}

// loadGraph reads an N-Triples file or generates a benchmark dataset.
func loadGraph(dataPath, dataset string, scale int) *gstored.Graph {
	if dataPath != "" {
		f, err := os.Open(dataPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		g, err := gstored.ReadNTriples(f)
		if err != nil {
			fail(err)
		}
		return g
	}
	switch strings.ToLower(dataset) {
	case "lubm":
		return gstored.GenerateLUBM(scale).Graph
	case "yago":
		return gstored.GenerateYAGO(scale).Graph
	case "btc":
		return gstored.GenerateBTC(scale).Graph
	default:
		fmt.Fprintf(os.Stderr, "gstored: unknown dataset %q (want lubm, yago or btc)\n", dataset)
		os.Exit(2)
		return nil
	}
}

func parseMode(mode string) gstored.Mode {
	switch strings.ToLower(mode) {
	case "basic":
		return gstored.ModeBasic
	case "la":
		return gstored.ModeLA
	case "lo":
		return gstored.ModeLO
	case "full", "":
		return gstored.ModeFull
	default:
		fmt.Fprintf(os.Stderr, "gstored: unknown mode %q\n", mode)
		os.Exit(2)
		return gstored.ModeFull
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "gstored: %v\n", err)
	os.Exit(1)
}
