// Command gstored loads an N-Triples file, partitions it across simulated
// sites, and either evaluates one SPARQL BGP query — printing the result
// rows and the per-stage statistics of the paper's Tables I-III — or, with
// the serve subcommand, answers a query stream over HTTP via the SPARQL
// 1.1 Protocol. The advise subcommand replays a saved query log through
// the workload-weighted Section VII cost model offline.
//
// Usage:
//
//	gstored -data graph.nt -query 'SELECT ?x WHERE { ?x <p> ?y }'
//	gstored -data graph.nt -queryfile q.rq -sites 12 -strategy semantic-hash -mode full
//	gstored explain -dataset lubm -query 'SELECT ?x WHERE { ?x <p> ?y }'
//	gstored serve -data graph.nt -addr :8080 -sites 12 -strategy hash -mode full
//	gstored serve -dataset lubm -scale 2 -addr :8080 -query-log queries.jsonl
//	gstored serve -dataset lubm -addr :8080 -writable
//	gstored serve -dataset lubm -addr :8080 -slow-query-ms 250 -slow-query-log slow.jsonl -debug-addr localhost:6060
//	gstored worker -listen 127.0.0.1:8091
//	gstored serve -dataset lubm -addr :8080 -site-workers 127.0.0.1:8091,127.0.0.1:8092
//	gstored advise -dataset lubm -scale 2 -log queries.jsonl -k 4,8,12
//
// The explain subcommand executes one query with tracing attached and
// prints the same JSON ExplainReport the server answers for
// /sparql?explain=1: compiled pattern, chosen plan, per-stage and
// per-fragment timings, and the span timeline — from one execution.
//
// The server exposes /sparql (GET query= or POST; with -writable, POSTed
// application/sparql-update bodies apply INSERT DATA / DELETE DATA;
// ?explain=1 returns the ExplainReport instead of bindings), /advisor
// (workload-weighted partition recommendation), /repartition (online
// hot-swap), /metrics (Prometheus text format: scheduler, cache,
// query-log, per-stage engine counters and latency histograms) and
// /healthz. With -slow-query-ms, queries at or over the threshold emit
// structured JSON lines to -slow-query-log (a size-rotated file) or
// stderr; with -debug-addr, net/http/pprof profiling is served on a
// separate listener so profiling never shares a port with query traffic.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"gstored"
	"gstored/internal/remote"
	"gstored/internal/server"
	"gstored/internal/trace"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			serveMain(os.Args[2:])
			return
		case "advise":
			adviseMain(os.Args[2:])
			return
		case "explain":
			explainMain(os.Args[2:])
			return
		case "worker":
			workerMain(os.Args[2:])
			return
		}
	}
	var (
		dataPath  = flag.String("data", "", "N-Triples input file (required)")
		queryText = flag.String("query", "", "SPARQL query text")
		queryFile = flag.String("queryfile", "", "file containing the SPARQL query")
		sites     = flag.Int("sites", 12, "number of simulated sites")
		strategy  = flag.String("strategy", "hash", "partitioning: hash, semantic-hash, metis, best")
		mode      = flag.String("mode", "full", "engine mode: basic, la, lo, full")
		stats     = flag.Bool("stats", true, "print per-stage statistics")
		evalWork  = flag.Int("eval-workers", 0, "per-query evaluation worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()

	if *dataPath == "" {
		fmt.Fprintln(os.Stderr, "gstored: -data is required")
		flag.Usage()
		os.Exit(2)
	}
	q := *queryText
	if *queryFile != "" {
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			fail(err)
		}
		q = string(b)
	}
	if q == "" {
		fmt.Fprintln(os.Stderr, "gstored: provide -query or -queryfile")
		os.Exit(2)
	}
	m := parseMode(*mode)
	g := loadGraph(*dataPath, "", 0)
	db, err := gstored.Open(g, gstored.Config{Sites: *sites, Strategy: *strategy, Mode: m, EvalWorkers: *evalWork})
	if err != nil {
		fail(err)
	}
	fmt.Printf("loaded %d triples over %d sites (%s partitioning)\n", g.Len(), db.NumSites(), db.StrategyName)

	res, err := db.Query(q)
	if err != nil {
		fail(err)
	}
	cols := db.Columns(res.Query)
	fmt.Println(strings.Join(cols, "\t"))
	for _, row := range db.Rows(res) {
		fmt.Println(strings.Join(row, "\t"))
	}
	if *stats {
		s := res.Stats
		fmt.Fprintf(os.Stderr, "\n%s: %d matches (%d local, %d crossing) in %v\n",
			s.Mode, s.NumMatches, s.NumLocalMatches, s.NumCrossingMatches, s.TotalTime)
		fmt.Fprintf(os.Stderr, "stages: candidates %v (%d B), partial eval %v (%d LPMs), LEC %v (%d B, %d features, %d retained), assembly %v (%d B)\n",
			s.CandidatesTime, s.CandidatesShipment,
			s.PartialTime, s.NumPartialMatches,
			s.LECTime, s.LECShipment, s.NumLECFeatures, s.NumRetainedPartialMatches,
			s.AssemblyTime, s.AssemblyShipment)
		fmt.Fprintf(os.Stderr, "network: %d bytes in %d messages (est. comm time %v)\n",
			s.TotalShipment, s.Messages, s.EstimatedCommTime)
	}
}

// explainMain executes one query with tracing attached and prints the
// ExplainReport as indented JSON — the CLI twin of /sparql?explain=1,
// for diagnosing a query without standing up a server.
func explainMain(args []string) {
	fs := flag.NewFlagSet("gstored explain", flag.ExitOnError)
	var (
		dataPath  = fs.String("data", "", "N-Triples input file")
		dataset   = fs.String("dataset", "", "generated benchmark dataset: lubm, yago, btc")
		scale     = fs.Int("scale", 0, "dataset scale (universities for lubm; 0 = default)")
		queryText = fs.String("query", "", "SPARQL query text")
		queryFile = fs.String("queryfile", "", "file containing the SPARQL query")
		sites     = fs.Int("sites", 12, "number of simulated sites")
		strategy  = fs.String("strategy", "hash", "partitioning: hash, semantic-hash, metis, best")
		mode      = fs.String("mode", "full", "engine mode: basic, la, lo, full")
	)
	fs.Parse(args)
	if (*dataPath == "") == (*dataset == "") {
		fmt.Fprintln(os.Stderr, "gstored explain: provide exactly one of -data or -dataset")
		os.Exit(2)
	}
	text := *queryText
	if *queryFile != "" {
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			fail(err)
		}
		text = string(b)
	}
	if text == "" {
		fmt.Fprintln(os.Stderr, "gstored explain: provide -query or -queryfile")
		os.Exit(2)
	}

	g := loadGraph(*dataPath, *dataset, *scale)
	db, err := gstored.Open(g, gstored.Config{Sites: *sites, Strategy: *strategy, Mode: parseMode(*mode)})
	if err != nil {
		fail(err)
	}
	q, err := db.Parse(text)
	if err != nil {
		fail(err)
	}
	tr := trace.New()
	res, err := db.QueryGraphContext(trace.NewContext(context.Background(), tr), q)
	if err != nil {
		fail(err)
	}
	// No serving layer here, so there is no cache to have a disposition.
	rep := server.BuildExplain(db, q, text, res, tr, "ordered", server.ExplainCache{Disposition: "disabled", Cacheable: true})
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fail(err)
	}
}

// workerMain runs a fragment-hosting worker process: it owns no data at
// start, receives its fragments from the coordinator's two-phase epoch
// broadcast, and serves candidate/partial-evaluation RPCs against them.
// Point a coordinator at it with `gstored serve -site-workers host:port`.
func workerMain(args []string) {
	fs := flag.NewFlagSet("gstored worker", flag.ExitOnError)
	var (
		listen   = fs.String("listen", "127.0.0.1:8090", "RPC listen address")
		evalWork = fs.Int("eval-workers", 0, "evaluation worker pool size (0 = GOMAXPROCS)")
	)
	fs.Parse(args)
	w := remote.NewWorker(*evalWork)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fail(err)
	}
	fmt.Printf("worker listening on %s (fragments arrive with the first epoch broadcast)\n", ln.Addr())
	fail(w.Serve(ln))
}

// serveMain runs the SPARQL 1.1 Protocol server over a loaded or
// generated dataset.
func serveMain(args []string) {
	fs := flag.NewFlagSet("gstored serve", flag.ExitOnError)
	var (
		addr        = fs.String("addr", ":8080", "HTTP listen address")
		dataPath    = fs.String("data", "", "N-Triples input file")
		dataset     = fs.String("dataset", "", "generated benchmark dataset: lubm, yago, btc")
		scale       = fs.Int("scale", 0, "dataset scale (universities for lubm; 0 = default)")
		sites       = fs.Int("sites", 12, "number of simulated sites")
		strategy    = fs.String("strategy", "hash", "partitioning: hash, semantic-hash, metis, best")
		mode        = fs.String("mode", "full", "engine mode: basic, la, lo, full")
		cache       = fs.Int("cache", 256, "result-cache entries (negative disables)")
		cacheRows   = fs.Int("cache-max-rows", 0, "max projected rows admitted per cache entry; larger results stream uncached (0 = default 65536, negative = uncapped)")
		timeout     = fs.Duration("timeout", 30*time.Second, "per-query time limit")
		maxInFlight = fs.Int("max-inflight", 64, "admitted-query limit before shedding with 503")
		workers     = fs.Int("workers", 0, "query worker pool size (0 = GOMAXPROCS)")
		evalWork    = fs.Int("eval-workers", 0, "per-query evaluation worker pool size bounding intra-query parallelism (0 = GOMAXPROCS, 1 = sequential)")
		unordered   = fs.Bool("unordered", false, "first-row-early delivery: stream rows as produced (no canonical sort, LIMIT cancels remaining work, cache bypassed)")
		writable    = fs.Bool("writable", false, "accept SPARQL updates (INSERT DATA / DELETE DATA) via POST /sparql; read-only (403) otherwise")
		logCap      = fs.Int("query-log-cap", 0, "distinct queries tracked by the workload log feeding /advisor (0 = default 4096, negative disables)")
		logFile     = fs.String("query-log", "", "append every answered query to this JSONL file (replayable by gstored advise)")
		advisorKs   = fs.String("advisor-k", "", "comma-separated candidate site counts /advisor evaluates (default: current -sites)")
		slowMs      = fs.Int("slow-query-ms", -1, "log queries whose wall time reaches this many milliseconds as structured JSON (0 logs every query, negative disables)")
		slowLog     = fs.String("slow-query-log", "", "slow-query log file, size-rotated at -slow-query-log-max-bytes (default: stderr)")
		slowLogMax  = fs.Int64("slow-query-log-max-bytes", 0, "rotate the slow-query log file at this size (0 = default 64 MiB)")
		debugAddr   = fs.String("debug-addr", "", "serve net/http/pprof on this separate address (e.g. localhost:6060); disabled when empty")
		siteWorkers = fs.String("site-workers", "", "comma-separated worker-process addresses (from `gstored worker`); fragments are shipped to and hosted by them, sites map round-robin; empty keeps every site in-process")
	)
	fs.Parse(args)
	if (*dataPath == "") == (*dataset == "") {
		fmt.Fprintln(os.Stderr, "gstored serve: provide exactly one of -data or -dataset")
		os.Exit(2)
	}

	g := loadGraph(*dataPath, *dataset, *scale)
	dbCfg := gstored.Config{Sites: *sites, Strategy: *strategy, Mode: parseMode(*mode), EvalWorkers: *evalWork}
	if *siteWorkers != "" {
		for _, part := range strings.Split(*siteWorkers, ",") {
			if a := strings.TrimSpace(part); a != "" {
				dbCfg.Workers = append(dbCfg.Workers, a)
			}
		}
	}
	db, err := gstored.Open(g, dbCfg)
	if err != nil {
		fail(err)
	}
	defer db.Close()
	cfg := server.Config{
		MaxInFlight:      *maxInFlight,
		Workers:          *workers,
		QueryTimeout:     *timeout,
		CacheEntries:     *cache,
		CacheMaxRows:     *cacheRows,
		QueryLogCapacity: *logCap,
		Unordered:        *unordered,
		Writable:         *writable,
	}
	if *advisorKs != "" {
		cfg.AdvisorKs = parseKList(*advisorKs)
		if cfg.AdvisorKs == nil {
			fmt.Fprintf(os.Stderr, "gstored serve: -advisor-k %q must list positive integers\n", *advisorKs)
			os.Exit(2)
		}
	}
	if *logFile != "" {
		f, err := os.OpenFile(*logFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		cfg.QueryLogSink = f
	}
	if *slowMs >= 0 {
		cfg.SlowQueryThreshold = time.Duration(*slowMs) * time.Millisecond
		if *slowLog != "" {
			w, err := server.NewRotatingWriter(*slowLog, *slowLogMax)
			if err != nil {
				fail(err)
			}
			defer w.Close()
			cfg.SlowQueryLog = w
		} else {
			cfg.SlowQueryLog = os.Stderr
		}
	}
	if *debugAddr != "" {
		// pprof gets its own listener and mux: profiling endpoints never
		// share a port with query traffic, so they can stay unexposed (bind
		// localhost) while /sparql is public.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			ds := &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
			if err := ds.ListenAndServe(); err != nil {
				fmt.Fprintf(os.Stderr, "gstored serve: debug listener: %v\n", err)
			}
		}()
		fmt.Printf("pprof debug listener on %s\n", *debugAddr)
	}
	srv := server.New(db, cfg)
	fmt.Printf("serving %d triples over %d sites (%s partitioning, %s) on %s\n",
		g.Len(), db.NumSites(), db.StrategyName, db.Mode(), *addr)
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv,
		// Bound slow clients at the connection level; without these a
		// trickled request holds a goroutine forever and the per-query
		// timeout never engages.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	fail(hs.ListenAndServe())
}

// adviseMain replays a saved query log (JSONL, written by `gstored
// serve -query-log`) against a dataset and prints the workload-weighted
// Section VII cost table and the advisor's recommendation, next to what
// the data-only model would pick.
func adviseMain(args []string) {
	fs := flag.NewFlagSet("gstored advise", flag.ExitOnError)
	var (
		dataPath   = fs.String("data", "", "N-Triples input file")
		dataset    = fs.String("dataset", "", "generated benchmark dataset: lubm, yago, btc")
		scale      = fs.Int("scale", 0, "dataset scale (universities for lubm; 0 = default)")
		logPath    = fs.String("log", "", "saved query log to replay (JSONL; required)")
		ks         = fs.String("k", "12", "comma-separated candidate site counts")
		strategies = fs.String("strategies", "", "comma-separated strategies to evaluate (default: hash,semantic-hash,metis)")
		smoothing  = fs.Float64("smoothing", 0, "weight floor for never-queried predicates (0 = default 0.01, negative = none)")
	)
	fs.Parse(args)
	if (*dataPath == "") == (*dataset == "") {
		fmt.Fprintln(os.Stderr, "gstored advise: provide exactly one of -data or -dataset")
		os.Exit(2)
	}
	if *logPath == "" {
		fmt.Fprintln(os.Stderr, "gstored advise: -log is required")
		os.Exit(2)
	}
	candKs := parseKList(*ks)
	if len(candKs) == 0 {
		fmt.Fprintln(os.Stderr, "gstored advise: -k must list positive integers")
		os.Exit(2)
	}

	g := loadGraph(*dataPath, *dataset, *scale)
	// Sites/strategy here only seed the DB; the advisor evaluates every
	// candidate independently of what is "live".
	db, err := gstored.Open(g, gstored.Config{Sites: candKs[0]})
	if err != nil {
		fail(err)
	}

	f, err := os.Open(*logPath)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	qlog, replayed, skipped, err := gstored.ReplayQueryLog(db, f, 0)
	if err != nil {
		fail(err)
	}
	snap := qlog.Snapshot()
	fmt.Printf("replayed %d queries (%d distinct, %d unparseable skipped) from %s\n\n",
		replayed, snap.Distinct, skipped, *logPath)

	w := snap.Workload(*smoothing)
	if w.Empty() && replayed > 0 {
		fmt.Println("note: the replayed workload carries no recognized constant predicates")
		fmt.Println("      (queries whose predicates are absent from this dataset weigh nothing);")
		fmt.Println("      the evaluation below degenerates to the data-only §VII model")
		fmt.Println()
	}
	rec, err := db.AdviseStrategies(w, parseStrategyList(*strategies), candKs...)
	if err != nil {
		fail(err)
	}

	fmt.Printf("%-14s %4s %14s %14s %10s %12s\n", "strategy", "k", "workload cost", "data cost", "crossing", "w-crossing")
	for _, c := range rec.Candidates {
		fmt.Printf("%-14s %4d %14.1f %14.1f %10d %12.1f\n",
			c.Strategy, c.K, c.WorkloadCost.Cost, c.DataCost.Cost,
			c.DataCost.NumCrossing, c.WorkloadCost.WeightedCrossing)
	}
	fmt.Printf("\nworkload-weighted recommendation: %s, k=%d\n", rec.Strategy, rec.K)
	fmt.Printf("data-only §VII selection:         %s, k=%d\n", rec.DataStrategy, rec.DataK)
	if rec.Differs() {
		fmt.Println("→ the observed workload changes the verdict; apply with POST /repartition")
	} else {
		fmt.Println("→ the workload agrees with the data-only model")
	}
}

// parseKList parses a comma-separated list of positive integers; empty
// or invalid input yields nil.
func parseKList(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || k <= 0 {
			return nil
		}
		out = append(out, k)
	}
	return out
}

// parseStrategyList splits a comma-separated strategy list (empty =
// nil, meaning all three).
func parseStrategyList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// loadGraph reads an N-Triples file or generates a benchmark dataset.
func loadGraph(dataPath, dataset string, scale int) *gstored.Graph {
	if dataPath != "" {
		f, err := os.Open(dataPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		g, err := gstored.ReadNTriples(f)
		if err != nil {
			fail(err)
		}
		return g
	}
	switch strings.ToLower(dataset) {
	case "lubm":
		return gstored.GenerateLUBM(scale).Graph
	case "yago":
		return gstored.GenerateYAGO(scale).Graph
	case "btc":
		return gstored.GenerateBTC(scale).Graph
	default:
		fmt.Fprintf(os.Stderr, "gstored: unknown dataset %q (want lubm, yago or btc)\n", dataset)
		os.Exit(2)
		return nil
	}
}

func parseMode(mode string) gstored.Mode {
	switch strings.ToLower(mode) {
	case "basic":
		return gstored.ModeBasic
	case "la":
		return gstored.ModeLA
	case "lo":
		return gstored.ModeLO
	case "full", "":
		return gstored.ModeFull
	default:
		fmt.Fprintf(os.Stderr, "gstored: unknown mode %q\n", mode)
		os.Exit(2)
		return gstored.ModeFull
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "gstored: %v\n", err)
	os.Exit(1)
}
