// Command gstored loads an N-Triples file, partitions it across simulated
// sites, and evaluates a SPARQL BGP query, printing the result rows and
// the per-stage statistics of the paper's Tables I-III.
//
// Usage:
//
//	gstored -data graph.nt -query 'SELECT ?x WHERE { ?x <p> ?y }'
//	gstored -data graph.nt -queryfile q.rq -sites 12 -strategy semantic-hash -mode full
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gstored"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "N-Triples input file (required)")
		queryText = flag.String("query", "", "SPARQL query text")
		queryFile = flag.String("queryfile", "", "file containing the SPARQL query")
		sites     = flag.Int("sites", 12, "number of simulated sites")
		strategy  = flag.String("strategy", "hash", "partitioning: hash, semantic-hash, metis, best")
		mode      = flag.String("mode", "full", "engine mode: basic, la, lo, full")
		stats     = flag.Bool("stats", true, "print per-stage statistics")
	)
	flag.Parse()

	if *dataPath == "" {
		fmt.Fprintln(os.Stderr, "gstored: -data is required")
		flag.Usage()
		os.Exit(2)
	}
	q := *queryText
	if *queryFile != "" {
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			fail(err)
		}
		q = string(b)
	}
	if q == "" {
		fmt.Fprintln(os.Stderr, "gstored: provide -query or -queryfile")
		os.Exit(2)
	}
	var m gstored.Mode
	switch strings.ToLower(*mode) {
	case "basic":
		m = gstored.ModeBasic
	case "la":
		m = gstored.ModeLA
	case "lo":
		m = gstored.ModeLO
	case "full", "":
		m = gstored.ModeFull
	default:
		fmt.Fprintf(os.Stderr, "gstored: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	f, err := os.Open(*dataPath)
	if err != nil {
		fail(err)
	}
	g, err := gstored.ReadNTriples(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	db, err := gstored.Open(g, gstored.Config{Sites: *sites, Strategy: *strategy, Mode: m})
	if err != nil {
		fail(err)
	}
	fmt.Printf("loaded %d triples over %d sites (%s partitioning)\n", g.Len(), db.NumSites(), db.StrategyName)

	res, err := db.Query(q)
	if err != nil {
		fail(err)
	}
	cols := db.Columns(res.Query)
	fmt.Println(strings.Join(cols, "\t"))
	for _, row := range db.Rows(res) {
		fmt.Println(strings.Join(row, "\t"))
	}
	if *stats {
		s := res.Stats
		fmt.Fprintf(os.Stderr, "\n%s: %d matches (%d local, %d crossing) in %v\n",
			s.Mode, s.NumMatches, s.NumLocalMatches, s.NumCrossingMatches, s.TotalTime)
		fmt.Fprintf(os.Stderr, "stages: candidates %v (%d B), partial eval %v (%d LPMs), LEC %v (%d B, %d features, %d retained), assembly %v (%d B)\n",
			s.CandidatesTime, s.CandidatesShipment,
			s.PartialTime, s.NumPartialMatches,
			s.LECTime, s.LECShipment, s.NumLECFeatures, s.NumRetainedPartialMatches,
			s.AssemblyTime, s.AssemblyShipment)
		fmt.Fprintf(os.Stderr, "network: %d bytes in %d messages (est. comm time %v)\n",
			s.TotalShipment, s.Messages, s.EstimatedCommTime)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "gstored: %v\n", err)
	os.Exit(1)
}
