// Command gstored-lint runs the gstored static-analysis suite
// (internal/analysis): genswap, ctxflow, spanpair, metriclabel,
// looseerr, lockpath, chanleak, and deferloop — the last three, plus
// the path-sensitive halves of spanpair and looseerr, ride on the
// per-function CFG + dataflow layer in internal/analysis.
//
// Two modes:
//
//	gstored-lint [dir]            standalone: load, type-check, and
//	                              analyze every package under dir
//	                              (default: the current module)
//	go vet -vettool=gstored-lint  vet protocol: cmd/go drives the
//	                              suite one package at a time with
//	                              cached export data
//
// Standalone exit status is 1 when any diagnostic is reported; the vet
// protocol uses vet's own convention (2 per flagged package).
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"gstored/internal/analysis"
)

func main() {
	args := os.Args[1:]
	if analysis.UnitcheckerMain(args, analysis.All()) {
		return
	}

	root := "."
	if len(args) == 1 {
		root = args[0]
	} else if len(args) > 1 {
		fmt.Fprintln(os.Stderr, "usage: gstored-lint [module-dir | vet.cfg]")
		os.Exit(1)
	}
	root = findModuleRoot(root)

	pkgs, fset, err := analysis.LoadAll(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gstored-lint: %v\n", err)
		os.Exit(1)
	}
	bad := false
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(fset, pkg.Files, pkg.Types, pkg.Info, analysis.All())
		if err != nil {
			fmt.Fprintf(os.Stderr, "gstored-lint: %s: %v\n", pkg.Path, err)
			os.Exit(1)
		}
		for _, d := range diags {
			bad = true
			fmt.Printf("%v: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
	if bad {
		os.Exit(1)
	}
}

// findModuleRoot walks up from dir to the nearest go.mod, defaulting to
// dir itself if none is found (LoadAll will then produce a clear error).
func findModuleRoot(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return dir
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return abs
		}
		d = parent
	}
}
