// Command rdfgen emits the synthetic benchmark datasets as N-Triples, and
// optionally the matching benchmark queries as SPARQL files.
//
// Usage:
//
//	rdfgen -dataset lubm -scale 8 > lubm8.nt
//	rdfgen -dataset yago -scale 2 -queries q/ > yago2.nt
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gstored"
)

func main() {
	var (
		dataset  = flag.String("dataset", "lubm", "dataset: lubm, yago, btc")
		scale    = flag.Int("scale", 0, "scale (LUBM: universities; others: multiplier); 0 = default")
		queryDir = flag.String("queries", "", "also write each benchmark query to this directory as <name>.rq")
	)
	flag.Parse()

	var ds *gstored.Dataset
	switch *dataset {
	case "lubm":
		ds = gstored.GenerateLUBM(*scale)
	case "yago":
		ds = gstored.GenerateYAGO(*scale)
	case "btc":
		ds = gstored.GenerateBTC(*scale)
	default:
		fmt.Fprintf(os.Stderr, "rdfgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	if err := gstored.WriteNTriples(os.Stdout, ds.Graph); err != nil {
		fmt.Fprintf(os.Stderr, "rdfgen: %v\n", err)
		os.Exit(1)
	}
	if *queryDir != "" {
		if err := os.MkdirAll(*queryDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "rdfgen: %v\n", err)
			os.Exit(1)
		}
		for _, q := range ds.Queries {
			path := filepath.Join(*queryDir, q.Name+".rq")
			if err := os.WriteFile(path, []byte(q.SPARQL+"\n"), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "rdfgen: %v\n", err)
				os.Exit(1)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "rdfgen: %s: %d triples, %d queries\n", ds.Name, ds.Graph.Len(), len(ds.Queries))
}
