// Command experiments regenerates the paper's tables and figures over the
// synthetic workloads. Each -run target corresponds to one table/figure of
// the evaluation (Section VIII); see DESIGN.md for the experiment index
// and EXPERIMENTS.md for recorded outputs.
//
// Usage:
//
//	experiments -run all
//	experiments -run tableI -sites 12 -lubm 10
//	experiments -run fig12 -yago 1 -btc 1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gstored/internal/exp"
	"gstored/internal/workload"
)

func main() {
	var (
		run   = flag.String("run", "all", "experiment: tableI, tableII, tableIII, tableIV, fig9, fig10, fig11, fig12, or all")
		sites = flag.Int("sites", exp.DefaultSites, "number of simulated sites")
		lubm  = flag.Int("lubm", 8, "LUBM scale (universities)")
		yago  = flag.Int("yago", 1, "YAGO2 scale")
		btc   = flag.Int("btc", 1, "BTC scale")
	)
	flag.Parse()

	lubmDS := func() *workload.Dataset { return workload.NewLUBM(workload.LUBMConfig{Universities: *lubm}) }
	yagoDS := func() *workload.Dataset { return workload.NewYAGO(workload.YAGOConfig{Scale: *yago}) }
	btcDS := func() *workload.Dataset { return workload.NewBTC(workload.BTCConfig{Scale: *btc}) }

	targets := map[string]func() error{
		"tableI": func() error {
			t, err := exp.RunStageTable(lubmDS(), *sites)
			if err != nil {
				return err
			}
			fmt.Println("=== Table I ===")
			fmt.Println(t.Render())
			return nil
		},
		"tableII": func() error {
			t, err := exp.RunStageTable(yagoDS(), *sites)
			if err != nil {
				return err
			}
			fmt.Println("=== Table II ===")
			fmt.Println(t.Render())
			return nil
		},
		"tableIII": func() error {
			t, err := exp.RunStageTable(btcDS(), *sites)
			if err != nil {
				return err
			}
			fmt.Println("=== Table III ===")
			fmt.Println(t.Render())
			return nil
		},
		"tableIV": func() error {
			fmt.Println("=== Table IV ===")
			for _, ds := range []*workload.Dataset{yagoDS(), lubmDS()} {
				p, err := exp.RunPartitionings(ds, *sites)
				if err != nil {
					return err
				}
				fmt.Println(p.RenderCosts())
			}
			return nil
		},
		"fig9": func() error {
			fmt.Println("=== Fig. 9 ===")
			for _, ds := range []*workload.Dataset{lubmDS(), yagoDS()} {
				a, err := exp.RunAblation(ds, *sites)
				if err != nil {
					return err
				}
				fmt.Println(a.Render())
			}
			return nil
		},
		"fig10": func() error {
			fmt.Println("=== Fig. 10 ===")
			for _, ds := range []*workload.Dataset{lubmDS(), yagoDS()} {
				p, err := exp.RunPartitionings(ds, *sites)
				if err != nil {
					return err
				}
				fmt.Println(p.Render())
			}
			return nil
		},
		"fig11": func() error {
			s, err := exp.RunScalability([]int{*lubm, *lubm * 2, *lubm * 4}, *sites)
			if err != nil {
				return err
			}
			fmt.Println("=== Fig. 11 ===")
			fmt.Println(s.Render())
			return nil
		},
		"fig12": func() error {
			fmt.Println("=== Fig. 12 ===")
			for _, ds := range []*workload.Dataset{yagoDS(), lubmDS(), btcDS()} {
				c, err := exp.RunComparison(ds, *sites)
				if err != nil {
					return err
				}
				fmt.Println(c.Render())
			}
			return nil
		},
	}
	order := []string{"tableI", "tableII", "tableIII", "tableIV", "fig9", "fig10", "fig11", "fig12"}

	var selected []string
	if *run == "all" {
		selected = order
	} else {
		for _, name := range strings.Split(*run, ",") {
			if _, ok := targets[name]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (have: %s, all)\n", name, strings.Join(order, ", "))
				os.Exit(2)
			}
			selected = append(selected, name)
		}
	}
	for _, name := range selected {
		if err := targets[name](); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}
}
