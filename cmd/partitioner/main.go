// Command partitioner evaluates the Section VII cost model over the three
// partitioning strategies for an N-Triples file and recommends the
// cheapest — the paper's partitioning-selection rule.
//
// Usage:
//
//	partitioner -data graph.nt -sites 12
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"gstored"
)

func main() {
	var (
		dataPath = flag.String("data", "", "N-Triples input file (required)")
		sites    = flag.Int("sites", 12, "number of fragments")
	)
	flag.Parse()
	if *dataPath == "" {
		fmt.Fprintln(os.Stderr, "partitioner: -data is required")
		os.Exit(2)
	}
	f, err := os.Open(*dataPath)
	if err != nil {
		fail(err)
	}
	g, err := gstored.ReadNTriples(f)
	_ = f.Close() // read-side close; the parse error below is the one that matters
	if err != nil {
		fail(err)
	}
	fmt.Printf("%d triples, %d fragments\n\n", g.Len(), *sites)
	fmt.Printf("%-14s %14s %10s %10s %10s\n", "strategy", "cost", "E_F(V)", "maxEdges", "crossing")

	type row struct {
		name string
		cost gstored.CostBreakdown
	}
	var rows []row
	for _, name := range []string{"hash", "semantic-hash", "metis"} {
		c, err := gstored.PartitionCost(g, name, *sites)
		if err != nil {
			fail(err)
		}
		rows = append(rows, row{name, c})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].cost.Cost < rows[j].cost.Cost })
	for _, r := range rows {
		fmt.Printf("%-14s %14.1f %10.2f %10d %10d\n",
			r.name, r.cost.Cost, r.cost.EV, r.cost.MaxFragmentEdges, r.cost.NumCrossing)
	}
	fmt.Printf("\nrecommended: %s (smallest CostPartitioning, Section VII)\n", rows[0].name)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "partitioner: %v\n", err)
	os.Exit(1)
}
