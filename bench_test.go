// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section VIII). Run with:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkTable*/BenchmarkFig* target corresponds to one table or
// figure (the per-experiment index is in DESIGN.md); custom metrics report
// the data shipment and result counts the paper tabulates, so the paper's
// rows can be read off the benchmark output. Absolute times come from the
// simulator — the shapes, not the magnitudes, are the reproduction target
// (see EXPERIMENTS.md).
package gstored

import (
	"fmt"
	"testing"

	"gstored/internal/engine"
	"gstored/internal/exp"
	"gstored/internal/fragment"
	"gstored/internal/partition"
	"gstored/internal/store"
	"gstored/internal/workload"
)

const benchSites = 12

func benchLUBM() *workload.Dataset { return workload.NewLUBM(workload.LUBMConfig{Universities: 8}) }
func benchYAGO() *workload.Dataset { return workload.NewYAGO(workload.YAGOConfig{Scale: 1}) }
func benchBTC() *workload.Dataset  { return workload.NewBTC(workload.BTCConfig{Scale: 1}) }

// benchStageTable runs one Table I/II/III experiment per query.
func benchStageTable(b *testing.B, ds *workload.Dataset) {
	st := store.FromGraph(ds.Graph)
	d, err := fragment.BuildWith(st, partition.Hash{}, benchSites)
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.New(d)
	for _, bq := range ds.Queries {
		q, err := bq.Parse(ds.Graph.Dict)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(bq.Name, func(b *testing.B) {
			var last engine.Stats
			for i := 0; i < b.N; i++ {
				res, err := eng.Execute(q, engine.Config{Mode: engine.Full})
				if err != nil {
					b.Fatal(err)
				}
				last = res.Stats
			}
			b.ReportMetric(float64(last.TotalShipment)/1024, "shipKB")
			b.ReportMetric(float64(last.NumPartialMatches), "LPMs")
			b.ReportMetric(float64(last.NumMatches), "matches")
			b.ReportMetric(float64(last.NumCrossingMatches), "crossing")
		})
	}
}

// BenchmarkTableI reproduces Table I: per-stage evaluation on LUBM.
func BenchmarkTableI(b *testing.B) { benchStageTable(b, benchLUBM()) }

// BenchmarkTableII reproduces Table II: per-stage evaluation on YAGO2.
func BenchmarkTableII(b *testing.B) { benchStageTable(b, benchYAGO()) }

// BenchmarkTableIII reproduces Table III: per-stage evaluation on BTC.
func BenchmarkTableIII(b *testing.B) { benchStageTable(b, benchBTC()) }

// BenchmarkTableIV reproduces Table IV: CostPartitioning of the three
// strategies on YAGO2 and LUBM.
func BenchmarkTableIV(b *testing.B) {
	for _, ds := range []*workload.Dataset{benchYAGO(), benchLUBM()} {
		st := store.FromGraph(ds.Graph)
		for _, strat := range []partition.Strategy{partition.Hash{}, partition.SemanticHash{}, partition.Metis{}} {
			b.Run(ds.Name+"/"+strat.Name(), func(b *testing.B) {
				var cost partition.CostBreakdown
				for i := 0; i < b.N; i++ {
					a, err := strat.Partition(st, benchSites)
					if err != nil {
						b.Fatal(err)
					}
					cost = partition.Cost(st, a)
				}
				b.ReportMetric(cost.Cost, "cost")
				b.ReportMetric(float64(cost.NumCrossing), "crossing")
			})
		}
	}
}

// BenchmarkFig9 reproduces Fig. 9: the Basic/LA/LO/Full ablation on the
// complex queries of LUBM and YAGO2.
func BenchmarkFig9(b *testing.B) {
	for _, ds := range []*workload.Dataset{benchLUBM(), benchYAGO()} {
		st := store.FromGraph(ds.Graph)
		d, err := fragment.BuildWith(st, partition.Hash{}, benchSites)
		if err != nil {
			b.Fatal(err)
		}
		eng := engine.New(d)
		for _, bq := range ds.Queries {
			if bq.Shape != workload.ShapeComplex {
				continue
			}
			q, err := bq.Parse(ds.Graph.Dict)
			if err != nil {
				b.Fatal(err)
			}
			for _, mode := range []engine.Mode{engine.Basic, engine.LA, engine.LO, engine.Full} {
				b.Run(fmt.Sprintf("%s/%s/%v", ds.Name, bq.Name, mode), func(b *testing.B) {
					var ship int64
					for i := 0; i < b.N; i++ {
						res, err := eng.Execute(q, engine.Config{Mode: mode})
						if err != nil {
							b.Fatal(err)
						}
						ship = res.Stats.TotalShipment
					}
					b.ReportMetric(float64(ship)/1024, "shipKB")
				})
			}
		}
	}
}

// BenchmarkFig10 reproduces Fig. 10: full-system evaluation under each
// partitioning strategy.
func BenchmarkFig10(b *testing.B) {
	for _, ds := range []*workload.Dataset{benchLUBM(), benchYAGO()} {
		st := store.FromGraph(ds.Graph)
		for _, strat := range []partition.Strategy{partition.Hash{}, partition.SemanticHash{}, partition.Metis{}} {
			d, err := fragment.BuildWith(st, strat, benchSites)
			if err != nil {
				b.Fatal(err)
			}
			eng := engine.New(d)
			for _, bq := range ds.Queries {
				if bq.Shape != workload.ShapeComplex {
					continue
				}
				q, err := bq.Parse(ds.Graph.Dict)
				if err != nil {
					b.Fatal(err)
				}
				b.Run(fmt.Sprintf("%s/%s/%s", ds.Name, bq.Name, strat.Name()), func(b *testing.B) {
					var lecKB float64
					for i := 0; i < b.N; i++ {
						res, err := eng.Execute(q, engine.Config{Mode: engine.Full})
						if err != nil {
							b.Fatal(err)
						}
						lecKB = float64(res.Stats.LECShipment) / 1024
					}
					b.ReportMetric(lecKB, "lecKB")
				})
			}
		}
	}
}

// BenchmarkFig11 reproduces Fig. 11: scalability across LUBM sizes.
func BenchmarkFig11(b *testing.B) {
	for _, scale := range []int{4, 8, 16} {
		ds := workload.NewLUBM(workload.LUBMConfig{Universities: scale})
		st := store.FromGraph(ds.Graph)
		d, err := fragment.BuildWith(st, partition.Hash{}, benchSites)
		if err != nil {
			b.Fatal(err)
		}
		eng := engine.New(d)
		for _, bq := range ds.Queries {
			q, err := bq.Parse(ds.Graph.Dict)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%dU/%s", scale, bq.Name), func(b *testing.B) {
				b.ReportMetric(float64(ds.Graph.Len()), "triples")
				for i := 0; i < b.N; i++ {
					if _, err := eng.Execute(q, engine.Config{Mode: engine.Full}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig12 reproduces Fig. 12: gStoreD under three partitionings
// versus DREAM, S2RDF, CliqueSquare and S2X. The cloud baselines' reported
// times include their simulated job overheads, so compare the printed
// repTimeMS metric (not ns/op) against the paper's bars.
func BenchmarkFig12(b *testing.B) {
	for _, ds := range []*workload.Dataset{benchYAGO(), benchLUBM(), benchBTC()} {
		c, err := exp.RunComparison(ds, benchSites)
		if err != nil {
			b.Fatal(err)
		}
		for _, qn := range c.Queries {
			for _, sys := range c.Systems {
				cell := c.Cells[qn][sys]
				b.Run(fmt.Sprintf("%s/%s/%s", ds.Name, qn, sys), func(b *testing.B) {
					if cell.Err != nil {
						b.Skipf("system failed (paper reports such failures too): %v", cell.Err)
					}
					b.ReportMetric(float64(cell.Time.Microseconds())/1000, "repTimeMS")
				})
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the core algorithmic components.

// BenchmarkPartialEvaluation measures local-partial-match enumeration per
// fragment (the Stage-1 cost of Tables I-III).
func BenchmarkPartialEvaluation(b *testing.B) {
	ds := benchLUBM()
	st := store.FromGraph(ds.Graph)
	d, err := fragment.BuildWith(st, partition.Hash{}, benchSites)
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.New(d)
	bq, _ := ds.Query("LQ1")
	q, err := bq.Parse(ds.Graph.Dict)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Execute(q, engine.Config{Mode: engine.Basic}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssemblyLECvsBasic contrasts Algorithm 3 with the [18] join on
// the same partial matches (the Section V claim).
func BenchmarkAssemblyLECvsBasic(b *testing.B) {
	ds := benchLUBM()
	st := store.FromGraph(ds.Graph)
	d, err := fragment.BuildWith(st, partition.Hash{}, benchSites)
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.New(d)
	bq, _ := ds.Query("LQ7")
	q, err := bq.Parse(ds.Graph.Dict)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []engine.Mode{engine.Basic, engine.LA} {
		b.Run(mode.String(), func(b *testing.B) {
			var joins int
			for i := 0; i < b.N; i++ {
				res, err := eng.Execute(q, engine.Config{Mode: mode})
				if err != nil {
					b.Fatal(err)
				}
				joins = res.Stats.JoinAttempts
			}
			b.ReportMetric(float64(joins), "joinAttempts")
		})
	}
}

// BenchmarkStoreMatch measures the centralized matcher (the gStore role).
func BenchmarkStoreMatch(b *testing.B) {
	ds := benchLUBM()
	st := store.FromGraph(ds.Graph)
	bq, _ := ds.Query("LQ1")
	q, err := bq.Parse(ds.Graph.Dict)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Match(q)
	}
}

// BenchmarkSPARQLParse measures the parser.
func BenchmarkSPARQLParse(b *testing.B) {
	ds := benchLUBM()
	bq, _ := ds.Query("LQ1")
	for i := 0; i < b.N; i++ {
		if _, err := bq.Parse(ds.Graph.Dict); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitioners measures the three strategies on the LUBM graph.
func BenchmarkPartitioners(b *testing.B) {
	ds := benchLUBM()
	st := store.FromGraph(ds.Graph)
	for _, strat := range []partition.Strategy{partition.Hash{}, partition.SemanticHash{}, partition.Metis{}} {
		b.Run(strat.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := strat.Partition(st, benchSites); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
