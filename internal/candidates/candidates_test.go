package candidates

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"gstored/internal/fragment"
	"gstored/internal/paperexample"
	"gstored/internal/partial"
	"gstored/internal/rdf"
)

func TestBitVectorBasics(t *testing.T) {
	bv := NewBitVector(128)
	ids := []rdf.TermID{1, 2, 77, 1000, 65535}
	for _, id := range ids {
		bv.Set(id)
	}
	for _, id := range ids {
		if !bv.Test(id) {
			t.Errorf("bit for %d lost", id)
		}
	}
	if bv.Bytes() != 16 {
		t.Errorf("Bytes = %d, want 16", bv.Bytes())
	}
	if bv.PopCount() == 0 || bv.PopCount() > len(ids) {
		t.Errorf("PopCount = %d", bv.PopCount())
	}
}

func TestBitVectorRounding(t *testing.T) {
	bv := NewBitVector(1)
	if bv.n != 64 {
		t.Errorf("1-bit vector rounded to %d, want 64", bv.n)
	}
	bv0 := NewBitVector(0)
	if bv0.n != DefaultBits {
		t.Errorf("0 defaults to %d, got %d", DefaultBits, bv0.n)
	}
}

func TestBitVectorOrMismatch(t *testing.T) {
	a, b := NewBitVector(64), NewBitVector(128)
	if err := a.Or(b); err == nil {
		t.Error("expected length-mismatch error")
	}
	if err := a.Or(nil); err != nil {
		t.Errorf("Or(nil) = %v", err)
	}
}

func TestBitVectorNoFalseNegativesProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bv := NewBitVector(256)
		var set []rdf.TermID
		for i := 0; i < 50; i++ {
			id := rdf.TermID(r.Uint32())
			bv.Set(id)
			set = append(set, id)
		}
		for _, id := range set {
			if !bv.Test(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestAlgorithm4OnPaperExample runs the full Section VI flow on the
// running example. The optimization's showcase: PM2_3 = [014,013,NULL,
// 017,NULL] is a false positive (014 has no incoming influencedBy, so it
// is an internal candidate for ?p2 at no site) and the filter suppresses
// it during partial evaluation — before LEC pruning would catch it.
func TestAlgorithm4OnPaperExample(t *testing.T) {
	ex := paperexample.New()
	d, err := fragment.Build(ex.Store, ex.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	var sites []*SiteVectors
	ship := 0
	for _, f := range d.Fragments {
		sv := ComputeSite(f, ex.Query, 1024)
		sites = append(sites, sv)
		ship += sv.ShipmentBytes()
	}
	if ship == 0 {
		t.Fatal("no shipment recorded")
	}
	union, err := Union(sites, ex.Query, 1024)
	if err != nil {
		t.Fatal(err)
	}
	filter := union.Filter()
	if filter(0, ex.V[14]) {
		t.Error("014 should be rejected as a candidate for ?p2 (it heads no influencedBy edge)")
	}
	total := 0
	for _, f := range d.Fragments {
		ms, err := partial.Compute(f, ex.Query, partial.Options{ExtendedFilter: filter})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ms {
			for _, u := range m.Vec {
				if u == ex.V[14] {
					t.Error("PM2_3 survived the candidate filter")
				}
			}
		}
		total += len(ms)
	}
	if total != 7 {
		t.Errorf("filtered partial matches = %d, want 7 (Fig. 3 minus PM2_3)", total)
	}
	// Constant vertices are never filtered.
	if !filter(4, 999999) {
		t.Error("constant vertex position should admit anything")
	}
}

// TestFilterPrunesNonCandidates: a vertex that is no internal candidate
// anywhere must be rejected (modulo hash collisions; with 2^20 bits and a
// 20-vertex graph collisions are implausible).
func TestFilterPrunesNonCandidates(t *testing.T) {
	ex := paperexample.New()
	d, err := fragment.Build(ex.Store, ex.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	var sites []*SiteVectors
	for _, f := range d.Fragments {
		sites = append(sites, ComputeSite(f, ex.Query, DefaultBits))
	}
	union, err := Union(sites, ex.Query, DefaultBits)
	if err != nil {
		t.Fatal(err)
	}
	filter := union.Filter()
	// Vertex 019 (s3:Pla1) has only a label edge — it can never match ?p2
	// (query vertex 0, which needs outgoing mainInterest and incoming
	// influencedBy); nor can vertex 002 (a date literal).
	if filter(0, ex.V[19]) {
		t.Error("s3:Pla1 should not be a candidate for ?p2")
	}
	if filter(0, ex.V[2]) {
		t.Error("literal 002 should not be a candidate for ?p2")
	}
	// 006 is a genuine candidate for ?p2.
	if !filter(0, ex.V[6]) {
		t.Error("006 must remain a candidate for ?p2")
	}
}

// TestFilteredPartialEvaluationSafety: computing partial matches with the
// Algorithm 4 filter loses no partial match whose extended bindings are
// genuine internal candidates elsewhere — i.e. no final result can be
// lost. We check the stronger property that filtered PMs ⊆ unfiltered PMs.
func TestFilteredPartialEvaluationSafety(t *testing.T) {
	ex := paperexample.New()
	d, err := fragment.Build(ex.Store, ex.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	var sites []*SiteVectors
	for _, f := range d.Fragments {
		sites = append(sites, ComputeSite(f, ex.Query, DefaultBits))
	}
	union, _ := Union(sites, ex.Query, DefaultBits)
	for _, f := range d.Fragments {
		unfiltered, err := partial.Compute(f, ex.Query, partial.Options{})
		if err != nil {
			t.Fatal(err)
		}
		filtered, err := partial.Compute(f, ex.Query, partial.Options{ExtendedFilter: union.Filter()})
		if err != nil {
			t.Fatal(err)
		}
		keys := map[string]bool{}
		for _, m := range unfiltered {
			keys[m.Key()] = true
		}
		for _, m := range filtered {
			if !keys[m.Key()] {
				t.Errorf("F%d: filtered run invented PM %v", f.ID+1, m.Vec)
			}
		}
		if len(filtered) > len(unfiltered) {
			t.Errorf("F%d: filter grew the PM set", f.ID+1)
		}
	}
}

func TestComputeSiteSkipsConstants(t *testing.T) {
	ex := paperexample.New()
	d, _ := fragment.Build(ex.Store, ex.Assignment)
	sv := ComputeSite(d.Fragments[0], ex.Query, 512)
	if sv.Vectors[4] != nil {
		t.Error("constant query vertex received a candidate vector")
	}
	for qv := 0; qv < 4; qv++ {
		if sv.Vectors[qv] == nil {
			t.Errorf("variable vertex %d missing vector", qv)
		}
	}
}

func TestUnionShipmentAccounting(t *testing.T) {
	ex := paperexample.New()
	d, _ := fragment.Build(ex.Store, ex.Assignment)
	sv := ComputeSite(d.Fragments[0], ex.Query, 1<<12)
	// 4 variable vertices × (2^12 bits = 512 bytes).
	if got := sv.ShipmentBytes(); got != 4*512 {
		t.Errorf("ShipmentBytes = %d, want %d", got, 4*512)
	}
}

func TestUnionLengthMismatch(t *testing.T) {
	ex := paperexample.New()
	d, _ := fragment.Build(ex.Store, ex.Assignment)
	a := ComputeSite(d.Fragments[0], ex.Query, 64)
	b := ComputeSite(d.Fragments[1], ex.Query, 128)
	if _, err := Union([]*SiteVectors{a, b}, ex.Query, 64); err == nil {
		t.Error("expected bit-length mismatch error")
	}
	_ = fmt.Sprint(a, b)
}

func TestBitVectorGobRoundTrip(t *testing.T) {
	v := NewBitVector(256)
	for _, id := range []rdf.TermID{1, 7, 42, 9999} {
		v.Set(id)
	}
	data, err := v.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var got BitVector
	if err := got.GobDecode(data); err != nil {
		t.Fatal(err)
	}
	if got.n != v.n || got.PopCount() != v.PopCount() {
		t.Fatalf("round trip: %d bits / %d set, want %d / %d", got.n, got.PopCount(), v.n, v.PopCount())
	}
	for _, id := range []rdf.TermID{1, 7, 42, 9999} {
		if !got.Test(id) {
			t.Errorf("bit for term %d lost", id)
		}
	}
	if err := got.GobDecode([]byte{1, 2, 3}); err == nil {
		t.Error("truncated payload decoded")
	}
	if err := got.GobDecode(append(data, 0)); err == nil {
		t.Error("misaligned payload decoded")
	}
}

func TestSiteVectorsGobRoundTripWithNilSlots(t *testing.T) {
	// Constant query vertices leave nil slots — the very case gob's
	// default encoding rejects and the custom one must preserve.
	sv := &SiteVectors{Vectors: make([]*BitVector, 4)}
	sv.Vectors[0] = NewBitVector(128)
	sv.Vectors[0].Set(5)
	sv.Vectors[2] = NewBitVector(128)
	sv.Vectors[2].Set(77)
	data, err := sv.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var got SiteVectors
	if err := got.GobDecode(data); err != nil {
		t.Fatal(err)
	}
	if len(got.Vectors) != 4 {
		t.Fatalf("slot count = %d, want 4", len(got.Vectors))
	}
	if got.Vectors[1] != nil || got.Vectors[3] != nil {
		t.Error("nil slots did not survive the round trip")
	}
	if got.Vectors[0] == nil || !got.Vectors[0].Test(5) {
		t.Error("slot 0 lost its bit")
	}
	if got.Vectors[2] == nil || !got.Vectors[2].Test(77) {
		t.Error("slot 2 lost its bit")
	}
	if err := got.GobDecode(data[:len(data)-3]); err == nil {
		t.Error("truncated payload decoded")
	}
	if err := got.GobDecode(append(data, 9)); err == nil {
		t.Error("trailing bytes accepted")
	}
}
