// Package candidates implements Section VI: assembling variables' internal
// candidates. Each site compresses the internal candidate set C(Q, v) of
// every variable vertex into a fixed-length hashed bit vector; the
// coordinator ORs the per-site vectors and broadcasts the union, which the
// partial-evaluation stage then uses to discard extended-vertex bindings
// that are internal candidates at no site (Algorithm 4).
//
// The vectors behave like Bloom filters with a single hash function: false
// positives only, never false negatives, so filtering is always safe.
package candidates

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"gstored/internal/fragment"
	"gstored/internal/query"
	"gstored/internal/rdf"
)

// DefaultBits is the default bit-vector length per variable (16 Ki bits,
// i.e. 2 KiB on the wire — "fixed length" per Section VI, sized for the
// repository's simulator-scale datasets; production deployments over
// billions of vertices would raise it).
const DefaultBits = 1 << 14

// BitVector is a fixed-length bit set addressed by hashed TermIDs.
type BitVector struct {
	bits []uint64
	n    int
}

// NewBitVector returns an all-zero vector of n bits (n must be positive
// and is rounded up to a multiple of 64).
func NewBitVector(n int) *BitVector {
	if n <= 0 {
		n = DefaultBits
	}
	words := (n + 63) / 64
	return &BitVector{bits: make([]uint64, words), n: words * 64}
}

// hash maps a term ID to a bit position; splitmix64 scrambles the dense
// dictionary IDs so consecutive IDs do not collide into runs.
func (b *BitVector) hash(id rdf.TermID) int {
	x := uint64(id)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(b.n))
}

// Set marks id's bit.
func (b *BitVector) Set(id rdf.TermID) {
	i := b.hash(id)
	b.bits[i/64] |= 1 << uint(i%64)
}

// Test reports whether id's bit is set.
func (b *BitVector) Test(id rdf.TermID) bool {
	i := b.hash(id)
	return b.bits[i/64]&(1<<uint(i%64)) != 0
}

// Or folds other into b. The vectors must have equal length.
func (b *BitVector) Or(other *BitVector) error {
	if other == nil {
		return nil
	}
	if b.n != other.n {
		return fmt.Errorf("candidates: OR of %d-bit and %d-bit vectors", b.n, other.n)
	}
	for i := range b.bits {
		b.bits[i] |= other.bits[i]
	}
	return nil
}

// Bytes reports the wire size of the vector.
func (b *BitVector) Bytes() int { return len(b.bits) * 8 }

// GobEncode implements gob.GobEncoder: little-endian words after the bit
// length, so candidate vectors can ride the coordinator↔worker RPC.
func (b *BitVector) GobEncode() ([]byte, error) {
	out := make([]byte, 8+8*len(b.bits))
	binary.LittleEndian.PutUint64(out, uint64(b.n))
	for i, w := range b.bits {
		binary.LittleEndian.PutUint64(out[8+8*i:], w)
	}
	return out, nil
}

// GobDecode implements gob.GobDecoder.
func (b *BitVector) GobDecode(data []byte) error {
	if len(data) < 8 || len(data)%8 != 0 {
		return fmt.Errorf("candidates: bit vector payload of %d bytes", len(data))
	}
	n := int(binary.LittleEndian.Uint64(data))
	words := len(data)/8 - 1
	if n != words*64 {
		return fmt.Errorf("candidates: bit vector claims %d bits over %d words", n, words)
	}
	b.n = n
	b.bits = make([]uint64, words)
	for i := range b.bits {
		b.bits[i] = binary.LittleEndian.Uint64(data[8+8*i:])
	}
	return nil
}

// PopCount returns the number of set bits (diagnostics).
func (b *BitVector) PopCount() int {
	c := 0
	for _, w := range b.bits {
		for ; w != 0; w &= w - 1 {
			c++
		}
	}
	return c
}

// SiteVectors holds one site's candidate bit vectors, indexed by query
// vertex (nil for constant vertices).
type SiteVectors struct {
	Vectors []*BitVector
}

// GobEncode implements gob.GobEncoder. SiteVectors needs a custom
// encoding because gob refuses nil pointers inside slices, and constant
// query vertices legitimately have no vector: each slot is encoded as a
// length-prefixed vector payload, zero length marking nil.
func (s *SiteVectors) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(s.Vectors)))
	buf.Write(hdr[:])
	for _, v := range s.Vectors {
		if v == nil {
			binary.LittleEndian.PutUint64(hdr[:], 0)
			buf.Write(hdr[:])
			continue
		}
		b, err := v.GobEncode()
		if err != nil {
			return nil, err
		}
		binary.LittleEndian.PutUint64(hdr[:], uint64(len(b)))
		buf.Write(hdr[:])
		buf.Write(b)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (s *SiteVectors) GobDecode(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("candidates: site-vectors payload of %d bytes", len(data))
	}
	n := binary.LittleEndian.Uint64(data)
	data = data[8:]
	if n > uint64(len(data)) { // each non-nil slot needs >= 8 bytes anyway
		return fmt.Errorf("candidates: site-vectors claim %d slots in %d bytes", n, len(data))
	}
	s.Vectors = make([]*BitVector, n)
	for i := range s.Vectors {
		if len(data) < 8 {
			return fmt.Errorf("candidates: truncated site-vectors payload")
		}
		vn := binary.LittleEndian.Uint64(data)
		data = data[8:]
		if vn == 0 {
			continue // nil slot: a constant vertex
		}
		if vn > uint64(len(data)) {
			return fmt.Errorf("candidates: truncated site-vectors payload")
		}
		v := new(BitVector)
		if err := v.GobDecode(data[:vn]); err != nil {
			return err
		}
		s.Vectors[i] = v
		data = data[vn:]
	}
	if len(data) != 0 {
		return fmt.Errorf("candidates: %d trailing bytes after site vectors", len(data))
	}
	return nil
}

// ShipmentBytes is the wire size of the site's vectors.
func (s *SiteVectors) ShipmentBytes() int {
	total := 0
	for _, v := range s.Vectors {
		if v != nil {
			total += v.Bytes()
		}
	}
	return total
}

// ComputeSite finds, for every variable query vertex, the internal
// candidates C(Q, v) in fragment f and compresses them into bit vectors
// (the site half of Algorithm 4).
func ComputeSite(f *fragment.Fragment, q *query.Graph, bits int) *SiteVectors {
	sv := &SiteVectors{Vectors: make([]*BitVector, len(q.Vertices))}
	for qv, v := range q.Vertices {
		if !v.IsVar() {
			continue
		}
		bv := NewBitVector(bits)
		for _, u := range f.Store.Candidates(q, qv) {
			if f.IsInternal(u) {
				bv.Set(u)
			}
		}
		sv.Vectors[qv] = bv
	}
	return sv
}

// Union ORs the per-site vectors per variable (the coordinator half of
// Algorithm 4). All sites must use the same bit length.
func Union(sites []*SiteVectors, q *query.Graph, bits int) (*SiteVectors, error) {
	out := &SiteVectors{Vectors: make([]*BitVector, len(q.Vertices))}
	for qv, v := range q.Vertices {
		if !v.IsVar() {
			continue
		}
		u := NewBitVector(bits)
		for _, s := range sites {
			if err := u.Or(s.Vectors[qv]); err != nil {
				return nil, err
			}
		}
		out.Vectors[qv] = u
	}
	return out, nil
}

// Filter adapts the union vectors to the partial-evaluation extended-
// vertex filter: binding query vertex qv to extended vertex u is allowed
// only if u is an internal candidate somewhere (bit set). Constant query
// vertices are never filtered.
func (s *SiteVectors) Filter() func(qv int, u rdf.TermID) bool {
	return func(qv int, u rdf.TermID) bool {
		bv := s.Vectors[qv]
		if bv == nil {
			return true
		}
		return bv.Test(u)
	}
}
