package partition

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gstored/internal/rdf"
	"gstored/internal/store"
)

// fig8a builds the Fig. 8(a) scenario: all four crossing edges concentrate
// on one boundary vertex (hub h in fragment 0), |E_A| = 7 internal + 4
// crossing = 11, giving CostPartitioning = 2.5 × 11 = 27.5.
func fig8a() (*store.Store, *Assignment) {
	g := rdf.NewGraph()
	for i := 1; i <= 7; i++ {
		g.AddIRIs("h", "p", fmt.Sprintf("a%d", i))
	}
	for i := 1; i <= 4; i++ {
		g.AddIRIs("h", "c", fmt.Sprintf("b%d", i))
	}
	g.AddIRIs("b1", "p", "b2")
	g.AddIRIs("b3", "p", "b4")
	st := store.FromGraph(g)
	a := &Assignment{K: 2, Frag: map[rdf.TermID]int{}}
	for _, v := range st.Vertices() {
		name := g.Dict.MustDecode(v).Value
		if name[0] == 'b' {
			a.Frag[v] = 1
		} else {
			a.Frag[v] = 0
		}
	}
	return st, a
}

// fig8b builds the Fig. 8(b) scenario: five crossing edges scattered over
// two boundary vertices (3 on x, 2 on y), |E_A| = 8 internal + 5 crossing =
// 13, giving CostPartitioning = 1.8 × 13 = 23.4.
func fig8b() (*store.Store, *Assignment) {
	g := rdf.NewGraph()
	for i := 1; i <= 6; i++ {
		g.AddIRIs("x", "p", fmt.Sprintf("a%d", i))
	}
	g.AddIRIs("y", "p", "a1")
	g.AddIRIs("y", "p", "a2")
	g.AddIRIs("x", "c", "c1")
	g.AddIRIs("x", "c", "c2")
	g.AddIRIs("x", "c", "c3")
	g.AddIRIs("y", "c", "c4")
	g.AddIRIs("y", "c", "c5")
	g.AddIRIs("c1", "p", "c2")
	g.AddIRIs("c3", "p", "c4")
	g.AddIRIs("c5", "p", "c1")
	st := store.FromGraph(g)
	a := &Assignment{K: 2, Frag: map[rdf.TermID]int{}}
	for _, v := range st.Vertices() {
		name := g.Dict.MustDecode(v).Value
		if name[0] == 'c' {
			a.Frag[v] = 1
		} else {
			a.Frag[v] = 0
		}
	}
	return st, a
}

func TestFig8CostModel(t *testing.T) {
	stA, aA := fig8a()
	costA := Cost(stA, aA)
	if costA.NumCrossing != 4 {
		t.Fatalf("fig8a crossing = %d, want 4", costA.NumCrossing)
	}
	if math.Abs(costA.EV-2.5) > 1e-9 {
		t.Errorf("fig8a EV = %v, want 2.5", costA.EV)
	}
	if costA.MaxFragmentEdges != 11 {
		t.Errorf("fig8a max fragment edges = %d, want 11", costA.MaxFragmentEdges)
	}
	if math.Abs(costA.Cost-27.5) > 1e-9 {
		t.Errorf("fig8a cost = %v, want 27.5 (paper, Section VII)", costA.Cost)
	}

	stB, aB := fig8b()
	costB := Cost(stB, aB)
	if costB.NumCrossing != 5 {
		t.Fatalf("fig8b crossing = %d, want 5", costB.NumCrossing)
	}
	if math.Abs(costB.EV-1.8) > 1e-9 {
		t.Errorf("fig8b EV = %v, want 1.8", costB.EV)
	}
	if costB.MaxFragmentEdges != 13 {
		t.Errorf("fig8b max fragment edges = %d, want 13", costB.MaxFragmentEdges)
	}
	if math.Abs(costB.Cost-23.4) > 1e-9 {
		t.Errorf("fig8b cost = %v, want 23.4 (paper, Section VII)", costB.Cost)
	}
	// The paper's conclusion: despite more crossing edges, (b) is better.
	if costB.Cost >= costA.Cost {
		t.Error("fig8b should be the cheaper partitioning")
	}
}

// clusteredGraph builds k dense clusters of size n joined by a few bridge
// edges — the friendly case for a min-cut partitioner.
func clusteredGraph(k, n int) *rdf.Graph {
	g := rdf.NewGraph()
	name := func(c, i int) string { return fmt.Sprintf("http://cluster%d.example/v%d", c, i) }
	for c := 0; c < k; c++ {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if (i+j)%3 == 0 {
					g.AddIRIs(name(c, i), "p", name(c, j))
				}
			}
			g.AddIRIs(name(c, i), "p", name(c, (i+1)%n))
		}
	}
	for c := 0; c < k; c++ {
		g.AddIRIs(name(c, 0), "bridge", name((c+1)%k, 0))
	}
	return g
}

func TestHashPartitionCoversAndIsDeterministic(t *testing.T) {
	g := clusteredGraph(3, 10)
	st := store.FromGraph(g)
	a1, err := Hash{}.Partition(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a1.Validate(st); err != nil {
		t.Fatal(err)
	}
	a2, _ := Hash{}.Partition(st, 4)
	for v, f := range a1.Frag {
		if a2.Frag[v] != f {
			t.Fatal("hash partitioning is not deterministic")
		}
	}
	// All fragments should be non-empty on 30 vertices.
	for f, c := range Balance(a1) {
		if c == 0 {
			t.Errorf("hash fragment %d is empty", f)
		}
	}
}

func TestHashPartitionErrors(t *testing.T) {
	st := store.New(rdf.NewDictionary(), nil)
	if _, err := (Hash{}).Partition(st, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := (Metis{}).Partition(st, -1); err == nil {
		t.Error("metis k<0 should error")
	}
	if _, err := (SemanticHash{}).Partition(st, 0); err == nil {
		t.Error("semantic k=0 should error")
	}
}

func TestSemanticHashGroupsByHierarchy(t *testing.T) {
	g := rdf.NewGraph()
	// Two departments; each vertex has an attribute literal.
	for d := 0; d < 2; d++ {
		for i := 0; i < 5; i++ {
			s := fmt.Sprintf("http://dept%d.univ.edu/member%d", d, i)
			g.AddIRIs(s, "colleague", fmt.Sprintf("http://dept%d.univ.edu/member%d", d, (i+1)%5))
			g.Add(rdf.NewIRI(s), rdf.NewIRI("name"), rdf.NewLiteral(fmt.Sprintf("n-%d-%d", d, i)))
		}
	}
	st := store.FromGraph(g)
	a, err := SemanticHash{}.Partition(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(st); err != nil {
		t.Fatal(err)
	}
	// All members of one department share a fragment.
	for d := 0; d < 2; d++ {
		want := -1
		for i := 0; i < 5; i++ {
			v, _ := g.Dict.Lookup(rdf.NewIRI(fmt.Sprintf("http://dept%d.univ.edu/member%d", d, i)))
			if want == -1 {
				want = a.Frag[v]
			} else if a.Frag[v] != want {
				t.Errorf("dept %d split across fragments", d)
			}
		}
	}
	// Literals are co-located with their subjects, so name edges are never
	// crossing.
	c := Cost(st, a)
	for _, tr := range st.TriplesWith(mustID(t, g.Dict, "name")) {
		if a.FragmentOf(tr.S) != a.FragmentOf(tr.O) {
			t.Error("attribute literal separated from its subject")
		}
	}
	_ = c
}

func mustID(t *testing.T, d *rdf.Dictionary, iri string) rdf.TermID {
	t.Helper()
	id, ok := d.Lookup(rdf.NewIRI(iri))
	if !ok {
		t.Fatalf("%s not in dictionary", iri)
	}
	return id
}

func TestMetisFindsClusters(t *testing.T) {
	g := clusteredGraph(4, 12)
	st := store.FromGraph(g)
	ma, err := Metis{}.Partition(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ma.Validate(st); err != nil {
		t.Fatal(err)
	}
	ha, _ := Hash{}.Partition(st, 4)
	mc, hc := Cost(st, ma), Cost(st, ha)
	if mc.NumCrossing >= hc.NumCrossing {
		t.Errorf("metis cut %d should beat hash cut %d on clustered graph",
			mc.NumCrossing, hc.NumCrossing)
	}
	// Vertex balance within the imbalance bound.
	counts := Balance(ma)
	total := 0
	for _, c := range counts {
		total += c
	}
	bound := int(1.10*float64(total)/4.0) + 1
	for f, c := range counts {
		if c > bound {
			t.Errorf("fragment %d has %d vertices, bound %d", f, c, bound)
		}
	}
}

func TestMetisMoreFragmentsThanVertices(t *testing.T) {
	g := rdf.NewGraph()
	g.AddIRIs("a", "p", "b")
	st := store.FromGraph(g)
	a, err := Metis{}.Partition(st, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(st); err != nil {
		t.Fatal(err)
	}
}

func TestSelectBestPicksSmallestCost(t *testing.T) {
	g := clusteredGraph(3, 10)
	st := store.FromGraph(g)
	best, costs, err := SelectBest(st, 3, Hash{}, SemanticHash{}, Metis{})
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != 3 {
		t.Fatalf("costs for %d strategies", len(costs))
	}
	bestCost := costs[best.StrategyName].Cost
	for name, c := range costs {
		if c.Cost < bestCost {
			t.Errorf("SelectBest chose %s (%.1f) but %s costs %.1f",
				best.StrategyName, bestCost, name, c.Cost)
		}
	}
	// Clustered graph with per-cluster URI prefixes: semantic or metis must
	// beat hash.
	if best.StrategyName == "hash" {
		t.Errorf("hash should not win on a clustered graph: %+v", costs)
	}
}

func TestSelectBestNoStrategies(t *testing.T) {
	st := store.New(rdf.NewDictionary(), nil)
	if _, _, err := SelectBest(st, 2); err == nil {
		t.Error("expected error with no strategies")
	}
}

func TestPartitionersCoverRandomGraphs(t *testing.T) {
	strategies := []Strategy{Hash{}, SemanticHash{}, Metis{}}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := rdf.NewGraph()
		nv, ne := 5+r.Intn(30), 10+r.Intn(60)
		for i := 0; i < ne; i++ {
			g.AddIRIs(
				fmt.Sprintf("http://h%d.x/v%d", r.Intn(4), r.Intn(nv)),
				fmt.Sprintf("p%d", r.Intn(3)),
				fmt.Sprintf("http://h%d.x/v%d", r.Intn(4), r.Intn(nv)))
		}
		st := store.FromGraph(g)
		k := 1 + r.Intn(5)
		for _, s := range strategies {
			a, err := s.Partition(st, k)
			if err != nil || a.Validate(st) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCostEmptyAndNoCrossing(t *testing.T) {
	g := rdf.NewGraph()
	g.AddIRIs("a", "p", "b")
	st := store.FromGraph(g)
	a := &Assignment{K: 2, Frag: map[rdf.TermID]int{}}
	for _, v := range st.Vertices() {
		a.Frag[v] = 0
	}
	c := Cost(st, a)
	if c.NumCrossing != 0 || c.EV != 0 || c.Cost != 0 {
		t.Errorf("no-crossing cost = %+v, want zeros", c)
	}
	if c.MaxFragmentEdges != 1 {
		t.Errorf("max fragment edges = %d", c.MaxFragmentEdges)
	}
}
