package partition

import (
	"fmt"
	"math"
	"testing"

	"gstored/internal/rdf"
	"gstored/internal/store"
)

func pid(t *testing.T, st *store.Store, name string) rdf.TermID {
	t.Helper()
	id, ok := st.Dict.Lookup(rdf.NewIRI(name))
	if !ok {
		t.Fatalf("predicate %q not in dictionary", name)
	}
	return id
}

func TestWorkloadWeight(t *testing.T) {
	g := rdf.NewGraph()
	g.AddIRIs("a", "p", "b")
	g.AddIRIs("a", "c", "b")
	st := store.FromGraph(g)
	p, c := pid(t, st, "p"), pid(t, st, "c")

	empty := Workload{}
	if !empty.Empty() {
		t.Error("zero workload should be empty")
	}
	if empty.Weight(p) != 1 || empty.Weight(c) != 1 {
		t.Error("empty workload must weight every predicate 1")
	}

	// p touched 9×, c touched 3×: mean 6, so weights 1.5 and 0.5.
	w := NewWorkload(map[rdf.TermID]float64{p: 9, c: 3})
	if got := w.Weight(p); got != 1.5 {
		t.Errorf("Weight(p) = %v, want 1.5", got)
	}
	if got := w.Weight(c); got != 0.5 {
		t.Errorf("Weight(c) = %v, want 0.5", got)
	}

	// Untouched predicates get the smoothing floor.
	only := Workload{PredTouch: map[rdf.TermID]float64{p: 4}}
	if got := only.Weight(c); got != DefaultSmoothing {
		t.Errorf("untouched weight = %v, want default floor %v", got, DefaultSmoothing)
	}
	only.Smoothing = 0.2
	if got := only.Weight(c); got != 0.2 {
		t.Errorf("untouched weight = %v, want explicit floor 0.2", got)
	}
	only.Smoothing = -1
	if got := only.Weight(c); got != 0 {
		t.Errorf("untouched weight = %v, want 0 under negative smoothing", got)
	}
}

// TestCostWorkloadDegeneratesToCost pins the design invariant: under an
// empty workload — and under a uniform one — the workload-weighted cost
// is exactly the paper's Section VII cost on the Fig. 8 scenarios.
func TestCostWorkloadDegeneratesToCost(t *testing.T) {
	for name, build := range map[string]func() (*store.Store, *Assignment){"fig8a": fig8a, "fig8b": fig8b} {
		st, a := build()
		want := Cost(st, a)
		p, c := pid(t, st, "p"), pid(t, st, "c")
		uniform := NewWorkload(map[rdf.TermID]float64{p: 7, c: 7})
		for label, w := range map[string]Workload{"empty": {}, "uniform": uniform} {
			got := CostWorkload(st, a, w)
			if math.Abs(got.Cost-want.Cost) > 1e-9 || math.Abs(got.EV-want.EV) > 1e-9 {
				t.Errorf("%s/%s: CostWorkload = %+v, want Cost %+v", name, label, got, want)
			}
			if got.MaxFragmentEdges != want.MaxFragmentEdges || got.NumCrossing != want.NumCrossing {
				t.Errorf("%s/%s: structural terms differ: %+v vs %+v", name, label, got, want)
			}
		}
	}
}

// TestCostWorkloadWeighting: in fig8a every crossing edge is c-labeled.
// A workload that only ever traverses p should make the partitioning
// nearly free (only the smoothing floor survives), while a c-heavy
// workload keeps the crossing edges at full weight.
func TestCostWorkloadWeighting(t *testing.T) {
	st, a := fig8a()
	p, c := pid(t, st, "p"), pid(t, st, "c")
	base := Cost(st, a)

	cold := CostWorkload(st, a, NewWorkload(map[rdf.TermID]float64{p: 100}))
	if cold.Cost >= base.Cost/10 {
		t.Errorf("never-traversed crossing edges should be nearly free: %v vs data cost %v", cold.Cost, base.Cost)
	}
	if cold.Cost == 0 {
		t.Error("smoothing floor should keep the cost above exactly zero")
	}

	hot := CostWorkload(st, a, NewWorkload(map[rdf.TermID]float64{c: 100}))
	if hot.Cost <= cold.Cost {
		t.Errorf("hot crossing edges must cost more than cold ones: hot %v <= cold %v", hot.Cost, cold.Cost)
	}
	// With only c observed, every crossing edge has weight 1 (c is the
	// mean) — identical to the data-only evaluation.
	if math.Abs(hot.Cost-base.Cost) > 1e-9 {
		t.Errorf("all-crossing workload cost = %v, want data cost %v", hot.Cost, base.Cost)
	}
	if math.Abs(hot.WeightedCrossing-float64(base.NumCrossing)) > 1e-9 {
		t.Errorf("weighted crossing = %v, want %d", hot.WeightedCrossing, base.NumCrossing)
	}
}

// chainGraph builds a two-community graph joined by bridge edges, with
// distinct intra- and inter-community predicates, so different
// strategies produce genuinely different crossing profiles.
func chainGraph() *store.Store {
	g := rdf.NewGraph()
	for comm := 0; comm < 2; comm++ {
		for i := 0; i < 20; i++ {
			g.AddIRIs(fmt.Sprintf("n%d_%d", comm, i), "intra", fmt.Sprintf("n%d_%d", comm, (i+1)%20))
		}
	}
	for i := 0; i < 5; i++ {
		g.AddIRIs(fmt.Sprintf("n0_%d", i), "bridge", fmt.Sprintf("n1_%d", i))
	}
	return store.FromGraph(g)
}

func TestAdvisorTableAndConsistency(t *testing.T) {
	st := chainGraph()
	rec, err := Advisor{}.Advise(st, Workload{}, []int{2, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	// 3 default strategies × 2 unique ks.
	if len(rec.Candidates) != 6 {
		t.Fatalf("candidates = %d, want 6", len(rec.Candidates))
	}
	for i := 1; i < len(rec.Candidates); i++ {
		if rec.Candidates[i-1].WorkloadCost.Cost > rec.Candidates[i].WorkloadCost.Cost {
			t.Fatalf("candidates not sorted by workload cost at %d", i)
		}
	}
	best := rec.Candidates[0]
	if rec.Strategy != best.Strategy || rec.K != best.K {
		t.Errorf("recommendation (%s,%d) is not the cheapest candidate (%s,%d)", rec.Strategy, rec.K, best.Strategy, best.K)
	}
	if rec.Assignment == nil || rec.Assignment.K != rec.K {
		t.Errorf("recommended assignment missing or K mismatch: %+v", rec.Assignment)
	}
	// Under the empty workload the two verdicts must coincide.
	if rec.Differs() {
		t.Errorf("empty workload changed the verdict: workload (%s,%d) vs data (%s,%d)", rec.Strategy, rec.K, rec.DataStrategy, rec.DataK)
	}
	if err := rec.Assignment.Validate(st); err != nil {
		t.Errorf("recommended assignment invalid: %v", err)
	}
}

func TestAdvisorRejectsBadKs(t *testing.T) {
	st := chainGraph()
	if _, err := (Advisor{}).Advise(st, Workload{}, nil); err == nil {
		t.Error("empty ks accepted")
	}
	if _, err := (Advisor{}).Advise(st, Workload{}, []int{0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := (Advisor{}).Advise(st, Workload{}, []int{-2}); err == nil {
		t.Error("negative k accepted")
	}
}

func TestAssignmentLookup(t *testing.T) {
	st, a := fig8a()
	for _, v := range st.Vertices() {
		f, ok := a.Lookup(v)
		if !ok {
			t.Fatalf("covered vertex %d reported uncovered", v)
		}
		if f != a.FragmentOf(v) {
			t.Fatalf("Lookup and FragmentOf disagree on %d", v)
		}
	}
	unknown := rdf.TermID(1 << 30)
	if _, ok := a.Lookup(unknown); ok {
		t.Error("Lookup invented an owner for an uncovered vertex")
	}
	// FragmentOf's documented diagnostic fallback.
	if got := a.FragmentOf(unknown); got != 0 {
		t.Errorf("FragmentOf fallback = %d, want 0", got)
	}
}
