// Package partition implements the vertex-disjoint RDF graph partitioning
// strategies evaluated in the paper (§VII, §VIII-D): hash partitioning,
// semantic hash partitioning [15], and a METIS-like multilevel min-edge-cut
// partitioner [14], together with the CostPartitioning model of Section VII
// used to select among existing partitionings.
package partition

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"gstored/internal/rdf"
	"gstored/internal/store"
)

// Assignment is a vertex-disjoint partitioning: every vertex of the graph
// is mapped to exactly one of K fragments.
type Assignment struct {
	K    int
	Frag map[rdf.TermID]int
	// StrategyName records which strategy produced the assignment.
	StrategyName string
}

// FragmentOf returns the fragment owning v. Vertices the assignment
// does not cover fall back to fragment 0 — acceptable for diagnostics,
// but silently wrong for routing: callers that may hold an uncovered
// vertex (anything at a repartition boundary) must use Lookup instead.
// fragment.Build and DB.Repartition enforce full coverage via Validate
// before an assignment ever routes live traffic, so inside a built
// Distributed the fallback is unreachable.
func (a *Assignment) FragmentOf(v rdf.TermID) int {
	if f, ok := a.Frag[v]; ok {
		return f
	}
	return 0
}

// Lookup returns the fragment owning v and whether the assignment
// covers v at all. Unlike FragmentOf it never invents an owner: callers
// routing traffic across a repartition boundary must treat !ok as "this
// assignment does not know the vertex", not as fragment 0.
func (a *Assignment) Lookup(v rdf.TermID) (int, bool) {
	f, ok := a.Frag[v]
	return f, ok
}

// WithVertices returns an assignment additionally covering vs, placing
// each vertex the assignment does not already know by hashing its
// lexical form modulo K — the Hash strategy's rule, applied pointwise.
// Vertices already covered keep their fragment. When every vertex is
// already covered the receiver is returned unchanged; otherwise the Frag
// map is copied, so concurrent readers of the original assignment (an
// older cluster generation mid-query) are never raced.
//
// This is the incremental placement rule of the update path: a strategy-
// faithful placement (e.g. re-running semantic hashing around the new
// vertex) would need the strategy and its global context, which is what
// full repartitioning is for — the advisor loop repairs any drift.
func (a *Assignment) WithVertices(dict *rdf.Dictionary, vs []rdf.TermID) *Assignment {
	var fresh []rdf.TermID
	for _, v := range vs {
		if _, ok := a.Frag[v]; !ok {
			fresh = append(fresh, v)
		}
	}
	if len(fresh) == 0 {
		return a
	}
	next := &Assignment{K: a.K, StrategyName: a.StrategyName, Frag: make(map[rdf.TermID]int, len(a.Frag)+len(fresh))}
	for v, f := range a.Frag {
		next.Frag[v] = f
	}
	for _, v := range fresh {
		next.Frag[v] = int(hashString(dict.MustDecode(v).String()) % uint64(a.K))
	}
	return next
}

// Validate checks that the assignment covers every vertex of st with a
// fragment index in [0, K).
func (a *Assignment) Validate(st *store.Store) error {
	if a.K <= 0 {
		return fmt.Errorf("partition: K = %d", a.K)
	}
	for _, v := range st.Vertices() {
		f, ok := a.Frag[v]
		if !ok {
			return fmt.Errorf("partition: vertex %d unassigned", v)
		}
		if f < 0 || f >= a.K {
			return fmt.Errorf("partition: vertex %d assigned to fragment %d of %d", v, f, a.K)
		}
	}
	return nil
}

// Strategy produces an Assignment of the vertices of a store into k
// fragments. Implementations must be deterministic for a given input.
type Strategy interface {
	Name() string
	Partition(st *store.Store, k int) (*Assignment, error)
}

// ---------------------------------------------------------------------------
// Hash partitioning: H(v) MOD N over the vertex's lexical form (the paper's
// default, §VIII-A).

// Hash is the paper's default strategy: FNV-1a over the term's canonical
// N-Triples form, modulo the fragment count.
type Hash struct{}

// Name implements Strategy.
func (Hash) Name() string { return "hash" }

// Partition implements Strategy.
func (Hash) Partition(st *store.Store, k int) (*Assignment, error) {
	if k <= 0 {
		return nil, fmt.Errorf("partition: hash: k = %d", k)
	}
	a := &Assignment{K: k, Frag: make(map[rdf.TermID]int, st.NumVertices()), StrategyName: "hash"}
	for _, v := range st.Vertices() {
		a.Frag[v] = int(hashString(st.Dict.MustDecode(v).String()) % uint64(k))
	}
	return a, nil
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s)) // fnv.Write is documented to never fail
	return h.Sum64()
}

// ---------------------------------------------------------------------------
// Semantic hash partitioning (Lee & Liu [15]): vertices sharing a URI
// hierarchy prefix are co-located; non-IRI vertices (literals, blanks) are
// placed with the majority of their neighbors so attribute edges stay
// internal, mirroring [15]'s triple-group expansion.

// SemanticHash groups IRIs by URI-hierarchy prefix and co-locates literal
// and blank vertices with their neighbors.
type SemanticHash struct{}

// Name implements Strategy.
func (SemanticHash) Name() string { return "semantic-hash" }

// Partition implements Strategy.
func (SemanticHash) Partition(st *store.Store, k int) (*Assignment, error) {
	if k <= 0 {
		return nil, fmt.Errorf("partition: semantic-hash: k = %d", k)
	}
	a := &Assignment{K: k, Frag: make(map[rdf.TermID]int, st.NumVertices()), StrategyName: "semantic-hash"}

	// First pass: measure hierarchy group sizes. Groups too large to fit a
	// balanced fragment are split by hashing the full URI — this is what
	// makes semantic hash degenerate to plain hashing on datasets with a
	// single flat hierarchy such as YAGO2 (Section VIII-D).
	groupSize := make(map[string]int)
	for _, v := range st.Vertices() {
		if t := st.Dict.MustDecode(v); t.IsIRI() {
			groupSize[semanticKey(t.Value)]++
		}
	}
	maxGroup := st.NumVertices()/k + 1

	var deferred []rdf.TermID
	for _, v := range st.Vertices() {
		t := st.Dict.MustDecode(v)
		if t.IsIRI() {
			key := semanticKey(t.Value)
			if groupSize[key] > maxGroup {
				key = t.Value
			}
			a.Frag[v] = int(hashString(key) % uint64(k))
		} else {
			deferred = append(deferred, v)
		}
	}
	// Second pass: place literals/blanks with the plurality fragment of
	// their already-assigned neighbors; isolated ones fall back to hashing.
	for _, v := range deferred {
		votes := make([]int, k)
		voted := false
		for _, he := range st.Out(v) {
			if f, ok := a.Frag[he.V]; ok {
				votes[f]++
				voted = true
			}
		}
		for _, he := range st.In(v) {
			if f, ok := a.Frag[he.V]; ok {
				votes[f]++
				voted = true
			}
		}
		if !voted {
			a.Frag[v] = int(hashString(st.Dict.MustDecode(v).String()) % uint64(k))
			continue
		}
		best := 0
		for f := 1; f < k; f++ {
			if votes[f] > votes[best] {
				best = f
			}
		}
		a.Frag[v] = best
	}
	return a, nil
}

// semanticKey extracts the URI hierarchy prefix: the IRI up to its last
// path component ('/' or '#' separated). For example both
// http://www.dept3.univ0.edu/prof5 and http://www.dept3.univ0.edu/course9
// share the key http://www.dept3.univ0.edu.
func semanticKey(iri string) string {
	cut := len(iri)
	if i := strings.LastIndexByte(iri, '#'); i >= 0 {
		cut = i
	} else if i := strings.LastIndexByte(iri, '/'); i > len("http://") {
		cut = i
	}
	return iri[:cut]
}

// ---------------------------------------------------------------------------
// Cost model of Section VII.

// CostBreakdown carries the terms of CostPartitioning(F) = E_F(V) × max_i
// |E_i ∪ E_i^c|, plus supporting statistics.
type CostBreakdown struct {
	// EV is E_F(V) = Σ_v |N(v) ∩ E^c|² / (2|E^c|): the expected number of
	// crossing edges concentrated on a single vertex. Lower means crossing
	// edges are scattered across more boundary vertices.
	EV float64
	// MaxFragmentEdges is max_i |E_i ∪ E_i^c| (internal plus adjacent
	// crossing edge instances of the largest fragment).
	MaxFragmentEdges int
	// Cost is EV × MaxFragmentEdges.
	Cost float64
	// NumCrossing is |E^c|, the number of crossing edge instances.
	NumCrossing int
	// WeightedCrossing is Σ w(p) over crossing edge instances when the
	// breakdown came from CostWorkload; equal to NumCrossing under Cost
	// (every edge weighs 1).
	WeightedCrossing float64
	// FragmentEdges lists |E_i ∪ E_i^c| per fragment.
	FragmentEdges []int
}

// Cost evaluates the Section VII partitioning cost of assignment a over the
// graph in st. It is CostWorkload under the empty workload: every edge
// weighs exactly 1, so the per-edge float accumulation stays integral
// and the two models coincide bit-for-bit on shared ground (pinned by
// TestCostWorkloadDegeneratesToCost) — one traversal loop to maintain,
// not two.
func Cost(st *store.Store, a *Assignment) CostBreakdown {
	return CostWorkload(st, a, Workload{})
}

// SelectBest runs every strategy and returns the assignment with the
// smallest CostPartitioning, together with the per-strategy costs keyed by
// strategy name (the paper's §VII selection rule).
func SelectBest(st *store.Store, k int, strategies ...Strategy) (*Assignment, map[string]CostBreakdown, error) {
	if len(strategies) == 0 {
		return nil, nil, fmt.Errorf("partition: no strategies supplied")
	}
	costs := make(map[string]CostBreakdown, len(strategies))
	var best *Assignment
	bestCost := 0.0
	for _, s := range strategies {
		a, err := s.Partition(st, k)
		if err != nil {
			return nil, nil, fmt.Errorf("partition: %s: %w", s.Name(), err)
		}
		c := Cost(st, a)
		costs[s.Name()] = c
		if best == nil || c.Cost < bestCost {
			best, bestCost = a, c.Cost
		}
	}
	return best, costs, nil
}

// Balance summarizes vertex counts per fragment, for diagnostics.
func Balance(a *Assignment) []int {
	counts := make([]int, a.K)
	for _, f := range a.Frag {
		counts[f]++
	}
	return counts
}

// sortedVertices returns st's vertices ordered by their lexical form; used
// by deterministic partitioners that need a stable, ID-independent order.
func sortedVertices(st *store.Store) []rdf.TermID {
	vs := append([]rdf.TermID(nil), st.Vertices()...)
	sort.Slice(vs, func(i, j int) bool {
		return st.Dict.MustDecode(vs[i]).String() < st.Dict.MustDecode(vs[j]).String()
	})
	return vs
}
