package partition

import (
	"fmt"
	"sort"

	"gstored/internal/rdf"
	"gstored/internal/store"
)

// Metis is a METIS-like multilevel min-edge-cut partitioner [14]: heavy-edge
// matching coarsens the graph, greedy region growing partitions the
// coarsest level, and Fiduccia–Mattheyses-style boundary refinement is
// applied while uncoarsening. Like the real METIS it minimizes the edge cut
// under a vertex-balance constraint, so fragments can be imbalanced in
// *edge* count — exactly the behaviour Section VIII-D attributes to METIS.
type Metis struct {
	// MaxImbalance bounds fragment vertex weight at MaxImbalance ×
	// (total/k). Zero means the default 1.10.
	MaxImbalance float64
	// CoarsenTo stops coarsening near this many vertices (default 40×k).
	CoarsenTo int
	// RefinePasses is the number of refinement sweeps per level (default 4).
	RefinePasses int
}

// Name implements Strategy.
func (Metis) Name() string { return "metis" }

type medge struct{ to, w int }

type mgraph struct {
	vwgt []int
	adj  [][]medge
}

func (g *mgraph) n() int { return len(g.vwgt) }

// Partition implements Strategy.
func (m Metis) Partition(st *store.Store, k int) (*Assignment, error) {
	if k <= 0 {
		return nil, fmt.Errorf("partition: metis: k = %d", k)
	}
	if m.MaxImbalance == 0 {
		m.MaxImbalance = 1.10
	}
	if m.CoarsenTo == 0 {
		m.CoarsenTo = 40 * k
	}
	if m.RefinePasses == 0 {
		m.RefinePasses = 4
	}

	verts := sortedVertices(st)
	idx := make(map[rdf.TermID]int, len(verts))
	for i, v := range verts {
		idx[v] = i
	}
	g := buildMGraph(st, verts, idx)

	a := &Assignment{K: k, Frag: make(map[rdf.TermID]int, len(verts)), StrategyName: "metis"}
	if g.n() == 0 {
		return a, nil
	}
	if k >= g.n() {
		for i, v := range verts {
			a.Frag[v] = i % k
		}
		return a, nil
	}

	// Coarsening phase.
	graphs := []*mgraph{g}
	var maps [][]int // maps[l][fineVertex] = coarseVertex
	for graphs[len(graphs)-1].n() > m.CoarsenTo {
		cur := graphs[len(graphs)-1]
		coarse, fineToCoarse := coarsen(cur)
		if coarse.n() >= cur.n() { // no progress (e.g. no edges)
			break
		}
		graphs = append(graphs, coarse)
		maps = append(maps, fineToCoarse)
	}

	// Initial partition on the coarsest graph.
	coarsest := graphs[len(graphs)-1]
	part := growRegions(coarsest, k)
	refine(coarsest, part, k, m.MaxImbalance, m.RefinePasses)

	// Uncoarsening with refinement.
	for l := len(graphs) - 2; l >= 0; l-- {
		fine := graphs[l]
		finePart := make([]int, fine.n())
		for v := 0; v < fine.n(); v++ {
			finePart[v] = part[maps[l][v]]
		}
		part = finePart
		refine(fine, part, k, m.MaxImbalance, m.RefinePasses)
	}

	for i, v := range verts {
		a.Frag[v] = part[i]
	}
	return a, nil
}

// buildMGraph folds the directed multigraph into an undirected weighted
// simple graph (parallel edges accumulate weight; self loops are dropped —
// they cannot be cut).
func buildMGraph(st *store.Store, verts []rdf.TermID, idx map[rdf.TermID]int) *mgraph {
	n := len(verts)
	w := make([]map[int]int, n)
	for i := range w {
		w[i] = make(map[int]int)
	}
	for _, s := range st.Vertices() {
		si := idx[s]
		for _, he := range st.Out(s) {
			oi := idx[he.V]
			if si == oi {
				continue
			}
			w[si][oi]++
			w[oi][si]++
		}
	}
	g := &mgraph{vwgt: make([]int, n), adj: make([][]medge, n)}
	for i := 0; i < n; i++ {
		g.vwgt[i] = 1
		g.adj[i] = make([]medge, 0, len(w[i]))
		tos := make([]int, 0, len(w[i]))
		for to := range w[i] {
			tos = append(tos, to)
		}
		sort.Ints(tos)
		for _, to := range tos {
			g.adj[i] = append(g.adj[i], medge{to: to, w: w[i][to]})
		}
	}
	return g
}

// coarsen applies one level of heavy-edge matching.
func coarsen(g *mgraph) (*mgraph, []int) {
	n := g.n()
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	// Visit in ascending degree order: low-degree vertices get first pick,
	// which empirically yields better matchings.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := len(g.adj[order[a]]), len(g.adj[order[b]])
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		best, bestW := -1, -1
		for _, e := range g.adj[v] {
			if match[e.to] == -1 && e.w > bestW {
				best, bestW = e.to, e.w
			}
		}
		if best == -1 {
			match[v] = v // unmatched: survives alone
		} else {
			match[v] = best
			match[best] = v
		}
	}
	fineToCoarse := make([]int, n)
	nc := 0
	for v := 0; v < n; v++ {
		if match[v] >= v { // representative of its pair (or singleton)
			fineToCoarse[v] = nc
			if match[v] != v {
				fineToCoarse[match[v]] = nc
			}
			nc++
		}
	}
	cw := make([]map[int]int, nc)
	cv := make([]int, nc)
	for i := range cw {
		cw[i] = make(map[int]int)
	}
	for v := 0; v < n; v++ {
		cvtx := fineToCoarse[v]
		cv[cvtx] += g.vwgt[v]
		for _, e := range g.adj[v] {
			ct := fineToCoarse[e.to]
			if ct != cvtx {
				cw[cvtx][ct] += e.w
			}
		}
	}
	coarse := &mgraph{vwgt: cv, adj: make([][]medge, nc)}
	for i := 0; i < nc; i++ {
		tos := make([]int, 0, len(cw[i]))
		for to := range cw[i] {
			tos = append(tos, to)
		}
		sort.Ints(tos)
		for _, to := range tos {
			// Each undirected edge was folded from both directions, so
			// weights already match on both sides.
			coarse.adj[i] = append(coarse.adj[i], medge{to: to, w: cw[i][to] / 1})
		}
	}
	return coarse, fineToCoarse
}

// growRegions produces an initial k-way partition by greedy BFS region
// growing balanced on vertex weight.
func growRegions(g *mgraph, k int) []int {
	n := g.n()
	part := make([]int, n)
	for i := range part {
		part[i] = -1
	}
	total := 0
	for _, w := range g.vwgt {
		total += w
	}
	target := (total + k - 1) / k

	assigned := 0
	for f := 0; f < k && assigned < n; f++ {
		// Seed: the unassigned vertex with the largest weight (hubs anchor
		// regions), ties to lowest index.
		seed := -1
		for v := 0; v < n; v++ {
			if part[v] == -1 && (seed == -1 || g.vwgt[v] > g.vwgt[seed]) {
				seed = v
			}
		}
		if seed == -1 {
			break
		}
		weight := 0
		queue := []int{seed}
		inQueue := map[int]bool{seed: true}
		for len(queue) > 0 && weight < target {
			v := queue[0]
			queue = queue[1:]
			if part[v] != -1 {
				continue
			}
			part[v] = f
			weight += g.vwgt[v]
			assigned++
			for _, e := range g.adj[v] {
				if part[e.to] == -1 && !inQueue[e.to] {
					inQueue[e.to] = true
					queue = append(queue, e.to)
				}
			}
		}
	}
	// Leftovers (disconnected remainder): round-robin to lightest parts.
	weights := make([]int, k)
	for v := 0; v < n; v++ {
		if part[v] >= 0 {
			weights[part[v]] += g.vwgt[v]
		}
	}
	for v := 0; v < n; v++ {
		if part[v] == -1 {
			light := 0
			for f := 1; f < k; f++ {
				if weights[f] < weights[light] {
					light = f
				}
			}
			part[v] = light
			weights[light] += g.vwgt[v]
		}
	}
	return part
}

// refine runs FM-style boundary refinement sweeps: move a vertex to the
// fragment it is most strongly connected to when that lowers the cut and
// respects the balance bound.
func refine(g *mgraph, part []int, k int, maxImb float64, passes int) {
	n := g.n()
	total := 0
	for _, w := range g.vwgt {
		total += w
	}
	maxWeight := int(maxImb * float64(total) / float64(k))
	if maxWeight < 1 {
		maxWeight = 1
	}
	weights := make([]int, k)
	for v := 0; v < n; v++ {
		weights[part[v]] += g.vwgt[v]
	}
	conn := make([]int, k)
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for v := 0; v < n; v++ {
			if len(g.adj[v]) == 0 {
				continue
			}
			for f := range conn {
				conn[f] = 0
			}
			boundary := false
			for _, e := range g.adj[v] {
				conn[part[e.to]] += e.w
				if part[e.to] != part[v] {
					boundary = true
				}
			}
			if !boundary {
				continue
			}
			cur := part[v]
			best, bestGain := cur, 0
			for f := 0; f < k; f++ {
				if f == cur {
					continue
				}
				if weights[f]+g.vwgt[v] > maxWeight {
					continue
				}
				gain := conn[f] - conn[cur]
				if gain > bestGain || (gain == bestGain && gain > 0 && weights[f] < weights[best]) {
					best, bestGain = f, gain
				}
			}
			if best != cur && bestGain > 0 {
				weights[cur] -= g.vwgt[v]
				weights[best] += g.vwgt[v]
				part[v] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}
