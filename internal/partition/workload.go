package partition

import (
	"fmt"
	"sort"

	"gstored/internal/rdf"
	"gstored/internal/store"
)

// Workload is an observed query workload summarized as per-predicate
// traversal frequency: how often executed queries carried a triple
// pattern with each constant predicate. It is the input to the
// workload-weighted variant of the Section VII cost model.
//
// The zero value is the empty workload, under which CostWorkload
// degenerates to the data-only Cost (every edge weighted equally).
type Workload struct {
	// PredTouch counts, per predicate, how many executed triple patterns
	// carried it (query frequency × per-query multiplicity).
	PredTouch map[rdf.TermID]float64
	// Smoothing is the weight floor for predicates the workload never
	// touched, relative to the mean observed predicate weight of 1.
	// Without it a partitioning that cuts only never-queried edges would
	// cost exactly zero regardless of how badly it places the rest of the
	// data; a small floor keeps the data-only cost as a tie breaker.
	// Zero means DefaultSmoothing; negative means no floor.
	Smoothing float64
}

// DefaultSmoothing is the weight given to predicates absent from the
// workload (relative to the mean observed predicate's weight of 1).
const DefaultSmoothing = 0.01

// NewWorkload builds a workload from raw per-predicate touch counts.
func NewWorkload(predTouch map[rdf.TermID]float64) Workload {
	return Workload{PredTouch: predTouch}
}

// Empty reports whether the workload carries no observations.
func (w Workload) Empty() bool { return !w.hasPositive() }

func (w Workload) hasPositive() bool {
	for _, c := range w.PredTouch {
		if c > 0 {
			return true
		}
	}
	return false
}

// Weight returns the traversal weight of predicate p, normalized so the
// mean observed predicate has weight 1 (which makes CostWorkload
// coincide with Cost under a uniform workload). Predicates the workload
// never touched get the Smoothing floor. An empty workload weights every
// predicate 1.
func (w Workload) Weight(p rdf.TermID) float64 { return w.weigher()(p) }

// weigher precomputes the normalization of Weight for tight loops.
func (w Workload) weigher() func(rdf.TermID) float64 {
	if !w.hasPositive() {
		return func(rdf.TermID) float64 { return 1 }
	}
	total := 0.0
	for _, c := range w.PredTouch {
		total += c
	}
	mean := total / float64(len(w.PredTouch))
	floor := w.Smoothing
	if floor == 0 {
		floor = DefaultSmoothing
	}
	if floor < 0 {
		floor = 0
	}
	touch := w.PredTouch
	return func(p rdf.TermID) float64 {
		if c := touch[p]; c > 0 {
			return c / mean
		}
		return floor
	}
}

// CostWorkload evaluates the workload-weighted variant of the Section
// VII cost model: CostPartitioning(F) = E_F(V) × max_i |E_i ∪ E_i^c|,
// with every crossing edge counted not once but by the observed
// traversal frequency of its predicate. A crossing edge queries never
// traverse barely matters (it only costs the smoothing floor); a
// crossing edge on the workload's hot path is what actually generates
// partial matches and shipment, so it dominates E_F(V).
//
// The max_i |E_i ∪ E_i^c| balance term stays unweighted: fragment
// capacity is about data volume, not query traffic.
//
// Under an empty (or uniform) workload the result equals Cost.
func CostWorkload(st *store.Store, a *Assignment, w Workload) CostBreakdown {
	weight := w.weigher()
	crossAt := make(map[rdf.TermID]float64) // weighted |N(v) ∩ E^c| per vertex
	fragEdges := make([]int, a.K)
	numCrossing := 0
	weightedCrossing := 0.0
	for _, s := range st.Vertices() {
		fs := a.FragmentOf(s)
		for _, he := range st.Out(s) {
			fo := a.FragmentOf(he.V)
			if fs == fo {
				fragEdges[fs]++
				continue
			}
			we := weight(he.P)
			numCrossing++
			weightedCrossing += we
			crossAt[s] += we
			crossAt[he.V] += we
			fragEdges[fs]++
			fragEdges[fo]++
		}
	}
	b := CostBreakdown{NumCrossing: numCrossing, FragmentEdges: fragEdges, WeightedCrossing: weightedCrossing}
	if weightedCrossing > 0 {
		for _, c := range crossAt {
			b.EV += c * c
		}
		b.EV /= 2 * weightedCrossing
	}
	for _, e := range fragEdges {
		if e > b.MaxFragmentEdges {
			b.MaxFragmentEdges = e
		}
	}
	b.Cost = b.EV * float64(b.MaxFragmentEdges)
	return b
}

// ---------------------------------------------------------------------------
// Advisor: evaluate (strategy, k) configurations against a live workload.

// Candidate is one evaluated (strategy, k) configuration: its data-only
// Section VII cost and its workload-weighted cost.
type Candidate struct {
	Strategy string
	K        int
	// DataCost is the paper's Section VII cost (every edge equal).
	DataCost CostBreakdown
	// WorkloadCost reweights crossing edges by observed traversal
	// frequency (CostWorkload).
	WorkloadCost CostBreakdown
}

// Recommendation is the advisor's verdict: the configuration minimizing
// the workload-weighted cost, the configuration the data-only model
// would have picked, and the full evaluation table.
type Recommendation struct {
	// Strategy and K minimize the workload-weighted cost.
	Strategy string
	K        int
	// Assignment realizes the recommended configuration, ready for
	// fragment.Build / DB.Repartition.
	Assignment *Assignment
	// DataStrategy and DataK are what the data-only Section VII model
	// would select over the same candidates. When they differ from
	// Strategy/K, the workload changed the verdict.
	DataStrategy string
	DataK        int
	// Candidates is the full cost table, sorted by ascending workload
	// cost (ties by data cost, then strategy name, then k).
	Candidates []Candidate
}

// Differs reports whether the workload-weighted recommendation departs
// from the data-only Section VII selection.
func (r *Recommendation) Differs() bool {
	return r.Strategy != r.DataStrategy || r.K != r.DataK
}

// Advisor evaluates partitioning configurations against an observed
// workload. The zero value evaluates the paper's three strategies at the
// Ks supplied to Advise.
type Advisor struct {
	// Strategies to evaluate; nil means hash, semantic-hash and metis.
	Strategies []Strategy
}

// defaultStrategies returns the paper's three strategies.
func defaultStrategies() []Strategy {
	return []Strategy{Hash{}, SemanticHash{}, Metis{}}
}

// Advise partitions st with every (strategy, k) pair, costs each under
// both the data-only and the workload-weighted Section VII model, and
// recommends the pair minimizing the workload-weighted cost. ks must be
// non-empty; duplicates are ignored.
func (ad Advisor) Advise(st *store.Store, w Workload, ks []int) (*Recommendation, error) {
	strategies := ad.Strategies
	if len(strategies) == 0 {
		strategies = defaultStrategies()
	}
	seen := make(map[int]bool, len(ks))
	uniq := make([]int, 0, len(ks))
	for _, k := range ks {
		if k <= 0 {
			return nil, fmt.Errorf("partition: advisor: invalid fragment count %d", k)
		}
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, k)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("partition: advisor: no candidate fragment counts")
	}
	sort.Ints(uniq)

	rec := &Recommendation{}
	var bestAssign *Assignment
	bestWorkload, bestData := 0.0, 0.0
	for _, strat := range strategies {
		for _, k := range uniq {
			a, err := strat.Partition(st, k)
			if err != nil {
				return nil, fmt.Errorf("partition: advisor: %s/k=%d: %w", strat.Name(), k, err)
			}
			c := Candidate{
				Strategy:     strat.Name(),
				K:            k,
				DataCost:     Cost(st, a),
				WorkloadCost: CostWorkload(st, a, w),
			}
			rec.Candidates = append(rec.Candidates, c)
			if bestAssign == nil || c.WorkloadCost.Cost < bestWorkload {
				bestAssign, bestWorkload = a, c.WorkloadCost.Cost
				rec.Strategy, rec.K = c.Strategy, c.K
			}
			if rec.DataStrategy == "" || c.DataCost.Cost < bestData {
				bestData = c.DataCost.Cost
				rec.DataStrategy, rec.DataK = c.Strategy, c.K
			}
		}
	}
	rec.Assignment = bestAssign
	sort.Slice(rec.Candidates, func(i, j int) bool {
		a, b := rec.Candidates[i], rec.Candidates[j]
		if a.WorkloadCost.Cost != b.WorkloadCost.Cost {
			return a.WorkloadCost.Cost < b.WorkloadCost.Cost
		}
		if a.DataCost.Cost != b.DataCost.Cost {
			return a.DataCost.Cost < b.DataCost.Cost
		}
		if a.Strategy != b.Strategy {
			return a.Strategy < b.Strategy
		}
		return a.K < b.K
	})
	return rec, nil
}
