// Package workload provides deterministic, scalable synthetic stand-ins
// for the paper's three evaluation datasets — LUBM [5], YAGO2 [11] and BTC
// — together with the benchmark query sets (LQ1–LQ7, YQ1–YQ4, BQ1–BQ7)
// re-authored against the synthetic schemas while preserving each query's
// documented shape (star vs complex) and selectivity class, which are the
// two factors the paper's Tables I–III analyse.
package workload

import (
	"fmt"
	"math/rand"

	"gstored/internal/rdf"
)

// LUBM namespace layout follows the original benchmark: entities live
// under per-department hosts (http://www.DepartmentD.UniversityU.edu/...),
// which is exactly the URI hierarchy semantic hash partitioning exploits
// (Section VIII-D: semantic hash wins on LUBM).
const lubmOnt = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"

// LUBM ontology predicates used by the generator and queries.
const (
	LubmType             = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	LubmWorksFor         = lubmOnt + "worksFor"
	LubmHeadOf           = lubmOnt + "headOf"
	LubmMemberOf         = lubmOnt + "memberOf"
	LubmSubOrganization  = lubmOnt + "subOrganizationOf"
	LubmAdvisor          = lubmOnt + "advisor"
	LubmTakesCourse      = lubmOnt + "takesCourse"
	LubmTeacherOf        = lubmOnt + "teacherOf"
	LubmPubAuthor        = lubmOnt + "publicationAuthor"
	LubmName             = lubmOnt + "name"
	LubmEmail            = lubmOnt + "emailAddress"
	LubmResearchInterest = lubmOnt + "researchInterest"
	LubmUGDegreeFrom     = lubmOnt + "undergraduateDegreeFrom"
	LubmDocDegreeFrom    = lubmOnt + "doctoralDegreeFrom"

	LubmFullProfessor = lubmOnt + "FullProfessor"
	LubmAssocProf     = lubmOnt + "AssociateProfessor"
	LubmAsstProf      = lubmOnt + "AssistantProfessor"
	LubmGradStudent   = lubmOnt + "GraduateStudent"
	LubmUndergrad     = lubmOnt + "UndergraduateStudent"
	LubmCourse        = lubmOnt + "Course"
	LubmDepartment    = lubmOnt + "Department"
	LubmUniversity    = lubmOnt + "University"
	LubmPublication   = lubmOnt + "Publication"
)

// LUBMConfig sizes the generator. With the defaults one university emits
// roughly 1,400 triples.
//
// Note on rdf:type: the generator intentionally emits no type triples.
// The benchmark queries of [1] that the paper uses are reasoning-free and
// type-pattern-free, and the paper's Table IV costs (~1e9 on 100M triples)
// are only reachable on a graph without type-to-class hub vertices — a
// single ub:UndergraduateStudent vertex with tens of millions of crossing
// in-edges would dominate E_F(V) by many orders of magnitude.
type LUBMConfig struct {
	Universities int
	Seed         int64
	// DeptsPerUniversity defaults to 3.
	DeptsPerUniversity int
}

func (c LUBMConfig) withDefaults() LUBMConfig {
	if c.Universities == 0 {
		c.Universities = 10
	}
	if c.DeptsPerUniversity == 0 {
		c.DeptsPerUniversity = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// LubmUniversityURI returns the URI of university u.
func LubmUniversityURI(u int) string {
	return fmt.Sprintf("http://www.University%d.edu", u)
}

// LubmDeptURI returns the URI of department d of university u.
func LubmDeptURI(u, d int) string {
	return fmt.Sprintf("http://www.Department%d.University%d.edu/Department%d", d, u, d)
}

func lubmEntity(u, d int, name string) string {
	return fmt.Sprintf("http://www.Department%d.University%d.edu/%s", d, u, name)
}

// LUBM generates a LUBM-style university graph.
func LUBM(cfg LUBMConfig) *rdf.Graph {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	g := rdf.NewGraph()
	addT := func(s string, p string, o rdf.Term) {
		g.Add(rdf.NewIRI(s), rdf.NewIRI(p), o)
	}
	addI := func(s, p, o string) { addT(s, p, rdf.NewIRI(o)) }

	for u := 0; u < cfg.Universities; u++ {
		univ := LubmUniversityURI(u)
		addT(univ, LubmName, rdf.NewLiteral(fmt.Sprintf("University%d", u)))
		for d := 0; d < cfg.DeptsPerUniversity; d++ {
			dept := LubmDeptURI(u, d)
			addI(dept, LubmSubOrganization, univ)

			// Faculty: 3 full (index 0 is head), 3 associate, 2 assistant.
			profTypes := []struct {
				class string
				count int
				tag   string
			}{
				{LubmFullProfessor, 3, "FullProfessor"},
				{LubmAssocProf, 3, "AssociateProfessor"},
				{LubmAsstProf, 2, "AssistantProfessor"},
			}
			var faculty []string
			var courses []string
			for ci := 0; ci < 10; ci++ {
				c := lubmEntity(u, d, fmt.Sprintf("Course%d", ci))
				addT(c, LubmName, rdf.NewLiteral(fmt.Sprintf("Course%d-%d-%d", u, d, ci)))
				courses = append(courses, c)
			}
			course := 0
			for _, pt := range profTypes {
				for i := 0; i < pt.count; i++ {
					p := lubmEntity(u, d, fmt.Sprintf("%s%d", pt.tag, i))
					addI(p, LubmWorksFor, dept)
					addT(p, LubmName, rdf.NewLiteral(fmt.Sprintf("%s%d@Department%d.University%d", pt.tag, i, d, u)))
					addT(p, LubmEmail, rdf.NewLiteral(fmt.Sprintf("%s%d@dept%d.univ%d.edu", pt.tag, i, d, u)))
					addT(p, LubmResearchInterest, rdf.NewLiteral(fmt.Sprintf("Research%d", r.Intn(20))))
					// Full professors earned their doctorate elsewhere —
					// never at their own university (LQ3 relies on this).
					// Only full professors carry the edge so that
					// cross-university edges stay a small fraction of the
					// graph, as in real LUBM.
					if pt.class == LubmFullProfessor && cfg.Universities > 1 {
						other := (u + 1 + r.Intn(maxInt(cfg.Universities-1, 1))) % cfg.Universities
						if other == u {
							other = (u + 1) % cfg.Universities
						}
						addI(p, LubmDocDegreeFrom, LubmUniversityURI(other))
					}
					addI(p, LubmTeacherOf, courses[course%len(courses)])
					course++
					if pt.class == LubmFullProfessor && i == 0 {
						addI(p, LubmHeadOf, dept)
					}
					faculty = append(faculty, p)
					// One publication per professor.
					pub := lubmEntity(u, d, fmt.Sprintf("Publication%s%d", pt.tag, i))
					addI(pub, LubmPubAuthor, p)
				}
			}
			// Graduate students: advisor in the department; half take one
			// of their advisor's courses (LQ1's triangle exists because of
			// this), and their undergraduate degree is from another
			// university (LQ6 crosses universities through this edge).
			for i := 0; i < 8; i++ {
				s := lubmEntity(u, d, fmt.Sprintf("GraduateStudent%d", i))
				addI(s, LubmMemberOf, dept)
				addT(s, LubmName, rdf.NewLiteral(fmt.Sprintf("GraduateStudent%d-%d-%d", u, d, i)))
				adv := faculty[r.Intn(len(faculty))]
				addI(s, LubmAdvisor, adv)
				if i%2 == 0 {
					// One of the advisor's courses: teacherOf was assigned
					// round-robin, so recover a course the advisor teaches.
					addI(s, LubmTakesCourse, advisorCourse(adv, faculty, courses))
				} else {
					addI(s, LubmTakesCourse, courses[r.Intn(len(courses))])
				}
				if cfg.Universities > 1 && i%2 == 0 {
					ug := (u + 1 + i) % cfg.Universities
					if ug == u {
						ug = (u + 1) % cfg.Universities
					}
					addI(s, LubmUGDegreeFrom, LubmUniversityURI(ug))
				}
			}
			// Undergraduates: high-volume star fodder (LQ2, LQ7).
			for i := 0; i < 20; i++ {
				s := lubmEntity(u, d, fmt.Sprintf("UndergraduateStudent%d", i))
				addI(s, LubmMemberOf, dept)
				addT(s, LubmName, rdf.NewLiteral(fmt.Sprintf("UndergraduateStudent%d-%d-%d", u, d, i)))
				addI(s, LubmTakesCourse, courses[r.Intn(len(courses))])
				addI(s, LubmTakesCourse, courses[r.Intn(len(courses))])
			}
		}
	}
	return g
}

// advisorCourse returns the course its advisor teaches (faculty i teaches
// courses[i mod len]); falls back to the first course.
func advisorCourse(adv string, faculty, courses []string) string {
	for i, f := range faculty {
		if f == adv {
			return courses[i%len(courses)]
		}
	}
	return courses[0]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// LubmQueries returns the LQ1–LQ7 benchmark queries as SPARQL text against
// the synthetic schema, preserving the shape/selectivity classes of the
// queries of [1] used in the paper:
//
//	LQ1 complex unselective (advisor/takesCourse/teacherOf triangle)
//	LQ2 star    unselective (all graduate students and departments)
//	LQ3 complex selective, provably empty (doctorate from own university)
//	LQ4 star    selective (one department's faculty)
//	LQ5 star    selective (full professors of one department)
//	LQ6 complex selective (cross-university degree chain)
//	LQ7 complex unselective (course co-enrollment join)
func LubmQueries() []BenchQuery {
	d0u0 := LubmDeptURI(0, 0)
	u0 := LubmUniversityURI(0)
	u1 := LubmUniversityURI(1)
	return []BenchQuery{
		{
			Name: "LQ1", Shape: ShapeComplex, Selective: false,
			SPARQL: `PREFIX ub: <` + lubmOnt + `>
SELECT ?x ?y ?c WHERE { ?y ub:advisor ?x . ?y ub:takesCourse ?c . ?x ub:teacherOf ?c }`,
		},
		{
			Name: "LQ2", Shape: ShapeStar, Selective: false,
			SPARQL: `PREFIX ub: <` + lubmOnt + `>
SELECT ?x ?y ?c WHERE { ?x ub:memberOf ?y . ?x ub:takesCourse ?c . ?x ub:name ?n }`,
		},
		{
			Name: "LQ3", Shape: ShapeComplex, Selective: true,
			SPARQL: `PREFIX ub: <` + lubmOnt + `>
SELECT ?x ?d WHERE { ?x ub:doctoralDegreeFrom <` + u0 + `> . ?x ub:worksFor ?d . ?d ub:subOrganizationOf <` + u0 + `> }`,
		},
		{
			Name: "LQ4", Shape: ShapeStar, Selective: true,
			SPARQL: `PREFIX ub: <` + lubmOnt + `>
SELECT ?x ?n ?e WHERE { ?x ub:worksFor <` + d0u0 + `> . ?x ub:name ?n . ?x ub:emailAddress ?e }`,
		},
		{
			Name: "LQ5", Shape: ShapeStar, Selective: true,
			SPARQL: `PREFIX ub: <` + lubmOnt + `>
SELECT ?x ?i WHERE { ?x ub:headOf <` + d0u0 + `> . ?x ub:worksFor <` + d0u0 + `> . ?x ub:researchInterest ?i }`,
		},
		{
			Name: "LQ6", Shape: ShapeComplex, Selective: true,
			SPARQL: `PREFIX ub: <` + lubmOnt + `>
SELECT ?x ?d WHERE { ?x ub:undergraduateDegreeFrom <` + u0 + `> . ?x ub:memberOf ?d . ?d ub:subOrganizationOf <` + u1 + `> }`,
		},
		{
			Name: "LQ7", Shape: ShapeComplex, Selective: false,
			SPARQL: `PREFIX ub: <` + lubmOnt + `>
SELECT ?x ?y ?c WHERE { ?x ub:teacherOf ?c . ?y ub:takesCourse ?c . ?y ub:memberOf ?d }`,
		},
	}
}
