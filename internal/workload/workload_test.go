package workload

import (
	"testing"

	"gstored/internal/store"
)

func TestLUBMGeneratorDeterministic(t *testing.T) {
	a := LUBM(LUBMConfig{Universities: 3, Seed: 7})
	b := LUBM(LUBMConfig{Universities: 3, Seed: 7})
	if a.Len() != b.Len() {
		t.Fatalf("non-deterministic sizes: %d vs %d", a.Len(), b.Len())
	}
	c := LUBM(LUBMConfig{Universities: 6, Seed: 7})
	if c.Len() <= a.Len() {
		t.Errorf("scaling universities did not scale triples: %d vs %d", c.Len(), a.Len())
	}
	// Roughly linear scaling (Fig. 11's premise).
	ratio := float64(c.Len()) / float64(a.Len())
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("2x universities gave %.2fx triples", ratio)
	}
}

func TestLUBMQueriesParseAndClassify(t *testing.T) {
	ds := NewLUBM(LUBMConfig{Universities: 3})
	if len(ds.Queries) != 7 {
		t.Fatalf("%d LUBM queries", len(ds.Queries))
	}
	for _, bq := range ds.Queries {
		q, err := bq.Parse(ds.Graph.Dict)
		if err != nil {
			t.Fatalf("%s: %v", bq.Name, err)
		}
		_, isStar := q.StarCenter()
		if (bq.Shape == ShapeStar) != isStar {
			t.Errorf("%s declared %s but StarCenter=%v", bq.Name, bq.Shape, isStar)
		}
	}
}

// TestLUBMQuerySelectivityClasses: result sizes must respect the
// documented classes — the paper's Tables rely on them.
func TestLUBMQuerySelectivityClasses(t *testing.T) {
	ds := NewLUBM(LUBMConfig{Universities: 4})
	st := store.FromGraph(ds.Graph)
	counts := map[string]int{}
	for _, bq := range ds.Queries {
		q, err := bq.Parse(ds.Graph.Dict)
		if err != nil {
			t.Fatal(err)
		}
		counts[bq.Name] = len(st.Match(q))
	}
	if counts["LQ1"] == 0 {
		t.Error("LQ1 should have matches (advisor-course triangles are planted)")
	}
	if counts["LQ2"] < 50 {
		t.Errorf("LQ2 = %d rows, expected an unselective star", counts["LQ2"])
	}
	if counts["LQ3"] != 0 {
		t.Errorf("LQ3 = %d rows, should be provably empty", counts["LQ3"])
	}
	if counts["LQ4"] == 0 || counts["LQ4"] > 20 {
		t.Errorf("LQ4 = %d rows, expected a small selective star", counts["LQ4"])
	}
	if counts["LQ5"] == 0 || counts["LQ5"] > 10 {
		t.Errorf("LQ5 = %d rows, expected a tiny selective star", counts["LQ5"])
	}
	if counts["LQ6"] == 0 || counts["LQ6"] > 100 {
		t.Errorf("LQ6 = %d rows, expected selective complex", counts["LQ6"])
	}
	if counts["LQ7"] <= counts["LQ6"] {
		t.Errorf("LQ7 (%d) should dwarf LQ6 (%d)", counts["LQ7"], counts["LQ6"])
	}
}

func TestYAGOGeneratorAndQueries(t *testing.T) {
	ds := NewYAGO(YAGOConfig{Scale: 1})
	if ds.Graph.Len() < 2000 {
		t.Fatalf("YAGO too small: %d", ds.Graph.Len())
	}
	st := store.FromGraph(ds.Graph)
	counts := map[string]int{}
	for _, bq := range ds.Queries {
		q, err := bq.Parse(ds.Graph.Dict)
		if err != nil {
			t.Fatalf("%s: %v", bq.Name, err)
		}
		counts[bq.Name] = len(st.Match(q))
	}
	if counts["YQ1"] == 0 {
		t.Error("YQ1 should have planted same-city couples")
	}
	if counts["YQ2"] != 0 {
		t.Errorf("YQ2 = %d, should be empty (directors never act)", counts["YQ2"])
	}
	if counts["YQ3"] <= counts["YQ1"]*10 {
		t.Errorf("YQ3 = %d should dominate YQ1 = %d", counts["YQ3"], counts["YQ1"])
	}
	if counts["YQ4"] == 0 {
		t.Error("YQ4 should have matches")
	}
}

func TestBTCGeneratorAndQueries(t *testing.T) {
	ds := NewBTC(BTCConfig{Scale: 1})
	if ds.Graph.Len() < 2000 {
		t.Fatalf("BTC too small: %d", ds.Graph.Len())
	}
	st := store.FromGraph(ds.Graph)
	for _, bq := range ds.Queries {
		q, err := bq.Parse(ds.Graph.Dict)
		if err != nil {
			t.Fatalf("%s: %v", bq.Name, err)
		}
		n := len(st.Match(q))
		switch bq.Name {
		case "BQ1":
			if n != 1 {
				t.Errorf("BQ1 = %d rows, want 1", n)
			}
		case "BQ6", "BQ7":
			if n != 0 {
				t.Errorf("%s = %d rows, want 0", bq.Name, n)
			}
		default:
			if n == 0 {
				t.Errorf("%s returned no rows", bq.Name)
			}
			if n > 500 {
				t.Errorf("%s = %d rows; BTC queries are selective (Table III)", bq.Name, n)
			}
		}
		_, isStar := q.StarCenter()
		if (bq.Shape == ShapeStar) != isStar {
			t.Errorf("%s declared %s but star=%v", bq.Name, bq.Shape, isStar)
		}
	}
}

func TestDatasetQueryLookup(t *testing.T) {
	ds := NewLUBM(LUBMConfig{Universities: 2})
	if _, err := ds.Query("LQ3"); err != nil {
		t.Error(err)
	}
	if _, err := ds.Query("nope"); err == nil {
		t.Error("expected error for unknown query")
	}
}

func TestLUBMURIHierarchy(t *testing.T) {
	// Semantic hash needs per-department hosts.
	if LubmDeptURI(1, 2) != "http://www.Department2.University1.edu/Department2" {
		t.Errorf("dept URI = %s", LubmDeptURI(1, 2))
	}
}
