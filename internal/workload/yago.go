package workload

import (
	"fmt"
	"math"
	"math/rand"

	"gstored/internal/rdf"
)

// YAGO2-style facts: all entities share one URI hierarchy
// (yago-knowledge.org/resource/...), which is why semantic hash
// partitioning degenerates to plain hashing on YAGO2 (§VIII-D).
const yagoRes = "http://yago-knowledge.org/resource/"

// YAGO predicate IRIs.
const (
	YagoWasBornIn   = yagoRes + "wasBornIn"
	YagoIsLocatedIn = yagoRes + "isLocatedIn"
	YagoActedIn     = yagoRes + "actedIn"
	YagoDirected    = yagoRes + "directed"
	YagoIsMarriedTo = yagoRes + "isMarriedTo"
	YagoHasWonPrize = yagoRes + "hasWonPrize"
	YagoLabel       = "http://www.w3.org/2000/01/rdf-schema#label"
)

// YAGOConfig sizes the generator; Scale 1 emits roughly 10k triples.
type YAGOConfig struct {
	Scale int
	Seed  int64
}

func (c YAGOConfig) withDefaults() YAGOConfig {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 2
	}
	return c
}

func yagoPerson(i int) string  { return fmt.Sprintf("%sPerson_%d", yagoRes, i) }
func yagoCity(i int) string    { return fmt.Sprintf("%sCity_%d", yagoRes, i) }
func yagoCountry(i int) string { return fmt.Sprintf("%sCountry_%d", yagoRes, i) }
func yagoMovie(i int) string   { return fmt.Sprintf("%sMovie_%d", yagoRes, i) }
func yagoPrize(i int) string   { return fmt.Sprintf("%sPrize_%d", yagoRes, i) }

// YAGO generates a YAGO2-style wiki-entity fact graph.
func YAGO(cfg YAGOConfig) *rdf.Graph {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	g := rdf.NewGraph()
	addI := func(s, p, o string) { g.AddIRIs(s, p, o) }
	label := func(s, l string) {
		g.Add(rdf.NewIRI(s), rdf.NewIRI(YagoLabel), rdf.NewLangLiteral(l, "en"))
	}

	nCountry := 8
	nCity := 60 * cfg.Scale
	nPerson := 900 * cfg.Scale
	nMovie := 220 * cfg.Scale
	nPrize := 12

	// Wikipedia-extracted facts are heavily skewed: a few mega-cities and
	// blockbuster movies absorb a large share of the edges. The skewed
	// picks below reproduce that degree distribution (it is what makes
	// min-cut partitioners produce edge-imbalanced fragments on YAGO2,
	// Section VIII-D).
	skewed := func(n int) int {
		i := int(float64(n) * math.Pow(r.Float64(), 2.5))
		if i >= n {
			i = n - 1
		}
		return i
	}

	for i := 0; i < nCountry; i++ {
		label(yagoCountry(i), fmt.Sprintf("Country %d", i))
	}
	for i := 0; i < nCity; i++ {
		addI(yagoCity(i), YagoIsLocatedIn, yagoCountry(i%nCountry))
		label(yagoCity(i), fmt.Sprintf("City %d", i))
	}
	for i := 0; i < nPrize; i++ {
		label(yagoPrize(i), fmt.Sprintf("Prize %d", i))
	}
	for i := 0; i < nMovie; i++ {
		label(yagoMovie(i), fmt.Sprintf("Movie %d", i))
	}
	for i := 0; i < nPerson; i++ {
		p := yagoPerson(i)
		label(p, fmt.Sprintf("Person %d", i))
		if r.Float64() < 0.85 {
			addI(p, YagoWasBornIn, yagoCity(skewed(nCity)))
		}
		// A minority are actors with a few roles.
		acted := map[int]bool{}
		if r.Float64() < 0.30 {
			roles := 1 + r.Intn(3)
			for j := 0; j < roles; j++ {
				m := skewed(nMovie)
				acted[m] = true
				addI(p, YagoActedIn, yagoMovie(m))
			}
		}
		// A small set of directors; directors never act in their own
		// movies in this corpus, so YQ2 is provably empty.
		if i%40 == 0 {
			m := skewed(nMovie)
			for acted[m] {
				m = (m + 1) % nMovie
			}
			addI(p, YagoDirected, yagoMovie(m))
		}
		if r.Float64() < 0.10 {
			addI(p, YagoHasWonPrize, yagoPrize(r.Intn(nPrize)))
		}
		// Marriages: partners born in the same city half the time (YQ1's
		// planted answers).
		if i%6 == 0 && i+1 < nPerson {
			addI(p, YagoIsMarriedTo, yagoPerson(i+1))
			if r.Float64() < 0.5 {
				c := yagoCity(skewed(nCity))
				addI(p, YagoWasBornIn, c)
				addI(yagoPerson(i+1), YagoWasBornIn, c)
			}
		}
	}
	return g
}

// YagoQueries returns YQ1–YQ4 preserving the classes the paper reports:
//
//	YQ1 complex selective  (couples born in the same city)
//	YQ2 complex selective, provably empty (director acting in own movie)
//	YQ3 complex unselective (co-star pairs with birthplace — the huge one)
//	YQ4 complex medium (prize winners born in one country)
func YagoQueries() []BenchQuery {
	return []BenchQuery{
		{
			Name: "YQ1", Shape: ShapeComplex, Selective: true,
			SPARQL: `PREFIX y: <` + yagoRes + `>
SELECT ?p ?q ?c WHERE { ?p y:isMarriedTo ?q . ?p y:wasBornIn ?c . ?q y:wasBornIn ?c }`,
		},
		{
			Name: "YQ2", Shape: ShapeComplex, Selective: true,
			SPARQL: `PREFIX y: <` + yagoRes + `>
SELECT ?p ?m WHERE { ?p y:directed ?m . ?p y:actedIn ?m }`,
		},
		{
			Name: "YQ3", Shape: ShapeComplex, Selective: false,
			SPARQL: `PREFIX y: <` + yagoRes + `>
SELECT ?a ?b ?m WHERE { ?a y:actedIn ?m . ?b y:actedIn ?m . ?b y:wasBornIn ?c }`,
		},
		{
			Name: "YQ4", Shape: ShapeComplex, Selective: true,
			SPARQL: `PREFIX y: <` + yagoRes + `>
SELECT ?p ?c ?z WHERE { ?p y:wasBornIn ?c . ?c y:isLocatedIn <` + yagoCountry(0) + `> . ?p y:hasWonPrize ?z }`,
		},
	}
}
