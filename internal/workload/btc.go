package workload

import (
	"fmt"
	"math/rand"

	"gstored/internal/rdf"
)

// BTC-style data: the Billion Triples Challenge corpus is a heterogeneous
// web crawl — many small FOAF-ish documents from different hosts, a few
// well-connected hub entities, and a long tail of vocabulary. Benchmark
// queries over it are highly selective (Table III: every BQ returns at
// most a dozen rows).
const (
	btcFoaf = "http://xmlns.com/foaf/0.1/"
	btcDC   = "http://purl.org/dc/elements/1.1/"
	btcSioc = "http://rdfs.org/sioc/ns#"
	btcGeo  = "http://www.geonames.org/ontology#"
)

// BTC predicate IRIs.
const (
	BTCKnows      = btcFoaf + "knows"
	BTCNick       = btcFoaf + "nick"
	BTCHomepage   = btcFoaf + "homepage"
	BTCMaker      = btcFoaf + "maker"
	BTCTitle      = btcDC + "title"
	BTCCreator    = btcSioc + "has_creator"
	BTCContainer  = btcSioc + "has_container"
	BTCLocatedIn  = btcGeo + "locatedIn"
	BTCPopulation = btcGeo + "population"
)

// BTCConfig sizes the generator; Scale 1 emits roughly 12k triples.
type BTCConfig struct {
	Scale int
	Seed  int64
}

func (c BTCConfig) withDefaults() BTCConfig {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 3
	}
	return c
}

func btcPerson(host, i int) string {
	return fmt.Sprintf("http://site%d.example.org/people/person%d", host, i)
}
func btcPost(host, i int) string {
	return fmt.Sprintf("http://site%d.example.org/posts/post%d", host, i)
}
func btcForum(host int) string {
	return fmt.Sprintf("http://site%d.example.org/forum", host)
}
func btcPlace(i int) string {
	return fmt.Sprintf("http://sws.geonames.org/place%d", i)
}

// BTC generates a BTC-style heterogeneous crawl.
func BTC(cfg BTCConfig) *rdf.Graph {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	g := rdf.NewGraph()
	addI := func(s, p, o string) { g.AddIRIs(s, p, o) }
	addL := func(s, p, l string) { g.Add(rdf.NewIRI(s), rdf.NewIRI(p), rdf.NewLiteral(l)) }

	hosts := 16 * cfg.Scale
	peoplePerHost := 20
	postsPerHost := 25
	places := 30

	for i := 0; i < places; i++ {
		if i > 0 {
			addI(btcPlace(i), BTCLocatedIn, btcPlace(i/2))
		}
		addL(btcPlace(i), BTCPopulation, fmt.Sprintf("%d", 1000*(i+1)))
	}
	for h := 0; h < hosts; h++ {
		addL(btcForum(h), BTCTitle, fmt.Sprintf("Forum of site %d", h))
		for i := 0; i < peoplePerHost; i++ {
			p := btcPerson(h, i)
			addL(p, BTCNick, fmt.Sprintf("nick-%d-%d", h, i))
			addI(p, BTCHomepage, fmt.Sprintf("http://site%d.example.org/home/%d", h, i))
			// Social edges: mostly within the host, a few across (the
			// crossing structure the complex BQs traverse).
			for k := 0; k < 2; k++ {
				if r.Float64() < 0.3 && hosts > 1 {
					oh := r.Intn(hosts)
					addI(p, BTCKnows, btcPerson(oh, r.Intn(peoplePerHost)))
				} else {
					addI(p, BTCKnows, btcPerson(h, r.Intn(peoplePerHost)))
				}
			}
		}
		for i := 0; i < postsPerHost; i++ {
			post := btcPost(h, i)
			addL(post, BTCTitle, fmt.Sprintf("Post %d on %d", i, h))
			// Round-robin creators so every person authors at least one
			// post (BQ3 anchors on a specific creator).
			addI(post, BTCCreator, btcPerson(h, i%peoplePerHost))
			addI(post, BTCContainer, btcForum(h))
			if i%5 == 0 {
				addI(post, BTCMaker, btcPerson(h, r.Intn(peoplePerHost)))
			}
		}
	}
	return g
}

// BTCQueries returns BQ1–BQ7 preserving Table III's classes: BQ1–BQ3 are
// selective stars, BQ4–BQ7 selective complex queries with large partial
// work but tiny (or empty) results.
func BTCQueries() []BenchQuery {
	return []BenchQuery{
		{
			Name: "BQ1", Shape: ShapeStar, Selective: true,
			SPARQL: `PREFIX foaf: <` + btcFoaf + `>
SELECT ?p ?h WHERE { ?p foaf:nick "nick-0-0" . ?p foaf:homepage ?h }`,
		},
		{
			Name: "BQ2", Shape: ShapeStar, Selective: true,
			SPARQL: `PREFIX foaf: <` + btcFoaf + `>
SELECT ?p ?n ?q WHERE { ?p foaf:nick ?n . ?p foaf:homepage <http://site0.example.org/home/3> . ?p foaf:knows ?q }`,
		},
		{
			Name: "BQ3", Shape: ShapeStar, Selective: true,
			SPARQL: `PREFIX sioc: <` + btcSioc + `> PREFIX dc: <` + btcDC + `>
SELECT ?post ?t WHERE { ?post dc:title ?t . ?post sioc:has_container <http://site0.example.org/forum> . ?post sioc:has_creator <http://site0.example.org/people/person1> }`,
		},
		{
			Name: "BQ4", Shape: ShapeComplex, Selective: true,
			SPARQL: `PREFIX foaf: <` + btcFoaf + `>
SELECT ?a ?b WHERE { ?a foaf:nick "nick-0-0" . ?a foaf:knows ?b . ?b foaf:knows ?c . ?c foaf:homepage ?h }`,
		},
		{
			Name: "BQ5", Shape: ShapeComplex, Selective: true,
			SPARQL: `PREFIX foaf: <` + btcFoaf + `> PREFIX sioc: <` + btcSioc + `>
SELECT ?p ?post WHERE { ?post sioc:has_creator ?p . ?p foaf:knows ?q . ?q foaf:nick "nick-1-1" }`,
		},
		{
			Name: "BQ6", Shape: ShapeComplex, Selective: true,
			// Empty: posts are never geo-located.
			SPARQL: `PREFIX foaf: <` + btcFoaf + `> PREFIX sioc: <` + btcSioc + `> PREFIX geo: <` + btcGeo + `>
SELECT ?p ?q WHERE { ?p foaf:knows ?q . ?post sioc:has_creator ?p . ?post geo:locatedIn ?pl }`,
		},
		{
			Name: "BQ7", Shape: ShapeComplex, Selective: true,
			// Empty: forums are not located anywhere.
			SPARQL: `PREFIX sioc: <` + btcSioc + `> PREFIX geo: <` + btcGeo + `>
SELECT ?post ?f WHERE { ?post sioc:has_container ?f . ?f geo:locatedIn ?pl . ?pl geo:population ?n }`,
		},
	}
}
