package workload

import (
	"fmt"

	"gstored/internal/query"
	"gstored/internal/rdf"
	"gstored/internal/sparql"
)

// Query shapes, following the paper's two-way classification (§VIII-B).
const (
	ShapeStar    = "star"
	ShapeComplex = "complex"
)

// BenchQuery is one benchmark query: SPARQL text plus its documented
// shape/selectivity class.
type BenchQuery struct {
	Name      string
	SPARQL    string
	Shape     string // ShapeStar or ShapeComplex
	Selective bool
}

// Parse compiles the query against dict.
func (b BenchQuery) Parse(dict *rdf.Dictionary) (*query.Graph, error) {
	q, err := sparql.Parse(b.SPARQL, dict)
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", b.Name, err)
	}
	return q, nil
}

// Dataset bundles a generated graph with its benchmark queries.
type Dataset struct {
	Name    string
	Graph   *rdf.Graph
	Queries []BenchQuery
}

// Query returns the named benchmark query.
func (d *Dataset) Query(name string) (BenchQuery, error) {
	for _, q := range d.Queries {
		if q.Name == name {
			return q, nil
		}
	}
	return BenchQuery{}, fmt.Errorf("workload: no query %q in %s", name, d.Name)
}

// NewLUBM generates the LUBM-style dataset with its LQ benchmark.
func NewLUBM(cfg LUBMConfig) *Dataset {
	return &Dataset{Name: "LUBM", Graph: LUBM(cfg), Queries: LubmQueries()}
}

// NewYAGO generates the YAGO2-style dataset with its YQ benchmark.
func NewYAGO(cfg YAGOConfig) *Dataset {
	return &Dataset{Name: "YAGO2", Graph: YAGO(cfg), Queries: YagoQueries()}
}

// NewBTC generates the BTC-style dataset with its BQ benchmark.
func NewBTC(cfg BTCConfig) *Dataset {
	return &Dataset{Name: "BTC", Graph: BTC(cfg), Queries: BTCQueries()}
}
