// Package paperexample encodes the paper's running example — the
// three-fragment philosopher RDF graph of Fig. 1, the four-edge SPARQL
// query of Fig. 2, the eight local partial matches of Fig. 3, and the LEC
// structures of Examples 5–8 — as shared test fixtures. Every layer of the
// system asserts against these known-good artifacts.
package paperexample

import (
	"gstored/internal/partition"
	"gstored/internal/query"
	"gstored/internal/rdf"
	"gstored/internal/store"
)

// Vertex IRIs use the paper's three-digit IDs as local names so test
// failures read like the paper's figures.
const ns = "http://paper.example/"

// Predicate IRIs of Fig. 1.
const (
	PredInfluencedBy = ns + "influencedBy"
	PredMainInterest = ns + "mainInterest"
	PredLabel        = ns + "label"
	PredName         = ns + "name"
	PredBirthDate    = ns + "birthDate"
	PredBirthPlace   = ns + "birthPlace"
)

// Example is the fully assembled fixture.
type Example struct {
	Graph      *rdf.Graph
	Store      *store.Store
	Query      *query.Graph // Fig. 2 with vertices in the order v1..v5
	Assignment *partition.Assignment

	// V maps the paper's vertex numbers (1..20) to term IDs.
	V map[int]rdf.TermID
}

// Vertex terms, by paper number:
//
//	001 s1:Phi1      002 "1942-12-21"              003 "Crispin Wright"@en
//	004 "Philosophy of language"@en                005 s1:Int1
//	006 s2:Phi2      007 "Michael Dummett"         008 s2:Int2
//	009 "Metaphysics"@en   010 s2:Int3             011 "Philosophy of logic"@en
//	012 s3:Phi3      013 s3:Int4                   014 s2:Phi4
//	015 "Ludwig Wittgenstein"@en  016 "1889-04-26" 017 "Logic"@en
//	018 "Rudolf Carnap"@en        019 s3:Pla1      020 "Ronsdorf"@en
func vertexTerm(n int) rdf.Term {
	switch n {
	case 1:
		return rdf.NewIRI(ns + "s1/Phi1")
	case 2:
		return rdf.NewTypedLiteral("1942-12-21", "http://www.w3.org/2001/XMLSchema#date")
	case 3:
		return rdf.NewLangLiteral("Crispin Wright", "en")
	case 4:
		return rdf.NewLangLiteral("Philosophy of language", "en")
	case 5:
		return rdf.NewIRI(ns + "s1/Int1")
	case 6:
		return rdf.NewIRI(ns + "s2/Phi2")
	case 7:
		return rdf.NewLiteral("Michael Dummett")
	case 8:
		return rdf.NewIRI(ns + "s2/Int2")
	case 9:
		return rdf.NewLangLiteral("Metaphysics", "en")
	case 10:
		return rdf.NewIRI(ns + "s2/Int3")
	case 11:
		return rdf.NewLangLiteral("Philosophy of logic", "en")
	case 12:
		return rdf.NewIRI(ns + "s3/Phi3")
	case 13:
		return rdf.NewIRI(ns + "s3/Int4")
	case 14:
		return rdf.NewIRI(ns + "s2/Phi4")
	case 15:
		return rdf.NewLangLiteral("Ludwig Wittgenstein", "en")
	case 16:
		return rdf.NewTypedLiteral("1889-04-26", "http://www.w3.org/2001/XMLSchema#date")
	case 17:
		return rdf.NewLangLiteral("Logic", "en")
	case 18:
		return rdf.NewLangLiteral("Rudolf Carnap", "en")
	case 19:
		return rdf.NewIRI(ns + "s3/Pla1")
	case 20:
		return rdf.NewLangLiteral("Ronsdorf", "en")
	}
	panic("paperexample: no such vertex")
}

// edges lists Fig. 1's edges as (subject#, predicate, object#).
var edges = []struct {
	s int
	p string
	o int
}{
	// Fragment F1 internal.
	{1, PredName, 3},
	{1, PredBirthDate, 2},
	{5, PredLabel, 4},
	// Fragment F2 internal.
	{6, PredName, 7},
	{6, PredMainInterest, 8},
	{8, PredLabel, 9},
	{6, PredMainInterest, 10},
	{10, PredLabel, 11},
	{14, PredName, 18},
	// Fragment F3 internal.
	{12, PredMainInterest, 13},
	{13, PredLabel, 17},
	{12, PredName, 15},
	{12, PredBirthDate, 16},
	{19, PredLabel, 20},
	// Crossing edges (Example 1 names the F1 ones explicitly).
	{1, PredInfluencedBy, 6},  // F1 -> F2
	{6, PredMainInterest, 5},  // F2 -> F1
	{1, PredInfluencedBy, 12}, // F1 -> F3
	{14, PredMainInterest, 13},
	{14, PredBirthPlace, 19}, // F2 -> F3
}

// fragmentOf maps paper vertex numbers to fragment indices (F1=0, F2=1,
// F3=2), following Fig. 1.
func fragmentOf(n int) int {
	switch {
	case n <= 5:
		return 0
	case n <= 11 || n == 14 || n == 18:
		return 1
	default:
		return 2
	}
}

// New builds the fixture.
func New() *Example {
	g := rdf.NewGraph()
	ids := make(map[int]rdf.TermID, 20)
	for n := 1; n <= 20; n++ {
		ids[n] = g.Dict.Encode(vertexTerm(n))
	}
	for _, e := range edges {
		g.Add(vertexTerm(e.s), rdf.NewIRI(e.p), vertexTerm(e.o))
	}
	st := store.FromGraph(g)

	// Fig. 2 query: vertex order v1=?p2, v2=?t, v3=?p1, v4=?l, v5=const.
	// Build edges so vertices intern in that exact order, matching the
	// paper's serialization vectors [f(v1),...,f(v5)].
	// Triple order chosen so first appearances are p2, t, p1, l, const —
	// i.e. vertex indices 0..4 correspond to v1..v5. Query edge indices:
	// 0 = p2-mainInterest->t, 1 = p1-influencedBy->p2, 2 = t-label->l,
	// 3 = p1-name->"Crispin Wright"@en.
	q := query.NewBuilder(g.Dict).
		Triple(query.Var("p2"), query.IRI(PredMainInterest), query.Var("t")).
		Triple(query.Var("p1"), query.IRI(PredInfluencedBy), query.Var("p2")).
		Triple(query.Var("t"), query.IRI(PredLabel), query.Var("l")).
		Triple(query.Var("p1"), query.IRI(PredName), query.Term(rdf.NewLangLiteral("Crispin Wright", "en"))).
		Select("p2", "l").
		MustBuild()

	a := &partition.Assignment{K: 3, Frag: make(map[rdf.TermID]int), StrategyName: "paper-figure-1"}
	for n := 1; n <= 20; n++ {
		a.Frag[ids[n]] = fragmentOf(n)
	}
	return &Example{Graph: g, Store: st, Query: q, Assignment: a, V: ids}
}

// QueryVertexOrder documents the fixture's query vertex layout:
// index 0 = v1 (?p2), 1 = v2 (?t), 2 = v3 (?p1), 3 = v4 (?l),
// 4 = v5 ("Crispin Wright"@en).
var QueryVertexOrder = []string{"p2", "t", "p1", "l", `"Crispin Wright"@en`}

// ExpectedPartialMatchVectors lists Fig. 3's serialization vectors
// [f(v1), f(v2), f(v3), f(v4), f(v5)] as paper vertex numbers, 0 = NULL,
// keyed by fragment index.
var ExpectedPartialMatchVectors = map[int][][5]int{
	0: {
		{6, 0, 1, 0, 3},  // PM1_1
		{12, 0, 1, 0, 3}, // PM2_1
		{6, 5, 0, 4, 0},  // PM3_1
	},
	1: {
		{6, 8, 1, 9, 0},   // PM1_2
		{6, 10, 1, 11, 0}, // PM2_2
		{6, 5, 1, 0, 0},   // PM3_2
	},
	2: {
		{12, 13, 1, 17, 0}, // PM1_3
		{14, 13, 0, 17, 0}, // PM2_3
	},
}

// ExpectedCrossingMatches lists the complete crossing matches of the query
// over Fig. 1 as vectors of paper vertex numbers. Example 3 names the
// first; the second is assembled from PM1_1 ⋈ PM3_2 ⋈ PM3_1 (philosophy of
// language via interest s1:Int1), and the third pairs PM2_1 with PM1_3
// (the s3:Phi3 / Logic match).
var ExpectedCrossingMatches = [][5]int{
	{6, 8, 1, 9, 3},
	{6, 10, 1, 11, 3},
	{6, 5, 1, 4, 3},
	{12, 13, 1, 17, 3},
}
