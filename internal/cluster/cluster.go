// Package cluster hosts the paper's distributed environment (§VIII-A: a
// 12-machine MPI cluster): the Site interface the coordinator scatters
// stage work through, the in-process implementation (one LocalSite per
// fragment, parallel stage execution on goroutines), and a byte-accurate
// network meter for the data-shipment numbers the paper reports, plus a
// configurable link model that converts shipments into communication-time
// estimates. The remote package provides the other Site implementation:
// worker processes reached over an RPC transport.
package cluster

import (
	"sync"
	"time"

	"gstored/internal/fragment"
	"gstored/internal/pool"
	"gstored/internal/rdf"
)

// LinkModel converts metered traffic into a communication-time estimate.
// The defaults approximate the paper's gigabit LAN: 0.1 ms per message and
// ~117 MiB/s of goodput.
type LinkModel struct {
	LatencyPerMessage time.Duration
	BytesPerSecond    float64
}

// DefaultLink is the link model used when none is configured.
var DefaultLink = LinkModel{
	LatencyPerMessage: 100 * time.Microsecond,
	BytesPerSecond:    117 << 20,
}

// Network meters every shipment between sites and the coordinator. For
// in-process sites the engine feeds it §IX cost-model estimates; for
// remote sites it receives the real transport byte counts the RPC layer
// measured.
type Network struct {
	Link LinkModel

	mu       sync.Mutex
	bytes    int64
	messages int64
}

// NewNetwork returns a meter with the default link model.
func NewNetwork() *Network { return &Network{Link: DefaultLink} }

// Ship records one message of n bytes.
func (n *Network) Ship(bytes int) {
	n.mu.Lock()
	n.bytes += int64(bytes)
	n.messages++
	n.mu.Unlock()
}

// Count records measured traffic: bytes over messages frames. The RPC
// transport reports its real wire totals through this.
func (n *Network) Count(bytes, messages int64) {
	n.mu.Lock()
	n.bytes += bytes
	n.messages += messages
	n.mu.Unlock()
}

// Broadcast records one message of n bytes to each of k receivers.
func (n *Network) Broadcast(bytes, k int) {
	n.mu.Lock()
	n.bytes += int64(bytes) * int64(k)
	n.messages += int64(k)
	n.mu.Unlock()
}

// Bytes returns the total bytes shipped so far.
func (n *Network) Bytes() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.bytes
}

// Messages returns the number of messages shipped so far.
func (n *Network) Messages() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.messages
}

// EstimateTime converts the metered traffic into a communication-time
// estimate under the link model, assuming messages serialize through the
// coordinator (the pessimistic case the paper's data-shipment metric
// bounds).
func (n *Network) EstimateTime() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	link := n.Link
	if link.BytesPerSecond == 0 {
		link = DefaultLink
	}
	transfer := time.Duration(float64(n.bytes) / link.BytesPerSecond * float64(time.Second))
	return transfer + time.Duration(n.messages)*link.LatencyPerMessage
}

// Cluster is the deployment the engine scatters through: one Site per
// fragment plus a coordinator-side network meter. Sites are interface
// values — in-process LocalSites by default, RPC clients in worker mode.
type Cluster struct {
	Sites []Site
	Net   *Network
	Dict  *rdf.Dictionary
	// Graph is the distributed graph the cluster hosts. The coordinator
	// keeps it in both modes: it owns the data, plans against the global
	// cardinality table, and ships fragments to workers from it.
	Graph *fragment.Distributed
	// Wired reports that the sites return real transport byte counts
	// (remote mode): the engine then meters those instead of the §IX
	// cost-model estimates it applies to in-process sites.
	Wired bool
}

// New builds an in-process cluster over the fragments of d.
func New(d *fragment.Distributed) *Cluster {
	return NewWithSites(d, LocalSites(d, 1))
}

// NewWithSites builds a cluster over explicit Site implementations.
// Sites must be ordered by ID with IDs matching d's fragment IDs.
// Wired is inferred: any non-LocalSite implementation is assumed to
// report real transport bytes.
func NewWithSites(d *fragment.Distributed, sites []Site) *Cluster {
	c := &Cluster{Net: NewNetwork(), Dict: d.Dict, Graph: d, Sites: sites}
	for _, s := range sites {
		if _, local := s.(*LocalSite); !local {
			c.Wired = true
			break
		}
	}
	return c
}

// Parallel runs fn on every site concurrently — one goroutine per site,
// like the paper's per-machine processes — and returns the stage's
// wall-clock duration (the slowest site, since stages are barriers).
// fn receives the site's index alongside the site; indexes equal site
// IDs for clusters built by New/NewWithSites.
func (c *Cluster) Parallel(fn func(i int, s Site)) time.Duration {
	start := time.Now()
	var wg sync.WaitGroup
	for i, s := range c.Sites {
		wg.Add(1)
		go func(i int, s Site) {
			defer wg.Done()
			fn(i, s)
		}(i, s)
	}
	wg.Wait()
	return time.Since(start)
}

// ParallelPool runs fn on every site through the given worker pool and
// returns the stage's wall-clock duration. Unlike Parallel, concurrency
// is bounded by the pool's width rather than the site count, and a
// sequential pool (nil or width 1) visits sites strictly in site order
// — the property the -eval-workers=1 oracle relies on.
func (c *Cluster) ParallelPool(p *pool.Pool, fn func(i int, s Site)) time.Duration {
	start := time.Now()
	tasks := make([]func(), len(c.Sites))
	for i, s := range c.Sites {
		tasks[i] = func() { fn(i, s) }
	}
	p.Do(tasks...)
	return time.Since(start)
}

// ParallelErr is Parallel for site functions that can fail; the first
// non-nil error (by site order) is returned alongside the duration.
func (c *Cluster) ParallelErr(fn func(i int, s Site) error) (time.Duration, error) {
	errs := make([]error, len(c.Sites))
	d := c.Parallel(func(i int, s Site) { errs[i] = fn(i, s) })
	for _, err := range errs {
		if err != nil {
			return d, err
		}
	}
	return d, nil
}
