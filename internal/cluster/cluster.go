// Package cluster simulates the paper's distributed environment (§VIII-A:
// a 12-machine MPI cluster) in-process: one site per fragment, parallel
// stage execution on goroutines, and a byte-accurate network meter for the
// data-shipment numbers the paper reports, plus a configurable link model
// that converts shipments into communication-time estimates.
package cluster

import (
	"sync"
	"time"

	"gstored/internal/fragment"
	"gstored/internal/pool"
	"gstored/internal/rdf"
)

// Site hosts one fragment, mirroring the paper's one-fragment-per-site
// deployment.
type Site struct {
	ID       int
	Fragment *fragment.Fragment
}

// LinkModel converts metered traffic into a communication-time estimate.
// The defaults approximate the paper's gigabit LAN: 0.1 ms per message and
// ~117 MiB/s of goodput.
type LinkModel struct {
	LatencyPerMessage time.Duration
	BytesPerSecond    float64
}

// DefaultLink is the link model used when none is configured.
var DefaultLink = LinkModel{
	LatencyPerMessage: 100 * time.Microsecond,
	BytesPerSecond:    117 << 20,
}

// Network meters every shipment between sites and the coordinator.
type Network struct {
	Link LinkModel

	mu       sync.Mutex
	bytes    int64
	messages int64
}

// NewNetwork returns a meter with the default link model.
func NewNetwork() *Network { return &Network{Link: DefaultLink} }

// Ship records one message of n bytes.
func (n *Network) Ship(bytes int) {
	n.mu.Lock()
	n.bytes += int64(bytes)
	n.messages++
	n.mu.Unlock()
}

// Broadcast records one message of n bytes to each of k receivers.
func (n *Network) Broadcast(bytes, k int) {
	n.mu.Lock()
	n.bytes += int64(bytes) * int64(k)
	n.messages += int64(k)
	n.mu.Unlock()
}

// Bytes returns the total bytes shipped so far.
func (n *Network) Bytes() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.bytes
}

// Messages returns the number of messages shipped so far.
func (n *Network) Messages() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.messages
}

// EstimateTime converts the metered traffic into a communication-time
// estimate under the link model, assuming messages serialize through the
// coordinator (the pessimistic case the paper's data-shipment metric
// bounds).
func (n *Network) EstimateTime() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	link := n.Link
	if link.BytesPerSecond == 0 {
		link = DefaultLink
	}
	transfer := time.Duration(float64(n.bytes) / link.BytesPerSecond * float64(time.Second))
	return transfer + time.Duration(n.messages)*link.LatencyPerMessage
}

// Cluster is the simulated deployment: one site per fragment plus a
// coordinator-side network meter.
type Cluster struct {
	Sites []*Site
	Net   *Network
	Dict  *rdf.Dictionary
	// Graph is the distributed graph the cluster hosts.
	Graph *fragment.Distributed
}

// New builds a cluster over the fragments of d.
func New(d *fragment.Distributed) *Cluster {
	c := &Cluster{Net: NewNetwork(), Dict: d.Dict, Graph: d}
	for _, f := range d.Fragments {
		c.Sites = append(c.Sites, &Site{ID: f.ID, Fragment: f})
	}
	return c
}

// Parallel runs fn on every site concurrently — one goroutine per site,
// like the paper's per-machine processes — and returns the stage's
// wall-clock duration (the slowest site, since stages are barriers).
func (c *Cluster) Parallel(fn func(s *Site)) time.Duration {
	start := time.Now()
	var wg sync.WaitGroup
	for _, s := range c.Sites {
		wg.Add(1)
		go func(s *Site) {
			defer wg.Done()
			fn(s)
		}(s)
	}
	wg.Wait()
	return time.Since(start)
}

// ParallelPool runs fn on every site through the given worker pool and
// returns the stage's wall-clock duration. Unlike Parallel, concurrency
// is bounded by the pool's width rather than the site count, and a
// sequential pool (nil or width 1) visits sites strictly in site order
// — the property the -eval-workers=1 oracle relies on.
func (c *Cluster) ParallelPool(p *pool.Pool, fn func(s *Site)) time.Duration {
	start := time.Now()
	tasks := make([]func(), len(c.Sites))
	for i, s := range c.Sites {
		tasks[i] = func() { fn(s) }
	}
	p.Do(tasks...)
	return time.Since(start)
}

// ParallelErr is Parallel for site functions that can fail; the first
// non-nil error (by site order) is returned alongside the duration.
func (c *Cluster) ParallelErr(fn func(s *Site) error) (time.Duration, error) {
	errs := make([]error, len(c.Sites))
	d := c.Parallel(func(s *Site) { errs[s.ID] = fn(s) })
	for _, err := range errs {
		if err != nil {
			return d, err
		}
	}
	return d, nil
}
