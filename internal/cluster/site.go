package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"gstored/internal/candidates"
	"gstored/internal/fragment"
	"gstored/internal/partial"
	"gstored/internal/pool"
	"gstored/internal/query"
	"gstored/internal/rdf"
	"gstored/internal/store"
)

// Site is the coordinator↔site boundary: the operations the engine
// scatters to every fragment host and the epoch control the generation
// machinery broadcasts. Two implementations exist — LocalSite evaluates
// in-process against a *fragment.Fragment (the default fast single-node
// path, and the oracle the equivalence tests pin), and remote.Site
// forwards each call over the RPC transport to a gstored worker process.
// Everything that crosses this boundary is serializable data: the engine
// may not hand a Site closures or shared mutable state, because a remote
// implementation cannot ship them.
type Site interface {
	// ID is the fragment/site identifier (fragment IDs and site IDs
	// coincide: one fragment per site, per the paper's deployment).
	ID() int

	// Candidates computes the site half of Algorithm 4: per-variable
	// internal-candidate bit vectors over this site's fragment.
	Candidates(ctx context.Context, req CandidatesRequest) (CandidatesReply, error)

	// PartialEval runs the site-local evaluation stage: complete local
	// matches stream into emit as they are found (rows are handed over —
	// the callee must not reuse their backing arrays), and the local
	// partial matches come back in the reply. Emit may be called
	// concurrently; returning false stops this site's production.
	PartialEval(ctx context.Context, req PartialRequest, emit func(row []rdf.TermID) bool) (PartialReply, error)

	// Stats reports the site's identity and liveness for health surfaces.
	Stats(ctx context.Context) (SiteInfo, error)

	// SwapGeneration is one phase of the two-phase epoch broadcast.
	// Prepare stages the site's fragment for swap.Epoch and returns the
	// Site handle that serves the staged generation; commit activates a
	// staged epoch (the returned handle is the receiver). A site that is
	// asked to commit (or to carry its current fragment forward) for an
	// epoch it never staged returns an error wrapping ErrNeedSync; the
	// coordinator then re-ships the full fragment and retries.
	SwapGeneration(ctx context.Context, swap GenerationSwap) (Site, error)
}

// ErrNeedSync reports that a site missed the prepare phase for an epoch
// (it was restarted, or the prepare was lost) and needs the full
// fragment re-shipped before the epoch can commit.
var ErrNeedSync = errors.New("cluster: site missed the prepare for this epoch")

// CandidatesRequest asks a site for its Section VI candidate vectors.
type CandidatesRequest struct {
	Query *query.Graph
	// Bits is the per-variable bit-vector length.
	Bits int
}

// CandidatesReply carries one site's candidate vectors back.
type CandidatesReply struct {
	Vectors *candidates.SiteVectors
	// Wire and WireMessages report the real transport traffic of the
	// call; both zero for in-process sites, whose shipment the engine
	// estimates with the §IX cost model instead.
	Wire         int64
	WireMessages int64
}

// PartialRequest asks a site to run its local evaluation stage. Every
// field except Pool is serializable: a remote site reconstructs the
// vertex filters from its own fragment (center ownership, internal
// sets) rather than receiving closures.
type PartialRequest struct {
	Query *query.Graph
	// Star selects the Section VIII-B fast path: local matching only,
	// with query vertex Center restricted to internal vertices; no
	// partial evaluation runs and the reply carries no matches.
	Star   bool
	Center int
	// Order is the selectivity-ordered edge-evaluation order for local
	// matching; EdgeRank the per-edge rank partial evaluation expands by.
	Order    []int
	EdgeRank []int
	// Union is the broadcast candidate-vector union (Full mode); the
	// site derives its extended-vertex filter from it. Nil below Full.
	Union *candidates.SiteVectors
	// MaxMatches aborts runaway partial evaluations (0 = no limit).
	MaxMatches int
	// Pool is the coordinator's per-execution evaluation pool. It cannot
	// cross the wire: in-process sites run their stages on it, remote
	// sites ignore it and size their own pool from the worker's
	// configuration.
	Pool *pool.Pool
}

// PartialReply is the gathered result of one site's PartialEval.
type PartialReply struct {
	// LocalMatches counts the complete local matches streamed into emit.
	LocalMatches int
	// Matches are the site's local partial matches (nil on the star path).
	Matches []*partial.Match
	// Tasks and Busy attribute evaluation-pool work to the site.
	Tasks int
	Busy  time.Duration
	// Wire and WireMessages report real transport traffic (zero in-process).
	Wire         int64
	WireMessages int64
}

// SiteInfo identifies a site for health reporting.
type SiteInfo struct {
	Site int
	// Addr is the worker address serving the site, or "in-process".
	Addr string
	// Epoch is the generation this site handle serves.
	Epoch uint64
	// Fragments counts the fragments resident at the serving process.
	Fragments int
}

// SwapPhase selects a phase of the two-phase epoch broadcast.
type SwapPhase int

const (
	// SwapPrepare ships (or carries forward) the fragment for the new
	// epoch; the site stages it without serving it.
	SwapPrepare SwapPhase = iota + 1
	// SwapCommit atomically activates a staged epoch.
	SwapCommit
)

// GenerationSwap is one phase of the two-phase epoch broadcast applied
// to one site.
type GenerationSwap struct {
	Phase SwapPhase
	Epoch uint64
	// Fragment is the site's new fragment for Epoch in the prepare
	// phase; nil when the delta left the fragment untouched (the site
	// re-tags its current fragment under the new epoch — only changed
	// fragments travel). Always nil at commit.
	Fragment *fragment.Fragment
}

// LocalSite hosts one fragment in-process: the default single-node
// deployment, and the behavioral oracle the remote implementation is
// pinned against. A LocalSite is immutable — SwapGeneration returns a
// fresh handle rather than mutating the receiver, so in-flight
// executions holding the old handle keep a consistent fragment view
// (the same property the DB's atomic generation pointer provides).
type LocalSite struct {
	id    int
	frag  *fragment.Fragment
	epoch uint64
}

// NewLocalSite returns an in-process site over f serving epoch.
func NewLocalSite(id int, f *fragment.Fragment, epoch uint64) *LocalSite {
	return &LocalSite{id: id, frag: f, epoch: epoch}
}

// LocalSites builds the in-process site set over d's fragments.
func LocalSites(d *fragment.Distributed, epoch uint64) []Site {
	sites := make([]Site, len(d.Fragments))
	for i, f := range d.Fragments {
		sites[i] = NewLocalSite(f.ID, f, epoch)
	}
	return sites
}

// ID implements Site.
func (s *LocalSite) ID() int { return s.id }

// Fragment exposes the hosted fragment for diagnostics and tests.
func (s *LocalSite) Fragment() *fragment.Fragment { return s.frag }

// Candidates implements Site: ComputeSite over the local fragment.
func (s *LocalSite) Candidates(ctx context.Context, req CandidatesRequest) (CandidatesReply, error) {
	if err := ctx.Err(); err != nil {
		return CandidatesReply{}, err
	}
	return CandidatesReply{Vectors: candidates.ComputeSite(s.frag, req.Query, req.Bits)}, nil
}

// PartialEval implements Site: local matching (and, off the star path,
// partial evaluation) against the hosted fragment, with the vertex
// filters reconstructed from the fragment's internal set.
func (s *LocalSite) PartialEval(ctx context.Context, req PartialRequest, emit func(row []rdf.TermID) bool) (PartialReply, error) {
	frag := s.frag
	// Seed chunks emit concurrently when the pool splits the domain, so
	// the per-site counters accumulate atomically.
	var local, tasks, busy atomic.Int64
	onTask := func(d time.Duration) { tasks.Add(1); busy.Add(int64(d)) }
	cancel := cancelPoll(ctx)
	vf := func(qv int, u rdf.TermID) bool { return frag.IsInternal(u) }
	if req.Star {
		// Star fast path: only the center is confined to internal
		// vertices — crossing-edge replicas complete the star locally,
		// and center ownership deduplicates across sites (§VIII-B).
		center := req.Center
		vf = func(qv int, u rdf.TermID) bool {
			return qv != center || frag.IsInternal(u)
		}
	}
	frag.Store.MatchFunc(req.Query, store.MatchOptions{
		VertexFilter: vf,
		Cancel:       cancel,
		Order:        req.Order,
		Pool:         req.Pool,
		OnTask:       onTask,
	}, func(b store.Binding) bool {
		local.Add(1)
		return emit(b.Vars)
	})
	rep := PartialReply{
		LocalMatches: int(local.Load()),
		Tasks:        int(tasks.Load()),
		Busy:         time.Duration(busy.Load()),
	}
	if req.Star {
		return rep, nil
	}
	var ef func(int, rdf.TermID) bool
	if req.Union != nil {
		ef = req.Union.Filter()
	}
	pms, err := partial.Compute(frag, req.Query, partial.Options{
		ExtendedFilter: ef,
		MaxMatches:     req.MaxMatches,
		Cancel:         cancel,
		EdgeRank:       req.EdgeRank,
		Pool:           req.Pool,
		OnTask:         onTask,
	})
	if err != nil {
		return rep, err
	}
	rep.Matches = pms
	rep.Tasks = int(tasks.Load())
	rep.Busy = time.Duration(busy.Load())
	return rep, nil
}

// Stats implements Site.
func (s *LocalSite) Stats(ctx context.Context) (SiteInfo, error) {
	if err := ctx.Err(); err != nil {
		return SiteInfo{}, err
	}
	return SiteInfo{Site: s.id, Addr: "in-process", Epoch: s.epoch, Fragments: 1}, nil
}

// SwapGeneration implements Site. In-process, prepare is building the
// next immutable handle (publication is the caller's atomic generation
// store, which plays the role of the cluster-wide commit) and commit is
// a no-op; the two-phase structure only grows teeth across the RPC
// boundary, where prepare and commit can fail independently.
func (s *LocalSite) SwapGeneration(ctx context.Context, swap GenerationSwap) (Site, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch swap.Phase {
	case SwapPrepare:
		f := swap.Fragment
		if f == nil {
			f = s.frag // untouched by the delta: carry into the new epoch
		}
		return &LocalSite{id: s.id, frag: f, epoch: swap.Epoch}, nil
	case SwapCommit:
		return s, nil
	}
	return nil, fmt.Errorf("cluster: unknown swap phase %d", swap.Phase)
}

// cancelPoll adapts ctx into the polling hook the store and partial
// layers accept; nil when ctx can never be canceled, so the hot
// matching loops skip the poll entirely.
func cancelPoll(ctx context.Context) func() bool {
	if ctx.Done() == nil {
		return nil
	}
	return func() bool { return ctx.Err() != nil }
}
