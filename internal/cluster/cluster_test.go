package cluster

import (
	"sync/atomic"
	"testing"
	"time"

	"gstored/internal/fragment"
	"gstored/internal/paperexample"
)

func build(t *testing.T) *Cluster {
	t.Helper()
	ex := paperexample.New()
	d, err := fragment.Build(ex.Store, ex.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	return New(d)
}

func TestClusterSites(t *testing.T) {
	c := build(t)
	if len(c.Sites) != 3 {
		t.Fatalf("%d sites", len(c.Sites))
	}
	for i, s := range c.Sites {
		if s.ID != i || s.Fragment.ID != i {
			t.Errorf("site %d mislabeled", i)
		}
	}
}

func TestParallelRunsEverySite(t *testing.T) {
	c := build(t)
	var n int32
	d := c.Parallel(func(s *Site) { atomic.AddInt32(&n, 1) })
	if n != 3 {
		t.Errorf("ran on %d sites", n)
	}
	if d <= 0 {
		t.Error("non-positive duration")
	}
}

func TestParallelErr(t *testing.T) {
	c := build(t)
	wantErr := &testErr{}
	_, err := c.ParallelErr(func(s *Site) error {
		if s.ID == 1 {
			return wantErr
		}
		return nil
	})
	if err != wantErr {
		t.Errorf("err = %v", err)
	}
	if _, err := c.ParallelErr(func(s *Site) error { return nil }); err != nil {
		t.Errorf("unexpected err %v", err)
	}
}

type testErr struct{}

func (*testErr) Error() string { return "boom" }

func TestNetworkMetering(t *testing.T) {
	n := NewNetwork()
	n.Ship(100)
	n.Ship(50)
	n.Broadcast(10, 4)
	if n.Bytes() != 190 {
		t.Errorf("bytes = %d, want 190", n.Bytes())
	}
	if n.Messages() != 6 {
		t.Errorf("messages = %d, want 6", n.Messages())
	}
	est := n.EstimateTime()
	if est <= 0 {
		t.Error("estimate should be positive")
	}
	// 6 messages × 100µs dominates 190 bytes of transfer.
	if est < 600*time.Microsecond {
		t.Errorf("estimate %v below latency floor", est)
	}
}

func TestNetworkEstimateZeroModel(t *testing.T) {
	n := &Network{} // zero link model must fall back to defaults
	n.Ship(1 << 20)
	if n.EstimateTime() <= 0 {
		t.Error("zero-model estimate should fall back to DefaultLink")
	}
}

func TestNetworkConcurrentShip(t *testing.T) {
	n := NewNetwork()
	c := build(t)
	c.Parallel(func(s *Site) {
		for i := 0; i < 1000; i++ {
			n.Ship(1)
		}
	})
	if n.Bytes() != 3000 {
		t.Errorf("bytes = %d, want 3000", n.Bytes())
	}
}
