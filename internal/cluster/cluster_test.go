package cluster

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"gstored/internal/fragment"
	"gstored/internal/paperexample"
)

func build(t *testing.T) *Cluster {
	t.Helper()
	ex := paperexample.New()
	d, err := fragment.Build(ex.Store, ex.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	return New(d)
}

func TestClusterSites(t *testing.T) {
	c := build(t)
	if len(c.Sites) != 3 {
		t.Fatalf("%d sites", len(c.Sites))
	}
	if c.Wired {
		t.Error("in-process cluster reports Wired")
	}
	for i, s := range c.Sites {
		local, ok := s.(*LocalSite)
		if !ok {
			t.Fatalf("site %d is %T, want *LocalSite", i, s)
		}
		if s.ID() != i || local.Fragment().ID != i {
			t.Errorf("site %d mislabeled", i)
		}
	}
}

func TestParallelRunsEverySite(t *testing.T) {
	c := build(t)
	var n int32
	d := c.Parallel(func(i int, s Site) { atomic.AddInt32(&n, 1) })
	if n != 3 {
		t.Errorf("ran on %d sites", n)
	}
	if d <= 0 {
		t.Error("non-positive duration")
	}
}

func TestParallelErr(t *testing.T) {
	c := build(t)
	wantErr := &testErr{}
	_, err := c.ParallelErr(func(i int, s Site) error {
		if s.ID() == 1 {
			return wantErr
		}
		return nil
	})
	if err != wantErr {
		t.Errorf("err = %v", err)
	}
	if _, err := c.ParallelErr(func(i int, s Site) error { return nil }); err != nil {
		t.Errorf("unexpected err %v", err)
	}
}

type testErr struct{}

func (*testErr) Error() string { return "boom" }

func TestLocalSwapGeneration(t *testing.T) {
	c := build(t)
	ctx := context.Background()
	s := c.Sites[0]

	// Prepare with a fragment payload yields a fresh handle at the new
	// epoch; the old handle keeps serving its generation.
	replacement := c.Sites[1].(*LocalSite).Fragment()
	next, err := s.SwapGeneration(ctx, GenerationSwap{Phase: SwapPrepare, Epoch: 2, Fragment: replacement})
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if next == s {
		t.Error("prepare returned the receiver; want a fresh immutable handle")
	}
	if got := next.(*LocalSite).Fragment(); got != replacement {
		t.Error("prepared handle does not serve the shipped fragment")
	}
	if got := s.(*LocalSite).Fragment(); got.ID != 0 {
		t.Error("old handle lost its fragment")
	}
	info, err := next.Stats(ctx)
	if err != nil || info.Epoch != 2 {
		t.Errorf("Stats = %+v, %v; want epoch 2", info, err)
	}

	// Prepare with nil carries the current fragment into the new epoch.
	carried, err := s.SwapGeneration(ctx, GenerationSwap{Phase: SwapPrepare, Epoch: 2})
	if err != nil {
		t.Fatalf("carry prepare: %v", err)
	}
	if carried.(*LocalSite).Fragment() != s.(*LocalSite).Fragment() {
		t.Error("nil-fragment prepare did not carry the current fragment")
	}

	// Commit is a no-op in-process (publication is the caller's atomic
	// generation store).
	committed, err := next.SwapGeneration(ctx, GenerationSwap{Phase: SwapCommit, Epoch: 2})
	if err != nil || committed != next {
		t.Errorf("commit = %v, %v; want receiver, nil", committed, err)
	}

	if _, err := s.SwapGeneration(ctx, GenerationSwap{Phase: 0, Epoch: 2}); err == nil {
		t.Error("unknown swap phase accepted")
	}
}

func TestNetworkMetering(t *testing.T) {
	n := NewNetwork()
	n.Ship(100)
	n.Ship(50)
	n.Broadcast(10, 4)
	if n.Bytes() != 190 {
		t.Errorf("bytes = %d, want 190", n.Bytes())
	}
	if n.Messages() != 6 {
		t.Errorf("messages = %d, want 6", n.Messages())
	}
	n.Count(810, 4)
	if n.Bytes() != 1000 || n.Messages() != 10 {
		t.Errorf("after Count: bytes = %d, messages = %d, want 1000, 10", n.Bytes(), n.Messages())
	}
	est := n.EstimateTime()
	if est <= 0 {
		t.Error("estimate should be positive")
	}
	// 10 messages × 100µs dominates 1000 bytes of transfer.
	if est < time.Millisecond {
		t.Errorf("estimate %v below latency floor", est)
	}
}

func TestNetworkEstimateZeroModel(t *testing.T) {
	n := &Network{} // zero link model must fall back to defaults
	n.Ship(1 << 20)
	if n.EstimateTime() <= 0 {
		t.Error("zero-model estimate should fall back to DefaultLink")
	}
}

func TestNetworkConcurrentShip(t *testing.T) {
	n := NewNetwork()
	c := build(t)
	c.Parallel(func(i int, s Site) {
		for j := 0; j < 1000; j++ {
			n.Ship(1)
		}
	})
	if n.Bytes() != 3000 {
		t.Errorf("bytes = %d, want 3000", n.Bytes())
	}
}
