package engine

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"gstored/internal/fragment"
	"gstored/internal/partition"
	"gstored/internal/query"
	"gstored/internal/rdf"
	"gstored/internal/store"
)

// equivEnv is the shared fixture of the cross-mode equivalence harness:
// a seeded random graph distributed over 4 sites, dense enough that
// every query shape below has matches and every site holds crossing
// edges.
type equivEnv struct {
	dict *rdf.Dictionary
	dist *fragment.Distributed
	eng  *Engine
}

func newEquivEnv(t *testing.T) *equivEnv {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	g := rdf.NewGraph()
	const nv = 60
	node := func(i int) string { return fmt.Sprintf("http://ex.org/v%d", i) }
	pred := func(i int) string { return fmt.Sprintf("http://ex.org/p%d", i) }
	for p := 0; p < 3; p++ {
		for k := 0; k < 150; k++ {
			g.AddIRIs(node(rng.Intn(nv)), pred(p), node(rng.Intn(nv)))
		}
	}
	st := store.FromGraph(g)
	d, err := fragment.BuildWith(st, partition.Hash{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return &equivEnv{dict: g.Dict, dist: d, eng: New(d)}
}

// shape builds one of the four structural query classes over the
// fixture predicates. mod applies the modifier combination under test.
func (env *equivEnv) shape(t *testing.T, name string, mod func(*query.Builder) *query.Builder) *query.Graph {
	t.Helper()
	b := query.NewBuilder(env.dict)
	switch name {
	case "star":
		b.Triple(query.Var("x"), query.IRI("http://ex.org/p0"), query.Var("a")).
			Triple(query.Var("x"), query.IRI("http://ex.org/p1"), query.Var("b"))
	case "path":
		b.Triple(query.Var("x"), query.IRI("http://ex.org/p0"), query.Var("y")).
			Triple(query.Var("y"), query.IRI("http://ex.org/p1"), query.Var("z"))
	case "cross":
		// Two single-edge components: a pure cross product.
		b.Triple(query.Var("x"), query.IRI("http://ex.org/p0"), query.Var("y")).
			Triple(query.Var("a"), query.IRI("http://ex.org/p2"), query.Var("b"))
	case "disconnected":
		// A path component and a separate edge: component split where one
		// side itself needs distributed evaluation.
		b.Triple(query.Var("x"), query.IRI("http://ex.org/p0"), query.Var("y")).
			Triple(query.Var("y"), query.IRI("http://ex.org/p1"), query.Var("z")).
			Triple(query.Var("a"), query.IRI("http://ex.org/p2"), query.Var("b"))
	default:
		t.Fatalf("unknown shape %q", name)
	}
	if mod != nil {
		b = mod(b)
	}
	return b.MustBuild()
}

// orderedKeys runs the ordered path and returns the projected row keys
// in their served order.
func orderedKeys(t *testing.T, e *Engine, q *query.Graph, workers int) []string {
	t.Helper()
	res, err := e.Execute(q, Config{Mode: Full, EvalWorkers: workers})
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	res.EachProjected(func(r Row) bool {
		keys = append(keys, r.Key())
		return true
	})
	return keys
}

// streamedKeys runs the unordered streaming path and returns emitted
// projected row keys in emission order.
func streamedKeys(t *testing.T, e *Engine, q *query.Graph, workers int) []string {
	t.Helper()
	var keys []string
	_, err := e.ExecuteStream(context.Background(), q, Config{Mode: Full, EvalWorkers: workers}, func(r Row) bool {
		keys = append(keys, r.Key())
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return keys
}

func multiset(keys []string) map[string]int {
	m := make(map[string]int, len(keys))
	for _, k := range keys {
		m[k]++
	}
	return m
}

func sameMultiset(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	ma := multiset(a)
	for k, n := range multiset(b) {
		if ma[k] != n {
			return false
		}
	}
	return true
}

// TestCrossModeEquivalence is the cross-mode equivalence harness: every
// query shape × modifier combination runs through sequential vs
// parallel evaluation and ordered vs unordered delivery, and all modes
// must agree with the sequential ordered oracle.
//
//   - Ordered delivery is deterministic: identical row sequences
//     regardless of worker count.
//   - Unordered delivery without LIMIT/OFFSET: identical row multisets.
//   - Unordered delivery under LIMIT/OFFSET without DISTINCT may pick a
//     different (equally correct) row subset, so the harness checks
//     count plus membership in the unmodified answer multiset.
func TestCrossModeEquivalence(t *testing.T) {
	env := newEquivEnv(t)
	shapes := []string{"star", "path", "cross", "disconnected"}
	mods := []struct {
		name       string
		mod        func(*query.Builder) *query.Builder
		subsetting bool // LIMIT/OFFSET trims the answer: membership check only
		distinct   bool
	}{
		{name: "plain"},
		{name: "distinct", mod: func(b *query.Builder) *query.Builder { return b.Distinct() }, distinct: true},
		{name: "limit", mod: func(b *query.Builder) *query.Builder { return b.Limit(5) }, subsetting: true},
		{name: "offset", mod: func(b *query.Builder) *query.Builder { return b.Offset(3) }, subsetting: true},
		{name: "distinct-limit", mod: func(b *query.Builder) *query.Builder { return b.Distinct().Limit(4) },
			subsetting: true, distinct: true},
		{name: "limit-offset", mod: func(b *query.Builder) *query.Builder { return b.Limit(5).Offset(2) },
			subsetting: true},
	}
	for _, shape := range shapes {
		for _, m := range mods {
			t.Run(shape+"/"+m.name, func(t *testing.T) {
				q := env.shape(t, shape, m.mod)
				oracle := orderedKeys(t, env.eng, q, 1)
				// The unmodified answer bounds what subsetting modes may emit.
				full := oracle
				if m.subsetting || m.distinct {
					full = orderedKeys(t, env.eng, env.shape(t, shape, nil), 1)
				}
				if len(full) == 0 {
					t.Fatalf("fixture produced no rows for %s", shape)
				}
				fullSet := multiset(full)

				// Ordered parallel must be byte-identical, row for row.
				par := orderedKeys(t, env.eng, q, 4)
				if fmt.Sprint(par) != fmt.Sprint(oracle) {
					t.Fatalf("ordered parallel diverged from sequential oracle\n got %d rows\nwant %d rows", len(par), len(oracle))
				}

				for _, workers := range []int{1, 4} {
					got := streamedKeys(t, env.eng, q, workers)
					if len(got) != len(oracle) {
						t.Fatalf("unordered workers=%d emitted %d rows, oracle has %d", workers, len(got), len(oracle))
					}
					if m.distinct {
						if len(multiset(got)) != len(got) {
							t.Fatalf("unordered workers=%d emitted duplicate rows under DISTINCT", workers)
						}
					}
					if m.subsetting {
						// Any subset of the full answer with the right cardinality
						// is correct; multiplicity must not exceed the answer's.
						for k, n := range multiset(got) {
							if n > fullSet[k] {
								t.Fatalf("unordered workers=%d emitted row %d times, answer has it %d times", workers, n, fullSet[k])
							}
						}
					} else if !sameMultiset(got, oracle) {
						t.Fatalf("unordered workers=%d row multiset diverged from oracle", workers)
					}
				}
			})
		}
	}
}

// TestCrossModeEquivalenceAllEngineModes runs the plain variant of each
// shape through every ablation mode under parallel evaluation: the
// optimization level must never change the answer.
func TestCrossModeEquivalenceAllEngineModes(t *testing.T) {
	env := newEquivEnv(t)
	for _, shape := range []string{"star", "path", "cross", "disconnected"} {
		q := env.shape(t, shape, nil)
		oracle := orderedKeys(t, env.eng, q, 1)
		for _, mode := range allModes {
			res, err := env.eng.Execute(q, Config{Mode: mode, EvalWorkers: 4})
			if err != nil {
				t.Fatalf("%s/%v: %v", shape, mode, err)
			}
			var got []string
			res.EachProjected(func(r Row) bool { got = append(got, r.Key()); return true })
			if fmt.Sprint(got) != fmt.Sprint(oracle) {
				t.Fatalf("%s/%v: rows diverged from sequential Full oracle (%d vs %d rows)",
					shape, mode, len(got), len(oracle))
			}
		}
	}
}
