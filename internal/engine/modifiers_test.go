package engine

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"gstored/internal/fragment"
	"gstored/internal/partition"
	"gstored/internal/query"
	"gstored/internal/rdf"
	"gstored/internal/store"
)

// dupExample is a small graph whose projections produce known duplicates:
//
//	knows: a1→b, a2→b, a3→c, a4→c, a5→c   (SELECT ?y: {b×2, c×3})
//	in:    b→rome, c→rome                  (path SELECT ?z: {rome×5})
//	color: p→red, q→red                    (disconnected cross products)
func dupExample(t *testing.T) (*rdf.Graph, *store.Store, *Engine) {
	t.Helper()
	g := rdf.NewGraph()
	add := func(s, p, o string) {
		g.Add(rdf.NewIRI("http://ex/"+s), rdf.NewIRI("http://ex/"+p), rdf.NewIRI("http://ex/"+o))
	}
	add("a1", "knows", "b")
	add("a2", "knows", "b")
	add("a3", "knows", "c")
	add("a4", "knows", "c")
	add("a5", "knows", "c")
	add("b", "in", "rome")
	add("c", "in", "rome")
	add("p", "color", "red")
	add("q", "color", "red")
	st := store.FromGraph(g)
	a, err := (partition.Hash{}).Partition(st, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := fragment.Build(st, a)
	if err != nil {
		t.Fatal(err)
	}
	return g, st, New(d)
}

// withMods copies q and applies the given solution modifiers.
func withMods(q *query.Graph, distinct bool, limit, offset int) *query.Graph {
	m := *q
	m.Distinct = distinct
	if limit >= 0 {
		m.Limit, m.HasLimit = limit, true
	}
	m.Offset = offset
	return &m
}

// referenceModified applies the modifier semantics to a plain ordered
// result: dedup projected keys in canonical full-row order, then slice.
// It returns the expected projected keys, in order.
func referenceModified(base *Result, distinct bool, limit, offset int) []string {
	var keys []string
	seen := map[string]bool{}
	base.EachProjected(func(r Row) bool {
		k := r.Key()
		if distinct {
			if seen[k] {
				return true
			}
			seen[k] = true
		}
		keys = append(keys, k)
		return true
	})
	if offset >= len(keys) {
		keys = keys[:0]
	} else {
		keys = keys[offset:]
	}
	if limit >= 0 && len(keys) > limit {
		keys = keys[:limit]
	}
	return keys
}

// TestSelectDistinctRegression is the headline bugfix pin: before this
// change the parser-set distinct flag was dropped on the floor and
// SELECT DISTINCT returned the duplicate-bearing multiset.
func TestSelectDistinctRegression(t *testing.T) {
	g, st, e := dupExample(t)
	q := query.NewBuilder(g.Dict).
		Triple(query.Var("x"), query.IRI("http://ex/knows"), query.Var("y")).
		Select("y").
		MustBuild()
	if got := len(centralizedRows(st, q)); got != 5 {
		t.Fatalf("plain multiset has %d rows, want 5", got)
	}
	plain, err := e.Execute(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Len() != 5 {
		t.Fatalf("plain SELECT ?y: %d rows, want 5 (duplicates preserved)", plain.Len())
	}
	res, err := e.Execute(withMods(q, true, -1, 0), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("SELECT DISTINCT ?y: %d rows, want 2 (set of {b, c})", res.Len())
	}
	seen := map[string]bool{}
	res.EachProjected(func(r Row) bool {
		k := r.Key()
		if seen[k] {
			t.Errorf("duplicate projected row %s under DISTINCT", k)
		}
		seen[k] = true
		return true
	})
}

// TestModifierConformance is the DISTINCT × LIMIT × OFFSET ×
// ordered/unordered table over query shapes with known duplicates: a
// star (fast path), a two-edge path (partial evaluation + assembly), and
// a disconnected query (component cross product). Ordered answers must
// equal the reference modifier semantics exactly; unordered answers must
// have the right cardinality, draw only from the true answer, respect
// DISTINCT, and report EarlyStop exactly when LIMIT cut the run short.
func TestModifierConformance(t *testing.T) {
	g, _, e := dupExample(t)
	b := func() *query.Builder { return query.NewBuilder(g.Dict) }
	shapes := []struct {
		name string
		q    *query.Graph
	}{
		{"star", b().
			Triple(query.Var("x"), query.IRI("http://ex/knows"), query.Var("y")).
			Select("y").MustBuild()},
		{"path", b().
			Triple(query.Var("x"), query.IRI("http://ex/knows"), query.Var("y")).
			Triple(query.Var("y"), query.IRI("http://ex/in"), query.Var("z")).
			Select("z").MustBuild()},
		{"disconnected", b().
			Triple(query.Var("x"), query.IRI("http://ex/knows"), query.Var("y")).
			Triple(query.Var("m"), query.IRI("http://ex/color"), query.Var("n")).
			Select("y", "n").MustBuild()},
	}
	for _, shape := range shapes {
		base, err := e.Execute(shape.q, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if base.Len() < 5 {
			t.Fatalf("%s: baseline has %d rows; too small to exercise modifiers", shape.name, base.Len())
		}
		inAnswer := map[string]bool{}
		base.EachProjected(func(r Row) bool { inAnswer[r.Key()] = true; return true })

		for _, distinct := range []bool{false, true} {
			for _, limit := range []int{-1, 0, 2, 100} {
				for _, offset := range []int{0, 1, 3} {
					name := fmt.Sprintf("%s/distinct=%v/limit=%d/offset=%d", shape.name, distinct, limit, offset)
					mq := withMods(shape.q, distinct, limit, offset)
					want := referenceModified(base, distinct, limit, offset)

					// Ordered: exact, deterministic.
					res, err := e.Execute(mq, Config{})
					if err != nil {
						t.Fatalf("%s ordered: %v", name, err)
					}
					var got []string
					res.EachProjected(func(r Row) bool {
						got = append(got, r.Key())
						return true
					})
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Errorf("%s ordered:\n got %v\nwant %v", name, got, want)
					}
					if res.Stats.NumMatches != len(want) {
						t.Errorf("%s ordered: NumMatches = %d, want %d", name, res.Stats.NumMatches, len(want))
					}

					// Unordered: cardinality + membership + set semantics.
					var streamed []string
					sres, err := e.ExecuteStream(context.Background(), mq, Config{}, func(r Row) bool {
						streamed = append(streamed, r.Key())
						return true
					})
					if err != nil {
						t.Fatalf("%s unordered: %v", name, err)
					}
					if len(streamed) != len(want) {
						t.Errorf("%s unordered: emitted %d rows, want %d", name, len(streamed), len(want))
					}
					dups := map[string]bool{}
					for _, k := range streamed {
						if !inAnswer[k] {
							t.Errorf("%s unordered: emitted row %s not in the true answer", name, k)
						}
						if distinct && dups[k] {
							t.Errorf("%s unordered: duplicate row %s under DISTINCT", name, k)
						}
						dups[k] = true
					}
					// Without OFFSET/LIMIT truncation the unordered answer
					// must be the same multiset, just in another order.
					if limit < 0 && offset == 0 {
						sortedStreamed := append([]string(nil), streamed...)
						sort.Strings(sortedStreamed)
						sortedWant := append([]string(nil), want...)
						sort.Strings(sortedWant)
						if fmt.Sprint(sortedStreamed) != fmt.Sprint(sortedWant) {
							t.Errorf("%s unordered full answer:\n got %v\nwant %v", name, sortedStreamed, sortedWant)
						}
					}
					wantEarly := limit >= 0 && len(want) == limit
					if sres.Stats.EarlyStop != wantEarly {
						t.Errorf("%s unordered: EarlyStop = %v, want %v", name, sres.Stats.EarlyStop, wantEarly)
					}
					if sres.Stats.NumMatches != len(streamed) {
						t.Errorf("%s unordered: NumMatches = %d, want %d", name, sres.Stats.NumMatches, len(streamed))
					}
					if sres.Rows != nil {
						t.Errorf("%s unordered: Rows retained (%d), want nil", name, len(sres.Rows))
					}
				}
			}
		}
	}
}

// TestExecuteStreamEarlyTermination pins the cooperative-stop contract:
// a satisfied LIMIT (or a consumer declining rows) cancels the run, and
// a cancelled parent context still surfaces as its own error.
func TestExecuteStreamEarlyTermination(t *testing.T) {
	g, _, e := dupExample(t)
	q := query.NewBuilder(g.Dict).
		Triple(query.Var("x"), query.IRI("http://ex/knows"), query.Var("y")).
		MustBuild()

	// Consumer stops after one row: success, EarlyStop, one emission.
	calls := 0
	res, err := e.ExecuteStream(context.Background(), q, Config{}, func(Row) bool {
		calls++
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 || !res.Stats.EarlyStop {
		t.Errorf("consumer stop: calls=%d EarlyStop=%v, want 1/true", calls, res.Stats.EarlyStop)
	}

	// Pre-cancelled parent: the context error wins, nothing is emitted.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ExecuteStream(ctx, q, Config{}, func(Row) bool {
		t.Error("emit called under a cancelled context")
		return true
	}); err != context.Canceled {
		t.Errorf("cancelled parent: err = %v, want context.Canceled", err)
	}

	// LIMIT 0 is satisfied before the first row on every shape.
	for _, disable := range []bool{false, true} {
		res, err := e.ExecuteStream(context.Background(), withMods(q, false, 0, 0),
			Config{DisableStarFastPath: disable}, func(Row) bool {
				t.Error("emit called under LIMIT 0")
				return true
			})
		if err != nil {
			t.Fatalf("LIMIT 0 (disableStar=%v): %v", disable, err)
		}
		if !res.Stats.EarlyStop || res.Stats.NumMatches != 0 {
			t.Errorf("LIMIT 0 (disableStar=%v): stats %+v", disable, res.Stats)
		}
	}
}

// TestInvalidModifiersRejectedOnDisconnectedGraph pins parent-graph
// validation: a hand-built disconnected query carrying an invalid
// modifier must fail Validate up front on both execution paths, not
// slip past the per-component checks (SplitComponents strips modifiers)
// and panic in the final modifier slice.
func TestInvalidModifiersRejectedOnDisconnectedGraph(t *testing.T) {
	g, _, e := dupExample(t)
	base := query.NewBuilder(g.Dict).
		Triple(query.Var("x"), query.IRI("http://ex/knows"), query.Var("y")).
		Triple(query.Var("m"), query.IRI("http://ex/color"), query.Var("n")).
		MustBuild()
	for name, mutate := range map[string]func(*query.Graph){
		"negative limit":  func(q *query.Graph) { q.Limit, q.HasLimit = -1, true },
		"negative offset": func(q *query.Graph) { q.Offset = -5 },
	} {
		bad := *base
		mutate(&bad)
		if _, err := e.Execute(&bad, Config{}); err == nil {
			t.Errorf("%s: Execute accepted an invalid modifier", name)
		}
		if _, err := e.ExecuteStream(context.Background(), &bad, Config{}, func(Row) bool { return true }); err == nil {
			t.Errorf("%s: ExecuteStream accepted an invalid modifier", name)
		}
	}
}

// TestOrderedModifiersDeterministic pins that the default ordered path
// stays deterministic under modifiers: two runs of DISTINCT+OFFSET+LIMIT
// return identical row sequences.
func TestOrderedModifiersDeterministic(t *testing.T) {
	g, _, e := dupExample(t)
	q := query.NewBuilder(g.Dict).
		Triple(query.Var("x"), query.IRI("http://ex/knows"), query.Var("y")).
		MustBuild()
	mq := withMods(q, true, 2, 1)
	a, err := e.Execute(mq, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Execute(mq, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(resultKeys(a)) != fmt.Sprint(resultKeys(b)) {
		t.Errorf("ordered modifier runs differ:\n%v\n%v", resultKeys(a), resultKeys(b))
	}
}
