package engine

import (
	"context"
	"testing"

	"gstored/internal/paperexample"
	"gstored/internal/query"
	"gstored/internal/trace"
)

// TestFragmentStatsConsistency: the per-fragment breakdown must add back
// up to the aggregate Stats columns in every mode — the whole point of
// Fragments is that the aggregates are its row sums.
func TestFragmentStatsConsistency(t *testing.T) {
	ex, e := paperEngine(t)
	for _, mode := range allModes {
		res, err := e.Execute(ex.Query, Config{Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		s := res.Stats
		if len(s.Fragments) != 3 {
			t.Fatalf("%v: %d fragment rows, want 3 (one per site)", mode, len(s.Fragments))
		}
		var local, pms, retained int
		var ship int64
		for i, fs := range s.Fragments {
			if fs.Site != i {
				t.Errorf("%v: fragment row %d has site %d, want sorted by site", mode, i, fs.Site)
			}
			local += fs.LocalMatches
			pms += fs.PartialMatches
			retained += fs.RetainedPartialMatches
			ship += fs.ShipmentBytes
		}
		if local != s.NumLocalMatches {
			t.Errorf("%v: fragment local sum %d != %d", mode, local, s.NumLocalMatches)
		}
		if pms != s.NumPartialMatches {
			t.Errorf("%v: fragment PM sum %d != %d", mode, pms, s.NumPartialMatches)
		}
		if retained != s.NumRetainedPartialMatches {
			t.Errorf("%v: fragment retained sum %d != %d", mode, retained, s.NumRetainedPartialMatches)
		}
		if pms == 0 {
			t.Errorf("%v: paper query enumerates partial matches at the sites", mode)
		}
		// Site-attributed traffic excludes coordinator broadcasts (query
		// init, candidate unions, LEC verdict bitmaps), so it must be a
		// positive strict subset of the total.
		if ship <= 0 || ship > s.TotalShipment {
			t.Errorf("%v: fragment shipment sum %d outside (0, %d]", mode, ship, s.TotalShipment)
		}
	}
}

// TestStarFragmentStats: the star fast path attributes its local matches
// and result shipment per site too.
func TestStarFragmentStats(t *testing.T) {
	ex, e := paperEngine(t)
	q := query.NewBuilder(ex.Graph.Dict).
		Triple(query.Var("x"), query.IRI(paperexample.PredMainInterest), query.Var("i")).
		Triple(query.Var("x"), query.IRI(paperexample.PredName), query.Var("n")).
		MustBuild()
	res, err := e.Execute(q, Config{Mode: Full})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if !s.StarFastPath {
		t.Fatal("star not detected")
	}
	if len(s.Fragments) != 3 {
		t.Fatalf("%d fragment rows, want 3", len(s.Fragments))
	}
	var local int
	for _, fs := range s.Fragments {
		local += fs.LocalMatches
		if fs.PartialMatches != 0 || fs.RetainedPartialMatches != 0 {
			t.Errorf("site %d: star path reports partial matches: %+v", fs.Site, fs)
		}
	}
	if local != s.NumLocalMatches || local == 0 {
		t.Errorf("fragment local sum %d, want %d (nonzero)", local, s.NumLocalMatches)
	}
}

// TestExecuteRecordsTraceSpans: a trace attached to the context collects
// per-site partial spans and the coordinator-side LEC/assembly spans;
// executions without a trace record nothing and still succeed.
func TestExecuteRecordsTraceSpans(t *testing.T) {
	ex, e := paperEngine(t)
	tr := trace.New()
	ctx := trace.NewContext(context.Background(), tr)
	res, err := e.ExecuteContext(ctx, ex.Query, Config{Mode: Full})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StarFastPath {
		t.Fatal("paper query is not a star")
	}
	byStage := map[string]int{}
	siteSpans := map[int]bool{}
	for _, sp := range tr.Spans() {
		byStage[sp.Stage]++
		if sp.Stage == "partial" {
			siteSpans[sp.Fragment] = true
		}
		if sp.DurationMicros < 0 || sp.StartMicros < 0 {
			t.Errorf("span %+v has negative timing", sp)
		}
	}
	if byStage["partial"] != 3 || byStage["candidates"] != 3 {
		t.Errorf("per-site spans = %v, want 3 partial + 3 candidates", byStage)
	}
	if byStage["lec"] != 1 || byStage["assembly"] != 1 {
		t.Errorf("coordinator spans = %v, want 1 lec + 1 assembly", byStage)
	}
	for site := 0; site < 3; site++ {
		if !siteSpans[site] {
			t.Errorf("no partial span for site %d", site)
		}
	}
}
