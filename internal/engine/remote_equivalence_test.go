package engine

import (
	"context"
	"net"
	"testing"

	"gstored/internal/cluster"
	"gstored/internal/remote"
)

// newRemoteEngine deploys the fixture's fragments onto two worker
// processes (in-process goroutines, real TCP on loopback) and returns an
// engine whose sites are all RPC-backed. Teardown rides the test.
func newRemoteEngine(t *testing.T, env *equivEnv) *Engine {
	t.Helper()
	var addrs []string
	for i := 0; i < 2; i++ {
		w := remote.NewWorker(0)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			if err := w.Serve(ln); err != nil {
				t.Errorf("worker serve: %v", err)
			}
		}()
		t.Cleanup(func() {
			if err := w.Close(); err != nil {
				t.Errorf("worker close: %v", err)
			}
			<-done
		})
		addrs = append(addrs, ln.Addr().String())
	}
	coord, err := remote.Connect(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := coord.Close(); err != nil {
			t.Errorf("coordinator close: %v", err)
		}
	})

	// The initial ship is epoch 1's two-phase broadcast with every
	// fragment touched, exactly as DB.Open drives it.
	ctx := context.Background()
	sites := make([]cluster.Site, len(env.dist.Fragments))
	for i, f := range env.dist.Fragments {
		s, err := coord.NewSite(i).SwapGeneration(ctx, cluster.GenerationSwap{
			Phase: cluster.SwapPrepare, Epoch: 1, Fragment: f,
		})
		if err != nil {
			t.Fatalf("prepare site %d: %v", i, err)
		}
		sites[i] = s
	}
	for i, s := range sites {
		cs, err := s.SwapGeneration(ctx, cluster.GenerationSwap{Phase: cluster.SwapCommit, Epoch: 1})
		if err != nil {
			t.Fatalf("commit site %d: %v", i, err)
		}
		sites[i] = cs
	}
	return NewWithSites(env.dist, sites)
}

// TestRemoteSiteEquivalence pins the RPC transport against the
// in-process oracle on the full engine path: for every structural query
// shape, ordered results through two remote workers must be
// byte-identical to the in-process engine's, and the streaming path must
// deliver the same row multiset. This is the acceptance bar for the
// coordinator↔site boundary: the engine cannot tell which implementation
// it is scattering to.
func TestRemoteSiteEquivalence(t *testing.T) {
	env := newEquivEnv(t)
	remoteEng := newRemoteEngine(t, env)

	if !remoteEng.Cluster.Wired {
		t.Fatal("remote engine not marked wired")
	}
	if env.eng.Cluster.Wired {
		t.Fatal("in-process engine marked wired")
	}

	for _, shape := range []string{"star", "path", "cross", "disconnected"} {
		t.Run(shape, func(t *testing.T) {
			q := env.shape(t, shape, nil)
			want := orderedKeys(t, env.eng, q, 4)
			got := orderedKeys(t, remoteEng, q, 4)
			if len(want) == 0 {
				t.Fatalf("shape %s has no matches; fixture too sparse", shape)
			}
			for i := range want {
				if i >= len(got) || got[i] != want[i] {
					t.Fatalf("ordered rows diverge at %d: remote has %d rows, local %d", i, len(got), len(want))
				}
			}
			if len(got) != len(want) {
				t.Fatalf("remote returned %d rows, local %d", len(got), len(want))
			}
			if !sameMultiset(streamedKeys(t, remoteEng, q, 4), want) {
				t.Error("streamed multiset diverged from ordered oracle")
			}
		})
	}
}

// TestRemoteWireAccounting checks that wired executions report real
// transport bytes instead of the §IX estimates: total shipment equals
// the measured wire traffic, and the per-fragment wire counters are
// populated.
func TestRemoteWireAccounting(t *testing.T) {
	env := newEquivEnv(t)
	remoteEng := newRemoteEngine(t, env)
	q := env.shape(t, "path", nil)

	res, err := remoteEng.Execute(q, Config{Mode: Full, EvalWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalShipment <= 0 {
		t.Errorf("wired shipment = %d, want measured bytes", res.Stats.TotalShipment)
	}
	if res.Stats.LECShipment != 0 {
		t.Errorf("wired LEC shipment = %d, want 0 (coordinator-side pruning ships nothing)", res.Stats.LECShipment)
	}
	var wire int64
	for _, fs := range res.Stats.Fragments {
		wire += fs.WireBytes
	}
	if wire <= 0 {
		t.Errorf("per-fragment wire bytes = %d, want > 0", wire)
	}

	local, err := env.eng.Execute(q, Config{Mode: Full, EvalWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, fs := range local.Stats.Fragments {
		if fs.WireBytes != 0 {
			t.Errorf("in-process fragment reports %d wire bytes", fs.WireBytes)
		}
	}
}
