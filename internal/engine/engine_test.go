package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"gstored/internal/fragment"
	"gstored/internal/paperexample"
	"gstored/internal/partition"
	"gstored/internal/query"
	"gstored/internal/rdf"
	"gstored/internal/store"
)

var allModes = []Mode{Basic, LA, LO, Full}

func paperEngine(t *testing.T) (*paperexample.Example, *Engine) {
	t.Helper()
	ex := paperexample.New()
	d, err := fragment.Build(ex.Store, ex.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	return ex, New(d)
}

// centralizedRows evaluates q on the global store for ground truth.
func centralizedRows(st *store.Store, q *query.Graph) []string {
	var keys []string
	for _, b := range st.Match(q) {
		keys = append(keys, Row(b.Vars).Key())
	}
	sort.Strings(keys)
	return keys
}

func resultKeys(r *Result) []string {
	keys := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		keys = append(keys, row.Key())
	}
	sort.Strings(keys)
	return keys
}

// TestPaperQueryAllModes: all four ablation modes return exactly the four
// crossing matches of the running example, matching the centralized
// answer.
func TestPaperQueryAllModes(t *testing.T) {
	ex, e := paperEngine(t)
	want := centralizedRows(ex.Store, ex.Query)
	if len(want) != 4 {
		t.Fatalf("centralized answer has %d rows, want 4", len(want))
	}
	for _, mode := range allModes {
		res, err := e.Execute(ex.Query, Config{Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if got := resultKeys(res); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%v rows:\n got %v\nwant %v", mode, got, want)
		}
		if res.Stats.NumCrossingMatches != 4 || res.Stats.NumLocalMatches != 0 {
			t.Errorf("%v: crossing=%d local=%d, want 4/0",
				mode, res.Stats.NumCrossingMatches, res.Stats.NumLocalMatches)
		}
		if res.Stats.StarFastPath {
			t.Errorf("%v: paper query is not a star", mode)
		}
	}
}

// TestStatsShapeAcrossModes encodes the paper's per-mode expectations:
// Basic/LA ship all 8 partial matches; LO/Full prune PM2_3; Full also
// spends candidate shipment; LEC assembly never attempts more joins than
// basic.
func TestStatsShapeAcrossModes(t *testing.T) {
	ex, e := paperEngine(t)
	stats := map[Mode]Stats{}
	for _, mode := range allModes {
		res, err := e.Execute(ex.Query, Config{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		stats[mode] = res.Stats
	}
	if stats[Basic].NumPartialMatches != 8 || stats[LA].NumPartialMatches != 8 {
		t.Errorf("Basic/LA partial matches = %d/%d, want 8",
			stats[Basic].NumPartialMatches, stats[LA].NumPartialMatches)
	}
	if stats[Basic].NumRetainedPartialMatches != 8 {
		t.Errorf("Basic retains %d, want all 8", stats[Basic].NumRetainedPartialMatches)
	}
	if stats[LO].NumRetainedPartialMatches != 7 {
		t.Errorf("LO retains %d partial matches, want 7 (PM2_3 pruned)",
			stats[LO].NumRetainedPartialMatches)
	}
	if stats[Full].NumPartialMatches != 7 {
		t.Errorf("Full computes %d partial matches, want 7 (candidate filter kills PM2_3)",
			stats[Full].NumPartialMatches)
	}
	if stats[LO].LECShipment == 0 || stats[LO].NumLECFeatures == 0 {
		t.Error("LO should ship LEC features")
	}
	if stats[Basic].LECShipment != 0 || stats[LA].LECShipment != 0 {
		t.Error("Basic/LA must not ship LEC features")
	}
	if stats[Full].CandidatesShipment == 0 {
		t.Error("Full should ship candidate vectors")
	}
	if stats[Basic].CandidatesShipment != 0 {
		t.Error("Basic must not ship candidate vectors")
	}
	if stats[LA].JoinAttempts > stats[Basic].JoinAttempts {
		t.Errorf("LA join attempts %d > Basic %d",
			stats[LA].JoinAttempts, stats[Basic].JoinAttempts)
	}
	if stats[LO].AssemblyShipment >= stats[LA].AssemblyShipment {
		t.Errorf("LO assembly shipment %d should be below LA's %d (one PM pruned)",
			stats[LO].AssemblyShipment, stats[LA].AssemblyShipment)
	}
	for _, mode := range allModes {
		s := stats[mode]
		if s.TotalShipment <= 0 || s.Messages <= 0 || s.TotalTime <= 0 {
			t.Errorf("%v: missing totals %+v", mode, s)
		}
		if s.EstimatedCommTime <= 0 {
			t.Errorf("%v: no comm estimate", mode)
		}
	}
}

// TestStarFastPath: a star query runs with no partial evaluation and no
// LEC machinery in any mode, like LQ2/LQ4/LQ5 in Table I.
func TestStarFastPath(t *testing.T) {
	ex, e := paperEngine(t)
	q := query.NewBuilder(ex.Graph.Dict).
		Triple(query.Var("x"), query.IRI(paperexample.PredMainInterest), query.Var("i")).
		Triple(query.Var("x"), query.IRI(paperexample.PredName), query.Var("n")).
		MustBuild()
	want := centralizedRows(ex.Store, q)
	for _, mode := range allModes {
		res, err := e.Execute(q, Config{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stats.StarFastPath {
			t.Fatalf("%v: star not detected", mode)
		}
		if got := resultKeys(res); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%v star rows:\n got %v\nwant %v", mode, got, want)
		}
		if res.Stats.NumPartialMatches != 0 || res.Stats.LECShipment != 0 ||
			res.Stats.CandidatesShipment != 0 || res.Stats.AssemblyShipment != 0 {
			t.Errorf("%v: star path leaked distributed work: %+v", mode, res.Stats)
		}
	}
	// The same star evaluated through the full machinery must agree.
	res, err := e.Execute(q, Config{Mode: Full, DisableStarFastPath: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := resultKeys(res); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("forced distributed star rows:\n got %v\nwant %v", got, want)
	}
}

func TestProjection(t *testing.T) {
	ex, e := paperEngine(t)
	res, err := e.Execute(ex.Query, Config{Mode: Full})
	if err != nil {
		t.Fatal(err)
	}
	proj := res.Project()
	if len(proj) != 4 {
		t.Fatalf("%d projected rows", len(proj))
	}
	for _, p := range proj {
		if len(p) != 2 { // SELECT ?p2 ?l
			t.Fatalf("projected width %d, want 2", len(p))
		}
		if p[0] != ex.V[6] && p[0] != ex.V[12] {
			t.Errorf("?p2 = %d, want 006 or 012", p[0])
		}
	}
}

func TestInvalidQueries(t *testing.T) {
	_, e := paperEngine(t)
	if _, err := e.Execute(&query.Graph{}, Config{}); err == nil {
		t.Error("empty query should fail")
	}
}

// TestDisconnectedQueryCrossProduct: components are evaluated separately
// and recombined (Section II-A).
func TestDisconnectedQueryCrossProduct(t *testing.T) {
	ex, e := paperEngine(t)
	q := query.NewBuilder(ex.Graph.Dict).
		Triple(query.Var("x"), query.IRI(paperexample.PredInfluencedBy), query.Var("y")).
		Triple(query.Var("a"), query.IRI(paperexample.PredBirthPlace), query.Var("b")).
		MustBuild()
	want := centralizedRows(ex.Store, q)
	if len(want) != 2 { // 2 influencedBy × 1 birthPlace
		t.Fatalf("centralized rows = %d, want 2", len(want))
	}
	for _, mode := range allModes {
		res, err := e.Execute(q, Config{Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if got := resultKeys(res); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%v:\n got %v\nwant %v", mode, got, want)
		}
	}
}

// TestDisconnectedSharedEdgeVar: a predicate variable shared across
// components must bind consistently.
func TestDisconnectedSharedEdgeVar(t *testing.T) {
	ex, e := paperEngine(t)
	q := query.NewBuilder(ex.Graph.Dict).
		Triple(query.Var("x"), query.Var("p"), query.Var("y")).
		Triple(query.Var("a"), query.Var("p"), query.Var("b")).
		MustBuild()
	want := centralizedRows(ex.Store, q)
	res, err := e.Execute(q, Config{Mode: Full})
	if err != nil {
		t.Fatal(err)
	}
	if got := resultKeys(res); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("shared edge var:\n got %d rows\nwant %d rows", len(got), len(want))
	}
}

func TestMaxPartialMatchesGuard(t *testing.T) {
	ex, e := paperEngine(t)
	if _, err := e.Execute(ex.Query, Config{Mode: Full, MaxPartialMatches: 1}); err == nil {
		t.Error("expected guard error")
	}
}

func TestNoResultQuery(t *testing.T) {
	ex, e := paperEngine(t)
	q := query.NewBuilder(ex.Graph.Dict).
		Triple(query.Var("x"), query.IRI(paperexample.PredBirthPlace), query.Var("y")).
		Triple(query.Var("y"), query.IRI(paperexample.PredBirthPlace), query.Var("z")).
		MustBuild()
	for _, mode := range allModes {
		res, err := e.Execute(q, Config{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 0 {
			t.Errorf("%v: got %d rows for impossible query", mode, len(res.Rows))
		}
	}
}

// TestAllModesEqualCentralizedProperty: on random graphs, random
// partitionings, and all four modes, the distributed answer equals the
// centralized one — the headline correctness property of the system.
func TestAllModesEqualCentralizedProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := rdf.NewGraph()
		nv := 5 + r.Intn(10)
		ne := 10 + r.Intn(30)
		for i := 0; i < ne; i++ {
			g.AddIRIs(fmt.Sprintf("v%d", r.Intn(nv)), fmt.Sprintf("p%d", r.Intn(2)), fmt.Sprintf("v%d", r.Intn(nv)))
		}
		st := store.FromGraph(g)
		// Mix of query shapes: path, triangle-ish, star-breaker.
		var q *query.Graph
		switch r.Intn(3) {
		case 0:
			q = query.NewBuilder(g.Dict).
				Triple(query.Var("x"), query.IRI("p0"), query.Var("y")).
				Triple(query.Var("y"), query.IRI("p1"), query.Var("z")).
				MustBuild()
		case 1:
			q = query.NewBuilder(g.Dict).
				Triple(query.Var("x"), query.IRI("p0"), query.Var("y")).
				Triple(query.Var("y"), query.IRI("p0"), query.Var("z")).
				Triple(query.Var("z"), query.IRI("p1"), query.Var("x")).
				MustBuild()
		default:
			q = query.NewBuilder(g.Dict).
				Triple(query.Var("x"), query.IRI("p0"), query.Var("y")).
				Triple(query.Var("z"), query.IRI("p1"), query.Var("y")).
				Triple(query.Var("z"), query.IRI("p0"), query.Var("w")).
				MustBuild()
		}
		want := centralizedRows(st, q)

		k := 2 + r.Intn(3)
		a := &partition.Assignment{K: k, Frag: map[rdf.TermID]int{}}
		for _, v := range st.Vertices() {
			a.Frag[v] = r.Intn(k)
		}
		d, err := fragment.Build(st, a)
		if err != nil {
			return false
		}
		e := New(d)
		for _, mode := range allModes {
			res, err := e.Execute(q, Config{Mode: mode})
			if err != nil {
				return false
			}
			if fmt.Sprint(resultKeys(res)) != fmt.Sprint(want) {
				t.Logf("seed %d mode %v:\n got %v\nwant %v", seed, mode, resultKeys(res), want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestAllPartitionersEqualCentralized: the engine is partitioning-tolerant
// (Section I): every strategy yields the same answers.
func TestAllPartitionersEqualCentralized(t *testing.T) {
	ex := paperexample.New()
	want := centralizedRows(ex.Store, ex.Query)
	for _, s := range []partition.Strategy{partition.Hash{}, partition.SemanticHash{}, partition.Metis{}} {
		for _, k := range []int{1, 2, 3, 5} {
			d, err := fragment.BuildWith(ex.Store, s, k)
			if err != nil {
				t.Fatalf("%s/%d: %v", s.Name(), k, err)
			}
			e := New(d)
			res, err := e.Execute(ex.Query, Config{Mode: Full})
			if err != nil {
				t.Fatalf("%s/%d: %v", s.Name(), k, err)
			}
			if got := resultKeys(res); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("%s k=%d:\n got %v\nwant %v", s.Name(), k, got, want)
			}
		}
	}
}

func TestModeString(t *testing.T) {
	names := map[Mode]string{Basic: "gStoreD-Basic", LA: "gStoreD-LA", LO: "gStoreD-LO", Full: "gStoreD"}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q", int(m), m.String())
		}
	}
}
