package engine

import (
	"gstored/internal/query"
	"gstored/internal/store"
)

// PlanEdge is one step of the compiled edge-evaluation order: the query
// edge evaluated at that position and its selectivity estimate against
// the global cardinality table (lower = more selective; 0 means the
// step is a pure check or provably empty).
type PlanEdge struct {
	Edge int   `json:"edge"`
	Est  int64 `json:"est"`
}

// planOrder compiles the selectivity-ordered evaluation order for q
// against the global store's per-predicate cardinality table
// (store.Stats). It mirrors the greedy shape of the per-fragment
// edgeOrder — most selective edge first, then connected expansion
// preferring bound endpoints — but estimates against global counts, so
// every fragment evaluates the same plan and the coordinator can
// surface it through EXPLAIN. The order is passed to the sites via
// MatchOptions.Order and partial.Options.EdgeRank.
func planOrder(st *store.Store, q *query.Graph) []PlanEdge {
	n := len(q.Edges)
	if n == 0 {
		return nil
	}
	stats := st.Stats()
	total := int64(st.Len())
	picked := make([]bool, n)
	bound := make([]bool, len(q.Vertices))
	plan := make([]PlanEdge, 0, n)

	// estimate guesses how many bindings evaluating edge i would
	// enumerate given the currently bound vertices. Constant endpoints
	// use the constant's exact global degree; a bound variable endpoint
	// uses the predicate's average fanout (Count/Subjects forward,
	// Count/Objects backward); a seed scan uses the predicate count.
	estimate := func(i int) int64 {
		e := q.Edges[i]
		est := total + 1
		if vf := q.Vertices[e.From]; !vf.IsVar() {
			d := int64(len(st.Out(vf.Const)))
			if !e.HasVarLabel() {
				d = int64(len(st.OutWith(vf.Const, e.Label)))
			}
			if d < est {
				est = d
			}
		}
		if vt := q.Vertices[e.To]; !vt.IsVar() {
			d := int64(len(st.In(vt.Const)))
			if !e.HasVarLabel() {
				d = int64(len(st.InWith(vt.Const, e.Label)))
			}
			if d < est {
				est = d
			}
		}
		if est <= total {
			return est
		}
		if e.HasVarLabel() {
			// Unconstrained label: fanout over every predicate.
			if bound[e.From] || bound[e.To] {
				return avgFanout(stats.Triples(), st.NumVertices())
			}
			return total
		}
		ps, ok := stats.Pred(e.Label)
		if !ok {
			return 0 // predicate absent from the data: provably empty
		}
		switch {
		case bound[e.From] && bound[e.To]:
			return 1
		case bound[e.From]:
			return avgFanout(ps.Count, ps.Subjects)
		case bound[e.To]:
			return avgFanout(ps.Count, ps.Objects)
		default:
			return int64(ps.Count)
		}
	}

	for len(plan) < n {
		best, bestScore := -1, int64(-1)
		var bestEst int64
		for i := 0; i < n; i++ {
			if picked[i] {
				continue
			}
			e := q.Edges[i]
			if len(plan) > 0 && !bound[e.From] && !bound[e.To] {
				continue // keep the order connected
			}
			est := estimate(i)
			// Both endpoints already bound: a pure existence check, always
			// cheapest. Variable labels are penalized like edgeOrder does.
			score := est + 1
			switch {
			case len(plan) > 0 && bound[e.From] && bound[e.To]:
				score = 0
			case e.HasVarLabel():
				score = 2*total + 2
			}
			if best == -1 || score < bestScore {
				best, bestScore, bestEst = i, score, est
			}
		}
		if best == -1 { // disconnected query: start a fresh component
			for i := 0; i < n; i++ {
				if !picked[i] {
					best, bestEst = i, estimate(i)
					break
				}
			}
		}
		picked[best] = true
		plan = append(plan, PlanEdge{Edge: best, Est: bestEst})
		bound[q.Edges[best].From] = true
		bound[q.Edges[best].To] = true
	}
	return plan
}

// avgFanout returns ceil(count/sources), clamped to at least 1 when the
// predicate has any triples.
func avgFanout(count, sources int) int64 {
	if count <= 0 {
		return 0
	}
	if sources <= 0 {
		return int64(count)
	}
	return int64((count + sources - 1) / sources)
}

// planEdgeOrder extracts the evaluation order as edge indices, the form
// MatchOptions.Order takes.
func planEdgeOrder(plan []PlanEdge) []int {
	order := make([]int, len(plan))
	for k, pe := range plan {
		order[k] = pe.Edge
	}
	return order
}

// planEdgeRank inverts the plan into rank-per-edge, the form
// partial.Options.EdgeRank takes.
func planEdgeRank(plan []PlanEdge) []int {
	rank := make([]int, len(plan))
	for k, pe := range plan {
		rank[pe.Edge] = k
	}
	return rank
}
