package engine

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"gstored/internal/fragment"
	"gstored/internal/partition"
	"gstored/internal/query"
	"gstored/internal/rdf"
	"gstored/internal/store"
	"gstored/internal/workload"
)

// TestParallelEquivalenceLUBMProperty is the randomized property test:
// random BGPs grown by walking actual triples of a seeded LUBM(1)
// slice, evaluated with the parallel selectivity-ordered pipeline and
// compared against the sequential oracle (EvalWorkers=1). Ordered
// results must be byte-identical; unordered streaming must emit the
// same row multiset.
func TestParallelEquivalenceLUBMProperty(t *testing.T) {
	g := workload.LUBM(workload.LUBMConfig{Universities: 1, Seed: 7})
	st := store.FromGraph(g)
	d, err := fragment.BuildWith(st, partition.Hash{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := New(d)
	rng := rand.New(rand.NewSource(11))

	trials := 30
	if testing.Short() {
		trials = 8
	}
	nonEmpty := 0
	for trial := 0; trial < trials; trial++ {
		q := randomBGP(t, g, rng)
		oracle, err := e.Execute(q, Config{Mode: Full, EvalWorkers: 1})
		if err != nil {
			t.Fatalf("trial %d (%s): oracle: %v", trial, q, err)
		}
		want := projectedKeys(oracle)
		if len(want) > 0 {
			nonEmpty++
		}

		for _, workers := range []int{0, 2, 4} {
			res, err := e.Execute(q, Config{Mode: Full, EvalWorkers: workers})
			if err != nil {
				t.Fatalf("trial %d (%s) workers=%d: %v", trial, q, workers, err)
			}
			if got := projectedKeys(res); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("trial %d (%s) workers=%d: ordered rows diverged (%d vs %d rows)",
					trial, q, workers, len(got), len(want))
			}
		}

		var streamed []string
		if _, err := e.ExecuteStream(context.Background(), q, Config{Mode: Full, EvalWorkers: 4}, func(r Row) bool {
			streamed = append(streamed, r.Key())
			return true
		}); err != nil {
			t.Fatalf("trial %d (%s): stream: %v", trial, q, err)
		}
		if !sameMultiset(streamed, want) {
			t.Fatalf("trial %d (%s): unordered multiset diverged (%d vs %d rows)",
				trial, q, len(streamed), len(want))
		}
	}
	// A generator drifting into all-empty queries would vacuously pass.
	if nonEmpty < trials/3 {
		t.Fatalf("only %d/%d random queries had results; generator degenerated", nonEmpty, trials)
	}
}

// randomBGP grows a 1-4 edge BGP by walking real triples of g, so
// patterns are usually satisfiable: each new edge reuses the subject
// (star) or object (path) of a sampled triple already linked to the
// pattern, objects occasionally freeze to their sampled constant, and
// some queries gain a disconnected extra component.
func randomBGP(t *testing.T, g *rdf.Graph, rng *rand.Rand) *query.Graph {
	t.Helper()
	b := query.NewBuilder(g.Dict)
	sample := func() rdf.Triple { return g.Triples[rng.Intn(len(g.Triples))] }
	node := func(id rdf.TermID, varName string) query.Node {
		if rng.Intn(3) == 0 { // freeze to the sampled constant
			return query.Term(g.Dict.MustDecode(id))
		}
		return query.Var(varName)
	}
	pred := func(id rdf.TermID) query.Node {
		return query.Term(g.Dict.MustDecode(id))
	}

	t0 := sample()
	b.Triple(query.Var("s0"), pred(t0.P), node(t0.O, "o0"))
	extra := rng.Intn(3) // 0-2 connected extension edges
	for i := 0; i < extra; i++ {
		tn := sample()
		if rng.Intn(2) == 0 {
			// Star: another predicate out of the shared subject.
			b.Triple(query.Var("s0"), pred(tn.P), node(tn.O, fmt.Sprintf("o%d", i+1)))
		} else {
			// Path: extend from the first object variable.
			b.Triple(query.Var("o0"), pred(tn.P), node(tn.O, fmt.Sprintf("p%d", i+1)))
		}
	}
	if rng.Intn(3) == 0 {
		tn := sample()
		b.Triple(query.Var("d0"), pred(tn.P), node(tn.O, "d1"))
	}
	return b.MustBuild()
}

func projectedKeys(r *Result) []string {
	var keys []string
	r.EachProjected(func(row Row) bool {
		keys = append(keys, row.Key())
		return true
	})
	return keys
}
