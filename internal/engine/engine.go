// Package engine is gStoreD: the paper's partial-evaluation-and-assembly
// SPARQL engine over a simulated distributed RDF graph, with the four
// configurations of the Section VIII-C ablation:
//
//	Basic — the framework of Peng et al. [18]: partial evaluation at every
//	        site, all partial matches shipped, baseline join.
//	LA    — + LEC-feature-based assembly (Section V): same shipments,
//	        grouped and indexed join at the coordinator.
//	LO    — + LEC-feature-based pruning (Section IV): features are shipped
//	        and joined first; only surviving partial matches travel.
//	Full  — + assembling variables' internal candidates (Section VI):
//	        candidate bit vectors filter extended bindings before partial
//	        evaluation.
//
// Star queries take the Section VIII-B fast path in every mode: each
// crossing edge is replicated, so star matches are complete within single
// fragments and need no partial evaluation.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gstored/internal/assembly"
	"gstored/internal/candidates"
	"gstored/internal/cluster"
	"gstored/internal/fragment"
	"gstored/internal/lec"
	"gstored/internal/partial"
	"gstored/internal/pool"
	"gstored/internal/query"
	"gstored/internal/rdf"
	"gstored/internal/trace"
)

// Mode selects the optimization level (the ablation of Fig. 9). The zero
// value resolves to Full, so a zero Config runs the complete system.
type Mode int

const (
	// ModeUnset resolves to Full at execution time.
	ModeUnset Mode = iota
	// Basic is gStoreD-Basic: no optimizations from this paper.
	Basic
	// LA adds LEC-feature-based assembly.
	LA
	// LO adds LEC-feature-based pruning on top of LA.
	LO
	// Full adds internal-candidate bit vectors on top of LO.
	Full
)

func (m Mode) String() string {
	switch m {
	case ModeUnset, Full:
		return "gStoreD"
	case Basic:
		return "gStoreD-Basic"
	case LA:
		return "gStoreD-LA"
	case LO:
		return "gStoreD-LO"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config tunes Execute.
type Config struct {
	Mode Mode
	// CandidateBits is the per-variable bit-vector length for the Full
	// mode (0 = candidates.DefaultBits).
	CandidateBits int
	// MaxPartialMatches aborts runaway partial evaluations (0 = no limit).
	MaxPartialMatches int
	// EvalWorkers bounds the per-execution worker pool that evaluates
	// site stages and intra-fragment seed chunks (0 = GOMAXPROCS). 1
	// runs every stage sequentially in site order — the oracle the
	// equivalence tests compare parallel runs against.
	EvalWorkers int
	// DisableStarFastPath forces stars through partial evaluation; only
	// tests use this.
	DisableStarFastPath bool
}

// Row is one result row: bindings indexed by query variable.
type Row []rdf.TermID

// Key canonically identifies a row.
func (r Row) Key() string {
	var b strings.Builder
	b.Grow(8 * len(r))
	for _, v := range r {
		b.WriteString(strconv.FormatUint(uint64(v), 10))
		b.WriteByte(',')
	}
	return b.String()
}

// Stats mirrors the per-stage columns of Tables I–III.
type Stats struct {
	Mode         Mode
	StarFastPath bool

	// Assembling variables' internal candidates (Section VI).
	CandidatesTime     time.Duration
	CandidatesShipment int64

	// Partial evaluation (local complete matches + local partial matches).
	PartialTime       time.Duration
	NumPartialMatches int

	// LEC-feature-based optimization (Section IV).
	LECTime                   time.Duration
	LECShipment               int64
	NumLECFeatures            int
	NumRetainedPartialMatches int

	// LEC-feature-based assembly (Section V).
	AssemblyTime       time.Duration
	AssemblyShipment   int64
	JoinAttempts       int
	NumCrossingMatches int

	NumLocalMatches int
	NumMatches      int

	// EarlyStop reports that a streaming execution (ExecuteStream) was
	// cut short by its sink — LIMIT(+OFFSET) satisfied or the consumer
	// declined further rows — and the remaining distributed work was
	// cancelled rather than run to completion. Always false for the
	// ordered, materializing path.
	EarlyStop bool

	TotalTime         time.Duration
	TotalShipment     int64
	Messages          int64
	EstimatedCommTime time.Duration

	// Fragments attributes the distributed stages to individual sites,
	// so the slowest or chattiest site is identifiable (the aggregate
	// fields above sum across sites and hide stragglers). Ordered by
	// site ID; empty only for executions that ran no site stage.
	Fragments []FragmentStats

	// Plan is the compiled selectivity-ordered edge-evaluation order
	// with per-edge estimates against the global cardinality table; nil
	// for component-split executions, which plan per component.
	Plan []PlanEdge
	// EvalWorkers is the resolved width of the evaluation worker pool.
	EvalWorkers int
}

// FragmentStats is one site's share of an execution: what it matched,
// what it shipped, and how long its per-site stages ran.
type FragmentStats struct {
	// Site is the fragment/site ID.
	Site int
	// LocalMatches counts complete matches found within this fragment.
	LocalMatches int
	// PartialMatches counts the local partial matches this site's
	// partial evaluation enumerated (0 on the star fast path).
	PartialMatches int
	// RetainedPartialMatches counts this site's partial matches that
	// survived LEC pruning and were shipped for assembly (equal to
	// PartialMatches below ModeLO, where nothing is pruned).
	RetainedPartialMatches int
	// ShipmentBytes is the traffic this site sent to the coordinator.
	// For in-process sites it is the §IX cost-model estimate (candidate
	// vectors, local-match rows, LEC features, retained partial matches;
	// coordinator-side broadcasts are not attributed). For remote sites
	// it is the real wire traffic of the site's RPCs.
	ShipmentBytes int64
	// WireBytes is the real transport traffic of this site's RPCs —
	// request and response frames measured at the socket. Zero for
	// in-process sites, whose shipment is estimated, not transported.
	WireBytes int64
	// Wall is the site's wall-clock time across its per-site stages
	// (candidate computation, matching, partial evaluation). Sites run
	// concurrently, so these overlap rather than sum to PartialTime.
	Wall time.Duration
	// Tasks counts the evaluation tasks this site's stages split into
	// on the worker pool (seed chunks plus one per whole-site stage;
	// exactly one per stage on a sequential pool).
	Tasks int
	// Busy sums the wall time of those tasks. Tasks of one site run
	// concurrently on the pool, so Busy/Wall estimates the intra-site
	// parallel speedup the pool realized.
	Busy time.Duration
}

// mergeFragments folds per-site stats from one sub-execution into an
// accumulator indexed by site ID, keeping the result ordered.
func mergeFragments(dst, src []FragmentStats) []FragmentStats {
	for _, fs := range src {
		i := sort.Search(len(dst), func(i int) bool { return dst[i].Site >= fs.Site })
		if i < len(dst) && dst[i].Site == fs.Site {
			dst[i].LocalMatches += fs.LocalMatches
			dst[i].PartialMatches += fs.PartialMatches
			dst[i].RetainedPartialMatches += fs.RetainedPartialMatches
			dst[i].ShipmentBytes += fs.ShipmentBytes
			dst[i].WireBytes += fs.WireBytes
			dst[i].Wall += fs.Wall
			dst[i].Tasks += fs.Tasks
			dst[i].Busy += fs.Busy
			continue
		}
		dst = append(dst, FragmentStats{})
		copy(dst[i+1:], dst[i:])
		dst[i] = fs
	}
	return dst
}

// Result is a completed query execution.
type Result struct {
	Query *query.Graph
	Rows  []Row
	Stats Stats
}

// Len reports the number of result rows.
func (r *Result) Len() int { return len(r.Rows) }

// Project returns the rows restricted to the SELECT projection (all
// variables when the query used SELECT *). It materializes a full
// projected copy; streaming consumers (the HTTP serializers) should use
// EachProjected instead, which projects one row at a time into a reused
// buffer.
func (r *Result) Project() []Row {
	proj := r.Query.Projection
	if len(proj) == 0 {
		return r.Rows
	}
	out := make([]Row, len(r.Rows))
	for i, row := range r.Rows {
		p := make(Row, len(proj))
		for j, v := range proj {
			p[j] = row[v]
		}
		out[i] = p
	}
	return out
}

// EachProjected streams the rows restricted to the SELECT projection
// (all variables when the query used SELECT *) without materializing a
// projected copy of the result set. The row passed to yield is reused
// between calls — consumers that retain a row beyond the call must copy
// it. Iteration stops early when yield returns false.
func (r *Result) EachProjected(yield func(Row) bool) {
	buf := newProjectionBuffer(r.Query)
	for _, row := range r.Rows {
		if !yield(projectRow(r.Query, row, buf)) {
			return
		}
	}
}

// newProjectionBuffer sizes a reusable buffer for projectRow; nil when
// the query projects every variable (projectRow then returns rows as-is).
func newProjectionBuffer(q *query.Graph) Row {
	if len(q.Projection) == 0 {
		return nil
	}
	return make(Row, len(q.Projection))
}

// projectRow restricts row to q's SELECT projection, writing into buf
// (from newProjectionBuffer) and returning it; with an empty projection
// (SELECT *) the row itself is returned untouched.
func projectRow(q *query.Graph, row Row, buf Row) Row {
	if len(q.Projection) == 0 {
		return row
	}
	for j, v := range q.Projection {
		buf[j] = row[v]
	}
	return buf
}

// Engine evaluates SPARQL BGP queries over a simulated cluster. It is
// safe for concurrent use: every execution meters its traffic on a
// private Network, fragments and stores are immutable after
// construction, and the shared dictionary is lock-protected.
type Engine struct {
	Cluster *cluster.Cluster
}

// New builds an engine (and its in-process cluster) over a distributed
// graph.
func New(d *fragment.Distributed) *Engine {
	return &Engine{Cluster: cluster.New(d)}
}

// NewWithSites builds an engine over a distributed graph served by
// explicit Site implementations — the worker-mode entry point, where
// sites are RPC clients. Sites must be ordered by ID, one per fragment
// of d.
func NewWithSites(d *fragment.Distributed, sites []cluster.Site) *Engine {
	return &Engine{Cluster: cluster.NewWithSites(d, sites)}
}

// newNet returns a fresh per-execution network meter inheriting the
// cluster's link model. Concurrent Executes must not share a meter: the
// per-stage shipment deltas in Stats would interleave.
func (e *Engine) newNet() *cluster.Network {
	net := cluster.NewNetwork()
	if e.Cluster.Net != nil {
		net.Link = e.Cluster.Net.Link
	}
	return net
}

// Execute runs q under cfg and returns all matches with per-stage
// statistics. Disconnected queries are evaluated per weakly connected
// component and recombined by cross product (Section II-A: "all connected
// components of Q are considered separately").
func (e *Engine) Execute(q *query.Graph, cfg Config) (*Result, error) {
	//lint:allow ctxflow Execute is the documented context-free entry point; ExecuteContext is the threaded variant
	return e.ExecuteContext(context.Background(), q, cfg)
}

// ExecuteContext is Execute with cooperative cancellation: when ctx is
// canceled or times out, the distributed stages stop promptly and the
// context's error is returned.
func (e *Engine) ExecuteContext(ctx context.Context, q *query.Graph, cfg Config) (*Result, error) {
	// The parent graph must validate before the component split: a
	// hand-built graph with, say, a negative LIMIT would otherwise slip
	// past per-component validation (SplitComponents strips modifiers)
	// and blow up in the final modifier slice.
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if comps := query.SplitComponents(q); len(comps) > 1 {
		return e.executeComponents(ctx, q, comps, cfg, nil)
	}
	if err := validateForExec(q, &cfg); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	net := e.newNet()
	p := pool.New(cfg.EvalWorkers)
	plan := planOrder(e.Cluster.Graph.Global, q)
	stats := Stats{Mode: cfg.Mode, Plan: plan, EvalWorkers: p.Workers()}

	// Initialization: every site receives the full query graph. In worker
	// mode the query travels inside each RPC request and is metered there
	// as real wire bytes.
	if !e.Cluster.Wired {
		net.Broadcast(querySize(q), len(e.Cluster.Sites))
	}

	// Ordered mode materializes every row (sites emit concurrently), then
	// sorts canonically and applies the solution modifiers on the sorted
	// sequence — deterministic output, no early termination. Collection
	// takes one mutex per row where the pre-streaming code batched per
	// site; per-row matching work dominates the uncontended lock (the
	// 168k-row serve benchmark moved within noise), and one row-at-a-time
	// sink shape is what lets ExecuteStream share these producers.
	var mu sync.Mutex
	var rows []Row
	collect := func(r Row) bool {
		mu.Lock()
		rows = append(rows, r)
		mu.Unlock()
		return true
	}
	if center, ok := q.StarCenter(); ok && !cfg.DisableStarFastPath {
		stats.StarFastPath = true
		if err := e.runStar(ctx, q, center, plan, p, net, &stats, collect); err != nil {
			return nil, err
		}
	} else {
		if err := e.runDistributed(ctx, q, cfg, plan, p, net, &stats, collect); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	sortRows(rows)
	rows = applyModifiers(q, rows)
	stats.NumMatches = len(rows)
	stats.TotalTime = time.Since(start)
	stats.TotalShipment = net.Bytes()
	stats.Messages = net.Messages()
	stats.EstimatedCommTime = net.EstimateTime()
	return &Result{Query: q, Rows: rows, Stats: stats}, nil
}

// ExecuteStream runs q in unordered first-row-early delivery mode: every
// match flows to emit as it is produced — local matches and assembled
// crossing matches alike — with no terminal sort and no materialized row
// set. Rows passed to emit are restricted to the SELECT projection and
// reuse one buffer between calls; consumers that retain a row must copy
// it. Solution modifiers apply at the projection boundary: DISTINCT
// deduplicates through a hash set (order-insensitive), OFFSET skips, and
// once LIMIT rows have been emitted the execution context is cancelled so
// remaining distributed stages stop (Stats.EarlyStop reports this). The
// returned Result carries statistics only — Rows is nil.
//
// Row order is whatever the execution produces; two runs of the same
// query may emit different orders (and, under OFFSET/LIMIT without
// DISTINCT covering the full answer, different row subsets — any such
// subset is a correct SPARQL answer for an unordered query).
func (e *Engine) ExecuteStream(ctx context.Context, q *query.Graph, cfg Config, emit func(Row) bool) (*Result, error) {
	if err := validateForExec(q, &cfg); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	// The sink cancels sctx once it is satisfied; every distributed stage
	// polls it, so partial evaluation, assembly, and sibling sites stop
	// instead of completing work nobody will read.
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sink := newStreamSink(q, emit, cancel)

	// fail distinguishes the sink's own cancellation (the success path)
	// from the parent's timeout/disconnect and from genuine site errors —
	// once the sink has its rows, errors raced in by still-draining
	// stages are moot.
	fail := func(runErr error) error {
		if sink.finished() {
			return nil
		}
		if perr := ctx.Err(); perr != nil {
			return perr
		}
		return runErr
	}

	if comps := query.SplitComponents(q); len(comps) > 1 {
		// Component shipment and stage times aggregate inside
		// executeComponents (each component runs the full ordered
		// pipeline); only the final cross product streams.
		res, err := e.executeComponents(sctx, q, comps, cfg, sink.push)
		if err != nil {
			if ferr := fail(err); ferr != nil {
				return nil, ferr
			}
			res = &Result{Query: q, Stats: Stats{Mode: cfg.Mode}}
		}
		stats := res.Stats
		stats.EarlyStop = sink.finished()
		stats.NumMatches = sink.emitted
		stats.TotalTime = time.Since(start)
		return &Result{Query: q, Stats: stats}, nil
	}

	net := e.newNet()
	p := pool.New(cfg.EvalWorkers)
	plan := planOrder(e.Cluster.Graph.Global, q)
	stats := Stats{Mode: cfg.Mode, Plan: plan, EvalWorkers: p.Workers()}
	if !e.Cluster.Wired {
		net.Broadcast(querySize(q), len(e.Cluster.Sites))
	}

	var runErr error
	if center, ok := q.StarCenter(); ok && !cfg.DisableStarFastPath {
		stats.StarFastPath = true
		runErr = e.runStar(sctx, q, center, plan, p, net, &stats, sink.push)
		if runErr == nil {
			runErr = sctx.Err()
		}
	} else {
		runErr = e.runDistributed(sctx, q, cfg, plan, p, net, &stats, sink.push)
	}
	if runErr != nil {
		if ferr := fail(runErr); ferr != nil {
			return nil, ferr
		}
	}
	stats.EarlyStop = sink.finished()
	stats.NumMatches = sink.emitted
	stats.TotalTime = time.Since(start)
	stats.TotalShipment = net.Bytes()
	stats.Messages = net.Messages()
	stats.EstimatedCommTime = net.EstimateTime()
	return &Result{Query: q, Stats: stats}, nil
}

// validateForExec is the shared admission check of both execution paths;
// it also resolves the zero Mode to Full.
func validateForExec(q *query.Graph, cfg *Config) error {
	if err := q.Validate(); err != nil {
		return err
	}
	if len(q.Vertices) > partial.MaxQuerySize || len(q.Edges) > partial.MaxQuerySize {
		return fmt.Errorf("engine: query exceeds %d vertices/edges", partial.MaxQuerySize)
	}
	if cfg.Mode == ModeUnset {
		cfg.Mode = Full
	}
	return nil
}

// rowOut receives produced result rows (full bindings, one slot per
// query variable) and reports whether production should continue.
// Implementations must be safe for concurrent use — sites emit in
// parallel — and must copy rows they retain only when the producer says
// so (the engine's producers hand over ownership of full rows).
type rowOut func(Row) bool

// applyModifiers applies the SPARQL solution modifiers to a canonically
// sorted row set: DISTINCT keeps the first full row per projected key,
// then OFFSET and LIMIT slice the surviving sequence. Determinism comes
// from the sort: equal projected keys collapse to the canonically first
// full row, and the OFFSET/LIMIT window is the same on every run.
func applyModifiers(q *query.Graph, rows []Row) []Row {
	if q.Distinct && len(rows) > 0 {
		buf := newProjectionBuffer(q)
		seen := make(map[string]bool, len(rows))
		kept := rows[:0]
		for _, r := range rows {
			k := projectRow(q, r, buf).Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			kept = append(kept, r)
		}
		rows = kept
	}
	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = rows[:0]
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.HasLimit && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}
	return rows
}

// streamSink is the projection boundary of the unordered delivery mode:
// full rows come in from concurrently emitting producers, projected rows
// go out to the consumer, and the solution modifiers are enforced on the
// way through — DISTINCT via a hash set over projected keys (order does
// not matter to set semantics, so unordered emission is fine), then
// OFFSET, then LIMIT, whose satisfaction cancels the execution context
// so remaining distributed work stops.
type streamSink struct {
	mu      sync.Mutex
	q       *query.Graph
	emit    func(Row) bool
	cancel  context.CancelFunc
	seen    map[string]bool // non-nil iff DISTINCT
	skip    int             // OFFSET rows still to drop
	buf     Row             // reused projection buffer handed to emit
	emitted int
	done    bool
}

func newStreamSink(q *query.Graph, emit func(Row) bool, cancel context.CancelFunc) *streamSink {
	s := &streamSink{q: q, emit: emit, cancel: cancel, skip: q.Offset, buf: newProjectionBuffer(q)}
	if q.Distinct {
		s.seen = make(map[string]bool)
	}
	if q.HasLimit && q.Limit == 0 {
		// LIMIT 0: satisfied before the first row; producers stop at once.
		s.stop()
	}
	return s
}

// push accepts one full row; the return value tells the producer whether
// to keep going.
func (s *streamSink) push(row Row) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return false
	}
	p := projectRow(s.q, row, s.buf)
	if s.seen != nil {
		k := p.Key()
		if s.seen[k] {
			return true
		}
		s.seen[k] = true
	}
	if s.skip > 0 {
		s.skip--
		return true
	}
	if !s.emit(p) {
		s.stop()
		return false
	}
	s.emitted++
	if s.q.HasLimit && s.emitted >= s.q.Limit {
		s.stop()
		return false
	}
	return true
}

// stop marks the sink satisfied and cancels the execution. Callers hold
// s.mu (or, from newStreamSink, have not yet shared the sink).
func (s *streamSink) stop() {
	s.done = true
	s.cancel()
}

// finished reports whether the sink stopped the run before the engine
// exhausted the search.
func (s *streamSink) finished() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done
}

// sortRows orders rows canonically by their keys. Keys are precomputed
// once per row: building them inside the comparison closure costs
// O(n log n) string constructions, which dominated the tail of
// large-result queries.
func sortRows(rows []Row) {
	if len(rows) < 2 {
		return
	}
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = r.Key()
	}
	sort.Sort(&rowSorter{rows: rows, keys: keys})
}

type rowSorter struct {
	rows []Row
	keys []string
}

func (s *rowSorter) Len() int           { return len(s.rows) }
func (s *rowSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *rowSorter) Swap(i, j int) {
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// runStar evaluates a star query locally at every site, restricting the
// center to internal vertices: crossing-edge replicas make each star match
// complete within the fragment owning its center, and center ownership
// deduplicates across sites (Section VIII-B). Matches stream into out as
// they are found; a false return stops that site's scan while the others
// stop through the shared cancel poll. The scatter goes through the Site
// boundary: in-process sites evaluate on this goroutine's pool, remote
// sites run the same request on their worker and stream rows back.
func (e *Engine) runStar(ctx context.Context, q *query.Graph, center int, plan []PlanEdge, p *pool.Pool, net *cluster.Network, stats *Stats, out rowOut) error {
	var total atomic.Int64
	tr := trace.FromContext(ctx)
	wired := e.Cluster.Wired
	frags := make([]FragmentStats, len(e.Cluster.Sites))
	errs := make([]error, len(e.Cluster.Sites))
	req := cluster.PartialRequest{
		Query: q, Star: true, Center: center,
		Order: planEdgeOrder(plan), Pool: p,
	}
	dur := e.Cluster.ParallelPool(p, func(i int, s cluster.Site) {
		siteStart := time.Now()
		rep, err := s.PartialEval(ctx, req, func(row []rdf.TermID) bool {
			return out(Row(row))
		})
		siteWall := time.Since(siteStart)
		// For a remote site this span includes the wire round trip — the
		// real per-site timing, not the link-model estimate.
		tr.Span("partial", s.ID(), siteStart, siteWall)
		if err != nil {
			errs[i] = err
			frags[i].Site = s.ID()
			return
		}
		// Results travel to the coordinator: measured bytes when wired,
		// the §IX row-size estimate in-process.
		ship := int64(rowBytes(q) * rep.LocalMatches)
		msgs := int64(1)
		if wired {
			ship, msgs = rep.Wire, rep.WireMessages
		}
		net.Count(ship, msgs)
		frags[i] = FragmentStats{
			Site: s.ID(), LocalMatches: rep.LocalMatches, ShipmentBytes: ship,
			WireBytes: rep.Wire, Wall: siteWall, Tasks: rep.Tasks, Busy: rep.Busy,
		}
		total.Add(int64(rep.LocalMatches))
	})
	stats.PartialTime = dur
	stats.NumLocalMatches = int(total.Load())
	stats.Fragments = frags
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runDistributed is the two-stage partial evaluation and assembly flow.
// Local complete matches stream into out during partial evaluation and
// assembled crossing matches stream during assembly, so a streaming sink
// sees its first row before the run completes.
func (e *Engine) runDistributed(ctx context.Context, q *query.Graph, cfg Config, plan []PlanEdge, p *pool.Pool, net *cluster.Network, stats *Stats, out rowOut) error {
	k := len(e.Cluster.Sites)
	tr := trace.FromContext(ctx)
	wired := e.Cluster.Wired
	frags := make([]FragmentStats, k)
	for i, s := range e.Cluster.Sites {
		frags[i].Site = s.ID()
	}

	// Stage 0 (Full only): assemble variables' internal candidates.
	var union *candidates.SiteVectors
	if cfg.Mode >= Full {
		bits := cfg.CandidateBits
		if bits == 0 {
			bits = candidates.DefaultBits
		}
		candMark := net.Bytes()
		siteVecs := make([]*candidates.SiteVectors, k)
		cerrs := make([]error, k)
		creq := cluster.CandidatesRequest{Query: q, Bits: bits}
		dur := e.Cluster.ParallelPool(p, func(i int, s cluster.Site) {
			siteStart := time.Now()
			rep, err := s.Candidates(ctx, creq)
			siteWall := time.Since(siteStart)
			tr.Span("candidates", s.ID(), siteStart, siteWall)
			if err != nil {
				cerrs[i] = err
				return
			}
			siteVecs[i] = rep.Vectors
			ship := int64(rep.Vectors.ShipmentBytes())
			msgs := int64(1)
			if wired {
				ship, msgs = rep.Wire, rep.WireMessages
			}
			net.Count(ship, msgs)
			frags[i].ShipmentBytes += ship
			frags[i].WireBytes += rep.Wire
			frags[i].Wall += siteWall
			frags[i].Tasks++
			frags[i].Busy += siteWall
		})
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, err := range cerrs {
			if err != nil {
				return err
			}
		}
		u, err := candidates.Union(siteVecs, q, bits)
		if err != nil {
			return err
		}
		union = u
		if !wired {
			// Broadcast of the union back to the sites. In worker mode the
			// union rides inside each PartialEval request and is metered
			// there as real request bytes.
			net.Broadcast(union.ShipmentBytes(), k)
		}
		stats.CandidatesTime = dur
		stats.CandidatesShipment = net.Bytes() - candMark
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	shipMark := net.Bytes()

	// Stage 1: partial evaluation — local complete matches plus local
	// partial matches at every site in parallel. Local complete matches
	// stream straight into out as each site finds them.
	outs := make([]cluster.PartialReply, k)
	serrs := make([]error, k)
	req := cluster.PartialRequest{
		Query: q, Order: planEdgeOrder(plan), EdgeRank: planEdgeRank(plan),
		Union: union, MaxMatches: cfg.MaxPartialMatches, Pool: p,
	}
	dur := e.Cluster.ParallelPool(p, func(i int, s cluster.Site) {
		siteStart := time.Now()
		rep, err := s.PartialEval(ctx, req, func(row []rdf.TermID) bool {
			return out(Row(row))
		})
		siteWall := time.Since(siteStart)
		tr.Span("partial", s.ID(), siteStart, siteWall)
		outs[i], serrs[i] = rep, err
		frags[i].Wall += siteWall
		frags[i].Tasks += rep.Tasks
		frags[i].Busy += rep.Busy
		frags[i].WireBytes += rep.Wire
		if wired {
			net.Count(rep.Wire, rep.WireMessages)
			frags[i].ShipmentBytes += rep.Wire
		}
	})
	stats.PartialTime = dur
	if err := ctx.Err(); err != nil {
		return err
	}
	var nLocal int
	var pms []*partial.Match
	for i := range outs {
		if err := serrs[i]; err != nil {
			if errors.Is(err, partial.ErrCanceled) {
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
			}
			return err
		}
		nLocal += outs[i].LocalMatches
		pms = append(pms, outs[i].Matches...)
		frags[i].LocalMatches = outs[i].LocalMatches
		frags[i].PartialMatches = len(outs[i].Matches)
		if !wired {
			frags[i].ShipmentBytes += int64(rowBytes(q) * outs[i].LocalMatches)
		}
	}
	stats.NumLocalMatches = nLocal
	stats.NumPartialMatches = len(pms)
	if !wired {
		net.Ship(rowBytes(q) * nLocal) // local matches to coordinator
	}

	// Stage 2 (LO, Full): LEC features travel instead of partial matches;
	// the coordinator joins features and broadcasts the survivors. In
	// worker mode the partial matches already crossed the wire in stage 1
	// (the transport ships them with the reply), so the feature exchange
	// is a coordinator-local pruning step with no traffic of its own.
	kept := pms
	if cfg.Mode >= LO {
		lecStart := time.Now()
		features, featureOf := lec.Compute(pms)
		stats.NumLECFeatures = len(features)
		if !wired {
			for _, f := range features {
				fb := f.EstimateBytes(len(q.Vertices))
				net.Ship(fb)
				// Features are computed from (and, in the paper's
				// deployment, shipped by) the site owning their partial
				// matches.
				frags[f.Frag].ShipmentBytes += int64(fb)
			}
		}
		res := lec.Prune(features, q)
		if !wired {
			// Verdict bitmap back to each site.
			net.Broadcast((len(features)+7)/8, k)
		}
		kept = kept[:0:0]
		for i, pm := range pms {
			if res.Retained[featureOf[i]] {
				kept = append(kept, pm)
			}
		}
		lecWall := time.Since(lecStart)
		tr.Span("lec", trace.Coordinator, lecStart, lecWall)
		stats.LECTime = lecWall
		if !wired {
			stats.LECShipment = net.Bytes() - shipMark
		}
	}
	stats.NumRetainedPartialMatches = len(kept)
	if err := ctx.Err(); err != nil {
		return err
	}

	// Stage 3: surviving partial matches travel to the coordinator and are
	// assembled (Algorithm 3, or the [18] baseline join for Basic).
	asmMark := net.Bytes()
	for _, pm := range kept {
		frags[pm.Frag].RetainedPartialMatches++
		if !wired {
			pb := pm.EstimateBytes()
			net.Ship(pb)
			frags[pm.Frag].ShipmentBytes += int64(pb)
		}
	}
	asmStart := time.Now()
	cancel := cancelFunc(ctx)
	// Emit streams each crossing match straight into out as it is found,
	// so no intermediate []assembly.Result is materialized; the ordered
	// path's terminal canonical sort covers the unordered emission, and a
	// streaming sink can stop the assembly mid-join.
	_, asmStats := assembly.Assemble(kept, q, assembly.Options{
		UseLEC: cfg.Mode >= LA,
		Cancel: cancel,
		Emit: func(cm assembly.Result) bool {
			return out(rowFromAssembly(q, cm))
		},
	})
	asmWall := time.Since(asmStart)
	tr.Span("assembly", trace.Coordinator, asmStart, asmWall)
	stats.AssemblyTime = asmWall
	stats.Fragments = frags
	if err := ctx.Err(); err != nil {
		return err
	}
	stats.AssemblyShipment = net.Bytes() - asmMark
	stats.JoinAttempts = asmStats.JoinAttempts
	stats.NumCrossingMatches = asmStats.Results
	return nil
}

// executeComponents evaluates each weakly connected component separately
// and recombines rows by cross product, enforcing equality on edge-label
// variables shared between components (vertex variables cannot be shared
// — a shared vertex would connect the components).
//
// With a non-nil out the final component's cross product streams: each
// complete combined row goes to out as it is merged (component
// sub-results — and, for three or more components, the intermediate
// pairwise products — still materialize; only the last merge, which can
// dwarf them all, never does), production stops the moment out
// declines, and the returned Result carries the aggregate stats with
// nil Rows. Component sub-queries carry no solution
// modifiers (SplitComponents drops them with the projection), so
// modifiers apply exactly once: here for the ordered path, in the
// caller's sink for the streaming path.
func (e *Engine) executeComponents(ctx context.Context, q *query.Graph, comps []query.Component, cfg Config, out rowOut) (*Result, error) {
	start := time.Now()
	combined := []Row{make(Row, len(q.Vars))}
	var agg Stats
	agg.Mode = cfg.Mode
	for ci, comp := range comps {
		res, err := e.ExecuteContext(ctx, comp.Query, cfg)
		if err != nil {
			return nil, err
		}
		s := res.Stats
		agg.CandidatesTime += s.CandidatesTime
		agg.CandidatesShipment += s.CandidatesShipment
		agg.PartialTime += s.PartialTime
		agg.NumPartialMatches += s.NumPartialMatches
		agg.LECTime += s.LECTime
		agg.LECShipment += s.LECShipment
		agg.NumLECFeatures += s.NumLECFeatures
		agg.NumRetainedPartialMatches += s.NumRetainedPartialMatches
		agg.AssemblyTime += s.AssemblyTime
		agg.AssemblyShipment += s.AssemblyShipment
		agg.JoinAttempts += s.JoinAttempts
		agg.NumCrossingMatches += s.NumCrossingMatches
		agg.NumLocalMatches += s.NumLocalMatches
		agg.TotalShipment += s.TotalShipment
		agg.Messages += s.Messages
		agg.EstimatedCommTime += s.EstimatedCommTime
		agg.Fragments = mergeFragments(agg.Fragments, s.Fragments)
		agg.EvalWorkers = s.EvalWorkers // identical across components

		streamLast := out != nil && ci == len(comps)-1
		var next []Row
		var ops uint
		for _, base := range combined {
			for _, sub := range res.Rows {
				// The cross product can dwarf the component runs; poll the
				// context so timeouts still bite here.
				if ops&0xfff == 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				ops++
				merged := make(Row, len(base))
				copy(merged, base)
				ok := true
				for subVar, parentVar := range comp.VarMap {
					v := sub[subVar]
					if cur := merged[parentVar]; cur != rdf.NoTerm && v != rdf.NoTerm && cur != v {
						ok = false // shared edge-label variable disagrees
						break
					}
					if v != rdf.NoTerm {
						merged[parentVar] = v
					}
				}
				if !ok {
					continue
				}
				if streamLast {
					if !out(merged) {
						agg.TotalTime = time.Since(start)
						return &Result{Query: q, Stats: agg}, nil
					}
				} else {
					next = append(next, merged)
				}
			}
		}
		if streamLast {
			agg.TotalTime = time.Since(start)
			return &Result{Query: q, Stats: agg}, nil
		}
		combined = next
		if len(combined) == 0 {
			break
		}
	}
	sortRows(combined)
	combined = applyModifiers(q, combined)
	agg.NumMatches = len(combined)
	agg.TotalTime = time.Since(start)
	return &Result{Query: q, Rows: combined, Stats: agg}, nil
}

// cancelFunc adapts ctx into the polling hook the store and partial
// layers accept; nil when ctx can never be canceled, so the hot matching
// loops skip the poll entirely.
func cancelFunc(ctx context.Context) func() bool {
	if ctx.Done() == nil {
		return nil
	}
	return func() bool { return ctx.Err() != nil }
}

// rowFromAssembly converts an assembled crossing match into a variable
// binding row.
func rowFromAssembly(q *query.Graph, r assembly.Result) Row {
	row := make(Row, len(q.Vars))
	for i, v := range q.Vertices {
		if v.IsVar() {
			row[v.Var] = r.Vec[i]
		}
	}
	for _, ev := range q.EdgeVars() {
		row[ev] = r.EdgeVars[ev]
	}
	return row
}

// querySize estimates the broadcast size of a query graph.
func querySize(q *query.Graph) int {
	return 8*len(q.Vertices) + 16*len(q.Edges)
}

// rowBytes estimates the wire size of one result row.
func rowBytes(q *query.Graph) int { return 4 * (len(q.Vars) + 1) }
