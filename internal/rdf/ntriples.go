package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseError describes a syntax error in an N-Triples document, with the
// 1-based line it occurred on.
type ParseError struct {
	Line int
	Err  error
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ntriples: line %d: %v", e.Line, e.Err)
}

func (e *ParseError) Unwrap() error { return e.Err }

// ReadNTriples parses an N-Triples document from r into a new Graph. Blank
// lines and #-comments are skipped. Parsing stops at the first syntax
// error, which is returned as a *ParseError.
func ReadNTriples(r io.Reader) (*Graph, error) {
	g := NewGraph()
	if err := ReadNTriplesInto(r, g); err != nil {
		return nil, err
	}
	return g, nil
}

// ReadNTriplesInto parses an N-Triples document from r, appending triples
// to g (encoding terms through g's dictionary).
func ReadNTriplesInto(r io.Reader, g *Graph) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		s, p, o, ok, err := parseNTriplesLine(sc.Text())
		if err != nil {
			return &ParseError{Line: lineno, Err: err}
		}
		if !ok {
			continue
		}
		g.Add(s, p, o)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("ntriples: read: %w", err)
	}
	return nil
}

// parseNTriplesLine parses one line. ok is false for blank/comment lines.
func parseNTriplesLine(line string) (s, p, o Term, ok bool, err error) {
	// The grammar allows a comment after the terminating '.', so strip it
	// before looking for the terminator — but only a '#' outside IRI
	// brackets and literal quotes starts a comment.
	line = strings.TrimSpace(stripComment(line))
	if line == "" {
		return Term{}, Term{}, Term{}, false, nil
	}
	if !strings.HasSuffix(line, ".") {
		return Term{}, Term{}, Term{}, false, fmt.Errorf("missing terminating '.'")
	}
	line = strings.TrimSpace(line[:len(line)-1])

	rest := line
	s, rest, err = cutTerm(rest)
	if err != nil {
		return Term{}, Term{}, Term{}, false, fmt.Errorf("subject: %w", err)
	}
	p, rest, err = cutTerm(rest)
	if err != nil {
		return Term{}, Term{}, Term{}, false, fmt.Errorf("predicate: %w", err)
	}
	o, rest, err = cutTerm(rest)
	if err != nil {
		return Term{}, Term{}, Term{}, false, fmt.Errorf("object: %w", err)
	}
	if strings.TrimSpace(rest) != "" {
		return Term{}, Term{}, Term{}, false, fmt.Errorf("trailing tokens %q", strings.TrimSpace(rest))
	}
	if s.IsLiteral() {
		return Term{}, Term{}, Term{}, false, fmt.Errorf("literal subject not allowed")
	}
	if !p.IsIRI() {
		return Term{}, Term{}, Term{}, false, fmt.Errorf("predicate must be an IRI, got %s", p.Kind)
	}
	return s, p, o, true, nil
}

// cutTerm splits the first whitespace-delimited term off s, honoring IRI
// brackets and literal quoting so embedded spaces survive.
func cutTerm(s string) (Term, string, error) {
	s = strings.TrimLeft(s, " \t")
	if s == "" {
		return Term{}, "", fmt.Errorf("unexpected end of statement")
	}
	var end int
	switch s[0] {
	case '<':
		i := strings.IndexByte(s, '>')
		if i < 0 {
			return Term{}, "", fmt.Errorf("unterminated IRI")
		}
		end = i + 1
	case '"':
		i := closingQuote(s)
		if i < 0 {
			return Term{}, "", fmt.Errorf("unterminated literal")
		}
		end = i + 1
		// Optional @lang or ^^<datatype> suffix.
		if end < len(s) && s[end] == '@' {
			j := end + 1
			for j < len(s) && s[j] != ' ' && s[j] != '\t' {
				j++
			}
			end = j
		} else if strings.HasPrefix(s[end:], "^^<") {
			j := strings.IndexByte(s[end:], '>')
			if j < 0 {
				return Term{}, "", fmt.Errorf("unterminated datatype IRI")
			}
			end += j + 1
		}
	default:
		i := strings.IndexAny(s, " \t")
		if i < 0 {
			i = len(s)
		}
		end = i
	}
	t, err := ParseTerm(s[:end])
	if err != nil {
		return Term{}, "", err
	}
	return t, s[end:], nil
}

// stripComment truncates line at the first '#' that lies outside IRI
// brackets and literal quotes ('#' is legal inside both: IRI fragments,
// literal text). Escapes inside literals are honored, so an escaped
// quote cannot fake a literal's end.
func stripComment(line string) string {
	inIRI, inLiteral := false, false
	for i := 0; i < len(line); i++ {
		switch c := line[i]; {
		case inLiteral:
			if c == '\\' {
				i++ // skip the escaped character
			} else if c == '"' {
				inLiteral = false
			}
		case inIRI:
			if c == '>' {
				inIRI = false
			}
		case c == '<':
			inIRI = true
		case c == '"':
			inLiteral = true
		case c == '#':
			return line[:i]
		}
	}
	return line
}

// closingQuote returns the index of the unescaped closing '"' of a literal
// beginning at s[0], or -1.
func closingQuote(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}

// WriteNTriples serializes g to w in canonical N-Triples form, one triple
// per line in insertion order.
func WriteNTriples(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.Triples {
		s, ok := g.Dict.Decode(t.S)
		if !ok {
			return fmt.Errorf("ntriples: triple references unknown subject ID %d", t.S)
		}
		p, ok := g.Dict.Decode(t.P)
		if !ok {
			return fmt.Errorf("ntriples: triple references unknown predicate ID %d", t.P)
		}
		o, ok := g.Dict.Decode(t.O)
		if !ok {
			return fmt.Errorf("ntriples: triple references unknown object ID %d", t.O)
		}
		if _, err := fmt.Fprintf(bw, "%s %s %s .\n", s, p, o); err != nil {
			return err
		}
	}
	return bw.Flush()
}
