// Package rdf implements the RDF data model used throughout gstored: terms
// (IRIs, literals, blank nodes), triples, a string↔ID dictionary, and
// streaming N-Triples input/output.
//
// All higher layers work on dictionary-encoded integer IDs; this package is
// the only place raw lexical forms appear.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms.
type TermKind uint8

const (
	// IRI is an internationalized resource identifier, e.g. <http://a/b>.
	IRI TermKind = iota
	// Literal is a (possibly language-tagged or datatyped) literal value.
	Literal
	// Blank is a blank node, e.g. _:b0.
	Blank
)

func (k TermKind) String() string {
	switch k {
	case IRI:
		return "iri"
	case Literal:
		return "literal"
	case Blank:
		return "blank"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is a single RDF term. Value holds the IRI string (without angle
// brackets), the literal lexical form (without quotes), or the blank node
// label (without the "_:" prefix). Lang and Datatype are only meaningful for
// literals and are mutually exclusive per the RDF 1.1 data model.
type Term struct {
	Kind     TermKind
	Value    string
	Lang     string // BCP-47 tag for language-tagged literals ("en", "en-GB")
	Datatype string // datatype IRI for typed literals
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral returns a plain literal term.
func NewLiteral(lex string) Term { return Term{Kind: Literal, Value: lex} }

// NewLangLiteral returns a language-tagged literal term.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: Literal, Value: lex, Lang: lang}
}

// NewTypedLiteral returns a datatyped literal term.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Kind: Literal, Value: lex, Datatype: datatype}
}

// NewBlank returns a blank node term with the given label.
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == Blank }

// String renders the term in canonical N-Triples syntax. The rendered form
// doubles as the dictionary key, so it must be injective over terms.
func (t Term) String() string {
	var b strings.Builder
	t.write(&b)
	return b.String()
}

func (t Term) write(b *strings.Builder) {
	switch t.Kind {
	case IRI:
		b.WriteByte('<')
		b.WriteString(t.Value)
		b.WriteByte('>')
	case Literal:
		b.WriteByte('"')
		escapeLiteral(b, t.Value)
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
	case Blank:
		b.WriteString("_:")
		b.WriteString(t.Value)
	}
}

// escapeLiteral writes s with N-Triples string escapes applied.
func escapeLiteral(b *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
}

// ParseTerm parses a single term in N-Triples syntax: an IRI in angle
// brackets, a quoted literal with optional @lang or ^^<datatype> suffix, or
// a _:label blank node. It is the inverse of Term.String.
func ParseTerm(s string) (Term, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Term{}, fmt.Errorf("rdf: empty term")
	}
	switch s[0] {
	case '<':
		if !strings.HasSuffix(s, ">") || len(s) < 2 {
			return Term{}, fmt.Errorf("rdf: unterminated IRI %q", s)
		}
		return NewIRI(s[1 : len(s)-1]), nil
	case '_':
		if !strings.HasPrefix(s, "_:") || len(s) == 2 {
			return Term{}, fmt.Errorf("rdf: malformed blank node %q", s)
		}
		return NewBlank(s[2:]), nil
	case '"':
		return parseLiteralTerm(s)
	default:
		return Term{}, fmt.Errorf("rdf: unrecognized term %q", s)
	}
}

func parseLiteralTerm(s string) (Term, error) {
	// Find the closing quote, honoring backslash escapes.
	end := -1
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++ // skip escaped char
		case '"':
			end = i
		}
		if end >= 0 {
			break
		}
	}
	if end < 0 {
		return Term{}, fmt.Errorf("rdf: unterminated literal %q", s)
	}
	lex, err := unescapeLiteral(s[1:end])
	if err != nil {
		return Term{}, err
	}
	rest := s[end+1:]
	switch {
	case rest == "":
		return NewLiteral(lex), nil
	case strings.HasPrefix(rest, "@"):
		lang := rest[1:]
		if lang == "" {
			return Term{}, fmt.Errorf("rdf: empty language tag in %q", s)
		}
		return NewLangLiteral(lex, lang), nil
	case strings.HasPrefix(rest, "^^<") && strings.HasSuffix(rest, ">"):
		dt := rest[3 : len(rest)-1]
		if dt == "" {
			return Term{}, fmt.Errorf("rdf: empty datatype in %q", s)
		}
		return NewTypedLiteral(lex, dt), nil
	default:
		return Term{}, fmt.Errorf("rdf: trailing garbage after literal: %q", s)
	}
}

func unescapeLiteral(s string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("rdf: dangling escape in literal %q", s)
		}
		switch s[i] {
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case 't':
			b.WriteByte('\t')
		case 'u', 'U':
			width := 4
			if s[i] == 'U' {
				width = 8
			}
			if i+width >= len(s) {
				return "", fmt.Errorf("rdf: truncated \\%c escape in %q", s[i], s)
			}
			var r rune
			for j := 0; j < width; j++ {
				i++
				r <<= 4
				switch c := s[i]; {
				case c >= '0' && c <= '9':
					r |= rune(c - '0')
				case c >= 'a' && c <= 'f':
					r |= rune(c-'a') + 10
				case c >= 'A' && c <= 'F':
					r |= rune(c-'A') + 10
				default:
					return "", fmt.Errorf("rdf: bad hex digit %q in unicode escape", c)
				}
			}
			b.WriteRune(r)
		default:
			return "", fmt.Errorf("rdf: unknown escape \\%c in literal", s[i])
		}
	}
	return b.String(), nil
}
