package rdf

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestNTriplesRoundTripIdentity is the serialization contract the update
// path's ground-triple handling relies on, one step stronger than the
// term-level property test in ntriples_test.go: WriteNTriples followed
// by ReadNTriples is the identity over dict-encoded triples — the same
// triple IDs in the same order, decoding to identical terms — across
// escaped literals, language tags, datatype IRIs, fragment IRIs and
// blanks, including lexical forms that mimic comments and terminators.
func TestNTriplesRoundTripIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 50; round++ {
		g := randomGraph(rng, 1+rng.Intn(40))
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, g); err != nil {
			t.Fatalf("round %d: write: %v", round, err)
		}
		back, err := ReadNTriples(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round %d: read back: %v\ndocument:\n%s", round, err, buf.String())
		}
		if back.Len() != g.Len() {
			t.Fatalf("round %d: %d triples in, %d out", round, g.Len(), back.Len())
		}
		for i, want := range g.Triples {
			got := back.Triples[i]
			// Terms are encoded in first-seen order on both sides of the
			// round trip, so even the raw IDs must agree.
			if got != want {
				t.Fatalf("round %d: triple %d IDs = %+v, want %+v", round, i, got, want)
			}
			for pos, pair := range [][2]TermID{{got.S, want.S}, {got.P, want.P}, {got.O, want.O}} {
				gt, ok1 := back.Dict.Decode(pair[0])
				wt, ok2 := g.Dict.Decode(pair[1])
				if !ok1 || !ok2 || gt != wt {
					t.Fatalf("round %d: triple %d position %d decodes to %+v, want %+v", round, i, pos, gt, wt)
				}
			}
		}
	}
}

// randomGraph generates n triples over adversarial terms: IRIs with
// fragments, literals stuffed with quotes, backslashes, tabs, newlines,
// '#', ' . ' sequences, language tags, datatype IRIs, and blank nodes.
func randomGraph(rng *rand.Rand, n int) *Graph {
	nastyLexicals := []string{
		"plain",
		"tab\there",
		"newline\nin the middle",
		"carriage\rreturn",
		`quote " inside`,
		`backslash \ inside`,
		`both \" inside`,
		" . # not a comment",
		"trailing dot .",
		"#lead hash",
		"ünïcödé ∂ata",
		"", // empty literal
	}
	iris := []string{
		"http://ex/a", "http://ex/b#frag", "http://ex/path/c",
		"http://ex/d#x.y", "urn:uuid:1234",
	}
	langs := []string{"en", "en-GB", "de"}
	dts := []string{
		"http://www.w3.org/2001/XMLSchema#integer",
		"http://www.w3.org/2001/XMLSchema#string",
		"http://ex/custom#type",
	}
	subject := func() Term {
		if rng.Intn(4) == 0 {
			return NewBlank(fmt.Sprintf("b%d", rng.Intn(5)))
		}
		return NewIRI(iris[rng.Intn(len(iris))])
	}
	object := func() Term {
		switch rng.Intn(4) {
		case 0:
			return NewIRI(iris[rng.Intn(len(iris))])
		case 1:
			lex := nastyLexicals[rng.Intn(len(nastyLexicals))]
			return NewLangLiteral(lex, langs[rng.Intn(len(langs))])
		case 2:
			lex := nastyLexicals[rng.Intn(len(nastyLexicals))]
			return NewTypedLiteral(lex, dts[rng.Intn(len(dts))])
		default:
			return NewLiteral(nastyLexicals[rng.Intn(len(nastyLexicals))])
		}
	}
	g := NewGraph()
	for i := 0; i < n; i++ {
		g.Add(subject(), NewIRI(iris[rng.Intn(len(iris))]), object())
	}
	return g
}

// TestNTriplesRoundTripKnownHardCases pins the named adversarial forms
// individually, so a property-test failure has a readable twin.
func TestNTriplesRoundTripKnownHardCases(t *testing.T) {
	g := NewGraph()
	p := NewIRI("http://ex/p")
	g.Add(NewIRI("http://ex/s"), p, NewLiteral(` . # not a comment`))
	g.Add(NewIRI("http://ex/s#frag"), p, NewLiteral("line1\nline2\tend"))
	g.Add(NewBlank("b0"), p, NewLangLiteral(`she said "hi"`, "en-GB"))
	g.Add(NewIRI("http://ex/s"), p, NewTypedLiteral(`\ lone backslash`, "http://ex/dt#x"))

	var buf bytes.Buffer
	if err := WriteNTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNTriples(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("read back: %v\ndocument:\n%s", err, buf.String())
	}
	if back.Len() != g.Len() {
		t.Fatalf("%d triples out, want %d", back.Len(), g.Len())
	}
	for i := range g.Triples {
		for _, pair := range [][2]TermID{
			{back.Triples[i].S, g.Triples[i].S},
			{back.Triples[i].P, g.Triples[i].P},
			{back.Triples[i].O, g.Triples[i].O},
		} {
			gt, _ := back.Dict.Decode(pair[0])
			wt, _ := g.Dict.Decode(pair[1])
			if gt != wt {
				t.Errorf("triple %d: %+v != %+v", i, gt, wt)
			}
		}
	}
}
