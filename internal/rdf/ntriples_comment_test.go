package rdf

import (
	"strings"
	"testing"
)

// TestReadNTriplesTrailingComment is the regression test for the
// spec-legal comment-after-terminator form the parser used to reject
// with "missing terminating '.'".
func TestReadNTriplesTrailingComment(t *testing.T) {
	doc := strings.Join([]string{
		`<http://ex/a> <http://ex/p> <http://ex/b> . # comment`,
		`<http://ex/b> <http://ex/p> <http://ex/c> .# tight comment`,
		`# whole-line comment`,
		`   # indented whole-line comment`,
		`<http://ex/c> <http://ex/p> "plain" . # trailing after literal`,
	}, "\n")
	g, err := ReadNTriples(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("ReadNTriples: %v", err)
	}
	if g.Len() != 3 {
		t.Errorf("parsed %d triples, want 3", g.Len())
	}
}

// TestReadNTriplesHashInsideTerms: '#' inside IRIs (fragments) and
// inside quoted literals is content, not a comment — including a
// literal that embeds what looks exactly like a terminator-plus-comment.
func TestReadNTriplesHashInsideTerms(t *testing.T) {
	doc := strings.Join([]string{
		`<http://ex/a#frag> <http://ex/p#x> <http://ex/b#y> .`,
		`<http://ex/a> <http://ex/p> " . # not a comment" .`,
		`<http://ex/a> <http://ex/p> "escaped \" . # still not a comment" . # real comment`,
	}, "\n")
	g, err := ReadNTriples(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("ReadNTriples: %v", err)
	}
	if g.Len() != 3 {
		t.Fatalf("parsed %d triples, want 3", g.Len())
	}
	if s, _ := g.Dict.Decode(g.Triples[0].S); s.Value != "http://ex/a#frag" {
		t.Errorf("fragment IRI mangled: %q", s.Value)
	}
	if o, _ := g.Dict.Decode(g.Triples[1].O); o.Value != ` . # not a comment` {
		t.Errorf("literal mangled: %q", o.Value)
	}
	if o, _ := g.Dict.Decode(g.Triples[2].O); o.Value != `escaped " . # still not a comment` {
		t.Errorf("escaped literal mangled: %q", o.Value)
	}
}

// TestReadNTriplesStillRejectsMissingDot: the comment stripping must not
// weaken the terminator requirement.
func TestReadNTriplesStillRejectsMissingDot(t *testing.T) {
	for _, line := range []string{
		`<http://ex/a> <http://ex/p> <http://ex/b>`,
		`<http://ex/a> <http://ex/p> <http://ex/b> # comment but no dot`,
	} {
		if _, err := ReadNTriples(strings.NewReader(line)); err == nil {
			t.Errorf("%q parsed without a terminating '.'", line)
		}
	}
}
