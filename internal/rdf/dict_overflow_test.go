package rdf

import (
	"strings"
	"testing"
)

// TestNextIDGuardsOverflow pins the dictionary's ID-exhaustion behavior:
// indices through 2^32-1 convert exactly; index 2^32 — the first that
// would wrap TermID onto the NoTerm sentinel and alias term 1, 2, ... —
// panics with a message naming the limit instead of corrupting lookups.
// (Driving Encode itself to 4 billion distinct terms is not feasible in
// a test, so the conversion guard is exercised directly.)
func TestNextIDGuardsOverflow(t *testing.T) {
	for _, n := range []uint64{1, 2, 1<<32 - 1} {
		if got := nextID(n); uint64(got) != n {
			t.Errorf("nextID(%d) = %d", n, got)
		}
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("nextID(2^32) did not panic; TermID wrapped silently")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "dictionary overflow") {
			t.Errorf("panic = %v, want a dictionary overflow message", r)
		}
	}()
	nextID(1 << 32)
}

// TestEncodeUsesGuardedIDs: the normal path still assigns dense IDs from 1.
func TestEncodeUsesGuardedIDs(t *testing.T) {
	d := NewDictionary()
	a := d.Encode(NewIRI("http://ex/a"))
	b := d.Encode(NewIRI("http://ex/b"))
	if a != 1 || b != 2 {
		t.Errorf("ids = %d, %d, want 1, 2", a, b)
	}
	if again := d.Encode(NewIRI("http://ex/a")); again != a {
		t.Errorf("re-encode = %d, want %d", again, a)
	}
}
