package rdf

import (
	"fmt"
	"sync"
)

// TermID is a dictionary-encoded RDF term. The zero value is never assigned
// to a real term, so it can safely be used as a sentinel ("NULL" in the
// paper's serialization vectors).
type TermID uint32

// NoTerm is the reserved sentinel meaning "no term" / NULL.
const NoTerm TermID = 0

// Dictionary maps RDF terms to dense integer IDs and back. It is safe for
// concurrent use; encoding takes a write lock only on first sight of a term.
//
// All gstored layers above this package exchange TermIDs; a single
// Dictionary instance is shared by every fragment of a distributed graph so
// IDs are globally consistent across sites (the paper's vertex IDs, e.g.
// "001", play the same role).
type Dictionary struct {
	mu    sync.RWMutex
	ids   map[string]TermID
	terms []Term // index 0 unused (NoTerm)
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{
		ids:   make(map[string]TermID),
		terms: make([]Term, 1), // reserve index 0 for NoTerm
	}
}

// Encode returns the ID for term, assigning a fresh one if needed.
//
// The ID space is 32-bit with 0 reserved for NoTerm, so a dictionary
// holds at most 2^32-1 distinct terms. Exhausting it panics loudly (see
// nextID) rather than silently wrapping the next ID onto NoTerm and
// aliasing existing terms.
func (d *Dictionary) Encode(t Term) TermID {
	key := t.String()
	d.mu.RLock()
	id, ok := d.ids[key]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[key]; ok {
		return id
	}
	id = nextID(uint64(len(d.terms)))
	d.ids[key] = id
	d.terms = append(d.terms, t)
	return id
}

// nextID converts the would-be slice index n into a TermID, refusing to
// wrap: term number 2^32 would silently alias NoTerm (and every later
// term an existing ID), turning an out-of-capacity condition into wrong
// query answers. A panic is deliberate — by the time the guard trips the
// process holds ~4 billion terms and no caller has a sane recovery; what
// matters is failing at the write that overflowed, not corrupting reads
// forever after.
func nextID(n uint64) TermID {
	if n > uint64(^TermID(0)) {
		panic(fmt.Sprintf("rdf: dictionary overflow: cannot assign term %d, TermID space is 32-bit (max %d terms)", n, ^TermID(0)))
	}
	return TermID(n)
}

// Lookup returns the ID for term without assigning one. The second result
// reports whether the term was present.
func (d *Dictionary) Lookup(t Term) (TermID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.ids[t.String()]
	return id, ok
}

// Decode returns the term for id. Decoding NoTerm or an unassigned ID
// returns the zero Term and false.
func (d *Dictionary) Decode(id TermID) (Term, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == NoTerm || int(id) >= len(d.terms) {
		return Term{}, false
	}
	return d.terms[id], true
}

// MustDecode is Decode for IDs known to be valid; it panics otherwise.
func (d *Dictionary) MustDecode(id TermID) Term {
	t, ok := d.Decode(id)
	if !ok {
		panic(fmt.Sprintf("rdf: MustDecode of unknown TermID %d", id))
	}
	return t
}

// Len reports how many terms have been assigned IDs.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms) - 1
}

// EncodeIRI is shorthand for Encode(NewIRI(iri)).
func (d *Dictionary) EncodeIRI(iri string) TermID { return d.Encode(NewIRI(iri)) }

// Triple is a dictionary-encoded RDF triple ⟨subject, predicate, object⟩.
// In graph terms (Def. 1 of the paper) S and O are vertices and P is the
// edge label.
type Triple struct {
	S, P, O TermID
}

// Less orders triples lexicographically by (S, P, O); used for
// deterministic output and tests.
func (t Triple) Less(u Triple) bool {
	if t.S != u.S {
		return t.S < u.S
	}
	if t.P != u.P {
		return t.P < u.P
	}
	return t.O < u.O
}

// Graph is a flat, dictionary-encoded triple multiset with its dictionary.
// It is the interchange format between generators/parsers and the store,
// partitioners and fragments.
type Graph struct {
	Dict    *Dictionary
	Triples []Triple
}

// NewGraph returns an empty graph with a fresh dictionary.
func NewGraph() *Graph {
	return &Graph{Dict: NewDictionary()}
}

// Add encodes and appends one triple given as terms.
func (g *Graph) Add(s, p, o Term) {
	g.Triples = append(g.Triples, Triple{g.Dict.Encode(s), g.Dict.Encode(p), g.Dict.Encode(o)})
}

// AddIRIs appends one triple whose three positions are all IRIs.
func (g *Graph) AddIRIs(s, p, o string) {
	g.Add(NewIRI(s), NewIRI(p), NewIRI(o))
}

// Len reports the number of triples.
func (g *Graph) Len() int { return len(g.Triples) }
