package rdf

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestDictionaryEncodeDecode(t *testing.T) {
	d := NewDictionary()
	a := d.Encode(NewIRI("http://a"))
	b := d.Encode(NewIRI("http://b"))
	if a == b {
		t.Fatalf("distinct terms share an ID: %d", a)
	}
	if a == NoTerm || b == NoTerm {
		t.Fatal("real terms must never receive NoTerm")
	}
	if again := d.Encode(NewIRI("http://a")); again != a {
		t.Errorf("re-encoding changed ID: %d vs %d", again, a)
	}
	got, ok := d.Decode(a)
	if !ok || got != NewIRI("http://a") {
		t.Errorf("Decode(%d) = %#v, %v", a, got, ok)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestDictionaryLookup(t *testing.T) {
	d := NewDictionary()
	if _, ok := d.Lookup(NewIRI("http://missing")); ok {
		t.Error("Lookup of unseen term reported present")
	}
	id := d.Encode(NewLiteral("x"))
	got, ok := d.Lookup(NewLiteral("x"))
	if !ok || got != id {
		t.Errorf("Lookup = %d, %v; want %d, true", got, ok, id)
	}
}

func TestDictionaryDecodeInvalid(t *testing.T) {
	d := NewDictionary()
	if _, ok := d.Decode(NoTerm); ok {
		t.Error("Decode(NoTerm) reported ok")
	}
	if _, ok := d.Decode(999); ok {
		t.Error("Decode of unassigned ID reported ok")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustDecode of invalid ID did not panic")
		}
	}()
	d.MustDecode(42)
}

func TestDictionaryLiteralVsIRIDistinct(t *testing.T) {
	d := NewDictionary()
	// A literal "x" and IRI x must not collide even though values match.
	lit := d.Encode(NewLiteral("http://a"))
	iri := d.Encode(NewIRI("http://a"))
	if lit == iri {
		t.Error("literal and IRI with same value share an ID")
	}
}

func TestDictionaryConcurrent(t *testing.T) {
	d := NewDictionary()
	const goroutines = 16
	const perG = 200
	var wg sync.WaitGroup
	ids := make([][]TermID, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]TermID, perG)
			for i := 0; i < perG; i++ {
				// Heavy overlap across goroutines to exercise the
				// double-checked insert path.
				ids[g][i] = d.Encode(NewIRI(fmt.Sprintf("http://x/%d", i%50)))
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d got different ID for term %d", g, i)
			}
		}
	}
	if d.Len() != 50 {
		t.Errorf("Len = %d, want 50", d.Len())
	}
}

func TestDictionaryRoundTripProperty(t *testing.T) {
	d := NewDictionary()
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		term := randomTerm(r)
		id := d.Encode(term)
		back, ok := d.Decode(id)
		return ok && back == term && id != NoTerm
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestGraphAdd(t *testing.T) {
	g := NewGraph()
	g.AddIRIs("http://s", "http://p", "http://o")
	g.Add(NewIRI("http://s"), NewIRI("http://p2"), NewLangLiteral("v", "en"))
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
	if g.Triples[0].S != g.Triples[1].S {
		t.Error("same subject encoded to different IDs")
	}
	if g.Triples[0].P == g.Triples[1].P {
		t.Error("different predicates share an ID")
	}
}

func TestTripleLess(t *testing.T) {
	a := Triple{1, 2, 3}
	cases := []struct {
		b    Triple
		want bool
	}{
		{Triple{2, 0, 0}, true},
		{Triple{1, 3, 0}, true},
		{Triple{1, 2, 4}, true},
		{Triple{1, 2, 3}, false},
		{Triple{0, 9, 9}, false},
	}
	for _, c := range cases {
		if got := a.Less(c.b); got != c.want {
			t.Errorf("(%v).Less(%v) = %v, want %v", a, c.b, got, c.want)
		}
	}
}
