package rdf

// Native fuzz target for the N-Triples reader: arbitrary bytes must
// produce a graph or an error, never a panic — and any graph that
// parses must survive a write/re-read round trip with the same size.

import (
	"bytes"
	"testing"
)

func FuzzReadNTriples(f *testing.F) {
	for _, s := range []string{
		"<http://ex/a> <http://ex/p> <http://ex/b> .\n",
		"<http://ex/a> <http://ex/p> \"lit\" .\n",
		"<http://ex/a> <http://ex/p> \"lit\"@en-US .\n",
		"<http://ex/a> <http://ex/p> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
		"_:b0 <http://ex/p> _:b1 .\n# comment\n\n<http://ex/a> <http://ex/p> <http://ex/b> .\n",
		"<http://ex/a> <http://ex/p> \"esc\\\"\\n\\t\\u00e9\" .\n",
		"<http://ex/a> <http://ex/p> .\n",
		"malformed",
		"",
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadNTriples(bytes.NewReader(data))
		if err != nil {
			return
		}
		if g == nil {
			t.Fatalf("ReadNTriples returned neither a graph nor an error")
		}
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, g); err != nil {
			t.Fatalf("re-serializing a parsed graph: %v", err)
		}
		g2, err := ReadNTriples(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading serialized output: %v\noutput: %q", err, buf.String())
		}
		if g2.Len() != g.Len() {
			t.Fatalf("round trip changed triple count: %d -> %d", g.Len(), g2.Len())
		}
	})
}
