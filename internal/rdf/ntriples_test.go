package rdf

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

const sampleNT = `
# The paper's example query's constants, roughly.
<http://ex/phi1> <http://ex/name> "Crispin Wright"@en .
<http://ex/phi1> <http://ex/influencedBy> <http://ex/phi2> .
<http://ex/phi2> <http://ex/mainInterest> <http://ex/int1> .

<http://ex/int1> <http://ex/label> "Philosophy of language"@en .
_:b1 <http://ex/birthDate> "1942-12-21"^^<http://www.w3.org/2001/XMLSchema#date> .
`

func TestReadNTriples(t *testing.T) {
	g, err := ReadNTriples(strings.NewReader(sampleNT))
	if err != nil {
		t.Fatalf("ReadNTriples: %v", err)
	}
	if g.Len() != 5 {
		t.Fatalf("parsed %d triples, want 5", g.Len())
	}
	s, _ := g.Dict.Decode(g.Triples[0].S)
	if s != NewIRI("http://ex/phi1") {
		t.Errorf("first subject = %#v", s)
	}
	o, _ := g.Dict.Decode(g.Triples[0].O)
	if o != NewLangLiteral("Crispin Wright", "en") {
		t.Errorf("first object = %#v", o)
	}
	s4, _ := g.Dict.Decode(g.Triples[4].S)
	if s4 != NewBlank("b1") {
		t.Errorf("blank subject = %#v", s4)
	}
}

func TestReadNTriplesErrors(t *testing.T) {
	cases := []struct {
		name, in string
		line     int
	}{
		{"missing dot", "<http://a> <http://b> <http://c>\n", 1},
		{"literal subject", `"lit" <http://p> <http://o> .`, 1},
		{"literal predicate", `<http://s> "p" <http://o> .`, 1},
		{"blank predicate", `<http://s> _:p <http://o> .`, 1},
		{"too few terms", `<http://s> <http://p> .`, 1},
		{"trailing garbage", `<http://s> <http://p> <http://o> <http://x> .`, 1},
		{"second line bad", "<http://s> <http://p> <http://o> .\n<oops .\n", 2},
	}
	for _, c := range cases {
		_, err := ReadNTriples(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("%s: error %v is not a *ParseError", c.name, err)
			continue
		}
		if pe.Line != c.line {
			t.Errorf("%s: error on line %d, want %d", c.name, pe.Line, c.line)
		}
	}
}

func TestNTriplesEmbeddedSpacesAndEscapes(t *testing.T) {
	in := `<http://s> <http://p> "a literal with spaces and a \" quote" .` + "\n" +
		`<http://s> <http://p> "tab\there"@en .` + "\n"
	g, err := ReadNTriples(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadNTriples: %v", err)
	}
	o0, _ := g.Dict.Decode(g.Triples[0].O)
	if o0.Value != `a literal with spaces and a " quote` {
		t.Errorf("object 0 = %q", o0.Value)
	}
	o1, _ := g.Dict.Decode(g.Triples[1].O)
	if o1.Value != "tab\there" || o1.Lang != "en" {
		t.Errorf("object 1 = %#v", o1)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := NewGraph()
	g.AddIRIs("http://s1", "http://p", "http://o1")
	g.Add(NewIRI("http://s1"), NewIRI("http://q"), NewLangLiteral("héllo \"world\"\n", "en"))
	g.Add(NewBlank("x"), NewIRI("http://p"), NewTypedLiteral("3.14", "http://www.w3.org/2001/XMLSchema#decimal"))

	var buf bytes.Buffer
	if err := WriteNTriples(&buf, g); err != nil {
		t.Fatalf("WriteNTriples: %v", err)
	}
	back, err := ReadNTriples(&buf)
	if err != nil {
		t.Fatalf("ReadNTriples: %v", err)
	}
	if !sameTripleSet(g, back) {
		t.Errorf("round trip mismatch:\noriginal: %v\nreparsed: %v", renderAll(g), renderAll(back))
	}
}

func TestNTriplesRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := NewGraph()
		n := 1 + r.Intn(20)
		for i := 0; i < n; i++ {
			s := randomTerm(r)
			for s.IsLiteral() {
				s = randomTerm(r)
			}
			p := NewIRI("http://p/" + string(rune('a'+r.Intn(5))))
			g.Add(s, p, randomTerm(r))
		}
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, g); err != nil {
			return false
		}
		back, err := ReadNTriples(&buf)
		if err != nil {
			return false
		}
		return sameTripleSet(g, back)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// sameTripleSet compares two graphs' triples as decoded term tuples,
// insensitive to dictionary ID assignment but sensitive to multiplicity.
func sameTripleSet(a, b *Graph) bool {
	return reflect.DeepEqual(renderAll(a), renderAll(b))
}

func renderAll(g *Graph) []string {
	out := make([]string, 0, g.Len())
	for _, t := range g.Triples {
		s, _ := g.Dict.Decode(t.S)
		p, _ := g.Dict.Decode(t.P)
		o, _ := g.Dict.Decode(t.O)
		out = append(out, s.String()+" "+p.String()+" "+o.String())
	}
	sort.Strings(out)
	return out
}
