package rdf

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://example.org/a"), "<http://example.org/a>"},
		{NewLiteral("hello"), `"hello"`},
		{NewLangLiteral("Crispin Wright", "en"), `"Crispin Wright"@en`},
		{NewTypedLiteral("1942-12-21", "http://www.w3.org/2001/XMLSchema#date"),
			`"1942-12-21"^^<http://www.w3.org/2001/XMLSchema#date>`},
		{NewBlank("b0"), "_:b0"},
		{NewLiteral(`say "hi"` + "\n"), `"say \"hi\"\n"`},
		{NewLiteral(`back\slash`), `"back\\slash"`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestParseTermRoundTrip(t *testing.T) {
	terms := []Term{
		NewIRI("http://example.org/x"),
		NewLiteral("plain"),
		NewLangLiteral("bonjour", "fr"),
		NewLangLiteral("hello", "en-GB"),
		NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer"),
		NewBlank("node1"),
		NewLiteral("tabs\tand\nnewlines"),
		NewLiteral(`quotes " and \ slashes`),
		NewLiteral(""),
	}
	for _, want := range terms {
		got, err := ParseTerm(want.String())
		if err != nil {
			t.Fatalf("ParseTerm(%q): %v", want.String(), err)
		}
		if got != want {
			t.Errorf("round trip %q: got %#v, want %#v", want.String(), got, want)
		}
	}
}

func TestParseTermErrors(t *testing.T) {
	bad := []string{
		"",
		"<http://no-close",
		"_:",
		`"unterminated`,
		`"lit"@`,
		`"lit"^^<>`,
		`"lit"garbage`,
		"plainword",
		`"bad\qescape"`,
	}
	for _, s := range bad {
		if _, err := ParseTerm(s); err == nil {
			t.Errorf("ParseTerm(%q): expected error, got nil", s)
		}
	}
}

func TestParseTermUnicodeEscapes(t *testing.T) {
	got, err := ParseTerm(`"café"`)
	if err != nil {
		t.Fatalf("ParseTerm: %v", err)
	}
	if got.Value != "café" {
		t.Errorf("got %q, want %q", got.Value, "café")
	}
	got, err = ParseTerm(`"g\U0001F600"`)
	if err != nil {
		t.Fatalf("ParseTerm: %v", err)
	}
	if got.Value != "g\U0001F600" {
		t.Errorf("got %q, want emoji", got.Value)
	}
}

// randomTerm generates an arbitrary valid Term for property tests.
func randomTerm(r *rand.Rand) Term {
	const chars = "abcdefghijklmnopqrstuvwxyz0123456789 \"\\\n\t讀書éü"
	randStr := func(min int) string {
		n := min + r.Intn(12)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteRune([]rune(chars)[r.Intn(len([]rune(chars)))])
		}
		return b.String()
	}
	switch r.Intn(4) {
	case 0:
		return NewIRI("http://example.org/" + strings.Map(alnumOnly, randStr(1)))
	case 1:
		return NewLiteral(randStr(0))
	case 2:
		return NewLangLiteral(randStr(0), []string{"en", "fr", "zh-Hans"}[r.Intn(3)])
	default:
		return NewTypedLiteral(randStr(0), "http://www.w3.org/2001/XMLSchema#string")
	}
}

func alnumOnly(r rune) rune {
	if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
		return r
	}
	return 'x'
}

func TestTermRoundTripProperty(t *testing.T) {
	f := func() bool { return true } // signature placeholder; we drive manually
	_ = f
	cfg := &quick.Config{MaxCount: 500}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		term := randomTerm(r)
		back, err := ParseTerm(term.String())
		return err == nil && back == term
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestTermStringInjective(t *testing.T) {
	// Distinct terms must render distinctly (dictionary keys depend on it).
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomTerm(r), randomTerm(r)
		if reflect.DeepEqual(a, b) {
			return a.String() == b.String()
		}
		return a.String() != b.String()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
