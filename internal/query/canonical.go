package query

import (
	"fmt"
	"sort"
	"strings"

	"gstored/internal/rdf"
)

// CanonicalKey returns a deterministic key identifying the query up to
// variable renaming and triple-pattern reordering, for use as a
// result-cache key. The key fully describes the query graph — every edge
// with its endpoint constants (by dictionary ID) and variables (by a
// canonical numbering), plus the effective projection and the solution
// modifiers (DISTINCT, LIMIT, OFFSET) — so two queries with equal keys
// are isomorphic and produce identical projected answers over the same
// database. The converse is best-effort: some
// highly symmetric reorderings may canonicalize to different keys and
// simply miss the cache.
//
// Keys embed dictionary term IDs, so they are only comparable between
// queries compiled against the same Dictionary.
//
// The canonical numbering is computed by iterative refinement: variables
// start indistinguishable, edges are sorted by their rendered form, and
// variables are renumbered by first appearance in the sorted edge list
// (subject, then predicate, then object); the renumbering changes the
// rendering, so the process repeats until the numbering reaches a
// fixpoint (or a bounded number of rounds for pathological symmetry).
func CanonicalKey(g *Graph) string {
	labels := make([]string, len(g.Vars))
	for i := range labels {
		labels[i] = "v"
	}
	canon := canonicalNumbering(g, labels)
	for round := 0; round < len(g.Vars); round++ {
		for i, c := range canon {
			labels[i] = fmt.Sprintf("v%d", c)
		}
		next := canonicalNumbering(g, labels)
		if equalInts(next, canon) {
			break
		}
		canon = next
	}
	for i, c := range canon {
		labels[i] = fmt.Sprintf("v%d", c)
	}

	edges := renderedEdges(g, labels)
	sort.Strings(edges)
	var b strings.Builder
	for _, e := range edges {
		b.WriteString(e)
		b.WriteByte(';')
	}
	// Effective projection in canonical variable space. SELECT * projects
	// every variable in the graph's own order, so the order is part of the
	// key: two variants hit the same entry only when their column orders
	// agree, which keeps cached projected rows directly servable.
	b.WriteString("|p:")
	proj := g.Projection
	if len(proj) == 0 {
		proj = make([]int, len(g.Vars))
		for i := range proj {
			proj[i] = i
		}
	}
	for _, v := range proj {
		fmt.Fprintf(&b, "%d,", canon[v])
	}
	// Solution modifiers are part of the answer semantics: SELECT DISTINCT
	// and its plain twin (or two different LIMIT/OFFSET windows) must not
	// alias one cache, singleflight, or workload-log entry. Only set
	// modifiers are rendered, so unmodified queries keep their historical
	// keys; OFFSET 0 is spec-equivalent to no OFFSET and renders nothing.
	if g.Distinct {
		b.WriteString("|d")
	}
	if g.HasLimit {
		fmt.Fprintf(&b, "|l%d", g.Limit)
	}
	if g.Offset > 0 {
		fmt.Fprintf(&b, "|o%d", g.Offset)
	}
	return b.String()
}

// canonicalNumbering sorts the edges under the given variable labels and
// numbers the variables by first appearance in the sorted edge sequence.
// Every variable of a valid query occurs in some edge (vertices and label
// variables both come from triple patterns), so the numbering is total.
func canonicalNumbering(g *Graph, labels []string) []int {
	rendered := renderedEdges(g, labels)
	order := make([]int, len(g.Edges))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if rendered[order[a]] != rendered[order[b]] {
			return rendered[order[a]] < rendered[order[b]]
		}
		return order[a] < order[b]
	})
	canon := make([]int, len(g.Vars))
	for i := range canon {
		canon[i] = -1
	}
	next := 0
	visit := func(v int) {
		if v != NoVar && canon[v] == -1 {
			canon[v] = next
			next++
		}
	}
	for _, ei := range order {
		e := g.Edges[ei]
		visit(g.Vertices[e.From].Var)
		visit(e.LabelVar)
		visit(g.Vertices[e.To].Var)
	}
	// Defensive: a variable mentioned nowhere (impossible via Builder)
	// still gets a stable number.
	for i := range canon {
		if canon[i] == -1 {
			canon[i] = next
			next++
		}
	}
	return canon
}

// renderedEdges renders each edge as "s -p-> o" with constants shown as
// c<termID> and variables shown by their current label. Read-only-parse
// placeholder constants render by lexical form ("u<term>"): their IDs
// are per-parse counters, meaningless across queries.
func renderedEdges(g *Graph, labels []string) []string {
	constant := func(id rdf.TermID) string {
		if lex, ok := g.Placeholders[id]; ok {
			return "u" + lex
		}
		return fmt.Sprintf("c%d", id)
	}
	vertex := func(i int) string {
		v := g.Vertices[i]
		if v.IsVar() {
			return labels[v.Var]
		}
		return constant(v.Const)
	}
	out := make([]string, len(g.Edges))
	for i, e := range g.Edges {
		lab := constant(e.Label)
		if e.HasVarLabel() {
			lab = labels[e.LabelVar]
		}
		out[i] = vertex(e.From) + " -" + lab + "-> " + vertex(e.To)
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
