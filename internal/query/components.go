package query

// Component is one weakly connected component of a query graph, extracted
// as a standalone query plus the mapping of its variables back to the
// parent query ("all connected components of Q are considered separately",
// Section II-A).
type Component struct {
	// Query is the component as a self-contained connected query graph.
	Query *Graph
	// VarMap maps the component's variable indices to parent indices.
	VarMap []int
}

// SplitComponents extracts the weakly connected components of q. For a
// connected query it returns a single component referencing q itself (with
// an identity VarMap). Projections are dropped from component queries —
// the caller projects on the recombined rows.
func SplitComponents(q *Graph) []Component {
	comps := q.ConnectedComponents()
	if len(comps) <= 1 {
		identity := make([]int, len(q.Vars))
		for i := range identity {
			identity[i] = i
		}
		return []Component{{Query: q, VarMap: identity}}
	}
	out := make([]Component, 0, len(comps))
	for _, vs := range comps {
		inComp := make(map[int]bool, len(vs))
		for _, v := range vs {
			inComp[v] = true
		}
		sub := &Graph{}
		vmap := make(map[int]int)   // parent vertex -> sub vertex
		varmap := make(map[int]int) // parent var -> sub var
		var varBack []int
		subVar := func(parent int) int {
			if i, ok := varmap[parent]; ok {
				return i
			}
			i := len(sub.Vars)
			sub.Vars = append(sub.Vars, q.Vars[parent])
			varmap[parent] = i
			varBack = append(varBack, parent)
			return i
		}
		for _, v := range vs {
			sv := Vertex{Var: NoVar, Const: q.Vertices[v].Const}
			if q.Vertices[v].IsVar() {
				sv.Var = subVar(q.Vertices[v].Var)
			}
			vmap[v] = len(sub.Vertices)
			sub.Vertices = append(sub.Vertices, sv)
		}
		for _, e := range q.Edges {
			if !inComp[e.From] {
				continue
			}
			se := Edge{From: vmap[e.From], To: vmap[e.To], Label: e.Label, LabelVar: NoVar}
			if e.HasVarLabel() {
				se.LabelVar = subVar(e.LabelVar)
			}
			sub.Edges = append(sub.Edges, se)
		}
		out = append(out, Component{Query: sub, VarMap: varBack})
	}
	return out
}
