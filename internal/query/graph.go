// Package query models SPARQL basic graph patterns as query graphs
// (Definition 2 of the paper): vertices are constants or variables, edges
// carry a predicate that is a constant or a variable.
//
// Vertex order inside a Graph is significant — serialization vectors, LEC
// signature bit positions and result columns all use it.
package query

import (
	"fmt"
	"strings"

	"gstored/internal/rdf"
)

// NoVar marks a constant vertex or a constant edge label.
const NoVar = -1

// MaxSize bounds query vertices and edges. The partial-match and
// assembly layers track per-vertex signature bits and per-edge matched
// bits in uint64 bitmasks, so a vertex or edge index of 64 or more would
// silently alias bit positions and could join incompatible partial
// matches. Validate rejects oversized graphs at compile time; 64
// vertices exactly (indices 0..63) still fit.
const MaxSize = 64

// Vertex is one query vertex: either a variable (Var >= 0, an index into
// Graph.Vars) or a constant term (Var == NoVar, Const holds the term).
type Vertex struct {
	Var   int
	Const rdf.TermID
}

// IsVar reports whether the vertex is a variable.
func (v Vertex) IsVar() bool { return v.Var != NoVar }

// Edge is one directed query edge (triple pattern): From --Label--> To,
// where From/To index Graph.Vertices. A variable predicate has
// LabelVar >= 0 (an index into Graph.Vars) and Label == rdf.NoTerm.
type Edge struct {
	From, To int
	Label    rdf.TermID
	LabelVar int
}

// HasVarLabel reports whether the edge predicate is a variable.
func (e Edge) HasVarLabel() bool { return e.LabelVar != NoVar }

// Graph is a SPARQL BGP query graph.
type Graph struct {
	// Vars holds variable names (without the '?') in first-seen order;
	// vertex variables and edge-label variables share this namespace.
	Vars []string
	// Vertices are the query vertices v_0 .. v_{n-1}.
	Vertices []Vertex
	// Edges are the triple patterns.
	Edges []Edge
	// Projection lists the variable indices returned by SELECT; empty
	// means SELECT * (all variables).
	Projection []int
	// Placeholders maps read-only-parse placeholder IDs (constants the
	// dictionary has not seen; they match nothing) to their lexical
	// forms. Placeholder IDs are assigned per parse by countdown, so the
	// ID alone does not identify the term across queries — CanonicalKey
	// renders these constants by lexical form instead. Nil when every
	// constant resolved through the dictionary.
	Placeholders map[rdf.TermID]string

	// Solution modifiers (SPARQL 1.1 §15). They change the answer a query
	// produces, so CanonicalKey embeds them: a modified query and its
	// plain twin must never share a cache, singleflight, or workload-log
	// entry. The zero value — no DISTINCT, no LIMIT, OFFSET 0 — is an
	// unmodified query, which keeps component sub-queries built by
	// SplitComponents modifier-free.

	// Distinct deduplicates the projected rows (SELECT DISTINCT): the
	// answer is a set, not a multiset. SELECT REDUCED parses as a no-op —
	// the spec permits returning the unreduced multiset.
	Distinct bool
	// Limit caps the number of solutions returned after Offset is
	// applied; meaningful only when HasLimit (LIMIT 0 is legal and yields
	// no solutions, so presence needs its own flag).
	Limit int
	// HasLimit records that a LIMIT clause was given.
	HasLimit bool
	// Offset skips the first Offset solutions (0 = none; OFFSET 0 is
	// equivalent to no OFFSET clause).
	Offset int
}

// NumVertices returns |V(Q)|.
func (g *Graph) NumVertices() int { return len(g.Vertices) }

// NumEdges returns |E(Q)|.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// VertexVars returns, per vertex, its variable index (NoVar for constants).
func (g *Graph) VertexVars() []int {
	out := make([]int, len(g.Vertices))
	for i, v := range g.Vertices {
		out[i] = v.Var
	}
	return out
}

// EdgeVars returns the distinct variable indices used as edge labels, in
// first-use order.
func (g *Graph) EdgeVars() []int {
	seen := make(map[int]bool)
	var out []int
	for _, e := range g.Edges {
		if e.HasVarLabel() && !seen[e.LabelVar] {
			seen[e.LabelVar] = true
			out = append(out, e.LabelVar)
		}
	}
	return out
}

// IncidentEdges returns, for each vertex, the indices of edges touching it
// (self-loops appear once).
func (g *Graph) IncidentEdges() [][]int {
	inc := make([][]int, len(g.Vertices))
	for i, e := range g.Edges {
		inc[e.From] = append(inc[e.From], i)
		if e.To != e.From {
			inc[e.To] = append(inc[e.To], i)
		}
	}
	return inc
}

// IsConnected reports whether the query graph is weakly connected. The
// empty graph is considered connected.
func (g *Graph) IsConnected() bool {
	return len(g.ConnectedComponents()) <= 1
}

// ConnectedComponents returns the vertex sets of the weakly connected
// components, each sorted ascending, ordered by smallest member.
func (g *Graph) ConnectedComponents() [][]int {
	n := len(g.Vertices)
	if n == 0 {
		return nil
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range g.Edges {
		a, b := find(e.From), find(e.To)
		if a != b {
			parent[a] = b
		}
	}
	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	out := make([][]int, 0, len(groups))
	for i := 0; i < n; i++ {
		if find(i) == i {
			out = append(out, groups[i])
		}
	}
	return out
}

// StarCenter returns the index of a vertex incident to every edge, if one
// exists, and whether the query is a star. Single-edge queries are stars
// (either endpoint qualifies; From is returned). The empty query is not a
// star.
func (g *Graph) StarCenter() (int, bool) {
	if len(g.Edges) == 0 {
		return 0, false
	}
	try := func(c int) bool {
		for _, e := range g.Edges {
			if e.From != c && e.To != c {
				return false
			}
		}
		return true
	}
	if try(g.Edges[0].From) {
		return g.Edges[0].From, true
	}
	if try(g.Edges[0].To) {
		return g.Edges[0].To, true
	}
	return 0, false
}

// Validate checks structural invariants: edge endpoints and variable
// indices in range, connectivity, and at least one triple pattern.
func (g *Graph) Validate() error {
	if len(g.Edges) == 0 {
		return fmt.Errorf("query: no triple patterns")
	}
	if len(g.Vertices) > MaxSize || len(g.Edges) > MaxSize {
		return fmt.Errorf("query too large: %d vertices and %d edges exceed the %d-vertex/%d-edge limit",
			len(g.Vertices), len(g.Edges), MaxSize, MaxSize)
	}
	for i, v := range g.Vertices {
		if v.Var != NoVar && (v.Var < 0 || v.Var >= len(g.Vars)) {
			return fmt.Errorf("query: vertex %d has out-of-range variable %d", i, v.Var)
		}
		if v.Var == NoVar && v.Const == rdf.NoTerm {
			return fmt.Errorf("query: vertex %d is constant but has no term", i)
		}
	}
	for i, e := range g.Edges {
		if e.From < 0 || e.From >= len(g.Vertices) || e.To < 0 || e.To >= len(g.Vertices) {
			return fmt.Errorf("query: edge %d endpoint out of range", i)
		}
		if e.LabelVar != NoVar && (e.LabelVar < 0 || e.LabelVar >= len(g.Vars)) {
			return fmt.Errorf("query: edge %d has out-of-range label variable %d", i, e.LabelVar)
		}
		if e.LabelVar == NoVar && e.Label == rdf.NoTerm {
			return fmt.Errorf("query: edge %d has neither label nor label variable", i)
		}
	}
	for _, p := range g.Projection {
		if p < 0 || p >= len(g.Vars) {
			return fmt.Errorf("query: projection references out-of-range variable %d", p)
		}
	}
	if g.HasLimit && g.Limit < 0 {
		return fmt.Errorf("query: negative LIMIT %d", g.Limit)
	}
	if g.Offset < 0 {
		return fmt.Errorf("query: negative OFFSET %d", g.Offset)
	}
	// Disconnected queries are legal: the engine evaluates each weakly
	// connected component separately and recombines by cross product
	// (Section II-A).
	return nil
}

// String renders a compact human-readable form, e.g.
// "?p1 --influencedBy--> ?p2" per edge, for diagnostics.
func (g *Graph) String() string {
	var b strings.Builder
	for i, e := range g.Edges {
		if i > 0 {
			b.WriteString(" . ")
		}
		b.WriteString(g.vertexName(e.From))
		b.WriteString(" --")
		if e.HasVarLabel() {
			b.WriteString("?" + g.Vars[e.LabelVar])
		} else {
			fmt.Fprintf(&b, "t%d", e.Label)
		}
		b.WriteString("--> ")
		b.WriteString(g.vertexName(e.To))
	}
	return b.String()
}

// EdgeString renders a single edge in the same compact form String
// uses, for per-step diagnostics such as the EXPLAIN evaluation order.
func (g *Graph) EdgeString(i int) string {
	e := g.Edges[i]
	label := fmt.Sprintf("t%d", e.Label)
	if e.HasVarLabel() {
		label = "?" + g.Vars[e.LabelVar]
	}
	return g.vertexName(e.From) + " --" + label + "--> " + g.vertexName(e.To)
}

func (g *Graph) vertexName(i int) string {
	v := g.Vertices[i]
	if v.IsVar() {
		return "?" + g.Vars[v.Var]
	}
	return fmt.Sprintf("t%d", v.Const)
}
