package query

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"gstored/internal/rdf"
)

// paperQuery builds the query graph of Fig. 2:
//
//	?t label ?l .  ?p1 influencedBy ?p2 .  ?p2 mainInterest ?t .
//	?p1 name "Crispin Wright"@en .
func paperQuery(t *testing.T) *Graph {
	t.Helper()
	d := rdf.NewDictionary()
	g, err := NewBuilder(d).
		Triple(Var("t"), IRI("label"), Var("l")).
		Triple(Var("p1"), IRI("influencedBy"), Var("p2")).
		Triple(Var("p2"), IRI("mainInterest"), Var("t")).
		Triple(Var("p1"), IRI("name"), Term(rdf.NewLangLiteral("Crispin Wright", "en"))).
		Select("p2", "l").
		Build()
	if err != nil {
		t.Fatalf("build paper query: %v", err)
	}
	return g
}

func TestBuilderPaperQueryShape(t *testing.T) {
	g := paperQuery(t)
	if g.NumVertices() != 5 {
		t.Errorf("vertices = %d, want 5", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Errorf("edges = %d, want 4", g.NumEdges())
	}
	if len(g.Vars) != 4 {
		t.Errorf("vars = %v, want 4 entries", g.Vars)
	}
	if !g.IsConnected() {
		t.Error("paper query should be connected")
	}
	if _, star := g.StarCenter(); star {
		t.Error("paper query is not a star")
	}
	if len(g.Projection) != 2 {
		t.Errorf("projection = %v", g.Projection)
	}
}

func TestBuilderInternsVerticesAndVars(t *testing.T) {
	d := rdf.NewDictionary()
	g := NewBuilder(d).
		Triple(Var("x"), IRI("p"), Var("y")).
		Triple(Var("y"), IRI("q"), Var("x")).
		Triple(Var("x"), IRI("r"), IRI("c")).
		Triple(IRI("c"), IRI("s"), Var("z")).
		MustBuild()
	if g.NumVertices() != 4 { // x, y, c, z
		t.Fatalf("vertices = %d, want 4", g.NumVertices())
	}
	if len(g.Vars) != 3 {
		t.Fatalf("vars = %v, want 3", g.Vars)
	}
}

func TestStarCenter(t *testing.T) {
	d := rdf.NewDictionary()
	star := NewBuilder(d).
		Triple(Var("x"), IRI("p1"), Var("a")).
		Triple(Var("x"), IRI("p2"), Var("b")).
		Triple(Var("c"), IRI("p3"), Var("x")).
		MustBuild()
	c, ok := star.StarCenter()
	if !ok {
		t.Fatal("expected star")
	}
	if star.Vertices[c].Var != 0 { // ?x
		t.Errorf("center = vertex %d, want the ?x vertex", c)
	}

	single := NewBuilder(d).Triple(Var("s"), IRI("p"), Var("o")).MustBuild()
	if _, ok := single.StarCenter(); !ok {
		t.Error("single edge should be a star")
	}

	path := NewBuilder(d).
		Triple(Var("a"), IRI("p"), Var("b")).
		Triple(Var("b"), IRI("p"), Var("c")).
		Triple(Var("c"), IRI("p"), Var("d")).
		MustBuild()
	if _, ok := path.StarCenter(); ok {
		t.Error("length-3 path is not a star")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := &Graph{
		Vars:     []string{"a", "b", "c", "d"},
		Vertices: []Vertex{{Var: 0}, {Var: 1}, {Var: 2}, {Var: 3}},
		Edges: []Edge{
			{From: 0, To: 1, Label: 1},
			{From: 2, To: 3, Label: 1},
		},
	}
	comps := g.ConnectedComponents()
	want := [][]int{{0, 1}, {2, 3}}
	if !reflect.DeepEqual(comps, want) {
		t.Errorf("components = %v, want %v", comps, want)
	}
	if g.IsConnected() {
		t.Error("graph with 2 components reported connected")
	}
	// Disconnected queries are legal (components evaluated separately).
	if err := g.Validate(); err != nil {
		t.Errorf("Validate rejected disconnected query: %v", err)
	}
}

func TestSplitComponents(t *testing.T) {
	d := rdf.NewDictionary()
	g := NewBuilder(d).
		Triple(Var("x"), Var("p"), Var("y")).
		Triple(Var("a"), Var("p"), Var("b")).
		MustBuild()
	comps := SplitComponents(g)
	if len(comps) != 2 {
		t.Fatalf("%d components", len(comps))
	}
	for _, c := range comps {
		if !c.Query.IsConnected() {
			t.Error("component not connected")
		}
		if c.Query.NumEdges() != 1 || c.Query.NumVertices() != 2 {
			t.Errorf("component shape: %d vertices, %d edges", c.Query.NumVertices(), c.Query.NumEdges())
		}
		if len(c.VarMap) != len(c.Query.Vars) {
			t.Error("VarMap length mismatch")
		}
		// The shared edge variable ?p must map back to the same parent var.
		found := false
		for sub, parent := range c.VarMap {
			if c.Query.Vars[sub] == "p" && g.Vars[parent] == "p" {
				found = true
			}
		}
		if !found {
			t.Error("shared edge var ?p not mapped")
		}
	}
	// Connected query: identity single component.
	conn := NewBuilder(d).Triple(Var("x"), IRI("q"), Var("y")).MustBuild()
	cc := SplitComponents(conn)
	if len(cc) != 1 || cc[0].Query != conn {
		t.Error("connected query should return itself")
	}
}

func TestValidateErrors(t *testing.T) {
	empty := &Graph{}
	if err := empty.Validate(); err == nil {
		t.Error("empty query should be invalid")
	}
	badEdge := &Graph{
		Vars:     []string{"x"},
		Vertices: []Vertex{{Var: 0}},
		Edges:    []Edge{{From: 0, To: 5, Label: 1}},
	}
	if err := badEdge.Validate(); err == nil {
		t.Error("edge endpoint out of range should be invalid")
	}
	noLabel := &Graph{
		Vars:     []string{"x", "y"},
		Vertices: []Vertex{{Var: 0}, {Var: 1}},
		Edges:    []Edge{{From: 0, To: 1, LabelVar: NoVar}},
	}
	if err := noLabel.Validate(); err == nil {
		t.Error("edge without label should be invalid")
	}
}

// TestQueryTooLarge pins the compile-time size limit: the partial-match
// and assembly layers track vertices and edges in uint64 bitmasks, so a
// vertex or edge index beyond 63 would silently alias sign bits and
// could return wrong joins. Exactly MaxSize vertices (indices 0..63)
// still fit; one more must be rejected by Validate, i.e. at Build time.
func TestQueryTooLarge(t *testing.T) {
	chain := func(n int) (*Graph, error) {
		b := NewBuilder(rdf.NewDictionary())
		for i := 0; i < n; i++ {
			b.Triple(Var(fmt.Sprintf("v%d", i)), IRI("p"), Var(fmt.Sprintf("v%d", i+1)))
		}
		return b.Build()
	}
	// 63 triples chain 64 vertices: the largest representable query.
	if _, err := chain(MaxSize - 1); err != nil {
		t.Errorf("%d-vertex query should compile: %v", MaxSize, err)
	}
	// 64 triples chain 65 vertices: rejected at compile time.
	_, err := chain(MaxSize)
	if err == nil || !strings.Contains(err.Error(), "query too large") {
		t.Errorf("%d-vertex query: err = %v, want query-too-large", MaxSize+1, err)
	}
	// Edge count alone can also overflow: >64 parallel variable-labeled
	// edges between two vertices.
	b := NewBuilder(rdf.NewDictionary())
	for i := 0; i <= MaxSize; i++ {
		b.Triple(Var("x"), Var(fmt.Sprintf("p%d", i)), Var("y"))
	}
	_, err = b.Build()
	if err == nil || !strings.Contains(err.Error(), "query too large") {
		t.Errorf("%d-edge query: err = %v, want query-too-large", MaxSize+1, err)
	}
}

func TestBuilderErrors(t *testing.T) {
	d := rdf.NewDictionary()
	if _, err := NewBuilder(d).
		Triple(Var("x"), Term(rdf.NewLiteral("p")), Var("y")).
		Build(); err == nil {
		t.Error("literal predicate should error")
	}
	if _, err := NewBuilder(d).
		Triple(Var("x"), IRI("p"), Var("y")).
		Select("nope").
		Build(); err == nil {
		t.Error("projecting unknown variable should error")
	}
}

func TestEdgeVarsAndIncidence(t *testing.T) {
	d := rdf.NewDictionary()
	g := NewBuilder(d).
		Triple(Var("x"), Var("p"), Var("y")).
		Triple(Var("y"), Var("p"), Var("z")).
		Triple(Var("z"), IRI("q"), Var("x")).
		MustBuild()
	ev := g.EdgeVars()
	if len(ev) != 1 {
		t.Fatalf("edge vars = %v, want exactly one", ev)
	}
	inc := g.IncidentEdges()
	// ?y touches edges 0 and 1.
	if !reflect.DeepEqual(inc[1], []int{0, 1}) {
		t.Errorf("incidence of ?y = %v", inc[1])
	}
}

func TestSelfLoopIncidence(t *testing.T) {
	d := rdf.NewDictionary()
	g := NewBuilder(d).
		Triple(Var("x"), IRI("p"), Var("x")).
		MustBuild()
	if g.NumVertices() != 1 {
		t.Fatalf("self loop should produce 1 vertex, got %d", g.NumVertices())
	}
	inc := g.IncidentEdges()
	if len(inc[0]) != 1 {
		t.Errorf("self-loop listed %d times, want once", len(inc[0]))
	}
	if !g.IsConnected() {
		t.Error("single-vertex graph should be connected")
	}
}
