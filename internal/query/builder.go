package query

import (
	"fmt"

	"gstored/internal/rdf"
)

// Node is a subject/predicate/object position spec accepted by Builder:
// either a variable name or a constant term. Construct with Var or Term.
type Node struct {
	varName string
	term    rdf.Term
	isVar   bool
}

// Var returns a variable node spec; name must not include the '?'.
func Var(name string) Node { return Node{varName: name, isVar: true} }

// Term returns a constant node spec.
func Term(t rdf.Term) Node { return Node{term: t} }

// IRI is shorthand for Term(rdf.NewIRI(iri)).
func IRI(iri string) Node { return Node{term: rdf.NewIRI(iri)} }

// Builder constructs query Graphs programmatically. It interns variables by
// name and constant vertices by term ID, exactly as the SPARQL parser does,
// so generator-built and parsed queries are structurally identical.
type Builder struct {
	dict     *rdf.Dictionary
	g        Graph
	varIdx   map[string]int
	constIdx map[rdf.TermID]int
	err      error

	// Lookup-only mode (NewBuilderReadOnly): unknown constants get
	// placeholder IDs counting down from the top of the TermID space
	// instead of growing the dictionary.
	readOnly     bool
	placeholders map[string]rdf.TermID
	nextPlace    rdf.TermID
}

// NewBuilder returns a builder encoding constants through dict,
// assigning fresh IDs to constants the dictionary has not seen.
func NewBuilder(dict *rdf.Dictionary) *Builder {
	return &Builder{
		dict:     dict,
		varIdx:   make(map[string]int),
		constIdx: make(map[rdf.TermID]int),
	}
}

// NewBuilderReadOnly returns a builder that never mutates dict: a
// constant the dictionary has not seen gets a placeholder ID from the
// top of the TermID space (distinct per lexical form, so query structure
// is preserved). Placeholder IDs occur in no store, so such patterns
// simply match nothing — exactly the semantics of querying for an absent
// term — without letting untrusted query streams grow the shared
// dictionary without bound.
func NewBuilderReadOnly(dict *rdf.Dictionary) *Builder {
	b := NewBuilder(dict)
	b.readOnly = true
	b.placeholders = make(map[string]rdf.TermID)
	b.nextPlace = ^rdf.TermID(0)
	return b
}

// encode resolves a constant term to an ID under the builder's mode.
func (b *Builder) encode(t rdf.Term) rdf.TermID {
	if !b.readOnly {
		return b.dict.Encode(t)
	}
	if id, ok := b.dict.Lookup(t); ok {
		return id
	}
	key := t.String()
	if id, ok := b.placeholders[key]; ok {
		return id
	}
	id := b.nextPlace
	b.nextPlace--
	b.placeholders[key] = id
	if b.g.Placeholders == nil {
		b.g.Placeholders = make(map[rdf.TermID]string)
	}
	// Record the lexical form on the graph: placeholder IDs restart at
	// the top of the TermID space every parse, so without it two queries
	// differing only in their unknown constants would render identical
	// canonical keys and alias each other's cache entries.
	b.g.Placeholders[id] = key
	return id
}

// Triple appends one triple pattern. Predicate constants must be IRIs.
func (b *Builder) Triple(s, p, o Node) *Builder {
	if b.err != nil {
		return b
	}
	// Intern in textual order (s, p, o) so variable indices follow their
	// first appearance in the query text.
	from := b.vertex(s)
	e := Edge{From: from, LabelVar: NoVar}
	if p.isVar {
		e.LabelVar = b.variable(p.varName)
	} else {
		if !p.term.IsIRI() {
			b.err = fmt.Errorf("query: predicate %s must be an IRI", p.term)
			return b
		}
		e.Label = b.encode(p.term)
	}
	e.To = b.vertex(o)
	b.g.Edges = append(b.g.Edges, e)
	return b
}

// Select sets the projection to the named variables. Unknown names are an
// error surfaced by Build.
func (b *Builder) Select(names ...string) *Builder {
	if b.err != nil {
		return b
	}
	for _, n := range names {
		idx, ok := b.varIdx[n]
		if !ok {
			b.err = fmt.Errorf("query: SELECT variable ?%s not used in pattern", n)
			return b
		}
		b.g.Projection = append(b.g.Projection, idx)
	}
	return b
}

// Distinct marks the query SELECT DISTINCT: its projected rows form a
// set rather than a multiset.
func (b *Builder) Distinct() *Builder {
	if b.err != nil {
		return b
	}
	b.g.Distinct = true
	return b
}

// Limit caps the number of solutions returned (applied after Offset).
// n must be non-negative; LIMIT 0 is legal and yields no solutions.
func (b *Builder) Limit(n int) *Builder {
	if b.err != nil {
		return b
	}
	if n < 0 {
		b.err = fmt.Errorf("query: negative LIMIT %d", n)
		return b
	}
	b.g.Limit, b.g.HasLimit = n, true
	return b
}

// Offset skips the first n solutions. n must be non-negative.
func (b *Builder) Offset(n int) *Builder {
	if b.err != nil {
		return b
	}
	if n < 0 {
		b.err = fmt.Errorf("query: negative OFFSET %d", n)
		return b
	}
	b.g.Offset = n
	return b
}

// Build validates and returns the query graph.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	g := b.g // copy
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// MustBuild is Build that panics on error; for tests and fixed workloads.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func (b *Builder) variable(name string) int {
	if i, ok := b.varIdx[name]; ok {
		return i
	}
	i := len(b.g.Vars)
	b.g.Vars = append(b.g.Vars, name)
	b.varIdx[name] = i
	return i
}

func (b *Builder) vertex(n Node) int {
	if n.isVar {
		vi := b.variable(n.varName)
		// A vertex per variable: find existing vertex with this var.
		for i, v := range b.g.Vertices {
			if v.Var == vi {
				return i
			}
		}
		b.g.Vertices = append(b.g.Vertices, Vertex{Var: vi})
		return len(b.g.Vertices) - 1
	}
	id := b.encode(n.term)
	if i, ok := b.constIdx[id]; ok {
		return i
	}
	b.g.Vertices = append(b.g.Vertices, Vertex{Var: NoVar, Const: id})
	i := len(b.g.Vertices) - 1
	b.constIdx[id] = i
	return i
}
