package query

import (
	"testing"

	"gstored/internal/rdf"
)

func TestReadOnlyBuilderDoesNotGrowDictionary(t *testing.T) {
	dict := rdf.NewDictionary()
	known := dict.Encode(rdf.NewIRI("http://ex/p"))
	before := dict.Len()

	b := NewBuilderReadOnly(dict)
	b.Triple(Var("x"), IRI("http://ex/p"), IRI("http://ex/unknown1"))
	b.Triple(Var("x"), IRI("http://ex/unknownPred"), IRI("http://ex/unknown2"))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if dict.Len() != before {
		t.Errorf("dictionary grew from %d to %d", before, dict.Len())
	}
	// Known constants resolve to their real IDs.
	if g.Edges[0].Label != known {
		t.Errorf("known predicate resolved to %d, want %d", g.Edges[0].Label, known)
	}
	// Unknown constants get distinct high placeholder IDs, preserving
	// query structure (unknown1 and unknown2 must stay separate vertices).
	u1 := g.Vertices[g.Edges[0].To].Const
	u2 := g.Vertices[g.Edges[1].To].Const
	if u1 == u2 {
		t.Error("distinct unknown constants collapsed into one vertex")
	}
	for _, id := range []rdf.TermID{u1, u2, g.Edges[1].Label} {
		if id < ^rdf.TermID(0)-8 {
			t.Errorf("placeholder ID %d not from the top of the TermID space", id)
		}
		if _, ok := dict.Decode(id); ok {
			t.Errorf("placeholder ID %d decodes to a real term", id)
		}
	}
	// The same unknown term reuses its placeholder within one builder.
	b2 := NewBuilderReadOnly(dict)
	b2.Triple(Var("a"), IRI("http://ex/p"), IRI("http://ex/unknown1"))
	b2.Triple(Var("b"), IRI("http://ex/p"), IRI("http://ex/unknown1"))
	g2 := b2.MustBuild()
	if g2.Edges[0].To != g2.Edges[1].To {
		t.Error("same unknown constant should intern to one vertex")
	}
}

// TestReadOnlyPlaceholderCanonicalKeys pins the cache-key identity of
// unknown constants: placeholder IDs restart at the top of the TermID
// space every parse, so CanonicalKey must distinguish them by lexical
// form — otherwise two queries differing only in their unknown constant
// would alias each other's cache and singleflight entries.
func TestReadOnlyPlaceholderCanonicalKeys(t *testing.T) {
	dict := rdf.NewDictionary()
	dict.Encode(rdf.NewIRI("http://ex/p"))
	parse := func(obj string) *Graph {
		b := NewBuilderReadOnly(dict)
		b.Triple(Var("x"), IRI("http://ex/p"), IRI(obj))
		return b.MustBuild()
	}
	kA1 := CanonicalKey(parse("http://ex/unknownA"))
	kA2 := CanonicalKey(parse("http://ex/unknownA"))
	kB := CanonicalKey(parse("http://ex/unknownB"))
	if kA1 != kA2 {
		t.Errorf("same unknown constant produced different keys:\n%s\n%s", kA1, kA2)
	}
	if kA1 == kB {
		t.Errorf("different unknown constants share a key: %s", kA1)
	}
}
