package query

import (
	"testing"

	"gstored/internal/rdf"
)

func canonGraph(t *testing.T, dict *rdf.Dictionary, build func(b *Builder)) *Graph {
	t.Helper()
	b := NewBuilder(dict)
	build(b)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCanonicalKeyVariableRenaming(t *testing.T) {
	dict := rdf.NewDictionary()
	q1 := canonGraph(t, dict, func(b *Builder) {
		b.Triple(Var("x"), IRI("p"), Var("y"))
		b.Triple(Var("y"), IRI("q"), Var("z"))
		b.Select("x", "z")
	})
	q2 := canonGraph(t, dict, func(b *Builder) {
		b.Triple(Var("alpha"), IRI("p"), Var("beta"))
		b.Triple(Var("beta"), IRI("q"), Var("gamma"))
		b.Select("alpha", "gamma")
	})
	if CanonicalKey(q1) != CanonicalKey(q2) {
		t.Errorf("renamed variants should share a key:\n%q\n%q", CanonicalKey(q1), CanonicalKey(q2))
	}
}

func TestCanonicalKeyTripleReordering(t *testing.T) {
	dict := rdf.NewDictionary()
	q1 := canonGraph(t, dict, func(b *Builder) {
		b.Triple(Var("x"), IRI("p"), Var("y"))
		b.Triple(Var("y"), IRI("q"), Var("z"))
		b.Select("x", "z")
	})
	q2 := canonGraph(t, dict, func(b *Builder) {
		b.Triple(Var("b"), IRI("q"), Var("c"))
		b.Triple(Var("a"), IRI("p"), Var("b"))
		b.Select("a", "c")
	})
	if CanonicalKey(q1) != CanonicalKey(q2) {
		t.Errorf("reordered variants should share a key:\n%q\n%q", CanonicalKey(q1), CanonicalKey(q2))
	}
	// Under SELECT * the column order follows the query's own variable
	// order, so it is deliberately part of the key (see CanonicalKey docs):
	// cached projected rows must be directly servable.
}

func TestCanonicalKeyDistinguishesStructure(t *testing.T) {
	dict := rdf.NewDictionary()
	base := canonGraph(t, dict, func(b *Builder) {
		b.Triple(Var("x"), IRI("p"), Var("y"))
		b.Triple(Var("y"), IRI("q"), Var("z"))
	})
	cases := map[string]*Graph{
		"different predicate": canonGraph(t, dict, func(b *Builder) {
			b.Triple(Var("x"), IRI("p"), Var("y"))
			b.Triple(Var("y"), IRI("r"), Var("z"))
		}),
		"different shape (shared subject)": canonGraph(t, dict, func(b *Builder) {
			b.Triple(Var("x"), IRI("p"), Var("y"))
			b.Triple(Var("x"), IRI("q"), Var("z"))
		}),
		"constant object": canonGraph(t, dict, func(b *Builder) {
			b.Triple(Var("x"), IRI("p"), Var("y"))
			b.Triple(Var("y"), IRI("q"), IRI("o"))
		}),
		"extra edge": canonGraph(t, dict, func(b *Builder) {
			b.Triple(Var("x"), IRI("p"), Var("y"))
			b.Triple(Var("y"), IRI("q"), Var("z"))
			b.Triple(Var("z"), IRI("q"), Var("x"))
		}),
		"different projection": canonGraph(t, dict, func(b *Builder) {
			b.Triple(Var("x"), IRI("p"), Var("y"))
			b.Triple(Var("y"), IRI("q"), Var("z"))
			b.Select("x")
		}),
	}
	for name, g := range cases {
		if CanonicalKey(g) == CanonicalKey(base) {
			t.Errorf("%s: key should differ from base", name)
		}
	}
}

func TestCanonicalKeyVariablePredicateAndSelfLoop(t *testing.T) {
	dict := rdf.NewDictionary()
	q1 := canonGraph(t, dict, func(b *Builder) {
		b.Triple(Var("x"), Var("p"), Var("x"))
	})
	q2 := canonGraph(t, dict, func(b *Builder) {
		b.Triple(Var("s"), Var("lab"), Var("s"))
	})
	q3 := canonGraph(t, dict, func(b *Builder) {
		b.Triple(Var("s"), Var("lab"), Var("o"))
	})
	if CanonicalKey(q1) != CanonicalKey(q2) {
		t.Error("renamed self-loop variants should share a key")
	}
	if CanonicalKey(q1) == CanonicalKey(q3) {
		t.Error("self-loop must not collide with a two-vertex edge")
	}
}

func TestCanonicalKeyProjectionOrderMatters(t *testing.T) {
	dict := rdf.NewDictionary()
	q1 := canonGraph(t, dict, func(b *Builder) {
		b.Triple(Var("x"), IRI("p"), Var("y"))
		b.Select("x", "y")
	})
	q2 := canonGraph(t, dict, func(b *Builder) {
		b.Triple(Var("x"), IRI("p"), Var("y"))
		b.Select("y", "x")
	})
	if CanonicalKey(q1) == CanonicalKey(q2) {
		t.Error("projection order is column order and must be part of the key")
	}
}
