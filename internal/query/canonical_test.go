package query

import (
	"testing"

	"gstored/internal/rdf"
)

func canonGraph(t *testing.T, dict *rdf.Dictionary, build func(b *Builder)) *Graph {
	t.Helper()
	b := NewBuilder(dict)
	build(b)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCanonicalKeyVariableRenaming(t *testing.T) {
	dict := rdf.NewDictionary()
	q1 := canonGraph(t, dict, func(b *Builder) {
		b.Triple(Var("x"), IRI("p"), Var("y"))
		b.Triple(Var("y"), IRI("q"), Var("z"))
		b.Select("x", "z")
	})
	q2 := canonGraph(t, dict, func(b *Builder) {
		b.Triple(Var("alpha"), IRI("p"), Var("beta"))
		b.Triple(Var("beta"), IRI("q"), Var("gamma"))
		b.Select("alpha", "gamma")
	})
	if CanonicalKey(q1) != CanonicalKey(q2) {
		t.Errorf("renamed variants should share a key:\n%q\n%q", CanonicalKey(q1), CanonicalKey(q2))
	}
}

func TestCanonicalKeyTripleReordering(t *testing.T) {
	dict := rdf.NewDictionary()
	q1 := canonGraph(t, dict, func(b *Builder) {
		b.Triple(Var("x"), IRI("p"), Var("y"))
		b.Triple(Var("y"), IRI("q"), Var("z"))
		b.Select("x", "z")
	})
	q2 := canonGraph(t, dict, func(b *Builder) {
		b.Triple(Var("b"), IRI("q"), Var("c"))
		b.Triple(Var("a"), IRI("p"), Var("b"))
		b.Select("a", "c")
	})
	if CanonicalKey(q1) != CanonicalKey(q2) {
		t.Errorf("reordered variants should share a key:\n%q\n%q", CanonicalKey(q1), CanonicalKey(q2))
	}
	// Under SELECT * the column order follows the query's own variable
	// order, so it is deliberately part of the key (see CanonicalKey docs):
	// cached projected rows must be directly servable.
}

func TestCanonicalKeyDistinguishesStructure(t *testing.T) {
	dict := rdf.NewDictionary()
	base := canonGraph(t, dict, func(b *Builder) {
		b.Triple(Var("x"), IRI("p"), Var("y"))
		b.Triple(Var("y"), IRI("q"), Var("z"))
	})
	cases := map[string]*Graph{
		"different predicate": canonGraph(t, dict, func(b *Builder) {
			b.Triple(Var("x"), IRI("p"), Var("y"))
			b.Triple(Var("y"), IRI("r"), Var("z"))
		}),
		"different shape (shared subject)": canonGraph(t, dict, func(b *Builder) {
			b.Triple(Var("x"), IRI("p"), Var("y"))
			b.Triple(Var("x"), IRI("q"), Var("z"))
		}),
		"constant object": canonGraph(t, dict, func(b *Builder) {
			b.Triple(Var("x"), IRI("p"), Var("y"))
			b.Triple(Var("y"), IRI("q"), IRI("o"))
		}),
		"extra edge": canonGraph(t, dict, func(b *Builder) {
			b.Triple(Var("x"), IRI("p"), Var("y"))
			b.Triple(Var("y"), IRI("q"), Var("z"))
			b.Triple(Var("z"), IRI("q"), Var("x"))
		}),
		"different projection": canonGraph(t, dict, func(b *Builder) {
			b.Triple(Var("x"), IRI("p"), Var("y"))
			b.Triple(Var("y"), IRI("q"), Var("z"))
			b.Select("x")
		}),
	}
	for name, g := range cases {
		if CanonicalKey(g) == CanonicalKey(base) {
			t.Errorf("%s: key should differ from base", name)
		}
	}
}

func TestCanonicalKeyVariablePredicateAndSelfLoop(t *testing.T) {
	dict := rdf.NewDictionary()
	q1 := canonGraph(t, dict, func(b *Builder) {
		b.Triple(Var("x"), Var("p"), Var("x"))
	})
	q2 := canonGraph(t, dict, func(b *Builder) {
		b.Triple(Var("s"), Var("lab"), Var("s"))
	})
	q3 := canonGraph(t, dict, func(b *Builder) {
		b.Triple(Var("s"), Var("lab"), Var("o"))
	})
	if CanonicalKey(q1) != CanonicalKey(q2) {
		t.Error("renamed self-loop variants should share a key")
	}
	if CanonicalKey(q1) == CanonicalKey(q3) {
		t.Error("self-loop must not collide with a two-vertex edge")
	}
}

func TestCanonicalKeyProjectionOrderMatters(t *testing.T) {
	dict := rdf.NewDictionary()
	q1 := canonGraph(t, dict, func(b *Builder) {
		b.Triple(Var("x"), IRI("p"), Var("y"))
		b.Select("x", "y")
	})
	q2 := canonGraph(t, dict, func(b *Builder) {
		b.Triple(Var("x"), IRI("p"), Var("y"))
		b.Select("y", "x")
	})
	if CanonicalKey(q1) == CanonicalKey(q2) {
		t.Error("projection order is column order and must be part of the key")
	}
}

// TestCanonicalKeyModifierCollision is the aliasing regression: before
// modifiers were embedded in the key, SELECT DISTINCT and its plain twin
// (and every LIMIT/OFFSET window of a query) canonicalized identically,
// so the result cache, singleflight, and workload log would serve one
// query's answer for the other.
func TestCanonicalKeyModifierCollision(t *testing.T) {
	dict := rdf.NewDictionary()
	pattern := func(mod func(b *Builder)) *Graph {
		return canonGraph(t, dict, func(b *Builder) {
			b.Triple(Var("x"), IRI("p"), Var("y"))
			b.Select("y")
			if mod != nil {
				mod(b)
			}
		})
	}
	variants := map[string]*Graph{
		"plain":           pattern(nil),
		"distinct":        pattern(func(b *Builder) { b.Distinct() }),
		"limit10":         pattern(func(b *Builder) { b.Limit(10) }),
		"limit20":         pattern(func(b *Builder) { b.Limit(20) }),
		"limit0":          pattern(func(b *Builder) { b.Limit(0) }),
		"offset10":        pattern(func(b *Builder) { b.Offset(10) }),
		"limit10offset5":  pattern(func(b *Builder) { b.Limit(10).Offset(5) }),
		"limit5offset10":  pattern(func(b *Builder) { b.Limit(5).Offset(10) }),
		"distinctLimit10": pattern(func(b *Builder) { b.Distinct().Limit(10) }),
	}
	keys := map[string]string{}
	for name, g := range variants {
		k := CanonicalKey(g)
		for other, ok := range keys {
			if ok == k {
				t.Errorf("variants %s and %s alias to one key %q", name, other, k)
			}
		}
		keys[name] = k
	}
	// Identical modifiers still coalesce, and OFFSET 0 is the spec-equal
	// spelling of "no OFFSET".
	if CanonicalKey(pattern(func(b *Builder) { b.Distinct().Limit(10) })) != keys["distinctLimit10"] {
		t.Error("identical modified twins should share a key")
	}
	if CanonicalKey(pattern(func(b *Builder) { b.Offset(0) })) != keys["plain"] {
		t.Error("OFFSET 0 should share the plain query's key")
	}
}
