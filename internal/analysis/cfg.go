package analysis

// Control-flow graphs over go/ast function bodies — the substrate the
// path-sensitive analyzers (lockpath, chanleak, the upgraded spanpair
// and looseerr) run their dataflow on. The construction is purely
// syntactic (no go/types needed), so the fuzz target can hammer it with
// arbitrary parseable sources, and nested function literals are opaque:
// a FuncLit sits inside an expression of whichever node contains it and
// is analyzed as its own function by the callers that care.
//
// Modeled statements: if/else chains, for (all three clauses optional),
// range, switch (incl. fallthrough), type switch, select, labeled
// break/continue, goto (including goto into a loop body), return,
// explicit panic(...) calls, and defer. Defer gets no edges of its own:
// a defer that executed runs at *every* subsequent function exit —
// returns and panics alike — so transfer functions treat the DeferStmt
// node itself as the point its effect becomes unavoidable (see
// DESIGN.md "Path-sensitive enforcement" for why that is sound).

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A CFG is the control-flow graph of one function body. Blocks[0] is
// the entry block; Exit is the synthetic block every return statement,
// explicit panic, and the fall-off end of the body converge on.
type CFG struct {
	Blocks []*Block
	Exit   *Block
}

// A Block is a maximal run of straight-line nodes. Nodes holds
// statements and the branch-condition expressions in execution order;
// control only transfers at the end of the list, via Succs.
type Block struct {
	Index int
	Kind  string // "entry", "exit", "if.then", ... for tests and debugging
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// Live reports reachability from the entry block. Dead blocks (code
	// after return/panic/goto, cases of an empty select) keep their
	// nodes and edges so analyses can still inspect them, but carry no
	// dataflow facts.
	Live bool
}

func (b *Block) String() string {
	var succs []string
	for _, s := range b.Succs {
		succs = append(succs, fmt.Sprint(s.Index))
	}
	return fmt.Sprintf("#%d %s -> [%s]", b.Index, b.Kind, strings.Join(succs, " "))
}

// last returns the final node of the block, nil when empty.
func (b *Block) last() ast.Node {
	if len(b.Nodes) == 0 {
		return nil
	}
	return b.Nodes[len(b.Nodes)-1]
}

// NewCFG builds the control-flow graph of body. It never fails: source
// that parses always yields a graph (malformed control flow like an
// unresolved break simply drops the edge).
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{}, labels: map[string]*Block{}}
	entry := b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = entry
	b.stmt(body)
	// Fall-off end: an implicit return.
	b.edge(b.cur, b.g.Exit)
	b.g.computeLive()
	return b.g
}

// targets is one entry of the break/continue resolution stack: the
// destinations a break or continue (optionally labeled) jumps to.
// Switch and select entries carry no continue target; continue
// resolution skips them.
type targets struct {
	label   string
	breakTo *Block
	contTo  *Block
}

type cfgBuilder struct {
	g      *CFG
	cur    *Block
	stack  []targets
	labels map[string]*Block // goto/label blocks, created on first mention
	// fallthroughTo is the next case body while building a switch case,
	// nil in the last case (where fallthrough is illegal anyway).
	fallthroughTo *Block
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *cfgBuilder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// labelBlock returns the block for a label, creating a placeholder on
// first mention so forward gotos (and gotos into loop bodies) resolve.
func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

func (b *cfgBuilder) findBreak(label string) *Block {
	for i := len(b.stack) - 1; i >= 0; i-- {
		t := b.stack[i]
		if label == "" || t.label == label {
			return t.breakTo
		}
	}
	return nil
}

func (b *cfgBuilder) findContinue(label string) *Block {
	for i := len(b.stack) - 1; i >= 0; i-- {
		t := b.stack[i]
		if t.contTo == nil {
			continue // switch/select: continue passes through to the loop
		}
		if label == "" || t.label == label {
			return t.contTo
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) { b.stmtLabeled(s, "") }

func (b *cfgBuilder) stmtLabeled(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		then := b.newBlock("if.then")
		done := b.newBlock("if.done")
		b.edge(b.cur, then)
		elseBlk := done
		if s.Else != nil {
			elseBlk = b.newBlock("if.else")
		}
		b.edge(b.cur, elseBlk)
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, done)
		if s.Else != nil {
			b.cur = elseBlk
			b.stmt(s.Else)
			b.edge(b.cur, done)
		}
		b.cur = done

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
		}
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(b.cur, body)
			b.edge(b.cur, done)
		} else {
			// `for {}`: done is only reachable via break.
			b.edge(b.cur, body)
		}
		b.stack = append(b.stack, targets{label: label, breakTo: done, contTo: post})
		b.cur = body
		b.stmt(s.Body)
		b.stack = b.stack[:len(b.stack)-1]
		b.edge(b.cur, post)
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.edge(b.cur, head)
		}
		b.cur = done

	case *ast.RangeStmt:
		b.add(s.X)
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.edge(b.cur, head)
		// The head holds the range statement itself: the per-iteration
		// key/value binding (and, ranging over a channel, the blocking
		// receive) happens here.
		head.Nodes = append(head.Nodes, s)
		b.edge(head, body)
		b.edge(head, done)
		b.stack = append(b.stack, targets{label: label, breakTo: done, contTo: head})
		b.cur = body
		b.stmt(s.Body)
		b.stack = b.stack[:len(b.stack)-1]
		b.edge(b.cur, head)
		b.cur = done

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.buildSwitchBody(s.Body, label, func(cc *ast.CaseClause, dispatch *Block) {
			for _, e := range cc.List {
				// Case expressions evaluate in the dispatch block (an
				// approximation: really each evaluates only if earlier
				// cases missed, but they are side-effect-light in
				// practice and order within a block is preserved).
				dispatch.Nodes = append(dispatch.Nodes, e)
			}
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.stmt(s.Assign)
		b.buildSwitchBody(s.Body, label, func(cc *ast.CaseClause, dispatch *Block) {})

	case *ast.SelectStmt:
		done := b.newBlock("select.done")
		dispatch := b.cur
		b.stack = append(b.stack, targets{label: label, breakTo: done})
		for _, clause := range s.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock("select.body")
			b.edge(dispatch, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			for _, st := range cc.Body {
				b.stmt(st)
			}
			b.edge(b.cur, done)
		}
		b.stack = b.stack[:len(b.stack)-1]
		// No direct dispatch→done edge: a select without a default (and
		// its default is just another CommClause) blocks until a case
		// runs, and `select {}` blocks forever — done stays unreachable.
		b.cur = done

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		b.stmtLabeled(s.Stmt, s.Label.Name)

	case *ast.BranchStmt:
		b.add(s)
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := b.findBreak(label); t != nil {
				b.edge(b.cur, t)
			}
		case token.CONTINUE:
			if t := b.findContinue(label); t != nil {
				b.edge(b.cur, t)
			}
		case token.GOTO:
			if s.Label != nil {
				b.edge(b.cur, b.labelBlock(s.Label.Name))
			}
		case token.FALLTHROUGH:
			if b.fallthroughTo != nil {
				b.edge(b.cur, b.fallthroughTo)
			}
		}
		b.cur = b.newBlock("unreachable")

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = b.newBlock("unreachable")

	case *ast.ExprStmt:
		b.add(s)
		if isPanicStmt(s) {
			b.edge(b.cur, b.g.Exit)
			b.cur = b.newBlock("unreachable")
		}

	case nil:
		// Empty else branches etc.

	default:
		// Straight-line statements: declarations, assignments, sends,
		// inc/dec, defer, go, empty. Defer deliberately gets no edge —
		// see the package comment.
		b.add(s)
	}
}

// buildSwitchBody wires the shared switch/type-switch shape: one
// dispatch block fanning out to case bodies, fallthrough chaining to
// the next body, and a dispatch→done edge when no default exists.
func (b *cfgBuilder) buildSwitchBody(body *ast.BlockStmt, label string, caseExprs func(*ast.CaseClause, *Block)) {
	done := b.newBlock("switch.done")
	dispatch := b.cur
	hasDefault := false
	var clauses []*ast.CaseClause
	for _, clause := range body.List {
		if cc, ok := clause.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock("switch.body")
	}
	b.stack = append(b.stack, targets{label: label, breakTo: done})
	savedFT := b.fallthroughTo
	for i, cc := range clauses {
		if cc.List == nil {
			hasDefault = true
		}
		caseExprs(cc, dispatch)
		b.edge(dispatch, bodies[i])
		b.fallthroughTo = nil
		if i+1 < len(bodies) {
			b.fallthroughTo = bodies[i+1]
		}
		b.cur = bodies[i]
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.edge(b.cur, done)
	}
	b.fallthroughTo = savedFT
	b.stack = b.stack[:len(b.stack)-1]
	if !hasDefault {
		b.edge(dispatch, done)
	}
	b.cur = done
}

// isPanicStmt reports whether s is a call to the predeclared panic.
// The check is syntactic (the identifier `panic` in call position) so
// the CFG needs no type information; shadowing panic with a function
// is pathological enough not to model.
func isPanicStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// checkCFGInvariants verifies the structural consistency every
// consumer of a CFG relies on; the fuzz target asserts it over
// arbitrary parseable sources. Invariants: block indexes match their
// positions, every succ edge has a mirroring pred edge (and vice
// versa, with multiplicity), and Live marks exactly the blocks
// reachable from the entry.
func checkCFGInvariants(g *CFG) error {
	edgeCount := func(list []*Block, want *Block) int {
		n := 0
		for _, b := range list {
			if b == want {
				n++
			}
		}
		return n
	}
	for i, b := range g.Blocks {
		if b == nil {
			return fmt.Errorf("block %d is nil", i)
		}
		if b.Index != i {
			return fmt.Errorf("block %d carries index %d", i, b.Index)
		}
		for _, s := range b.Succs {
			if edgeCount(s.Preds, b) != edgeCount(b.Succs, s) {
				return fmt.Errorf("edge %d->%d not mirrored in preds", b.Index, s.Index)
			}
		}
		for _, p := range b.Preds {
			if edgeCount(p.Succs, b) != edgeCount(b.Preds, p) {
				return fmt.Errorf("edge %d->%d not mirrored in succs", p.Index, b.Index)
			}
		}
	}
	reach := map[*Block]bool{}
	if len(g.Blocks) > 0 {
		var visit func(b *Block)
		visit = func(b *Block) {
			if reach[b] {
				return
			}
			reach[b] = true
			for _, s := range b.Succs {
				visit(s)
			}
		}
		visit(g.Blocks[0])
	}
	for _, b := range g.Blocks {
		if b.Live != reach[b] {
			return fmt.Errorf("block %d: Live=%v but reachable=%v", b.Index, b.Live, reach[b])
		}
	}
	return nil
}

// computeLive marks every block reachable from the entry.
func (g *CFG) computeLive() {
	if len(g.Blocks) == 0 {
		return
	}
	var visit func(b *Block)
	visit = func(b *Block) {
		if b.Live {
			return
		}
		b.Live = true
		for _, s := range b.Succs {
			visit(s)
		}
	}
	visit(g.Blocks[0])
}
