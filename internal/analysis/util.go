package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
)

// exprString renders an expression compactly for diagnostics.
func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return "<expr>"
	}
	return buf.String()
}
