package analysis

// The golden-file harness: each analyzer runs over
// testdata/src/<name>/, and every diagnostic must be announced by a
// `// want "regexp"` comment on the line it is reported at — the same
// contract as golang.org/x/tools/go/analysis/analysistest, implemented
// on the standard library. Unexpected diagnostics and unmatched wants
// both fail the test, so the golden files pin positives AND negatives.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestGenSwap(t *testing.T)     { runGolden(t, GenSwap) }
func TestCtxFlow(t *testing.T)     { runGolden(t, CtxFlow) }
func TestSpanPair(t *testing.T)    { runGolden(t, SpanPair) }
func TestMetricLabel(t *testing.T) { runGolden(t, MetricLabel) }
func TestLooseErr(t *testing.T)    { runGolden(t, LooseErr) }
func TestLockPath(t *testing.T)    { runGolden(t, LockPath) }
func TestChanLeak(t *testing.T)    { runGolden(t, ChanLeak) }
func TestDeferLoop(t *testing.T)   { runGolden(t, DeferLoop) }

// TestAllowDirective pins the suppression contract on the same golden
// layout: a documented //lint:allow for the right analyzer silences the
// line below; one naming a different analyzer does not.
func TestAllowDirective(t *testing.T) { runGolden(t, LooseErr, "directive") }

func runGolden(t *testing.T, a *Analyzer, dirname ...string) {
	t.Helper()
	name := a.Name
	if len(dirname) > 0 {
		name = dirname[0]
	}
	dir := filepath.Join("testdata", "src", name)
	fset := token.NewFileSet()
	files, err := ParseDir(fset, dir)
	if err != nil {
		t.Fatalf("parsing %s: %v", dir, err)
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", dir)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking %s: %v", dir, err)
	}
	diags, err := RunAnalyzers(fset, files, pkg, info, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, files)
	for _, d := range diags {
		p := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%v: unexpected diagnostic: %s [%s]", p, d.Message, d.Analyzer)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched want %q", key, w.re)
			}
		}
	}
}

type wantExpect struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants parses `// want "re" "re2"` comments, keyed by
// file:line. Both interpreted (") and raw (`) Go string syntax work.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*wantExpect {
	t.Helper()
	wants := map[string][]*wantExpect{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				p := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
				for {
					rest = strings.TrimSpace(rest)
					if rest == "" {
						break
					}
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%v: malformed want comment %q: %v", p, c.Text, err)
					}
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%v: unquoting %q: %v", p, q, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%v: bad want regexp %q: %v", p, s, err)
					}
					wants[key] = append(wants[key], &wantExpect{re: re})
					rest = rest[len(q):]
				}
			}
		}
	}
	return wants
}

// TestMalformedAllowDirective checks that an //lint:allow without a
// reason is itself reported and does not suppress anything: every
// suppression must be auditable.
func TestMalformedAllowDirective(t *testing.T) {
	const src = `package p

import "os"

func f(file *os.File) {
	//lint:allow looseerr
	file.Close()
}
`
	diags := runOnSource(t, "p.go", src)
	var kinds []string
	for _, d := range diags {
		kinds = append(kinds, d.Analyzer)
	}
	if len(diags) != 2 || kinds[0] != "lintdirective" || kinds[1] != "looseerr" {
		t.Fatalf("want one lintdirective and one looseerr diagnostic, got %v", kinds)
	}
}

// TestTestFilesExempt checks that *_test.go files are exempt from every
// analyzer.
func TestTestFilesExempt(t *testing.T) {
	const src = `package p

import "os"

func f(file *os.File) {
	file.Close()
}
`
	if diags := runOnSource(t, "p_test.go", src); len(diags) != 0 {
		t.Fatalf("want no diagnostics in a _test.go file, got %v", diags)
	}
}

func runOnSource(t *testing.T, filename, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(fset, []*ast.File{f}, pkg, info, All())
	if err != nil {
		t.Fatal(err)
	}
	return diags
}
