package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LooseErr flags call statements that implicitly discard an error
// result. A dropped error in the serializer or slow-log path turns an
// I/O failure into silent data loss: the handler reports success while
// the client got half a response. The sanctioned way to drop an error
// on purpose is to make the drop visible:
//
//	_ = w.Write(line) // best-effort, reason...
//
// which this analyzer never flags (the assignment makes the discard
// explicit and greppable).
//
// Documented exemptions, to keep the signal high:
//   - fmt.Print/Printf/Println/Fprint/Fprintf/Fprintln — terminal and
//     strings.Builder writers in practice; errors are not actionable;
//   - methods on *strings.Builder and *bytes.Buffer — documented to
//     never return a non-nil error;
//   - (*flag.FlagSet).Parse — every FlagSet here is ExitOnError, so the
//     error path never returns;
//   - `defer x.Close()` — best-effort cleanup of read-side resources
//     (write-side Closes whose error matters should be explicit
//     statements, which ARE flagged).
var LooseErr = &Analyzer{
	Name: "looseerr",
	Doc:  "flags call statements that implicitly discard an error result",
	Run:  runLooseErr,
}

func runLooseErr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ExprStmt:
				if call, ok := x.X.(*ast.CallExpr); ok {
					checkDiscard(pass, call, false)
				}
			case *ast.DeferStmt:
				checkDiscard(pass, x.Call, true)
				return false // don't re-visit the call as an ExprStmt child
			case *ast.GoStmt:
				checkDiscard(pass, x.Call, false)
				return false
			}
			return true
		})
	}
	return nil
}

func checkDiscard(pass *Pass, call *ast.CallExpr, deferred bool) {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.IsType() {
		return // conversion, not a call
	}
	if !resultsEndInError(tv.Type) {
		return
	}
	name := calleeName(pass, call)
	if isLooseErrExempt(name, deferred) {
		return
	}
	what := name
	if what == "" {
		what = exprString(call.Fun)
	}
	pass.Reportf(call.Pos(), "error return of %s is silently discarded: handle it, or make the drop explicit with `_ = ...` and a reason", what)
}

// resultsEndInError reports whether the call's result tuple (or single
// result) ends in the built-in error type.
func resultsEndInError(t types.Type) bool {
	errType := types.Universe.Lookup("error").Type()
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	return types.Identical(t, errType)
}

// calleeName renders the callee as a qualified name for the exemption
// table: "fmt.Fprintf", "(*strings.Builder).WriteString", or "" for
// indirect calls.
func calleeName(pass *Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return f.FullName()
		}
	case *ast.SelectorExpr:
		if f, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return f.FullName()
		}
	}
	return ""
}

func isLooseErrExempt(name string, deferred bool) bool {
	switch name {
	case "fmt.Print", "fmt.Printf", "fmt.Println",
		"fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln":
		return true
	case "(*flag.FlagSet).Parse":
		return true
	}
	if strings.HasPrefix(name, "(*strings.Builder).") || strings.HasPrefix(name, "(*bytes.Buffer).") {
		return true
	}
	if deferred && (strings.HasSuffix(name, ".Close") || name == "") {
		// `defer f.Close()` and deferred indirect calls (e.g. a deferred
		// cleanup closure) are best-effort by convention.
		return true
	}
	return false
}
