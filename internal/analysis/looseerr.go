package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LooseErr flags implicitly discarded errors — both call statements
// that drop an error result outright and error variables bound from a
// call that some path to return never consumes (see checkErrFlow). A
// dropped error in the serializer or slow-log path turns an I/O
// failure into silent data loss: the handler reports success while
// the client got half a response. The sanctioned way to drop an error
// on purpose is to make the drop visible:
//
//	_ = w.Write(line) // best-effort, reason...
//
// which this analyzer never flags (the assignment makes the discard
// explicit and greppable).
//
// Documented exemptions, to keep the signal high:
//   - fmt.Print/Printf/Println/Fprint/Fprintf/Fprintln — terminal and
//     strings.Builder writers in practice; errors are not actionable;
//   - methods on *strings.Builder and *bytes.Buffer — documented to
//     never return a non-nil error;
//   - (*flag.FlagSet).Parse — every FlagSet here is ExitOnError, so the
//     error path never returns;
//   - `defer x.Close()` — best-effort cleanup of read-side resources
//     (write-side Closes whose error matters should be explicit
//     statements, which ARE flagged).
var LooseErr = &Analyzer{
	Name: "looseerr",
	Doc:  "flags call statements that implicitly discard an error result",
	Run:  runLooseErr,
}

func runLooseErr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ExprStmt:
				if call, ok := x.X.(*ast.CallExpr); ok {
					checkDiscard(pass, call, false)
				}
			case *ast.DeferStmt:
				checkDiscard(pass, x.Call, true)
				return false // don't re-visit the call as an ExprStmt child
			case *ast.GoStmt:
				checkDiscard(pass, x.Call, false)
				return false
			}
			return true
		})
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkErrFlow(pass, fn.Body)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkErrFlow(pass, lit.Body)
			}
			return true
		})
	}
	return nil
}

// Error-variable states for the path-sensitive check: a bit is set when
// some path leaves the binding in that state.
const (
	errFresh uint8 = 1 << iota // assigned, not yet consumed
	errRead                    // consumed: compared, returned, passed, reassigned-after-read
)

// checkErrFlow is the path-sensitive half of looseerr: an error-typed
// variable bound from a call must be consumed — read in a condition,
// returned, passed on, captured by a closure — on every path from the
// assignment to every exit. The syntactic half above catches `w.Write(b)`
// as a statement; this half catches
//
//	n, err := w.Write(b)
//	if n > 0 { ... err ... }
//	return nil   // err unread when n == 0
//
// where the binding launders the discard past any statement-level check.
// Each tracked assignment flows through the function's CFG with states
// Fresh/Read; a return (after its own operands are credited as reads)
// or the fall-off end reached with Fresh possible is reported, as is an
// overwrite of a binding no path has read (the first error is lost).
// Variables declared outside the analyzed body (captured or named
// results) are not tracked — their values outlive the body — and any
// use inside a nested closure counts as a read, since the closure may
// run on any schedule.
func checkErrFlow(pass *Pass, body *ast.BlockStmt) {
	errType := types.Universe.Lookup("error").Type()

	// Collect tracked assignments: `err := f(...)` / `_, err = f(...)`
	// directly in this body (closures are their own bodies), binding an
	// error-typed variable that is itself declared in this body.
	type trackInfo struct {
		obj  types.Object
		line int
	}
	keys := map[*ast.AssignStmt]trackInfo{}
	byObj := map[types.Object][]*ast.AssignStmt{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		if _, isCall := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); !isCall {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil || obj.Type() == nil || !types.Identical(obj.Type(), errType) {
				continue
			}
			if obj.Pos() < body.Pos() || obj.Pos() > body.End() {
				continue // captured variable or named result: outlives this body
			}
			keys[as] = trackInfo{obj: obj, line: pass.Fset.Position(as.Pos()).Line}
			byObj[obj] = append(byObj[obj], as)
		}
		return true
	})
	if len(keys) == 0 {
		return
	}

	// readsIn returns the tracked objects node consumes. Direct LHS
	// idents of an assignment are writes, not reads; everything else —
	// including uses inside nested closures — counts.
	readsIn := func(n ast.Node) []types.Object {
		if _, ok := n.(*ast.RangeStmt); ok {
			return nil // its X and body statements live in other blocks
		}
		var lhsIdents map[*ast.Ident]bool
		if as, ok := n.(*ast.AssignStmt); ok {
			lhsIdents = map[*ast.Ident]bool{}
			for _, lhs := range as.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					lhsIdents[id] = true
				}
			}
		}
		var objs []types.Object
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && !lhsIdents[id] {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && byObj[obj] != nil {
					objs = append(objs, obj)
				}
			}
			return true
		})
		return objs
	}

	type errEvent struct {
		kind string // "return", "overwrite"
		pos  ast.Node
		as   *ast.AssignStmt
	}
	apply := func(n ast.Node, st map[*ast.AssignStmt]uint8, report func(errEvent)) {
		for _, obj := range readsIn(n) {
			for _, as := range byObj[obj] {
				st[as] = errRead
			}
		}
		if as, isAssign := n.(*ast.AssignStmt); isAssign {
			if info, tracked := keys[as]; tracked {
				for _, other := range byObj[info.obj] {
					if other == as {
						continue
					}
					if st[other] == errFresh {
						if report != nil {
							report(errEvent{kind: "overwrite", pos: as, as: other})
						}
						st[other] = errRead // value gone either way; report once
					}
				}
				st[as] = errFresh
			}
		}
		if ret, isRet := n.(*ast.ReturnStmt); isRet && report != nil {
			for as, bits := range st {
				if bits&errFresh != 0 {
					report(errEvent{kind: "return", pos: ret, as: as})
				}
			}
		}
	}

	g := NewCFG(body)
	transfer := func(b *Block, in map[*ast.AssignStmt]uint8) map[*ast.AssignStmt]uint8 {
		out := cloneBits(in)
		for _, n := range b.Nodes {
			apply(n, out, nil)
		}
		return out
	}
	in := Solve(g, Forward, map[*ast.AssignStmt]uint8{}, MeetUnion[*ast.AssignStmt], transfer, BitsEqual[*ast.AssignStmt])

	emit := func(e errEvent) {
		info := keys[e.as]
		switch e.kind {
		case "return":
			pass.Reportf(e.pos.Pos(),
				"error %s from the call at line %d is unchecked on a path reaching this return: check it, return it, or discard it explicitly with `_ = %s`",
				info.obj.Name(), info.line, info.obj.Name())
		case "overwrite":
			pass.Reportf(e.pos.Pos(),
				"error %s from the call at line %d is overwritten before any path reads it: the first error is lost; check it before reassigning",
				info.obj.Name(), info.line)
		}
	}
	for _, b := range g.Blocks {
		st, ok := in[b]
		if !ok {
			continue // unreachable
		}
		st = cloneBits(st)
		for _, n := range b.Nodes {
			apply(n, st, emit)
		}
		for _, s := range b.Succs {
			if s == g.Exit {
				if last := b.last(); last == nil || (!isReturn(last) && !isPanicNode(last)) {
					for as, bits := range st {
						if bits&errFresh != 0 {
							info := keys[as]
							pass.Reportf(body.Rbrace,
								"error %s from the call at line %d is unchecked on a path reaching the end of the function: check it or discard it explicitly with `_ = %s`",
								info.obj.Name(), info.line, info.obj.Name())
						}
					}
				}
			}
		}
	}
}

func checkDiscard(pass *Pass, call *ast.CallExpr, deferred bool) {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.IsType() {
		return // conversion, not a call
	}
	if !resultsEndInError(tv.Type) {
		return
	}
	name := calleeName(pass, call)
	if isLooseErrExempt(name, deferred) {
		return
	}
	what := name
	if what == "" {
		what = exprString(call.Fun)
	}
	pass.Reportf(call.Pos(), "error return of %s is silently discarded: handle it, or make the drop explicit with `_ = ...` and a reason", what)
}

// resultsEndInError reports whether the call's result tuple (or single
// result) ends in the built-in error type.
func resultsEndInError(t types.Type) bool {
	errType := types.Universe.Lookup("error").Type()
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	return types.Identical(t, errType)
}

// calleeName renders the callee as a qualified name for the exemption
// table: "fmt.Fprintf", "(*strings.Builder).WriteString", or "" for
// indirect calls.
func calleeName(pass *Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return f.FullName()
		}
	case *ast.SelectorExpr:
		if f, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return f.FullName()
		}
	}
	return ""
}

func isLooseErrExempt(name string, deferred bool) bool {
	switch name {
	case "fmt.Print", "fmt.Printf", "fmt.Println",
		"fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln":
		return true
	case "(*flag.FlagSet).Parse":
		return true
	}
	if strings.HasPrefix(name, "(*strings.Builder).") || strings.HasPrefix(name, "(*bytes.Buffer).") {
		return true
	}
	if deferred && (strings.HasSuffix(name, ".Close") || name == "") {
		// `defer f.Close()` and deferred indirect calls (e.g. a deferred
		// cleanup closure) are best-effort by convention.
		return true
	}
	return false
}
