package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the standalone driver: it loads and type-checks the
// module's packages without the go/packages machinery (this module is
// dependency-free), resolving module-local imports by recursive loading
// and standard-library imports through the source importer, which works
// straight from GOROOT with no network or export data.

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path, e.g. gstored/internal/server
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader type-checks module-local packages on demand.
type Loader struct {
	Fset    *token.FileSet
	root    string // module root directory
	modPath string
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module directory containing
// go.mod.
func NewLoader(root string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// Import implements types.Importer: module-local paths load recursively
// from source, everything else defers to the standard-library importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) loadPath(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	dir := l.root
	if path != l.modPath {
		dir = filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.modPath+"/")))
	}
	return l.loadDir(dir, path)
}

// loadDir parses and type-checks the non-test files of one directory.
func (l *Loader) loadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := ParseDir(l.Fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// ParseDir parses the buildable non-test Go files of dir, skipping
// files excluded by a //go:build constraint (a syntactic check good
// enough for this module, which uses no build tags in analyzed code).
func ParseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		if hasExcludingBuildTag(string(src)) {
			continue
		}
		f, err := parser.ParseFile(fset, full, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func hasExcludingBuildTag(src string) bool {
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			if strings.HasPrefix(line, "//go:build") && line != "//go:build" {
				return true // any constraint at all: skip rather than evaluate
			}
			continue
		}
		return false // reached package clause region
	}
	return false
}

// LoadAll loads every package under root (the `./...` pattern),
// skipping testdata, vendor, and hidden directories. Packages are
// returned in deterministic path order.
func LoadAll(root string) ([]*Package, *token.FileSet, error) {
	l, err := NewLoader(root)
	if err != nil {
		return nil, nil, err
	}
	var dirs []string
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, nil, err
		}
		path := l.modPath
		if rel != "." {
			path = l.modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.loadDir(dir, path)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, l.Fset, nil
}
