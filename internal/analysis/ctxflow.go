package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces the coordinator→site context discipline from PR 6:
// cancellation, deadlines, and trace attachment all ride the
// context.Context, so a context minted mid-request or a ctx parameter
// that stops flowing silently detaches a whole subtree of work from
// the request's lifetime — site scans keep running after the client
// hangs up, and spans vanish from the trace.
//
// Flagged:
//   - context.Background()/context.TODO() anywhere outside package main
//     and test files. Inside a function that already receives a ctx the
//     message says to derive from it; elsewhere the fix is to accept a
//     ctx from the caller.
//   - an entry point that accepts a context.Context but never uses it:
//     the ctx dead-ends there, so nothing below it is cancellable.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flags context.Background/TODO outside main and ctx parameters that are accepted but never forwarded",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkCtxFlowFunc(pass, fn)
		}
	}
	return nil
}

func checkCtxFlowFunc(pass *Pass, fn *ast.FuncDecl) {
	ctxParams := contextParams(pass, fn.Type)
	used := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil && ctxParams[obj] {
				used[obj] = true
			}
		case *ast.CallExpr:
			if name, ok := isContextMint(pass, x); ok {
				if len(ctxParams) > 0 {
					pass.Reportf(x.Pos(),
						"context.%s() inside a function that already receives a ctx: derive from the parameter so cancellation and tracing flow coordinator→site", name)
				} else {
					pass.Reportf(x.Pos(),
						"context.%s() outside main: accept a ctx from the caller so this work stays attached to the request lifetime", name)
				}
			}
		case *ast.FuncLit:
			// Closures see the enclosing ctx params via capture; keep
			// walking so both mints and uses inside them count.
		}
		return true
	})
	for obj := range ctxParams {
		if !used[obj] {
			pass.Reportf(obj.Pos(),
				"context parameter %s is accepted but never used: forward it to blocking callees or drop the parameter — a dead-end ctx makes everything below uncancellable", obj.Name())
		}
	}
}

// contextParams returns the named (non-blank) parameters of type
// context.Context.
func contextParams(pass *Pass, ft *ast.FuncType) map[types.Object]bool {
	out := map[types.Object]bool{}
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				out[obj] = true
			}
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isContextMint reports whether call is context.Background() or
// context.TODO(), returning which.
func isContextMint(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return "", false
	}
	f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "context" {
		return "", false
	}
	return sel.Sel.Name, true
}
