package analysis

// FuzzCFG hammers the CFG builder with arbitrary parseable sources:
// whatever go/parser accepts must yield, for every function body, a
// graph that never panics the builder and satisfies the structural
// invariants (indexes consistent, every edge mirrored, Live marking
// exactly the entry-reachable blocks). The seed corpus is the hard
// shapes from the unit tests — goto into a loop, labeled break out of
// a nested select, fallthrough chains, defer after panic, range over a
// channel — plus degenerate control flow the builder must tolerate
// (unresolved labels, select {}, dead code).

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func FuzzCFG(f *testing.F) {
	seeds := []string{
		`package p
func f(n int) int {
	x := 0
	goto inner
	for i := 0; i < n; i++ {
	inner:
		x++
	}
	return x
}`,
		`package p
func f(ch chan int, done chan struct{}) int {
	total := 0
loop:
	for {
		select {
		case v := <-ch:
			total += v
		case <-done:
			break loop
		}
	}
	return total
}`,
		`package p
func f(n int) int {
	switch n {
	case 0:
		n++
		fallthrough
	case 1:
		n += 2
	default:
		n = -1
	}
	return n
}`,
		`package p
func f(mu interface{ Unlock() }) {
	defer mu.Unlock()
	panic("boom")
	defer mu.Unlock()
}`,
		`package p
func f(ch chan int) (total int) {
	for v := range ch {
		total += v
		if total > 10 {
			return
		}
		continue
	}
	return
}`,
		`package p
func f() {
	select {}
}`,
		`package p
func f(n int) {
	goto missing
	for {
		switch {
		case n > 0:
			break
		default:
			continue
		}
	}
}`,
		`package p
func f(x any) string {
	switch v := x.(type) {
	case int:
		_ = v
		return "int"
	case string:
		goto out
	}
out:
	return ""
}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body == nil {
				return true
			}
			g := NewCFG(body)
			if err := checkCFGInvariants(g); err != nil {
				t.Fatalf("invariant violated:\n%s\nerror: %v", src, err)
			}
			return true
		})
	})
}
