package analysis

// TestModuleClean is the no-new-false-positives regression gate for the
// path-sensitive analyzers: the whole module, loaded exactly the way
// the standalone driver loads it, must produce zero diagnostics from
// the full eight-analyzer suite. Every sanctioned pattern in the tree —
// deferred unlocks, branch-paired span closers, WaitGroup fan-outs, the
// pool's bounded semaphore, double-checked RWMutex locking in the
// dictionary — is thereby pinned as accepted; an upgrade that starts
// flagging one of them fails here, not in CI's vet run.

import (
	"path/filepath"
	"testing"
)

func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, fset, err := LoadAll(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("loaded only %d packages; the loader lost the tree", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := RunAnalyzers(fset, pkg.Files, pkg.Types, pkg.Info, All())
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %v: %s [%s]", pkg.Path, fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
}
