package analysis

import (
	"go/ast"
	"go/types"
)

// SpanPair enforces that every trace span opened with StartSpan is
// closed on every return path. StartSpan returns a closer func(); the
// nil-receiver-safe idiom is
//
//	defer tr.StartSpan("stage", fragment)()
//
// A dropped or never-called closer records a span that never ends, so
// EXPLAIN output and the per-stage histograms attribute unbounded time
// to that stage; calling the closer immediately measures nothing.
//
// Flagged, for any method named StartSpan whose static result is a
// bare func():
//   - the closer discarded as a statement or assigned to _;
//   - the closer invoked in the same statement without defer
//     (zero-length span);
//   - a named closer that is never called, deferred, or passed on;
//   - a path to return (or to the fall-off end of the function) on
//     which the closer has not run — found by forward dataflow over the
//     function's CFG, with `defer done()` recognized as closing every
//     path past its registration point;
//   - a closer taken in the spawning scope but invoked inside a
//     pool-worker closure (Pool.Do, Cluster.Parallel*): workers run
//     concurrently and possibly many times, so the span would be closed
//     once per worker — each worker must open its own span, or the pair
//     must close in the spawning scope.
var SpanPair = &Analyzer{
	Name: "spanpair",
	Doc:  "flags trace.StartSpan calls whose closer is dropped, never invoked, or skipped on a return path",
	Run:  runSpanPair,
}

func runSpanPair(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkSpanFunc(pass, fn.Body)
			}
		}
	}
	return nil
}

// isStartSpan reports whether call invokes a method named StartSpan
// returning exactly one func() closer.
func isStartSpan(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "StartSpan" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	return ok && sig.Params().Len() == 0 && sig.Results().Len() == 0
}

func checkSpanFunc(pass *Pass, body *ast.BlockStmt) {
	// First pass: classify every StartSpan call by the statement that
	// consumes it, using a parent map.
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isStartSpan(pass, call) {
			return true
		}
		switch p := parents[call].(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "StartSpan closer discarded: the span never ends; use `defer %s()`", exprString(call.Fun))
		case *ast.CallExpr:
			// StartSpan(...)() — closer invoked immediately.
			if p.Fun == call {
				switch parents[p].(type) {
				case *ast.DeferStmt:
					// defer tr.StartSpan(...)() — the idiom.
				default:
					pass.Reportf(call.Pos(), "StartSpan closer invoked immediately: the span has zero length; defer the call instead")
				}
			}
		case *ast.AssignStmt:
			checkSpanAssign(pass, body, parents, p, call)
		}
		return true
	})
}

// enclosingPoolWorker returns the innermost FuncLit enclosing n that is
// a direct argument of a pool-runner call, nil when there is none.
func enclosingPoolWorker(pass *Pass, parents map[ast.Node]ast.Node, n ast.Node) *ast.FuncLit {
	for cur := parents[n]; cur != nil; cur = parents[cur] {
		lit, ok := cur.(*ast.FuncLit)
		if !ok {
			continue
		}
		p := parents[lit]
		for {
			par, ok := p.(*ast.ParenExpr)
			if !ok {
				break
			}
			p = parents[par]
		}
		if call, ok := p.(*ast.CallExpr); ok && isPoolRunnerCall(pass, call) {
			for _, arg := range call.Args {
				if ast.Unparen(arg) == lit {
					return lit
				}
			}
		}
	}
	return nil
}

// nodeWithin reports whether inner lies inside outer's source range.
func nodeWithin(outer, inner ast.Node) bool {
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}

// checkSpanAssign handles `done := tr.StartSpan(...)`: the closer must
// run — by defer or explicit call — on every path from the assignment
// to every exit of the enclosing function body.
func checkSpanAssign(pass *Pass, body *ast.BlockStmt, parents map[ast.Node]ast.Node, as *ast.AssignStmt, call *ast.CallExpr) {
	// Find which LHS ident receives the closer.
	var closer types.Object
	for i, rhs := range as.Rhs {
		if rhs != call || i >= len(as.Lhs) {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			return // stored into a field/index: escapes, trust the author
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "StartSpan closer assigned to _: the span never ends; use `defer %s()`", exprString(call.Fun))
			return
		}
		closer = pass.TypesInfo.Defs[id]
		if closer == nil {
			closer = pass.TypesInfo.Uses[id]
		}
	}
	if closer == nil {
		return
	}
	escaped := false
	var callPos []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == closer {
				if lit := enclosingPoolWorker(pass, parents, x); lit != nil && !nodeWithin(lit, as) {
					pass.Reportf(x.Pos(),
						"span closer %s from the spawning scope is called inside a pool worker: the span would close once per worker; open a per-worker span or close in the spawning scope",
						closer.Name())
				}
				callPos = append(callPos, x)
				return true
			}
			// closer passed as an argument: escapes.
			for _, arg := range x.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == closer {
					escaped = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == closer {
					escaped = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				id, ok := ast.Unparen(rhs).(*ast.Ident)
				if !ok || pass.TypesInfo.Uses[id] != closer {
					continue
				}
				// `_ = done` only appeases the compiler; it neither calls
				// nor escapes the closer.
				if i < len(x.Lhs) {
					if lid, ok := x.Lhs[i].(*ast.Ident); ok && lid.Name == "_" {
						continue
					}
				}
				escaped = true
			}
		}
		return true
	})
	if escaped {
		return
	}
	if len(callPos) == 0 {
		pass.Reportf(call.Pos(), "StartSpan closer %s is never called: the span never ends; use `defer %s()`", closer.Name(), closer.Name())
		return
	}

	// Path check: dataflow over the CFG of the innermost function body
	// holding the assignment. The span is Open after the assignment and
	// Closed after any statement that calls the closer — including a
	// defer statement, whose registration point is exactly where the
	// close becomes must-run (see cfg.go on defer), and statements whose
	// nested closure performs the call (the closure's timing is the
	// author's problem; the pool-worker check above flags the one shape
	// that is always wrong). A return or the fall-off end reached with
	// Open possible leaves that path's span unended.
	encBody := body
	for cur := parents[as]; cur != nil; cur = parents[cur] {
		if lit, ok := cur.(*ast.FuncLit); ok {
			encBody = lit.Body
			break
		}
	}
	const (
		spanOpen uint8 = 1 << iota
		spanClosed
	)
	type spanKey struct{}
	effect := func(n ast.Node) uint8 {
		if n == as {
			return spanOpen
		}
		if _, isRange := n.(*ast.RangeStmt); isRange {
			return 0 // its X and body statements live in other blocks
		}
		closes := false
		ast.Inspect(n, func(m ast.Node) bool {
			if c, ok := m.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == closer {
					closes = true
				}
			}
			return true
		})
		if closes {
			return spanClosed
		}
		return 0
	}
	g := NewCFG(encBody)
	transfer := func(b *Block, in map[spanKey]uint8) map[spanKey]uint8 {
		out := cloneBits(in)
		for _, n := range b.Nodes {
			if e := effect(n); e != 0 {
				out[spanKey{}] = e
			}
		}
		return out
	}
	in := Solve(g, Forward, map[spanKey]uint8{}, MeetUnion[spanKey], transfer, BitsEqual[spanKey])
	line := pass.Fset.Position(as.Pos()).Line
	for _, b := range g.Blocks {
		st, ok := in[b]
		if !ok {
			continue // unreachable
		}
		bits := st[spanKey{}]
		for _, n := range b.Nodes {
			if ret, isRet := n.(*ast.ReturnStmt); isRet && bits&spanOpen != 0 {
				pass.Reportf(ret.Pos(), "return path skips span closer %s taken at line %d: defer the closer so every exit ends the span",
					closer.Name(), line)
			}
			if e := effect(n); e != 0 {
				bits = e
			}
		}
		if bits&spanOpen == 0 {
			continue
		}
		for _, s := range b.Succs {
			if s == g.Exit {
				if last := b.last(); last == nil || (!isReturn(last) && !isPanicNode(last)) {
					pass.Reportf(encBody.Rbrace, "function end skips span closer %s taken at line %d: defer the closer so every exit ends the span",
						closer.Name(), line)
				}
			}
		}
	}
}
