package analysis

// CFG unit tests for the shapes that break naive builders: goto into a
// loop body, labeled break out of a select nested in a loop, statements
// after panic (dead but present, with defers before the panic still
// effective), and range over a channel. Each test builds the graph of
// one function and asserts reachability and edge structure directly.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildCFG parses src (a full file), finds the function named name, and
// returns its CFG plus the fileset for position rendering.
func buildCFG(t *testing.T, src, name string) (*CFG, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.Name == name && fn.Body != nil {
			return NewCFG(fn.Body), fset
		}
	}
	t.Fatalf("function %s not found", name)
	return nil, nil
}

// blockWith returns the live block containing a node whose source
// position line holds the marker comment text (matched by rendering the
// node's line from src).
func blockWith(t *testing.T, g *CFG, fset *token.FileSet, src, marker string) *Block {
	t.Helper()
	wantLine := 0
	for i, line := range strings.Split(src, "\n") {
		if strings.Contains(line, marker) {
			wantLine = i + 1
			break
		}
	}
	if wantLine == 0 {
		t.Fatalf("marker %q not in source", marker)
	}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if fset.Position(n.Pos()).Line == wantLine {
				return b
			}
		}
	}
	t.Fatalf("no block holds a node on line %d (%s)", wantLine, marker)
	return nil
}

// reaches reports whether to is reachable from from along Succs.
func reaches(from, to *Block) bool {
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func TestCFGGotoIntoLoop(t *testing.T) {
	const src = `package p
func f(n int) int {
	x := 0
	goto inner // jump
	for i := 0; i < n; i++ {
	inner:
		x++ // body
	}
	return x // ret
}`
	g, fset := buildCFG(t, src, "f")
	jump := blockWith(t, g, fset, src, "// jump")
	body := blockWith(t, g, fset, src, "// body")
	ret := blockWith(t, g, fset, src, "// ret")
	if !body.Live {
		t.Fatalf("loop body entered via goto must be live")
	}
	if !reaches(jump, body) {
		t.Fatalf("goto must reach the labeled statement inside the loop")
	}
	// From inside the loop the normal exit (cond false → return) works.
	if !reaches(body, ret) {
		t.Fatalf("loop body must reach the return via the loop condition")
	}
	if !reaches(ret, g.Exit) {
		t.Fatalf("return must edge to exit")
	}
	// The loop init is only reachable via fallthrough from the goto
	// statement's (dead) continuation, not from entry: goto skips it.
	if got := g.Blocks[0]; !got.Live {
		t.Fatalf("entry must be live")
	}
}

func TestCFGLabeledBreakFromNestedSelect(t *testing.T) {
	const src = `package p
func f(ch chan int, done chan struct{}) int {
	total := 0
loop:
	for {
		select {
		case v := <-ch:
			total += v // add
		case <-done:
			break loop // out
		}
	}
	return total // ret
}`
	g, fset := buildCFG(t, src, "f")
	add := blockWith(t, g, fset, src, "// add")
	out := blockWith(t, g, fset, src, "// out")
	ret := blockWith(t, g, fset, src, "// ret")
	if !ret.Live {
		t.Fatalf("labeled break must make the code after the loop live")
	}
	if !reaches(out, ret) {
		t.Fatalf("break loop must reach the statement after the loop")
	}
	// An unlabeled break would only leave the select: the add-case loops
	// back and must NOT reach the return except through the break case.
	if reachesWithout(add, ret, out) {
		t.Fatalf("only the break-carrying case may leave the loop")
	}
}

// reachesWithout reports from→to reachability with block banned from
// the path.
func reachesWithout(from, to, banned *Block) bool {
	seen := map[*Block]bool{banned: true}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func TestCFGDeferAfterPanic(t *testing.T) {
	const src = `package p
func f(mu interface{ Unlock() }) {
	defer mu.Unlock() // live-defer
	panic("boom")     // boom
	defer mu.Unlock() // dead-defer
}`
	g, fset := buildCFG(t, src, "f")
	live := blockWith(t, g, fset, src, "// live-defer")
	boom := blockWith(t, g, fset, src, "// boom")
	if !live.Live || !boom.Live {
		t.Fatalf("defer and panic before the cut must be live")
	}
	if !reaches(boom, g.Exit) {
		t.Fatalf("panic must edge to exit (deferred calls still run)")
	}
	// The statement after panic is dead, and stays in the graph marked so.
	var dead *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if fset.Position(n.Pos()).Line == 5 {
				dead = b
			}
		}
	}
	if dead == nil {
		t.Fatalf("dead defer must still be present in the graph")
	}
	if dead.Live {
		t.Fatalf("statement after panic must be marked dead")
	}
}

func TestCFGRangeOverChannel(t *testing.T) {
	const src = `package p
func f(ch chan int) int {
	total := 0
	for v := range ch {
		total += v // body
	}
	return total // ret
}`
	g, fset := buildCFG(t, src, "f")
	body := blockWith(t, g, fset, src, "// body")
	ret := blockWith(t, g, fset, src, "// ret")
	if !body.Live || !ret.Live {
		t.Fatalf("range body and loop exit must both be live")
	}
	// The body loops back through the range head (the blocking receive)
	// and the head has both a body and a done successor.
	var head *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				head = b
			}
		}
	}
	if head == nil {
		t.Fatalf("range head must hold the RangeStmt node")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("range head must branch to body and done, got %d succs", len(head.Succs))
	}
	if !reaches(body, head) {
		t.Fatalf("range body must loop back to the head")
	}
	if !reaches(head, ret) {
		t.Fatalf("range head must reach the code after the loop")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	const src = `package p
func f(n int) int {
	switch n {
	case 0:
		n++ // zero
		fallthrough
	case 1:
		n += 2 // one
	default:
		n = -1 // def
	}
	return n // ret
}`
	g, fset := buildCFG(t, src, "f")
	zero := blockWith(t, g, fset, src, "// zero")
	one := blockWith(t, g, fset, src, "// one")
	def := blockWith(t, g, fset, src, "// def")
	ret := blockWith(t, g, fset, src, "// ret")
	if !reaches(zero, one) {
		t.Fatalf("fallthrough must edge case 0 into case 1's body")
	}
	if reaches(zero, def) {
		t.Fatalf("fallthrough must not reach the default clause")
	}
	for _, b := range []*Block{zero, one, def} {
		if !reaches(b, ret) {
			t.Fatalf("every case must reach the statement after the switch")
		}
	}
}

// TestCFGEdgeMirror pins the structural invariant the fuzz target
// asserts: every succ edge has a matching pred edge and vice versa.
func TestCFGEdgeMirror(t *testing.T) {
	const src = `package p
func f(n int) int {
	for i := 0; i < n; i++ {
		switch {
		case i%2 == 0:
			continue
		case i%3 == 0:
			break
		}
		n--
	}
	return n
}`
	g, _ := buildCFG(t, src, "f")
	if err := checkCFGInvariants(g); err != nil {
		t.Fatal(err)
	}
}

func TestSolveForwardLoop(t *testing.T) {
	// A may-analysis over a loop converges: a "state" bit set in the
	// loop body must appear at the loop head via the back edge.
	const src = `package p
func f(n int) {
	x := 0 // init
	for i := 0; i < n; i++ {
		x = 1 // set
	}
	_ = x // after
}`
	g, fset := buildCFG(t, src, "f")
	setLine := 0
	for i, line := range strings.Split(src, "\n") {
		if strings.Contains(line, "// set") {
			setLine = i + 1
		}
	}
	type key struct{}
	in := Solve(g, Forward, map[key]uint8{{}: 1}, MeetUnion[key], func(b *Block, f map[key]uint8) map[key]uint8 {
		out := cloneBits(f)
		for _, n := range b.Nodes {
			if fset.Position(n.Pos()).Line == setLine {
				out[key{}] |= 2
			}
		}
		return out
	}, BitsEqual[key])
	after := blockWith(t, g, fset, src, "// after")
	got := in[after][key{}]
	if got != 1|2 {
		t.Fatalf("after the loop both the entry bit and the body bit must be possible, got %b", got)
	}
	exitFact := in[g.Exit]
	if exitFact[key{}] != 1|2 {
		t.Fatalf("exit fact must union all paths, got %b", exitFact[key{}])
	}
}

func TestSolveBackward(t *testing.T) {
	// Backward liveness-style flow: a bit introduced at the exit reaches
	// the entry against edge direction.
	const src = `package p
func f(a bool) {
	if a {
		println(1)
	} else {
		println(2)
	}
}`
	g, _ := buildCFG(t, src, "f")
	type key struct{}
	in := Solve(g, Backward, map[key]uint8{{}: 1}, MeetUnion[key], func(b *Block, f map[key]uint8) map[key]uint8 {
		return cloneBits(f)
	}, BitsEqual[key])
	if in[g.Blocks[0]][key{}] != 1 {
		t.Fatalf("backward flow must carry the exit fact to the entry")
	}
}
