package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockPath enforces, path-sensitively, the locking discipline the
// engine's hot-swap machinery depends on: every sync.Mutex/RWMutex
// Lock must reach an Unlock on every path to return — `defer
// mu.Unlock()` immediately after the Lock is the canonical form — and
// the swap mutex (`swapMu`, which serializes Repartition and Update)
// must be acquired outermost: a path that takes any other lock before
// swapMu inverts the order the rest of the module relies on and can
// deadlock against the canonical order.
//
// Flagged, per function body (closures are their own bodies):
//   - a return path on which a lock acquired in this body is still
//     held and no deferred Unlock is pending;
//   - acquiring a lock a path may already hold (self-deadlock), and
//     acquiring a write Lock while a path holds the same RWMutex's
//     read lock (or vice versa — both deadlock in one goroutine);
//   - an Unlock a path can reach without the lock held (runtime
//     fatal), when this body also Locks that mutex — bodies that only
//     Unlock are the caller-holds-the-lock helper idiom and exempt;
//   - an explicit Unlock when a deferred Unlock of the same mutex is
//     already pending (double unlock at exit);
//   - acquiring swapMu while any other lock is held (lock-order rule:
//     swapMu outermost).
//
// Panic edges are exempt from the held-at-exit check: only deferred
// Unlocks run during unwinding, which is one more reason defer is the
// canonical form.
var LockPath = &Analyzer{
	Name: "lockpath",
	Doc:  "flags lock/unlock pairings that break on some path and lock acquisitions that invert the swapMu-outermost order",
	Run:  runLockPath,
}

// Lock-state bits: a bit is set when some path leaves the lock in that
// state (the MeetUnion powerset encoding from dataflow.go).
const (
	lockU uint8 = 1 << iota // unlocked
	lockL                   // locked, no deferred unlock pending
	lockD                   // locked, deferred unlock pending (exit-safe)
)

// A lockKey identifies one lock within a body: the root variable of
// the receiver chain plus the printed path (so db.mu and tx.mu stay
// distinct even when both roots have the same type), with "/R" marking
// the read side of an RWMutex.
type lockKey struct {
	root types.Object
	path string
}

// lockOpKind classifies one lock call site.
type lockOpKind int

const (
	opLock lockOpKind = iota
	opUnlock
)

type lockOp struct {
	kind lockOpKind
	key  lockKey
	read bool // RLock/RUnlock
	call *ast.CallExpr
}

func runLockPath(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				lockPathBody(pass, fn.Body)
			}
		}
		// Closures are separate bodies: a lock taken inside one must be
		// released inside it (a closure returning with a lock held leaks
		// it wherever the closure runs).
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				lockPathBody(pass, lit.Body)
			}
			return true
		})
	}
	return nil
}

// lockOpOf classifies call as a mutex operation, with ok=false for
// everything else.
func lockOpOf(pass *Pass, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	var kind lockOpKind
	var read bool
	switch sel.Sel.Name {
	case "Lock":
		kind = opLock
	case "Unlock":
		kind = opUnlock
	case "RLock":
		kind, read = opLock, true
	case "RUnlock":
		kind, read = opUnlock, true
	default:
		return lockOp{}, false
	}
	s := pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return lockOp{}, false
	}
	t := s.Recv()
	for {
		p, isPtr := t.(*types.Pointer)
		if !isPtr {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return lockOp{}, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" || (obj.Name() != "Mutex" && obj.Name() != "RWMutex") {
		return lockOp{}, false
	}
	root := chainRoot(pass, sel.X)
	if root == nil {
		return lockOp{}, false // receiver reached through a call/index: no stable identity
	}
	key := lockKey{root: root, path: exprString(sel.X)}
	if read {
		key.path += "/R"
	}
	return lockOp{kind: kind, key: key, read: read, call: call}, true
}

// lockBaseName returns the final selector segment of the lock's path —
// "swapMu" for db.swapMu — used by the ordering rule.
func lockBaseName(k lockKey) string {
	path := strings.TrimSuffix(k.path, "/R")
	if i := strings.LastIndexByte(path, '.'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// pairKey returns the other-mode key of an RWMutex (read↔write), used
// by the self-deadlock rule.
func pairKey(k lockKey) lockKey {
	if strings.HasSuffix(k.path, "/R") {
		return lockKey{root: k.root, path: strings.TrimSuffix(k.path, "/R")}
	}
	return lockKey{root: k.root, path: k.path + "/R"}
}

// lockOpsIn collects the lock operations performed by node, in
// syntactic order, excluding nested function literals. RangeStmt nodes
// contribute nothing: the CFG places their X expression in the
// preceding block and their body statements in their own blocks, so
// scanning the whole RangeStmt here would count those operations
// twice.
func lockOpsIn(pass *Pass, node ast.Node) []lockOp {
	if _, ok := node.(*ast.RangeStmt); ok {
		return nil
	}
	var ops []lockOp
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if op, ok := lockOpOf(pass, call); ok {
				ops = append(ops, op)
			}
		}
		return true
	})
	return ops
}

// deferredUnlocksIn collects unlock operations a defer statement
// guarantees to run at exit — both `defer mu.Unlock()` and unlocks
// inside a deferred closure (`defer func() { mu.Unlock() }()`).
func deferredUnlocksIn(pass *Pass, d *ast.DeferStmt) []lockOp {
	var ops []lockOp
	ast.Inspect(d.Call, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op, ok := lockOpOf(pass, call); ok && op.kind == opUnlock {
				ops = append(ops, op)
			}
		}
		return true
	})
	return ops
}

type lockFact = map[lockKey]uint8

func lockPathBody(pass *Pass, body *ast.BlockStmt) {
	// Pre-scan (skipping nested closures, which are analyzed as their
	// own bodies): collect every lock key this body touches. Bodies
	// without lock operations need no CFG, and the entry fact seeds
	// every key as unlocked — with MeetUnion a missing key is ⊥
	// ("unbound"), which would let a branch that never touched the lock
	// vanish from the join instead of contributing its unlocked state.
	locksTaken := map[lockKey]bool{}
	allKeys := map[lockKey]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if op, ok := lockOpOf(pass, call); ok {
				allKeys[op.key] = true
				if op.kind == opLock {
					locksTaken[op.key] = true
				}
			}
		}
		return true
	})
	if len(allKeys) == 0 {
		return
	}
	entryFact := lockFact{}
	for k := range allKeys {
		entryFact[k] = lockU
	}

	g := NewCFG(body)
	transfer := func(b *Block, in lockFact) lockFact {
		out := cloneBits(in)
		for _, n := range b.Nodes {
			applyLockNode(pass, n, out, nil)
		}
		return out
	}
	in := Solve(g, Forward, entryFact, MeetUnion[lockKey], transfer, BitsEqual[lockKey])

	// Reporting pass: replay each reachable block from its in-fact with
	// the diagnostics callback armed, checking returns and the fall-off
	// end as they stream by. Panic exits are skipped: deferred unlocks
	// still run there, and flagging unwinding paths would just force
	// noise-suppressing allows on every assertion-style panic.
	reportAt := func(pos token.Pos, st lockFact, where string) {
		for key, bits := range st {
			if bits&lockL != 0 {
				pass.Reportf(pos,
					"%s leaves %s locked on some path: defer the Unlock right after the Lock so every exit releases it",
					where, strings.TrimSuffix(key.path, "/R")+lockMode(key))
			}
		}
	}
	for _, b := range g.Blocks {
		st, ok := in[b]
		if !ok {
			continue // unreachable
		}
		st = cloneBits(st)
		for _, n := range b.Nodes {
			if ret, isRet := n.(*ast.ReturnStmt); isRet {
				reportAt(ret.Pos(), st, "return")
			}
			applyLockNode(pass, n, st, func(op lockOp, bits uint8, deferred bool) {
				reportLockOp(pass, op, bits, deferred, st, locksTaken)
			})
		}
		// The fall-off end of the body is an implicit return.
		if !b.Live {
			continue
		}
		for _, s := range b.Succs {
			if s == g.Exit {
				if last := b.last(); last == nil || (!isReturn(last) && !isPanicNode(last)) {
					reportAt(body.Rbrace, st, "function end")
				}
			}
		}
	}
}

func lockMode(k lockKey) string {
	if strings.HasSuffix(k.path, "/R") {
		return " (read lock)"
	}
	return ""
}

func isReturn(n ast.Node) bool {
	_, ok := n.(*ast.ReturnStmt)
	return ok
}

func isPanicNode(n ast.Node) bool {
	s, ok := n.(ast.Stmt)
	return ok && isPanicStmt(s)
}

// applyLockNode applies node's lock effects to st in place. When check
// is non-nil it receives each operation with the state bits holding
// just before it, so the reporting pass sees exactly what the fixpoint
// saw.
func applyLockNode(pass *Pass, node ast.Node, st lockFact, check func(op lockOp, bits uint8, deferred bool)) {
	if d, ok := node.(*ast.DeferStmt); ok {
		for _, op := range deferredUnlocksIn(pass, d) {
			if check != nil {
				check(op, st[op.key], true)
			}
			// A deferred unlock makes the held lock exit-safe. Registered
			// while unlocked it still runs at exit, so D (rather than U)
			// also models the unusual defer-then-Lock order.
			st[op.key] = lockD
		}
		return
	}
	for _, op := range lockOpsIn(pass, node) {
		if check != nil {
			check(op, st[op.key], false)
		}
		switch op.kind {
		case opLock:
			st[op.key] = lockL
		case opUnlock:
			st[op.key] = lockU
		}
	}
}

// reportLockOp diagnoses one lock operation given the state bits
// before it.
func reportLockOp(pass *Pass, op lockOp, bits uint8, deferred bool, st lockFact, locksTaken map[lockKey]bool) {
	name := strings.TrimSuffix(op.key.path, "/R")
	switch op.kind {
	case opLock:
		if bits&(lockL|lockD) != 0 {
			pass.Reportf(op.call.Pos(),
				"a path reaches this %s with %s already held: double acquisition self-deadlocks; release first or restructure the branches",
				lockVerb(op), name)
		} else if other := st[pairKey(op.key)]; other&(lockL|lockD) != 0 {
			pass.Reportf(op.call.Pos(),
				"a path reaches this %s of %s while holding its %s: read and write sides of one RWMutex deadlock within a goroutine",
				lockVerb(op), name, otherMode(op))
		}
		if lockBaseName(op.key) == "swapMu" {
			for key, b := range st {
				if key != op.key && key != pairKey(op.key) && b&(lockL|lockD) != 0 {
					pass.Reportf(op.call.Pos(),
						"swapMu acquired while %s is held: swapMu is the outermost lock (Repartition/Update serialize on it before touching anything else); release %s first",
						strings.TrimSuffix(key.path, "/R"), strings.TrimSuffix(key.path, "/R"))
				}
			}
		}
	case opUnlock:
		if deferred {
			return // registration point; effects checked via lockD
		}
		if bits&lockD != 0 {
			pass.Reportf(op.call.Pos(),
				"%s unlocked here but a deferred Unlock is already pending: the deferred one will unlock an unlocked mutex at exit (runtime fatal)",
				name)
		} else if bits == lockU && locksTaken[op.key] {
			pass.Reportf(op.call.Pos(),
				"a path reaches this Unlock of %s without the lock held: unlocking an unlocked mutex is a runtime fatal; make every path Lock before this point",
				name)
		}
	}
}

func lockVerb(op lockOp) string {
	if op.read {
		return "RLock"
	}
	return "Lock"
}

func otherMode(op lockOp) string {
	if op.read {
		return "write lock"
	}
	return "read lock"
}
