package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// GenSwap enforces the generation-snapshot discipline around the
// cluster's hot-swapped state (PR 3/PR 5's epoch machinery): the
// immutable generation behind an atomic.Pointer must be loaded exactly
// once per request scope and threaded to everything that needs it.
// Loading twice can straddle a Repartition/Update swap and mix two
// generations inside one query (the Definition 1 consistency argument
// assumes a single coherent fragment view per execution); stashing a
// snapshot in a struct field or global caches it across swap
// boundaries, resurrecting exactly the stale-read class the epoch
// machinery makes structurally impossible.
//
// Flagged:
//   - two or more generation loads rooted at the same receiver in one
//     function scope — both direct x.ptr.Load() calls and calls to
//     load-like wrappers (single-return functions whose result derives
//     from a generation load, e.g. DB.load, DB.store, DB.Epoch);
//   - assigning a loaded generation (or anything derived from one in
//     the same expression) to a struct field or package-level variable.
//
// Closures count as their own scope: a goroutine body taking its own
// snapshot is a new request scope by construction. The exception is a
// worker closure passed directly to a pool runner (Pool.Do,
// Cluster.Parallel*): pool workers evaluate one query against one
// fragment view, so they must inherit the spawning scope's snapshot —
// a load inside the worker can straddle a swap mid-query and hand
// sibling workers two different generations.
//
// Methods whose body does not match the wrapper shape but that still
// resolve epoch-pinned state (e.g. the RPC worker's generation lookup,
// which reads a mutex-guarded epoch map instead of an atomic pointer)
// opt in with a `//gstored:genaccessor` doc-comment directive: calls to
// a marked method count as generation loads at their call sites, and
// the wrapper fixpoint propagates through functions built on them.
var GenSwap = &Analyzer{
	Name: "genswap",
	Doc:  "flags double atomic.Pointer generation loads per scope and snapshots cached across swap boundaries",
	Run:  runGenSwap,
}

func runGenSwap(pass *Pass) error {
	loaders := findLoaderFuncs(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				checkGenScopes(pass, fn, fn.Body, loaders)
			}
		}
	}
	return nil
}

// isAtomicPointerLoad reports whether call is x.Load() on a
// sync/atomic.Pointer[T] value, returning the receiver expression.
func isAtomicPointerLoad(pass *Pass, call *ast.CallExpr) (recv ast.Expr, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" {
		return nil, false
	}
	s := pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return nil, false
	}
	t := s.Recv()
	for {
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	obj := named.Obj()
	return sel.X, obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Pointer"
}

// chainRoot resolves the root variable object of a selector chain like
// db.state or (&db).state; nil when the chain passes through calls,
// indexing, or anything else that breaks the "same pointer" identity.
func chainRoot(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// findLoaderFuncs computes the package's load-like wrappers to a
// fixpoint: functions whose body is a single return whose expression
// performs a generation load rooted at the receiver (directly or via
// another wrapper). Calls to these count as generation loads at their
// call sites.
func findLoaderFuncs(pass *Pass) map[*types.Func]bool {
	loaders := map[*types.Func]bool{}
	// Directive-marked methods seed the fixpoint: they resolve
	// epoch-pinned state through machinery the structural wrapper
	// detection cannot see (mutex-guarded epoch maps, RPC accessors).
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil || fn.Recv == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				if strings.TrimSpace(c.Text) == "//gstored:genaccessor" {
					if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
						loaders[obj] = true
					}
				}
			}
		}
	}
	for {
		grew := false
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || len(fn.Body.List) != 1 || fn.Recv == nil {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
				if !ok || loaders[obj] {
					continue
				}
				ret, ok := fn.Body.List[0].(*ast.ReturnStmt)
				if !ok {
					continue
				}
				recvObj := receiverObj(pass, fn)
				if recvObj == nil {
					continue
				}
				found := false
				for _, res := range ret.Results {
					ast.Inspect(res, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok || found {
							return !found
						}
						if recv, ok := isAtomicPointerLoad(pass, call); ok && chainRoot(pass, recv) == recvObj {
							found = true
						} else if callee := calleeFunc(pass, call); callee != nil && loaders[callee] {
							if sel, ok := call.Fun.(*ast.SelectorExpr); ok && chainRoot(pass, sel.X) == recvObj {
								found = true
							}
						}
						return !found
					})
				}
				if found {
					loaders[obj] = true
					grew = true
				}
			}
		}
		if !grew {
			return loaders
		}
	}
}

func receiverObj(pass *Pass, fn *ast.FuncDecl) types.Object {
	if fn.Recv == nil || len(fn.Recv.List) != 1 || len(fn.Recv.List[0].Names) != 1 {
		return nil
	}
	return pass.TypesInfo.Defs[fn.Recv.List[0].Names[0]]
}

// genLoad is one generation-load event in a scope.
type genLoad struct {
	call *ast.CallExpr
	root types.Object
	what string // rendered receiver for the message, e.g. "db.state.Load" or "db.load"
}

// checkGenScopes walks one function scope (recursing into closures as
// fresh scopes), counting generation loads per root object and flagging
// snapshot stores into fields or globals.
func checkGenScopes(pass *Pass, owner ast.Node, body *ast.BlockStmt, loaders map[*types.Func]bool) {
	var loads []genLoad
	selfLoader := false
	if fn, ok := owner.(*ast.FuncDecl); ok {
		if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok && loaders[obj] {
			selfLoader = true
		}
	}
	workerLits := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if workerLits[x] {
				checkPoolWorkerLoads(pass, x, loaders)
			} else {
				checkGenScopes(pass, x, x.Body, loaders)
			}
			return false
		case *ast.CallExpr:
			// Pre-order: a pool-runner call is visited before its FuncLit
			// arguments, so marking them here steers the FuncLit case above.
			for _, lit := range poolWorkerArgs(pass, x) {
				workerLits[lit] = true
			}
			if recv, ok := isAtomicPointerLoad(pass, x); ok {
				if root := chainRoot(pass, recv); root != nil {
					loads = append(loads, genLoad{call: x, root: root, what: exprString(recv) + ".Load"})
				}
				return true
			}
			if callee := calleeFunc(pass, x); callee != nil && loaders[callee] {
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
					if root := chainRoot(pass, sel.X); root != nil {
						loads = append(loads, genLoad{call: x, root: root, what: exprString(sel.X) + "." + callee.Name()})
					}
				}
			}
		case *ast.AssignStmt:
			checkGenStore(pass, x, loaders)
		}
		return true
	})
	if selfLoader {
		return
	}
	seen := map[types.Object]genLoad{}
	for _, l := range loads {
		if first, ok := seen[l.root]; ok {
			pass.Reportf(l.call.Pos(),
				"generation loaded more than once in this scope (%s after %s): take one snapshot per request and thread it, or a swap landing in between hands the scope two different generations",
				l.what, first.what)
			continue
		}
		seen[l.root] = l
	}
}

// checkPoolWorkerLoads flags generation loads inside a pool-worker
// closure: workers inherit the spawning scope's snapshot. Nested
// closures that are not themselves pool workers stay fresh scopes
// (e.g. a callback constructed inside the worker for later use).
func checkPoolWorkerLoads(pass *Pass, lit *ast.FuncLit, loaders map[*types.Func]bool) {
	report := func(call *ast.CallExpr, what string) {
		pass.Reportf(call.Pos(),
			"generation loaded inside pool worker (%s): workers inherit one snapshot from the spawning scope, or a swap mid-query hands sibling workers different generations", what)
	}
	workerLits := map[*ast.FuncLit]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if workerLits[x] {
				checkPoolWorkerLoads(pass, x, loaders)
			} else {
				checkGenScopes(pass, x, x.Body, loaders)
			}
			return false
		case *ast.CallExpr:
			for _, inner := range poolWorkerArgs(pass, x) {
				workerLits[inner] = true
			}
			if recv, ok := isAtomicPointerLoad(pass, x); ok {
				if chainRoot(pass, recv) != nil {
					report(x, exprString(recv)+".Load")
				}
				return true
			}
			if callee := calleeFunc(pass, x); callee != nil && loaders[callee] {
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok && chainRoot(pass, sel.X) != nil {
					report(x, exprString(sel.X)+"."+callee.Name())
				}
			}
		case *ast.AssignStmt:
			checkGenStore(pass, x, loaders)
		}
		return true
	})
}

// checkGenStore flags assignments that cache a generation snapshot
// beyond the request scope: LHS is a field selector or a package-level
// variable and RHS derives from a generation load.
func checkGenStore(pass *Pass, as *ast.AssignStmt, loaders map[*types.Func]bool) {
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) && len(as.Rhs) != 1 {
			break
		}
		rhs := as.Rhs[min(i, len(as.Rhs)-1)]
		if !exprContainsGenLoad(pass, rhs, loaders) {
			continue
		}
		switch l := lhs.(type) {
		case *ast.SelectorExpr:
			pass.Reportf(as.Pos(),
				"generation snapshot stored into field %s: caching a generation across a swap boundary resurrects stale reads; store the epoch or re-load per request instead",
				exprString(l))
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[l]; obj != nil && obj.Parent() == pass.Pkg.Scope() {
				pass.Reportf(as.Pos(),
					"generation snapshot stored into package-level variable %s: caching a generation across a swap boundary resurrects stale reads",
					l.Name)
			}
		}
	}
}

func exprContainsGenLoad(pass *Pass, e ast.Expr, loaders map[*types.Func]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if fl, ok := n.(*ast.FuncLit); ok {
			_ = fl
			return false // a closure capturing a load is its own scope
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := isAtomicPointerLoad(pass, call); ok {
			found = true
			return false
		}
		if callee := calleeFunc(pass, call); callee != nil && loaders[callee] {
			found = true
			return false
		}
		return true
	})
	return found
}

// calleeFunc resolves the *types.Func a call statically invokes, nil
// for indirect calls and conversions.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}
