package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// MetricLabel guards /metrics cardinality: every label value emitted in
// Prometheus text exposition must come from a declared fixed set, the
// package-level `var <x>Names = [...]string{...}` arrays next to the
// histogram declarations. A label interpolated from a query string, an
// error message, or any other unbounded input mints a new time series
// per distinct value and melts the scrape.
//
// A label value is accepted when it is
//   - a string literal that is a member of some declared set,
//   - an index into a declared set (stageNames[i]),
//   - the range variable of a loop over a declared set,
//   - a named constant whose value is a member of some declared set.
//
// Sinks checked:
//   - the `label:` field of *Histogram struct literals,
//   - Printf-family format strings containing `{name=%q}` or
//     `{name=%s}`: the argument feeding that verb is the label value.
//
// The bucket label `le` and dynamic label *names* (`{%s=...}`) are
// exempt — `le` is bounded by the bucket layout and a %s label name is
// the histogram's own declared label.
var MetricLabel = &Analyzer{
	Name: "metriclabel",
	Doc:  "flags metric label values not drawn from a declared fixed label-name set",
	Run:  runMetricLabel,
}

var labelVerbRE = regexp.MustCompile(`\{([A-Za-z_][A-Za-z0-9_]*)=%[qs]\}`)

func runMetricLabel(pass *Pass) error {
	sets := declaredLabelSets(pass)
	if len(sets) == 0 {
		return nil // package declares no label sets; nothing to enforce
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CompositeLit:
				checkLabelField(pass, sets, x)
			case *ast.CallExpr:
				checkLabelFormat(pass, sets, x)
			}
			return true
		})
	}
	return nil
}

// declaredLabelSets finds package-level `var <x>Names = [...]string{...}`
// (array or slice, all elements string literals) and returns each var's
// object mapped to its member values.
func declaredLabelSets(pass *Pass) map[types.Object]map[string]bool {
	sets := map[types.Object]map[string]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || len(vs.Values) != 1 {
					continue
				}
				if !strings.HasSuffix(vs.Names[0].Name, "Names") {
					continue
				}
				cl, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				members := map[string]bool{}
				allLit := len(cl.Elts) > 0
				for _, elt := range cl.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						elt = kv.Value // [numOutcomes]string{outcomeHit: "hit", ...}
					}
					lit, ok := elt.(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						allLit = false
						break
					}
					s, err := strconv.Unquote(lit.Value)
					if err != nil {
						allLit = false
						break
					}
					members[s] = true
				}
				if allLit {
					sets[pass.TypesInfo.Defs[vs.Names[0]]] = members
				}
			}
		}
	}
	return sets
}

// checkLabelField flags `label:` fields of *Histogram composite
// literals whose value is not drawn from a declared set.
func checkLabelField(pass *Pass, sets map[types.Object]map[string]bool, cl *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[cl]
	if !ok {
		return
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !strings.Contains(named.Obj().Name(), "Histogram") {
		return
	}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || !strings.EqualFold(key.Name, "label") {
			continue
		}
		if why := labelValueOK(pass, sets, kv.Value); why != "" {
			pass.Reportf(kv.Value.Pos(), "metric label value %s: %s — draw it from a declared *Names set to keep /metrics cardinality bounded",
				exprString(kv.Value), why)
		}
	}
}

// checkLabelFormat flags Printf-family calls whose format string embeds
// `{name=%q}` / `{name=%s}` labels fed by unbounded arguments.
func checkLabelFormat(pass *Pass, sets map[types.Object]map[string]bool, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	var name string
	if ok {
		name = sel.Sel.Name
	} else if id, isID := call.Fun.(*ast.Ident); isID {
		name = id.Name
	}
	if !strings.HasSuffix(name, "printf") && !strings.HasSuffix(name, "Printf") &&
		name != "Sprintf" && name != "Fprintf" {
		return
	}
	// Locate the format string: first string-literal argument.
	fmtIdx := -1
	var format string
	for i, arg := range call.Args {
		if lit, ok := arg.(*ast.BasicLit); ok && lit.Kind == token.STRING {
			if s, err := strconv.Unquote(lit.Value); err == nil {
				fmtIdx, format = i, s
				break
			}
		}
	}
	if fmtIdx < 0 {
		return
	}
	for _, m := range labelVerbRE.FindAllStringSubmatchIndex(format, -1) {
		labelName := format[m[2]:m[3]]
		if labelName == "le" {
			continue
		}
		// Which verb index feeds this label value? Count verbs before the
		// %q/%s inside the match.
		verbPos := strings.Index(format[m[0]:m[1]], "%") + m[0]
		argIdx := fmtIdx + 1 + countVerbs(format[:verbPos])
		if argIdx >= len(call.Args) {
			continue
		}
		if why := labelValueOK(pass, sets, call.Args[argIdx]); why != "" {
			pass.Reportf(call.Args[argIdx].Pos(), "metric label %s value %s: %s — draw it from a declared *Names set to keep /metrics cardinality bounded",
				labelName, exprString(call.Args[argIdx]), why)
		}
	}
}

// countVerbs counts formatting verbs (excluding %%) in s.
func countVerbs(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] != '%' || i+1 >= len(s) {
			continue
		}
		if s[i+1] == '%' {
			i++
			continue
		}
		n++
	}
	return n
}

// labelValueOK returns "" when e is drawn from a declared set, else a
// short reason why it is not.
func labelValueOK(pass *Pass, sets map[types.Object]map[string]bool, e ast.Expr) string {
	e = ast.Unparen(e)
	// Constant string (literal or named const): member of some set?
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		s, err := strconv.Unquote(tv.Value.ExactString())
		if err == nil {
			for _, members := range sets {
				if members[s] {
					return ""
				}
			}
			return "literal " + strconv.Quote(s) + " is not a member of any declared label set"
		}
	}
	switch x := e.(type) {
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if _, isSet := sets[pass.TypesInfo.Uses[id]]; isSet {
				return ""
			}
		}
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[x]
		if obj != nil && rangesOverSet(pass, sets, obj) {
			return ""
		}
	}
	return "value is not provably bounded"
}

// rangesOverSet reports whether obj is defined as the value variable of
// a range loop over a declared set, anywhere in the package.
func rangesOverSet(pass *Pass, sets map[types.Object]map[string]bool, obj types.Object) bool {
	found := false
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if found {
				return false
			}
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			for _, v := range []ast.Expr{rs.Key, rs.Value} {
				id, ok := v.(*ast.Ident)
				if !ok || pass.TypesInfo.Defs[id] != obj {
					continue
				}
				if setID, ok := ast.Unparen(rs.X).(*ast.Ident); ok {
					if _, isSet := sets[pass.TypesInfo.Uses[setID]]; isSet {
						found = true
					}
				}
			}
			return true
		})
	}
	return found
}
