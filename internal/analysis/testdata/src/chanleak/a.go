// Package chanleak is golden-file input: goroutine channel waits must
// be cancellable — select with ctx.Done()/a close signal/default, a
// close-signal receive, or an explicitly bounded channel.
package chanleak

import "context"

// Worker mirrors the scheduler shape: jobs plus a quit channel.
type Worker struct {
	jobs chan int
	quit chan struct{}
}

func sink(int) {}

// bareSend: the receiver may be gone.
func bareSend(ch chan int) {
	go func() {
		ch <- 1 // want `goroutine sends on ch with no cancellation path`
	}()
}

// bareRecv: the sender may be gone.
func bareRecv(ch chan int) {
	go func() {
		v := <-ch // want `goroutine receives from ch with no cancellation path`
		sink(v)
	}()
}

// bareRange: only a close ends the loop.
func bareRange(ch chan int) {
	go func() {
		for v := range ch { // want `goroutine ranges over ch`
			sink(v)
		}
	}()
}

// ctxSelect: the send has a cancellation arm.
func ctxSelect(ctx context.Context, ch chan int) {
	go func() {
		select {
		case ch <- 1:
		case <-ctx.Done():
		}
	}()
}

// defaultSelect: never blocks.
func defaultSelect(ch chan int) {
	go func() {
		select {
		case ch <- 1:
		default:
		}
	}()
}

// quitSelect: a struct{}-channel receive case is a close signal.
func (w *Worker) quitSelect() {
	go func() {
		for {
			select {
			case j := <-w.jobs:
				sink(j)
			case <-w.quit:
				return
			}
		}
	}()
}

// dataOnlySelect: two data channels, no way out.
func dataOnlySelect(a, b chan int) {
	go func() {
		select { // want `select with no ctx.Done\(\), close-signal, or default case`
		case v := <-a:
			sink(v)
		case v := <-b:
			sink(v)
		}
	}()
}

// boundedChan: every make site passes a capacity — a counted protocol.
func boundedChan() {
	buf := make(chan int, 8)
	go func() {
		buf <- 1
	}()
	sink(<-buf)
}

// semaphore: capacity from an expression still counts as bounded (the
// pool's width-limiting semaphore shape).
func semaphore(workers int) {
	sem := make(chan struct{}, workers-1)
	go func() {
		sem <- struct{}{}
	}()
	<-sem
}

// signalRecv: receiving from a struct{} channel IS the cancellation
// wait.
func signalRecv(done chan struct{}) {
	go func() {
		<-done
	}()
}

// ctxDoneRecv: a bare ctx.Done() receive is a cancellation wait.
func ctxDoneRecv(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// run launches the named worker method: its body is held to the same
// rule one level deep.
func (w *Worker) run() {
	go w.loop()
}

func (w *Worker) loop() {
	for {
		v := <-w.jobs // want `goroutine receives from w.jobs with no cancellation path`
		sink(v)
	}
}

// mixedOrigin: assigned unbuffered somewhere, so capacity is not
// guaranteed.
func mixedOrigin(flip bool) {
	ch := make(chan int, 4)
	if flip {
		ch = make(chan int)
	}
	go func() {
		ch <- 1 // want `goroutine sends on ch with no cancellation path`
	}()
	sink(<-ch)
}
