// Package looseerr is golden-file input: no silently discarded errors.
package looseerr

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func drops(f *os.File) {
	f.Close() // want `error return of \(\*os.File\)\.Close is silently discarded`
}

func dropsTwoResults(f *os.File) {
	f.WriteString("x") // want `error return of \(\*os.File\)\.WriteString is silently discarded`
}

func goDrop(f *os.File) {
	go f.Sync() // want `error return of \(\*os.File\)\.Sync is silently discarded`
}

// deferClose is exempt: best-effort cleanup by convention.
func deferClose(f *os.File) {
	defer f.Close()
}

// explicitDrop is the sanctioned idiom: the discard is visible.
func explicitDrop(f *os.File) {
	_ = f.Close()
}

// exempted callees: fmt printers, strings.Builder, bytes.Buffer.
func exempted(sb *strings.Builder, buf *bytes.Buffer) {
	fmt.Println("x")
	fmt.Fprintf(sb, "x%d", 1)
	sb.WriteString("x")
	buf.WriteByte('x')
}

// handled errors are obviously fine.
func handled(f *os.File) error {
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

// errSink gives the path-sensitive cases something error-typed to bind.
func produce() (int, error) { return 0, nil }
func errOnly() error        { return nil }
func sinkInt(int)           {}

// readOnOnePathOnly: the early return is only reachable with err
// unchecked — the laundering shape the statement check cannot see.
func readOnOnePathOnly(stop bool) error {
	n, err := produce()
	if stop {
		return nil // want `error err from the call at line \d+ is unchecked on a path reaching this return`
	}
	if err != nil {
		return err
	}
	sinkInt(n)
	return nil
}

// checkedThenReturned: the canonical shape stays clean.
func checkedThenReturned() error {
	n, err := produce()
	if err != nil {
		return err
	}
	sinkInt(n)
	return nil
}

// returnedDirectly: handing the error to the caller consumes it.
func returnedDirectly() error {
	err := errOnly()
	return err
}

// fallOffUnchecked: only one branch looks at err.
func fallOffUnchecked(deep bool) {
	n, err := produce()
	if deep {
		if err != nil {
			sinkInt(0)
		}
	}
	sinkInt(n)
} // want `error err from the call at line \d+ is unchecked on a path reaching the end of the function`

// overwriteUnread: the first error is lost before any path reads it.
func overwriteUnread() error {
	_, err := produce()
	err = errOnly() // want `error err from the call at line \d+ is overwritten before any path reads it`
	return err
}

// reassignAfterRead: reusing the variable after checking it is the
// idiom.
func reassignAfterRead() error {
	_, err := produce()
	if err != nil {
		return err
	}
	err = errOnly()
	return err
}

// closureRead: a capture may run on any schedule and counts as a read.
func closureRead() func() error {
	_, err := produce()
	return func() error { return err }
}

// deferredRead: deferred closures are must-run readers.
func deferredRead() {
	_, err := produce()
	defer func() {
		if err != nil {
			sinkInt(1)
		}
	}()
	sinkInt(0)
}

// loopRetry: reassignment each iteration after the previous value was
// read stays clean.
func loopRetry() error {
	var err error
	for i := 0; i < 3; i++ {
		err = errOnly()
		if err == nil {
			break
		}
	}
	return err
}
