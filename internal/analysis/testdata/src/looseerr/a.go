// Package looseerr is golden-file input: no silently discarded errors.
package looseerr

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func drops(f *os.File) {
	f.Close() // want `error return of \(\*os.File\)\.Close is silently discarded`
}

func dropsTwoResults(f *os.File) {
	f.WriteString("x") // want `error return of \(\*os.File\)\.WriteString is silently discarded`
}

func goDrop(f *os.File) {
	go f.Sync() // want `error return of \(\*os.File\)\.Sync is silently discarded`
}

// deferClose is exempt: best-effort cleanup by convention.
func deferClose(f *os.File) {
	defer f.Close()
}

// explicitDrop is the sanctioned idiom: the discard is visible.
func explicitDrop(f *os.File) {
	_ = f.Close()
}

// exempted callees: fmt printers, strings.Builder, bytes.Buffer.
func exempted(sb *strings.Builder, buf *bytes.Buffer) {
	fmt.Println("x")
	fmt.Fprintf(sb, "x%d", 1)
	sb.WriteString("x")
	buf.WriteByte('x')
}

// handled errors are obviously fine.
func handled(f *os.File) error {
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}
