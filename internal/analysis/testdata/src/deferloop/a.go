// Package deferloop is golden-file input: defer inside a loop body
// accumulates until function exit.
package deferloop

type resource struct{}

func open() *resource      { return &resource{} }
func (r *resource) Close() {}

// rangeDefer: one pending Close per iteration.
func rangeDefer(names []string) {
	for range names {
		r := open()
		defer r.Close() // want `defer in a loop runs at function exit`
	}
}

// forDefer: same for a counted loop.
func forDefer(n int) {
	for i := 0; i < n; i++ {
		r := open()
		defer r.Close() // want `defer in a loop runs at function exit`
	}
}

// nestedLoops: still one report per defer statement.
func nestedLoops(n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			r := open()
			defer r.Close() // want `defer in a loop runs at function exit`
		}
	}
}

// iife: wrapping the iteration in a function literal scopes the defer
// to the iteration — the sanctioned fix.
func iife(names []string) {
	for range names {
		func() {
			r := open()
			defer r.Close()
			work()
		}()
	}
}

// goroutinePerIteration: the literal resets the loop depth.
func goroutinePerIteration(n int) {
	for i := 0; i < n; i++ {
		go func() {
			r := open()
			defer r.Close()
			work()
		}()
	}
}

// topLevel: defer outside any loop is the idiom.
func topLevel() {
	r := open()
	defer r.Close()
	for i := 0; i < 3; i++ {
		work()
	}
}

func work() {}
