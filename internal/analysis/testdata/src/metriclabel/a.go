// Package metriclabel is golden-file input: label values must come
// from a declared fixed set.
package metriclabel

import (
	"fmt"
	"io"
)

// outcomeNames is a declared label set: package-level, *Names suffix,
// all-literal members.
var outcomeNames = [...]string{"hit", "miss", "error"}

type labeledHistogram struct {
	label string
	count int
}

func boundedEmission(w io.Writer) {
	hs := make([]labeledHistogram, 0, len(outcomeNames))
	for i := range outcomeNames {
		hs = append(hs, labeledHistogram{label: outcomeNames[i]})
	}
	for _, name := range outcomeNames {
		fmt.Fprintf(w, "queries_total{outcome=%q} %d\n", name, 1)
	}
	_ = labeledHistogram{label: "hit"}                   // literal member of the set
	fmt.Fprintf(w, "d_bucket{le=%q} %d\n", "0.5", 1)     // le is bounded by the bucket layout
	fmt.Fprintf(w, "d_bucket{%s=%q} 1\n", "outcome", "") // dynamic label *name*: the set is the histogram's own
	_ = hs
}

func unboundedEmission(w io.Writer, dyn string) {
	_ = labeledHistogram{label: dyn}                      // want `metric label value dyn`
	fmt.Fprintf(w, "queries_total{outcome=%q} 1\n", dyn)  // want `metric label outcome value dyn`
	_ = labeledHistogram{label: "unknown"}                // want `not a member of any declared label set`
	fmt.Fprintf(w, "queries_total{outcome=%q} 1\n", "xx") // want `not a member of any declared label set`
}
