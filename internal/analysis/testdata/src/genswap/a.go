// Package genswap is golden-file input: positives and negatives for
// the one-generation-snapshot-per-scope rule.
package genswap

import "sync/atomic"

type state struct {
	epoch uint64
}

type DB struct {
	state atomic.Pointer[state]
}

// load is a load-like wrapper: calls to it count as generation loads.
func (db *DB) load() *state { return db.state.Load() }

// Epoch is a transitive wrapper (load via load).
func (db *DB) Epoch() uint64 { return db.load().epoch }

func doubleDirect(db *DB) {
	a := db.state.Load()
	b := db.state.Load() // want `generation loaded more than once in this scope`
	_, _ = a, b
}

func doubleViaWrappers(db *DB) {
	s := db.load()
	e := db.Epoch() // want `generation loaded more than once in this scope`
	_, _ = s, e
}

func mixedDirectAndWrapper(db *DB) {
	s := db.state.Load()
	t := db.load() // want `generation loaded more than once in this scope`
	_, _ = s, t
}

// singleSnapshot is the sanctioned shape: one load, threaded onward.
func singleSnapshot(db *DB) uint64 {
	s := db.load()
	return use(s) + use(s)
}

func use(s *state) uint64 { return s.epoch }

// closuresAreOwnScopes: each goroutine body takes its own snapshot —
// a fresh request scope by construction, not a double load.
func closuresAreOwnScopes(db *DB) {
	f := func() *state { return db.load() }
	g := func() *state { return db.load() }
	_, _ = f, g
}

// twoDBsAreTwoRoots: loads rooted at different variables are distinct
// snapshots of distinct clusters.
func twoDBsAreTwoRoots(a, b *DB) {
	s := a.load()
	t := b.load()
	_, _ = s, t
}

type holder struct {
	cached *state
}

func (h *holder) cacheInField(db *DB) {
	h.cached = db.load() // want `generation snapshot stored into field`
}

var cachedGlobal *state

func cacheInGlobal(db *DB) {
	cachedGlobal = db.load() // want `generation snapshot stored into package-level variable`
}

// Pool mimics the bounded evaluation pool: Do runs worker closures
// concurrently. Detection is structural (method Do on type Pool), so
// the stub needs no imports.
type Pool struct{}

func (p *Pool) Do(tasks ...func()) {
	for _, t := range tasks {
		t()
	}
}

// Site and Cluster mimic the cluster fan-out helpers built on the pool.
type Site struct{}

type Cluster struct {
	Sites []*Site
}

func (c *Cluster) ParallelPool(p *Pool, fn func(s *Site)) {
	for _, s := range c.Sites {
		fn(s)
	}
}

// workerLoadsGeneration: a pool worker taking its own snapshot can
// straddle a swap mid-query — workers inherit the spawning scope's.
func workerLoadsGeneration(db *DB, p *Pool) {
	p.Do(func() {
		s := db.load() // want `generation loaded inside pool worker`
		_ = s
	})
}

func workerLoadsDirect(db *DB, p *Pool) {
	p.Do(func() {
		s := db.state.Load() // want `generation loaded inside pool worker`
		_ = s
	})
}

func clusterWorkerLoads(db *DB, c *Cluster, p *Pool) {
	c.ParallelPool(p, func(s *Site) {
		e := db.Epoch() // want `generation loaded inside pool worker`
		_, _ = s, e
	})
}

// workerInheritsSnapshot is the sanctioned shape: one load in the
// spawning scope, captured by the workers.
func workerInheritsSnapshot(db *DB, p *Pool) {
	snap := db.load()
	p.Do(func() { _ = use(snap) }, func() { _ = use(snap) })
}

// goroutineInsideWorkerIsFreshScope: a nested closure that is not
// itself a pool worker stays its own request scope.
func goroutineInsideWorkerIsFreshScope(db *DB, p *Pool) {
	p.Do(func() {
		cb := func() *state { return db.load() }
		_ = cb
	})
}

// prebuiltTasksAreOwnScopes: closures not passed directly as pool
// arguments keep the fresh-scope reading (the analyzer is structural;
// indirection through a slice is out of scope).
func prebuiltTasksAreOwnScopes(db *DB, p *Pool) {
	tasks := []func(){func() { _ = db.load() }}
	p.Do(tasks...)
}

// Worker mimics the RPC worker host: generations live in a
// mutex-guarded epoch map, not an atomic pointer, so the structural
// wrapper detection cannot see the accessor. The directive opts it in.
type Worker struct {
	locked bool // stands in for a sync.Mutex: keeps the stub import-free
	gens   map[uint64]*state
}

// generation resolves the fragment view pinned to one epoch.
//
//gstored:genaccessor
func (w *Worker) generation(epoch uint64) *state {
	w.locked = true
	defer func() { w.locked = false }()
	return w.gens[epoch]
}

// handlerSnapshotsTwoEpochs: a handler resolving the generation twice
// can serve half a request against the pre-swap view and half against
// the post-swap view — exactly the straddle the two-phase broadcast
// exists to prevent.
func handlerSnapshotsTwoEpochs(w *Worker, epoch uint64) {
	a := w.generation(epoch)
	b := w.generation(epoch) // want `generation loaded more than once in this scope`
	_, _ = a, b
}

// handlerSingleSnapshot is the sanctioned shape: resolve once, thread
// the handle through the whole request.
func handlerSingleSnapshot(w *Worker, epoch uint64) uint64 {
	s := w.generation(epoch)
	return use(s) + use(s)
}

// directiveSeedsWrapperFixpoint: a wrapper built on a directive-marked
// accessor counts as a loader too, so mixing it with the accessor in
// one scope is still a double snapshot.
func (w *Worker) committed() *state { return w.generation(0) }

func directiveMixedWithWrapper(w *Worker) {
	a := w.generation(1)
	b := w.committed() // want `generation loaded more than once in this scope`
	_, _ = a, b
}
