// Package genswap is golden-file input: positives and negatives for
// the one-generation-snapshot-per-scope rule.
package genswap

import "sync/atomic"

type state struct {
	epoch uint64
}

type DB struct {
	state atomic.Pointer[state]
}

// load is a load-like wrapper: calls to it count as generation loads.
func (db *DB) load() *state { return db.state.Load() }

// Epoch is a transitive wrapper (load via load).
func (db *DB) Epoch() uint64 { return db.load().epoch }

func doubleDirect(db *DB) {
	a := db.state.Load()
	b := db.state.Load() // want `generation loaded more than once in this scope`
	_, _ = a, b
}

func doubleViaWrappers(db *DB) {
	s := db.load()
	e := db.Epoch() // want `generation loaded more than once in this scope`
	_, _ = s, e
}

func mixedDirectAndWrapper(db *DB) {
	s := db.state.Load()
	t := db.load() // want `generation loaded more than once in this scope`
	_, _ = s, t
}

// singleSnapshot is the sanctioned shape: one load, threaded onward.
func singleSnapshot(db *DB) uint64 {
	s := db.load()
	return use(s) + use(s)
}

func use(s *state) uint64 { return s.epoch }

// closuresAreOwnScopes: each goroutine body takes its own snapshot —
// a fresh request scope by construction, not a double load.
func closuresAreOwnScopes(db *DB) {
	f := func() *state { return db.load() }
	g := func() *state { return db.load() }
	_, _ = f, g
}

// twoDBsAreTwoRoots: loads rooted at different variables are distinct
// snapshots of distinct clusters.
func twoDBsAreTwoRoots(a, b *DB) {
	s := a.load()
	t := b.load()
	_, _ = s, t
}

type holder struct {
	cached *state
}

func (h *holder) cacheInField(db *DB) {
	h.cached = db.load() // want `generation snapshot stored into field`
}

var cachedGlobal *state

func cacheInGlobal(db *DB) {
	cachedGlobal = db.load() // want `generation snapshot stored into package-level variable`
}
