// Package lockpath is golden-file input: every Lock reaches an Unlock
// on every path, defer is the canonical form, and swapMu is acquired
// outermost.
package lockpath

import (
	"errors"
	"sync"
)

var errBoom = errors.New("boom")

// DB mirrors the engine's lock layout: swapMu serializes swaps and is
// the outermost lock; mu guards incidental state.
type DB struct {
	mu     sync.Mutex
	swapMu sync.Mutex
	rw     sync.RWMutex
	n      int
}

// canonical: Lock then defer Unlock.
func (d *DB) canonical() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

// straightLine: explicit Unlock before the only return is fine.
func (d *DB) straightLine() int {
	d.mu.Lock()
	n := d.n
	d.mu.Unlock()
	return n
}

// earlyReturnHolds: the error path returns with the lock held.
func (d *DB) earlyReturnHolds(fail bool) error {
	d.mu.Lock()
	if fail {
		return errBoom // want `return leaves d.mu locked on some path`
	}
	d.mu.Unlock()
	return nil
}

// fallOffHolds: falling off the end of the function holds the lock.
func (d *DB) fallOffHolds() {
	d.mu.Lock()
	d.n++
} // want `function end leaves d.mu locked on some path`

// bothBranchesUnlock: releasing on each branch is path-correct without
// a defer.
func (d *DB) bothBranchesUnlock(flip bool) {
	d.mu.Lock()
	if flip {
		d.n++
		d.mu.Unlock()
	} else {
		d.mu.Unlock()
	}
}

// doubleLock: a path reaches the second Lock with the first held.
func (d *DB) doubleLock(again bool) {
	d.mu.Lock()
	if again {
		d.mu.Lock() // want `already held: double acquisition self-deadlocks`
	}
	d.mu.Unlock()
}

// loopLock: one Lock/Unlock pair per iteration converges to unlocked
// at the loop head.
func (d *DB) loopLock(n int) {
	for i := 0; i < n; i++ {
		d.mu.Lock()
		d.n++
		d.mu.Unlock()
	}
}

// lockInLoopNoUnlock: the back edge re-locks an already-held mutex.
func (d *DB) lockInLoopNoUnlock() {
	for {
		d.mu.Lock() // want `already held: double acquisition self-deadlocks`
		d.n++
	}
}

// unlockAfterDeferred: the deferred Unlock will fire on an already
// unlocked mutex.
func (d *DB) unlockAfterDeferred() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.n++
	d.mu.Unlock() // want `deferred Unlock is already pending`
}

// doubleUnlock: the second Unlock fires unlocked on every path.
func (d *DB) doubleUnlock() {
	d.mu.Lock()
	d.mu.Unlock()
	d.mu.Unlock() // want `without the lock held`
}

// callerLocked: bodies that only Unlock are the caller-holds-the-lock
// helper idiom and exempt.
func (d *DB) callerLocked() {
	d.n++
	d.mu.Unlock()
}

// readEarlyReturn: RLock held on the early return path.
func (d *DB) readEarlyReturn(fail bool) error {
	d.rw.RLock()
	if fail {
		return errBoom // want `return leaves d.rw \(read lock\) locked on some path`
	}
	d.rw.RUnlock()
	return nil
}

// upgradeDeadlock: taking the write lock while holding the read lock
// of the same RWMutex deadlocks in one goroutine.
func (d *DB) upgradeDeadlock() {
	d.rw.RLock()
	d.rw.Lock() // want `while holding its read lock`
	d.rw.Unlock()
	d.rw.RUnlock()
}

// readThenWrite: the double-checked idiom — release the read side
// before taking the write side — is clean.
func (d *DB) readThenWrite() {
	d.rw.RLock()
	n := d.n
	d.rw.RUnlock()
	if n == 0 {
		d.rw.Lock()
		defer d.rw.Unlock()
		d.n = 1
	}
}

// swapInnermost: acquiring swapMu while another lock is held inverts
// the canonical order.
func (d *DB) swapInnermost() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.swapMu.Lock() // want `swapMu acquired while d.mu is held`
	defer d.swapMu.Unlock()
}

// swapOutermost: swapMu first, then inner locks — the canonical order.
func (d *DB) swapOutermost() {
	d.swapMu.Lock()
	defer d.swapMu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.n++
}

// panicPathExempt: only deferred Unlocks run during unwinding, so the
// explicit panic path is not flagged.
func (d *DB) panicPathExempt(bad bool) {
	d.mu.Lock()
	if bad {
		panic("invariant broken")
	}
	d.mu.Unlock()
}

// closureOwnLock: closures are their own bodies; a leak inside one is
// reported inside it.
func (d *DB) closureOwnLock(fail bool) func() error {
	return func() error {
		d.mu.Lock()
		if fail {
			return errBoom // want `return leaves d.mu locked on some path`
		}
		d.mu.Unlock()
		return nil
	}
}

// deferredClosureUnlock: an Unlock inside a deferred closure is
// must-run.
func (d *DB) deferredClosureUnlock() int {
	d.mu.Lock()
	defer func() {
		d.n++
		d.mu.Unlock()
	}()
	return d.n
}

// twoMutexes: distinct receivers track separately.
func (d *DB) twoMutexes(other *DB, fail bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	other.mu.Lock()
	if fail {
		return errBoom // want `return leaves other.mu locked on some path`
	}
	other.mu.Unlock()
	return nil
}
