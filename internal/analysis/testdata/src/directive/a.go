// Package directive is golden-file input for the //lint:allow
// contract, exercised with the looseerr analyzer.
package directive

import "os"

// suppressed: a documented allow for the right analyzer silences the
// next line.
func suppressed(f *os.File) {
	//lint:allow looseerr demonstration of a documented suppression
	f.Close()
}

// suppressedSameLine: the directive also works as a trailing comment.
func suppressedSameLine(f *os.File) {
	f.Close() //lint:allow looseerr trailing-form suppression
}

// wrongAnalyzer: an allow for a different analyzer does not silence
// this one.
func wrongAnalyzer(f *os.File) {
	//lint:allow ctxflow reason naming the wrong analyzer
	f.Close() // want `error return of \(\*os.File\)\.Close is silently discarded`
}
