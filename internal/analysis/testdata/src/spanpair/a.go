// Package spanpair is golden-file input: every StartSpan closer must
// run on every return path.
package spanpair

import "errors"

var errBoom = errors.New("boom")

// Trace mirrors internal/trace: StartSpan returns the closer.
type Trace struct{}

func (t *Trace) StartSpan(stage string, fragment int) func() {
	return func() {}
}

// deferred is the idiom.
func deferred(tr *Trace) {
	defer tr.StartSpan("parse", -1)()
}

func discarded(tr *Trace) {
	tr.StartSpan("parse", -1) // want `StartSpan closer discarded`
}

func immediate(tr *Trace) {
	tr.StartSpan("parse", -1)() // want `StartSpan closer invoked immediately`
}

func blank(tr *Trace) {
	_ = tr.StartSpan("parse", -1) // want `StartSpan closer assigned to _`
}

func neverCalled(tr *Trace) {
	done := tr.StartSpan("exec", -1) // want `StartSpan closer done is never called`
	_ = done
}

// deferredNamed: taking the closer into a variable and deferring it is
// fine.
func deferredNamed(tr *Trace) {
	done := tr.StartSpan("exec", -1)
	defer done()
}

func returnSkipsCloser(tr *Trace, fail bool) error {
	done := tr.StartSpan("exec", -1)
	if fail {
		return errBoom // want `return path skips span closer done`
	}
	done()
	return nil
}

// pairedBeforeReturn: closer called before the only returns — clean.
func pairedBeforeReturn(tr *Trace) error {
	done := tr.StartSpan("exec", -1)
	work()
	done()
	return nil
}

// escapes: handing the closer onward transfers responsibility.
func escapes(tr *Trace) func() {
	return tr.StartSpan("exec", -1)
}

func escapesViaArg(tr *Trace) {
	done := tr.StartSpan("exec", -1)
	runLater(done)
}

func runLater(f func()) { f() }

func work() {}

// Pool mimics the bounded evaluation pool: detection is structural
// (method Do on type Pool), so the stub needs no imports.
type Pool struct{}

func (p *Pool) Do(tasks ...func()) {
	for _, t := range tasks {
		t()
	}
}

// closerCalledInWorker: the spawning scope's span closed once per
// worker — each worker must open its own span.
func closerCalledInWorker(tr *Trace, p *Pool) {
	done := tr.StartSpan("partial", -1)
	p.Do(func() {
		done() // want `span closer done from the spawning scope is called inside a pool worker`
	})
}

func closerDeferredInWorker(tr *Trace, p *Pool) {
	done := tr.StartSpan("partial", -1)
	p.Do(func() {
		defer done() // want `span closer done from the spawning scope is called inside a pool worker`
		work()
	})
}

// perWorkerSpanIsClean: a worker opening and closing its own span is
// the sanctioned shape.
func perWorkerSpanIsClean(tr *Trace, p *Pool) {
	p.Do(func() {
		defer tr.StartSpan("chunk", 0)()
		work()
	})
}

// workerOwnNamedCloser: the pair lives entirely inside the worker.
func workerOwnNamedCloser(tr *Trace, p *Pool) {
	p.Do(func() {
		done := tr.StartSpan("chunk", 0)
		work()
		done()
	})
}

// spawningScopeClosesAroundPool: taking the span around the fan-out and
// closing it after Do returns is clean.
func spawningScopeClosesAroundPool(tr *Trace, p *Pool) {
	done := tr.StartSpan("partial", -1)
	p.Do(func() { work() })
	done()
}

// closedOnOneBranchOnly: the second return is only reachable with the
// span still open — the blind spot the lexical check missed.
func closedOnOneBranchOnly(tr *Trace, ok bool) error {
	done := tr.StartSpan("exec", -1)
	if ok {
		done()
		return nil
	}
	return errBoom // want `return path skips span closer done`
}

// fallOffOpen: falling off the end of the function with the span open
// leaks it just like a return would.
func fallOffOpen(tr *Trace, ok bool) {
	done := tr.StartSpan("exec", -1)
	if ok {
		done()
	}
} // want `function end skips span closer done`

// conditionalDefer: a defer registered on only one path closes only
// that path.
func conditionalDefer(tr *Trace, ok bool) error {
	done := tr.StartSpan("exec", -1)
	if ok {
		defer done()
	}
	work()
	return nil // want `return path skips span closer done`
}

// panicExit: only an explicit panic ends the not-ok path, and spans on
// unwinding paths are out of scope (defer remains the fix).
func panicExit(tr *Trace, ok bool) {
	done := tr.StartSpan("exec", -1)
	if !ok {
		panic("invariant")
	}
	done()
}

// closedInBothBranches: every path closes, no defer needed.
func closedInBothBranches(tr *Trace, ok bool) error {
	done := tr.StartSpan("exec", -1)
	if ok {
		done()
		return nil
	}
	done()
	return errBoom
}

// loopReopen: one span per iteration, closed before the next — clean.
func loopReopen(tr *Trace, n int) {
	for i := 0; i < n; i++ {
		done := tr.StartSpan("chunk", i)
		work()
		done()
	}
}
