// Package ctxflow is golden-file input: contexts must flow from the
// caller, not be minted mid-request.
package ctxflow

import "context"

func mintNoCtx() context.Context {
	return context.Background() // want `context.Background\(\) outside main`
}

func mintTODO() context.Context {
	return context.TODO() // want `context.TODO\(\) outside main`
}

func mintDespiteCtx(ctx context.Context) context.Context {
	_ = ctx.Err()
	return context.Background() // want `context.Background\(\) inside a function that already receives a ctx`
}

func deadEnd(ctx context.Context, n int) int { // want `context parameter ctx is accepted but never used`
	return n * 2
}

// forwards is the sanctioned shape: the ctx keeps flowing.
func forwards(ctx context.Context) error {
	return blockingWork(ctx)
}

func blockingWork(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

// usedInClosure: capture by a closure counts as use — the ctx still
// reaches the work.
func usedInClosure(ctx context.Context) func() error {
	return func() error { return blockingWork(ctx) }
}

// blankCtx is explicitly opted out: an interface implementation that
// genuinely needs no context says so with _.
func blankCtx(_ context.Context) int { return 1 }
