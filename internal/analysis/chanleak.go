package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ChanLeak flags goroutine bodies that can block forever on a channel
// with no cancellation path — the leak class the pool/singleflight/
// scheduler patterns are most exposed to: a worker parked on a send or
// receive whose counterpart never arrives survives the request, the
// query, and the test run.
//
// A blocking operation inside a `go` body (a send, a receive, a range
// over a channel, or a select) is accepted when any of these hold:
//
//   - the channel was made with an explicit capacity (every make site
//     of the variable/field in the package passes a non-zero capacity
//     argument): bounded channels express a counted protocol, like the
//     pool's width-limiting semaphore;
//   - the operation is a receive from a struct{}-element channel: by
//     convention those are close-signaled (ctx.Done(), quit, done) and
//     the receive IS the cancellation wait;
//   - the operation is a case of a select that also has a default
//     clause or a struct{}-channel receive case — the select can
//     always take the cancellation arm.
//
// Everything else blocks uncancellably and is reported. Named
// functions and methods launched as `go f(...)` are resolved one level
// deep within the package and their bodies held to the same rule.
var ChanLeak = &Analyzer{
	Name: "chanleak",
	Doc:  "flags goroutine channel operations that can block forever with no ctx.Done()/close-signal/default cancellation path",
	Run:  runChanLeak,
}

func runChanLeak(pass *Pass) error {
	origins := chanOrigins(pass)
	decls := funcDeclsByObject(pass)
	analyzed := map[*ast.BlockStmt]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goBody(pass, g, decls)
			if body == nil || analyzed[body] {
				return true
			}
			analyzed[body] = true
			checkGoroutineBody(pass, body, origins)
			return true
		})
	}
	return nil
}

// goBody resolves the statement list a `go` statement runs: the
// literal's body for `go func() {...}()`, or the declaration body for
// `go f(...)` / `go s.worker(...)` when the callee is defined in this
// package. nil when the callee is out of reach (another package, a
// function value).
func goBody(pass *Pass, g *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) *ast.BlockStmt {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		return lit.Body
	}
	fn := calleeFunc(pass, g.Call)
	if fn == nil {
		return nil
	}
	if d := decls[fn]; d != nil {
		return d.Body
	}
	return nil
}

// funcDeclsByObject indexes the package's function and method
// declarations by their types.Func object.
func funcDeclsByObject(pass *Pass) map[types.Object]*ast.FuncDecl {
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
					decls[obj] = fn
				}
			}
		}
	}
	return decls
}

// checkGoroutineBody walks one goroutine body reporting uncancellable
// blocking channel operations. Nested function literals are skipped
// (they run on their own schedule; if launched with `go` the outer
// walk finds them), and select statements are handled as a unit:
// their comm clauses are judged together, then only the clause bodies
// are walked further.
func checkGoroutineBody(pass *Pass, body *ast.BlockStmt, origins map[types.Object]uint8) {
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SelectStmt:
				checkSelect(pass, n, origins)
				for _, clause := range n.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok {
						for _, st := range cc.Body {
							walk(st)
						}
					}
				}
				return false
			case *ast.SendStmt:
				if !chanOpExempt(pass, n.Chan, false, origins) {
					pass.Reportf(n.Pos(),
						"goroutine sends on %s with no cancellation path: if the receiver is gone this goroutine leaks; select on ctx.Done()/a close signal alongside the send, or give the channel capacity",
						exprString(n.Chan))
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !chanOpExempt(pass, n.X, true, origins) {
					pass.Reportf(n.Pos(),
						"goroutine receives from %s with no cancellation path: if the sender is gone this goroutine leaks; select on ctx.Done()/a close signal alongside the receive",
						exprString(n.X))
				}
			case *ast.RangeStmt:
				if isChanType(pass, n.X) && !chanOpExempt(pass, n.X, true, origins) {
					pass.Reportf(n.Pos(),
						"goroutine ranges over %s: range only ends when the channel closes, so a producer that forgets to close leaks this goroutine; guarantee the close or select with ctx.Done()",
						exprString(n.X))
				}
			}
			return true
		})
	}
	walk(body)
}

// checkSelect reports a select none of whose arms can cancel: no
// default clause and no close-signal receive case. Selects whose every
// comm operation is individually exempt (all bounded channels) pass.
func checkSelect(pass *Pass, s *ast.SelectStmt, origins map[types.Object]uint8) {
	if selectCancellable(pass, s) {
		return
	}
	blocking := false
	for _, clause := range s.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		ch, recv := commChannel(cc.Comm)
		if ch != nil && !chanOpExempt(pass, ch, recv, origins) {
			blocking = true
		}
	}
	if blocking {
		pass.Reportf(s.Pos(),
			"goroutine blocks in a select with no ctx.Done(), close-signal, or default case: if none of these channels ever fires the goroutine leaks; add a cancellation arm")
	}
}

// selectCancellable reports whether s has an arm that always lets it
// proceed or cancel: a default clause, or a receive from a
// struct{}-element (close-signal) channel.
func selectCancellable(pass *Pass, s *ast.SelectStmt) bool {
	for _, clause := range s.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default
		}
		if ch, recv := commChannel(cc.Comm); recv && ch != nil && isSignalChan(pass, ch) {
			return true
		}
	}
	return false
}

// commChannel extracts the channel expression of a select comm
// statement and whether the operation is a receive.
func commChannel(comm ast.Stmt) (ast.Expr, bool) {
	switch s := comm.(type) {
	case *ast.SendStmt:
		return s.Chan, false
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return u.X, true
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return u.X, true
			}
		}
	}
	return nil, false
}

// chanOpExempt reports whether an operation on channel expression ch
// needs no cancellation path: receives from close-signal channels, and
// any operation on a channel whose every make site in the package
// passes an explicit capacity.
func chanOpExempt(pass *Pass, ch ast.Expr, recv bool, origins map[types.Object]uint8) bool {
	if recv && isSignalChan(pass, ch) {
		return true
	}
	obj := chanObject(pass, ch)
	if obj == nil {
		return false
	}
	return origins[obj] == originBounded
}

// isChanType reports whether e has channel type.
func isChanType(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isSignalChan reports whether e is a channel of empty structs — the
// close-to-signal convention (ctx.Done(), quit, done channels), where
// a receive is itself the cancellation wait.
func isSignalChan(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	chT, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := chT.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// chanObject resolves the variable or field object a channel
// expression names; nil for calls and other unnameable channels.
func chanObject(pass *Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		if sel := pass.TypesInfo.Selections[e]; sel != nil {
			return sel.Obj()
		}
		return pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}

// Origin classification of a channel variable/field across the
// package: which kinds of make sites assign to it.
const (
	originUnbuffered uint8 = 1 << iota
	originBoundedBit
)

// originBounded is the verdict "every make site passes an explicit
// non-zero capacity".
const originBounded = originBoundedBit

// chanOrigins scans the package for channel construction sites —
// `ch := make(...)`, `var ch = make(...)`, `s.ch = make(...)`, and
// composite-literal fields `T{ch: make(...)}` — and classifies each
// assigned object. An object is bounded only when every observed make
// passes an explicit capacity that is not the literal 0; a capacity
// expression (like workers-1) counts as bounded: the author chose a
// counted protocol even if it can evaluate to 0.
func chanOrigins(pass *Pass) map[types.Object]uint8 {
	origins := map[types.Object]uint8{}
	record := func(obj types.Object, rhs ast.Expr) {
		if obj == nil {
			return
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			return
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "make" || len(call.Args) == 0 {
			return
		}
		if !isChanType(pass, rhs) {
			return
		}
		if len(call.Args) >= 2 && !isZeroLiteral(call.Args[1]) {
			origins[obj] |= originBoundedBit
		} else {
			origins[obj] |= originUnbuffered
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					switch lhs := ast.Unparen(lhs).(type) {
					case *ast.Ident:
						obj := pass.TypesInfo.Defs[lhs]
						if obj == nil {
							obj = pass.TypesInfo.Uses[lhs]
						}
						record(obj, n.Rhs[i])
					case *ast.SelectorExpr:
						record(chanObject(pass, lhs), n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i, name := range n.Names {
						record(pass.TypesInfo.Defs[name], n.Values[i])
					}
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok {
						record(pass.TypesInfo.Uses[key], kv.Value)
					}
				}
			}
			return true
		})
	}
	return origins
}

func isZeroLiteral(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Value == "0"
}
