// Package analysis is gstored-lint: a suite of static analyzers that
// machine-enforce the concurrency and observability invariants this
// engine's correctness rests on but no compiler checks — one generation
// snapshot per request scope (genswap), contexts flowing
// coordinator→site (ctxflow), trace spans paired with their closers
// (spanpair), bounded metric label sets (metriclabel), no silently
// dropped errors (looseerr), lock/unlock pairing on every path with
// swapMu outermost (lockpath), cancellable goroutine channel waits
// (chanleak), and no defer accumulation in loops (deferloop).
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic) but is built entirely on the standard library's go/ast and
// go/types, because this module is dependency-free by policy. Two
// drivers run the analyzers: a standalone loader (Run, for
// `gstored-lint ./...` and the analysistest harness) and a vet
// unitchecker protocol adapter (UnitcheckerMain, for
// `go vet -vettool=gstored-lint ./...`), both in this package.
// spanpair, looseerr, and lockpath are path-sensitive: they run a
// worklist dataflow (dataflow.go) over per-function control-flow
// graphs (cfg.go), so a closer, error, or unlock skipped on just one
// early-return path is still caught.
//
// # Suppressing a diagnostic
//
// Intentional violations are suppressed with a directive comment on the
// flagged line or the line immediately above it:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory: an allow that does not say why is itself
// reported. Test files (*_test.go) are exempt from every analyzer —
// tests legitimately use context.Background, double loads, and
// immediately-invoked span closers.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis pass: a name (used in diagnostics
// and //lint:allow directives), one-line documentation, and the run
// function.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// All returns the full gstored-lint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{GenSwap, CtxFlow, SpanPair, MetricLabel, LooseErr, LockPath, ChanLeak, DeferLoop}
}

// A Pass provides one analyzer everything it needs to inspect a single
// type-checked package: syntax, types, and a Report sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records one diagnostic. The driver wraps it with the
	// //lint:allow suppression filter and the *_test.go exemption.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the driver
}

// allowDirectives indexes //lint:allow comments: file → line →
// analyzer names allowed there. A directive suppresses diagnostics on
// its own line and on the line immediately following it (the idiomatic
// placement: directive above the flagged statement).
type allowDirectives struct {
	fset  *token.FileSet
	byPos map[string]map[int]map[string]bool
	// malformed collects directives without a reason; the driver reports
	// them so suppressions stay auditable.
	malformed []Diagnostic
}

const allowPrefix = "//lint:allow "

func collectAllows(fset *token.FileSet, files []*ast.File) *allowDirectives {
	d := &allowDirectives{fset: fset, byPos: map[string]map[int]map[string]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				if name == "" || strings.TrimSpace(reason) == "" {
					d.malformed = append(d.malformed, Diagnostic{
						Pos:      c.Pos(),
						Message:  "malformed //lint:allow directive: want \"//lint:allow <analyzer> <reason>\"",
						Analyzer: "lintdirective",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				lines := d.byPos[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					d.byPos[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					set := lines[line]
					if set == nil {
						set = map[string]bool{}
						lines[line] = set
					}
					set[name] = true
				}
			}
		}
	}
	return d
}

// allows reports whether a diagnostic from analyzer at pos is suppressed.
func (d *allowDirectives) allows(analyzer string, pos token.Pos) bool {
	p := d.fset.Position(pos)
	return d.byPos[p.Filename][p.Line][analyzer]
}

// isTestFile reports whether pos sits in a *_test.go file; every
// analyzer skips those.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// RunAnalyzers runs every analyzer over one loaded package and returns
// the surviving diagnostics sorted by position. Suppression
// (//lint:allow), the test-file exemption, and malformed-directive
// reporting all happen here so the two drivers and the test harness
// share one filter.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	allows := collectAllows(fset, files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			d.Analyzer = name
			if isTestFile(fset, d.Pos) || allows.allows(name, d.Pos) {
				return
			}
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	for _, m := range allows.malformed {
		if !isTestFile(fset, m.Pos) {
			diags = append(diags, m)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// newTypesInfo returns a types.Info with every map analyzers consult
// populated.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
