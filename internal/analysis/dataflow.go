package analysis

// A generic iterative dataflow solver over the CFGs of cfg.go, plus the
// map-of-bitsets fact helpers every path-sensitive analyzer in this
// package uses.
//
// # May and must in one lattice
//
// Facts here are maps from a tracked object (a lock, a span closer, an
// error variable) to a bitset of the states it may be in. The meet at a
// join point is pointwise union: a bit is set iff some path to the
// block leaves the object in that state. Both flavors of question read
// off the same fixpoint:
//
//	may-analysis:  "can X be locked here?"        → bit set
//	must-analysis: "is X closed on ALL paths?"    → bitset ⊆ {closed}
//
// A missing key is bottom (no path bound the object yet), so union
// treats it as the identity — which is exactly the standard ⊥ of a
// powerset lattice seeded at the entry. MeetIntersect is provided for
// classic must-available set problems where facts are element sets
// rather than state bitsets.

// Direction selects which way facts flow through the graph.
type Direction int

const (
	// Forward propagates facts from entry toward exit.
	Forward Direction = iota
	// Backward propagates facts from exit toward entry.
	Backward
)

// Solve runs a worklist fixpoint over g and returns each reachable
// block's in-fact — the fact holding before the block's first node in
// flow direction. init seeds the boundary block (entry for Forward,
// exit for Backward); meet joins facts at control-flow merges; transfer
// computes a block's out-fact from its in-fact and MUST NOT mutate its
// input (return a fresh value); equal detects the fixpoint.
//
// Unreachable blocks get no facts: they are absent from the result.
// Termination holds whenever the fact domain is finite and transfer is
// monotone — true for every bitset analysis in this package.
func Solve[F any](g *CFG, dir Direction, init F, meet func(F, F) F, transfer func(*Block, F) F, equal func(F, F) bool) map[*Block]F {
	if len(g.Blocks) == 0 {
		return nil
	}
	start := g.Blocks[0]
	preds := func(b *Block) []*Block { return b.Preds }
	succs := func(b *Block) []*Block { return b.Succs }
	if dir == Backward {
		start = g.Exit
		preds, succs = succs, preds
	}

	in := make(map[*Block]F, len(g.Blocks))
	out := make(map[*Block]F, len(g.Blocks))
	inWork := make(map[*Block]bool, len(g.Blocks))
	work := []*Block{start}
	inWork[start] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false

		inF := init
		if b != start {
			seeded := false
			for _, p := range preds(b) {
				o, ok := out[p]
				if !ok {
					continue // predecessor not reached yet
				}
				if !seeded {
					inF, seeded = o, true
				} else {
					inF = meet(inF, o)
				}
			}
			if !seeded {
				continue // unreachable in flow direction so far
			}
		}
		in[b] = inF
		o := transfer(b, inF)
		if prev, ok := out[b]; ok && equal(prev, o) {
			continue
		}
		out[b] = o
		for _, s := range succs(b) {
			if !inWork[s] {
				inWork[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// MeetUnion is the pointwise-union meet for map-of-bitset facts: the
// result has every key of either side with the OR of its bits. Missing
// keys are bottom.
func MeetUnion[K comparable](a, b map[K]uint8) map[K]uint8 {
	out := make(map[K]uint8, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] |= v
	}
	return out
}

// MeetIntersect is the classic must-meet for set facts: a key survives
// only when present on both sides, keeping the intersection of its
// bits. Keys whose bit intersection is empty are dropped.
func MeetIntersect[K comparable](a, b map[K]uint8) map[K]uint8 {
	out := make(map[K]uint8)
	for k, v := range a {
		if w, ok := b[k]; ok && v&w != 0 {
			out[k] = v & w
		}
	}
	return out
}

// BitsEqual reports whether two map-of-bitset facts are identical.
func BitsEqual[K comparable](a, b map[K]uint8) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// cloneBits copies a map fact so transfer functions can update without
// aliasing their input.
func cloneBits[K comparable](m map[K]uint8) map[K]uint8 {
	out := make(map[K]uint8, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
