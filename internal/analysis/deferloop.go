package analysis

import "go/ast"

// DeferLoop flags defer statements inside loop bodies. A defer runs at
// function exit, not at the end of the iteration that registered it,
// so a loop that defers a resource release — a span closer, an Unlock,
// a file Close — accumulates one pending call (and holds the resource)
// per iteration until the function returns. For the engine that shape
// is how a per-site scatter loop ends up holding every site's
// connection at once.
//
// The fix is almost always to move the iteration's work into its own
// function (or an immediately-invoked literal) so the defer scopes to
// the iteration; intentional accumulation gets a //lint:allow with the
// reason.
var DeferLoop = &Analyzer{
	Name: "deferloop",
	Doc:  "flags defer inside a loop body: deferred calls accumulate until function exit instead of running per iteration",
	Run:  runDeferLoop,
}

func runDeferLoop(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				deferLoopWalk(pass, fn.Body, 0)
			}
		}
	}
	return nil
}

// deferLoopWalk walks n tracking loop nesting depth. Function literals
// reset the depth: a defer inside `for { go func() { defer ... }() }`
// scopes to the literal, which is the sanctioned fix.
func deferLoopWalk(pass *Pass, n ast.Node, depth int) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			deferLoopWalk(pass, n.Body, 0)
			return false
		case *ast.ForStmt:
			if n.Init != nil {
				deferLoopWalk(pass, n.Init, depth)
			}
			if n.Cond != nil {
				deferLoopWalk(pass, n.Cond, depth)
			}
			if n.Post != nil {
				deferLoopWalk(pass, n.Post, depth)
			}
			deferLoopWalk(pass, n.Body, depth+1)
			return false
		case *ast.RangeStmt:
			deferLoopWalk(pass, n.X, depth)
			deferLoopWalk(pass, n.Body, depth+1)
			return false
		case *ast.DeferStmt:
			if depth > 0 {
				pass.Reportf(n.Pos(),
					"defer in a loop runs at function exit, not per iteration: every iteration adds a pending call and holds its resource; wrap the iteration in a function so the defer scopes to it")
			}
		}
		return true
	})
}
