package analysis

import (
	"go/ast"
	"go/types"
)

// Pool-worker closure pattern, shared by genswap and spanpair: a
// FuncLit passed directly as an argument to a pool-runner call — the
// bounded evaluation pool's Do, or the cluster fan-out helpers built on
// it — runs concurrently with (and possibly inline on) the spawning
// scope. Workers must inherit one generation snapshot and one span from
// that scope: a worker taking its own generation load can straddle a
// swap mid-query, and a worker closing the spawning scope's span closes
// it once per worker.
//
// Detection is structural (testdata packages are self-contained, so
// import paths cannot anchor it): a method named Do on a type named
// Pool, or Parallel/ParallelPool/ParallelErr on a type named Cluster.
var poolRunnerMethods = map[string]string{
	"Do":           "Pool",
	"Parallel":     "Cluster",
	"ParallelPool": "Cluster",
	"ParallelErr":  "Cluster",
}

// isPoolRunnerCall reports whether call invokes a pool-runner method.
func isPoolRunnerCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	wantRecv, ok := poolRunnerMethods[sel.Sel.Name]
	if !ok {
		return false
	}
	s := pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return false
	}
	t := s.Recv()
	for {
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == wantRecv
}

// poolWorkerArgs returns the FuncLit arguments of a pool-runner call —
// the worker bodies the pattern rules apply to.
func poolWorkerArgs(pass *Pass, call *ast.CallExpr) []*ast.FuncLit {
	if !isPoolRunnerCall(pass, call) {
		return nil
	}
	var lits []*ast.FuncLit
	for _, arg := range call.Args {
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
	}
	return lits
}
