package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the cmd/go vet tool protocol (the same contract
// golang.org/x/tools/go/analysis/unitchecker speaks), so the suite runs
// as `go vet -vettool=$(pwd)/bin/gstored-lint ./...`. The driver is
// invoked once per package with a JSON .cfg file describing the
// compilation unit; imports resolve through the export data the go
// command already built (ImportMap + PackageFile), so no network and no
// re-type-checking of dependencies.

// vetConfig mirrors the fields cmd/go writes into vet.cfg.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// UnitcheckerMain handles a vet-protocol invocation if argv matches
// one, returning true when it consumed the invocation (the caller
// should not fall through to standalone mode). It exits the process
// itself on completion, mirroring unitchecker.Main.
func UnitcheckerMain(args []string, analyzers []*Analyzer) bool {
	if len(args) != 1 {
		return false
	}
	switch {
	case args[0] == "-V=full":
		// cmd/go fingerprints the tool for build caching; the format is
		// the one the go command's buildid parser expects.
		printVersion()
		os.Exit(0)
	case args[0] == "-flags":
		// cmd/go queries supported analyzer flags; we expose none.
		fmt.Println("[]")
		os.Exit(0)
	case strings.HasSuffix(args[0], ".cfg"):
		code, err := runUnit(args[0], analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gstored-lint: %v\n", err)
			os.Exit(1)
		}
		os.Exit(code)
	}
	return false
}

func printVersion() {
	progname := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f) //lint:allow looseerr best-effort fingerprint; a short read only changes the cache key
			f.Close()     //lint:allow looseerr read-side close of our own executable
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}

// runUnit analyzes one compilation unit described by a vet .cfg file.
// Exit code 2 signals diagnostics, matching the vet convention.
func runUnit(cfgPath string, analyzers []*Analyzer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 1, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 1, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(&cfg)
			}
			return 1, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return compilerImporter.Import(importPath)
	})

	info := newTypesInfo()
	tconf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(cfg.Compiler, "amd64"),
	}
	if cfg.GoVersion != "" {
		tconf.GoVersion = cfg.GoVersion
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(&cfg)
		}
		return 1, fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}

	if code, err := writeVetx(&cfg); err != nil {
		return code, err
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	diags, err := RunAnalyzers(fset, files, pkg, info, analyzers)
	if err != nil {
		return 1, err
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%v: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2, nil
	}
	return 0, nil
}

// writeVetx writes the (empty — this suite exports no facts) vetx
// output file cmd/go expects for caching.
func writeVetx(cfg *vetConfig) (int, error) {
	if cfg.VetxOutput == "" {
		return 0, nil
	}
	if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
		return 1, fmt.Errorf("writing vetx output: %w", err)
	}
	return 0, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
