package fragment

import (
	"testing"

	"gstored/internal/paperexample"
	"gstored/internal/rdf"
)

// TestCheckInvariantsDetectsCorruption: each invariant violation must be
// caught (failure-injection on the distributed graph structure).
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	fresh := func() (*paperexample.Example, *Distributed) {
		ex := paperexample.New()
		d, err := Build(ex.Store, ex.Assignment)
		if err != nil {
			t.Fatal(err)
		}
		return ex, d
	}

	t.Run("clean passes", func(t *testing.T) {
		_, d := fresh()
		if err := d.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("double ownership", func(t *testing.T) {
		ex, d := fresh()
		d.Fragments[1].internal[ex.V[1]] = true // 001 belongs to F1
		if err := d.CheckInvariants(); err == nil {
			t.Error("duplicate internal vertex not detected")
		}
	})

	t.Run("orphan vertex", func(t *testing.T) {
		ex, d := fresh()
		delete(d.Fragments[0].internal, ex.V[1])
		if err := d.CheckInvariants(); err == nil {
			t.Error("unowned vertex not detected")
		}
	})

	t.Run("internal and extended", func(t *testing.T) {
		ex, d := fresh()
		d.Fragments[0].extended[ex.V[1]] = true
		if err := d.CheckInvariants(); err == nil {
			t.Error("internal+extended overlap not detected")
		}
	})

	t.Run("bogus crossing edge", func(t *testing.T) {
		ex, d := fresh()
		// 001→003 is internal to F1, not crossing.
		name, _ := ex.Graph.Dict.Lookup(rdf.NewIRI(paperexample.PredName))
		d.Fragments[0].Crossing = append(d.Fragments[0].Crossing,
			rdf.Triple{S: ex.V[1], P: name, O: ex.V[3]})
		if err := d.CheckInvariants(); err == nil {
			t.Error("non-crossing edge recorded as crossing not detected")
		}
	})

	t.Run("edge conservation", func(t *testing.T) {
		_, d := fresh()
		d.Fragments[0].NumInternalEdges++
		if err := d.CheckInvariants(); err == nil {
			t.Error("edge count corruption not detected")
		}
	})
}

func TestInternalVerticesAccessor(t *testing.T) {
	ex, d := func() (*paperexample.Example, *Distributed) {
		ex := paperexample.New()
		d, _ := Build(ex.Store, ex.Assignment)
		return ex, d
	}()
	vs := d.Fragments[0].InternalVertices()
	if len(vs) != 5 {
		t.Fatalf("F1 internal vertices = %d, want 5", len(vs))
	}
	seen := map[rdf.TermID]bool{}
	for _, v := range vs {
		seen[v] = true
	}
	for _, n := range []int{1, 2, 3, 4, 5} {
		if !seen[ex.V[n]] {
			t.Errorf("vertex %03d missing from F1", n)
		}
	}
}
