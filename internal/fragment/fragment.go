// Package fragment materializes a distributed RDF graph (Definition 1 of
// the paper) from a vertex-disjoint partitioning: each fragment holds its
// internal vertices and edges plus replicas of all crossing edges and the
// extended vertices they introduce.
package fragment

import (
	"fmt"

	"gstored/internal/partition"
	"gstored/internal/rdf"
	"gstored/internal/store"
)

// Fragment is F_i = (V_i ∪ V_i^e, E_i ∪ E_i^c, Σ_i). Its Store indexes the
// internal edges together with the crossing-edge replicas, so local
// matching sees exactly the fragment of Definition 1.
type Fragment struct {
	ID int

	// Store indexes E_i ∪ E_i^c.
	Store *store.Store

	// internal is V_i; extended is V_i^e.
	internal map[rdf.TermID]bool
	extended map[rdf.TermID]bool

	// Crossing lists E_i^c: the crossing-edge replicas stored at this
	// fragment, in deterministic order.
	Crossing []rdf.Triple

	// NumInternalEdges is |E_i|.
	NumInternalEdges int
}

// IsInternal reports whether v ∈ V_i.
func (f *Fragment) IsInternal(v rdf.TermID) bool { return f.internal[v] }

// IsExtended reports whether v ∈ V_i^e.
func (f *Fragment) IsExtended(v rdf.TermID) bool { return f.extended[v] }

// NumInternal returns |V_i|.
func (f *Fragment) NumInternal() int { return len(f.internal) }

// NumExtended returns |V_i^e|.
func (f *Fragment) NumExtended() int { return len(f.extended) }

// InternalVertices returns V_i (unsorted).
func (f *Fragment) InternalVertices() []rdf.TermID {
	out := make([]rdf.TermID, 0, len(f.internal))
	for v := range f.internal {
		out = append(out, v)
	}
	return out
}

// IsCrossing reports whether an edge with endpoints s and o is a crossing
// edge of this fragment: exactly one endpoint is internal (edges between
// two extended vertices are never stored, per Definition 1).
func (f *Fragment) IsCrossing(s, o rdf.TermID) bool {
	return f.internal[s] != f.internal[o]
}

// Distributed is the full distributed RDF graph: all fragments plus the
// assignment that produced them. The dictionary is shared.
type Distributed struct {
	Fragments  []*Fragment
	Assignment *partition.Assignment
	Dict       *rdf.Dictionary
	// Global is the store over the whole graph; kept for verification and
	// for baselines (e.g. DREAM replicates the full graph at every site).
	Global *store.Store
}

// Build splits the graph in st into fragments per assignment a. Every
// vertex of st must be covered by a (see partition.Assignment.Validate).
func Build(st *store.Store, a *partition.Assignment) (*Distributed, error) {
	if err := a.Validate(st); err != nil {
		return nil, err
	}
	k := a.K
	internal := make([]map[rdf.TermID]bool, k)
	extended := make([]map[rdf.TermID]bool, k)
	triples := make([][]rdf.Triple, k)
	crossing := make([][]rdf.Triple, k)
	internalEdges := make([]int, k)
	for i := 0; i < k; i++ {
		internal[i] = make(map[rdf.TermID]bool)
		extended[i] = make(map[rdf.TermID]bool)
	}
	for _, v := range st.Vertices() {
		internal[a.FragmentOf(v)][v] = true
	}
	for _, s := range st.Vertices() {
		fs := a.FragmentOf(s)
		for _, he := range st.Out(s) {
			t := rdf.Triple{S: s, P: he.P, O: he.V}
			fo := a.FragmentOf(he.V)
			if fs == fo {
				triples[fs] = append(triples[fs], t)
				internalEdges[fs]++
				continue
			}
			// Crossing edge: replicate at both fragments (Def. 1 items 3-4).
			triples[fs] = append(triples[fs], t)
			triples[fo] = append(triples[fo], t)
			crossing[fs] = append(crossing[fs], t)
			crossing[fo] = append(crossing[fo], t)
			extended[fs][he.V] = true
			extended[fo][s] = true
		}
	}
	d := &Distributed{
		Assignment: a,
		Dict:       st.Dict,
		Global:     st,
		Fragments:  make([]*Fragment, k),
	}
	for i := 0; i < k; i++ {
		d.Fragments[i] = &Fragment{
			ID:               i,
			Store:            store.New(st.Dict, triples[i]),
			internal:         internal[i],
			extended:         extended[i],
			Crossing:         crossing[i],
			NumInternalEdges: internalEdges[i],
		}
	}
	return d, nil
}

// BuildWith partitions st with the given strategy and builds the
// distributed graph.
func BuildWith(st *store.Store, strat partition.Strategy, k int) (*Distributed, error) {
	a, err := strat.Partition(st, k)
	if err != nil {
		return nil, err
	}
	return Build(st, a)
}

// CheckInvariants verifies Definition 1 on the built fragments: internal
// vertex sets partition V; crossing edges are replicated at exactly the two
// fragments owning their endpoints; extended vertices are exactly the far
// endpoints of crossing edges. Intended for tests and debugging.
func (d *Distributed) CheckInvariants() error {
	seen := make(map[rdf.TermID]int)
	for _, f := range d.Fragments {
		for v := range f.internal {
			if prev, dup := seen[v]; dup {
				return fmt.Errorf("fragment: vertex %d internal to both %d and %d", v, prev, f.ID)
			}
			seen[v] = f.ID
		}
	}
	for _, v := range d.Global.Vertices() {
		if _, ok := seen[v]; !ok {
			return fmt.Errorf("fragment: vertex %d internal nowhere", v)
		}
	}
	totalInternal, totalCrossing := 0, 0
	for _, f := range d.Fragments {
		totalInternal += f.NumInternalEdges
		totalCrossing += len(f.Crossing)
		for v := range f.extended {
			if f.internal[v] {
				return fmt.Errorf("fragment %d: vertex %d both internal and extended", f.ID, v)
			}
		}
		for _, t := range f.Crossing {
			fs, okS := d.Assignment.Lookup(t.S)
			fo, okO := d.Assignment.Lookup(t.O)
			if !okS || !okO {
				return fmt.Errorf("fragment %d: crossing edge %v has an endpoint the assignment does not cover", f.ID, t)
			}
			if fs == fo {
				return fmt.Errorf("fragment %d: non-crossing edge %v recorded as crossing", f.ID, t)
			}
			if fs != f.ID && fo != f.ID {
				return fmt.Errorf("fragment %d: crossing edge %v touches neither endpoint", f.ID, t)
			}
		}
	}
	if totalInternal+totalCrossing/2 != d.Global.Len() {
		return fmt.Errorf("fragment: edge conservation violated: %d internal + %d/2 crossing != %d total",
			totalInternal, totalCrossing, d.Global.Len())
	}
	return nil
}
