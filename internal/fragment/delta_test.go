package fragment

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"gstored/internal/partition"
	"gstored/internal/rdf"
	"gstored/internal/store"
)

// checkDeltaEquivalent applies the delta incrementally and compares
// against a full Build over the post-delta store: the two must agree
// fragment by fragment on internal/extended vertex sets, internal edge
// counts, crossing multisets, and indexed triples — and the incremental
// result must pass CheckInvariants on its own.
func checkDeltaEquivalent(t *testing.T, d *Distributed, a *partition.Assignment, inserted, deleted []rdf.Triple) *Distributed {
	t.Helper()
	newGlobal := d.Global.Apply(inserted, deleted)
	got, rebuilt, err := d.ApplyDelta(newGlobal, a, inserted, deleted)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if err := got.CheckInvariants(); err != nil {
		t.Fatalf("post-delta invariants: %v", err)
	}
	want, err := Build(newGlobal, a)
	if err != nil {
		t.Fatalf("reference Build: %v", err)
	}
	if len(rebuilt) > len(d.Fragments) {
		t.Errorf("rebuilt %d of %d fragments", len(rebuilt), len(d.Fragments))
	}
	if !sort.IntsAreSorted(rebuilt) {
		t.Errorf("rebuilt IDs not sorted: %v", rebuilt)
	}
	for _, id := range rebuilt {
		if id < 0 || id >= len(d.Fragments) {
			t.Errorf("rebuilt ID %d out of range", id)
		}
	}
	for i := range want.Fragments {
		gf, wf := got.Fragments[i], want.Fragments[i]
		if !reflect.DeepEqual(gf.internal, wf.internal) {
			t.Errorf("fragment %d internal = %v, want %v", i, gf.internal, wf.internal)
		}
		if !reflect.DeepEqual(gf.extended, wf.extended) && !(len(gf.extended) == 0 && len(wf.extended) == 0) {
			t.Errorf("fragment %d extended = %v, want %v", i, gf.extended, wf.extended)
		}
		if gf.NumInternalEdges != wf.NumInternalEdges {
			t.Errorf("fragment %d internal edges = %d, want %d", i, gf.NumInternalEdges, wf.NumInternalEdges)
		}
		if !sameTripleMultiset(gf.Crossing, wf.Crossing) {
			t.Errorf("fragment %d crossing = %v, want %v", i, gf.Crossing, wf.Crossing)
		}
		if !reflect.DeepEqual(gf.Store.Triples(), wf.Store.Triples()) {
			t.Errorf("fragment %d store triples = %v, want %v", i, gf.Store.Triples(), wf.Store.Triples())
		}
	}
	return got
}

func sameTripleMultiset(a, b []rdf.Triple) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]rdf.Triple(nil), a...)
	bs := append([]rdf.Triple(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i].Less(as[j]) })
	sort.Slice(bs, func(i, j int) bool { return bs[i].Less(bs[j]) })
	return reflect.DeepEqual(as, bs)
}

// deltaFixture builds a 3-fragment cluster over a small graph with both
// internal and crossing edges.
func deltaFixture(t *testing.T) (*rdf.Graph, *Distributed, func(s, p, o string) rdf.Triple) {
	t.Helper()
	g := rdf.NewGraph()
	mk := func(s, p, o string) rdf.Triple {
		return rdf.Triple{S: g.Dict.EncodeIRI(s), P: g.Dict.EncodeIRI(p), O: g.Dict.EncodeIRI(o)}
	}
	for _, tr := range [][3]string{
		{"a1", "p", "a2"}, {"a2", "p", "b1"}, {"b1", "q", "b2"},
		{"b2", "q", "c1"}, {"c1", "p", "c2"}, {"c2", "r", "a1"},
		{"a1", "q", "a1"},
	} {
		g.AddIRIs(tr[0], tr[1], tr[2])
	}
	st := store.FromGraph(g)
	a := &partition.Assignment{K: 3, Frag: map[rdf.TermID]int{}, StrategyName: "test"}
	for _, v := range st.Vertices() {
		switch g.Dict.MustDecode(v).Value[0] {
		case 'a':
			a.Frag[v] = 0
		case 'b':
			a.Frag[v] = 1
		default:
			a.Frag[v] = 2
		}
	}
	d, err := Build(st, a)
	if err != nil {
		t.Fatal(err)
	}
	return g, d, mk
}

func TestApplyDeltaInsertInternalEdge(t *testing.T) {
	_, d, mk := deltaFixture(t)
	got := checkDeltaEquivalent(t, d, d.Assignment, []rdf.Triple{mk("a1", "p", "a2")}, nil)
	// Only fragment 0 is touched; fragments 1 and 2 must be shared.
	for _, i := range []int{1, 2} {
		if got.Fragments[i] != d.Fragments[i] {
			t.Errorf("untouched fragment %d was rebuilt", i)
		}
	}
	if got.Fragments[0] == d.Fragments[0] {
		t.Error("touched fragment 0 was not rebuilt")
	}
}

func TestApplyDeltaInsertCrossingEdge(t *testing.T) {
	_, d, mk := deltaFixture(t)
	got := checkDeltaEquivalent(t, d, d.Assignment, []rdf.Triple{mk("a2", "r", "c1")}, nil)
	if got.Fragments[1] != d.Fragments[1] {
		t.Error("fragment 1 should be untouched by an a-c crossing insert")
	}
}

func TestApplyDeltaDeleteCrossingEdge(t *testing.T) {
	_, d, mk := deltaFixture(t)
	// b2-q->c1 is the only b-c crossing edge: deleting it must shrink both
	// fragments' extended sets.
	got := checkDeltaEquivalent(t, d, d.Assignment, nil, []rdf.Triple{mk("b2", "q", "c1")})
	if got.Fragments[0] != d.Fragments[0] {
		t.Error("fragment 0 should be untouched by a b-c crossing delete")
	}
}

func TestApplyDeltaNewVertex(t *testing.T) {
	g, d, mk := deltaFixture(t)
	ins := []rdf.Triple{mk("a1", "p", "fresh1"), mk("fresh1", "p", "fresh2")}
	a := d.Assignment.WithVertices(g.Dict, []rdf.TermID{ins[0].O, ins[1].S, ins[1].O})
	if a == d.Assignment {
		t.Fatal("WithVertices returned the receiver despite fresh vertices")
	}
	checkDeltaEquivalent(t, d, a, ins, nil)
}

func TestApplyDeltaVertexVanishes(t *testing.T) {
	_, d, mk := deltaFixture(t)
	// c2 has exactly two incident edges; removing both orphans it.
	checkDeltaEquivalent(t, d, d.Assignment, nil, []rdf.Triple{mk("c1", "p", "c2"), mk("c2", "r", "a1")})
}

func TestApplyDeltaSelfLoop(t *testing.T) {
	_, d, mk := deltaFixture(t)
	checkDeltaEquivalent(t, d, d.Assignment, []rdf.Triple{mk("b1", "q", "b1")}, nil)
	checkDeltaEquivalent(t, d, d.Assignment, nil, []rdf.Triple{mk("a1", "q", "a1")})
}

func TestApplyDeltaUncoveredEndpointFails(t *testing.T) {
	g, d, _ := deltaFixture(t)
	fresh := rdf.Triple{S: g.Dict.EncodeIRI("ghost"), P: g.Dict.EncodeIRI("p"), O: g.Dict.EncodeIRI("a1")}
	newGlobal := d.Global.Apply([]rdf.Triple{fresh}, nil)
	if _, _, err := d.ApplyDelta(newGlobal, d.Assignment, []rdf.Triple{fresh}, nil); err == nil {
		t.Error("ApplyDelta accepted an endpoint the assignment does not cover")
	}
}

// TestApplyDeltaRandomized drives random mutation batches through the
// incremental path against full rebuilds, across all three strategies.
func TestApplyDeltaRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := rdf.NewGraph()
	for i := 0; i < 60; i++ {
		g.AddIRIs(fmt.Sprintf("http://ex/v%d", rng.Intn(20)), fmt.Sprintf("http://ex/p%d", rng.Intn(3)), fmt.Sprintf("http://ex/v%d", rng.Intn(20)))
	}
	st := store.FromGraph(g)
	for _, strat := range []partition.Strategy{partition.Hash{}, partition.SemanticHash{}, partition.Metis{}} {
		t.Run(strat.Name(), func(t *testing.T) {
			a, err := strat.Partition(st, 4)
			if err != nil {
				t.Fatal(err)
			}
			d, err := Build(st, a)
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 10; round++ {
				var inserted, deleted []rdf.Triple
				seen := make(map[rdf.Triple]bool)
				for i := 0; i < 4; i++ {
					tr := rdf.Triple{
						S: g.Dict.EncodeIRI(fmt.Sprintf("http://ex/v%d", rng.Intn(24))),
						P: g.Dict.EncodeIRI(fmt.Sprintf("http://ex/p%d", rng.Intn(3))),
						O: g.Dict.EncodeIRI(fmt.Sprintf("http://ex/v%d", rng.Intn(24))),
					}
					if !d.Global.HasTriple(tr.S, tr.P, tr.O) && !seen[tr] {
						inserted = append(inserted, tr)
						seen[tr] = true
					}
				}
				all := d.Global.Triples()
				for i := 0; i < 2 && len(all) > 0; i++ {
					deleted = append(deleted, all[rng.Intn(len(all))])
				}
				aa := a.WithVertices(g.Dict, endpointsOf(inserted))
				d = checkDeltaEquivalent(t, d, aa, inserted, deleted)
				a = aa
			}
		})
	}
}

func endpointsOf(ts []rdf.Triple) []rdf.TermID {
	var out []rdf.TermID
	for _, t := range ts {
		out = append(out, t.S, t.O)
	}
	return out
}
