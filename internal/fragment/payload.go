package fragment

import (
	"fmt"
	"sort"

	"gstored/internal/rdf"
	"gstored/internal/store"
)

// Payload is the wire form of a Fragment: the serializable fields a
// coordinator ships to the worker process that will host the fragment.
// Everything is TermID-level — the dictionary never travels; workers
// match and return rows as IDs and the coordinator resolves terms.
// The extended vertex set is not carried: per Definition 1 it is exactly
// the far endpoints of the crossing-edge replicas, so FromPayload
// rederives it.
type Payload struct {
	ID int
	// Triples is E_i ∪ E_i^c — the full edge set the fragment's store
	// indexes, crossing replicas included.
	Triples []rdf.Triple
	// Internal is V_i in ascending ID order.
	Internal []rdf.TermID
	// Crossing is E_i^c in the fragment's deterministic order.
	Crossing         []rdf.Triple
	NumInternalEdges int
}

// Payload extracts the wire form of f.
func (f *Fragment) Payload() *Payload {
	internal := make([]rdf.TermID, 0, len(f.internal))
	for v := range f.internal {
		internal = append(internal, v)
	}
	sort.Slice(internal, func(i, j int) bool { return internal[i] < internal[j] })
	return &Payload{
		ID:               f.ID,
		Triples:          f.Store.Triples(),
		Internal:         internal,
		Crossing:         f.Crossing,
		NumInternalEdges: f.NumInternalEdges,
	}
}

// FromPayload rebuilds a Fragment from its wire form. The dictionary is
// the receiver's own (typically empty at a worker — local evaluation is
// pure TermID matching); it is not validated against the payload.
func FromPayload(p *Payload, dict *rdf.Dictionary) (*Fragment, error) {
	internal := make(map[rdf.TermID]bool, len(p.Internal))
	for _, v := range p.Internal {
		internal[v] = true
	}
	extended := make(map[rdf.TermID]bool)
	for _, t := range p.Crossing {
		in, out := internal[t.S], internal[t.O]
		if in == out {
			return nil, fmt.Errorf("fragment: payload crossing edge %v does not cross fragment %d", t, p.ID)
		}
		if in {
			extended[t.O] = true
		} else {
			extended[t.S] = true
		}
	}
	return &Fragment{
		ID:               p.ID,
		Store:            store.New(dict, p.Triples),
		internal:         internal,
		extended:         extended,
		Crossing:         p.Crossing,
		NumInternalEdges: p.NumInternalEdges,
	}, nil
}
