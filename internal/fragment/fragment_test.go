package fragment

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"gstored/internal/paperexample"
	"gstored/internal/partition"
	"gstored/internal/rdf"
	"gstored/internal/store"
)

func TestBuildPaperExample(t *testing.T) {
	ex := paperexample.New()
	d, err := Build(ex.Store, ex.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if len(d.Fragments) != 3 {
		t.Fatalf("%d fragments", len(d.Fragments))
	}
	f1 := d.Fragments[0]

	// Example 1: V^e_1 = {006, 012} and E^c_1 = {001→006, 006→005, 001→012}.
	if f1.NumExtended() != 2 {
		t.Errorf("F1 extended = %d, want 2", f1.NumExtended())
	}
	for _, n := range []int{6, 12} {
		if !f1.IsExtended(ex.V[n]) {
			t.Errorf("vertex %03d should be extended in F1", n)
		}
	}
	if len(f1.Crossing) != 3 {
		t.Errorf("F1 crossing edges = %d, want 3", len(f1.Crossing))
	}
	if f1.NumInternal() != 5 {
		t.Errorf("F1 internal vertices = %d, want 5", f1.NumInternal())
	}
	if f1.NumInternalEdges != 3 {
		t.Errorf("F1 internal edges = %d, want 3 (name, birthDate, label)", f1.NumInternalEdges)
	}
	// The crossing replica 006→005 must be visible in F1's store.
	inf, _ := ex.Graph.Dict.Lookup(rdf.NewIRI(paperexample.PredMainInterest))
	if !f1.Store.HasTriple(ex.V[6], inf, ex.V[5]) {
		t.Error("F1 store is missing the 006-mainInterest->005 crossing replica")
	}
	// F2: extended {001, 005, 013, 019}; crossing {001→006, 006→005,
	// 014→013, 014→019}.
	f2 := d.Fragments[1]
	if f2.NumExtended() != 4 {
		t.Errorf("F2 extended = %d, want 4", f2.NumExtended())
	}
	if len(f2.Crossing) != 4 {
		t.Errorf("F2 crossing = %d, want 4", len(f2.Crossing))
	}
	// F3: extended {001, 014}; crossing {001→012, 014→013, 014→019}.
	f3 := d.Fragments[2]
	if f3.NumExtended() != 2 {
		t.Errorf("F3 extended = %d, want 2", f3.NumExtended())
	}
	if len(f3.Crossing) != 3 {
		t.Errorf("F3 crossing = %d, want 3", len(f3.Crossing))
	}
	// Crossing classification helper.
	if !f1.IsCrossing(ex.V[1], ex.V[6]) {
		t.Error("001→006 should be crossing for F1")
	}
	if f1.IsCrossing(ex.V[1], ex.V[3]) {
		t.Error("001→003 is internal to F1")
	}
}

func TestBuildRejectsIncompleteAssignment(t *testing.T) {
	g := rdf.NewGraph()
	g.AddIRIs("a", "p", "b")
	st := store.FromGraph(g)
	a := &partition.Assignment{K: 2, Frag: map[rdf.TermID]int{}}
	if _, err := Build(st, a); err == nil {
		t.Error("expected error for unassigned vertices")
	}
}

func TestBuildWithStrategies(t *testing.T) {
	g := rdf.NewGraph()
	for i := 0; i < 40; i++ {
		g.AddIRIs(fmt.Sprintf("http://h%d.x/v%d", i%3, i), "p", fmt.Sprintf("http://h%d.x/v%d", (i+1)%3, (i+7)%40))
	}
	st := store.FromGraph(g)
	for _, s := range []partition.Strategy{partition.Hash{}, partition.SemanticHash{}, partition.Metis{}} {
		d, err := BuildWith(st, s, 4)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := d.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestSingleFragment(t *testing.T) {
	ex := paperexample.New()
	a := &partition.Assignment{K: 1, Frag: map[rdf.TermID]int{}}
	for _, v := range ex.Store.Vertices() {
		a.Frag[v] = 0
	}
	d, err := Build(ex.Store, a)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	f := d.Fragments[0]
	if len(f.Crossing) != 0 || f.NumExtended() != 0 {
		t.Error("single fragment should have no crossing edges")
	}
	if f.Store.Len() != ex.Store.Len() {
		t.Errorf("single fragment holds %d of %d triples", f.Store.Len(), ex.Store.Len())
	}
}

// TestFragmentEdgePreservation: every global triple appears either as one
// internal copy or as exactly two crossing replicas.
func TestFragmentEdgePreservationProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := rdf.NewGraph()
		nv := 4 + r.Intn(20)
		ne := 5 + r.Intn(50)
		for i := 0; i < ne; i++ {
			g.AddIRIs(fmt.Sprintf("v%d", r.Intn(nv)), fmt.Sprintf("p%d", r.Intn(3)), fmt.Sprintf("v%d", r.Intn(nv)))
		}
		st := store.FromGraph(g)
		k := 1 + r.Intn(4)
		a := &partition.Assignment{K: k, Frag: map[rdf.TermID]int{}}
		for _, v := range st.Vertices() {
			a.Frag[v] = r.Intn(k)
		}
		d, err := Build(st, a)
		if err != nil {
			return false
		}
		if d.CheckInvariants() != nil {
			return false
		}
		// Per-triple instance conservation.
		count := 0
		for _, f := range d.Fragments {
			count += f.Store.Len()
		}
		crossing := 0
		for _, f := range d.Fragments {
			crossing += len(f.Crossing)
		}
		return count == st.Len()+crossing/2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
