package fragment

import (
	"fmt"
	"sort"

	"gstored/internal/partition"
	"gstored/internal/rdf"
	"gstored/internal/store"
)

// ApplyDelta materializes the distributed graph over newGlobal — the
// store after a mutation of inserted and deleted triples — by rebuilding
// only the fragments the delta touches and sharing every other Fragment
// with the receiver. d itself is never modified: in-flight executions
// holding the old generation keep a consistent cluster.
//
// A triple touches the fragments owning its two endpoints (for a
// crossing edge, both hold a replica per Definition 1), so those are
// exactly the fragments whose stores, internal/extended vertex sets and
// crossing lists can differ; any vertex disappearing from an untouched
// fragment would require deleting one of its edges, which would have
// touched that fragment. The rebuilt fragments satisfy Definition 1 by
// the same construction Build uses — CheckInvariants on the result is
// the test-time proof.
//
// a must cover every vertex of newGlobal (extend an existing assignment
// over inserted vertices with Assignment.WithVertices). Endpoints the
// assignment does not cover fail the call before anything is built.
// The second result lists the IDs of the rebuilt fragments in ascending
// order — the two-phase epoch broadcast ships exactly these fragments to
// their sites and lets every other site carry its fragment forward.
func (d *Distributed) ApplyDelta(newGlobal *store.Store, a *partition.Assignment, inserted, deleted []rdf.Triple) (*Distributed, []int, error) {
	if a.K != len(d.Fragments) {
		return nil, nil, fmt.Errorf("fragment: delta assignment has K=%d, cluster has %d fragments", a.K, len(d.Fragments))
	}
	touched := make(map[int]bool)
	for _, batch := range [2][]rdf.Triple{inserted, deleted} {
		for _, t := range batch {
			for _, v := range [2]rdf.TermID{t.S, t.O} {
				f, ok := a.Lookup(v)
				if !ok {
					return nil, nil, fmt.Errorf("fragment: delta endpoint %d not covered by the assignment", v)
				}
				if f < 0 || f >= a.K {
					return nil, nil, fmt.Errorf("fragment: delta endpoint %d assigned to fragment %d of %d", v, f, a.K)
				}
				touched[f] = true
			}
		}
	}

	next := &Distributed{
		Assignment: a,
		Dict:       d.Dict,
		Global:     newGlobal,
		Fragments:  make([]*Fragment, len(d.Fragments)),
	}
	ids := make([]int, 0, len(touched))
	for i, f := range d.Fragments {
		if !touched[i] {
			next.Fragments[i] = f // immutable; shared with the old generation
			continue
		}
		next.Fragments[i] = rebuildFragment(newGlobal, a, f, inserted, deleted)
		ids = append(ids, i)
	}
	return next, ids, nil
}

// rebuildFragment reconstructs one touched fragment per Definition 1
// from the post-delta global store, in time proportional to the edges
// incident to the fragment (not the whole graph).
func rebuildFragment(g *store.Store, a *partition.Assignment, old *Fragment, inserted, deleted []rdf.Triple) *Fragment {
	// V_i: the old internal set, plus inserted endpoints owned here, minus
	// endpoints the delta removed from the graph entirely. Vertices not
	// named by the delta cannot have appeared or vanished.
	internal := make(map[rdf.TermID]bool, old.NumInternal())
	for v := range old.internal {
		internal[v] = true
	}
	for _, t := range inserted {
		for _, v := range [2]rdf.TermID{t.S, t.O} {
			if a.FragmentOf(v) == old.ID {
				internal[v] = true
			}
		}
	}
	for _, t := range deleted {
		for _, v := range [2]rdf.TermID{t.S, t.O} {
			if a.FragmentOf(v) == old.ID && !g.HasVertex(v) {
				delete(internal, v)
			}
		}
	}

	// Deterministic edge enumeration (Crossing order must not depend on
	// map iteration): internal vertices in ascending ID order.
	vs := make([]rdf.TermID, 0, len(internal))
	for v := range internal {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })

	f := &Fragment{ID: old.ID, internal: internal, extended: make(map[rdf.TermID]bool)}
	var triples []rdf.Triple
	for _, v := range vs {
		for _, he := range g.Out(v) {
			t := rdf.Triple{S: v, P: he.P, O: he.V}
			triples = append(triples, t)
			if internal[he.V] {
				// Both endpoints internal: an E_i edge, enumerated once
				// from its subject (self-loops included).
				f.NumInternalEdges++
				continue
			}
			f.Crossing = append(f.Crossing, t)
			f.extended[he.V] = true
		}
		for _, he := range g.In(v) {
			if internal[he.V] {
				continue // internal subject: already enumerated via Out
			}
			t := rdf.Triple{S: he.V, P: he.P, O: v}
			triples = append(triples, t)
			f.Crossing = append(f.Crossing, t)
			f.extended[he.V] = true
		}
	}
	f.Store = store.New(g.Dict, triples)
	return f
}
