package remote

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"gstored/internal/cluster"
	"gstored/internal/fragment"
	"gstored/internal/pool"
	"gstored/internal/rdf"
)

// rowBatch is how many streamed local-match rows share one frame: large
// enough to amortize framing, small enough that the coordinator's sink
// sees rows while the site is still producing.
const rowBatch = 256

// keepEpochs is how many generations behind the committed epoch a worker
// keeps resident, so executions that pinned a recent generation at the
// coordinator finish against the fragment they started on.
const keepEpochs = 2

// Worker hosts fragments for a coordinator: it loads them from the
// coordinator's initial ship (the prepare+commit of the first epoch),
// serves partial-evaluation RPCs against them with the same in-process
// evaluation code the single-node path runs (a cluster.LocalSite per
// resident generation — byte-identical semantics by construction), and
// follows the two-phase epoch broadcast. A worker that missed the
// prepare for an epoch answers the commit (and any query at that epoch)
// with the need-sync error, and the coordinator re-ships the full
// fragment.
type Worker struct {
	dict *rdf.Dictionary
	pool *pool.Pool

	mu    sync.Mutex
	sites map[int]*workerSite
	ln    net.Listener
	conns map[net.Conn]bool
	done  bool

	wg sync.WaitGroup
}

// workerSite is the generation state of one hosted fragment.
type workerSite struct {
	committed uint64
	// gens holds the resident generations: the committed epoch, up to
	// keepEpochs before it, and any staged (prepared, not yet committed)
	// epochs above it.
	gens map[uint64]*fragment.Fragment
}

// NewWorker returns an empty worker; fragments arrive via the epoch
// broadcast. evalWorkers sizes its evaluation pool (0 = GOMAXPROCS).
func NewWorker(evalWorkers int) *Worker {
	return &Worker{
		dict:  rdf.NewDictionary(),
		pool:  pool.New(evalWorkers),
		sites: make(map[int]*workerSite),
		conns: make(map[net.Conn]bool),
	}
}

// Serve accepts coordinator connections on ln until Close; one goroutine
// per connection, one in-flight request per connection (the client's
// connection pool provides call parallelism).
func (w *Worker) Serve(ln net.Listener) error {
	w.mu.Lock()
	if w.done {
		w.mu.Unlock()
		return errors.New("remote: worker closed")
	}
	w.ln = ln
	w.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			w.mu.Lock()
			done := w.done
			w.mu.Unlock()
			if done {
				return nil
			}
			return err
		}
		w.mu.Lock()
		if w.done {
			w.mu.Unlock()
			_ = conn.Close() // shutting down; the dialer sees the reset
			return nil
		}
		w.conns[conn] = true
		w.wg.Add(1)
		w.mu.Unlock()
		go func() {
			defer w.wg.Done()
			w.serveConn(conn)
			w.mu.Lock()
			delete(w.conns, conn)
			w.mu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (w *Worker) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return w.Serve(ln)
}

// Addr reports the bound listen address once Serve has one.
func (w *Worker) Addr() net.Addr {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.ln == nil {
		return nil
	}
	return w.ln.Addr()
}

// Close stops the listener, closes every live connection, and waits for
// the connection handlers to drain.
func (w *Worker) Close() error {
	w.mu.Lock()
	w.done = true
	ln := w.ln
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	if ln != nil {
		_ = ln.Close() // unblocks Accept; double-close is the only error
	}
	for _, c := range conns {
		_ = c.Close() // forcing handlers off their reads
	}
	w.wg.Wait()
	return nil
}

// serveConn handles one connection's request loop. A decode failure is a
// broken stream (the framing no longer lines up), so the connection
// drops; handler errors travel back in the final response frame and the
// connection keeps serving.
func (w *Worker) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		var req request
		if _, err := readFrame(conn, &req); err != nil {
			return
		}
		if !w.handle(conn, &req) {
			return
		}
	}
}

// handle dispatches one request, writing the response frame(s) to conn;
// it reports whether the connection is still usable.
func (w *Worker) handle(conn net.Conn, req *request) bool {
	//lint:allow ctxflow the request frame is this context's root: the coordinator's deadline arrives as TimeoutNS, applied just below
	ctx := context.Background()
	if req.TimeoutNS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutNS))
		defer cancel()
	}
	var final response
	final.Done = true
	ok := true
	switch req.Op {
	case opCandidates:
		w.handleCandidates(ctx, req, &final)
	case opPartial:
		ok = w.handlePartial(ctx, conn, req, &final)
	case opStats:
		w.handleStats(req, &final)
	case opSwap:
		w.handleSwap(req, &final)
	default:
		final.setErr(fmt.Errorf("remote: unknown op %d", req.Op))
	}
	if !ok {
		return false
	}
	if _, err := writeFrame(conn, &final); err != nil {
		return false
	}
	return true
}

// generation resolves the fragment serving (site, epoch); the error is
// need-sync when the epoch was never staged here, so the coordinator
// knows a re-ship (not a retry) is the fix.
//
//gstored:genaccessor
func (w *Worker) generation(site int, epoch uint64) (*fragment.Fragment, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := w.sites[site]
	if s == nil {
		return nil, fmt.Errorf("%w: site %d not resident", cluster.ErrNeedSync, site)
	}
	f := s.gens[epoch]
	if f == nil {
		return nil, fmt.Errorf("%w: site %d has no generation for epoch %d (committed %d)",
			cluster.ErrNeedSync, site, epoch, s.committed)
	}
	return f, nil
}

func (w *Worker) handleCandidates(ctx context.Context, req *request, final *response) {
	f, err := w.generation(req.Site, req.Epoch)
	if err != nil {
		final.setErr(err)
		return
	}
	local := cluster.NewLocalSite(req.Site, f, req.Epoch)
	rep, err := local.Candidates(ctx, cluster.CandidatesRequest{Query: req.Query, Bits: req.Bits})
	if err != nil {
		final.setErr(err)
		return
	}
	final.Vectors = rep.Vectors
}

// handlePartial runs the site-local evaluation stage, streaming row
// batches as they fill. It reports whether the connection survived: a
// mid-stream write failure means the coordinator is gone, so production
// stops and the connection drops.
func (w *Worker) handlePartial(ctx context.Context, conn net.Conn, req *request, final *response) bool {
	f, err := w.generation(req.Site, req.Epoch)
	if err != nil {
		final.setErr(err)
		return true
	}
	local := cluster.NewLocalSite(req.Site, f, req.Epoch)

	// Seed chunks emit concurrently, so batching and frame writes
	// serialize on one mutex; a write failure latches and stops every
	// producer at its next emit.
	var (
		emu    sync.Mutex
		batch  [][]rdf.TermID
		broken bool
	)
	flush := func() error { // callers hold emu
		if len(batch) == 0 {
			return nil
		}
		_, werr := writeFrame(conn, &response{Rows: batch})
		batch = nil
		return werr
	}
	emit := func(row []rdf.TermID) bool {
		emu.Lock()
		defer emu.Unlock()
		if broken {
			return false
		}
		batch = append(batch, row)
		if len(batch) >= rowBatch {
			if err := flush(); err != nil {
				broken = true
				return false
			}
		}
		return true
	}

	rep, err := local.PartialEval(ctx, cluster.PartialRequest{
		Query: req.Query, Star: req.Star, Center: req.Center,
		Order: req.Order, EdgeRank: req.EdgeRank, Union: req.Union,
		MaxMatches: req.MaxMatches, Pool: w.pool,
	}, emit)

	emu.Lock()
	if !broken {
		if ferr := flush(); ferr != nil {
			broken = true
		}
	}
	dead := broken
	emu.Unlock()
	if dead {
		_ = err // the coordinator hung up; there is nowhere to report the evaluation error
		return false
	}
	if err != nil {
		final.setErr(err)
		return true
	}
	final.LocalMatches = rep.LocalMatches
	final.Matches = rep.Matches
	final.Tasks = rep.Tasks
	final.BusyNS = int64(rep.Busy)
	return true
}

func (w *Worker) handleStats(req *request, final *response) {
	w.mu.Lock()
	defer w.mu.Unlock()
	info := cluster.SiteInfo{Site: req.Site, Fragments: len(w.sites)}
	if s := w.sites[req.Site]; s != nil {
		info.Epoch = s.committed
	}
	final.Info = info
}

// handleSwap is the worker half of the two-phase epoch broadcast.
// Prepare stages a fragment for the epoch — from the shipped payload, or
// by carrying the committed fragment forward when the delta left it
// untouched. Commit atomically activates a staged epoch and prunes old
// generations. Both phases answer need-sync when the required state is
// missing, and both are idempotent so the transport may retry them.
func (w *Worker) handleSwap(req *request, final *response) {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := w.sites[req.Site]
	if s == nil {
		s = &workerSite{gens: make(map[uint64]*fragment.Fragment)}
		w.sites[req.Site] = s
	}
	switch cluster.SwapPhase(req.SwapPhase) {
	case cluster.SwapPrepare:
		if req.Fragment != nil {
			f, err := fragment.FromPayload(req.Fragment, w.dict)
			if err != nil {
				final.setErr(err)
				return
			}
			s.gens[req.Epoch] = f
			final.Epoch = s.committed
			return
		}
		// Carry-forward: only valid when this worker holds the committed
		// generation the new epoch extends.
		cur := s.gens[s.committed]
		if s.committed == 0 || cur == nil {
			final.setErr(fmt.Errorf("%w: site %d cannot carry epoch %d forward (nothing committed)",
				cluster.ErrNeedSync, req.Site, req.Epoch))
			return
		}
		s.gens[req.Epoch] = cur
		final.Epoch = s.committed
	case cluster.SwapCommit:
		if _, staged := s.gens[req.Epoch]; !staged {
			if s.committed == req.Epoch {
				final.Epoch = s.committed // retried commit: already active
				return
			}
			final.setErr(fmt.Errorf("%w: site %d asked to commit epoch %d it never staged",
				cluster.ErrNeedSync, req.Site, req.Epoch))
			return
		}
		s.committed = req.Epoch
		for e := range s.gens {
			if e < s.committed && s.committed-e > keepEpochs {
				delete(s.gens, e)
			}
		}
		final.Epoch = s.committed
	default:
		final.setErr(fmt.Errorf("remote: unknown swap phase %d", req.SwapPhase))
	}
}
