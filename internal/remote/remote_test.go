package remote

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"testing"
	"time"

	"gstored/internal/cluster"
	"gstored/internal/fragment"
	"gstored/internal/paperexample"
	"gstored/internal/partial"
	"gstored/internal/rdf"
)

// startWorker runs a worker on a loopback listener and tears it down
// with the test.
func startWorker(t *testing.T) (*Worker, string) {
	t.Helper()
	w := NewWorker(0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := w.Serve(ln); err != nil {
			t.Errorf("worker serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		if err := w.Close(); err != nil {
			t.Errorf("worker close: %v", err)
		}
		<-done
	})
	return w, ln.Addr().String()
}

// deploy ships every fragment of the paper example to the worker set and
// returns the committed sites.
func deploy(t *testing.T, c *Coordinator, d *fragment.Distributed, epoch uint64) []cluster.Site {
	t.Helper()
	ctx := context.Background()
	sites := make([]cluster.Site, len(d.Fragments))
	for i, f := range d.Fragments {
		s, err := c.NewSite(i).SwapGeneration(ctx, cluster.GenerationSwap{Phase: cluster.SwapPrepare, Epoch: epoch, Fragment: f})
		if err != nil {
			t.Fatalf("prepare site %d: %v", i, err)
		}
		sites[i] = s
	}
	for i, s := range sites {
		cs, err := s.SwapGeneration(ctx, cluster.GenerationSwap{Phase: cluster.SwapCommit, Epoch: epoch})
		if err != nil {
			t.Fatalf("commit site %d: %v", i, err)
		}
		sites[i] = cs
	}
	return sites
}

func TestFrameRoundTrip(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	want := request{Op: opPartial, Site: 3, Epoch: 7, Order: []int{2, 0, 1}}
	go func() {
		if _, err := writeFrame(client, &want); err != nil {
			t.Errorf("writeFrame: %v", err)
		}
	}()
	var got request
	n, err := readFrame(server, &got)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if n <= 4 {
		t.Errorf("frame consumed %d bytes", n)
	}
	if got.Op != want.Op || got.Site != want.Site || got.Epoch != want.Epoch || fmt.Sprint(got.Order) != fmt.Sprint(want.Order) {
		t.Errorf("round trip = %+v, want %+v", got, want)
	}
}

func TestErrKindRoundTrip(t *testing.T) {
	cases := []error{
		nil,
		partial.ErrCanceled,
		partial.ErrTooManyMatches{Limit: 9},
		fmt.Errorf("wrapping: %w", cluster.ErrNeedSync),
		errors.New("plain failure"),
	}
	for _, want := range cases {
		var r response
		r.setErr(want)
		got := r.err()
		switch {
		case want == nil:
			if got != nil {
				t.Errorf("nil became %v", got)
			}
		case errors.Is(want, partial.ErrCanceled):
			if !errors.Is(got, partial.ErrCanceled) {
				t.Errorf("canceled identity lost: %v", got)
			}
		case errors.Is(want, cluster.ErrNeedSync):
			if !errors.Is(got, cluster.ErrNeedSync) {
				t.Errorf("need-sync identity lost: %v", got)
			}
		default:
			var tooMany partial.ErrTooManyMatches
			if errors.As(want, &tooMany) {
				var gotMany partial.ErrTooManyMatches
				if !errors.As(got, &gotMany) || gotMany.Limit != tooMany.Limit {
					t.Errorf("too-many identity lost: %v", got)
				}
			} else if got == nil || got.Error() != want.Error() {
				t.Errorf("generic error %q became %v", want, got)
			}
		}
	}
}

// TestRemoteSiteMatchesLocalSite pins the RPC implementation against the
// in-process oracle on the paper's worked example: candidates, partial
// evaluation (streamed rows and gathered matches), stats, epochs.
func TestRemoteSiteMatchesLocalSite(t *testing.T) {
	ex := paperexample.New()
	d, err := fragment.Build(ex.Store, ex.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startWorker(t)
	c, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sites := deploy(t, c, d, 1)
	ctx := context.Background()
	q := ex.Query

	for i, s := range sites {
		oracle := cluster.NewLocalSite(i, d.Fragments[i], 1)

		wantC, err := oracle.Candidates(ctx, cluster.CandidatesRequest{Query: q, Bits: 1 << 10})
		if err != nil {
			t.Fatal(err)
		}
		gotC, err := s.Candidates(ctx, cluster.CandidatesRequest{Query: q, Bits: 1 << 10})
		if err != nil {
			t.Fatalf("site %d candidates: %v", i, err)
		}
		if gotC.Wire <= 0 || gotC.WireMessages < 2 {
			t.Errorf("site %d candidates wire = %d bytes / %d messages", i, gotC.Wire, gotC.WireMessages)
		}
		wantEnc, err := wantC.Vectors.GobEncode()
		if err != nil {
			t.Fatal(err)
		}
		gotEnc, err := gotC.Vectors.GobEncode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantEnc, gotEnc) {
			t.Errorf("site %d candidate vectors diverged", i)
		}

		var wantRows, gotRows []string
		wantP, err := oracle.PartialEval(ctx, cluster.PartialRequest{Query: q}, func(row []rdf.TermID) bool {
			wantRows = append(wantRows, fmt.Sprint(row))
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		gotP, err := s.PartialEval(ctx, cluster.PartialRequest{Query: q}, func(row []rdf.TermID) bool {
			gotRows = append(gotRows, fmt.Sprint(row))
			return true
		})
		if err != nil {
			t.Fatalf("site %d partial: %v", i, err)
		}
		sort.Strings(wantRows)
		sort.Strings(gotRows)
		if fmt.Sprint(wantRows) != fmt.Sprint(gotRows) {
			t.Errorf("site %d streamed rows diverged: %v vs %v", i, gotRows, wantRows)
		}
		if gotP.LocalMatches != wantP.LocalMatches {
			t.Errorf("site %d local matches = %d, want %d", i, gotP.LocalMatches, wantP.LocalMatches)
		}
		wantKeys := matchKeys(wantP.Matches)
		gotKeys := matchKeys(gotP.Matches)
		if fmt.Sprint(wantKeys) != fmt.Sprint(gotKeys) {
			t.Errorf("site %d partial matches diverged", i)
		}
		if gotP.Wire <= 0 {
			t.Errorf("site %d partial wire = %d", i, gotP.Wire)
		}

		info, err := s.Stats(ctx)
		if err != nil {
			t.Fatalf("site %d stats: %v", i, err)
		}
		if info.Epoch != 1 || info.Addr != addr || info.Fragments != len(d.Fragments) {
			t.Errorf("site %d info = %+v", i, info)
		}
	}
}

func matchKeys(ms []*partial.Match) []string {
	keys := make([]string, len(ms))
	for i, m := range ms {
		keys[i] = m.Key()
	}
	sort.Strings(keys)
	return keys
}

// TestSwapStateMachine drives the worker's two-phase behavior: queries
// at unstaged epochs and commits without prepares answer need-sync,
// carry-forward prepares reuse the committed fragment, commits prune old
// generations but keep enough history for in-flight executions.
func TestSwapStateMachine(t *testing.T) {
	ex := paperexample.New()
	d, err := fragment.Build(ex.Store, ex.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startWorker(t)
	c, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	s0 := c.NewSite(0)

	// Query before any generation: need-sync.
	if _, err := s0.Candidates(ctx, cluster.CandidatesRequest{Query: ex.Query, Bits: 1 << 10}); !errors.Is(err, cluster.ErrNeedSync) {
		t.Fatalf("query on empty worker: %v, want need-sync", err)
	}
	// Commit without prepare: need-sync.
	if _, err := s0.SwapGeneration(ctx, cluster.GenerationSwap{Phase: cluster.SwapCommit, Epoch: 1}); !errors.Is(err, cluster.ErrNeedSync) {
		t.Fatalf("commit without prepare: %v, want need-sync", err)
	}
	// Carry-forward prepare with nothing committed: need-sync.
	if _, err := s0.SwapGeneration(ctx, cluster.GenerationSwap{Phase: cluster.SwapPrepare, Epoch: 1}); !errors.Is(err, cluster.ErrNeedSync) {
		t.Fatalf("carry prepare on empty worker: %v, want need-sync", err)
	}

	// Ship + commit epoch 1.
	st, err := s0.SwapGeneration(ctx, cluster.GenerationSwap{Phase: cluster.SwapPrepare, Epoch: 1, Fragment: d.Fragments[0]})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = st.SwapGeneration(ctx, cluster.GenerationSwap{Phase: cluster.SwapCommit, Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	// Idempotent commit retry.
	if _, err := st.SwapGeneration(ctx, cluster.GenerationSwap{Phase: cluster.SwapCommit, Epoch: 1}); err != nil {
		t.Fatalf("retried commit: %v", err)
	}

	// Carry forward through epochs 2..5; old epochs beyond the keep
	// window must stop answering, recent ones must keep serving.
	handles := map[uint64]cluster.Site{1: st}
	for e := uint64(2); e <= 5; e++ {
		h, err := handles[e-1].SwapGeneration(ctx, cluster.GenerationSwap{Phase: cluster.SwapPrepare, Epoch: e})
		if err != nil {
			t.Fatalf("carry prepare epoch %d: %v", e, err)
		}
		if h, err = h.SwapGeneration(ctx, cluster.GenerationSwap{Phase: cluster.SwapCommit, Epoch: e}); err != nil {
			t.Fatalf("commit epoch %d: %v", e, err)
		}
		handles[e] = h
	}
	req := cluster.CandidatesRequest{Query: ex.Query, Bits: 1 << 10}
	if _, err := handles[5].Candidates(ctx, req); err != nil {
		t.Errorf("committed epoch rejected: %v", err)
	}
	if _, err := handles[3].Candidates(ctx, req); err != nil {
		t.Errorf("epoch within keep window rejected: %v", err)
	}
	if _, err := handles[1].Candidates(ctx, req); !errors.Is(err, cluster.ErrNeedSync) {
		t.Errorf("pruned epoch answered: %v", err)
	}
}

// TestSkipPrepareHook checks the lost-prepare simulation: the staged
// handle exists client-side, the worker never saw the prepare, and the
// commit answers need-sync.
func TestSkipPrepareHook(t *testing.T) {
	ex := paperexample.New()
	d, err := fragment.Build(ex.Store, ex.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startWorker(t)
	c, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	sites := deploy(t, c, d, 1)

	c.SkipPrepare = func(site int, epoch uint64) bool { return site == 0 && epoch == 2 }
	staged, err := sites[0].SwapGeneration(ctx, cluster.GenerationSwap{Phase: cluster.SwapPrepare, Epoch: 2, Fragment: d.Fragments[0]})
	if err != nil {
		t.Fatalf("skipped prepare should succeed client-side: %v", err)
	}
	if _, err := staged.SwapGeneration(ctx, cluster.GenerationSwap{Phase: cluster.SwapCommit, Epoch: 2}); !errors.Is(err, cluster.ErrNeedSync) {
		t.Fatalf("commit after lost prepare: %v, want need-sync", err)
	}
}

// TestCancellationInterruptsBlockedCall: a call against a worker that
// never answers must return promptly when the context is canceled, not
// hang on the read.
func TestCancellationInterruptsBlockedCall(t *testing.T) {
	// A raw listener that accepts and then sits silent.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	c, err := Connect(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := c.NewSite(0)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = s.Stats(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("blocked call returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}
