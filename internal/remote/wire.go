// Package remote carries the coordinator↔site boundary across process
// lines. It provides the three pieces worker mode needs: a
// dependency-free RPC transport (length-prefixed gob frames over TCP,
// per-call deadlines from the caller's context, retry-on-transient,
// connection reuse), the worker server that hosts fragments and answers
// partial-evaluation RPCs with the same in-process evaluation code the
// single-node path runs, and the client Site implementation the engine
// scatters through. Everything stays at the TermID level — the
// dictionary never crosses the wire; workers match IDs and the
// coordinator resolves terms.
package remote

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"gstored/internal/candidates"
	"gstored/internal/cluster"
	"gstored/internal/fragment"
	"gstored/internal/partial"
	"gstored/internal/query"
	"gstored/internal/rdf"
)

// Operation discriminators; one request struct covers every call so the
// wire needs no type registry beyond gob's own.
const (
	opCandidates = 1
	opPartial    = 2
	opStats      = 3
	opSwap       = 4
)

// maxFrame bounds a single frame; a corrupt length prefix must not turn
// into an arbitrary allocation.
const maxFrame = 1 << 30

// request is the coordinator→worker frame: the op discriminator plus the
// fields that op reads. Everything is serializable by construction — the
// Site interface contract keeps closures and shared state out.
type request struct {
	Op    int
	Site  int
	Epoch uint64
	// TimeoutNS bounds worker-side evaluation (0 = none); derived from
	// the caller's context deadline so both ends give up together.
	TimeoutNS int64

	// Candidates / PartialEval:
	Query      *query.Graph
	Bits       int
	Star       bool
	Center     int
	Order      []int
	EdgeRank   []int
	Union      *candidates.SiteVectors
	MaxMatches int

	// SwapGeneration:
	SwapPhase int
	Fragment  *fragment.Payload
}

// errKind maps the engine-visible error identities across the wire.
type errKind int

const (
	errNone errKind = iota
	errGeneric
	errCanceled
	errTooMany
	errNeedSync
)

// response is the worker→coordinator frame. PartialEval streams: zero or
// more row-batch frames (Done false, Rows set) and then one final frame
// (Done true) carrying the gathered reply or the error. Every other op
// answers with a single final frame.
type response struct {
	Done bool
	Rows [][]rdf.TermID

	Vectors      *candidates.SiteVectors
	LocalMatches int
	Matches      []*partial.Match
	Tasks        int
	BusyNS       int64
	Info         cluster.SiteInfo
	Epoch        uint64

	ErrKind  errKind
	ErrMsg   string
	ErrLimit int
}

// setErr records err in the frame, preserving the identities the engine
// dispatches on (cancellation, the partial-match limit, missed prepares).
func (r *response) setErr(err error) {
	switch {
	case err == nil:
		r.ErrKind = errNone
	case errors.Is(err, partial.ErrCanceled):
		r.ErrKind = errCanceled
	case errors.Is(err, cluster.ErrNeedSync):
		r.ErrKind, r.ErrMsg = errNeedSync, err.Error()
	default:
		var tooMany partial.ErrTooManyMatches
		if errors.As(err, &tooMany) {
			r.ErrKind, r.ErrLimit = errTooMany, tooMany.Limit
			return
		}
		r.ErrKind, r.ErrMsg = errGeneric, err.Error()
	}
}

// err reconstructs the error a frame carries (nil for errNone).
func (r *response) err() error {
	switch r.ErrKind {
	case errNone:
		return nil
	case errCanceled:
		return partial.ErrCanceled
	case errTooMany:
		return partial.ErrTooManyMatches{Limit: r.ErrLimit}
	case errNeedSync:
		return fmt.Errorf("%w (%s)", cluster.ErrNeedSync, r.ErrMsg)
	}
	return errors.New(r.ErrMsg)
}

// writeFrame gob-encodes v and writes it length-prefixed (4-byte
// big-endian). It returns the total bytes on the wire — the real
// transport cost the metering reports. A fresh encoder per frame trades
// a little redundancy (type descriptors resent) for framing that cannot
// desynchronize: every frame decodes standalone.
func writeFrame(w io.Writer, v any) (int64, error) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0})
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return 0, err
	}
	n := buf.Len() - 4
	if n > maxFrame {
		return 0, fmt.Errorf("remote: %d-byte frame exceeds limit", n)
	}
	binary.BigEndian.PutUint32(buf.Bytes(), uint32(n))
	written, err := w.Write(buf.Bytes())
	return int64(written), err
}

// readFrame reads one length-prefixed frame into v, returning the bytes
// consumed.
func readFrame(r io.Reader, v any) (int64, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return 4, fmt.Errorf("remote: %d-byte frame exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 4, err
	}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(v); err != nil {
		return int64(4 + n), err
	}
	return int64(4 + n), nil
}
