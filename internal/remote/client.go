package remote

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"gstored/internal/cluster"
	"gstored/internal/fragment"
	"gstored/internal/rdf"
)

// dialTimeout bounds connection establishment when the caller's context
// carries no deadline of its own.
const dialTimeout = 5 * time.Second

// Coordinator owns the worker links of one deployment: it dials the
// worker processes, hands out Site handles (fragments map to workers
// round-robin by ID), and closes the pooled connections on shutdown.
type Coordinator struct {
	links []*workerLink

	// SkipPrepare is a test hook: when it returns true the prepare RPC
	// for that (site, epoch) is dropped on the floor — the staged handle
	// is returned as if the prepare had been delivered — so the commit
	// phase exercises the worker's missed-prepare resync path exactly as
	// a lost message would.
	SkipPrepare func(site int, epoch uint64) bool
}

// Connect dials each worker address once to verify it is reachable and
// returns the coordinator handle. The probe connections are pooled for
// reuse.
func Connect(addrs ...string) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("remote: no worker addresses")
	}
	c := &Coordinator{}
	for _, addr := range addrs {
		l := &workerLink{addr: addr}
		conn, err := net.DialTimeout("tcp", addr, dialTimeout)
		if err != nil {
			_ = c.Close() // tearing down the partial connect; Close never fails
			return nil, fmt.Errorf("remote: worker %s: %w", addr, err)
		}
		l.put(conn)
		c.links = append(c.links, l)
	}
	return c, nil
}

// Addrs lists the worker addresses in connection order.
func (c *Coordinator) Addrs() []string {
	out := make([]string, len(c.links))
	for i, l := range c.links {
		out[i] = l.addr
	}
	return out
}

// NewSite returns the Site handle for fragment id at epoch 0 (no
// generation yet); the two-phase broadcast's prepare returns the handle
// that serves a real epoch. Fragments map to workers round-robin.
func (c *Coordinator) NewSite(id int) cluster.Site {
	return &Site{coord: c, link: c.links[id%len(c.links)], id: id}
}

// Close drops every pooled connection. In-flight calls on checked-out
// connections fail at their next read or write.
func (c *Coordinator) Close() error {
	for _, l := range c.links {
		l.close()
	}
	return nil
}

// workerLink is one worker's address plus its idle-connection pool.
// Connections are checked out for the duration of a call (one in-flight
// request per connection) and returned only after a clean final frame,
// so a pooled connection never has residue mid-stream.
type workerLink struct {
	addr string

	mu     sync.Mutex
	idle   []net.Conn
	closed bool
}

func (l *workerLink) get(ctx context.Context) (net.Conn, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, fmt.Errorf("remote: coordinator closed")
	}
	if n := len(l.idle); n > 0 {
		conn := l.idle[n-1]
		l.idle = l.idle[:n-1]
		l.mu.Unlock()
		return conn, nil
	}
	l.mu.Unlock()
	d := net.Dialer{Timeout: dialTimeout}
	return d.DialContext(ctx, "tcp", l.addr)
}

func (l *workerLink) put(conn net.Conn) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		_ = conn.Close() // raced with coordinator shutdown; nothing to report
		return
	}
	l.idle = append(l.idle, conn)
}

func (l *workerLink) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	for _, conn := range l.idle {
		_ = conn.Close() // idle connections; no in-flight call to fail
	}
	l.idle = nil
}

// Site is the RPC implementation of cluster.Site: each call checks a
// connection out of the worker's pool, writes one request frame, and
// reads response frames under the caller's context deadline. Like
// LocalSite it is immutable — SwapGeneration returns a fresh handle
// bound to the new epoch, and queries through an old handle keep
// addressing the generation they pinned (workers keep recent epochs
// resident for exactly this).
type Site struct {
	coord *Coordinator
	link  *workerLink
	id    int
	epoch uint64
}

// ID implements cluster.Site.
func (s *Site) ID() int { return s.id }

// Epoch reports the generation this handle addresses.
func (s *Site) Epoch() uint64 { return s.epoch }

// call runs one RPC round: request out, frames in until the final one,
// row batches delivered to onRow (which may be nil). It retries once on
// a transport error that precedes the first response frame — the request
// provably did not start streaming, and every op is idempotent — and
// never after bytes have come back. Context cancellation interrupts
// blocked connection I/O via an AfterFunc that poisons the deadline.
func (s *Site) call(ctx context.Context, req *request, onRow func([]rdf.TermID) bool) (resp response, wire, messages int64, err error) {
	req.Site = s.id
	if req.Epoch == 0 {
		req.Epoch = s.epoch
	}
	if dl, ok := ctx.Deadline(); ok {
		req.TimeoutNS = int64(time.Until(dl))
		if req.TimeoutNS <= 0 {
			return response{}, 0, 0, ctx.Err()
		}
	}
	for attempt := 0; ; attempt++ {
		resp, wire, messages, err = s.attempt(ctx, req, onRow)
		if err == nil || attempt > 0 || messages > 1 {
			return resp, wire, messages, err
		}
		if cerr := ctx.Err(); cerr != nil {
			return resp, wire, messages, cerr
		}
		// Transient transport failure before any response frame: the
		// pooled connection may have been closed under us (worker
		// restart, idle teardown). One fresh-connection retry.
	}
}

// attempt is one connection's worth of call. messages counts frames in
// both directions (>1 once a response frame arrived, which is what
// disqualifies a retry).
func (s *Site) attempt(ctx context.Context, req *request, onRow func([]rdf.TermID) bool) (resp response, wire, messages int64, err error) {
	conn, err := s.link.get(ctx)
	if err != nil {
		return response{}, 0, 0, err
	}
	healthy := false
	defer func() {
		if healthy && conn.SetDeadline(time.Time{}) == nil {
			s.link.put(conn)
		} else {
			_ = conn.Close() // connection is being discarded either way
		}
	}()
	if dl, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(dl); err != nil {
			return response{}, 0, 0, err
		}
	}
	// A cancel (not just a deadline) must interrupt blocked reads, or a
	// canceled query would hang until the worker answers.
	stop := context.AfterFunc(ctx, func() {
		_ = conn.SetDeadline(time.Unix(1, 0)) // poison pill; a closed conn fails the read anyway
	})
	defer stop()

	n, err := writeFrame(conn, req)
	wire += n
	if err != nil {
		return response{}, wire, messages, s.callErr(ctx, err)
	}
	messages++
	deliver := onRow != nil
	for {
		var frame response
		n, err := readFrame(conn, &frame)
		wire += n
		if err != nil {
			return response{}, wire, messages, s.callErr(ctx, err)
		}
		messages++
		if frame.Done {
			if ferr := frame.err(); ferr != nil {
				// The transport did its job; the connection is clean.
				healthy = true
				return frame, wire, messages, ferr
			}
			healthy = true
			return frame, wire, messages, nil
		}
		if deliver {
			for _, row := range frame.Rows {
				if !onRow(row) {
					// The consumer is satisfied; keep draining so the
					// stream stays framed (cancellation tears the
					// connection down if the producer runs long).
					deliver = false
					break
				}
			}
		}
	}
}

// callErr prefers the context's verdict over the transport symptom it
// caused (a poisoned deadline reads as an I/O timeout).
func (s *Site) callErr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return fmt.Errorf("remote: site %d (%s): %w", s.id, s.link.addr, err)
}

// Candidates implements cluster.Site.
func (s *Site) Candidates(ctx context.Context, req cluster.CandidatesRequest) (cluster.CandidatesReply, error) {
	resp, wire, messages, err := s.call(ctx, &request{
		Op: opCandidates, Query: req.Query, Bits: req.Bits,
	}, nil)
	if err != nil {
		return cluster.CandidatesReply{}, err
	}
	return cluster.CandidatesReply{Vectors: resp.Vectors, Wire: wire, WireMessages: messages}, nil
}

// PartialEval implements cluster.Site. The request's Pool does not
// travel — the worker evaluates on its own pool.
func (s *Site) PartialEval(ctx context.Context, req cluster.PartialRequest, emit func(row []rdf.TermID) bool) (cluster.PartialReply, error) {
	resp, wire, messages, err := s.call(ctx, &request{
		Op: opPartial, Query: req.Query, Star: req.Star, Center: req.Center,
		Order: req.Order, EdgeRank: req.EdgeRank, Union: req.Union,
		MaxMatches: req.MaxMatches,
	}, emit)
	rep := cluster.PartialReply{Wire: wire, WireMessages: messages}
	if err != nil {
		return rep, err
	}
	rep.LocalMatches = resp.LocalMatches
	rep.Matches = resp.Matches
	rep.Tasks = resp.Tasks
	rep.Busy = time.Duration(resp.BusyNS)
	return rep, nil
}

// Stats implements cluster.Site. The address is filled client-side: the
// worker does not reliably know the name it was dialed by.
func (s *Site) Stats(ctx context.Context) (cluster.SiteInfo, error) {
	resp, _, _, err := s.call(ctx, &request{Op: opStats}, nil)
	if err != nil {
		return cluster.SiteInfo{Site: s.id, Addr: s.link.addr}, err
	}
	info := resp.Info
	info.Addr = s.link.addr
	return info, nil
}

// SwapGeneration implements cluster.Site: it forwards the phase to the
// worker and returns the handle bound to the staged epoch. The shipped
// fragment travels as its wire payload; nil means carry-forward, which
// the worker can refuse with need-sync if it holds nothing to carry.
func (s *Site) SwapGeneration(ctx context.Context, swap cluster.GenerationSwap) (cluster.Site, error) {
	next := &Site{coord: s.coord, link: s.link, id: s.id, epoch: swap.Epoch}
	if swap.Phase == cluster.SwapPrepare && s.coord != nil && s.coord.SkipPrepare != nil && s.coord.SkipPrepare(s.id, swap.Epoch) {
		return next, nil // test hook: the prepare was "lost in transit"
	}
	var payload *fragment.Payload
	if swap.Fragment != nil {
		payload = swap.Fragment.Payload()
	}
	_, _, _, err := s.call(ctx, &request{
		Op: opSwap, Epoch: swap.Epoch,
		SwapPhase: int(swap.Phase), Fragment: payload,
	}, nil)
	if err != nil {
		return nil, err
	}
	if swap.Phase == cluster.SwapCommit {
		return s, nil
	}
	return next, nil
}
