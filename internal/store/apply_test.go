package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"gstored/internal/rdf"
)

// applyEquivalent asserts that st.Apply(inserted, deleted) indexes
// exactly the same graph as a from-scratch New over the post-delta
// multiset: same triples, vertices, sizes, and per-key adjacency.
func applyEquivalent(t *testing.T, dict *rdf.Dictionary, base []rdf.Triple, inserted, deleted []rdf.Triple) *Store {
	t.Helper()
	st := New(dict, base)
	got := st.Apply(inserted, deleted)

	// Reference: rebuild the post-delta multiset the slow way.
	delSet := make(map[rdf.Triple]bool)
	for _, d := range deleted {
		delSet[d] = true
	}
	var after []rdf.Triple
	for _, tr := range base {
		if !delSet[tr] {
			after = append(after, tr)
		}
	}
	after = append(after, inserted...)
	want := New(dict, after)

	if got.Len() != want.Len() {
		t.Errorf("Len = %d, want %d", got.Len(), want.Len())
	}
	if !reflect.DeepEqual(got.Vertices(), want.Vertices()) {
		t.Errorf("Vertices = %v, want %v", got.Vertices(), want.Vertices())
	}
	if !reflect.DeepEqual(got.Triples(), want.Triples()) {
		t.Errorf("Triples = %v, want %v", got.Triples(), want.Triples())
	}
	// A fully-deleted adjacency is an empty slice in the applied store but
	// a missing map entry (nil) in the rebuilt one; both mean "no edges".
	sameAdj := func(a, b []HalfEdge) bool {
		return (len(a) == 0 && len(b) == 0) || reflect.DeepEqual(a, b)
	}
	for _, v := range want.Vertices() {
		if !sameAdj(got.Out(v), want.Out(v)) {
			t.Errorf("Out(%d) = %v, want %v", v, got.Out(v), want.Out(v))
		}
		if !sameAdj(got.In(v), want.In(v)) {
			t.Errorf("In(%d) = %v, want %v", v, got.In(v), want.In(v))
		}
	}
	gp, wp := got.Predicates(), want.Predicates()
	sort.Slice(gp, func(i, j int) bool { return gp[i] < gp[j] })
	sort.Slice(wp, func(i, j int) bool { return wp[i] < wp[j] })
	if !reflect.DeepEqual(gp, wp) {
		t.Errorf("Predicates = %v, want %v", gp, wp)
	}
	for _, p := range wp {
		if !reflect.DeepEqual(got.TriplesWith(p), want.TriplesWith(p)) {
			t.Errorf("TriplesWith(%d) = %v, want %v", p, got.TriplesWith(p), want.TriplesWith(p))
		}
	}
	// And the snapshot the delta was applied to must be untouched.
	if st.Len() != len(base) {
		t.Errorf("base store mutated: Len = %d, want %d", st.Len(), len(base))
	}
	return got
}

func applyTestData() (*rdf.Dictionary, []rdf.Triple, func(s, p, o string) rdf.Triple) {
	dict := rdf.NewDictionary()
	mk := func(s, p, o string) rdf.Triple {
		return rdf.Triple{S: dict.EncodeIRI(s), P: dict.EncodeIRI(p), O: dict.EncodeIRI(o)}
	}
	base := []rdf.Triple{
		mk("a", "p", "b"),
		mk("b", "p", "c"),
		mk("c", "q", "a"),
		mk("a", "q", "c"),
		mk("d", "p", "d"), // self loop
		mk("b", "p", "c"), // duplicate instance
	}
	return dict, base, mk
}

func TestApplyInsertOnly(t *testing.T) {
	dict, base, mk := applyTestData()
	applyEquivalent(t, dict, base, []rdf.Triple{mk("e", "p", "a"), mk("a", "r", "f")}, nil)
}

func TestApplyDeleteOnly(t *testing.T) {
	dict, base, mk := applyTestData()
	// Deleting b-p-c removes both instances; deleting d-p-d orphans d.
	applyEquivalent(t, dict, base, nil, []rdf.Triple{mk("b", "p", "c"), mk("d", "p", "d")})
}

func TestApplyMixed(t *testing.T) {
	dict, base, mk := applyTestData()
	applyEquivalent(t, dict, base,
		[]rdf.Triple{mk("e", "p", "b"), mk("d", "q", "a")},
		[]rdf.Triple{mk("a", "p", "b"), mk("c", "q", "a")})
}

func TestApplyDeleteAbsentIsNoop(t *testing.T) {
	dict, base, mk := applyTestData()
	st := New(dict, base)
	got := st.Apply(nil, []rdf.Triple{mk("x", "y", "z")})
	if got.Len() != st.Len() {
		t.Errorf("deleting an absent triple changed Len: %d != %d", got.Len(), st.Len())
	}
	if !reflect.DeepEqual(got.Vertices(), st.Vertices()) {
		t.Errorf("deleting an absent triple changed the vertex set: %v != %v", got.Vertices(), st.Vertices())
	}
}

// TestApplyDeleteAbsentAlongsideRealDelete is the regression test for
// the documented mis-normalized-delta contract: an absent triple whose
// endpoints are not graph vertices must not corrupt the vertex-set
// arithmetic when mixed with deletions that really happen (this used to
// panic with a negative slice capacity).
func TestApplyDeleteAbsentAlongsideRealDelete(t *testing.T) {
	dict, base, mk := applyTestData()
	ghost1 := mk("ghost1", "p", "ghost2")
	ghost2 := mk("ghost3", "q", "ghost4")
	applyEquivalent(t, dict, base, nil,
		[]rdf.Triple{mk("d", "p", "d"), ghost1, ghost2, ghost1})
}

func TestApplyUntouchedAdjacencyIsShared(t *testing.T) {
	dict, base, mk := applyTestData()
	st := New(dict, base)
	got := st.Apply([]rdf.Triple{mk("a", "r", "f")}, nil)
	// Vertex b's adjacency is untouched by the delta: the new store must
	// share the slice, not copy it — that sharing is what makes Apply
	// cheaper than a rebuild.
	b := dict.EncodeIRI("b")
	if len(st.Out(b)) == 0 || &st.Out(b)[0] != &got.Out(b)[0] {
		t.Error("untouched adjacency was copied instead of shared")
	}
}

// TestApplyRandomized drives Apply through many random deltas against
// the from-scratch reference.
func TestApplyRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dict := rdf.NewDictionary()
	name := func(i int) rdf.TermID { return dict.EncodeIRI(fmt.Sprintf("v%d", i)) }
	pred := func(i int) rdf.TermID { return dict.EncodeIRI(fmt.Sprintf("p%d", i)) }
	for round := 0; round < 30; round++ {
		var base []rdf.Triple
		for i := 0; i < 40; i++ {
			base = append(base, rdf.Triple{S: name(rng.Intn(12)), P: pred(rng.Intn(4)), O: name(rng.Intn(12))})
		}
		st := New(dict, base)
		var inserted, deleted []rdf.Triple
		seenIns := make(map[rdf.Triple]bool)
		for i := 0; i < 6; i++ {
			tr := rdf.Triple{S: name(rng.Intn(16)), P: pred(rng.Intn(4)), O: name(rng.Intn(16))}
			// Mirror DB.Update's normalization: inserts are absent + unique.
			if !st.HasTriple(tr.S, tr.P, tr.O) && !seenIns[tr] {
				inserted = append(inserted, tr)
				seenIns[tr] = true
			}
		}
		for i := 0; i < 4 && len(base) > 0; i++ {
			deleted = append(deleted, base[rng.Intn(len(base))])
		}
		applyEquivalent(t, dict, base, inserted, deleted)
	}
}
