// Package store implements the centralized RDF store each site runs in the
// paper's architecture (the role played by gStore [25]): an in-memory,
// adjacency-indexed multigraph with signature-style candidate filtering and
// backtracking subgraph-homomorphism matching for BGP queries (Def. 3).
package store

import (
	"sort"

	"gstored/internal/query"
	"gstored/internal/rdf"
)

// HalfEdge is one adjacency entry: the edge label P and the other endpoint V.
type HalfEdge struct {
	P, V rdf.TermID
}

// Store is an immutable, indexed RDF multigraph. Build one with New; the
// zero value is an empty graph.
type Store struct {
	Dict *rdf.Dictionary

	// out[s] and in[o] are adjacency lists sorted by (P, V); duplicates are
	// kept (RDF graphs are sets, but fragments replicate crossing edges and
	// generators may emit multisets — matching treats entries as instances).
	out map[rdf.TermID][]HalfEdge
	in  map[rdf.TermID][]HalfEdge

	// byPred[p] lists the triples carrying predicate p.
	byPred map[rdf.TermID][]rdf.Triple

	size     int
	vertices []rdf.TermID // all subjects and objects, sorted

	// stats is the per-predicate cardinality table built alongside the
	// index and maintained incrementally by Apply.
	stats *Stats
}

// New indexes the given triples. The dictionary is retained, not copied.
func New(dict *rdf.Dictionary, triples []rdf.Triple) *Store {
	st := &Store{
		Dict:   dict,
		out:    make(map[rdf.TermID][]HalfEdge),
		in:     make(map[rdf.TermID][]HalfEdge),
		byPred: make(map[rdf.TermID][]rdf.Triple),
	}
	vset := make(map[rdf.TermID]bool)
	for _, t := range triples {
		st.out[t.S] = append(st.out[t.S], HalfEdge{t.P, t.O})
		st.in[t.O] = append(st.in[t.O], HalfEdge{t.P, t.S})
		st.byPred[t.P] = append(st.byPred[t.P], t)
		vset[t.S] = true
		vset[t.O] = true
	}
	st.size = len(triples)
	for _, adj := range st.out {
		sortHalfEdges(adj)
	}
	for _, adj := range st.in {
		sortHalfEdges(adj)
	}
	// byPred lists are used to seed matching: identical triples would seed
	// identical bindings, so deduplicate (instance multiplicity stays
	// available through CountTriples).
	for p, ts := range st.byPred {
		sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
		dedup := ts[:0]
		for i, t := range ts {
			if i == 0 || t != ts[i-1] {
				dedup = append(dedup, t)
			}
		}
		st.byPred[p] = dedup
	}
	st.vertices = make([]rdf.TermID, 0, len(vset))
	for v := range vset {
		st.vertices = append(st.vertices, v)
	}
	sort.Slice(st.vertices, func(i, j int) bool { return st.vertices[i] < st.vertices[j] })
	st.stats = buildStats(st.byPred)
	return st
}

// FromGraph indexes all triples of g.
func FromGraph(g *rdf.Graph) *Store { return New(g.Dict, g.Triples) }

func sortHalfEdges(adj []HalfEdge) {
	sort.Slice(adj, func(i, j int) bool {
		if adj[i].P != adj[j].P {
			return adj[i].P < adj[j].P
		}
		return adj[i].V < adj[j].V
	})
}

// Len reports the number of indexed triples (edge instances).
func (st *Store) Len() int { return st.size }

// NumVertices reports the number of distinct vertices.
func (st *Store) NumVertices() int { return len(st.vertices) }

// Vertices returns all vertices in ascending ID order. Callers must not
// modify the returned slice.
func (st *Store) Vertices() []rdf.TermID { return st.vertices }

// HasVertex reports whether v occurs as a subject or object.
func (st *Store) HasVertex(v rdf.TermID) bool {
	i := sort.Search(len(st.vertices), func(i int) bool { return st.vertices[i] >= v })
	return i < len(st.vertices) && st.vertices[i] == v
}

// Out returns the outgoing adjacency of s (sorted by predicate then
// object). Callers must not modify it.
func (st *Store) Out(s rdf.TermID) []HalfEdge { return st.out[s] }

// In returns the incoming adjacency of o. Callers must not modify it.
func (st *Store) In(o rdf.TermID) []HalfEdge { return st.in[o] }

// OutWith returns the sub-slice of s's outgoing edges labeled p.
func (st *Store) OutWith(s, p rdf.TermID) []HalfEdge { return predRange(st.out[s], p) }

// InWith returns the sub-slice of o's incoming edges labeled p.
func (st *Store) InWith(o, p rdf.TermID) []HalfEdge { return predRange(st.in[o], p) }

func predRange(adj []HalfEdge, p rdf.TermID) []HalfEdge {
	lo := sort.Search(len(adj), func(i int) bool { return adj[i].P >= p })
	hi := sort.Search(len(adj), func(i int) bool { return adj[i].P > p })
	return adj[lo:hi]
}

// HasTriple reports whether at least one ⟨s,p,o⟩ edge instance exists.
func (st *Store) HasTriple(s, p, o rdf.TermID) bool {
	r := st.OutWith(s, p)
	i := sort.Search(len(r), func(i int) bool { return r[i].V >= o })
	return i < len(r) && r[i].V == o
}

// CountTriples returns the number of ⟨s,p,o⟩ edge instances (multigraph
// multiplicity).
func (st *Store) CountTriples(s, p, o rdf.TermID) int {
	r := st.OutWith(s, p)
	lo := sort.Search(len(r), func(i int) bool { return r[i].V >= o })
	hi := sort.Search(len(r), func(i int) bool { return r[i].V > o })
	return hi - lo
}

// PredCount returns how many triples carry predicate p.
func (st *Store) PredCount(p rdf.TermID) int { return len(st.byPred[p]) }

// TriplesWith returns the triples carrying predicate p. Callers must not
// modify the slice.
func (st *Store) TriplesWith(p rdf.TermID) []rdf.Triple { return st.byPred[p] }

// Predicates returns the distinct predicates, unsorted.
func (st *Store) Predicates() []rdf.TermID {
	out := make([]rdf.TermID, 0, len(st.byPred))
	for p := range st.byPred {
		out = append(out, p)
	}
	return out
}

// Triples returns a copy of all indexed triples in (S,P,O) order.
func (st *Store) Triples() []rdf.Triple {
	out := make([]rdf.Triple, 0, st.size)
	for _, s := range st.vertices {
		for _, he := range st.out[s] {
			out = append(out, rdf.Triple{S: s, P: he.P, O: he.V})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// signatureOK is the gStore-style vertex signature test: u can match query
// vertex qv only if, for every query edge incident to qv with a constant
// label, u has at least one adjacent edge with that label in the right
// direction, and for variable-labeled incident edges u has at least one
// edge in that direction.
func (st *Store) signatureOK(q *query.Graph, qv int, u rdf.TermID) bool {
	for _, e := range q.Edges {
		if e.From == qv {
			if e.HasVarLabel() {
				if len(st.out[u]) == 0 {
					return false
				}
			} else if len(st.OutWith(u, e.Label)) == 0 {
				return false
			}
		}
		if e.To == qv {
			if e.HasVarLabel() {
				if len(st.in[u]) == 0 {
					return false
				}
			} else if len(st.InWith(u, e.Label)) == 0 {
				return false
			}
		}
	}
	return true
}

// CheckVertex reports whether data vertex u is a viable match for query
// vertex qv: constants must be equal; variables must pass the signature
// test.
func (st *Store) CheckVertex(q *query.Graph, qv int, u rdf.TermID) bool {
	v := q.Vertices[qv]
	if !v.IsVar() {
		return v.Const == u
	}
	return st.signatureOK(q, qv, u)
}

// Candidates computes C(Q, v): the set of vertices that could match query
// vertex qv, per the signature test (Section VI uses exactly this set). The
// result is sorted. For constant vertices it is the vertex itself when
// present.
func (st *Store) Candidates(q *query.Graph, qv int) []rdf.TermID {
	v := q.Vertices[qv]
	if !v.IsVar() {
		if st.HasVertex(v.Const) {
			return []rdf.TermID{v.Const}
		}
		return nil
	}
	// Seed from the most selective incident constant-label edge, falling
	// back to all vertices. Pick the best edge first, then build its seed
	// set once — not once per strictly-better edge encountered.
	best, bestCount := -1, 0
	for i, e := range q.Edges {
		if e.HasVarLabel() {
			continue
		}
		if e.From != qv && e.To != qv {
			continue
		}
		if c := st.PredCount(e.Label); best < 0 || c < bestCount {
			best, bestCount = i, c
		}
	}
	seed := st.vertices
	if best >= 0 {
		e := q.Edges[best]
		set := make(map[rdf.TermID]bool, bestCount)
		for _, t := range st.byPred[e.Label] {
			if e.From == qv {
				set[t.S] = true
			}
			if e.To == qv {
				set[t.O] = true
			}
		}
		seed = make([]rdf.TermID, 0, len(set))
		for u := range set {
			seed = append(seed, u)
		}
	}
	out := make([]rdf.TermID, 0, len(seed))
	for _, u := range seed {
		if st.signatureOK(q, qv, u) {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
