package store

import (
	"sync/atomic"
	"time"

	"gstored/internal/pool"
	"gstored/internal/query"
	"gstored/internal/rdf"
)

// Binding is one homomorphism from a query graph into the store (Def. 3).
type Binding struct {
	// Vertices maps each query vertex index to its data vertex.
	Vertices []rdf.TermID
	// Vars maps each query variable index (vertex and edge-label variables
	// alike) to its bound term.
	Vars []rdf.TermID
}

// MatchOptions tunes Match / MatchFunc.
type MatchOptions struct {
	// VertexFilter, when non-nil, vetoes assigning data vertex u to query
	// vertex qv; used by the partial-evaluation layer to confine matching
	// and by the Section VI candidate optimization to filter candidates.
	VertexFilter func(qv int, u rdf.TermID) bool
	// Limit stops enumeration after this many matches (0 = unlimited).
	Limit int
	// Cancel, when non-nil, is polled periodically during enumeration;
	// returning true abandons the search. The engine plugs context
	// cancellation in here so long matches stop cooperatively.
	Cancel func() bool
	// Order overrides the edge evaluation order with a precompiled one
	// (indices into q.Edges). The engine compiles orders against global
	// cardinalities so every fragment evaluates the same selectivity-
	// ordered plan. Invalid orders — wrong length or not a permutation —
	// fall back to the store's own greedy order.
	Order []int
	// Pool, when non-nil with width > 1, splits the first edge's seed
	// domain into contiguous chunks evaluated concurrently; yield may
	// then be called from multiple goroutines. Limit still bounds the
	// global emission count and Cancel stops all workers. Orders that
	// re-seed mid-way (disconnected patterns) run sequentially: chunked
	// workers would each re-enumerate the later components in full.
	Pool *pool.Pool
	// OnTask, when non-nil, receives the wall time of each evaluation
	// task (one per seed chunk; exactly one for a sequential run). It
	// may be called concurrently.
	OnTask func(d time.Duration)
}

// Match enumerates all matches of q.
func (st *Store) Match(q *query.Graph) []Binding {
	var out []Binding
	st.MatchFunc(q, MatchOptions{}, func(b Binding) bool {
		out = append(out, b)
		return true
	})
	return out
}

// MatchFunc enumerates matches of q, invoking yield for each; enumeration
// stops when yield returns false or opts.Limit is reached. The Binding
// passed to yield is freshly allocated and may be retained.
func (st *Store) MatchFunc(q *query.Graph, opts MatchOptions, yield func(Binding) bool) {
	if len(q.Edges) == 0 {
		return
	}
	order := opts.Order
	if !validOrder(order, len(q.Edges)) {
		order = edgeOrder(st, q)
	}
	if opts.Pool.Workers() > 1 && connectedOrder(q, order) {
		st.matchParallel(q, opts, order, yield)
		return
	}
	if opts.OnTask != nil {
		start := time.Now()
		defer func() { opts.OnTask(time.Since(start)) }()
	}
	m := &matcher{
		st:   st,
		q:    q,
		opts: opts,
		vb:   make([]rdf.TermID, len(q.Vertices)),
		evb:  make([]rdf.TermID, len(q.Vars)),
		lab:  make([]rdf.TermID, len(q.Edges)),
	}
	m.order = order
	m.sameGroup = samePairGroups(q, m.order)
	m.yield = yield
	m.step(0)
}

// validOrder reports whether order is a permutation of [0, n).
func validOrder(order []int, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, ei := range order {
		if ei < 0 || ei >= n || seen[ei] {
			return false
		}
		seen[ei] = true
	}
	return true
}

// connectedOrder reports whether every edge after the first shares a
// vertex with an earlier edge, i.e. enumeration seeds exactly once.
func connectedOrder(q *query.Graph, order []int) bool {
	bound := make([]bool, len(q.Vertices))
	for k, ei := range order {
		e := q.Edges[ei]
		if k > 0 && !bound[e.From] && !bound[e.To] {
			return false
		}
		bound[e.From] = true
		bound[e.To] = true
	}
	return true
}

// matchParallel runs the backtracking search with the first edge's seed
// domain — TriplesWith(label) for a constant label, the vertex set for
// a variable one — split into contiguous chunks, each enumerated by an
// independent matcher on the pool. Every seed is owned by exactly one
// chunk, so the union of chunk emissions equals the sequential result
// multiset; emission order across chunks is unspecified.
func (st *Store) matchParallel(q *query.Graph, opts MatchOptions, order []int, yield func(Binding) bool) {
	e0 := q.Edges[order[0]]
	var seedT []rdf.Triple
	var seedV []rdf.TermID
	if e0.HasVarLabel() {
		seedV = st.vertices
	} else {
		seedT = st.TriplesWith(e0.Label)
	}
	n := len(seedT) + len(seedV)
	chunks := pool.Chunks(n, 4*opts.Pool.Workers())
	if len(chunks) == 0 {
		return
	}
	sameGroup := samePairGroups(q, order)
	var stop atomic.Bool
	var emitted atomic.Int64
	limit := int64(opts.Limit)
	cancel := opts.Cancel
	poll := func() bool { return stop.Load() || (cancel != nil && cancel()) }
	// wrapped applies Limit across workers: Add returns a unique rank, so
	// exactly Limit bindings pass even under concurrent emission.
	wrapped := func(b Binding) bool {
		if limit > 0 {
			rank := emitted.Add(1)
			if rank > limit {
				stop.Store(true)
				return false
			}
			if !yield(b) || rank == limit {
				stop.Store(true)
				return false
			}
			return true
		}
		if !yield(b) {
			stop.Store(true)
			return false
		}
		return true
	}
	tasks := make([]func(), len(chunks))
	for i, ch := range chunks {
		tasks[i] = func() {
			if stop.Load() {
				return
			}
			var start time.Time
			if opts.OnTask != nil {
				start = time.Now()
			}
			m := &matcher{
				st:        st,
				q:         q,
				opts:      MatchOptions{VertexFilter: opts.VertexFilter, Cancel: poll},
				order:     order,
				vb:        make([]rdf.TermID, len(q.Vertices)),
				evb:       make([]rdf.TermID, len(q.Vars)),
				lab:       make([]rdf.TermID, len(q.Edges)),
				sameGroup: sameGroup,
				yield:     wrapped,
			}
			if seedT != nil {
				m.seedT = seedT[ch[0]:ch[1]]
			} else {
				m.seedV = seedV[ch[0]:ch[1]]
			}
			m.step(0)
			if opts.OnTask != nil {
				opts.OnTask(time.Since(start))
			}
		}
	}
	opts.Pool.Do(tasks...)
}

type matcher struct {
	st    *Store
	q     *query.Graph
	opts  MatchOptions
	order []int        // edge evaluation order (indices into q.Edges)
	vb    []rdf.TermID // vertex bindings (NoTerm = unbound)
	evb   []rdf.TermID // edge-label variable bindings
	lab   []rdf.TermID // concrete label assigned to each query edge
	// sameGroup[k] lists positions before k in order whose edges connect
	// the same ordered query-vertex pair (multi-edge injectivity, Def. 3).
	sameGroup [][]int
	yield     func(Binding) bool
	emitted   int
	steps     uint
	stopped   bool
	// seedT/seedV, when set, replace the first extendSeed's enumeration
	// domain with one contiguous chunk of it (parallel evaluation).
	seedT []rdf.Triple
	seedV []rdf.TermID
}

// edgeOrder picks a connected evaluation order: the most selective edge
// first, then greedy expansion preferring already-bound endpoints and
// constant labels.
func edgeOrder(st *Store, q *query.Graph) []int {
	n := len(q.Edges)
	picked := make([]bool, n)
	bound := make([]bool, len(q.Vertices))
	order := make([]int, 0, n)

	estimate := func(i int) int {
		e := q.Edges[i]
		est := st.size + 1
		if vf := q.Vertices[e.From]; !vf.IsVar() {
			d := len(st.Out(vf.Const))
			if !e.HasVarLabel() {
				d = len(st.OutWith(vf.Const, e.Label))
			}
			if d < est {
				est = d
			}
		}
		if vt := q.Vertices[e.To]; !vt.IsVar() {
			d := len(st.In(vt.Const))
			if !e.HasVarLabel() {
				d = len(st.InWith(vt.Const, e.Label))
			}
			if d < est {
				est = d
			}
		}
		if est == st.size+1 && !e.HasVarLabel() {
			est = st.PredCount(e.Label)
		}
		return est
	}

	for len(order) < n {
		best, bestScore := -1, -1
		for i := 0; i < n; i++ {
			if picked[i] {
				continue
			}
			e := q.Edges[i]
			connected := len(order) == 0 || bound[e.From] || bound[e.To]
			if !connected {
				continue
			}
			// Lower score = evaluated earlier. Both endpoints bound is a
			// pure check (cheapest); then prefer small estimates.
			var score int
			switch {
			case len(order) > 0 && bound[e.From] && bound[e.To]:
				score = 0
			case e.HasVarLabel():
				score = 2*st.size + 2
			default:
				score = estimate(i) + 1
			}
			if best == -1 || score < bestScore {
				best, bestScore = i, score
			}
		}
		if best == -1 { // disconnected query: start a fresh component
			for i := 0; i < n; i++ {
				if !picked[i] {
					best = i
					break
				}
			}
		}
		picked[best] = true
		order = append(order, best)
		bound[q.Edges[best].From] = true
		bound[q.Edges[best].To] = true
	}
	return order
}

// samePairGroups precomputes, per order position, the earlier positions
// whose edges join the same ordered query-vertex pair.
func samePairGroups(q *query.Graph, order []int) [][]int {
	groups := make([][]int, len(order))
	for k, ei := range order {
		e := q.Edges[ei]
		for j := 0; j < k; j++ {
			f := q.Edges[order[j]]
			if f.From == e.From && f.To == e.To {
				groups[k] = append(groups[k], j)
			}
		}
	}
	return groups
}

func (m *matcher) step(k int) {
	if m.stopped {
		return
	}
	if m.opts.Cancel != nil {
		// Poll every 256 steps: cheap enough for the hot path, prompt
		// enough for timeouts.
		if m.steps&0xff == 0 && m.opts.Cancel() {
			m.stopped = true
			return
		}
		m.steps++
	}
	if k == len(m.order) {
		m.emit()
		return
	}
	ei := m.order[k]
	e := m.q.Edges[ei]
	u, w := m.vb[e.From], m.vb[e.To]

	fixed := rdf.NoTerm // concrete label this edge must carry, if known
	if e.HasVarLabel() {
		fixed = m.evb[e.LabelVar]
	} else {
		fixed = e.Label
	}

	switch {
	case u != rdf.NoTerm && w != rdf.NoTerm:
		m.extendBothBound(k, e, u, w, fixed)
	case u != rdf.NoTerm:
		m.extendForward(k, e, u, fixed)
	case w != rdf.NoTerm:
		m.extendBackward(k, e, w, fixed)
	default:
		m.extendSeed(k, e, fixed)
	}
}

// assignLabel records the label for edge position k, binding the label
// variable if this is its first use. It returns a restore func, or false if
// the multi-edge injectivity budget between (u,w) is exhausted.
func (m *matcher) assignLabel(k int, e query.Edge, u, w, p rdf.TermID) (func(), bool) {
	// Injectivity: count earlier same-pair edges that chose label p; the
	// multigraph must have more instances than that.
	usedSame := 0
	for _, j := range m.sameGroup[k] {
		if m.lab[m.order[j]] == p {
			usedSame++
		}
	}
	if usedSame > 0 && m.st.CountTriples(u, p, w) <= usedSame {
		return nil, false
	}
	m.lab[m.order[k]] = p
	var boundVar bool
	if e.HasVarLabel() && m.evb[e.LabelVar] == rdf.NoTerm {
		m.evb[e.LabelVar] = p
		boundVar = true
	}
	lv := e.LabelVar
	return func() {
		m.lab[m.order[k]] = rdf.NoTerm
		if boundVar {
			m.evb[lv] = rdf.NoTerm
		}
	}, true
}

func (m *matcher) bindVertex(qv int, u rdf.TermID) (func(), bool) {
	if !m.st.CheckVertex(m.q, qv, u) {
		return nil, false
	}
	if m.opts.VertexFilter != nil && !m.opts.VertexFilter(qv, u) {
		return nil, false
	}
	m.vb[qv] = u
	return func() { m.vb[qv] = rdf.NoTerm }, true
}

func (m *matcher) extendBothBound(k int, e query.Edge, u, w, fixed rdf.TermID) {
	if fixed != rdf.NoTerm {
		if !m.st.HasTriple(u, fixed, w) {
			return
		}
		undo, ok := m.assignLabel(k, e, u, w, fixed)
		if !ok {
			return
		}
		m.step(k + 1)
		undo()
		return
	}
	// Unbound label variable: try each distinct label between u and w.
	var prev rdf.TermID
	for _, he := range m.st.Out(u) {
		if he.V != w || he.P == prev {
			continue
		}
		prev = he.P
		undo, ok := m.assignLabel(k, e, u, w, he.P)
		if !ok {
			continue
		}
		m.step(k + 1)
		undo()
		if m.stopped {
			return
		}
	}
}

func (m *matcher) extendForward(k int, e query.Edge, u, fixed rdf.TermID) {
	adj := m.st.Out(u)
	if fixed != rdf.NoTerm {
		adj = m.st.OutWith(u, fixed)
	}
	var prev HalfEdge
	for i, he := range adj {
		// Duplicate instances yield identical bindings; multiplicity is
		// honored by assignLabel via CountTriples.
		if i > 0 && he == prev {
			continue
		}
		prev = he
		undoV, ok := m.bindVertex(e.To, he.V)
		if !ok {
			continue
		}
		undoL, ok := m.assignLabel(k, e, u, he.V, he.P)
		if ok {
			m.step(k + 1)
			undoL()
		}
		undoV()
		if m.stopped {
			return
		}
	}
}

func (m *matcher) extendBackward(k int, e query.Edge, w, fixed rdf.TermID) {
	adj := m.st.In(w)
	if fixed != rdf.NoTerm {
		adj = m.st.InWith(w, fixed)
	}
	var prev HalfEdge
	for i, he := range adj {
		if i > 0 && he == prev {
			continue
		}
		prev = he
		undoV, ok := m.bindVertex(e.From, he.V)
		if !ok {
			continue
		}
		undoL, ok := m.assignLabel(k, e, he.V, w, he.P)
		if ok {
			m.step(k + 1)
			undoL()
		}
		undoV()
		if m.stopped {
			return
		}
	}
}

// extendSeed handles an edge with neither endpoint bound (the first edge,
// or the first edge of a new component for disconnected patterns).
func (m *matcher) extendSeed(k int, e query.Edge, fixed rdf.TermID) {
	seedOne := func(t rdf.Triple) {
		undoU, ok := m.bindVertex(e.From, t.S)
		if !ok {
			return
		}
		// Self-loop pattern: From == To requires S == O.
		if e.From == e.To && t.S != t.O {
			undoU()
			return
		}
		var undoW func()
		if e.From != e.To {
			undoW, ok = m.bindVertex(e.To, t.O)
			if !ok {
				undoU()
				return
			}
		}
		undoL, ok := m.assignLabel(k, e, t.S, t.O, t.P)
		if ok {
			m.step(k + 1)
			undoL()
		}
		if undoW != nil {
			undoW()
		}
		undoU()
	}
	if m.seedT != nil || m.seedV != nil {
		// Parallel chunk: this matcher owns one contiguous slice of the
		// first edge's seed domain (connected orders seed exactly once,
		// so this branch runs at most once per matcher).
		ts, vs := m.seedT, m.seedV
		m.seedT, m.seedV = nil, nil
		if ts != nil {
			for _, t := range ts {
				seedOne(t)
				if m.stopped {
					return
				}
			}
			return
		}
		for _, s := range vs {
			var prev HalfEdge
			for i, he := range m.st.Out(s) {
				if i > 0 && he == prev {
					continue
				}
				prev = he
				seedOne(rdf.Triple{S: s, P: he.P, O: he.V})
				if m.stopped {
					return
				}
			}
		}
		return
	}
	if fixed != rdf.NoTerm {
		for _, t := range m.st.TriplesWith(fixed) {
			seedOne(t)
			if m.stopped {
				return
			}
		}
		return
	}
	for _, s := range m.st.vertices {
		var prev HalfEdge
		for i, he := range m.st.Out(s) {
			if i > 0 && he == prev {
				continue
			}
			prev = he
			seedOne(rdf.Triple{S: s, P: he.P, O: he.V})
			if m.stopped {
				return
			}
		}
	}
}

func (m *matcher) emit() {
	b := Binding{
		Vertices: append([]rdf.TermID(nil), m.vb...),
		Vars:     make([]rdf.TermID, len(m.q.Vars)),
	}
	for i, v := range m.q.Vertices {
		if v.IsVar() {
			b.Vars[v.Var] = m.vb[i]
		}
	}
	for _, ev := range m.q.EdgeVars() {
		b.Vars[ev] = m.evb[ev]
	}
	if !m.yield(b) {
		m.stopped = true
		return
	}
	m.emitted++
	if m.opts.Limit > 0 && m.emitted >= m.opts.Limit {
		m.stopped = true
	}
}
