package store

import (
	"sort"

	"gstored/internal/rdf"
)

// Apply returns a new immutable Store reflecting st with every instance
// of each triple in deleted removed and each triple in inserted added as
// one instance. st itself is never modified — executions holding it keep
// a consistent snapshot — and the cost is proportional to the vertex
// count (one shallow map copy) plus the adjacency actually touched, not
// to a full re-index of the graph.
//
// Callers are expected to pass a set-semantics delta: inserted triples
// not yet present and deleted triples that are (DB.Update normalizes its
// request this way). Apply is nonetheless safe under violations —
// inserting an existing triple adds a duplicate instance (the multigraph
// already models those), deleting an absent one is a no-op — so a
// mis-normalized delta degrades to multiset behavior rather than
// corrupting the index.
func (st *Store) Apply(inserted, deleted []rdf.Triple) *Store {
	next := &Store{
		Dict:   st.Dict,
		out:    make(map[rdf.TermID][]HalfEdge, len(st.out)),
		in:     make(map[rdf.TermID][]HalfEdge, len(st.in)),
		byPred: make(map[rdf.TermID][]rdf.Triple, len(st.byPred)),
		size:   st.size,
	}
	// Shallow copy: untouched keys share their (immutable) slices with st.
	for v, adj := range st.out {
		next.out[v] = adj
	}
	for v, adj := range st.in {
		next.in[v] = adj
	}
	for p, ts := range st.byPred {
		next.byPred[p] = ts
	}

	// Deletions first: remove every instance from the touched adjacency
	// slices (copy-on-write) and every entry from the deduplicated byPred
	// lists.
	delSet := make(map[rdf.Triple]bool, len(deleted))
	for _, t := range deleted {
		if delSet[t] {
			continue // duplicate request entry; instances already counted
		}
		n := st.CountTriples(t.S, t.P, t.O)
		if n == 0 {
			continue // absent triple: a no-op, and it must not enter delSet
			// — its endpoints may not be graph vertices at all, and the
			// orphan check below assumes delSet endpoints were.
		}
		delSet[t] = true
		next.size -= n
		next.out[t.S] = dropHalfEdges(next.out[t.S], HalfEdge{t.P, t.O})
		next.in[t.O] = dropHalfEdges(next.in[t.O], HalfEdge{t.P, t.S})
		next.byPred[t.P] = dropTriple(next.byPred[t.P], t)
		// Emptied entries are removed outright so derived views (e.g.
		// Predicates) match a from-scratch build of the same graph.
		if len(next.out[t.S]) == 0 {
			delete(next.out, t.S)
		}
		if len(next.in[t.O]) == 0 {
			delete(next.in, t.O)
		}
		if len(next.byPred[t.P]) == 0 {
			delete(next.byPred, t.P)
		}
	}

	// Insertions: splice each instance into the sorted adjacency and, if
	// new, into the deduplicated byPred list.
	for _, t := range inserted {
		next.size++
		next.out[t.S] = insertHalfEdge(next.out[t.S], st.out[t.S], HalfEdge{t.P, t.O})
		next.in[t.O] = insertHalfEdge(next.in[t.O], st.in[t.O], HalfEdge{t.P, t.S})
		next.byPred[t.P] = insertTriple(next.byPred[t.P], st.byPred[t.P], t)
	}

	// Cardinality table: recompute only the predicates the delta touched,
	// mirroring the copy-on-write adjacency discipline above.
	touchedPreds := make(map[rdf.TermID]bool, len(delSet)+len(inserted))
	for t := range delSet {
		touchedPreds[t.P] = true
	}
	for _, t := range inserted {
		touchedPreds[t.P] = true
	}
	next.stats = st.stats.rebuild(touchedPreds, next.byPred)

	// Vertex set: recompute only when the delta could have changed it —
	// an inserted endpoint the old graph did not know, or a deleted
	// endpoint left with no adjacency at all.
	added := make(map[rdf.TermID]bool)
	removed := make(map[rdf.TermID]bool)
	for _, t := range inserted {
		for _, v := range [2]rdf.TermID{t.S, t.O} {
			if !st.HasVertex(v) {
				added[v] = true
			}
		}
	}
	for t := range delSet {
		for _, v := range [2]rdf.TermID{t.S, t.O} {
			// st.HasVertex guards the arithmetic below: only a vertex the
			// old graph actually had can be "removed" from it.
			if !added[v] && st.HasVertex(v) && len(next.out[v]) == 0 && len(next.in[v]) == 0 {
				removed[v] = true
			}
		}
	}
	if len(added) == 0 && len(removed) == 0 {
		next.vertices = st.vertices
		return next
	}
	vs := make([]rdf.TermID, 0, len(st.vertices)+len(added)-len(removed))
	for _, v := range st.vertices {
		if !removed[v] {
			vs = append(vs, v)
		}
	}
	for v := range added {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	next.vertices = vs
	return next
}

// dropHalfEdges returns adj without any instance equal to he, copying
// only when something is actually removed.
func dropHalfEdges(adj []HalfEdge, he HalfEdge) []HalfEdge {
	lo := sort.Search(len(adj), func(i int) bool {
		return adj[i].P > he.P || (adj[i].P == he.P && adj[i].V >= he.V)
	})
	hi := lo
	for hi < len(adj) && adj[hi] == he {
		hi++
	}
	if lo == hi {
		return adj
	}
	out := make([]HalfEdge, 0, len(adj)-(hi-lo))
	out = append(out, adj[:lo]...)
	return append(out, adj[hi:]...)
}

// insertHalfEdge splices he into sorted adj. When adj still aliases the
// original store's slice (no deletion copied it yet), a fresh copy is
// made so the shared snapshot is never written.
func insertHalfEdge(adj, original []HalfEdge, he HalfEdge) []HalfEdge {
	i := sort.Search(len(adj), func(i int) bool {
		return adj[i].P > he.P || (adj[i].P == he.P && adj[i].V >= he.V)
	})
	out := adj
	if len(adj) == len(original) && len(adj) > 0 && &adj[0] == &original[0] {
		out = make([]HalfEdge, len(adj), len(adj)+1)
		copy(out, adj)
	}
	out = append(out, HalfEdge{})
	copy(out[i+1:], out[i:])
	out[i] = he
	return out
}

// dropTriple removes t from the sorted, deduplicated list ts.
func dropTriple(ts []rdf.Triple, t rdf.Triple) []rdf.Triple {
	i := sort.Search(len(ts), func(i int) bool { return !ts[i].Less(t) })
	if i >= len(ts) || ts[i] != t {
		return ts
	}
	out := make([]rdf.Triple, 0, len(ts)-1)
	out = append(out, ts[:i]...)
	return append(out, ts[i+1:]...)
}

// insertTriple splices t into the sorted, deduplicated list ts (a no-op
// when t is already listed), copying when ts still aliases the original.
func insertTriple(ts, original []rdf.Triple, t rdf.Triple) []rdf.Triple {
	i := sort.Search(len(ts), func(i int) bool { return !ts[i].Less(t) })
	if i < len(ts) && ts[i] == t {
		return ts // byPred is deduplicated; a second instance adds nothing
	}
	out := ts
	if len(ts) == len(original) && len(ts) > 0 && &ts[0] == &original[0] {
		out = make([]rdf.Triple, len(ts), len(ts)+1)
		copy(out, ts)
	}
	out = append(out, rdf.Triple{})
	copy(out[i+1:], out[i:])
	out[i] = t
	return out
}
