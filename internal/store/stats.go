package store

import (
	"gstored/internal/rdf"
)

// Stats is the per-predicate cardinality table collected at build and
// update time. Query compilation reads it to order edge expansion by
// estimated selectivity (bound/small side first); it lives here rather
// than in the query log because it describes the data itself — counts
// must stay exact across updates and be available for predicates no
// query has touched yet.
type Stats struct {
	preds   map[rdf.TermID]PredStat
	triples int // distinct triples across all predicates
}

// PredStat summarizes the cardinality of one predicate.
type PredStat struct {
	Count    int // distinct triples carrying the predicate
	Subjects int // distinct subjects among them
	Objects  int // distinct objects among them
}

// Pred returns the cardinality summary of predicate p.
func (s *Stats) Pred(p rdf.TermID) (PredStat, bool) {
	if s == nil {
		return PredStat{}, false
	}
	ps, ok := s.preds[p]
	return ps, ok
}

// Triples reports the number of distinct triples the table covers.
func (s *Stats) Triples() int {
	if s == nil {
		return 0
	}
	return s.triples
}

// NumPredicates reports the number of distinct predicates.
func (s *Stats) NumPredicates() int {
	if s == nil {
		return 0
	}
	return len(s.preds)
}

// Stats returns the store's cardinality table. It is immutable, like
// the store itself.
func (st *Store) Stats() *Stats { return st.stats }

// predStatOf summarizes one deduplicated byPred list, which is sorted
// by (S, P, O) — distinct subjects fall out of the run structure;
// objects need a set.
func predStatOf(ts []rdf.Triple) PredStat {
	ps := PredStat{Count: len(ts)}
	objs := make(map[rdf.TermID]struct{}, len(ts))
	for i, t := range ts {
		if i == 0 || t.S != ts[i-1].S {
			ps.Subjects++
		}
		objs[t.O] = struct{}{}
	}
	ps.Objects = len(objs)
	return ps
}

// buildStats computes the table from scratch over deduplicated byPred
// lists.
func buildStats(byPred map[rdf.TermID][]rdf.Triple) *Stats {
	s := &Stats{preds: make(map[rdf.TermID]PredStat, len(byPred))}
	for p, ts := range byPred {
		ps := predStatOf(ts)
		s.preds[p] = ps
		s.triples += ps.Count
	}
	return s
}

// rebuild returns a new table with only the touched predicates
// recomputed from byPred — the same copy-on-write discipline Apply
// uses for adjacency, so update cost tracks the delta, not the graph.
func (s *Stats) rebuild(touched map[rdf.TermID]bool, byPred map[rdf.TermID][]rdf.Triple) *Stats {
	if s == nil || len(touched) == 0 {
		if s == nil {
			return buildStats(byPred)
		}
		return s
	}
	next := &Stats{preds: make(map[rdf.TermID]PredStat, len(byPred)), triples: s.triples}
	for p, ps := range s.preds {
		next.preds[p] = ps
	}
	for p := range touched {
		if old, ok := next.preds[p]; ok {
			next.triples -= old.Count
			delete(next.preds, p)
		}
		if ts := byPred[p]; len(ts) > 0 {
			ps := predStatOf(ts)
			next.preds[p] = ps
			next.triples += ps.Count
		}
	}
	return next
}
