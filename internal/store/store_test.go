package store

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"gstored/internal/query"
	"gstored/internal/rdf"
)

// tinyGraph builds a small social graph used across tests:
//
//	alice --knows--> bob --knows--> carol
//	alice --knows--> carol
//	alice --age--> "30"
//	bob   --age--> "30"
//	carol --likes--> alice
func tinyGraph() *rdf.Graph {
	g := rdf.NewGraph()
	g.AddIRIs("alice", "knows", "bob")
	g.AddIRIs("bob", "knows", "carol")
	g.AddIRIs("alice", "knows", "carol")
	g.Add(rdf.NewIRI("alice"), rdf.NewIRI("age"), rdf.NewLiteral("30"))
	g.Add(rdf.NewIRI("bob"), rdf.NewIRI("age"), rdf.NewLiteral("30"))
	g.AddIRIs("carol", "likes", "alice")
	return g
}

func id(t *testing.T, d *rdf.Dictionary, term rdf.Term) rdf.TermID {
	t.Helper()
	v, ok := d.Lookup(term)
	if !ok {
		t.Fatalf("term %s not in dictionary", term)
	}
	return v
}

func TestStoreIndexes(t *testing.T) {
	g := tinyGraph()
	st := FromGraph(g)
	if st.Len() != 6 {
		t.Fatalf("Len = %d, want 6", st.Len())
	}
	if st.NumVertices() != 4 { // alice, bob, carol, "30" (predicates are not vertices)
		t.Fatalf("NumVertices = %d, want 4", st.NumVertices())
	}
	alice := id(t, g.Dict, rdf.NewIRI("alice"))
	bob := id(t, g.Dict, rdf.NewIRI("bob"))
	carol := id(t, g.Dict, rdf.NewIRI("carol"))
	knows := id(t, g.Dict, rdf.NewIRI("knows"))

	if !st.HasTriple(alice, knows, bob) {
		t.Error("missing alice knows bob")
	}
	if st.HasTriple(bob, knows, alice) {
		t.Error("phantom bob knows alice")
	}
	if got := len(st.OutWith(alice, knows)); got != 2 {
		t.Errorf("alice has %d knows out-edges, want 2", got)
	}
	if got := len(st.InWith(carol, knows)); got != 2 {
		t.Errorf("carol has %d knows in-edges, want 2", got)
	}
	if st.PredCount(knows) != 3 {
		t.Errorf("PredCount(knows) = %d", st.PredCount(knows))
	}
	if !st.HasVertex(carol) || st.HasVertex(knows) {
		t.Error("vertex membership wrong (predicates are not vertices)")
	}
}

func TestCountTriplesMultigraph(t *testing.T) {
	g := rdf.NewGraph()
	g.AddIRIs("a", "p", "b")
	g.AddIRIs("a", "p", "b") // duplicate instance
	g.AddIRIs("a", "q", "b")
	st := FromGraph(g)
	a := id(t, g.Dict, rdf.NewIRI("a"))
	b := id(t, g.Dict, rdf.NewIRI("b"))
	p := id(t, g.Dict, rdf.NewIRI("p"))
	if got := st.CountTriples(a, p, b); got != 2 {
		t.Errorf("CountTriples = %d, want 2", got)
	}
}

func bindingsAsStrings(t *testing.T, d *rdf.Dictionary, q *query.Graph, bs []Binding) []string {
	t.Helper()
	var out []string
	for _, b := range bs {
		row := ""
		for vi, name := range q.Vars {
			term := "NULL"
			if b.Vars[vi] != rdf.NoTerm {
				term = d.MustDecode(b.Vars[vi]).String()
			}
			row += "?" + name + "=" + term + " "
		}
		out = append(out, row)
	}
	sort.Strings(out)
	return out
}

func TestMatchSimplePattern(t *testing.T) {
	g := tinyGraph()
	st := FromGraph(g)
	q := query.NewBuilder(g.Dict).
		Triple(query.Var("x"), query.IRI("knows"), query.Var("y")).
		MustBuild()
	got := bindingsAsStrings(t, g.Dict, q, st.Match(q))
	want := []string{
		"?x=<alice> ?y=<bob> ",
		"?x=<alice> ?y=<carol> ",
		"?x=<bob> ?y=<carol> ",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v\nwant %v", got, want)
	}
}

func TestMatchJoin(t *testing.T) {
	g := tinyGraph()
	st := FromGraph(g)
	// ?x knows ?y . ?y knows ?z — only alice→bob→carol.
	q := query.NewBuilder(g.Dict).
		Triple(query.Var("x"), query.IRI("knows"), query.Var("y")).
		Triple(query.Var("y"), query.IRI("knows"), query.Var("z")).
		MustBuild()
	got := bindingsAsStrings(t, g.Dict, q, st.Match(q))
	want := []string{"?x=<alice> ?y=<bob> ?z=<carol> "}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestMatchConstantAnchors(t *testing.T) {
	g := tinyGraph()
	st := FromGraph(g)
	q := query.NewBuilder(g.Dict).
		Triple(query.IRI("alice"), query.IRI("knows"), query.Var("y")).
		Triple(query.Var("y"), query.IRI("age"), query.Term(rdf.NewLiteral("30"))).
		MustBuild()
	got := bindingsAsStrings(t, g.Dict, q, st.Match(q))
	want := []string{"?y=<bob> "}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestMatchCycle(t *testing.T) {
	g := tinyGraph()
	st := FromGraph(g)
	// Triangle: ?x knows ?y . ?y knows ?z . ?z likes ?x
	q := query.NewBuilder(g.Dict).
		Triple(query.Var("x"), query.IRI("knows"), query.Var("y")).
		Triple(query.Var("y"), query.IRI("knows"), query.Var("z")).
		Triple(query.Var("z"), query.IRI("likes"), query.Var("x")).
		MustBuild()
	got := bindingsAsStrings(t, g.Dict, q, st.Match(q))
	want := []string{"?x=<alice> ?y=<bob> ?z=<carol> "}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestMatchHomomorphismCollapses(t *testing.T) {
	// ?x knows ?y . ?x knows ?z allows y == z (homomorphism, Def. 3).
	g := tinyGraph()
	st := FromGraph(g)
	q := query.NewBuilder(g.Dict).
		Triple(query.Var("x"), query.IRI("knows"), query.Var("y")).
		Triple(query.Var("x"), query.IRI("knows"), query.Var("z")).
		MustBuild()
	ms := st.Match(q)
	// alice: (bob,bob),(bob,carol),(carol,bob),(carol,carol); bob: (carol,carol)
	if len(ms) != 5 {
		t.Errorf("got %d matches, want 5: %v", len(ms), bindingsAsStrings(t, g.Dict, q, ms))
	}
}

func TestMatchVariablePredicate(t *testing.T) {
	g := tinyGraph()
	st := FromGraph(g)
	q := query.NewBuilder(g.Dict).
		Triple(query.IRI("carol"), query.Var("p"), query.Var("o")).
		MustBuild()
	got := bindingsAsStrings(t, g.Dict, q, st.Match(q))
	want := []string{"?p=<likes> ?o=<alice> "}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestMatchSharedPredicateVariable(t *testing.T) {
	g := rdf.NewGraph()
	g.AddIRIs("a", "p", "b")
	g.AddIRIs("b", "p", "c")
	g.AddIRIs("b", "q", "d")
	st := FromGraph(g)
	// Same variable predicate on both edges: must bind consistently.
	q := query.NewBuilder(g.Dict).
		Triple(query.Var("x"), query.Var("pp"), query.Var("y")).
		Triple(query.Var("y"), query.Var("pp"), query.Var("z")).
		MustBuild()
	got := bindingsAsStrings(t, g.Dict, q, st.Match(q))
	want := []string{"?x=<a> ?pp=<p> ?y=<b> ?z=<c> "}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestMatchMultiEdgeInjectivity(t *testing.T) {
	// Query has two parallel edges ?x --p--> ?y and ?x --?v--> ?y. Data has
	// only ONE p edge between a and b: the injective multi-set mapping of
	// Def. 3 forbids both query edges landing on the same instance unless a
	// second edge exists.
	g := rdf.NewGraph()
	g.AddIRIs("a", "p", "b")
	st := FromGraph(g)
	q := query.NewBuilder(g.Dict).
		Triple(query.Var("x"), query.IRI("p"), query.Var("y")).
		Triple(query.Var("x"), query.Var("v"), query.Var("y")).
		MustBuild()
	if ms := st.Match(q); len(ms) != 0 {
		t.Errorf("expected 0 matches on single-edge data, got %d", len(ms))
	}

	g2 := rdf.NewGraph()
	g2.AddIRIs("a", "p", "b")
	g2.AddIRIs("a", "q", "b")
	st2 := FromGraph(g2)
	q2 := query.NewBuilder(g2.Dict).
		Triple(query.Var("x"), query.IRI("p"), query.Var("y")).
		Triple(query.Var("x"), query.Var("v"), query.Var("y")).
		MustBuild()
	ms := st2.Match(q2)
	// ?v must bind to q (the p instance is taken by the constant edge).
	if len(ms) != 1 {
		t.Fatalf("got %d matches, want 1", len(ms))
	}
	v, _ := g2.Dict.Lookup(rdf.NewIRI("q"))
	if ms[0].Vars[2] != v {
		t.Errorf("?v bound to %v, want <q>", ms[0].Vars[2])
	}
}

func TestMatchDuplicateTripleInstances(t *testing.T) {
	// With two identical p-instances, both parallel query edges can map.
	g := rdf.NewGraph()
	g.AddIRIs("a", "p", "b")
	g.AddIRIs("a", "p", "b")
	st := FromGraph(g)
	q := query.NewBuilder(g.Dict).
		Triple(query.Var("x"), query.IRI("p"), query.Var("y")).
		Triple(query.Var("x"), query.Var("v"), query.Var("y")).
		MustBuild()
	if ms := st.Match(q); len(ms) != 1 {
		t.Errorf("got %d matches, want 1", len(ms))
	}
}

func TestMatchSelfLoop(t *testing.T) {
	g := rdf.NewGraph()
	g.AddIRIs("a", "p", "a")
	g.AddIRIs("a", "p", "b")
	st := FromGraph(g)
	q := query.NewBuilder(g.Dict).
		Triple(query.Var("x"), query.IRI("p"), query.Var("x")).
		MustBuild()
	ms := st.Match(q)
	if len(ms) != 1 {
		t.Fatalf("got %d matches, want 1", len(ms))
	}
	a, _ := g.Dict.Lookup(rdf.NewIRI("a"))
	if ms[0].Vars[0] != a {
		t.Error("self-loop bound wrong vertex")
	}
}

func TestMatchLimit(t *testing.T) {
	g := tinyGraph()
	st := FromGraph(g)
	q := query.NewBuilder(g.Dict).
		Triple(query.Var("x"), query.IRI("knows"), query.Var("y")).
		MustBuild()
	n := 0
	st.MatchFunc(q, MatchOptions{Limit: 2}, func(Binding) bool { n++; return true })
	if n != 2 {
		t.Errorf("limit 2 yielded %d", n)
	}
	n = 0
	st.MatchFunc(q, MatchOptions{}, func(Binding) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("yield-false stop yielded %d", n)
	}
}

func TestMatchVertexFilter(t *testing.T) {
	g := tinyGraph()
	st := FromGraph(g)
	alice, _ := g.Dict.Lookup(rdf.NewIRI("alice"))
	q := query.NewBuilder(g.Dict).
		Triple(query.Var("x"), query.IRI("knows"), query.Var("y")).
		MustBuild()
	var got []Binding
	st.MatchFunc(q, MatchOptions{
		VertexFilter: func(qv int, u rdf.TermID) bool {
			// Forbid alice anywhere.
			return u != alice
		},
	}, func(b Binding) bool { got = append(got, b); return true })
	if len(got) != 1 { // only bob knows carol survives
		t.Errorf("got %d matches, want 1", len(got))
	}
}

func TestCandidates(t *testing.T) {
	g := tinyGraph()
	st := FromGraph(g)
	q := query.NewBuilder(g.Dict).
		Triple(query.Var("x"), query.IRI("knows"), query.Var("y")).
		Triple(query.Var("y"), query.IRI("age"), query.Var("a")).
		MustBuild()
	// ?y needs an incoming knows and an outgoing age: only bob.
	yIdx := -1
	for i, v := range q.Vertices {
		if v.IsVar() && q.Vars[v.Var] == "y" {
			yIdx = i
		}
	}
	cands := st.Candidates(q, yIdx)
	bob, _ := g.Dict.Lookup(rdf.NewIRI("bob"))
	if len(cands) != 1 || cands[0] != bob {
		t.Errorf("candidates(?y) = %v, want [bob]", cands)
	}
	// Constant vertex candidates.
	q2 := query.NewBuilder(g.Dict).
		Triple(query.IRI("alice"), query.IRI("knows"), query.Var("y")).
		MustBuild()
	c2 := st.Candidates(q2, 0)
	alice, _ := g.Dict.Lookup(rdf.NewIRI("alice"))
	if len(c2) != 1 || c2[0] != alice {
		t.Errorf("candidates(alice) = %v", c2)
	}
	// Absent constant.
	q3 := query.NewBuilder(g.Dict).
		Triple(query.IRI("nobody"), query.IRI("knows"), query.Var("y")).
		MustBuild()
	if c3 := st.Candidates(q3, 0); len(c3) != 0 {
		t.Errorf("candidates(absent) = %v, want empty", c3)
	}
}

func TestMatchNoResults(t *testing.T) {
	g := tinyGraph()
	st := FromGraph(g)
	q := query.NewBuilder(g.Dict).
		Triple(query.Var("x"), query.IRI("hates"), query.Var("y")).
		MustBuild()
	if ms := st.Match(q); len(ms) != 0 {
		t.Errorf("got %d matches for absent predicate", len(ms))
	}
}

func TestEmptyStore(t *testing.T) {
	d := rdf.NewDictionary()
	st := New(d, nil)
	q := query.NewBuilder(d).
		Triple(query.Var("x"), query.IRI("p"), query.Var("y")).
		MustBuild()
	if ms := st.Match(q); len(ms) != 0 {
		t.Errorf("empty store produced matches")
	}
	if st.Len() != 0 || st.NumVertices() != 0 {
		t.Error("empty store reports non-zero size")
	}
}

// randomGraphTriples builds a random multigraph over nv vertices and np
// predicates.
func randomGraphTriples(r *rand.Rand, g *rdf.Graph, nv, np, ne int) {
	for i := 0; i < ne; i++ {
		s := rdf.NewIRI("v" + string(rune('0'+r.Intn(nv))))
		o := rdf.NewIRI("v" + string(rune('0'+r.Intn(nv))))
		p := rdf.NewIRI("p" + string(rune('0'+r.Intn(np))))
		g.Add(s, p, o)
	}
}

// TestMatchAgainstBruteForce cross-checks the backtracking matcher against
// a naive enumerator on random data and 2-edge path queries.
func TestMatchAgainstBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := rdf.NewGraph()
		randomGraphTriples(r, g, 5, 2, 12)
		st := FromGraph(g)
		q := query.NewBuilder(g.Dict).
			Triple(query.Var("x"), query.IRI("p0"), query.Var("y")).
			Triple(query.Var("y"), query.IRI("p1"), query.Var("z")).
			MustBuild()
		got := st.Match(q)

		// Brute force over all vertex triples.
		p0, ok0 := g.Dict.Lookup(rdf.NewIRI("p0"))
		p1, ok1 := g.Dict.Lookup(rdf.NewIRI("p1"))
		var want int
		if ok0 && ok1 {
			for _, x := range st.Vertices() {
				for _, y := range st.Vertices() {
					for _, z := range st.Vertices() {
						if st.HasTriple(x, p0, y) && st.HasTriple(y, p1, z) {
							want++
						}
					}
				}
			}
		}
		return len(got) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestTriplesRoundTrip(t *testing.T) {
	g := tinyGraph()
	st := FromGraph(g)
	ts := st.Triples()
	if len(ts) != 6 {
		t.Fatalf("Triples() returned %d", len(ts))
	}
	st2 := New(g.Dict, ts)
	if !reflect.DeepEqual(st.Triples(), st2.Triples()) {
		t.Error("re-indexing Triples() changed the set")
	}
}
