// Package trace records per-execution query traces: one span per
// pipeline stage (parse, candidates, partial evaluation, LEC, assembly,
// serialize), attributed to the fragment/site that performed the work,
// with wall-clock offsets from the start of the execution. A Trace is
// attached to a context by the layer that owns the request (the HTTP
// server, the explain CLI) and picked up by the engine via FromContext —
// the engine never creates traces on its own, so untraced executions pay
// only a nil context-value lookup.
//
// Traces attach to the context rather than the Engine because the Engine
// is shared: any number of concurrent executions run over one immutable
// cluster generation, and a per-Engine recorder would interleave their
// spans. The context is the one value already scoped to exactly one
// execution end to end.
package trace

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Coordinator is the Fragment value of spans not attributable to one
// site: coordinator-side stages (LEC join, assembly) and request-level
// stages (parse, serialize).
const Coordinator = -1

// Span is one timed stage of a query execution. Offsets are relative to
// the Trace's start, so a span timeline can be reconstructed without
// absolute timestamps.
type Span struct {
	// Stage names the pipeline stage: "parse", "candidates", "partial",
	// "lec", "assembly", "serialize", or a caller-defined label.
	Stage string `json:"stage"`
	// Fragment is the site that performed the work, or Coordinator (-1)
	// for coordinator/request-level stages.
	Fragment int `json:"fragment"`
	// StartMicros is the span's start offset from the trace start.
	StartMicros int64 `json:"start_us"`
	// DurationMicros is the span's wall-clock duration.
	DurationMicros int64 `json:"duration_us"`
}

// Trace accumulates the spans of one query execution. It is safe for
// concurrent use — sites record their spans in parallel — and all
// methods are nil-safe no-ops, so instrumented code can record
// unconditionally without checking whether a trace is attached.
type Trace struct {
	mu    sync.Mutex
	start time.Time
	spans []Span
}

// New returns a trace whose span offsets are measured from now.
func New() *Trace { return &Trace{start: time.Now()} }

// Start returns the trace's start time (zero for a nil trace).
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Span records one completed stage spanning [from, from+d). Nil-safe.
func (t *Trace) Span(stage string, fragment int, from time.Time, d time.Duration) {
	if t == nil {
		return
	}
	s := Span{
		Stage:          stage,
		Fragment:       fragment,
		StartMicros:    from.Sub(t.start).Microseconds(),
		DurationMicros: d.Microseconds(),
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// StartSpan opens a stage span now and returns the function that closes
// it; idiomatic as `defer tr.StartSpan("parse", trace.Coordinator)()`.
// Nil-safe: a nil trace returns a no-op closer.
func (t *Trace) StartSpan(stage string, fragment int) func() {
	if t == nil {
		return func() {}
	}
	from := time.Now()
	return func() { t.Span(stage, fragment, from, time.Since(from)) }
}

// Spans returns a copy of the recorded spans ordered by start offset
// (ties broken by fragment, then stage), so concurrent sites serialize
// into a stable timeline. Nil-safe (returns nil).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].StartMicros != out[j].StartMicros {
			return out[i].StartMicros < out[j].StartMicros
		}
		if out[i].Fragment != out[j].Fragment {
			return out[i].Fragment < out[j].Fragment
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

type ctxKey struct{}

// NewContext returns ctx carrying t; executions derived from it record
// their stage spans into t.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace attached to ctx, or nil — and nil is
// fine: every Trace method no-ops on a nil receiver.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
