package trace

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.Span("partial", 0, time.Now(), time.Millisecond)
	tr.StartSpan("parse", Coordinator)()
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil trace Spans() = %v, want nil", got)
	}
	if !tr.Start().IsZero() {
		t.Fatalf("nil trace Start() = %v, want zero", tr.Start())
	}
}

func TestFromContextWithoutTrace(t *testing.T) {
	if tr := FromContext(context.Background()); tr != nil {
		t.Fatalf("FromContext(background) = %v, want nil", tr)
	}
}

func TestRoundTripThroughContext(t *testing.T) {
	tr := New()
	ctx := NewContext(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %p, want %p", got, tr)
	}
}

func TestSpansOrderedByStart(t *testing.T) {
	tr := New()
	base := tr.Start()
	tr.Span("assembly", Coordinator, base.Add(30*time.Microsecond), 10*time.Microsecond)
	tr.Span("partial", 1, base.Add(10*time.Microsecond), 15*time.Microsecond)
	tr.Span("partial", 0, base.Add(10*time.Microsecond), 12*time.Microsecond)
	tr.Span("parse", Coordinator, base, 5*time.Microsecond)

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	wantStages := []string{"parse", "partial", "partial", "assembly"}
	wantFrags := []int{Coordinator, 0, 1, Coordinator}
	for i, s := range spans {
		if s.Stage != wantStages[i] || s.Fragment != wantFrags[i] {
			t.Errorf("span %d = {%s frag=%d}, want {%s frag=%d}", i, s.Stage, s.Fragment, wantStages[i], wantFrags[i])
		}
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].StartMicros < spans[i-1].StartMicros {
			t.Errorf("spans out of order at %d: %d < %d", i, spans[i].StartMicros, spans[i-1].StartMicros)
		}
	}
}

func TestStartSpanMeasuresDuration(t *testing.T) {
	tr := New()
	done := tr.StartSpan("serialize", Coordinator)
	time.Sleep(2 * time.Millisecond)
	done()
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if spans[0].DurationMicros < 1000 {
		t.Errorf("duration %dus, want >= 1000us", spans[0].DurationMicros)
	}
}

func TestConcurrentSpanRecording(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for site := 0; site < 16; site++ {
		wg.Add(1)
		go func(site int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Span("partial", site, time.Now(), time.Microsecond)
			}
		}(site)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 1600 {
		t.Fatalf("got %d spans, want 1600", got)
	}
}
