// Package pool provides the bounded, caller-participating worker pool
// that drives parallel partial evaluation (ISSUE 8). One Pool governs
// all evaluation tasks of a single query execution — per-site stages
// and intra-fragment seed chunks alike — so total concurrency stays at
// the configured width no matter how stages nest.
//
// The design is a semaphore, not a goroutine farm: Do spawns a helper
// goroutine only when a slot is free and otherwise runs the task on
// the calling goroutine. That gives two properties the engine relies
// on:
//
//   - Nesting never deadlocks. A site task that itself calls Do for
//     its seed chunks makes progress even when every slot is taken,
//     because the caller executes tasks inline.
//   - Workers(1) is an exact sequential oracle. With width 1 no helper
//     ever spawns, so every task runs inline in submission order —
//     byte-identical to the pre-pool sequential code path, which keeps
//     the old behavior reachable for equivalence tests via
//     -eval-workers=1.
package pool

import (
	"runtime"
	"sync"
)

// Pool bounds the number of goroutines evaluating tasks concurrently.
// The zero value and the nil pool are both valid and sequential.
type Pool struct {
	// sem holds width-1 slots: the calling goroutine is the implicit
	// extra worker, so cap(sem)+1 goroutines run tasks at peak.
	sem chan struct{}
}

// New returns a pool running at most workers tasks concurrently.
// workers <= 0 selects runtime.GOMAXPROCS(0); workers == 1 yields a
// purely sequential pool.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, workers-1)}
}

// Workers reports the concurrency bound. A nil pool is sequential.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return cap(p.sem) + 1
}

// Do runs every task and returns once all have completed. Tasks are
// handed to helper goroutines while slots are free; when the pool is
// saturated the caller runs the task itself before submitting the
// next, so Do never blocks waiting for capacity it could provide.
// On a sequential pool all tasks run inline in submission order.
func (p *Pool) Do(tasks ...func()) {
	if p == nil || cap(p.sem) == 0 || len(tasks) <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	var wg sync.WaitGroup
	for _, t := range tasks {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() {
					<-p.sem
					wg.Done()
				}()
				t()
			}()
		default:
			t()
		}
	}
	wg.Wait()
}

// Chunks splits n items into at most parts contiguous index ranges of
// near-equal size, returned as [lo, hi) pairs in order. It is the
// shared seed-partitioning helper: contiguous ranges keep per-chunk
// results mergeable in deterministic index order.
func Chunks(n, parts int) [][2]int {
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([][2]int, 0, parts)
	for i := 0; i < parts; i++ {
		lo := i * n / parts
		hi := (i + 1) * n / parts
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}
