package pool

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestSequentialOracle: width 1 runs every task inline in submission
// order — the property the -eval-workers=1 equivalence oracle rests on.
func TestSequentialOracle(t *testing.T) {
	p := New(1)
	if p.Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", p.Workers())
	}
	var got []int
	var tasks []func()
	for i := 0; i < 100; i++ {
		tasks = append(tasks, func() { got = append(got, i) })
	}
	p.Do(tasks...) // no goroutines: appending without a lock must be race-free
	for i, v := range got {
		if v != i {
			t.Fatalf("task order[%d] = %d, want %d", i, v, i)
		}
	}
	if len(got) != 100 {
		t.Fatalf("ran %d tasks, want 100", len(got))
	}
}

func TestNilPoolSequential(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool Workers() = %d, want 1", p.Workers())
	}
	n := 0
	p.Do(func() { n++ }, func() { n++ })
	if n != 2 {
		t.Fatalf("nil pool ran %d tasks, want 2", n)
	}
}

// TestBoundedConcurrency: the high-water mark of concurrently running
// tasks never exceeds the configured width.
func TestBoundedConcurrency(t *testing.T) {
	const width = 4
	p := New(width)
	var cur, peak atomic.Int64
	var tasks []func()
	for i := 0; i < 200; i++ {
		tasks = append(tasks, func() {
			n := cur.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			for j := 0; j < 1000; j++ {
				_ = j * j
			}
			cur.Add(-1)
		})
	}
	p.Do(tasks...)
	if got := peak.Load(); got > width {
		t.Fatalf("peak concurrency %d exceeds width %d", got, width)
	}
}

// TestNestedDoNoDeadlock: tasks that call Do on the same saturated pool
// must make progress because the caller participates.
func TestNestedDoNoDeadlock(t *testing.T) {
	p := New(2)
	var n atomic.Int64
	var outer []func()
	for i := 0; i < 8; i++ {
		outer = append(outer, func() {
			var inner []func()
			for j := 0; j < 8; j++ {
				inner = append(inner, func() { n.Add(1) })
			}
			p.Do(inner...)
		})
	}
	p.Do(outer...)
	if n.Load() != 64 {
		t.Fatalf("ran %d inner tasks, want 64", n.Load())
	}
}

// TestConcurrentDo: independent Do calls from many goroutines share the
// semaphore safely.
func TestConcurrentDo(t *testing.T) {
	p := New(3)
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Do(func() { n.Add(1) }, func() { n.Add(1) }, func() { n.Add(1) })
		}()
	}
	wg.Wait()
	if n.Load() != 48 {
		t.Fatalf("ran %d tasks, want 48", n.Load())
	}
}

func TestChunks(t *testing.T) {
	cases := []struct {
		n, parts int
		want     int // number of chunks
	}{
		{0, 4, 0}, {1, 4, 1}, {4, 4, 4}, {10, 3, 3}, {10, 100, 10}, {7, 0, 1},
	}
	for _, c := range cases {
		chunks := Chunks(c.n, c.parts)
		if len(chunks) != c.want {
			t.Errorf("Chunks(%d,%d) = %d chunks, want %d", c.n, c.parts, len(chunks), c.want)
		}
		next := 0
		for _, ch := range chunks {
			if ch[0] != next || ch[1] <= ch[0] {
				t.Errorf("Chunks(%d,%d): bad range %v after %d", c.n, c.parts, ch, next)
			}
			next = ch[1]
		}
		if c.n > 0 && next != c.n {
			t.Errorf("Chunks(%d,%d) covers [0,%d), want [0,%d)", c.n, c.parts, next, c.n)
		}
	}
}
