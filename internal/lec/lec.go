// Package lec implements the paper's central contribution: local partial
// match equivalence classes (Definitions 6-7), their compact LEC features
// (Definition 8, Algorithm 1), LECSign groups and the join graph
// (Definition 10), and the LEC-feature-based pruning of irrelevant partial
// matches (Definition 9, Theorem 4, Algorithm 2).
package lec

import (
	"fmt"
	"sort"
	"strings"

	"gstored/internal/partial"
	"gstored/internal/query"
	"gstored/internal/rdf"
)

// Feature is a LEC feature LF([PM]) = {F, g, LECSign}: the fragment
// identifier, the mapping from crossing edges to query edges, and the
// bitstring marking internally matched query vertices.
type Feature struct {
	Frag int
	// Mappings is the function g, sorted like partial.Match.Crossing.
	Mappings []partial.CrossEdge
	Sign     uint64
	// PMs indexes the partial matches belonging to this equivalence class
	// (positions into the slice passed to Compute).
	PMs []int
}

// Key canonically identifies the feature (fragment + g; the sign is
// implied, Theorem 1).
func (f *Feature) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "F%d", f.Frag)
	for _, m := range f.Mappings {
		fmt.Fprintf(&b, "|%d:%d-%d-%d", m.QEdge, m.S, m.P, m.O)
	}
	return b.String()
}

// EstimateBytes approximates the wire size of the feature for data-shipment
// accounting: fragment id + 16 bytes per mapping + the LECSign bitstring
// (Section IV-D: O(|E_Q| + |V_Q|) per feature).
func (f *Feature) EstimateBytes(numQueryVertices int) int {
	return 4 + 16*len(f.Mappings) + (numQueryVertices+7)/8
}

// Compute runs Algorithm 1: a linear scan grouping partial matches into
// equivalence classes keyed by (fragment, g). Features are returned in
// first-seen order; FeatureOf[i] gives the feature index of pms[i].
func Compute(pms []*partial.Match) (features []*Feature, featureOf []int) {
	index := make(map[string]int)
	featureOf = make([]int, len(pms))
	for i, pm := range pms {
		f := &Feature{Frag: pm.Frag, Mappings: pm.Crossing, Sign: pm.Sign}
		key := f.Key()
		fi, ok := index[key]
		if !ok {
			fi = len(features)
			index[key] = fi
			features = append(features, f)
		}
		features[fi].PMs = append(features[fi].PMs, i)
		featureOf[i] = fi
	}
	return features, featureOf
}

// Joinable implements Definition 9 on two original (un-joined) features:
// different fragments, at least one shared crossing-edge mapping, no query
// edge mapped to two different crossing edges, and disjoint LECSigns.
func Joinable(a, b *Feature) bool {
	if a.Frag == b.Frag {
		return false
	}
	if a.Sign&b.Sign != 0 {
		return false
	}
	shared := false
	for _, ma := range a.Mappings {
		for _, mb := range b.Mappings {
			if ma.QEdge != mb.QEdge {
				continue
			}
			if ma == mb {
				shared = true
			} else {
				return false // same query edge, different crossing edge
			}
		}
	}
	return shared
}

// Group is a LEC feature group (Definition 10): features sharing a LECSign.
// Theorem 5: two features with equal signs are never joinable, so joins
// only happen across groups.
type Group struct {
	Sign     uint64
	Features []int // indices into the feature slice
}

// GroupBySign partitions features into LECSign groups, ordered by
// ascending sign.
func GroupBySign(features []*Feature) []Group {
	bySign := make(map[uint64]*Group)
	for i, f := range features {
		g, ok := bySign[f.Sign]
		if !ok {
			g = &Group{Sign: f.Sign}
			bySign[f.Sign] = g
		}
		g.Features = append(g.Features, i)
	}
	out := make([]Group, 0, len(bySign))
	for _, g := range bySign {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Sign < out[j].Sign })
	return out
}

// JoinGraph builds the group-level join graph: vertices are groups, with
// an edge when some pair of their features is joinable. Returned as an
// adjacency matrix.
func JoinGraph(features []*Feature, groups []Group) [][]bool {
	n := len(groups)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if groupsJoinable(features, groups[i], groups[j]) {
				adj[i][j], adj[j][i] = true, true
			}
		}
	}
	return adj
}

func groupsJoinable(features []*Feature, a, b Group) bool {
	for _, fi := range a.Features {
		for _, fj := range b.Features {
			if Joinable(features[fi], features[fj]) {
				return true
			}
		}
	}
	return false
}

// PruneResult reports the outcome of Prune.
type PruneResult struct {
	// Retained[i] is true when features[i] can contribute to a complete
	// match (the set RS of Algorithm 2, provenance-precise).
	Retained []bool
	// States counts the join states explored.
	States int
	// Overflowed reports that the state cap was hit and pruning degraded
	// to retaining everything (safe, just not effective).
	Overflowed bool
}

// maxPruneStates caps the feature-join state space; beyond it Prune keeps
// every feature (conservative).
const maxPruneStates = 1 << 20

// Prune implements Algorithm 2 as a canonical-root closure over the
// feature join space: every connected, sign-disjoint, mapping-consistent
// combination of features is grown from its minimum-index member; when a
// combination's signs union to all-ones (Theorem 4), its members are
// retained. Partial matches whose features are not retained can be
// discarded before shipment (Theorem 3/4 guarantee no final match is
// lost).
//
// Beyond Definition 9 the closure also checks crossing-edge *endpoint*
// consistency (two mappings binding one query vertex to different data
// vertices cannot coexist in a match) — strictly better pruning that
// remains safe, see DESIGN.md fidelity note 1.
func Prune(features []*Feature, q *query.Graph) PruneResult {
	res := PruneResult{Retained: make([]bool, len(features))}
	if len(features) == 0 {
		return res
	}
	full := fullSign(len(q.Vertices))

	// Index: mapping -> features containing it, for connected expansion.
	byMapping := make(map[partial.CrossEdge][]int)
	for i, f := range features {
		for _, m := range f.Mappings {
			byMapping[m] = append(byMapping[m], i)
		}
	}

	newState := func(fi int) (*joinState, bool) {
		s := &joinState{
			sign:    features[fi].Sign,
			members: []int{fi},
			vbind:   make([]rdf.TermID, len(q.Vertices)),
			qmap:    make([]partial.CrossEdge, len(q.Edges)),
		}
		for _, m := range features[fi].Mappings {
			if !applyMapping(s.vbind, s.qmap, q, m) {
				return nil, false
			}
		}
		return s, true
	}

	for root := 0; root < len(features); root++ {
		if res.Overflowed {
			break
		}
		if features[root].Sign == full {
			// A single feature can never be complete (it has a crossing
			// edge, hence an extended endpoint vertex), but guard anyway.
			res.Retained[root] = true
			continue
		}
		init, ok := newState(root)
		if !ok {
			continue
		}
		frontier := []*joinState{init}
		seen := map[string]bool{memberKey(init.members): true}
		for len(frontier) > 0 && !res.Overflowed {
			s := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			for _, cand := range expandCandidates(s.members, s.qmap, q, byMapping, root) {
				ns, ok := tryExtend(s, features[cand], cand, q)
				if !ok {
					continue
				}
				key := memberKey(ns.members)
				if seen[key] {
					continue
				}
				seen[key] = true
				res.States++
				if res.States > maxPruneStates {
					res.Overflowed = true
					break
				}
				if ns.sign == full {
					for _, m := range ns.members {
						res.Retained[m] = true
					}
					// A complete combination can still grow? No: any
					// further feature overlaps the full sign. Stop here.
					continue
				}
				frontier = append(frontier, ns)
			}
		}
	}
	if res.Overflowed {
		for i := range res.Retained {
			res.Retained[i] = true
		}
	}
	return res
}

func fullSign(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

func memberKey(members []int) string {
	var b strings.Builder
	for _, m := range members {
		fmt.Fprintf(&b, "%d,", m)
	}
	return b.String()
}

// applyMapping folds one crossing-edge mapping into the per-vertex and
// per-edge binding tables, reporting consistency.
func applyMapping(vbind []rdf.TermID, qmap []partial.CrossEdge, q *query.Graph, m partial.CrossEdge) bool {
	e := q.Edges[m.QEdge]
	if cur := qmap[m.QEdge]; cur.S != rdf.NoTerm {
		if cur != m {
			return false // Definition 9 condition 3
		}
		return true
	}
	if b := vbind[e.From]; b != rdf.NoTerm && b != m.S {
		return false
	}
	if b := vbind[e.To]; b != rdf.NoTerm && b != m.O {
		return false
	}
	qmap[m.QEdge] = m
	vbind[e.From] = m.S
	vbind[e.To] = m.O
	return true
}

// expandCandidates lists features sharing at least one crossing-edge
// mapping with the state (connected growth), with index > root
// (canonical-root enumeration) and not already members.
func expandCandidates(members []int, qmap []partial.CrossEdge, q *query.Graph, byMapping map[partial.CrossEdge][]int, root int) []int {
	in := make(map[int]bool, len(members))
	for _, m := range members {
		in[m] = true
	}
	var out []int
	seen := map[int]bool{}
	for qe := range qmap {
		if qmap[qe].S == rdf.NoTerm {
			continue
		}
		for _, fi := range byMapping[qmap[qe]] {
			if fi <= root || in[fi] || seen[fi] {
				continue
			}
			seen[fi] = true
			out = append(out, fi)
		}
	}
	sort.Ints(out)
	return out
}

// joinState is one node of the feature-join search: the union sign, the
// sorted member feature indices, crossing-edge endpoint bindings per query
// vertex (vbind) and the crossing edge chosen per query edge (qmap, with
// S == rdf.NoTerm meaning unset).
type joinState struct {
	sign    uint64
	members []int
	vbind   []rdf.TermID
	qmap    []partial.CrossEdge
}

// tryExtend joins feature f (index fi) into state s, returning the new
// state, or false when Definition 9 / Theorem 4 conditions fail.
func tryExtend(s *joinState, f *Feature, fi int, q *query.Graph) (*joinState, bool) {
	if s.sign&f.Sign != 0 {
		return nil, false // Theorem 4 condition 2
	}
	ns := &joinState{
		sign:    s.sign | f.Sign,
		members: append(append([]int(nil), s.members...), fi),
		vbind:   append([]rdf.TermID(nil), s.vbind...),
		qmap:    append([]partial.CrossEdge(nil), s.qmap...),
	}
	sort.Ints(ns.members)
	for _, m := range f.Mappings {
		if !applyMapping(ns.vbind, ns.qmap, q, m) {
			return nil, false
		}
	}
	return ns, true
}
