package lec

import (
	"testing"

	"gstored/internal/fragment"
	"gstored/internal/paperexample"
	"gstored/internal/partial"
	"gstored/internal/rdf"
)

// paperFeatures computes all partial matches and features for the running
// example, returning them with the fixture.
func paperFeatures(t *testing.T) (*paperexample.Example, []*partial.Match, []*Feature, []int) {
	t.Helper()
	ex := paperexample.New()
	d, err := fragment.Build(ex.Store, ex.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	var pms []*partial.Match
	for _, f := range d.Fragments {
		ms, err := partial.Compute(f, ex.Query, partial.Options{})
		if err != nil {
			t.Fatal(err)
		}
		pms = append(pms, ms...)
	}
	if len(pms) != 8 {
		t.Fatalf("expected the 8 partial matches of Fig. 3, got %d", len(pms))
	}
	features, featureOf := Compute(pms)
	return ex, pms, features, featureOf
}

// TestExample5And6: the 8 partial matches collapse into 7 LECs; PM1_2 and
// PM2_2 share a feature (Example 5), and the features carry the signs of
// Example 6.
func TestExample5And6Features(t *testing.T) {
	_, pms, features, featureOf := paperFeatures(t)
	if len(features) != 7 {
		t.Fatalf("got %d LEC features, want 7 (Example 5)", len(features))
	}
	// Find the feature with two member PMs; it must be in F2 with sign
	// 11010 (paper order) = bits v1,v2,v4.
	var shared *Feature
	for _, f := range features {
		if len(f.PMs) == 2 {
			if shared != nil {
				t.Fatal("more than one shared feature")
			}
			shared = f
		}
	}
	if shared == nil {
		t.Fatal("no feature with two partial matches (Example 5 expects [PM1_2] = [PM2_2])")
	}
	if shared.Frag != 1 {
		t.Errorf("shared feature in fragment %d, want F2", shared.Frag+1)
	}
	wantSign := uint64(1)<<0 | uint64(1)<<1 | uint64(1)<<3 // v1, v2, v4
	if shared.Sign != wantSign {
		t.Errorf("shared feature sign = %b, want %b", shared.Sign, wantSign)
	}
	// featureOf is consistent.
	for i := range pms {
		found := false
		for _, p := range features[featureOf[i]].PMs {
			if p == i {
				found = true
			}
		}
		if !found {
			t.Errorf("featureOf[%d] inconsistent", i)
		}
	}
}

// TestExample7Groups: the 7 features form LECSign groups. The paper's
// Example 7 presents five groups, keeping LF(PM3_1) and LF(PM2_3) apart
// even though both carry sign 01010 — Definition 10 permits non-maximal
// groupings. We group maximally (same sign ⇒ same group), which Theorem 5
// proves safe and which yields a strictly smaller join space: four groups,
// three pairs ({PM1_1,PM2_1}, {PM3_1,PM2_3}, {PM1_2/PM2_2, PM1_3}) and the
// singleton {PM3_2}.
func TestExample7Groups(t *testing.T) {
	_, _, features, _ := paperFeatures(t)
	groups := GroupBySign(features)
	if len(groups) != 4 {
		t.Fatalf("got %d groups, want 4 (maximal grouping of Example 7's signs)", len(groups))
	}
	sizes := map[int]int{}
	for _, g := range groups {
		sizes[len(g.Features)]++
	}
	if sizes[2] != 3 || sizes[1] != 1 {
		t.Errorf("group size histogram = %v, want three pairs and one singleton", sizes)
	}
}

// TestJoinableDefinition9 exercises each condition on the running example.
func TestJoinableDefinition9(t *testing.T) {
	ex, pms, features, featureOf := paperFeatures(t)
	byVec := func(want [5]int) *Feature {
		for i, pm := range pms {
			var got [5]int
			rev := make(map[rdf.TermID]int)
			for n, id := range ex.V {
				rev[id] = n
			}
			for j, id := range pm.Vec {
				if id != rdf.NoTerm {
					got[j] = rev[id]
				}
			}
			if got == want {
				return features[featureOf[i]]
			}
		}
		t.Fatalf("PM %v not found", want)
		return nil
	}
	pm11 := byVec([5]int{6, 0, 1, 0, 3})
	pm12 := byVec([5]int{6, 8, 1, 9, 0})
	pm21 := byVec([5]int{12, 0, 1, 0, 3})
	pm13 := byVec([5]int{12, 13, 1, 17, 0})
	pm31 := byVec([5]int{6, 5, 0, 4, 0})
	pm32 := byVec([5]int{6, 5, 1, 0, 0})
	pm23 := byVec([5]int{14, 13, 0, 17, 0})

	if !Joinable(pm11, pm12) {
		t.Error("LF(PM1_1) and LF(PM1_2) must be joinable (shared 001→006)")
	}
	if !Joinable(pm21, pm13) {
		t.Error("LF(PM2_1) and LF(PM1_3) must be joinable (shared 001→012)")
	}
	if !Joinable(pm31, pm32) {
		t.Error("LF(PM3_1) and LF(PM3_2) must be joinable (shared 006→005)")
	}
	if Joinable(pm11, pm21) {
		t.Error("same-fragment features must not be joinable (condition 1)")
	}
	if Joinable(pm11, pm13) {
		t.Error("001→006 vs 001→012 map the same query edge to different crossing edges (condition 3)")
	}
	if Joinable(pm12, pm23) {
		t.Error("LF(PM1_2) and LF(PM2_3): no shared crossing edge")
	}
	if Joinable(pm11, pm11) {
		t.Error("a feature is not joinable with itself")
	}
}

// TestTheorem5SameSignNotJoinable: features with equal signs never join.
func TestTheorem5(t *testing.T) {
	_, _, features, _ := paperFeatures(t)
	for i, a := range features {
		for j, b := range features {
			if i != j && a.Sign == b.Sign && Joinable(a, b) {
				t.Errorf("features %d and %d share sign %b yet are joinable", i, j, a.Sign)
			}
		}
	}
}

// TestJoinGraph: 5 groups; the Fig. 6 join graph has P5 connected to
// nothing that completes, and in our encoding the group of PM2_3 must be
// prunable.
func TestJoinGraphShape(t *testing.T) {
	_, _, features, _ := paperFeatures(t)
	groups := GroupBySign(features)
	adj := JoinGraph(features, groups)
	if len(adj) != 4 {
		t.Fatalf("join graph over %d groups, want 4", len(adj))
	}
	degrees := 0
	for i := range adj {
		for j := range adj[i] {
			if adj[i][j] {
				degrees++
			}
		}
	}
	if degrees == 0 {
		t.Error("join graph has no edges")
	}
}

// TestPrunePaperExample: Algorithm 2 filters out PM2_3 (Section IV-C) and
// keeps everything else, as every other partial match participates in a
// complete match (Example 8 groups).
func TestPrunePaperExample(t *testing.T) {
	ex, pms, features, featureOf := paperFeatures(t)
	res := Prune(features, ex.Query)
	if res.Overflowed {
		t.Fatal("prune overflowed on 7 features")
	}
	rev := make(map[rdf.TermID]int)
	for n, id := range ex.V {
		rev[id] = n
	}
	for i, pm := range pms {
		var vec [5]int
		for j, id := range pm.Vec {
			if id != rdf.NoTerm {
				vec[j] = rev[id]
			}
		}
		retained := res.Retained[featureOf[i]]
		if vec == [5]int{14, 13, 0, 17, 0} {
			if retained {
				t.Error("PM2_3 should be pruned (Section IV-C)")
			}
			continue
		}
		if !retained {
			t.Errorf("PM %v should be retained", vec)
		}
	}
}

func TestPruneEmpty(t *testing.T) {
	ex := paperexample.New()
	res := Prune(nil, ex.Query)
	if len(res.Retained) != 0 || res.States != 0 {
		t.Errorf("unexpected result on empty input: %+v", res)
	}
}

func TestFeatureBytes(t *testing.T) {
	_, _, features, _ := paperFeatures(t)
	for _, f := range features {
		if f.EstimateBytes(5) <= 0 {
			t.Error("non-positive feature size")
		}
	}
	// A two-mapping feature is bigger than a one-mapping feature.
	var one, two *Feature
	for _, f := range features {
		switch len(f.Mappings) {
		case 1:
			one = f
		case 2:
			two = f
		}
	}
	if one == nil || two == nil {
		t.Fatal("expected features with 1 and 2 mappings")
	}
	if two.EstimateBytes(5) <= one.EstimateBytes(5) {
		t.Error("feature size not monotone in mappings")
	}
}
