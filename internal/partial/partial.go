// Package partial computes local partial matches (Definition 5 of the
// paper): the overlap a crossing SPARQL match leaves on a single fragment.
// It implements the evaluation algorithm of Peng et al. [18] that this
// paper builds on — crossing-edge-seeded expansion which, by construction,
// satisfies Definition 5's six conditions (see Verify for an independent
// checker used by the tests).
package partial

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"gstored/internal/fragment"
	"gstored/internal/pool"
	"gstored/internal/query"
	"gstored/internal/rdf"
)

// MaxQuerySize bounds query vertices and edges so signatures fit in uint64
// bitsets. It mirrors query.MaxSize, which query.Validate enforces at
// compile time; the checks here and in the engine are defense in depth
// for hand-built graphs that bypassed validation.
const MaxQuerySize = query.MaxSize

// CrossEdge records one crossing edge of a partial match together with the
// query edge it matches (the function g of Definition 8 maps the former to
// the latter).
type CrossEdge struct {
	QEdge   int
	S, P, O rdf.TermID
}

// Match is one local partial match. Vec is the serialization vector
// [f(v1), ..., f(vn)] with rdf.NoTerm as NULL, exactly as in Fig. 3.
type Match struct {
	Frag int
	Vec  []rdf.TermID
	// EdgeVars binds edge-label variables (indexed by query variable
	// index); rdf.NoTerm where unbound. Vertex variables live in Vec.
	EdgeVars []rdf.TermID
	// Crossing lists the crossing edges contained in the match, sorted by
	// (QEdge, S, P, O).
	Crossing []CrossEdge
	// MatchedEdges is a bitmask over query edges matched by this PM.
	MatchedEdges uint64
	// Sign is the LECSign bitstring: bit i set iff Vec[i] is an internal
	// vertex of Frag (Definition 8 item 3).
	Sign uint64
}

// Key returns a canonical identity for deduplication: fragment,
// serialization vector, edge-variable bindings, matched edges and crossing
// edge mappings.
func (m *Match) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "F%d|", m.Frag)
	for _, v := range m.Vec {
		fmt.Fprintf(&b, "%d,", v)
	}
	b.WriteByte('|')
	for _, v := range m.EdgeVars {
		fmt.Fprintf(&b, "%d,", v)
	}
	fmt.Fprintf(&b, "|%x|", m.MatchedEdges)
	for _, c := range m.Crossing {
		fmt.Fprintf(&b, "%d:%d-%d-%d;", c.QEdge, c.S, c.P, c.O)
	}
	return b.String()
}

// EstimateBytes approximates the wire size of the match for data-shipment
// accounting: 4 bytes per vector slot and edge-variable slot, 16 bytes per
// crossing-edge mapping, plus a small header.
func (m *Match) EstimateBytes() int {
	return 8 + 4*len(m.Vec) + 4*len(m.EdgeVars) + 16*len(m.Crossing)
}

// IsComplete reports whether every query vertex is bound (no NULLs).
func (m *Match) IsComplete() bool {
	for _, v := range m.Vec {
		if v == rdf.NoTerm {
			return false
		}
	}
	return true
}

// Options tunes Compute.
type Options struct {
	// ExtendedFilter, when non-nil, vetoes binding query vertex qv to
	// extended vertex u — the Section VI candidate-vector optimization
	// plugs in here.
	ExtendedFilter func(qv int, u rdf.TermID) bool
	// MaxMatches aborts enumeration with an error beyond this many partial
	// matches (0 = unlimited); a safety valve against pathological queries.
	MaxMatches int
	// Cancel, when non-nil, is polled periodically during expansion;
	// returning true aborts enumeration with ErrCanceled. The engine plugs
	// context cancellation in here.
	Cancel func() bool
	// EdgeRank, when it has one entry per query edge, orders expansion:
	// incident-edge lists and seed attempts try lower-ranked (more
	// selective) edges first. The result set is rank-independent — the
	// search is exhaustive — but good ranks prune dead branches earlier.
	EdgeRank []int
	// Pool, when non-nil with width > 1, splits the fragment's crossing-
	// edge seed list into contiguous chunks enumerated concurrently and
	// merges the per-chunk matches in chunk order with global
	// deduplication, so the returned set equals the sequential one.
	Pool *pool.Pool
	// OnTask, when non-nil, receives the wall time of each enumeration
	// task (one per seed chunk; exactly one for a sequential run). It
	// may be called concurrently.
	OnTask func(d time.Duration)
}

// ErrCanceled is returned when Options.Cancel reported cancellation.
var ErrCanceled = errors.New("partial: evaluation canceled")

// ErrTooManyMatches is returned when Options.MaxMatches is exceeded.
type ErrTooManyMatches struct{ Limit int }

func (e ErrTooManyMatches) Error() string {
	return fmt.Sprintf("partial: more than %d local partial matches", e.Limit)
}

// Compute enumerates all local partial matches of q in fragment f.
func Compute(f *fragment.Fragment, q *query.Graph, opts Options) ([]*Match, error) {
	if len(q.Vertices) > MaxQuerySize || len(q.Edges) > MaxQuerySize {
		return nil, fmt.Errorf("partial: query exceeds %d vertices/edges", MaxQuerySize)
	}
	inc := q.IncidentEdges()
	seedOrder := make([]int, len(q.Edges))
	for i := range seedOrder {
		seedOrder[i] = i
	}
	if rank := opts.EdgeRank; len(rank) == len(q.Edges) {
		sort.SliceStable(seedOrder, func(a, b int) bool { return rank[seedOrder[a]] < rank[seedOrder[b]] })
		for qv := range inc {
			sort.SliceStable(inc[qv], func(a, b int) bool { return rank[inc[qv][a]] < rank[inc[qv][b]] })
		}
	}
	chunks := pool.Chunks(len(f.Crossing), 4*opts.Pool.Workers())
	if opts.Pool.Workers() > 1 && len(chunks) > 1 {
		return computeParallel(f, q, opts, inc, seedOrder, chunks)
	}
	if opts.OnTask != nil {
		start := time.Now()
		defer func() { opts.OnTask(time.Since(start)) }()
	}
	en := newEnumerator(f, q, opts, inc)
	if err := en.run(f.Crossing, seedOrder); err != nil {
		return nil, err
	}
	return en.out, nil
}

func newEnumerator(f *fragment.Fragment, q *query.Graph, opts Options, inc [][]int) *enumerator {
	return &enumerator{
		f:    f,
		q:    q,
		opts: opts,
		vec:  make([]rdf.TermID, len(q.Vertices)),
		evb:  make([]rdf.TermID, len(q.Vars)),
		lab:  make([]rdf.TermID, len(q.Edges)),
		inc:  inc,
		seen: make(map[string]bool),
	}
}

// run seeds an expansion from every (crossing triple, query edge) pair.
func (en *enumerator) run(crossing []rdf.Triple, seedOrder []int) error {
	for _, ct := range crossing {
		for _, qe := range seedOrder {
			if err := en.seed(ct, qe); err != nil {
				return err
			}
		}
	}
	return nil
}

// computeParallel enumerates contiguous chunks of the crossing-edge
// seed list concurrently. Each chunk keeps a private seen set; the
// merge walks chunks in index order with a global keep-first
// deduplication, so the returned match set equals the sequential one
// and the output order is deterministic for a fixed chunking.
func computeParallel(f *fragment.Fragment, q *query.Graph, opts Options, inc [][]int, seedOrder []int, chunks [][2]int) ([]*Match, error) {
	var stop atomic.Bool
	cancel := opts.Cancel
	poll := func() bool { return stop.Load() || (cancel != nil && cancel()) }
	outs := make([][]*Match, len(chunks))
	errs := make([]error, len(chunks))
	tasks := make([]func(), len(chunks))
	for i, ch := range chunks {
		tasks[i] = func() {
			if stop.Load() {
				errs[i] = ErrCanceled
				return
			}
			var start time.Time
			if opts.OnTask != nil {
				start = time.Now()
			}
			chunkOpts := opts
			chunkOpts.Cancel = poll
			en := newEnumerator(f, q, chunkOpts, inc)
			errs[i] = en.run(f.Crossing[ch[0]:ch[1]], seedOrder)
			outs[i] = en.out
			if errs[i] != nil {
				stop.Store(true)
			}
			if opts.OnTask != nil {
				opts.OnTask(time.Since(start))
			}
		}
	}
	opts.Pool.Do(tasks...)
	// A real error beats the cancellations it caused in other chunks;
	// among real errors the lowest chunk index wins, deterministically.
	var firstErr error
	for _, err := range errs {
		if err != nil && !errors.Is(err, ErrCanceled) {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	seen := make(map[string]bool)
	var out []*Match
	for _, ms := range outs {
		for _, m := range ms {
			key := m.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, m)
		}
	}
	// The per-chunk valve bounds each chunk; the exact global check runs
	// after deduplication so the threshold semantics match sequential.
	if opts.MaxMatches > 0 && len(out) > opts.MaxMatches {
		return nil, ErrTooManyMatches{Limit: opts.MaxMatches}
	}
	return out, nil
}

type enumerator struct {
	f    *fragment.Fragment
	q    *query.Graph
	opts Options

	vec     []rdf.TermID // current vertex bindings
	evb     []rdf.TermID // edge-label variable bindings
	lab     []rdf.TermID // concrete label per matched query edge
	matched uint64       // bitmask of matched query edges
	inc     [][]int      // incident edge lists per query vertex

	seen  map[string]bool
	out   []*Match
	steps uint
	err   error
}

// seed starts an expansion from crossing triple ct matched to query edge qe.
func (en *enumerator) seed(ct rdf.Triple, qe int) error {
	e := en.q.Edges[qe]
	if !en.labelCompatible(e, ct.P) {
		return nil
	}
	undoS, ok := en.bind(e.From, ct.S)
	if !ok {
		return nil
	}
	if e.From == e.To && ct.S != ct.O {
		undoS()
		return nil
	}
	var undoO func()
	if e.From != e.To {
		undoO, ok = en.bind(e.To, ct.O)
		if !ok {
			undoS()
			return nil
		}
	}
	undoE, ok := en.matchEdge(qe, ct.S, ct.P, ct.O)
	if ok {
		en.expand()
		undoE()
	}
	if undoO != nil {
		undoO()
	}
	undoS()
	return en.err
}

func (en *enumerator) labelCompatible(e query.Edge, p rdf.TermID) bool {
	if e.HasVarLabel() {
		bound := en.evb[e.LabelVar]
		return bound == rdf.NoTerm || bound == p
	}
	return e.Label == p
}

// bind assigns query vertex qv to data vertex u, enforcing Definition 5
// conditions 1-2 (constants match themselves or NULL) and the extended-
// candidate filter. Binding an already-bound vertex succeeds only on
// agreement.
func (en *enumerator) bind(qv int, u rdf.TermID) (func(), bool) {
	if cur := en.vec[qv]; cur != rdf.NoTerm {
		if cur == u {
			return func() {}, true
		}
		return nil, false
	}
	v := en.q.Vertices[qv]
	if !v.IsVar() && v.Const != u {
		return nil, false
	}
	if en.opts.ExtendedFilter != nil && en.f.IsExtended(u) {
		if !en.opts.ExtendedFilter(qv, u) {
			return nil, false
		}
	}
	en.vec[qv] = u
	return func() { en.vec[qv] = rdf.NoTerm }, true
}

// matchEdge records query edge qe as matched by data edge (s,p,o), binding
// the label variable when present and enforcing the multi-edge injectivity
// of Definition 3 within parallel query edges.
func (en *enumerator) matchEdge(qe int, s, p, o rdf.TermID) (func(), bool) {
	e := en.q.Edges[qe]
	// Injectivity across parallel query edges sharing the ordered pair.
	usedSame := 0
	for j, f := range en.q.Edges {
		if j != qe && en.matched&(1<<uint(j)) != 0 && f.From == e.From && f.To == e.To && en.lab[j] == p {
			usedSame++
		}
	}
	if usedSame > 0 && en.f.Store.CountTriples(s, p, o) <= usedSame {
		return nil, false
	}
	var boundVar bool
	if e.HasVarLabel() && en.evb[e.LabelVar] == rdf.NoTerm {
		en.evb[e.LabelVar] = p
		boundVar = true
	}
	en.matched |= 1 << uint(qe)
	en.lab[qe] = p
	lv := e.LabelVar
	return func() {
		en.matched &^= 1 << uint(qe)
		en.lab[qe] = rdf.NoTerm
		if boundVar {
			en.evb[lv] = rdf.NoTerm
		}
	}, true
}

// expand drives the worklist: find a query vertex bound to an internal
// vertex with an unmatched incident edge (condition 5 forces matching it);
// if none remains, finalize the current partial match.
func (en *enumerator) expand() {
	if en.err != nil {
		return
	}
	if en.opts.Cancel != nil {
		if en.steps&0xff == 0 && en.opts.Cancel() {
			en.err = ErrCanceled
			return
		}
		en.steps++
	}
	for qv, u := range en.vec {
		if u == rdf.NoTerm || !en.f.IsInternal(u) {
			continue
		}
		for _, ei := range en.inc[qv] {
			if en.matched&(1<<uint(ei)) == 0 {
				en.matchIncident(qv, ei)
				return
			}
		}
	}
	en.finalize()
}

// matchIncident matches the unmatched query edge ei incident to the
// internally-bound query vertex qv, branching over the data edges adjacent
// to vec[qv]. Internal vertices see all their edges (Definition 1), so if
// no data edge fits, this partial candidate dies — exactly condition 5.
func (en *enumerator) matchIncident(qv, ei int) {
	e := en.q.Edges[ei]
	u := en.vec[qv]
	st := en.f.Store

	tryEdge := func(s, p, o rdf.TermID, otherQV int, other rdf.TermID) {
		if en.err != nil {
			return
		}
		if !en.labelCompatible(e, p) {
			return
		}
		undoB, ok := en.bind(otherQV, other)
		if !ok {
			return
		}
		undoE, ok := en.matchEdge(ei, s, p, o)
		if ok {
			en.expand()
			undoE()
		}
		undoB()
	}

	if e.From == qv {
		adj := st.Out(u)
		if !e.HasVarLabel() {
			adj = st.OutWith(u, e.Label)
		}
		var prev rdf.TermID
		prevV := rdf.NoTerm
		for _, he := range adj {
			if he.P == prev && he.V == prevV {
				continue // duplicate instance
			}
			prev, prevV = he.P, he.V
			if e.From == e.To && he.V != u {
				continue
			}
			tryEdge(u, he.P, he.V, e.To, he.V)
		}
		return
	}
	// e.To == qv (incoming edge).
	adj := st.In(u)
	if !e.HasVarLabel() {
		adj = st.InWith(u, e.Label)
	}
	var prev rdf.TermID
	prevV := rdf.NoTerm
	for _, he := range adj {
		if he.P == prev && he.V == prevV {
			continue
		}
		prev, prevV = he.P, he.V
		tryEdge(he.V, he.P, u, e.From, he.V)
	}
}

// finalize validates the remaining Definition 5 conditions and records the
// match.
func (en *enumerator) finalize() {
	// Condition 3: an unmatched query edge may only have a NULL endpoint or
	// two extended endpoints. (Internal endpoints are impossible here —
	// expand() exhausts them — but verify defensively.)
	for i, e := range en.q.Edges {
		if en.matched&(1<<uint(i)) != 0 {
			continue
		}
		fu, fw := en.vec[e.From], en.vec[e.To]
		if fu == rdf.NoTerm || fw == rdf.NoTerm {
			continue
		}
		if en.f.IsInternal(fu) || en.f.IsInternal(fw) {
			return // condition 5 violated; unreachable by construction
		}
	}
	m := &Match{
		Frag:         en.f.ID,
		Vec:          append([]rdf.TermID(nil), en.vec...),
		EdgeVars:     append([]rdf.TermID(nil), en.evb...),
		MatchedEdges: en.matched,
	}
	for i, e := range en.q.Edges {
		if en.matched&(1<<uint(i)) == 0 {
			continue
		}
		s, o := en.vec[e.From], en.vec[e.To]
		if en.f.IsCrossing(s, o) {
			m.Crossing = append(m.Crossing, CrossEdge{QEdge: i, S: s, P: en.lab[i], O: o})
		}
	}
	// Condition 4: at least one crossing edge (the seed guarantees it, but
	// a seed whose expansion became all-internal would be a complete local
	// match, which belongs to the local stage, not here).
	if len(m.Crossing) == 0 {
		return
	}
	sort.Slice(m.Crossing, func(a, b int) bool {
		x, y := m.Crossing[a], m.Crossing[b]
		if x.QEdge != y.QEdge {
			return x.QEdge < y.QEdge
		}
		if x.S != y.S {
			return x.S < y.S
		}
		if x.P != y.P {
			return x.P < y.P
		}
		return x.O < y.O
	})
	for i, u := range m.Vec {
		if u != rdf.NoTerm && en.f.IsInternal(u) {
			m.Sign |= 1 << uint(i)
		}
	}
	key := m.Key()
	if en.seen[key] {
		return
	}
	en.seen[key] = true
	en.out = append(en.out, m)
	if en.opts.MaxMatches > 0 && len(en.out) > en.opts.MaxMatches {
		en.err = ErrTooManyMatches{Limit: en.opts.MaxMatches}
	}
}
