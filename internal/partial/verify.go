package partial

import (
	"fmt"

	"gstored/internal/fragment"
	"gstored/internal/query"
	"gstored/internal/rdf"
)

// Verify checks a Match against the six conditions of Definition 5 plus
// the structural bookkeeping (Sign, Crossing, connectivity). It is an
// independent oracle for property tests: Compute must only emit matches
// Verify accepts.
func Verify(f *fragment.Fragment, q *query.Graph, m *Match) error {
	if len(m.Vec) != len(q.Vertices) {
		return fmt.Errorf("vector length %d != %d query vertices", len(m.Vec), len(q.Vertices))
	}
	// Condition 1 (constants) and 2 (variables) on every binding.
	for i, u := range m.Vec {
		v := q.Vertices[i]
		if u == rdf.NoTerm {
			continue
		}
		if !v.IsVar() && v.Const != u {
			return fmt.Errorf("constant vertex v%d bound to %d", i+1, u)
		}
		if !f.IsInternal(u) && !f.IsExtended(u) {
			return fmt.Errorf("v%d bound to %d which is neither internal nor extended in F%d", i+1, u, f.ID)
		}
	}
	// Condition 3 per edge, plus matched-edge existence in the fragment.
	for i, e := range q.Edges {
		fu, fw := m.Vec[e.From], m.Vec[e.To]
		if m.MatchedEdges&(1<<uint(i)) != 0 {
			if fu == rdf.NoTerm || fw == rdf.NoTerm {
				return fmt.Errorf("edge %d marked matched with NULL endpoint", i)
			}
			if e.HasVarLabel() {
				p := m.EdgeVars[e.LabelVar]
				if p == rdf.NoTerm || !f.Store.HasTriple(fu, p, fw) {
					return fmt.Errorf("edge %d: no triple %d-%d->%d in fragment", i, fu, p, fw)
				}
			} else if !f.Store.HasTriple(fu, e.Label, fw) {
				return fmt.Errorf("edge %d: no triple %d-%d->%d in fragment", i, fu, e.Label, fw)
			}
			continue
		}
		// Unmatched: requires a NULL endpoint or two extended endpoints.
		if fu != rdf.NoTerm && fw != rdf.NoTerm {
			if !(f.IsExtended(fu) && f.IsExtended(fw)) {
				return fmt.Errorf("edge %d unmatched but endpoints %d,%d not both extended", i, fu, fw)
			}
		}
	}
	// Condition 4: at least one crossing edge.
	if len(m.Crossing) == 0 {
		return fmt.Errorf("no crossing edge")
	}
	for _, c := range m.Crossing {
		if !f.IsCrossing(c.S, c.O) {
			return fmt.Errorf("recorded crossing edge %v is not crossing", c)
		}
		e := q.Edges[c.QEdge]
		if m.Vec[e.From] != c.S || m.Vec[e.To] != c.O {
			return fmt.Errorf("crossing edge %v inconsistent with vector", c)
		}
	}
	// Condition 5: internal vertices have every incident edge matched.
	for qv, u := range m.Vec {
		if u == rdf.NoTerm || !f.IsInternal(u) {
			continue
		}
		for i, e := range q.Edges {
			if (e.From == qv || e.To == qv) && m.MatchedEdges&(1<<uint(i)) == 0 {
				return fmt.Errorf("internal v%d has unmatched incident edge %d", qv+1, i)
			}
		}
	}
	// Condition 6: internally-mapped query vertices weakly connected in Q
	// through internally-mapped vertices only.
	if err := checkInternalConnectivity(f, q, m); err != nil {
		return err
	}
	// PM subgraph connectivity (Definition 5 requires PM connected).
	if err := checkMatchedConnectivity(q, m); err != nil {
		return err
	}
	// Sign bookkeeping.
	var sign uint64
	for i, u := range m.Vec {
		if u != rdf.NoTerm && f.IsInternal(u) {
			sign |= 1 << uint(i)
		}
	}
	if sign != m.Sign {
		return fmt.Errorf("sign %b recorded, %b computed", m.Sign, sign)
	}
	return nil
}

func checkInternalConnectivity(f *fragment.Fragment, q *query.Graph, m *Match) error {
	internal := make([]bool, len(q.Vertices))
	first := -1
	count := 0
	for qv, u := range m.Vec {
		if u != rdf.NoTerm && f.IsInternal(u) {
			internal[qv] = true
			count++
			if first == -1 {
				first = qv
			}
		}
	}
	if count <= 1 {
		return nil
	}
	reached := make([]bool, len(q.Vertices))
	stack := []int{first}
	reached[first] = true
	seen := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range q.Edges {
			var w int
			switch {
			case e.From == v:
				w = e.To
			case e.To == v:
				w = e.From
			default:
				continue
			}
			if internal[w] && !reached[w] {
				reached[w] = true
				seen++
				stack = append(stack, w)
			}
		}
	}
	if seen != count {
		return fmt.Errorf("internal vertices not weakly connected through internal path (condition 6)")
	}
	return nil
}

func checkMatchedConnectivity(q *query.Graph, m *Match) error {
	// Vertices participating in matched edges must form one connected
	// component through matched edges.
	part := make(map[int]bool)
	for i, e := range q.Edges {
		if m.MatchedEdges&(1<<uint(i)) != 0 {
			part[e.From] = true
			part[e.To] = true
		}
	}
	if len(part) == 0 {
		return fmt.Errorf("no matched edges")
	}
	var first int
	for v := range part {
		first = v
		break
	}
	reached := map[int]bool{first: true}
	stack := []int{first}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for i, e := range q.Edges {
			if m.MatchedEdges&(1<<uint(i)) == 0 {
				continue
			}
			var w int
			switch {
			case e.From == v:
				w = e.To
			case e.To == v:
				w = e.From
			default:
				continue
			}
			if !reached[w] {
				reached[w] = true
				stack = append(stack, w)
			}
		}
	}
	if len(reached) != len(part) {
		return fmt.Errorf("matched subgraph disconnected")
	}
	return nil
}
