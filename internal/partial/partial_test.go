package partial

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"gstored/internal/fragment"
	"gstored/internal/paperexample"
	"gstored/internal/partition"
	"gstored/internal/query"
	"gstored/internal/rdf"
	"gstored/internal/store"
)

// vecOf converts a Match vector to paper vertex numbers for comparison
// with Fig. 3 (0 = NULL).
func vecOf(ex *paperexample.Example, m *Match) [5]int {
	rev := make(map[rdf.TermID]int, len(ex.V))
	for n, id := range ex.V {
		rev[id] = n
	}
	var out [5]int
	for i, id := range m.Vec {
		if id != rdf.NoTerm {
			out[i] = rev[id]
		}
	}
	return out
}

func buildPaper(t *testing.T) (*paperexample.Example, *fragment.Distributed) {
	t.Helper()
	ex := paperexample.New()
	d, err := fragment.Build(ex.Store, ex.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	return ex, d
}

// TestPaperFigure3 asserts that Compute reproduces exactly the eight local
// partial matches of Fig. 3, fragment by fragment.
func TestPaperFigure3(t *testing.T) {
	ex, d := buildPaper(t)
	for fragID, wantVecs := range paperexample.ExpectedPartialMatchVectors {
		ms, err := Compute(d.Fragments[fragID], ex.Query, Options{})
		if err != nil {
			t.Fatalf("F%d: %v", fragID+1, err)
		}
		var got [][5]int
		for _, m := range ms {
			got = append(got, vecOf(ex, m))
			if err := Verify(d.Fragments[fragID], ex.Query, m); err != nil {
				t.Errorf("F%d: invalid PM %v: %v", fragID+1, vecOf(ex, m), err)
			}
		}
		sortVecs(got)
		want := append([][5]int(nil), wantVecs...)
		sortVecs(want)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("F%d partial matches:\n got %v\nwant %v (Fig. 3)", fragID+1, got, want)
		}
	}
}

func sortVecs(vs [][5]int) {
	sort.Slice(vs, func(i, j int) bool { return fmt.Sprint(vs[i]) < fmt.Sprint(vs[j]) })
}

// TestPaperSigns checks the LECSign bitstrings of Example 6. The paper
// writes signs as [b1 b2 b3 b4 b5] with bit i ↔ query vertex vi; our Sign
// uses bit i for vertex index i (v1 = index 0).
func TestPaperSigns(t *testing.T) {
	ex, d := buildPaper(t)
	wantSigns := map[[5]int]string{
		{6, 0, 1, 0, 3}:    "00101", // LF([PM1_1])
		{12, 0, 1, 0, 3}:   "00101", // LF([PM2_1])
		{6, 5, 0, 4, 0}:    "01010", // LF([PM3_1])
		{6, 8, 1, 9, 0}:    "11010", // LF([PM1_2])
		{6, 10, 1, 11, 0}:  "11010", // LF([PM2_2])
		{6, 5, 1, 0, 0}:    "10000", // LF([PM3_2])
		{12, 13, 1, 17, 0}: "11010", // LF([PM1_3])
		{14, 13, 0, 17, 0}: "01010", // LF([PM2_3])
	}
	for fragID := range paperexample.ExpectedPartialMatchVectors {
		ms, err := Compute(d.Fragments[fragID], ex.Query, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ms {
			v := vecOf(ex, m)
			want, ok := wantSigns[v]
			if !ok {
				t.Errorf("unexpected PM %v", v)
				continue
			}
			got := signString(m.Sign, 5)
			if got != want {
				t.Errorf("PM %v sign = %s, want %s (Example 6)", v, got, want)
			}
		}
	}
}

func signString(sign uint64, n int) string {
	b := make([]byte, n)
	for i := 0; i < n; i++ {
		if sign&(1<<uint(i)) != 0 {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// TestPaperCrossingEdgeMappings checks the g functions of Example 6 for
// representative matches.
func TestPaperCrossingEdgeMappings(t *testing.T) {
	ex, d := buildPaper(t)
	ms, err := Compute(d.Fragments[0], ex.Query, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Query edge indices in the fixture: 0 = p2-mainInterest->t,
	// 1 = p1-influencedBy->p2, 2 = t-label->l, 3 = p1-name->const.
	for _, m := range ms {
		v := vecOf(ex, m)
		switch v {
		case [5]int{6, 0, 1, 0, 3}: // PM1_1: {001→006 ↦ v3v1}
			if len(m.Crossing) != 1 || m.Crossing[0].QEdge != 1 ||
				m.Crossing[0].S != ex.V[1] || m.Crossing[0].O != ex.V[6] {
				t.Errorf("PM1_1 crossing = %v", m.Crossing)
			}
		case [5]int{6, 5, 0, 4, 0}: // PM3_1: {006→005 ↦ v1v2}
			if len(m.Crossing) != 1 || m.Crossing[0].QEdge != 0 ||
				m.Crossing[0].S != ex.V[6] || m.Crossing[0].O != ex.V[5] {
				t.Errorf("PM3_1 crossing = %v", m.Crossing)
			}
		}
	}
	// PM3_2 carries two crossing edges.
	ms2, err := Compute(d.Fragments[1], ex.Query, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range ms2 {
		if vecOf(ex, m) == [5]int{6, 5, 1, 0, 0} {
			found = true
			if len(m.Crossing) != 2 {
				t.Errorf("PM3_2 crossing = %v, want two edges (Example 6)", m.Crossing)
			}
		}
	}
	if !found {
		t.Error("PM3_2 not found")
	}
}

func TestExtendedFilterPrunes(t *testing.T) {
	ex, d := buildPaper(t)
	// Filter out extended vertex 012 everywhere: PM2_1 must disappear.
	ms, err := Compute(d.Fragments[0], ex.Query, Options{
		ExtendedFilter: func(qv int, u rdf.TermID) bool { return u != ex.V[12] },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if vecOf(ex, m) == [5]int{12, 0, 1, 0, 3} {
			t.Error("PM2_1 not pruned by extended filter")
		}
	}
	if len(ms) != 2 {
		t.Errorf("got %d PMs after filter, want 2", len(ms))
	}
}

func TestMaxMatchesGuard(t *testing.T) {
	ex, d := buildPaper(t)
	_, err := Compute(d.Fragments[1], ex.Query, Options{MaxMatches: 1})
	if _, ok := err.(ErrTooManyMatches); !ok {
		t.Errorf("expected ErrTooManyMatches, got %v", err)
	}
}

func TestSingleFragmentNoPartialMatches(t *testing.T) {
	ex := paperexample.New()
	a := &partition.Assignment{K: 1, Frag: map[rdf.TermID]int{}}
	for _, v := range ex.Store.Vertices() {
		a.Frag[v] = 0
	}
	d, err := fragment.Build(ex.Store, a)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := Compute(d.Fragments[0], ex.Query, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Errorf("single fragment produced %d partial matches", len(ms))
	}
}

func TestVariablePredicatePartialMatches(t *testing.T) {
	// A two-edge path with a shared predicate variable crossing a cut.
	g := rdf.NewGraph()
	g.AddIRIs("a", "p", "b") // crossing
	g.AddIRIs("b", "p", "c") // internal to F1
	st := store.FromGraph(g)
	a := &partition.Assignment{K: 2, Frag: map[rdf.TermID]int{}}
	idOf := func(s string) rdf.TermID { id, _ := g.Dict.Lookup(rdf.NewIRI(s)); return id }
	a.Frag[idOf("a")] = 0
	a.Frag[idOf("b")] = 1
	a.Frag[idOf("c")] = 1
	d, err := fragment.Build(st, a)
	if err != nil {
		t.Fatal(err)
	}
	q := query.NewBuilder(g.Dict).
		Triple(query.Var("x"), query.Var("pp"), query.Var("y")).
		Triple(query.Var("y"), query.Var("pp"), query.Var("z")).
		MustBuild()
	ms0, err := Compute(d.Fragments[0], q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// F0 holds only vertex a (internal); PM: x=a via crossing edge with
	// pp bound to p.
	p := idOf("p")
	for _, m := range ms0 {
		if err := Verify(d.Fragments[0], q, m); err != nil {
			t.Errorf("invalid PM: %v", err)
		}
		if m.EdgeVars[1] != p {
			t.Errorf("edge var bound to %d, want p", m.EdgeVars[1])
		}
	}
	if len(ms0) == 0 {
		t.Fatal("no partial matches in F0")
	}
	ms1, err := Compute(d.Fragments[1], q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms1 {
		if err := Verify(d.Fragments[1], q, m); err != nil {
			t.Errorf("invalid PM in F1: %v", err)
		}
	}
	if len(ms1) == 0 {
		t.Fatal("no partial matches in F1")
	}
}

func TestQueryTooLarge(t *testing.T) {
	g := rdf.NewGraph()
	g.AddIRIs("a", "p", "b")
	st := store.FromGraph(g)
	a, _ := partition.Hash{}.Partition(st, 2)
	d, _ := fragment.Build(st, a)
	b := query.NewBuilder(g.Dict)
	for i := 0; i < 70; i++ {
		b.Triple(query.Var(fmt.Sprintf("v%d", i)), query.IRI("p"), query.Var(fmt.Sprintf("v%d", i+1)))
	}
	// Oversized queries are now rejected at compile time by query.Validate.
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "query too large") {
		t.Errorf("Build of 71-vertex query: err = %v, want query-too-large", err)
	}
	// Defense in depth: a hand-built graph bypassing Build is still
	// rejected by Compute itself.
	pid := g.Dict.Encode(rdf.NewIRI("p"))
	raw := &query.Graph{}
	for i := 0; i <= 70; i++ {
		raw.Vars = append(raw.Vars, fmt.Sprintf("v%d", i))
		raw.Vertices = append(raw.Vertices, query.Vertex{Var: i})
	}
	for i := 0; i < 70; i++ {
		raw.Edges = append(raw.Edges, query.Edge{From: i, To: i + 1, Label: pid, LabelVar: query.NoVar})
	}
	if _, err := Compute(d.Fragments[0], raw, Options{}); err == nil {
		t.Error("expected size-limit error from Compute")
	}
}

// TestComputeAlwaysVerifies: on random graphs and partitionings, every
// emitted partial match satisfies Definition 5 per the independent checker.
func TestComputeAlwaysVerifies(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := rdf.NewGraph()
		nv := 4 + r.Intn(12)
		ne := 6 + r.Intn(24)
		for i := 0; i < ne; i++ {
			g.AddIRIs(fmt.Sprintf("v%d", r.Intn(nv)), fmt.Sprintf("p%d", r.Intn(3)), fmt.Sprintf("v%d", r.Intn(nv)))
		}
		st := store.FromGraph(g)
		k := 2 + r.Intn(3)
		a := &partition.Assignment{K: k, Frag: map[rdf.TermID]int{}}
		for _, v := range st.Vertices() {
			a.Frag[v] = r.Intn(k)
		}
		d, err := fragment.Build(st, a)
		if err != nil {
			return false
		}
		q := query.NewBuilder(g.Dict).
			Triple(query.Var("x"), query.IRI("p0"), query.Var("y")).
			Triple(query.Var("y"), query.IRI("p1"), query.Var("z")).
			Triple(query.Var("z"), query.IRI("p2"), query.Var("w")).
			MustBuild()
		for _, f := range d.Fragments {
			ms, err := Compute(f, q, Options{})
			if err != nil {
				return false
			}
			seen := map[string]bool{}
			for _, m := range ms {
				if Verify(f, q, m) != nil {
					return false
				}
				if seen[m.Key()] {
					return false // duplicates escaped dedup
				}
				seen[m.Key()] = true
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEstimateBytesAndKey(t *testing.T) {
	ex, d := buildPaper(t)
	ms, err := Compute(d.Fragments[0], ex.Query, Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, m := range ms {
		if m.EstimateBytes() <= 0 {
			t.Error("non-positive byte estimate")
		}
		if keys[m.Key()] {
			t.Error("duplicate keys for distinct matches")
		}
		keys[m.Key()] = true
		if m.IsComplete() {
			t.Errorf("partial match %v reported complete", vecOf(ex, m))
		}
	}
}
