package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"iter"
	"net/http"
	"slices"
	"strings"

	"gstored/internal/engine"
	"gstored/internal/rdf"
)

// Result media types served by the /sparql endpoint.
const (
	ContentTypeJSON = "application/sparql-results+json"
	ContentTypeTSV  = "text/tab-separated-values"
)

// flushEveryRows is how often the serializers flush the HTTP response
// while streaming, so long results reach slow consumers incrementally
// without paying a flush per row. Under first-row-early delivery the
// first row additionally flushes on its own — that happens in the
// streaming handler's deferredResponse.commit, not here, so ordered and
// cached responses keep their original buffering.
const flushEveryRows = 1024

// RowSeq is a push-style iterator over result rows: it calls yield once
// per row, in order, stopping when yield returns false. Rows passed to
// yield may be reused between calls — consumers that retain a row beyond
// the call must copy it. engine.Result.EachProjected and SliceSeq both
// satisfy it, so cached slices and live results serialize through the
// same code path.
type RowSeq = iter.Seq[engine.Row]

// SliceSeq adapts materialized rows (e.g. a cache entry) to a RowSeq.
func SliceSeq(rows []engine.Row) RowSeq { return slices.Values(rows) }

// jsonTerm is one RDF term in the SPARQL 1.1 Query Results JSON Format.
type jsonTerm struct {
	Type     string `json:"type"`
	Value    string `json:"value"`
	Lang     string `json:"xml:lang,omitempty"`
	Datatype string `json:"datatype,omitempty"`
}

func termJSON(t rdf.Term) jsonTerm {
	switch t.Kind {
	case rdf.IRI:
		return jsonTerm{Type: "uri", Value: t.Value}
	case rdf.Blank:
		return jsonTerm{Type: "bnode", Value: t.Value}
	default:
		return jsonTerm{Type: "literal", Value: t.Value, Lang: t.Lang, Datatype: t.Datatype}
	}
}

// WriteResultsJSON serializes rows in the SPARQL 1.1 Query Results JSON
// Format. vars are the projected variable names without the leading '?';
// rows yield projected rows (one slot per var, rdf.NoTerm = unbound,
// which the format expresses by omitting the variable from the binding).
//
// The document is written incrementally — head, then one binding at a
// time, with a periodic http.Flusher flush when w supports it — so a
// large result set is never held as a single in-memory document.
func WriteResultsJSON(w io.Writer, dict *rdf.Dictionary, vars []string, rows RowSeq) error {
	head, err := json.Marshal(vars)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, `{"head":{"vars":%s},"results":{"bindings":[`, head); err != nil {
		return err
	}
	flusher, _ := w.(http.Flusher)
	binding := make(map[string]jsonTerm, len(vars))
	var werr error
	n := 0
	rows(func(row engine.Row) bool {
		clear(binding)
		for i, name := range vars {
			if i >= len(row) || row[i] == rdf.NoTerm {
				continue
			}
			t, ok := dict.Decode(row[i])
			if !ok {
				werr = fmt.Errorf("server: row references unknown term ID %d", row[i])
				return false
			}
			binding[name] = termJSON(t)
		}
		enc, err := json.Marshal(binding)
		if err != nil {
			werr = err
			return false
		}
		if n > 0 {
			if _, err := w.Write(commaSep); err != nil {
				werr = err
				return false
			}
		}
		if _, err := w.Write(enc); err != nil {
			werr = err
			return false
		}
		n++
		if flusher != nil && n%flushEveryRows == 0 {
			flusher.Flush()
		}
		return true
	})
	if werr != nil {
		return werr
	}
	_, err = io.WriteString(w, "]}}\n")
	return err
}

var commaSep = []byte{','}

// WriteResultsTSV serializes rows in the SPARQL 1.1 Query Results TSV
// Format: a header of '?'-prefixed variable names, then one line per
// binding with terms in N-Triples syntax and empty fields for unbound
// variables, streamed with a periodic http.Flusher flush when w supports
// it.
func WriteResultsTSV(w io.Writer, dict *rdf.Dictionary, vars []string, rows RowSeq) error {
	// One reused line buffer: the per-row allocation profile must stay
	// flat no matter how many rows stream through.
	var b bytes.Buffer
	for i, name := range vars {
		if i > 0 {
			b.WriteByte('\t')
		}
		b.WriteByte('?')
		b.WriteString(name)
	}
	b.WriteByte('\n')
	if _, err := w.Write(b.Bytes()); err != nil {
		return err
	}
	flusher, _ := w.(http.Flusher)
	var werr error
	n := 0
	rows(func(row engine.Row) bool {
		b.Reset()
		for i := range vars {
			if i > 0 {
				b.WriteByte('\t')
			}
			if i >= len(row) || row[i] == rdf.NoTerm {
				continue
			}
			t, ok := dict.Decode(row[i])
			if !ok {
				werr = fmt.Errorf("server: row references unknown term ID %d", row[i])
				return false
			}
			writeTSVTerm(&b, t)
		}
		b.WriteByte('\n')
		if _, err := w.Write(b.Bytes()); err != nil {
			werr = err
			return false
		}
		n++
		if flusher != nil && n%flushEveryRows == 0 {
			flusher.Flush()
		}
		return true
	})
	return werr
}

// writeTSVTerm renders one term into a TSV cell. Term.String applies the
// N-Triples escapes the SPARQL 1.1 TSV format requires inside literals
// (\t, \n, \r, \", \\), so a literal containing a raw tab or newline can
// never shift later columns. IRIs and blank-node labels are rendered
// verbatim by Term.String, though — such control characters are illegal
// there, but a malformed term that smuggled one through the dictionary
// must still not corrupt the table shape, so they are escaped here too.
func writeTSVTerm(b *bytes.Buffer, t rdf.Term) {
	s := t.String()
	if strings.ContainsAny(s, "\t\n\r") {
		s = tsvCellSanitizer.Replace(s)
	}
	b.WriteString(s)
}

var tsvCellSanitizer = strings.NewReplacer("\t", `\t`, "\n", `\n`, "\r", `\r`)
