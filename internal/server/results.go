package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"iter"
	"net/http"
	"slices"
	"sort"
	"strings"
	"unicode/utf8"

	"gstored/internal/engine"
	"gstored/internal/rdf"
)

// Result media types served by the /sparql endpoint.
const (
	ContentTypeJSON = "application/sparql-results+json"
	ContentTypeTSV  = "text/tab-separated-values"
)

// flushEveryRows is how often the serializers flush the HTTP response
// while streaming, so long results reach slow consumers incrementally
// without paying a flush per row. Under first-row-early delivery the
// first row additionally flushes on its own — that happens in the
// streaming handler's deferredResponse.commit, not here, so ordered and
// cached responses keep their original buffering.
const flushEveryRows = 1024

// RowSeq is a push-style iterator over result rows: it calls yield once
// per row, in order, stopping when yield returns false. Rows passed to
// yield may be reused between calls — consumers that retain a row beyond
// the call must copy it. engine.Result.EachProjected and SliceSeq both
// satisfy it, so cached slices and live results serialize through the
// same code path.
type RowSeq = iter.Seq[engine.Row]

// SliceSeq adapts materialized rows (e.g. a cache entry) to a RowSeq.
func SliceSeq(rows []engine.Row) RowSeq { return slices.Values(rows) }

// jsonTerm is one RDF term in the SPARQL 1.1 Query Results JSON Format.
type jsonTerm struct {
	Type     string `json:"type"`
	Value    string `json:"value"`
	Lang     string `json:"xml:lang,omitempty"`
	Datatype string `json:"datatype,omitempty"`
}

func termJSON(t rdf.Term) jsonTerm {
	switch t.Kind {
	case rdf.IRI:
		return jsonTerm{Type: "uri", Value: t.Value}
	case rdf.Blank:
		return jsonTerm{Type: "bnode", Value: t.Value}
	default:
		return jsonTerm{Type: "literal", Value: t.Value, Lang: t.Lang, Datatype: t.Datatype}
	}
}

// WriteResultsJSON serializes rows in the SPARQL 1.1 Query Results JSON
// Format. vars are the projected variable names without the leading '?';
// rows yield projected rows (one slot per var, rdf.NoTerm = unbound,
// which the format expresses by omitting the variable from the binding).
//
// The document is written incrementally — head, then one binding at a
// time, with a periodic http.Flusher flush when w supports it — so a
// large result set is never held as a single in-memory document.
//
// The per-row path is hand-rolled: the earlier map[string]jsonTerm +
// json.Marshal implementation spent over 80% of the cold large-query
// wall clock in reflection and per-row map churn. The output stays
// byte-identical — variables in sorted-name order (Marshal sorted the
// map keys) and encoding/json's exact string escaping, HTML escapes
// included — and terms render once per distinct ID through a bounded
// per-response cache (cross products repeat terms heavily).
func WriteResultsJSON(w io.Writer, dict *rdf.Dictionary, vars []string, rows RowSeq) error {
	head, err := json.Marshal(vars)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, `{"head":{"vars":%s},"results":{"bindings":[`, head); err != nil {
		return err
	}
	flusher, _ := w.(http.Flusher)
	ord := make([]int, len(vars))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return vars[ord[a]] < vars[ord[b]] })
	keys := make([][]byte, len(vars))
	for i, name := range vars {
		keys[i] = append(appendJSONString(nil, name), ':')
	}
	cache := make(map[rdf.TermID][]byte)
	var buf []byte
	var werr error
	n := 0
	rows(func(row engine.Row) bool {
		buf = buf[:0]
		if n > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, '{')
		first := true
		for _, i := range ord {
			if i >= len(row) || row[i] == rdf.NoTerm {
				continue
			}
			tb, ok := cache[row[i]]
			if !ok {
				t, found := dict.Decode(row[i])
				if !found {
					werr = fmt.Errorf("server: row references unknown term ID %d", row[i])
					return false
				}
				tb = appendTermJSON(nil, t)
				if len(cache) < termRenderCacheCap {
					cache[row[i]] = tb
				}
			}
			if !first {
				buf = append(buf, ',')
			}
			first = false
			buf = append(buf, keys[i]...)
			buf = append(buf, tb...)
		}
		buf = append(buf, '}')
		if _, err := w.Write(buf); err != nil {
			werr = err
			return false
		}
		n++
		if flusher != nil && n%flushEveryRows == 0 {
			flusher.Flush()
		}
		return true
	})
	if werr != nil {
		return werr
	}
	_, err = io.WriteString(w, "]}}\n")
	return err
}

// termRenderCacheCap bounds the per-response term-render cache so a
// pathological result with millions of distinct terms cannot hold the
// whole rendering in memory; past the cap, terms render per occurrence.
const termRenderCacheCap = 1 << 16

// appendTermJSON renders one term exactly as json.Marshal renders
// jsonTerm: fields in declaration order, empty Lang/Datatype omitted.
func appendTermJSON(b []byte, t rdf.Term) []byte {
	switch t.Kind {
	case rdf.IRI:
		b = append(b, `{"type":"uri","value":`...)
		b = appendJSONString(b, t.Value)
	case rdf.Blank:
		b = append(b, `{"type":"bnode","value":`...)
		b = appendJSONString(b, t.Value)
	default:
		b = append(b, `{"type":"literal","value":`...)
		b = appendJSONString(b, t.Value)
		if t.Lang != "" {
			b = append(b, `,"xml:lang":`...)
			b = appendJSONString(b, t.Lang)
		}
		if t.Datatype != "" {
			b = append(b, `,"datatype":`...)
			b = appendJSONString(b, t.Datatype)
		}
	}
	return append(b, '}')
}

// jsonSafe marks the ASCII bytes encoding/json leaves unescaped with
// HTML escaping on (its htmlSafeSet): printable characters minus the
// quote, backslash, and the HTML-sensitive <, >, &.
var jsonSafe = func() (safe [utf8.RuneSelf]bool) {
	for c := 0x20; c < utf8.RuneSelf; c++ {
		safe[c] = true
	}
	safe['"'] = false
	safe['\\'] = false
	safe['<'] = false
	safe['>'] = false
	safe['&'] = false
	return
}()

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string, byte-identical to
// encoding/json's default (HTML-escaping) encoder: \uXXXX for control
// and HTML-sensitive characters, � for invalid UTF-8, and escaped
// U+2028/U+2029.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if jsonSafe[c] {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\b':
				b = append(b, '\\', 'b')
			case '\f':
				b = append(b, '\\', 'f')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// WriteResultsTSV serializes rows in the SPARQL 1.1 Query Results TSV
// Format: a header of '?'-prefixed variable names, then one line per
// binding with terms in N-Triples syntax and empty fields for unbound
// variables, streamed with a periodic http.Flusher flush when w supports
// it.
func WriteResultsTSV(w io.Writer, dict *rdf.Dictionary, vars []string, rows RowSeq) error {
	// One reused line buffer: the per-row allocation profile must stay
	// flat no matter how many rows stream through.
	var b bytes.Buffer
	for i, name := range vars {
		if i > 0 {
			b.WriteByte('\t')
		}
		b.WriteByte('?')
		b.WriteString(name)
	}
	b.WriteByte('\n')
	if _, err := w.Write(b.Bytes()); err != nil {
		return err
	}
	flusher, _ := w.(http.Flusher)
	var werr error
	n := 0
	rows(func(row engine.Row) bool {
		b.Reset()
		for i := range vars {
			if i > 0 {
				b.WriteByte('\t')
			}
			if i >= len(row) || row[i] == rdf.NoTerm {
				continue
			}
			t, ok := dict.Decode(row[i])
			if !ok {
				werr = fmt.Errorf("server: row references unknown term ID %d", row[i])
				return false
			}
			writeTSVTerm(&b, t)
		}
		b.WriteByte('\n')
		if _, err := w.Write(b.Bytes()); err != nil {
			werr = err
			return false
		}
		n++
		if flusher != nil && n%flushEveryRows == 0 {
			flusher.Flush()
		}
		return true
	})
	return werr
}

// writeTSVTerm renders one term into a TSV cell. Term.String applies the
// N-Triples escapes the SPARQL 1.1 TSV format requires inside literals
// (\t, \n, \r, \", \\), so a literal containing a raw tab or newline can
// never shift later columns. IRIs and blank-node labels are rendered
// verbatim by Term.String, though — such control characters are illegal
// there, but a malformed term that smuggled one through the dictionary
// must still not corrupt the table shape, so they are escaped here too.
func writeTSVTerm(b *bytes.Buffer, t rdf.Term) {
	s := t.String()
	if strings.ContainsAny(s, "\t\n\r") {
		s = tsvCellSanitizer.Replace(s)
	}
	b.WriteString(s)
}

var tsvCellSanitizer = strings.NewReplacer("\t", `\t`, "\n", `\n`, "\r", `\r`)
