package server

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"gstored/internal/engine"
	"gstored/internal/rdf"
)

// Result media types served by the /sparql endpoint.
const (
	ContentTypeJSON = "application/sparql-results+json"
	ContentTypeTSV  = "text/tab-separated-values"
)

// jsonTerm is one RDF term in the SPARQL 1.1 Query Results JSON Format.
type jsonTerm struct {
	Type     string `json:"type"`
	Value    string `json:"value"`
	Lang     string `json:"xml:lang,omitempty"`
	Datatype string `json:"datatype,omitempty"`
}

func termJSON(t rdf.Term) jsonTerm {
	switch t.Kind {
	case rdf.IRI:
		return jsonTerm{Type: "uri", Value: t.Value}
	case rdf.Blank:
		return jsonTerm{Type: "bnode", Value: t.Value}
	default:
		return jsonTerm{Type: "literal", Value: t.Value, Lang: t.Lang, Datatype: t.Datatype}
	}
}

// WriteResultsJSON serializes rows in the SPARQL 1.1 Query Results JSON
// Format. vars are the projected variable names without the leading '?';
// rows are projected rows (one slot per var, rdf.NoTerm = unbound, which
// the format expresses by omitting the variable from the binding).
func WriteResultsJSON(w io.Writer, dict *rdf.Dictionary, vars []string, rows []engine.Row) error {
	type results struct {
		Bindings []map[string]jsonTerm `json:"bindings"`
	}
	doc := struct {
		Head    struct {
			Vars []string `json:"vars"`
		} `json:"head"`
		Results results `json:"results"`
	}{}
	doc.Head.Vars = vars
	doc.Results.Bindings = make([]map[string]jsonTerm, 0, len(rows))
	for _, row := range rows {
		binding := make(map[string]jsonTerm, len(vars))
		for i, name := range vars {
			if i >= len(row) || row[i] == rdf.NoTerm {
				continue
			}
			t, ok := dict.Decode(row[i])
			if !ok {
				return fmt.Errorf("server: row references unknown term ID %d", row[i])
			}
			binding[name] = termJSON(t)
		}
		doc.Results.Bindings = append(doc.Results.Bindings, binding)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteResultsTSV serializes rows in the SPARQL 1.1 Query Results TSV
// Format: a header of '?'-prefixed variable names, then one row per
// binding with terms in N-Triples syntax and empty fields for unbound
// variables.
func WriteResultsTSV(w io.Writer, dict *rdf.Dictionary, vars []string, rows []engine.Row) error {
	var b strings.Builder
	for i, name := range vars {
		if i > 0 {
			b.WriteByte('\t')
		}
		b.WriteByte('?')
		b.WriteString(name)
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for _, row := range rows {
		b.Reset()
		for i := range vars {
			if i > 0 {
				b.WriteByte('\t')
			}
			if i >= len(row) || row[i] == rdf.NoTerm {
				continue
			}
			t, ok := dict.Decode(row[i])
			if !ok {
				return fmt.Errorf("server: row references unknown term ID %d", row[i])
			}
			b.WriteString(t.String())
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}
