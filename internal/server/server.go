// Package server is the SPARQL serving layer over a gstored database: a
// SPARQL 1.1 Protocol HTTP endpoint backed by a bounded concurrent query
// scheduler (admission control, per-query timeout and cancellation) and
// an LRU result cache keyed on the canonicalized compiled query, plus
// /metrics and /healthz operational endpoints.
//
// Endpoints:
//
//	GET  /sparql?query=...   SPARQL 1.1 Protocol query via GET
//	POST /sparql             form-urlencoded query= or application/sparql-query body
//	GET  /metrics            Prometheus text exposition of serving + engine counters
//	GET  /healthz            liveness probe with dataset summary
//
// Results are serialized as application/sparql-results+json (default) or
// text/tab-separated-values, negotiated via the Accept header or a
// ?format=json|tsv override. Cache state is reported in the X-Cache
// response header (HIT or MISS).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"time"

	"gstored"
)

// Config tunes New. The zero value serves with sensible defaults.
type Config struct {
	// MaxInFlight bounds admitted queries (queued + running); requests
	// beyond it receive 503 (default 64).
	MaxInFlight int
	// Workers is the query worker pool size (default GOMAXPROCS).
	Workers int
	// QueryTimeout cancels queries running longer than this (default 30s).
	QueryTimeout time.Duration
	// CacheEntries bounds the LRU result cache (default 256; negative
	// disables caching).
	CacheEntries int
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	return c
}

// Server serves SPARQL queries over HTTP. Create with New; it implements
// http.Handler and must be Closed to stop the worker pool.
type Server struct {
	db      *gstored.DB
	cfg     Config
	sched   *Scheduler
	cache   *Cache // nil when caching is disabled
	metrics Metrics
	mux     *http.ServeMux
	started time.Time
}

// New builds a server over db. The db must outlive the server.
func New(db *gstored.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		db:      db,
		cfg:     cfg,
		sched:   NewScheduler(cfg.Workers, cfg.MaxInFlight),
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	if cfg.CacheEntries > 0 {
		s.cache = NewCache(cfg.CacheEntries)
	}
	s.mux.HandleFunc("/sparql", s.handleSparql)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops the scheduler's worker pool. In-flight queries finish;
// queued ones fail with ErrClosed.
func (s *Server) Close() { s.sched.Close() }

// Metrics exposes the server's counters; intended for tests and embedding.
func (s *Server) Metrics() *Metrics { return &s.metrics }

// CacheStats snapshots the result-cache counters (zero when disabled).
func (s *Server) CacheStats() CacheStats {
	if s.cache == nil {
		return CacheStats{}
	}
	return s.cache.Stats()
}

// queryText extracts the SPARQL text per the SPARQL 1.1 Protocol.
func queryText(r *http.Request) (string, error) {
	switch r.Method {
	case http.MethodGet:
		return r.URL.Query().Get("query"), nil
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		if i := strings.IndexByte(ct, ';'); i >= 0 {
			ct = ct[:i]
		}
		switch strings.TrimSpace(strings.ToLower(ct)) {
		case "application/x-www-form-urlencoded", "":
			if err := r.ParseForm(); err != nil {
				return "", fmt.Errorf("malformed form body: %w", err)
			}
			return r.PostForm.Get("query"), nil
		case "application/sparql-query":
			body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, 1<<20))
			if err != nil {
				return "", fmt.Errorf("reading query body: %w", err)
			}
			return string(body), nil
		default:
			return "", fmt.Errorf("unsupported Content-Type %q", ct)
		}
	default:
		return "", errMethod
	}
}

var errMethod = errors.New("method not allowed")

// negotiate picks the response serialization: an explicit ?format=
// override wins, then the Accept header; JSON is the default.
func negotiate(r *http.Request) (contentType string, tsv bool) {
	switch strings.ToLower(r.URL.Query().Get("format")) {
	case "tsv":
		return ContentTypeTSV, true
	case "json":
		return ContentTypeJSON, false
	}
	if strings.Contains(r.Header.Get("Accept"), ContentTypeTSV) {
		return ContentTypeTSV, true
	}
	return ContentTypeJSON, false
}

func (s *Server) handleSparql(w http.ResponseWriter, r *http.Request) {
	text, err := queryText(r)
	if err != nil {
		if errors.Is(err, errMethod) {
			w.Header().Set("Allow", "GET, POST")
			http.Error(w, "use GET or POST", http.StatusMethodNotAllowed)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if strings.TrimSpace(text) == "" {
		http.Error(w, "missing 'query' parameter", http.StatusBadRequest)
		return
	}

	// ParseReadOnly: untrusted constants must not grow the shared
	// dictionary; unknown terms match nothing, which is the right answer.
	q, err := s.db.ParseReadOnly(text)
	if err != nil {
		s.metrics.Errors.Add(1)
		http.Error(w, fmt.Sprintf("parse error: %v", err), http.StatusBadRequest)
		return
	}

	var key string
	if s.cache != nil {
		key = fmt.Sprintf("m%d|%s", s.db.Mode(), s.db.CanonicalQueryKey(q))
		if hit, ok := s.cache.Get(key); ok {
			s.metrics.Queries.Add(1)
			s.writeRows(w, r, q, hit.Rows, true)
			return
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
	defer cancel()
	var res *gstored.Result
	var engineWall time.Duration
	err = s.sched.Run(ctx, func(ctx context.Context) error {
		// Clock the engine run alone — admission-queue wait would
		// inflate gstored_query_seconds_total exactly under saturation.
		start := time.Now()
		var qerr error
		res, qerr = s.db.QueryGraphContext(ctx, q)
		engineWall = time.Since(start)
		return qerr
	})
	if err != nil {
		s.failQuery(w, err)
		return
	}
	s.metrics.Queries.Add(1)
	s.metrics.Observe(res.Stats, engineWall)
	rows := res.Project()
	if s.cache != nil {
		s.cache.Put(key, &CachedResult{Rows: rows, Stats: res.Stats})
	}
	s.writeRows(w, r, q, rows, false)
}

// failQuery maps scheduler and engine errors to HTTP statuses: overload
// to 503 (with Retry-After, so well-behaved clients back off), deadline
// expiry to 504, cancellation by the client to 499-style 503, anything
// else to 500.
func (s *Server) failQuery(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		s.metrics.Rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "query load limit reached, retry later", http.StatusServiceUnavailable)
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.Timeouts.Add(1)
		http.Error(w, fmt.Sprintf("query exceeded the %v time limit", s.cfg.QueryTimeout), http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		s.metrics.Errors.Add(1)
		http.Error(w, "query canceled", http.StatusServiceUnavailable)
	case errors.Is(err, ErrClosed):
		s.metrics.Errors.Add(1)
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
	default:
		s.metrics.Errors.Add(1)
		http.Error(w, fmt.Sprintf("query failed: %v", err), http.StatusInternalServerError)
	}
}

func (s *Server) writeRows(w http.ResponseWriter, r *http.Request, q *gstored.QueryGraph, rows []gstored.Row, hit bool) {
	vars := make([]string, 0, len(q.Vars))
	for _, col := range s.db.Columns(q) {
		vars = append(vars, strings.TrimPrefix(col, "?"))
	}
	contentType, tsv := negotiate(r)
	w.Header().Set("Content-Type", contentType)
	if hit {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	var err error
	if tsv {
		err = WriteResultsTSV(w, s.db.Graph.Dict, vars, rows)
	} else {
		err = WriteResultsJSON(w, s.db.Graph.Dict, vars, rows)
	}
	if err != nil {
		// Headers are gone; all we can do is abort the stream.
		s.metrics.Errors.Add(1)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.Write(w, s.CacheStats(), s.sched.InFlight(), time.Since(s.started))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":   "ok",
		"triples":  s.db.Graph.Len(),
		"sites":    s.db.NumSites(),
		"strategy": s.db.StrategyName,
		"mode":     s.db.Mode().String(),
	})
}
