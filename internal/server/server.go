// Package server is the SPARQL serving layer over a gstored database: a
// SPARQL 1.1 Protocol HTTP endpoint backed by a bounded concurrent query
// scheduler (admission control, per-query timeout and cancellation) and
// an LRU result cache keyed on the canonicalized compiled query, plus
// /metrics and /healthz operational endpoints.
//
// Endpoints:
//
//	GET  /sparql?query=...   SPARQL 1.1 Protocol query via GET
//	POST /sparql             form-urlencoded query= or application/sparql-query body;
//	                         with Config.Writable, form-urlencoded update= or an
//	                         application/sparql-update body applies INSERT DATA /
//	                         DELETE DATA (403 on read-only servers)
//	GET  /advisor            workload-weighted partition advisor report (JSON)
//	POST /repartition        apply a partitioning (or the advisor's pick) online
//	GET  /metrics            Prometheus text exposition of serving + engine counters
//	GET  /healthz            liveness probe with dataset summary
//
// Every answered query feeds a bounded query log (internal/querylog);
// /advisor replays that log's predicate-touch frequencies through the
// workload-weighted Section VII cost model and recommends a
// (strategy, k); /repartition hot-swaps the cluster via DB.Repartition
// while queries keep serving. The result cache is epoch-versioned:
// cache and singleflight keys embed the cluster epoch, and the resident
// cache is flushed when the epoch advances, so a pre-swap result can
// never answer a post-swap query.
//
// Results are serialized as application/sparql-results+json (default) or
// text/tab-separated-values, negotiated via the Accept header or a
// ?format=json|tsv override, and streamed: bindings are written
// incrementally with periodic flushes, so memory per request stays
// bounded regardless of result size. Cache state is reported in the
// X-Cache response header: HIT (served from the result cache), MISS
// (executed and, when small enough, cached), BYPASS (executed but too
// large for the cache's row cap), COALESCED (shared the execution of
// a concurrent identical query via singleflight), or STREAM (unordered
// first-row-early delivery under Config.Unordered: rows flow from the
// engine to the serializer as they are produced, LIMIT cancels the
// remaining distributed work, and the cache is not consulted).
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gstored"
	"gstored/internal/querylog"
	"gstored/internal/trace"
)

// Config tunes New. The zero value serves with sensible defaults.
type Config struct {
	// MaxInFlight bounds admitted queries (queued + running); requests
	// beyond it receive 503 (default 64). On writable servers the same
	// bound caps concurrently admitted update requests (which serialize
	// on the DB's swap mutex rather than the query worker pool).
	MaxInFlight int
	// Workers is the query worker pool size (default GOMAXPROCS).
	Workers int
	// QueryTimeout cancels queries running longer than this (default 30s).
	QueryTimeout time.Duration
	// CacheEntries bounds the LRU result cache (default 256; negative
	// disables caching).
	CacheEntries int
	// CacheMaxRows caps the result size admitted to the cache, in
	// projected rows: larger results are streamed to the client and
	// bypass the cache (X-Cache: BYPASS), so one huge query can neither
	// evict the working set nor pin unbounded memory (default 65536;
	// negative removes the cap).
	CacheMaxRows int
	// QueryLogCapacity bounds the distinct queries tracked by the
	// workload log feeding /advisor (default querylog.DefaultCapacity;
	// negative disables workload capture entirely).
	QueryLogCapacity int
	// AdvisorKs are the candidate site counts /advisor evaluates when
	// the request does not pass ?k=; empty means the current site count.
	AdvisorKs []int
	// QueryLogSink, when non-nil, receives every answered query as a
	// JSONL querylog.Record, replayable offline by `gstored advise`.
	QueryLogSink io.Writer
	// Writable enables the SPARQL 1.1 Update path: POST /sparql with an
	// application/sparql-update body (or an update= form field) applies
	// INSERT DATA / DELETE DATA as an atomic generation swap with an
	// epoch bump — the same mechanism /repartition uses, so the result
	// cache and singleflight can never serve a pre-write answer. When
	// false (the default) update requests are refused with 403 and the
	// database is never mutated.
	Writable bool
	// SlowQueryLog, when non-nil, receives one structured JSON line
	// (SlowQueryRecord) for every query whose client-facing wall time
	// reaches SlowQueryThreshold. Point it at a RotatingWriter to bound
	// disk use. When set, every executed query carries a trace, so slow
	// lines include the per-stage, per-fragment span timeline.
	SlowQueryLog io.Writer
	// SlowQueryThreshold is the slow-query bar; zero logs every query
	// (useful in CI and when diagnosing), and it only takes effect when
	// SlowQueryLog is set.
	SlowQueryThreshold time.Duration
	// Unordered enables first-row-early delivery: rows stream straight
	// from the engine's unordered execution into the serializer as they
	// are produced — no terminal sort, no materialized result — and a
	// LIMIT cancels the remaining distributed work once satisfied.
	// Responses bypass the result cache and singleflight (X-Cache:
	// STREAM): rows are never materialized to store, and which subset a
	// truncated unordered query returns is execution-dependent. Row order
	// varies between runs; the ordered default keeps the deterministic
	// canonical order golden tests and the cache rely on.
	Unordered bool
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.CacheMaxRows == 0 {
		c.CacheMaxRows = 1 << 16
	}
	return c
}

// Server serves SPARQL queries over HTTP. Create with New; it implements
// http.Handler and must be Closed to stop the worker pool.
type Server struct {
	db      *gstored.DB
	cfg     Config
	sched   *Scheduler
	cache   *Cache        // nil when caching is disabled
	qlog    *querylog.Log // nil when workload capture is disabled
	logSink *querylog.Writer
	// updateSlots bounds concurrently admitted update requests (writers
	// serialize on the DB's swap mutex, so admitted slots measure queue
	// depth); nil on read-only servers. Sized like MaxInFlight so one
	// knob governs both admission bounds.
	updateSlots chan struct{}
	slowLog     *slowLogger // nil when slow-query logging is disabled
	epoch       atomic.Uint64 // last cluster epoch the cache was synced to
	// heartbeats records when each site last answered a health probe
	// (healthz and metrics both probe); the healthz table reports it so
	// a down site shows how stale its last good answer is.
	heartMu    sync.Mutex
	heartbeats map[int]time.Time
	flights     flightGroup
	metrics     Metrics
	mux         *http.ServeMux
	started     time.Time
}

// New builds a server over db. The db must outlive the server.
func New(db *gstored.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		db:         db,
		cfg:        cfg,
		sched:      NewScheduler(cfg.Workers, cfg.MaxInFlight),
		mux:        http.NewServeMux(),
		started:    time.Now(),
		heartbeats: make(map[int]time.Time),
	}
	if cfg.CacheEntries > 0 {
		s.cache = NewCache(cfg.CacheEntries)
	}
	if cfg.QueryLogCapacity >= 0 {
		s.qlog = querylog.New(cfg.QueryLogCapacity)
	}
	if cfg.QueryLogSink != nil {
		s.logSink = querylog.NewWriter(cfg.QueryLogSink)
	}
	if cfg.Writable {
		s.updateSlots = make(chan struct{}, cfg.MaxInFlight)
	}
	if cfg.SlowQueryLog != nil {
		s.slowLog = &slowLogger{w: cfg.SlowQueryLog, threshold: cfg.SlowQueryThreshold, drops: &s.metrics.SlowLogDrops}
	}
	s.epoch.Store(db.Epoch())
	s.mux.HandleFunc("/sparql", s.handleSparql)
	s.mux.HandleFunc("/advisor", s.handleAdvisor)
	s.mux.HandleFunc("/repartition", s.handleRepartition)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops the scheduler's worker pool. In-flight queries finish;
// queued ones fail with ErrClosed.
func (s *Server) Close() { s.sched.Close() }

// Metrics exposes the server's counters; intended for tests and embedding.
func (s *Server) Metrics() *Metrics { return &s.metrics }

// CacheStats snapshots the result-cache counters (zero when disabled).
func (s *Server) CacheStats() CacheStats {
	if s.cache == nil {
		return CacheStats{}
	}
	return s.cache.Stats()
}

// requestText extracts the SPARQL text per the SPARQL 1.1 Protocol and
// classifies the operation: queries arrive via GET query=, POSTed form
// query= fields, or application/sparql-query bodies; updates arrive via
// POSTed form update= fields or application/sparql-update bodies
// (updates over GET are not a thing — a cacheable, retriable method must
// not mutate).
func requestText(r *http.Request) (text string, isUpdate bool, err error) {
	switch r.Method {
	case http.MethodGet:
		return r.URL.Query().Get("query"), false, nil
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		if i := strings.IndexByte(ct, ';'); i >= 0 {
			ct = ct[:i]
		}
		switch strings.TrimSpace(strings.ToLower(ct)) {
		case "application/x-www-form-urlencoded", "":
			// Same 1 MiB cap as the direct-body forms: without it,
			// ParseForm's default ~10 MiB limit would let form-encoded
			// requests (updates especially) grow 10x past the documented
			// bound just by switching encodings.
			r.Body = http.MaxBytesReader(nil, r.Body, 1<<20)
			if err := r.ParseForm(); err != nil {
				return "", false, fmt.Errorf("malformed form body: %w", err)
			}
			if u := r.PostForm.Get("update"); u != "" {
				if r.PostForm.Get("query") != "" {
					return "", false, fmt.Errorf("provide query or update, not both")
				}
				return u, true, nil
			}
			return r.PostForm.Get("query"), false, nil
		case "application/sparql-query":
			text, err := postBody(r)
			return text, false, err
		case "application/sparql-update":
			text, err := postBody(r)
			return text, true, err
		default:
			return "", false, fmt.Errorf("unsupported Content-Type %q", ct)
		}
	default:
		return "", false, errMethod
	}
}

func postBody(r *http.Request) (string, error) {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, 1<<20))
	if err != nil {
		return "", fmt.Errorf("reading request body: %w", err)
	}
	return string(body), nil
}

var errMethod = errors.New("method not allowed")

// negotiate picks the response serialization: an explicit ?format=
// override wins, then the Accept header; JSON is the default. Accept is
// parsed at media-range granularity per RFC 9110 — ranges split on
// commas, parameters (q-values included) stripped, exact media-type
// comparison — and the first range matching a supported type wins, so
// "application/sparql-results+json, text/tab-separated-values;q=0.1"
// negotiates JSON instead of substring-matching TSV.
func negotiate(r *http.Request) (contentType string, tsv bool) {
	switch strings.ToLower(r.URL.Query().Get("format")) {
	case "tsv":
		return ContentTypeTSV, true
	case "json":
		return ContentTypeJSON, false
	}
	for _, rng := range strings.Split(r.Header.Get("Accept"), ",") {
		mt, _, _ := strings.Cut(rng, ";")
		switch strings.ToLower(strings.TrimSpace(mt)) {
		case ContentTypeTSV, "text/*":
			return ContentTypeTSV, true
		case ContentTypeJSON, "application/json", "application/*", "*/*":
			return ContentTypeJSON, false
		}
	}
	return ContentTypeJSON, false
}

// logKey is the workload-log key: the canonical compiled query scoped
// by engine mode — the same query is the same workload item across
// repartitions, so the epoch stays out of it.
func (s *Server) logKey(q *gstored.QueryGraph) string {
	return fmt.Sprintf("m%d|%s", s.db.Mode(), s.db.CanonicalQueryKey(q))
}

// cacheKey scopes a log key to one cluster generation: a result
// computed on a pre-swap cluster must never answer a post-swap request,
// and a flight started pre-swap publishes only under its own epoch.
func cacheKey(epoch uint64, logKey string) string {
	return fmt.Sprintf("e%d|%s", epoch, logKey)
}

func (s *Server) handleSparql(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	text, isUpdate, err := requestText(r)
	if err != nil {
		if errors.Is(err, errMethod) {
			w.Header().Set("Allow", "GET, POST")
			http.Error(w, "use GET or POST", http.StatusMethodNotAllowed)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if isUpdate {
		s.handleUpdate(w, r, text)
		return
	}
	if strings.TrimSpace(text) == "" {
		http.Error(w, "missing 'query' parameter", http.StatusBadRequest)
		return
	}

	// A trace is attached only when something will read it — the explain
	// response or the slow-query log. Untraced executions pay one nil
	// context lookup per stage.
	explain := explainRequested(r)
	var tr *trace.Trace
	if explain || s.slowLog != nil {
		tr = trace.New()
	}

	// ParseReadOnly: untrusted constants must not grow the shared
	// dictionary; unknown terms match nothing, which is the right answer.
	parseStart := time.Now()
	q, err := s.db.ParseReadOnly(text)
	tr.Span("parse", trace.Coordinator, parseStart, time.Since(parseStart))
	if err != nil {
		s.metrics.Errors.Add(1)
		s.metrics.ObserveOutcome(outcomeError, time.Since(start))
		http.Error(w, fmt.Sprintf("parse error: %v", err), http.StatusBadRequest)
		return
	}

	if explain {
		s.handleExplain(w, r, q, text, tr, start)
		return
	}
	if s.cfg.Unordered {
		s.streamQuery(w, r, q, text, tr, start)
		return
	}

	logKey := s.logKey(q)
	epoch := s.syncEpoch()
	key := cacheKey(epoch, logKey)
	if s.cache != nil {
		if hit, ok := s.cache.Get(key); ok {
			s.metrics.Queries.Add(1)
			s.observe(logKey, text, q, hit.Stats)
			s.writeRows(w, r, q, SliceSeq(hit.Rows), cacheHit, tr)
			s.finishQuery(outcomeHit, start, logKey, epoch, &hit.Stats, len(hit.Rows), tr)
			return
		}
	}

	fl, leader := s.flights.join(key)
	if !leader {
		// Singleflight: an identical query is already executing; wait for
		// its outcome instead of running the engine again.
		s.metrics.Coalesced.Add(1)
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
		defer cancel()
		select {
		case <-fl.done:
		case <-ctx.Done():
			s.failQuery(w, ctx.Err())
			s.finishQuery(outcomeError, start, logKey, epoch, nil, 0, tr)
			return
		}
		if fl.err != nil {
			s.failQuery(w, fl.err)
			s.finishQuery(outcomeError, start, logKey, epoch, nil, 0, tr)
			return
		}
		s.metrics.Queries.Add(1)
		if fl.res != nil {
			s.observe(logKey, text, q, fl.res.Stats)
			s.writeRows(w, r, q, fl.res.EachProjected, cacheCoalesced, tr)
			s.finishQuery(outcomeCoalesced, start, logKey, epoch, &fl.res.Stats, fl.res.Stats.NumMatches, tr)
		} else {
			s.observe(logKey, text, q, gstored.Stats{})
			s.writeRows(w, r, q, SliceSeq(fl.rows), cacheCoalesced, tr)
			s.finishQuery(outcomeCoalesced, start, logKey, epoch, nil, len(fl.rows), tr)
		}
		return
	}

	// Re-check the cache after winning leadership: the previous leader
	// may have Put the entry between our lookup's miss and its flight
	// retiring, and re-running the engine for a cached result would
	// defeat the point of coalescing.
	if s.cache != nil {
		if hit, ok := s.cache.recheck(key); ok {
			fl.rows = hit.Rows
			s.flights.finish(key, fl)
			s.metrics.Queries.Add(1)
			s.observe(logKey, text, q, hit.Stats)
			s.writeRows(w, r, q, SliceSeq(hit.Rows), cacheHit, tr)
			s.finishQuery(outcomeHit, start, logKey, epoch, &hit.Stats, len(hit.Rows), tr)
			return
		}
	}

	// The leader's execution context detaches from its client's
	// disconnect once waiters have coalesced onto the flight: their
	// queries must not fail because the leader hung up. While the flight
	// is uncontended, a disconnect still cancels the engine cooperatively.
	execCtx, cancel := context.WithTimeout(context.WithoutCancel(r.Context()), s.cfg.QueryTimeout)
	defer cancel()
	if tr != nil {
		execCtx = trace.NewContext(execCtx, tr)
	}
	stop := context.AfterFunc(r.Context(), func() {
		s.flights.cancelIfUnwaited(fl, cancel)
	})
	defer stop()

	res, err := s.execute(execCtx, key, fl, q)
	if err != nil {
		s.failQuery(w, err)
		s.finishQuery(outcomeError, start, logKey, epoch, nil, 0, tr)
		return
	}
	s.metrics.Queries.Add(1)
	s.observe(logKey, text, q, res.Stats)
	state := cacheMiss
	if s.cache != nil && !s.cacheable(res) {
		state = cacheBypass
		s.metrics.CacheBypass.Add(1)
	}
	// Stream straight off the engine result: rows are projected one at a
	// time into a reused buffer, so the serve path adds no per-request
	// copy of the result set.
	s.writeRows(w, r, q, res.EachProjected, state, tr)
	s.finishQuery(outcomeMiss, start, logKey, epoch, &res.Stats, res.Len(), tr)
}

// finishQuery closes out one answered (or failed) query: the
// client-facing latency lands in the outcome-labeled histogram, and the
// slow-query log gets its structured line when the threshold is met.
func (s *Server) finishQuery(o queryOutcome, start time.Time, logKey string, epoch uint64, stats *gstored.Stats, rows int, tr *trace.Trace) {
	wall := time.Since(start)
	s.metrics.ObserveOutcome(o, wall)
	if s.slowLog != nil {
		s.slowLog.maybeLog(o, wall, logKey, epoch, stats, rows, tr)
	}
}

// observe feeds one answered query into the workload log and, when
// configured, the offline JSONL sink. Cached and coalesced servings pass
// the stats of the execution that produced the rows (zero stats when
// only rows survived), which keeps crossing weights proportional to the
// traffic actually served.
func (s *Server) observe(logKey, text string, q *gstored.QueryGraph, stats gstored.Stats) {
	if s.qlog != nil {
		s.qlog.Observe(logKey, text, q, stats)
	}
	if s.logSink != nil {
		if err := s.logSink.Append(querylog.Record{Query: text}); err != nil {
			s.metrics.Errors.Add(1)
		}
	}
}

// syncEpoch returns the current cluster epoch, flushing the result
// cache (once) when the epoch advanced since the last sync. Correctness
// does not depend on the flush — cache keys embed the epoch — but the
// flush releases the dead generation's memory immediately instead of
// waiting out the LRU.
func (s *Server) syncEpoch() uint64 {
	e := s.db.Epoch()
	for {
		last := s.epoch.Load()
		if e <= last {
			return e
		}
		if s.epoch.CompareAndSwap(last, e) {
			if s.cache != nil {
				s.cache.Flush()
				s.metrics.CacheFlushes.Add(1)
			}
			if s.qlog != nil {
				// Crossing statistics in the workload log were measured
				// against the fragments the old generation cut; age them so
				// the advisor is not steered by a layout that no longer
				// exists. last is 0 only before the first sync, when there is
				// nothing observed to age.
				if last > 0 && e > last {
					s.qlog.AdvanceEpoch(e - last)
				}
			}
			return e
		}
	}
}

// cacheable reports whether res fits under the cache row cap.
func (s *Server) cacheable(res *gstored.Result) bool {
	return s.cfg.CacheMaxRows < 0 || res.Len() <= s.cfg.CacheMaxRows
}

// execute runs the engine as the singleflight leader for key and
// publishes the outcome: the cache entry first (when the result is small
// enough to admit), then the flight itself, so a request arriving after
// the flight retires either hits the cache or legitimately becomes the
// next leader.
func (s *Server) execute(ctx context.Context, key string, fl *flight, q *gstored.QueryGraph) (res *gstored.Result, err error) {
	defer func() {
		if err == nil && s.cache != nil && s.cacheable(res) {
			s.cache.Put(key, &CachedResult{Rows: res.Project(), Stats: res.Stats})
		}
		fl.res, fl.err = res, err
		s.flights.finish(key, fl)
	}()
	var engineWall time.Duration
	err = s.sched.Run(ctx, func(ctx context.Context) error {
		// Clock the engine run alone — admission-queue wait would
		// inflate gstored_query_seconds_total exactly under saturation.
		start := time.Now()
		var qerr error
		res, qerr = s.db.QueryGraphContext(ctx, q)
		engineWall = time.Since(start)
		return qerr
	})
	if err != nil {
		return nil, err
	}
	s.metrics.EngineRuns.Add(1)
	s.metrics.Observe(res.Stats, engineWall)
	return res, nil
}

// failQuery maps scheduler and engine errors to HTTP statuses: overload
// to 503 (with Retry-After, so well-behaved clients back off), deadline
// expiry to 504, cancellation by the client to 499-style 503, anything
// else to 500.
func (s *Server) failQuery(w http.ResponseWriter, err error) {
	s.countFailure(err)
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		http.Error(w, "query load limit reached, retry later", http.StatusServiceUnavailable)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, fmt.Sprintf("query exceeded the %v time limit", s.cfg.QueryTimeout), http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		http.Error(w, "query canceled", http.StatusServiceUnavailable)
	case errors.Is(err, ErrClosed):
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
	default:
		http.Error(w, fmt.Sprintf("query failed: %v", err), http.StatusInternalServerError)
	}
}

// countFailure classifies a failed query into the failure counters,
// arm for arm with failQuery's status switch — keep the two aligned. A
// client's own disconnect (context.Canceled) is not a server fault: it
// counts in gstored_client_disconnects_total, never in
// gstored_query_errors_total, so operator dashboards alerting on the
// error rate don't page because clients hung up.
func (s *Server) countFailure(err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		s.metrics.Rejected.Add(1)
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.Timeouts.Add(1)
	case errors.Is(err, context.Canceled):
		s.metrics.ClientDisconnects.Add(1)
	case errors.Is(err, ErrClosed):
		// Shutdown abandonment is server-side, so it stays in Errors.
		s.metrics.Errors.Add(1)
	default:
		s.metrics.Errors.Add(1)
	}
}

// cacheState is the X-Cache response header value: how the result
// reached the client relative to the cache and singleflight layers.
type cacheState string

const (
	cacheHit       cacheState = "HIT"       // served from the result cache
	cacheMiss      cacheState = "MISS"      // executed (and cached when admitted)
	cacheBypass    cacheState = "BYPASS"    // executed; too large for the cache row cap
	cacheCoalesced cacheState = "COALESCED" // shared a concurrent identical execution
	cacheStream    cacheState = "STREAM"    // unordered first-row-early delivery; cache not consulted
)

// projectedVars returns q's projected variable names without the '?'.
func (s *Server) projectedVars(q *gstored.QueryGraph) []string {
	vars := make([]string, 0, len(q.Vars))
	for _, col := range s.db.Columns(q) {
		vars = append(vars, strings.TrimPrefix(col, "?"))
	}
	return vars
}

func (s *Server) writeRows(w http.ResponseWriter, r *http.Request, q *gstored.QueryGraph, rows RowSeq, state cacheState, tr *trace.Trace) {
	vars := s.projectedVars(q)
	contentType, tsv := negotiate(r)
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("X-Cache", string(state))
	done := tr.StartSpan("serialize", trace.Coordinator)
	var err error
	if tsv {
		err = WriteResultsTSV(w, s.db.Graph.Dict, vars, rows)
	} else {
		err = WriteResultsJSON(w, s.db.Graph.Dict, vars, rows)
	}
	done()
	if err != nil {
		// Headers are gone; all we can do is abort the stream. A write
		// that died because the client hung up mid-download is the
		// client's fault, not an error operators should page on.
		if r.Context().Err() != nil {
			s.metrics.ClientDisconnects.Add(1)
		} else {
			s.metrics.Errors.Add(1)
		}
	}
}

// deferredResponse buffers the response body until commit proves the
// execution can answer: the serializer's document head lands in the
// buffer, and the first result row (or a fully successful empty run)
// releases it — so an engine failure before the first row can still
// send a real error status, while a failure after commit can only
// truncate the stream. It implements http.Flusher as a pass-through
// once committed, so the serializers' periodic flushes keep working;
// commit itself flushes, which is what makes time-to-first-byte track
// first-row production.
type deferredResponse struct {
	w         http.ResponseWriter
	header    func() // sets success headers; runs at commit, so an error reply never carries them
	buf       bytes.Buffer
	committed bool
	aborted   bool
	err       error // first write error of the buffered prefix
}

// errStreamAborted fails writes after abort, so a serializer cannot
// close a document whose row stream died half way.
var errStreamAborted = errors.New("server: result stream aborted")

func (d *deferredResponse) Write(p []byte) (int, error) {
	if d.aborted {
		return 0, errStreamAborted
	}
	if !d.committed {
		return d.buf.Write(p)
	}
	return d.w.Write(p)
}

// abort drops all further writes. A committed stream is left visibly
// truncated — no closing bracket — so a partial answer can never parse
// as a complete one; an uncommitted stream simply never ships.
func (d *deferredResponse) abort() { d.aborted = true }

// commit releases the buffered prefix (headers + document head) and
// flushes it to the client; subsequent writes pass straight through.
func (d *deferredResponse) commit() {
	if d.committed {
		return
	}
	d.committed = true
	if d.header != nil {
		d.header()
	}
	if d.buf.Len() > 0 {
		_, d.err = d.w.Write(d.buf.Bytes())
		d.buf.Reset()
	}
	d.Flush()
}

// Flush implements http.Flusher; a no-op until commit.
func (d *deferredResponse) Flush() {
	if !d.committed {
		return
	}
	if f, ok := d.w.(http.Flusher); ok {
		f.Flush()
	}
}

// streamQuery answers q in unordered first-row-early delivery mode: the
// serializer runs inside the scheduled worker and pulls rows straight
// off the engine's streaming execution, so the first row reaches the
// client while distributed evaluation is still in progress, and a LIMIT
// cancels the remaining work the moment it is satisfied. The cache and
// singleflight layers are not consulted (X-Cache: STREAM) — nothing is
// materialized to store, and a truncated unordered answer is one
// execution's arbitrary row subset, not "the" result. The workload log
// still observes every streamed query.
//
// The response commits with the first row (deferredResponse): failures
// before that — admission rejection, queued-context expiry, an engine
// error with no rows yet — report their usual statuses; a failure after
// the first row can only truncate the stream mid-document.
func (s *Server) streamQuery(w http.ResponseWriter, r *http.Request, q *gstored.QueryGraph, text string, tr *trace.Trace, start time.Time) {
	logKey := s.logKey(q)
	epoch := s.syncEpoch()
	vars := s.projectedVars(q)
	contentType, tsv := negotiate(r)

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
	defer cancel()
	if tr != nil {
		ctx = trace.NewContext(ctx, tr)
	}

	// Serialization runs inside a bounded scheduler worker, and a write
	// blocked on a stalled client is not context-aware — without a write
	// deadline, `Workers` slow-loris readers would pin the whole pool.
	// The response write deadline mirrors the per-query deadline, so the
	// timeout really does bound the stream end to end; it is cleared on
	// the way out so a keep-alive connection's next response is unscoped.
	rc := http.NewResponseController(w)
	if dl, ok := ctx.Deadline(); ok {
		if rc.SetWriteDeadline(dl) == nil {
			// Best-effort: if clearing fails the connection is already
			// unusable and the server will close it.
			defer func() { _ = rc.SetWriteDeadline(time.Time{}) }()
		}
	}

	var res *gstored.Result
	var engineErr, writeErr error
	var engineWall time.Duration
	dw := &deferredResponse{w: w, header: func() {
		w.Header().Set("Content-Type", contentType)
		w.Header().Set("X-Cache", string(cacheStream))
	}}
	err := s.sched.Run(ctx, func(ctx context.Context) error {
		// engineWall clocks the whole streaming pipeline: emit blocks on
		// serialization, so unlike the ordered path this wall time
		// includes response-write backpressure from slow clients — in a
		// synchronous engine→client pipeline the two are inseparable.
		start := time.Now()
		first := true
		rows := RowSeq(func(yield func(gstored.Row) bool) {
			res, engineErr = s.db.QueryGraphStreamContext(ctx, q, func(row gstored.Row) bool {
				dw.commit() // release status + document head before the row
				ok := yield(row)
				if first {
					// Flush again now that the first row's bytes are
					// serialized: the client sees row one itself, not
					// just the document head, at first-row production.
					first = false
					dw.Flush()
				}
				return ok
			})
			if engineErr != nil {
				// The engine died mid-stream: drop everything still
				// unwritten, the document terminator included, so a
				// committed partial answer stays visibly truncated
				// instead of parsing as a complete result.
				dw.abort()
			}
		})
		// In streaming delivery serialization and engine execution are one
		// synchronous pipeline, so this span covers both; the engine's own
		// stage spans (recorded via the context) sit inside it.
		done := tr.StartSpan("serialize", trace.Coordinator)
		if tsv {
			writeErr = WriteResultsTSV(dw, s.db.Graph.Dict, vars, rows)
		} else {
			writeErr = WriteResultsJSON(dw, s.db.Graph.Dict, vars, rows)
		}
		done()
		engineWall = time.Since(start)
		if engineErr != nil {
			return engineErr
		}
		if writeErr == nil {
			writeErr = dw.err
		}
		if writeErr != nil {
			// The engine succeeded but the response didn't: a vanished
			// client surfaces as the context's cancellation, a genuine
			// serialization fault as itself.
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			return writeErr
		}
		// A successful empty result commits here — a complete, honest
		// zero-binding document.
		dw.commit()
		return dw.err
	})
	if err != nil {
		if !dw.committed {
			// Nothing reached the client; a full status reply is possible.
			s.failQuery(w, err)
			s.finishQuery(outcomeError, start, logKey, epoch, nil, 0, tr)
			return
		}
		// The stream is already committed; count the failure and abort.
		// When the engine itself completed (e.g. the client vanished and
		// the sink stopped the run), still record the execution it
		// performed — the query was answered engine-side, so it counts
		// like the ordered path's pre-write accounting does, and the
		// workload log must see the work even though the answer never
		// fully shipped.
		s.countFailure(err)
		if res != nil {
			s.metrics.Queries.Add(1)
			s.recordStreamRun(logKey, text, q, res, engineWall)
			s.finishQuery(outcomeStream, start, logKey, epoch, &res.Stats, res.Stats.NumMatches, tr)
		} else {
			s.finishQuery(outcomeError, start, logKey, epoch, nil, 0, tr)
		}
		return
	}
	s.metrics.Queries.Add(1)
	s.recordStreamRun(logKey, text, q, res, engineWall)
	s.finishQuery(outcomeStream, start, logKey, epoch, &res.Stats, res.Stats.NumMatches, tr)
}

// recordStreamRun folds one completed streaming engine execution into
// the engine counters and the workload log. An execution counts as an
// early termination only when it was stopped by a delivered LIMIT —
// Stats.EarlyStop is also set when the consumer (a vanished client)
// declined rows, which is a disconnect, not a satisfied query.
func (s *Server) recordStreamRun(logKey, text string, q *gstored.QueryGraph, res *gstored.Result, engineWall time.Duration) {
	s.metrics.EngineRuns.Add(1)
	if res.Stats.EarlyStop && q.HasLimit && res.Stats.NumMatches == q.Limit {
		s.metrics.EarlyStops.Add(1)
	}
	s.metrics.Observe(res.Stats, engineWall)
	s.observe(logKey, text, q, res.Stats)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var logLen int
	var logTotal uint64
	if s.qlog != nil {
		logLen, logTotal = s.qlog.Len(), s.qlog.Total()
	}
	_, sites, epoch := s.db.ClusterInfo()
	status, _ := s.probeSites(r.Context())
	up := make(map[int]bool, len(status))
	for _, st := range status {
		up[st.Site] = st.Up
	}
	s.metrics.Write(w, s.CacheStats(), s.sched.InFlight(), time.Since(s.started), Gauges{
		QueryLogEntries: logLen,
		QueryLogQueries: logTotal,
		Epoch:           epoch,
		Sites:           sites,
		SiteUp:          up,
	})
}

// probeSites runs a health round over the live generation's sites (a
// real RPC per site in worker mode — the probe doubles as the
// heartbeat) and returns the statuses with each site's last successful
// heartbeat time.
func (s *Server) probeSites(ctx context.Context) ([]gstored.SiteStatus, map[int]time.Time) {
	status := s.db.SiteHealth(ctx)
	now := time.Now()
	s.heartMu.Lock()
	defer s.heartMu.Unlock()
	beats := make(map[int]time.Time, len(status))
	for _, st := range status {
		if st.Up {
			s.heartbeats[st.Site] = now
		}
		beats[st.Site] = s.heartbeats[st.Site]
	}
	return status, beats
}

// healthSite is one row of the /healthz site table.
type healthSite struct {
	Site      int    `json:"site"`
	Addr      string `json:"addr"`
	Epoch     uint64 `json:"epoch"`
	Fragments int    `json:"fragments"`
	Up        bool   `json:"up"`
	// LastHeartbeat is the RFC 3339 time the site last answered a probe;
	// empty when it never has.
	LastHeartbeat string `json:"last_heartbeat,omitempty"`
	Error         string `json:"error,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	strategy, sites, epoch := s.db.ClusterInfo()
	status, beats := s.probeSites(r.Context())
	table := make([]healthSite, len(status))
	healthy := "ok"
	for i, st := range status {
		table[i] = healthSite{
			Site: st.Site, Addr: st.Addr, Epoch: st.Epoch,
			Fragments: st.Fragments, Up: st.Up, Error: st.Error,
		}
		if beat, ok := beats[st.Site]; ok && !beat.IsZero() {
			table[i].LastHeartbeat = beat.UTC().Format(time.RFC3339Nano)
		}
		if !st.Up {
			healthy = "degraded"
		}
	}
	err := json.NewEncoder(w).Encode(map[string]any{
		"status": healthy,
		// NumTriples reads the live generation's index: unlike Graph.Len
		// it is safe against (and reflects) concurrent updates.
		"triples":    s.db.NumTriples(),
		"sites":      sites,
		"strategy":   strategy,
		"epoch":      epoch,
		"mode":       s.db.Mode().String(),
		"writable":   s.cfg.Writable,
		"site_table": table,
	})
	if err != nil && r.Context().Err() != nil {
		s.metrics.ClientDisconnects.Add(1)
	}
}
