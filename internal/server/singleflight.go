package server

import (
	"sync"
	"sync/atomic"

	"gstored"
)

// flight is one in-progress engine execution shared between its leader
// (the request actually running the query) and any waiters (concurrent
// identical queries that arrived while it ran). The leader sets exactly
// one of res (a live engine result), rows (a cache entry it discovered
// after winning leadership), or err, then finishes the flight; done is
// closed exactly once and the payload is immutable afterwards, so
// waiters read it without locking. waiters counts coalesced joins — the
// leader consults it to decide whether its own client's disconnect may
// still cancel the execution.
type flight struct {
	done    chan struct{}
	res     *gstored.Result
	rows    []gstored.Row
	err     error
	waiters atomic.Int64
}

// flightGroup coalesces concurrent executions of the same canonical
// query (singleflight): the first join for a key becomes the leader and
// must call finish exactly once; joins arriving before that share the
// leader's outcome instead of running the engine again. Keys are the
// same canonical cache keys the result cache uses, so N concurrent
// identical cold queries cost one engine execution.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// join returns the flight for key and whether the caller is its leader.
// A non-leader join increments the flight's waiter count before
// returning, so the leader observes the waiter as soon as it exists.
func (g *flightGroup) join(key string) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if fl, ok := g.m[key]; ok {
		fl.waiters.Add(1)
		return fl, false
	}
	fl := &flight{done: make(chan struct{})}
	g.m[key] = fl
	return fl, true
}

// finish retires the flight and wakes its waiters. The leader must set
// the flight's payload (res/rows/err) and make the result visible to
// late arrivals (the cache Put) before calling finish: once the key is
// removed, the next join starts a fresh engine run.
func (g *flightGroup) finish(key string, fl *flight) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(fl.done)
}

// pending reports whether an execution for key is currently in flight.
// Read-only: the explain path uses it to report that a real request
// would have coalesced, without joining (and so without delaying or
// being delayed by) the flight.
func (g *flightGroup) pending(key string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, ok := g.m[key]
	return ok
}

// cancelIfUnwaited invokes cancel only when fl has no waiters,
// serialized against join (which increments the count under the same
// lock): a concurrent joiner either becomes visible here — and the run
// survives the leader's disconnect — or it joined after the cancel
// decision, which is indistinguishable from joining after the leader
// hung up with no one else interested.
func (g *flightGroup) cancelIfUnwaited(fl *flight, cancel func()) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if fl.waiters.Load() == 0 {
		cancel()
	}
}
