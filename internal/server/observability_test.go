package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"gstored/internal/trace"
)

// pathQuery is a distributed non-star query on the testDB graph: a
// three-hop knows-path (no vertex common to all edges, so the star fast
// path cannot apply) whose matches cross fragments under hash
// partitioning, exercising the full partial-evaluation pipeline. On the
// knows-triangle it walks each cycle once: 3 rows.
const pathQuery = `SELECT ?x ?w WHERE { ?x <http://ex/knows> ?y . ?y <http://ex/knows> ?z . ?z <http://ex/knows> ?w }`

// --- /healthz ---

type healthzDoc struct {
	Status   string `json:"status"`
	Triples  int    `json:"triples"`
	Sites    int    `json:"sites"`
	Strategy string `json:"strategy"`
	Epoch    uint64 `json:"epoch"`
	Mode     string `json:"mode"`
	Writable bool   `json:"writable"`
}

func getHealthz(t *testing.T, base string) healthzDoc {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("healthz Content-Type = %q", ct)
	}
	var doc healthzDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestHealthzFields pins the /healthz contract: the probe reports the
// dataset size, cluster shape, and generation, and the epoch field
// advances when an update swaps in a new generation.
func TestHealthzFields(t *testing.T) {
	db := testDB(t)
	_, ts := newTestServer(t, db, Config{Writable: true})

	doc := getHealthz(t, ts.URL)
	if doc.Status != "ok" {
		t.Errorf("status = %q", doc.Status)
	}
	if doc.Triples != 4 {
		t.Errorf("triples = %d, want 4", doc.Triples)
	}
	if doc.Sites != 3 {
		t.Errorf("sites = %d, want 3", doc.Sites)
	}
	if doc.Strategy == "" || doc.Mode == "" {
		t.Errorf("strategy/mode missing: %+v", doc)
	}
	if !doc.Writable {
		t.Error("writable = false on a writable server")
	}
	e0 := doc.Epoch

	resp, _ := postUpdate(t, ts.URL, `INSERT DATA { <http://ex/dave> <http://ex/knows> <http://ex/alice> }`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status = %d", resp.StatusCode)
	}
	doc = getHealthz(t, ts.URL)
	if doc.Epoch <= e0 {
		t.Errorf("epoch did not advance after update: %d -> %d", e0, doc.Epoch)
	}
	if doc.Triples != 5 {
		t.Errorf("triples after insert = %d, want 5", doc.Triples)
	}
}

// --- /metrics exposition lint ---

// TestMetricsExpositionLint checks /metrics the way promtool's lint
// does: every sample belongs to a family declared by exactly one
// HELP+TYPE pair, no family is declared twice, histogram families carry
// a le="+Inf" bucket per label whose value equals the _count series,
// bucket counts are cumulative, and _sum/_count exist for each label.
func TestMetricsExpositionLint(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), Config{})
	// Populate: a miss, a hit, and an explain run so histograms and
	// engine counters hold observations.
	getJSON(t, ts.URL, pathQuery)
	getJSON(t, ts.URL, pathQuery)
	resp, err := http.Get(ts.URL + "/sparql?explain=1&query=" + url.QueryEscape(pathQuery))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)

	type family struct {
		help, typ bool
	}
	families := map[string]*family{}
	// samples[name][labels] = value, name with _bucket/_sum/_count suffix intact.
	samples := map[string]map[string]float64{}
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, _ := strings.Cut(rest, " ")
			if f := families[name]; f != nil && f.help {
				t.Errorf("family %s declared HELP twice", name)
			}
			if families[name] == nil {
				families[name] = &family{}
			}
			families[name].help = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, _, _ := strings.Cut(rest, " ")
			if f := families[name]; f != nil && f.typ {
				t.Errorf("family %s declared TYPE twice", name)
			}
			if families[name] == nil {
				families[name] = &family{}
			}
			families[name].typ = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("unrecognized comment line: %q", line)
			continue
		}
		// Sample line: name{labels} value  or  name value
		nameAndLabels, valStr, ok := strings.Cut(line, " ")
		if !ok {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Errorf("unparseable value in %q: %v", line, err)
			continue
		}
		name, labels := nameAndLabels, ""
		if i := strings.IndexByte(nameAndLabels, '{'); i >= 0 {
			name, labels = nameAndLabels[:i], nameAndLabels[i:]
			if !strings.HasSuffix(labels, "}") {
				t.Errorf("malformed labels in %q", line)
			}
		}
		famName := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suffix); ok && families[base] != nil {
				famName = base
				break
			}
		}
		f := families[famName]
		if f == nil || !f.help || !f.typ {
			t.Errorf("sample %s has no preceding HELP+TYPE for family %s", name, famName)
		}
		if samples[name] == nil {
			samples[name] = map[string]float64{}
		}
		if _, dup := samples[name][labels]; dup {
			t.Errorf("duplicate sample %s%s", name, labels)
		}
		samples[name][labels] = val
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// Histogram family checks: cumulative buckets ending in a +Inf equal
	// to _count, and a _sum per label.
	for _, fam := range []struct {
		name  string
		label string
	}{
		{"gstored_query_duration_seconds", "outcome"},
		{"gstored_stage_duration_seconds", "stage"},
	} {
		buckets := samples[fam.name+"_bucket"]
		if len(buckets) == 0 {
			t.Fatalf("no %s_bucket samples", fam.name)
		}
		counts := samples[fam.name+"_count"]
		sums := samples[fam.name+"_sum"]
		perLabel := map[string][]struct {
			le  float64
			val float64
		}{}
		for labels, val := range buckets {
			lv := labelValue(t, labels, fam.label)
			le := labelValue(t, labels, "le")
			f := math_Inf
			if le != "+Inf" {
				var err error
				f, err = strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("bad le %q", le)
				}
			}
			perLabel[lv] = append(perLabel[lv], struct {
				le  float64
				val float64
			}{f, val})
		}
		for lv, bs := range perLabel {
			var infVal float64
			infSeen := false
			maxBelow := -1.0
			for _, b := range bs {
				if b.le == math_Inf {
					infSeen, infVal = true, b.val
				} else if b.val > maxBelow {
					maxBelow = b.val
				}
			}
			if !infSeen {
				t.Errorf("%s{%s=%q} has no +Inf bucket", fam.name, fam.label, lv)
				continue
			}
			if maxBelow > infVal {
				t.Errorf("%s{%s=%q} buckets not cumulative: finite max %v > +Inf %v", fam.name, fam.label, lv, maxBelow, infVal)
			}
			cKey := fmt.Sprintf("{%s=%q}", fam.label, lv)
			cnt, ok := counts[cKey]
			if !ok {
				t.Errorf("%s_count%s missing", fam.name, cKey)
			} else if cnt != infVal {
				t.Errorf("%s%s: _count %v != +Inf bucket %v", fam.name, cKey, cnt, infVal)
			}
			if _, ok := sums[cKey]; !ok {
				t.Errorf("%s_sum%s missing", fam.name, cKey)
			}
		}
	}

	// The e2e acceptance bit: after real traffic, the latency histogram
	// holds the requests we just made (1 miss + 1 hit + 1 explain).
	for _, want := range []struct {
		outcome string
		min     float64
	}{{"miss", 1}, {"hit", 1}, {"explain", 1}} {
		key := fmt.Sprintf("{outcome=%q}", want.outcome)
		if got := samples["gstored_query_duration_seconds_count"][key]; got < want.min {
			t.Errorf("gstored_query_duration_seconds_count%s = %v, want >= %v", key, got, want.min)
		}
	}
	// Satellite (a): the comm meters are exposed and non-zero after a
	// distributed query.
	if v := samples["gstored_messages_total"][""]; v <= 0 {
		t.Errorf("gstored_messages_total = %v, want > 0", v)
	}
	if v := samples["gstored_shipment_bytes_total"][""]; v <= 0 {
		t.Errorf("gstored_shipment_bytes_total = %v, want > 0", v)
	}
	if _, ok := samples["gstored_estimated_comm_seconds_total"]; !ok {
		t.Error("gstored_estimated_comm_seconds_total missing")
	}
	// Stage histograms saw the engine runs (miss + explain = 2).
	if got := samples["gstored_stage_duration_seconds_count"][`{stage="partial"}`]; got < 2 {
		t.Errorf(`stage_duration count{stage="partial"} = %v, want >= 2`, got)
	}
}

// math_Inf marks the +Inf bucket in the lint's per-label grouping.
var math_Inf = math.Inf(1)

// labelValue extracts one label's value from a rendered {a="b",c="d"}
// label set.
func labelValue(t *testing.T, labels, name string) string {
	t.Helper()
	s := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	for _, pair := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			continue
		}
		if k == name {
			unq, err := strconv.Unquote(v)
			if err != nil {
				t.Fatalf("bad label value %q: %v", v, err)
			}
			return unq
		}
	}
	t.Fatalf("label %s not found in %s", name, labels)
	return ""
}

// --- EXPLAIN e2e ---

// TestExplainEndToEnd is the acceptance-criteria scenario: one
// /sparql?explain=1 request for a distributed (non-star) query returns
// per-stage AND per-fragment timings plus the span timeline, from a
// single execution, and leaves the cache and workload log untouched.
func TestExplainEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t, testDB(t), Config{})
	resp, err := http.Get(ts.URL + "/sparql?explain=1&query=" + url.QueryEscape(pathQuery))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("explain status = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("explain Content-Type = %q", ct)
	}
	var rep ExplainReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}

	if rep.Plan != "distributed" {
		t.Errorf("plan = %q, want distributed", rep.Plan)
	}
	if rep.Mode == "" || rep.CanonicalKey == "" || rep.Pattern == "" {
		t.Errorf("missing identity fields: %+v", rep)
	}
	if rep.Sites != 3 || rep.Epoch == 0 {
		t.Errorf("cluster fields: sites=%d epoch=%d", rep.Sites, rep.Epoch)
	}
	if rep.Rows != 3 { // alice->bob->carol, bob->carol->alice, carol->alice->bob
		t.Errorf("rows = %d, want 3", rep.Rows)
	}
	if rep.Cache.Disposition != "miss" || !rep.Cache.Enabled {
		t.Errorf("cache disposition = %+v, want enabled miss", rep.Cache)
	}

	// Per-stage timings: all four pipeline stages present.
	stages := map[string]bool{}
	for _, st := range rep.Stages {
		stages[st.Stage] = true
	}
	for _, want := range []string{"candidates", "partial", "lec", "assembly"} {
		if !stages[want] {
			t.Errorf("stage %q missing from %+v", want, rep.Stages)
		}
	}

	// Per-fragment rows: one per site, with wall time recorded.
	if len(rep.Fragments) != 3 {
		t.Fatalf("fragments = %+v, want 3 rows", rep.Fragments)
	}
	var totalLocal int
	for i, f := range rep.Fragments {
		if f.Site != i {
			t.Errorf("fragment[%d].site = %d", i, f.Site)
		}
		if f.WallMillis < 0 {
			t.Errorf("fragment %d wall = %v", i, f.WallMillis)
		}
		totalLocal += f.LocalMatches + f.PartialMatches
	}
	if totalLocal == 0 {
		t.Error("no fragment produced any local or partial match")
	}

	// The span timeline: a parse span, per-site partial spans, and
	// coordinator assembly — all from this one execution.
	spansByStage := map[string][]int{}
	for _, sp := range rep.Trace {
		spansByStage[sp.Stage] = append(spansByStage[sp.Stage], sp.Fragment)
		if sp.DurationMicros < 0 {
			t.Errorf("span %+v has negative duration", sp)
		}
	}
	if len(spansByStage["parse"]) != 1 {
		t.Errorf("parse spans = %v, want 1", spansByStage["parse"])
	}
	if got := len(spansByStage["partial"]); got != 3 {
		t.Errorf("partial spans = %d, want 3 (one per site)", got)
	}
	sites := map[int]bool{}
	for _, frag := range spansByStage["partial"] {
		sites[frag] = true
	}
	if len(sites) != 3 {
		t.Errorf("partial spans cover sites %v, want 3 distinct", spansByStage["partial"])
	}
	for _, coord := range []string{"lec", "assembly"} {
		frs := spansByStage[coord]
		if len(frs) != 1 || frs[0] != trace.Coordinator {
			t.Errorf("%s spans = %v, want one coordinator span", coord, frs)
		}
	}

	// Diagnostics must be side-effect free: the explain run populated
	// neither the cache (next request is a MISS) nor the workload log.
	if n := srv.qlog.Len(); n != 0 {
		t.Errorf("explain fed the workload log (%d entries)", n)
	}
	normal, _ := getJSON(t, ts.URL, pathQuery)
	if xc := normal.Header.Get("X-Cache"); xc != "MISS" {
		t.Errorf("request after explain got X-Cache %q, want MISS (explain must not populate the cache)", xc)
	}
}

// TestExplainViaPostForm covers the explain=1 form-field spelling.
func TestExplainViaPostForm(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), Config{})
	resp, err := http.PostForm(ts.URL+"/sparql", url.Values{
		"query":   {pathQuery},
		"explain": {"1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep ExplainReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Plan != "distributed" || len(rep.Fragments) != 3 {
		t.Errorf("form explain: plan=%q fragments=%d", rep.Plan, len(rep.Fragments))
	}
}

// TestExplainUnorderedDelivery pins that explain mirrors the serving
// mode: under Config.Unordered the report says so and still carries the
// trace of a streaming-shaped execution.
func TestExplainUnorderedDelivery(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), Config{Unordered: true})
	resp, err := http.Get(ts.URL + "/sparql?explain=1&query=" + url.QueryEscape(pathQuery))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep ExplainReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Delivery != "unordered" {
		t.Errorf("delivery = %q", rep.Delivery)
	}
	if len(rep.Trace) == 0 {
		t.Error("unordered explain carried no trace")
	}
}

// --- slow-query log ---

// TestSlowLogThresholdZero is the CI acceptance knob: with a zero
// threshold every answered query emits one structured JSON line,
// including cache hits, and executed queries carry stage, fragment, and
// span detail.
func TestSlowLogThresholdZero(t *testing.T) {
	sink := &syncBuffer{}
	_, ts := newTestServer(t, testDB(t), Config{SlowQueryLog: sink})

	getJSON(t, ts.URL, pathQuery) // miss: runs the engine
	getJSON(t, ts.URL, pathQuery) // hit: served from cache

	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("slow log lines = %d (%q), want 2", len(lines), sink.String())
	}
	var recs []SlowQueryRecord
	for i, ln := range lines {
		var rec SlowQueryRecord
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("line %d is not JSON (%q): %v", i, ln, err)
		}
		recs = append(recs, rec)
	}
	if recs[0].Outcome != "miss" || recs[1].Outcome != "hit" {
		t.Errorf("outcomes = %q, %q; want miss, hit", recs[0].Outcome, recs[1].Outcome)
	}
	for i, rec := range recs {
		if rec.Key == "" || rec.Epoch == 0 || rec.Time == "" {
			t.Errorf("record %d missing identity fields: %+v", i, rec)
		}
		if rec.WallMillis < 0 {
			t.Errorf("record %d wall = %v", i, rec.WallMillis)
		}
	}
	// Both carry the engine detail: the miss from its own execution, the
	// hit from the cached execution's stats.
	for i, rec := range recs {
		if len(rec.Stages) == 0 || rec.ShipmentBytes == 0 {
			t.Errorf("record %d lacks engine detail: %+v", i, rec)
		}
	}
	// The miss executed with a trace attached, so its line has spans.
	if len(recs[0].Trace) == 0 {
		t.Error("miss record carries no trace spans")
	}
	if len(recs[0].Fragments) != 3 {
		t.Errorf("miss record fragments = %d, want 3", len(recs[0].Fragments))
	}
}

// TestSlowLogThresholdFilters pins that a high threshold suppresses
// fast queries.
func TestSlowLogThresholdFilters(t *testing.T) {
	sink := &syncBuffer{}
	_, ts := newTestServer(t, testDB(t), Config{
		SlowQueryLog:       sink,
		SlowQueryThreshold: time.Hour,
	})
	getJSON(t, ts.URL, pathQuery)
	if got := sink.String(); got != "" {
		t.Errorf("sub-threshold query was logged: %q", got)
	}
}

// --- rotating writer ---

func TestRotatingWriter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slow.jsonl")
	w, err := NewRotatingWriter(path, 1<<10) // minimum size: rotate fast
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	line := []byte(strings.Repeat("x", 99) + "\n") // 100 bytes
	for i := 0; i < 25; i++ {                      // 2500 bytes: must rotate at least once
		if _, err := w.Write(line); err != nil {
			t.Fatal(err)
		}
	}

	cur, err := os.Stat(path)
	if err != nil {
		t.Fatalf("current log missing: %v", err)
	}
	old, err := os.Stat(path + ".1")
	if err != nil {
		t.Fatalf("rotated log missing: %v", err)
	}
	if cur.Size() > 1<<10 || old.Size() > 1<<10 {
		t.Errorf("sizes after rotation: %d, %d; want both <= %d", cur.Size(), old.Size(), 1<<10)
	}
	// Every byte written is still on disk across the two files... except
	// nothing: rotation replaces .1, so with two files only the last two
	// windows survive — but with 2500 bytes and 1 KiB windows we wrote 3
	// windows; assert the retained files hold whole lines.
	for _, p := range []string{path, path + ".1"} {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(b)%100 != 0 {
			t.Errorf("%s holds a torn line (%d bytes)", p, len(b))
		}
	}

	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(line); err == nil {
		t.Error("write after Close succeeded")
	}
}
