package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"testing"
)

// postUpdate sends text as an application/sparql-update body.
func postUpdate(t *testing.T, base, text string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(base+"/sparql", "application/sparql-update", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	doc := map[string]any{}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("bad update response (%s): %v", body, err)
		}
	}
	return resp, doc
}

func TestUpdateRequiresWritable(t *testing.T) {
	db := testDB(t)
	_, ts := newTestServer(t, db, Config{})
	e0 := db.Epoch()
	resp, _ := postUpdate(t, ts.URL, `INSERT DATA { <http://ex/x> <http://ex/knows> <http://ex/alice> }`)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("read-only update status = %d, want 403", resp.StatusCode)
	}
	if db.Epoch() != e0 || db.NumTriples() != 4 {
		t.Error("read-only server mutated the database")
	}
	// The form variant is refused the same way.
	fresp, err := http.PostForm(ts.URL+"/sparql", url.Values{"update": {`INSERT DATA { <http://ex/x> <http://ex/knows> <http://ex/alice> }`}})
	if err != nil {
		t.Fatal(err)
	}
	fresp.Body.Close()
	if fresp.StatusCode != http.StatusForbidden {
		t.Errorf("form update status = %d, want 403", fresp.StatusCode)
	}
}

// TestUpdateInvalidatesCache is the acceptance-criteria scenario: a
// cached query re-executes after INSERT DATA (epoch advanced, X-Cache
// MISS) and reflects the new triple; after DELETE DATA the triple is
// gone again.
func TestUpdateInvalidatesCache(t *testing.T) {
	db := testDB(t)
	srv, ts := newTestServer(t, db, Config{Writable: true, CacheEntries: 64})

	if resp, _ := getJSON(t, ts.URL, knowsChain); resp.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("first run X-Cache = %q", resp.Header.Get("X-Cache"))
	}
	resp, doc := getJSON(t, ts.URL, knowsChain)
	if resp.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("second run X-Cache = %q, want HIT", resp.Header.Get("X-Cache"))
	}
	if len(doc.Results.Bindings) != 1 {
		t.Fatalf("pre-update bindings = %v", doc.Results.Bindings)
	}

	// dave->carol adds a second (x, n) result row for the chain query.
	uresp, udoc := postUpdate(t, ts.URL, `INSERT DATA { <http://ex/dave> <http://ex/knows> <http://ex/carol> }`)
	if uresp.StatusCode != http.StatusOK {
		t.Fatalf("update status = %d", uresp.StatusCode)
	}
	if udoc["inserted"] != float64(1) || udoc["deleted"] != float64(0) {
		t.Errorf("update response = %v", udoc)
	}

	resp, doc = getJSON(t, ts.URL, knowsChain)
	if resp.Header.Get("X-Cache") != "MISS" {
		t.Errorf("post-insert X-Cache = %q, want MISS (epoch advanced)", resp.Header.Get("X-Cache"))
	}
	if len(doc.Results.Bindings) != 2 {
		t.Fatalf("post-insert bindings = %v, want bob and dave", doc.Results.Bindings)
	}
	if flushes := srv.metrics.CacheFlushes.Load(); flushes == 0 {
		t.Error("update did not flush the dead generation's cache entries")
	}

	if resp, _ := getJSON(t, ts.URL, knowsChain); resp.Header.Get("X-Cache") != "HIT" {
		t.Errorf("repeat post-insert X-Cache = %q, want HIT under the new epoch", resp.Header.Get("X-Cache"))
	}

	if uresp, _ := postUpdate(t, ts.URL, `DELETE DATA { <http://ex/dave> <http://ex/knows> <http://ex/carol> }`); uresp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", uresp.StatusCode)
	}
	resp, doc = getJSON(t, ts.URL, knowsChain)
	if resp.Header.Get("X-Cache") != "MISS" {
		t.Errorf("post-delete X-Cache = %q, want MISS", resp.Header.Get("X-Cache"))
	}
	if len(doc.Results.Bindings) != 1 {
		t.Fatalf("post-delete bindings = %v, want bob only", doc.Results.Bindings)
	}
}

// TestUpdateNoopKeepsCacheWarm: an update that changes nothing must not
// advance the epoch, so cached entries keep serving.
func TestUpdateNoopKeepsCacheWarm(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), Config{Writable: true, CacheEntries: 64})
	getJSON(t, ts.URL, knowsChain) // prime
	if resp, _ := postUpdate(t, ts.URL, `INSERT DATA { <http://ex/alice> <http://ex/knows> <http://ex/bob> }`); resp.StatusCode != http.StatusOK {
		t.Fatalf("no-op update status = %d", resp.StatusCode)
	}
	if resp, _ := getJSON(t, ts.URL, knowsChain); resp.Header.Get("X-Cache") != "HIT" {
		t.Errorf("X-Cache after no-op update = %q, want HIT (epoch unchanged)", resp.Header.Get("X-Cache"))
	}
}

func TestUpdateViaForm(t *testing.T) {
	db := testDB(t)
	_, ts := newTestServer(t, db, Config{Writable: true})
	resp, err := http.PostForm(ts.URL+"/sparql", url.Values{"update": {`INSERT DATA { <http://ex/erin> <http://ex/knows> <http://ex/alice> }`}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("form update status = %d", resp.StatusCode)
	}
	if db.NumTriples() != 5 {
		t.Errorf("NumTriples = %d, want 5", db.NumTriples())
	}
	// query= and update= together are ambiguous.
	resp, err = http.PostForm(ts.URL+"/sparql", url.Values{
		"query":  {knowsChain},
		"update": {`INSERT DATA { <http://ex/a> <http://ex/b> <http://ex/c> }`},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("query+update status = %d, want 400", resp.StatusCode)
	}
}

func TestUpdateBadRequests(t *testing.T) {
	db := testDB(t)
	srv, ts := newTestServer(t, db, Config{Writable: true})
	e0 := db.Epoch()
	for _, text := range []string{
		``,
		`SELECT ?x WHERE { ?x <http://ex/knows> ?y }`,
		`INSERT DATA { ?x <http://ex/knows> <http://ex/alice> }`,
		`DELETE WHERE { <http://ex/a> <http://ex/b> <http://ex/c> }`,
	} {
		resp, _ := postUpdate(t, ts.URL, text)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("update %q status = %d, want 400", text, resp.StatusCode)
		}
	}
	if db.Epoch() != e0 {
		t.Error("bad updates advanced the epoch")
	}
	if got := srv.metrics.Updates.Load(); got != 0 {
		t.Errorf("gstored_updates_total = %d after only failures", got)
	}
}

// TestUpdateFormBodyCapped: the form encoding gets the same 1 MiB body
// cap as a direct application/sparql-update body — switching encodings
// must not buy a 10x larger mutation.
func TestUpdateFormBodyCapped(t *testing.T) {
	db := testDB(t)
	_, ts := newTestServer(t, db, Config{Writable: true})
	big := `INSERT DATA { <http://ex/a> <http://ex/p> "` + strings.Repeat("x", 2<<20) + `" }`
	resp, err := http.PostForm(ts.URL+"/sparql", url.Values{"update": {big}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized form update status = %d, want 400", resp.StatusCode)
	}
	if db.NumTriples() != 4 {
		t.Error("oversized form update mutated the database")
	}
}

func TestUpdateMetrics(t *testing.T) {
	srv, ts := newTestServer(t, testDB(t), Config{Writable: true})
	postUpdate(t, ts.URL, `INSERT DATA { <http://ex/u1> <http://ex/p> <http://ex/u2> . <http://ex/u2> <http://ex/p> <http://ex/u3> }`)
	postUpdate(t, ts.URL, `DELETE DATA { <http://ex/u1> <http://ex/p> <http://ex/u2> }`)
	if got := srv.metrics.Updates.Load(); got != 2 {
		t.Errorf("updates = %d, want 2", got)
	}
	if got := srv.metrics.TriplesInserted.Load(); got != 2 {
		t.Errorf("inserted = %d, want 2", got)
	}
	if got := srv.metrics.TriplesDeleted.Load(); got != 1 {
		t.Errorf("deleted = %d, want 1", got)
	}
	m := scrapeMetrics(t, ts.URL)
	for metric, want := range map[string]string{
		"gstored_updates_total":          "2",
		"gstored_triples_inserted_total": "2",
		"gstored_triples_deleted_total":  "1",
		"gstored_partition_epoch":        "3", // open=1, two data-changing updates
	} {
		if got := metricValue(t, m, metric); got != want {
			t.Errorf("%s = %s, want %s", metric, got, want)
		}
	}
}

// TestUpdateAdmissionSheds503: update requests beyond the MaxInFlight
// write-queue bound are shed with 503 + Retry-After instead of piling
// onto the swap mutex (white-box: the slots are filled directly, since
// holding the mutex long enough to queue real writers isn't
// deterministic in a test).
func TestUpdateAdmissionSheds503(t *testing.T) {
	db := testDB(t)
	srv, ts := newTestServer(t, db, Config{Writable: true, MaxInFlight: 2})
	for i := 0; i < cap(srv.updateSlots); i++ {
		srv.updateSlots <- struct{}{}
	}
	resp, _ := postUpdate(t, ts.URL, `INSERT DATA { <http://ex/x> <http://ex/p> <http://ex/y> }`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated update status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed update carries no Retry-After")
	}
	if srv.metrics.Rejected.Load() != 1 {
		t.Errorf("rejected = %d, want 1", srv.metrics.Rejected.Load())
	}
	for i := 0; i < cap(srv.updateSlots); i++ {
		<-srv.updateSlots
	}
	if resp, _ := postUpdate(t, ts.URL, `INSERT DATA { <http://ex/x> <http://ex/p> <http://ex/y> }`); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain update status = %d, want 200", resp.StatusCode)
	}
}

// TestServeDuringUpdate hammers /sparql from several clients while a
// writer flips a marker triple: every response must be HTTP 200 with
// either the pre-write or the post-write binding set, whichever
// generation the execution pinned. go test -race is part of the
// assertion (the TestServeDuringRepartition pattern, for writes).
func TestServeDuringUpdate(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), Config{Writable: true, CacheEntries: 64, MaxInFlight: 64})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	stop := make(chan struct{})
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, doc := getJSON(t, ts.URL, knowsChain)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d during update", resp.StatusCode)
					return
				}
				if n := len(doc.Results.Bindings); n != 1 && n != 2 {
					errs <- fmt.Errorf("bindings = %v during update", doc.Results.Bindings)
					return
				}
			}
		}()
	}
	for i := 0; i < 15; i++ {
		if resp, _ := postUpdate(t, ts.URL, `INSERT DATA { <http://ex/dave> <http://ex/knows> <http://ex/carol> }`); resp.StatusCode != http.StatusOK {
			t.Fatalf("insert %d failed: %d", i, resp.StatusCode)
		}
		if resp, _ := postUpdate(t, ts.URL, `DELETE DATA { <http://ex/dave> <http://ex/knows> <http://ex/carol> }`); resp.StatusCode != http.StatusOK {
			t.Fatalf("delete %d failed: %d", i, resp.StatusCode)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
