package server

// Serving benchmarks over an httptest server on LUBM scale 1, reporting
// queries/sec and bytes allocated per query, persisted to the repo-root
// BENCH_serve.json so the serving perf trajectory is tracked across PRs.
// BenchmarkWriteJSON compares the streaming serializer against the
// pre-streaming materialize-then-encode baseline (kept below as the
// reference implementation) on an identical 100k-row result.
//
// CI runs these as a -benchtime=1x smoke under -race; real numbers come
// from `go test -bench . -benchmem ./internal/server`.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"gstored"
	"gstored/internal/engine"
	"gstored/internal/rdf"
)

const ub = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"

// benchEnv is the shared LUBM(1) server, built once per test binary.
var benchEnv struct {
	once sync.Once
	db   *gstored.DB
	srv  *Server
	ts   *httptest.Server
	err  error
}

func benchServer(b *testing.B) (*Server, *httptest.Server) {
	b.Helper()
	benchEnv.once.Do(func() {
		ds := gstored.GenerateLUBM(1)
		db, err := gstored.Open(ds.Graph, gstored.Config{Sites: 4})
		if err != nil {
			benchEnv.err = err
			return
		}
		benchEnv.db = db
		benchEnv.srv = New(db, Config{MaxInFlight: 256, QueryTimeout: 5 * time.Minute})
		benchEnv.ts = httptest.NewServer(benchEnv.srv)
	})
	if benchEnv.err != nil {
		b.Fatal(benchEnv.err)
	}
	return benchEnv.srv, benchEnv.ts
}

// benchRecord is one row of BENCH_serve.json.
type benchRecord struct {
	NsPerOp       float64 `json:"ns_per_op"`
	QPS           float64 `json:"queries_per_sec,omitempty"`
	BytesPerOp    float64 `json:"bytes_alloc_per_op,omitempty"`
	TTFBNs        float64 `json:"ttfb_ns,omitempty"`
	RowsPerQuery  int     `json:"rows_per_query,omitempty"`
	TriplesPerSec float64 `json:"triples_per_sec,omitempty"`
	Note          string  `json:"note,omitempty"`
}

var benchOut struct {
	mu      sync.Mutex
	results map[string]benchRecord
}

// recordBench folds one finished benchmark into BENCH_serve.json at the
// repo root, merging over the entries already on disk so a partial run
// (-bench picking one benchmark) refreshes its own rows without erasing
// the rest. Failure to write is only logged: the benchmark may run from
// an extracted test binary with no repo around it.
func recordBench(b *testing.B, name string, rec benchRecord) {
	benchOut.mu.Lock()
	defer benchOut.mu.Unlock()
	if benchOut.results == nil {
		benchOut.results = make(map[string]benchRecord)
		var prev struct {
			Results map[string]benchRecord `json:"results"`
		}
		if data, err := os.ReadFile("../../BENCH_serve.json"); err == nil {
			if json.Unmarshal(data, &prev) == nil {
				for k, v := range prev.Results {
					benchOut.results[k] = v
				}
			}
		}
	}
	benchOut.results[name] = rec
	doc := struct {
		Benchmark string                 `json:"benchmark"`
		Dataset   string                 `json:"dataset"`
		Results   map[string]benchRecord `json:"results"`
	}{Benchmark: "serve", Dataset: "lubm-1", Results: benchOut.results}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_serve.json", append(data, '\n'), 0o644); err != nil {
		b.Logf("BENCH_serve.json not written: %v", err)
	}
}

// measureLoop runs fn b.N times, measuring wall time and heap allocation
// across the loop (client and server share the process, so bytes/op is
// the full request round trip).
func measureLoop(b *testing.B, fn func()) (nsPerOp, qps, bytesPerOp float64) {
	b.Helper()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn()
	}
	b.StopTimer()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(b.N)
	nsPerOp = float64(elapsed.Nanoseconds()) / n
	qps = n / elapsed.Seconds()
	bytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / n
	b.ReportMetric(qps, "queries/sec")
	b.ReportMetric(bytesPerOp, "alloc-bytes/query")
	return
}

func benchGet(b *testing.B, base, sparql string) {
	b.Helper()
	resp, err := http.Get(base + "/sparql?query=" + url.QueryEscape(sparql))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		b.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkServeCachedSmall is the steady-state hot path: a small query
// answered from the result cache.
func BenchmarkServeCachedSmall(b *testing.B) {
	_, ts := benchServer(b)
	q := fmt.Sprintf(`SELECT ?x ?y WHERE { ?x <%sadvisor> ?y }`, ub)
	benchGet(b, ts.URL, q) // prime the cache
	ns, qps, bytes := measureLoop(b, func() { benchGet(b, ts.URL, q) })
	recordBench(b, "serve_cached_small", benchRecord{
		NsPerOp: ns, QPS: qps, BytesPerOp: bytes,
		Note: "cache-hit path, 24-row result",
	})
}

// largeCrossQuery multiplies four disconnected patterns into 168,885
// rows on LUBM(1) — beyond the default 65,536-row cache cap, so every
// request takes the streaming BYPASS path.
func largeCrossQuery() string {
	return fmt.Sprintf(`SELECT ?a ?b ?c ?d ?e ?f ?g ?h WHERE {
		?a <%stakesCourse> ?b .
		?c <%sname> ?d .
		?e <%ssubOrganizationOf> ?f .
		?g <%sheadOf> ?h }`, ub, ub, ub, ub)
}

// largeCrossRows is largeCrossQuery's row count on the deterministic
// LUBM(1) generator; TestLargeCrossQueryStreams re-derives it from a
// direct engine run so drift fails loudly.
const largeCrossRows = 168885

// BenchmarkServeLargeStreaming is the acceptance scenario: a SELECT
// returning >=100k rows streams through the bypass path; bytes/op covers
// engine execution plus serialization with no materialized projected
// copy and no cache retention.
func BenchmarkServeLargeStreaming(b *testing.B) {
	srv, ts := benchServer(b)
	q := largeCrossQuery()
	ns, qps, bytes := measureLoop(b, func() { benchGet(b, ts.URL, q) })
	if srv.metrics.CacheBypass.Load() == 0 {
		b.Fatal("large query did not take the bypass path")
	}
	recordBench(b, "serve_large_streaming", benchRecord{
		NsPerOp: ns, QPS: qps, BytesPerOp: bytes, RowsPerQuery: largeCrossRows,
		Note: "cold >=100k-row SELECT per op: engine + streamed JSON, cache bypassed",
	})
}

// getTTFB issues one request and returns (time to the first body byte,
// total request time). The serializers flush after the first row, so the
// first byte marks the first delivered row, not just response headers.
func getTTFB(b *testing.B, base, sparql string) (ttfb, total time.Duration) {
	b.Helper()
	start := time.Now()
	resp, err := http.Get(base + "/sparql?query=" + url.QueryEscape(sparql))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	var one [1]byte
	if _, err := resp.Body.Read(one[:]); err != nil && err != io.EOF {
		b.Fatal(err)
	}
	ttfb = time.Since(start)
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	return ttfb, time.Since(start)
}

// BenchmarkServeTTFB is the tentpole's headline number: time-to-first-
// byte on the >=100k-row cross query, ordered (default: the engine
// materializes and canonically sorts everything before the serializer
// starts) versus unordered first-row-early delivery (rows stream from
// the final cross product as they are merged). Both paths execute the
// engine every op (the result exceeds the cache row cap; unordered never
// caches), so the delta is purely the delivery mode.
func BenchmarkServeTTFB(b *testing.B) {
	run := func(b *testing.B, base, name, note string) {
		var ttfbSum, totalSum time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ttfb, total := getTTFB(b, base, largeCrossQuery())
			ttfbSum += ttfb
			totalSum += total
		}
		b.StopTimer()
		n := float64(b.N)
		ttfbNs := float64(ttfbSum.Nanoseconds()) / n
		b.ReportMetric(ttfbNs, "ttfb-ns/op")
		recordBench(b, name, benchRecord{
			NsPerOp: float64(totalSum.Nanoseconds()) / n, TTFBNs: ttfbNs,
			RowsPerQuery: largeCrossRows, Note: note,
		})
	}
	b.Run("ordered", func(b *testing.B) {
		_, ts := benchServer(b)
		run(b, ts.URL, "serve_ttfb_ordered_100k",
			"default delivery: full materialize + canonical sort before the first byte")
	})
	b.Run("unordered", func(b *testing.B) {
		benchServer(b) // ensure the shared LUBM(1) db exists
		srv := New(benchEnv.db, Config{MaxInFlight: 256, QueryTimeout: 5 * time.Minute, Unordered: true})
		ts := httptest.NewServer(srv)
		defer func() {
			ts.Close()
			srv.Close()
		}()
		run(b, ts.URL, "serve_ttfb_unordered_100k",
			"first-row-early delivery: first byte ships with the first merged row")
	})
}

// BenchmarkServeTracing measures the observability overhead: the same
// cached-hit and cold distributed-query workloads against a default
// server (tracing off) and one with the slow-query log wide open
// (threshold 0, discard sink) — the configuration under which every
// request allocates a trace, records every span, and marshals one JSON
// record. The cached pair is the ≤5% regression target: a cache hit
// does no engine work, so it has the least room to hide tracing cost.
func BenchmarkServeTracing(b *testing.B) {
	benchServer(b) // ensure the shared LUBM(1) db exists
	cachedQ := fmt.Sprintf(`SELECT ?x ?y WHERE { ?x <%sadvisor> ?y }`, ub)
	// A distributed non-star query (no vertex common to all patterns), so
	// the cold pair clocks the full partial-evaluation pipeline with
	// per-site spans and fragment attribution.
	coldQ := fmt.Sprintf(`SELECT ?x ?y ?z ?w WHERE { ?x <%sadvisor> ?y . ?y <%sworksFor> ?z . ?w <%smemberOf> ?z }`, ub, ub, ub)

	newServer := func(cfg Config) (*httptest.Server, func()) {
		cfg.MaxInFlight = 256
		cfg.QueryTimeout = 5 * time.Minute
		srv := New(benchEnv.db, cfg)
		ts := httptest.NewServer(srv)
		return ts, func() { ts.Close(); srv.Close() }
	}
	// The operational tracing config: traces attached to every request,
	// slow-log armed with a threshold fast queries never reach — so the
	// hit path pays trace allocation and span recording but no JSON
	// marshal. Threshold 0 (log every query) is measured separately: it
	// is a diagnosis/CI knob, not a steady-state config.
	traced := Config{SlowQueryLog: io.Discard, SlowQueryThreshold: 250 * time.Millisecond}
	logAll := Config{SlowQueryLog: io.Discard}

	b.Run("cached_off", func(b *testing.B) {
		ts, done := newServer(Config{})
		defer done()
		benchGet(b, ts.URL, cachedQ) // prime
		ns, qps, bytes := measureLoop(b, func() { benchGet(b, ts.URL, cachedQ) })
		recordBench(b, "serve_cached_tracing_off", benchRecord{
			NsPerOp: ns, QPS: qps, BytesPerOp: bytes,
			Note: "cache-hit path, tracing/slow-log disabled",
		})
	})
	b.Run("cached_on", func(b *testing.B) {
		ts, done := newServer(traced)
		defer done()
		benchGet(b, ts.URL, cachedQ)
		ns, qps, bytes := measureLoop(b, func() { benchGet(b, ts.URL, cachedQ) })
		recordBench(b, "serve_cached_tracing_on", benchRecord{
			NsPerOp: ns, QPS: qps, BytesPerOp: bytes,
			Note: "cache-hit path with tracing armed (slow-log 250ms threshold, not reached); target <=5% below serve_cached_tracing_off qps",
		})
	})
	b.Run("cached_log_all", func(b *testing.B) {
		ts, done := newServer(logAll)
		defer done()
		benchGet(b, ts.URL, cachedQ)
		ns, qps, bytes := measureLoop(b, func() { benchGet(b, ts.URL, cachedQ) })
		recordBench(b, "serve_cached_slowlog_all", benchRecord{
			NsPerOp: ns, QPS: qps, BytesPerOp: bytes,
			Note: "cache-hit path with slow-query threshold 0: one JSON record marshaled per hit (diagnosis mode, exempt from the 5% target)",
		})
	})
	b.Run("cold_off", func(b *testing.B) {
		ts, done := newServer(Config{CacheEntries: -1})
		defer done()
		ns, qps, bytes := measureLoop(b, func() { benchGet(b, ts.URL, coldQ) })
		recordBench(b, "serve_cold_tracing_off", benchRecord{
			NsPerOp: ns, QPS: qps, BytesPerOp: bytes,
			Note: "uncached distributed non-star query, tracing/slow-log disabled",
		})
	})
	b.Run("cold_on", func(b *testing.B) {
		ts, done := newServer(Config{CacheEntries: -1, SlowQueryLog: io.Discard})
		defer done()
		ns, qps, bytes := measureLoop(b, func() { benchGet(b, ts.URL, coldQ) })
		recordBench(b, "serve_cold_tracing_on", benchRecord{
			NsPerOp: ns, QPS: qps, BytesPerOp: bytes,
			Note: "uncached distributed non-star query with per-site spans, fragment stats, and a JSON line per query",
		})
	})
}

// shapeQueries are the three structural classes of the per-shape serve
// benchmark: a star (fast path, center-owned dedup), a chain that runs
// full distributed partial evaluation, and the large disconnected cross
// product (the tentpole's cold acceptance scenario).
func shapeQueries() map[string]string {
	return map[string]string{
		"star": fmt.Sprintf(`SELECT ?x ?y ?z WHERE { ?x <%sadvisor> ?y . ?x <%smemberOf> ?z }`, ub, ub),
		"path": fmt.Sprintf(`SELECT ?x ?y ?z ?w WHERE { ?x <%sadvisor> ?y . ?y <%sworksFor> ?z . ?w <%smemberOf> ?z }`, ub, ub, ub),
		"cross": largeCrossQuery(),
	}
}

// BenchmarkServeCold measures each query shape cold (cache disabled:
// every op runs the engine and streams) and warm (primed cache with an
// uncapped row limit: every op is a hit). serve_cold_cross is the
// regression-guarded acceptance number; TestColdCrossRegressionSmoke
// compares it against the committed BENCH_serve.json baseline.
func BenchmarkServeCold(b *testing.B) {
	benchServer(b) // ensure the shared LUBM(1) db exists
	newServer := func(cfg Config) (*httptest.Server, func()) {
		cfg.MaxInFlight = 256
		cfg.QueryTimeout = 5 * time.Minute
		srv := New(benchEnv.db, cfg)
		ts := httptest.NewServer(srv)
		return ts, func() { ts.Close(); srv.Close() }
	}
	for shape, q := range shapeQueries() {
		b.Run("cold_"+shape, func(b *testing.B) {
			ts, done := newServer(Config{CacheEntries: -1})
			defer done()
			ns, qps, bytes := measureLoop(b, func() { benchGet(b, ts.URL, q) })
			rec := benchRecord{NsPerOp: ns, QPS: qps, BytesPerOp: bytes,
				Note: "cache disabled: engine + streamed JSON every op"}
			if shape == "cross" {
				rec.RowsPerQuery = largeCrossRows
			}
			recordBench(b, "serve_cold_"+shape, rec)
		})
		b.Run("warm_"+shape, func(b *testing.B) {
			// CacheMaxRows negative lifts the row cap so even the 168k-row
			// cross product warms into the cache.
			ts, done := newServer(Config{CacheMaxRows: -1})
			defer done()
			benchGet(b, ts.URL, q) // prime
			ns, qps, bytes := measureLoop(b, func() { benchGet(b, ts.URL, q) })
			rec := benchRecord{NsPerOp: ns, QPS: qps, BytesPerOp: bytes,
				Note: "primed cache, uncapped rows: serialization-only hit path"}
			if shape == "cross" {
				rec.RowsPerQuery = largeCrossRows
			}
			recordBench(b, "serve_warm_"+shape, rec)
		})
	}
}

// TestColdCrossRegressionSmoke guards the tentpole's acceptance number
// in CI: the cold cross-shape query must not regress more than 20% in
// qps against the committed BENCH_serve.json serve_cold_cross baseline.
// Gated behind GSTORED_COLD_CROSS_SMOKE=1 because a wall-clock ratio
// only means something on a quiet machine without -race.
func TestColdCrossRegressionSmoke(t *testing.T) {
	if os.Getenv("GSTORED_COLD_CROSS_SMOKE") != "1" {
		t.Skip("set GSTORED_COLD_CROSS_SMOKE=1 to run the timing smoke")
	}
	data, err := os.ReadFile("../../BENCH_serve.json")
	if err != nil {
		t.Fatalf("no committed baseline: %v", err)
	}
	var doc struct {
		Results map[string]benchRecord `json:"results"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	base, ok := doc.Results["serve_cold_cross"]
	if !ok || base.NsPerOp <= 0 {
		t.Fatal("BENCH_serve.json has no serve_cold_cross baseline")
	}

	ds := gstored.GenerateLUBM(1)
	db, err := gstored.Open(ds.Graph, gstored.Config{Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{CacheEntries: -1, MaxInFlight: 256, QueryTimeout: 5 * time.Minute})
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()
	q := largeCrossQuery()
	get := func() time.Duration {
		start := time.Now()
		resp, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(q))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	get() // warm the process (page cache, adjacency touch), not the result cache
	best := time.Duration(1<<62 - 1)
	for i := 0; i < 3; i++ {
		if d := get(); d < best {
			best = d
		}
	}
	// qps regression >20% == latency inflation >25%.
	limit := time.Duration(base.NsPerOp * 1.25)
	t.Logf("cold cross: best-of-3 %v, baseline %v, limit %v",
		best, time.Duration(base.NsPerOp), limit)
	if best > limit {
		t.Fatalf("cold cross regressed: best-of-3 %v exceeds %v (baseline %v +25%%)",
			best, limit, time.Duration(base.NsPerOp))
	}
}

// BenchmarkUpdate measures write throughput end to end over HTTP: each
// op POSTs one INSERT DATA batch and one DELETE DATA batch of
// updateBatch triples against a live writable LUBM(1) server, so the
// database returns to its baseline every op and the steady state clocks
// exactly the write path — parse, net-delta, incremental index, touched-
// fragment rebuild, generation swap, cache flush. A separate server is
// used so epoch bumps don't flush the shared benchmark server's cache.
func BenchmarkUpdate(b *testing.B) {
	const updateBatch = 64
	ds := gstored.GenerateLUBM(1)
	db, err := gstored.Open(ds.Graph, gstored.Config{Sites: 4})
	if err != nil {
		b.Fatal(err)
	}
	srv := New(db, Config{MaxInFlight: 256, QueryTimeout: 5 * time.Minute, Writable: true})
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()
	var ins, del strings.Builder
	ins.WriteString("INSERT DATA {\n")
	del.WriteString("DELETE DATA {\n")
	for i := 0; i < updateBatch; i++ {
		t := fmt.Sprintf("<http://ex/bench/s%d> <%sadvisor> <http://ex/bench/o%d> .\n", i, ub, i%9)
		ins.WriteString(t)
		del.WriteString(t)
	}
	ins.WriteString("}")
	del.WriteString("}")
	post := func(body string) {
		resp, err := http.Post(ts.URL+"/sparql", "application/sparql-update", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			b.Fatalf("status %d: %s", resp.StatusCode, msg)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
	}
	// Warm once so new-vertex dictionary/assignment growth is out of the
	// steady state, then verify the cycle really reverts.
	post(ins.String())
	post(del.String())
	baseline := db.NumTriples()
	ns, _, bytes := measureLoop(b, func() {
		post(ins.String())
		post(del.String())
	})
	if db.NumTriples() != baseline {
		b.Fatalf("update cycle drifted: %d triples, want %d", db.NumTriples(), baseline)
	}
	tps := float64(2*updateBatch) / (ns / float64(time.Second))
	b.ReportMetric(tps, "triples/sec")
	recordBench(b, "update_throughput", benchRecord{
		NsPerOp: ns, BytesPerOp: bytes, TriplesPerSec: tps,
		Note: fmt.Sprintf("insert+delete cycle of %d triples per op on LUBM(1), 4 sites: parse, incremental index + touched-fragment rebuild, epoch swap, cache flush", updateBatch),
	})
}

// synthResult builds an n-row, 3-var materialized row set for the
// serializer-only comparison.
func synthResult(n int) (*rdf.Dictionary, []string, []engine.Row) {
	dict := rdf.NewDictionary()
	ids := make([]rdf.TermID, 100)
	for i := range ids {
		ids[i] = dict.Encode(rdf.NewIRI(fmt.Sprintf("http://ex/entity/%d", i)))
	}
	rows := make([]engine.Row, n)
	for i := range rows {
		rows[i] = engine.Row{ids[i%100], ids[(i*7)%100], ids[(i*13)%100]}
	}
	return dict, []string{"s", "p", "o"}, rows
}

// BenchmarkWriteJSON is the before/after of the tentpole at the
// serializer layer: identical 100k-row results through the streaming
// writer versus the pre-streaming materialize-then-encode baseline.
func BenchmarkWriteJSON(b *testing.B) {
	dict, vars, rows := synthResult(100_000)
	b.Run("streaming", func(b *testing.B) {
		ns, _, bytes := measureLoop(b, func() {
			if err := WriteResultsJSON(io.Discard, dict, vars, SliceSeq(rows)); err != nil {
				b.Fatal(err)
			}
		})
		recordBench(b, "write_json_streaming_100k", benchRecord{
			NsPerOp: ns, BytesPerOp: bytes, RowsPerQuery: len(rows),
		})
	})
	b.Run("materialized", func(b *testing.B) {
		ns, _, bytes := measureLoop(b, func() {
			if err := writeResultsJSONMaterialized(io.Discard, dict, vars, rows); err != nil {
				b.Fatal(err)
			}
		})
		recordBench(b, "write_json_materialized_100k", benchRecord{
			NsPerOp: ns, BytesPerOp: bytes, RowsPerQuery: len(rows),
			Note: "pre-streaming baseline: full document built in memory",
		})
	})
}

// BenchmarkWriteTSV measures the streaming TSV writer on the same rows.
func BenchmarkWriteTSV(b *testing.B) {
	dict, vars, rows := synthResult(100_000)
	ns, _, bytes := measureLoop(b, func() {
		if err := WriteResultsTSV(io.Discard, dict, vars, SliceSeq(rows)); err != nil {
			b.Fatal(err)
		}
	})
	recordBench(b, "write_tsv_streaming_100k", benchRecord{
		NsPerOp: ns, BytesPerOp: bytes, RowsPerQuery: len(rows),
	})
}

// writeResultsJSONMaterialized is the pre-streaming serializer, kept as
// the benchmark baseline: it builds the entire SPARQL JSON document —
// one map per row — and encodes it in a single shot.
func writeResultsJSONMaterialized(w io.Writer, dict *rdf.Dictionary, vars []string, rows []engine.Row) error {
	type results struct {
		Bindings []map[string]jsonTerm `json:"bindings"`
	}
	doc := struct {
		Head struct {
			Vars []string `json:"vars"`
		} `json:"head"`
		Results results `json:"results"`
	}{}
	doc.Head.Vars = vars
	doc.Results.Bindings = make([]map[string]jsonTerm, 0, len(rows))
	for _, row := range rows {
		binding := make(map[string]jsonTerm, len(vars))
		for i, name := range vars {
			if i >= len(row) || row[i] == rdf.NoTerm {
				continue
			}
			t, ok := dict.Decode(row[i])
			if !ok {
				return fmt.Errorf("server: row references unknown term ID %d", row[i])
			}
			binding[name] = termJSON(t)
		}
		doc.Results.Bindings = append(doc.Results.Bindings, binding)
	}
	return json.NewEncoder(w).Encode(doc)
}

// TestLargeCrossQueryStreams pins the large-result serve path outside
// benchmark runs: >=100k rows, HTTP 200, BYPASS, and a sane row count.
func TestLargeCrossQueryStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("large result; skipped in -short")
	}
	ds := gstored.GenerateLUBM(1)
	db, err := gstored.Open(ds.Graph, gstored.Config{Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := db.Query(largeCrossQuery())
	if err != nil {
		t.Fatal(err)
	}
	if direct.Len() < 100_000 {
		t.Fatalf("cross query returns %d rows, want >=100k for the streaming scenario", direct.Len())
	}
	if direct.Len() != largeCrossRows {
		t.Errorf("cross query rows = %d; update largeCrossRows (%d)", direct.Len(), largeCrossRows)
	}
	s, ts := newTestServer(t, db, Config{QueryTimeout: 5 * time.Minute})
	resp, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(largeCrossQuery()) + "&format=tsv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "BYPASS" {
		t.Errorf("X-Cache = %q, want BYPASS", got)
	}
	lines := 0
	buf := make([]byte, 1<<16)
	for {
		n, err := resp.Body.Read(buf)
		for _, c := range buf[:n] {
			if c == '\n' {
				lines++
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if want := direct.Len() + 1; lines != want { // header + rows
		t.Errorf("streamed %d lines, want %d", lines, want)
	}
	if st := s.CacheStats(); st.Entries != 0 {
		t.Errorf("large result retained in cache: %+v", st)
	}
}
