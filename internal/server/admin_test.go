package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"gstored/internal/querylog"
)

// advisorDoc mirrors the /advisor response shape for decoding.
type advisorDoc struct {
	Current struct {
		Strategy string `json:"strategy"`
		K        int    `json:"k"`
		Epoch    uint64 `json:"epoch"`
	} `json:"current"`
	Workload struct {
		Queries  uint64 `json:"queries"`
		Distinct int    `json:"distinct"`
	} `json:"workload"`
	Recommended struct {
		Strategy string `json:"strategy"`
		K        int    `json:"k"`
	} `json:"recommended"`
	DataOnly struct {
		Strategy string `json:"strategy"`
		K        int    `json:"k"`
	} `json:"data_only"`
	DiffersFromDataOnly bool `json:"differs_from_data_only"`
	Candidates          []struct {
		Strategy     string `json:"strategy"`
		K            int    `json:"k"`
		WorkloadCost struct {
			Cost float64 `json:"cost"`
		} `json:"workload_cost"`
	} `json:"candidates"`
}

func getAdvisor(t *testing.T, base, params string) (*http.Response, advisorDoc) {
	t.Helper()
	resp, err := http.Get(base + "/advisor" + params)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var doc advisorDoc
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("bad advisor JSON (%s): %v", body, err)
		}
	}
	return resp, doc
}

func postRepartition(t *testing.T, base, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(base+"/repartition", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var doc map[string]any
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("bad repartition JSON (%s): %v", raw, err)
		}
	}
	return resp, doc
}

func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return string(body)
}

func metricValue(t *testing.T, metrics, name string) string {
	t.Helper()
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, name+" ") {
			return strings.TrimPrefix(line, name+" ")
		}
	}
	t.Fatalf("metric %s not exposed:\n%s", name, metrics)
	return ""
}

func TestAdvisorEndpoint(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), Config{})
	// Feed the workload log through the front door.
	for i := 0; i < 3; i++ {
		if resp, _ := getJSON(t, ts.URL, knowsChain); resp.StatusCode != http.StatusOK {
			t.Fatal("query failed")
		}
	}
	resp, doc := getAdvisor(t, ts.URL, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if doc.Current.K != 3 || doc.Current.Epoch != 1 {
		t.Errorf("current = %+v, want k=3 epoch=1", doc.Current)
	}
	if doc.Workload.Queries != 3 || doc.Workload.Distinct != 1 {
		t.Errorf("workload = %+v, want 3 queries / 1 distinct (cache hits must be observed too)", doc.Workload)
	}
	// Default candidates: 3 strategies × the current site count.
	if len(doc.Candidates) != 3 {
		t.Errorf("candidates = %d, want 3", len(doc.Candidates))
	}
	if doc.Recommended.Strategy == "" || doc.Recommended.K != 3 {
		t.Errorf("recommended = %+v", doc.Recommended)
	}

	if resp, err := http.Post(ts.URL+"/advisor", "application/json", nil); err != nil {
		t.Fatal(err)
	} else if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /advisor = %d, want 405", resp.StatusCode)
	}
}

func TestAdvisorKParameter(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), Config{})
	resp, doc := getAdvisor(t, ts.URL, "?k=2,3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(doc.Candidates) != 6 {
		t.Errorf("candidates = %d, want 3 strategies × 2 ks", len(doc.Candidates))
	}
	for _, bad := range []string{"?k=abc", "?k=0", "?k=2,-1"} {
		if resp, _ := getAdvisor(t, ts.URL, bad); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /advisor%s = %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestRepartitionEndpoint(t *testing.T) {
	db := testDB(t)
	_, ts := newTestServer(t, db, Config{})

	resp, doc := postRepartition(t, ts.URL, `{"strategy": "semantic-hash", "k": 2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	applied := doc["applied"].(map[string]any)
	if applied["strategy"] != "semantic-hash" || applied["k"].(float64) != 2 {
		t.Errorf("applied = %v", applied)
	}
	if doc["epoch"].(float64) != 2 {
		t.Errorf("epoch = %v, want 2", doc["epoch"])
	}
	if db.Strategy() != "semantic-hash" || db.NumSites() != 2 {
		t.Errorf("live cluster = (%s,%d)", db.Strategy(), db.NumSites())
	}

	// Advisor-driven: empty body applies the current recommendation.
	resp, doc = postRepartition(t, ts.URL, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advisor-driven status = %d", resp.StatusCode)
	}
	if doc["epoch"].(float64) != 3 {
		t.Errorf("epoch after second swap = %v, want 3", doc["epoch"])
	}

	// Queries still answer correctly on the swapped cluster.
	qresp, qdoc := getJSON(t, ts.URL, knowsChain)
	if qresp.StatusCode != http.StatusOK || len(qdoc.Results.Bindings) != 1 {
		t.Errorf("post-swap query: status %d, bindings %v", qresp.StatusCode, qdoc.Results.Bindings)
	}

	for body, want := range map[string]int{
		`{"strategy": "hash"}`:            http.StatusBadRequest, // k missing
		`{"k": 2}`:                        http.StatusBadRequest, // strategy missing
		`{"strategy": "nope", "k": 2}`:    http.StatusBadRequest,
		`{"strategy": "hash", "k": -1}`:   http.StatusBadRequest,
		`{"strategy": "hash", "k": 2 ???`: http.StatusBadRequest,
	} {
		if resp, _ := postRepartition(t, ts.URL, body); resp.StatusCode != want {
			t.Errorf("POST /repartition %s = %d, want %d", body, resp.StatusCode, want)
		}
	}
	if resp, err := http.Get(ts.URL + "/repartition"); err != nil {
		t.Fatal(err)
	} else if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /repartition = %d, want 405", resp.StatusCode)
	}
}

// TestCacheNeverServesPreSwapEntry pins the epoch-versioning
// correctness claim: a result cached before a repartition must not
// answer a request after it, and the flush is visible in /metrics.
func TestCacheNeverServesPreSwapEntry(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), Config{CacheEntries: 64})
	if resp, _ := getJSON(t, ts.URL, knowsChain); resp.Header.Get("X-Cache") != "MISS" {
		t.Fatal("first request should miss")
	}
	if resp, _ := getJSON(t, ts.URL, knowsChain); resp.Header.Get("X-Cache") != "HIT" {
		t.Fatal("second request should hit")
	}

	if resp, _ := postRepartition(t, ts.URL, `{"strategy": "hash", "k": 2}`); resp.StatusCode != http.StatusOK {
		t.Fatal("repartition failed")
	}

	resp, doc := getJSON(t, ts.URL, knowsChain)
	if got := resp.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("post-swap request served X-Cache: %s; pre-swap entries must not survive the epoch", got)
	}
	if len(doc.Results.Bindings) != 1 {
		t.Errorf("post-swap bindings = %v", doc.Results.Bindings)
	}
	// And the new epoch caches normally.
	if resp, _ := getJSON(t, ts.URL, knowsChain); resp.Header.Get("X-Cache") != "HIT" {
		t.Error("post-swap repeat should hit the refilled cache")
	}

	m := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, m, "gstored_cache_flushes_total"); got != "1" {
		t.Errorf("gstored_cache_flushes_total = %s, want 1", got)
	}
	if got := metricValue(t, m, "gstored_repartitions_total"); got != "1" {
		t.Errorf("gstored_repartitions_total = %s, want 1", got)
	}
	if got := metricValue(t, m, "gstored_partition_epoch"); got != "2" {
		t.Errorf("gstored_partition_epoch = %s, want 2", got)
	}
	if got := metricValue(t, m, "gstored_sites"); got != "2" {
		t.Errorf("gstored_sites = %s, want 2", got)
	}
}

// TestServeDuringRepartition hammers /sparql from several clients while
// the partitioning is hot-swapped underneath them: every response must
// be HTTP 200 with the same single binding, whichever generation served
// it. go test -race is part of the assertion.
func TestServeDuringRepartition(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), Config{CacheEntries: 64, MaxInFlight: 64})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	stop := make(chan struct{})
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, doc := getJSON(t, ts.URL, knowsChain)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d during swap", resp.StatusCode)
					return
				}
				if len(doc.Results.Bindings) != 1 {
					errs <- fmt.Errorf("bindings = %v during swap", doc.Results.Bindings)
					return
				}
			}
		}()
	}
	for i := 0; i < 10; i++ {
		body := fmt.Sprintf(`{"strategy": %q, "k": %d}`, []string{"hash", "semantic-hash", "metis"}[i%3], 2+i%2)
		if resp, _ := postRepartition(t, ts.URL, body); resp.StatusCode != http.StatusOK {
			t.Fatalf("swap %d failed: %d", i, resp.StatusCode)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestQueryLogSink checks the offline JSONL capture: every answered
// query — cache hits included — lands in the sink, replayable by
// querylog.ReadRecords.
func TestQueryLogSink(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, testDB(t), Config{CacheEntries: 16, QueryLogSink: &buf})
	for i := 0; i < 3; i++ {
		if resp, _ := getJSON(t, ts.URL, knowsChain); resp.StatusCode != http.StatusOK {
			t.Fatal("query failed")
		}
	}
	recs, err := querylog.ReadRecords(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("sink captured %d records, want 3 (hits included)", len(recs))
	}
	for _, r := range recs {
		if r.Query != knowsChain {
			t.Errorf("sink record = %q", r.Query)
		}
	}
}

// syncBuffer guards a bytes.Buffer for concurrent appends; the
// querylog.Writer serializes writes, but String may race with them in
// principle, so keep the test well-defined.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestQueryLogDisabled: a negative capacity turns off workload capture;
// the advisor still answers, over an empty workload.
func TestQueryLogDisabled(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), Config{QueryLogCapacity: -1})
	if resp, _ := getJSON(t, ts.URL, knowsChain); resp.StatusCode != http.StatusOK {
		t.Fatal("query failed")
	}
	resp, doc := getAdvisor(t, ts.URL, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advisor status = %d", resp.StatusCode)
	}
	if doc.Workload.Queries != 0 || doc.Workload.Distinct != 0 {
		t.Errorf("workload = %+v, want empty when capture is disabled", doc.Workload)
	}
	if doc.DiffersFromDataOnly {
		t.Error("empty workload should agree with the data-only model")
	}
	m := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, m, "gstored_querylog_entries"); got != "0" {
		t.Errorf("gstored_querylog_entries = %s, want 0", got)
	}
}
