package server

import (
	"container/list"
	"sync"

	"gstored/internal/engine"
)

// CachedResult is one cache entry: the projected rows of a completed
// execution plus the per-stage statistics of the run that produced them.
// Entries are immutable once stored — concurrent readers share them.
type CachedResult struct {
	// Rows are the projected result rows (Result.Project output), in the
	// column order fixed by the canonical key's projection component.
	Rows []engine.Row
	// Stats is the execution that populated the entry; served alongside
	// hits so clients can still see the paper's per-stage numbers.
	Stats engine.Stats
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits, Misses, Evictions int64
	Entries                 int
}

// Cache is a bounded LRU result cache keyed on the canonicalized compiled
// query (query.CanonicalKey), so textual variants — renamed variables,
// reordered triple patterns — of the same query hit the same entry. It is
// safe for concurrent use.
//
// Admission is the caller's decision: the HTTP layer only Puts results at
// or under Config.CacheMaxRows projected rows, streaming anything larger
// to the client uncached (X-Cache: BYPASS), so entry count bounds memory
// to roughly capacity x CacheMaxRows rows.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type cacheItem struct {
	key string
	res *CachedResult
}

// NewCache returns an LRU cache holding at most capacity entries.
// Capacity must be positive.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// Get returns the entry for key, marking it most recently used.
func (c *Cache) Get(key string) (*CachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).res, true
}

// recheck is Get for the leader's post-join double-check: a hit counts
// (and refreshes LRU) like any other, but a miss is not re-counted — the
// request's original Get already recorded it.
func (c *Cache) recheck(key string) (*CachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).res, true
}

// Peek reports whether key is resident without counting a hit or miss
// and without refreshing the entry's LRU position. The explain path uses
// it to report the disposition a real request would have met while
// leaving the cache's state and statistics untouched.
func (c *Cache) Peek(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// Put stores res under key, evicting the least recently used entry when
// the cache is full. Storing an existing key refreshes its entry.
func (c *Cache) Put(key string, res *CachedResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheItem).res = res
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*cacheItem).key)
			c.evictions++
		}
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, res: res})
}

// Flush drops every resident entry, returning how many were dropped.
// Hit/miss/eviction counters survive (a flush is not an eviction); the
// serving layer flushes when the cluster epoch advances so stale
// results free their memory instead of waiting out the LRU.
func (c *Cache) Flush() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.ll.Len()
	c.ll.Init()
	c.items = make(map[string]*list.Element, c.capacity)
	return n
}

// Stats snapshots the hit/miss/eviction counters and current size.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: c.ll.Len()}
}
