package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrOverloaded is returned by Scheduler.Run when the in-flight limit is
// reached; the HTTP layer maps it to 503 Service Unavailable so overload
// sheds load instead of queueing without bound.
var ErrOverloaded = errors.New("server: query load limit reached")

// ErrClosed is returned for tasks abandoned by Close.
var ErrClosed = errors.New("server: scheduler closed")

// Scheduler is a bounded concurrent query scheduler: a fixed pool of
// worker goroutines consuming an admission-controlled queue. At most
// maxInFlight tasks are admitted (queued + running); beyond that Run
// fails fast with ErrOverloaded. Tasks run under the caller's context,
// and a task whose context expires while still queued is never started.
type Scheduler struct {
	tasks    chan *schedTask
	quit     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// mu serializes enqueueing against Close: Run holds it shared while
	// admitting and enqueueing, Close takes it exclusively to flip
	// closed, so no task can slip into the queue after the final drain.
	mu     sync.RWMutex
	closed bool

	maxInFlight int64
	inFlight    atomic.Int64
}

type schedTask struct {
	ctx  context.Context
	fn   func(context.Context) error
	err  error
	done chan struct{}
}

// NewScheduler starts a pool of workers goroutines admitting at most
// maxInFlight concurrent tasks. Both arguments must be positive.
func NewScheduler(workers, maxInFlight int) *Scheduler {
	if workers <= 0 {
		workers = 1
	}
	if maxInFlight < workers {
		maxInFlight = workers
	}
	s := &Scheduler{
		// The queue holds every admitted task, so enqueueing after
		// admission never blocks.
		tasks:       make(chan *schedTask, maxInFlight),
		quit:        make(chan struct{}),
		maxInFlight: int64(maxInFlight),
	}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// Run submits fn and waits for it to finish, returning its error.
// It fails fast with ErrOverloaded when the in-flight limit is reached,
// and returns ctx's error without running fn when ctx expires before a
// worker picks the task up.
func (s *Scheduler) Run(ctx context.Context, fn func(context.Context) error) error {
	t, err := s.submit(ctx, fn)
	if err != nil {
		return err
	}
	<-t.done
	return t.err
}

func (s *Scheduler) submit(ctx context.Context, fn func(context.Context) error) (*schedTask, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.inFlight.Add(1) > s.maxInFlight {
		s.inFlight.Add(-1)
		return nil, ErrOverloaded
	}
	// The queue holds maxInFlight tasks, so this send cannot block.
	t := &schedTask{ctx: ctx, fn: fn, done: make(chan struct{})}
	s.tasks <- t
	return t, nil
}

// InFlight reports the number of admitted tasks (queued plus running).
func (s *Scheduler) InFlight() int64 { return s.inFlight.Load() }

// Close stops the workers and fails any still-queued tasks with
// ErrClosed. Tasks already running finish normally; Run calls after
// Close fail with ErrClosed.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.quit) })
	s.wg.Wait()
	// Workers race their final drain against in-flight submits; with
	// closed now visible no new task can arrive, so one last sweep
	// unblocks any straggler.
	s.drain()
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			s.drain()
			return
		case t := <-s.tasks:
			s.exec(t)
		}
	}
}

func (s *Scheduler) exec(t *schedTask) {
	defer func() {
		s.inFlight.Add(-1)
		close(t.done)
	}()
	if err := t.ctx.Err(); err != nil {
		t.err = err // expired while queued; don't start
		return
	}
	t.err = t.fn(t.ctx)
}

// drain fails queued tasks after Close so their submitters unblock.
func (s *Scheduler) drain() {
	for {
		select {
		case t := <-s.tasks:
			t.err = ErrClosed
			s.inFlight.Add(-1)
			close(t.done)
		default:
			return
		}
	}
}
