package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"gstored"
	"gstored/internal/trace"
)

// ExplainReport is the JSON body answered by /sparql?explain=1 (and
// printed by `gstored explain`): the compiled query graph, the chosen
// execution plan, the cache/singleflight disposition the query would
// have met, and the full per-stage, per-fragment trace of one real
// execution — so diagnosing a query costs exactly one run, not a
// results run plus an instrumented rerun.
type ExplainReport struct {
	Query        string   `json:"query"`
	CanonicalKey string   `json:"canonical_key"`
	// Pattern is the compiled BGP rendered back to text — what the
	// engine actually matched after parsing, canonicalization aside.
	Pattern    string   `json:"pattern"`
	Vars       []string `json:"vars"`
	Projection []string `json:"projection"`
	Distinct   bool     `json:"distinct,omitempty"`
	Limit      *int     `json:"limit,omitempty"`
	Offset     int      `json:"offset,omitempty"`
	Mode       string   `json:"mode"`
	// Plan is the execution shape: "star-fast-path" (crossing-edge
	// replication makes every match fragment-local), "distributed"
	// (partial evaluation + assembly), or "components" (disconnected
	// pattern evaluated per component and cross-producted).
	Plan string `json:"plan"`
	// Order is the selectivity-compiled edge-evaluation order with the
	// per-edge cardinality estimate each position was chosen on (absent
	// for component-split plans, which order each component separately).
	Order []ExplainOrderStep `json:"order,omitempty"`
	// EvalWorkers is the resolved width of the bounded evaluation pool
	// this query ran under (1 = fully sequential).
	EvalWorkers int `json:"eval_workers"`
	// Delivery reports the serving mode: "ordered" (materialize + sort)
	// or "unordered" (first-row-early streaming).
	Delivery string       `json:"delivery"`
	Epoch    uint64       `json:"epoch"`
	Sites    int          `json:"sites"`
	Strategy string       `json:"strategy"`
	Cache    ExplainCache `json:"cache"`

	Rows          int     `json:"rows"`
	EarlyStop     bool    `json:"early_stop,omitempty"`
	TotalMillis   float64 `json:"total_ms"`
	ShipmentBytes int64   `json:"shipment_bytes"`
	Messages      int64   `json:"messages"`
	EstCommMillis float64 `json:"estimated_comm_ms"`

	Stages    []ExplainStage    `json:"stages"`
	Fragments []ExplainFragment `json:"fragments"`
	// Trace is the span timeline of this execution: per-site candidates
	// and partial spans, coordinator LEC/assembly spans, and the
	// request-level parse span, ordered by start offset.
	Trace []trace.Span `json:"trace"`
}

// ExplainOrderStep is one position of the compiled evaluation order:
// the query edge evaluated there (rendered back to pattern text) and
// the global cardinality estimate that ranked it.
type ExplainOrderStep struct {
	Edge    int    `json:"edge"`
	Pattern string `json:"pattern"`
	Est     int64  `json:"est"`
}

// ExplainStage is one aggregate pipeline stage of the report.
type ExplainStage struct {
	Stage         string  `json:"stage"`
	Millis        float64 `json:"ms"`
	ShipmentBytes int64   `json:"shipment_bytes"`
}

// ExplainFragment is one site's row of the per-fragment breakdown.
type ExplainFragment struct {
	Site                   int     `json:"site"`
	LocalMatches           int     `json:"local_matches"`
	PartialMatches         int     `json:"partial_matches"`
	RetainedPartialMatches int   `json:"retained_partial_matches"`
	ShipmentBytes          int64 `json:"shipment_bytes"`
	// WireBytes is the real transport traffic of the site's RPCs (request
	// and response frames measured at the socket); zero when the site is
	// in-process, where shipment_bytes is the §IX estimate instead.
	WireBytes  int64   `json:"wire_bytes"`
	WallMillis float64 `json:"wall_ms"`
	// Tasks and BusyMillis attribute pool work to the site: how many
	// evaluation tasks ran on its fragment and their summed wall time.
	// BusyMillis/WallMillis approximates the intra-site speedup the
	// worker pool delivered.
	Tasks      int     `json:"tasks"`
	BusyMillis float64 `json:"busy_ms"`
}

// ExplainCache reports how the cache and singleflight layers would have
// answered this query had it arrived without explain=1. The explain
// execution itself bypasses both (it must run the engine to produce a
// trace) and leaves them untouched: no entry is stored, no LRU position
// refreshed, no hit/miss counted.
type ExplainCache struct {
	Enabled bool `json:"enabled"`
	// Disposition is "hit" (a resident entry would have answered),
	// "miss", or "disabled".
	Disposition string `json:"disposition"`
	// Cacheable reports whether this execution's result fits under the
	// cache row cap (false means a real request would stream uncached).
	Cacheable bool `json:"cacheable"`
	// SharedFlight reports that a concurrent identical execution was in
	// flight at admission — a real request would have coalesced onto it.
	SharedFlight bool `json:"shared_flight"`
}

// BuildExplain assembles the report from one completed execution.
// Exported for the `gstored explain` subcommand, which runs outside the
// HTTP layer.
func BuildExplain(db *gstored.DB, q *gstored.QueryGraph, text string, res *gstored.Result, tr *trace.Trace, delivery string, cache ExplainCache) *ExplainReport {
	s := res.Stats
	strategy, sites, epoch := db.ClusterInfo()
	plan := "distributed"
	if s.StarFastPath {
		plan = "star-fast-path"
	} else if len(q.ConnectedComponents()) > 1 {
		plan = "components"
	}
	rep := &ExplainReport{
		Query:         text,
		CanonicalKey:  db.CanonicalQueryKey(q),
		Pattern:       q.String(),
		Vars:          q.Vars,
		Projection:    projectionNames(db, q),
		Distinct:      q.Distinct,
		Offset:        q.Offset,
		Mode:          db.Mode().String(),
		Plan:          plan,
		Order:         explainOrder(q, s.Plan),
		EvalWorkers:   s.EvalWorkers,
		Delivery:      delivery,
		Epoch:         epoch,
		Sites:         sites,
		Strategy:      strategy,
		Cache:         cache,
		Rows:          s.NumMatches,
		EarlyStop:     s.EarlyStop,
		TotalMillis:   millis(s.TotalTime),
		ShipmentBytes: s.TotalShipment,
		Messages:      s.Messages,
		EstCommMillis: millis(s.EstimatedCommTime),
		Stages: []ExplainStage{
			{Stage: "candidates", Millis: millis(s.CandidatesTime), ShipmentBytes: s.CandidatesShipment},
			{Stage: "partial", Millis: millis(s.PartialTime)},
			{Stage: "lec", Millis: millis(s.LECTime), ShipmentBytes: s.LECShipment},
			{Stage: "assembly", Millis: millis(s.AssemblyTime), ShipmentBytes: s.AssemblyShipment},
		},
		Fragments: explainFragments(s.Fragments),
		Trace:     tr.Spans(),
	}
	if q.HasLimit {
		l := q.Limit
		rep.Limit = &l
	}
	return rep
}

func explainOrder(q *gstored.QueryGraph, plan []gstored.PlanEdge) []ExplainOrderStep {
	if len(plan) == 0 {
		return nil
	}
	out := make([]ExplainOrderStep, len(plan))
	for k, pe := range plan {
		out[k] = ExplainOrderStep{Edge: pe.Edge, Pattern: q.EdgeString(pe.Edge), Est: pe.Est}
	}
	return out
}

func explainFragments(fs []gstored.FragmentStats) []ExplainFragment {
	out := make([]ExplainFragment, len(fs))
	for i, f := range fs {
		out[i] = ExplainFragment{
			Site:                   f.Site,
			LocalMatches:           f.LocalMatches,
			PartialMatches:         f.PartialMatches,
			RetainedPartialMatches: f.RetainedPartialMatches,
			ShipmentBytes:          f.ShipmentBytes,
			WireBytes:              f.WireBytes,
			WallMillis:             millis(f.Wall),
			Tasks:                  f.Tasks,
			BusyMillis:             millis(f.Busy),
		}
	}
	return out
}

func projectionNames(db *gstored.DB, q *gstored.QueryGraph) []string {
	cols := db.Columns(q)
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = strings.TrimPrefix(c, "?")
	}
	return out
}

func millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// explainRequested reports whether the request opted into the EXPLAIN
// surface via ?explain=1 (GET or POST URL) or an explain=1 form field.
func explainRequested(r *http.Request) bool {
	v := r.URL.Query().Get("explain")
	if v == "" && r.PostForm != nil {
		v = r.PostForm.Get("explain")
	}
	switch strings.ToLower(v) {
	case "1", "true", "yes":
		return true
	}
	return false
}

// handleExplain answers /sparql?explain=1: one real engine execution
// with a trace attached, serialized as the ExplainReport instead of the
// bindings. The execution is admitted and clocked like any query (it
// runs on the worker pool under the query timeout, counts as an engine
// run, and feeds the per-stage histograms) but deliberately leaves the
// cache, singleflight, and workload log untouched — a diagnostic probe
// must not evict the working set or skew the advisor.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request, q *gstored.QueryGraph, text string, tr *trace.Trace, start time.Time) {
	cache := ExplainCache{Enabled: s.cache != nil, Disposition: "disabled", Cacheable: true}
	logKey := s.logKey(q)
	epoch := s.syncEpoch()
	key := cacheKey(epoch, logKey)
	if s.cache != nil {
		cache.Disposition = "miss"
		if s.cache.Peek(key) {
			cache.Disposition = "hit"
		}
	}
	cache.SharedFlight = s.flights.pending(key)

	execCtx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
	defer cancel()
	execCtx = trace.NewContext(execCtx, tr)

	delivery := "ordered"
	if s.cfg.Unordered {
		delivery = "unordered"
	}
	var res *gstored.Result
	var engineWall time.Duration
	err := s.sched.Run(execCtx, func(ctx context.Context) error {
		engineStart := time.Now()
		var qerr error
		if s.cfg.Unordered {
			// Mirror the serving mode: the trace should show the same
			// execution shape (streaming sinks, LIMIT cancellation) a
			// real unordered request runs, with the rows discarded.
			res, qerr = s.db.QueryGraphStreamContext(ctx, q, func(gstored.Row) bool { return true })
		} else {
			res, qerr = s.db.QueryGraphContext(ctx, q)
		}
		engineWall = time.Since(engineStart)
		return qerr
	})
	if err != nil {
		s.failQuery(w, err)
		s.finishQuery(outcomeError, start, logKey, epoch, nil, 0, tr)
		return
	}
	s.metrics.Queries.Add(1)
	s.metrics.EngineRuns.Add(1)
	s.metrics.Observe(res.Stats, engineWall)
	if s.cache != nil {
		cache.Cacheable = s.cacheable(res)
	}

	rep := BuildExplain(s.db, q, text, res, tr, delivery, cache)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if encErr := enc.Encode(rep); encErr != nil && r.Context().Err() != nil {
		s.metrics.ClientDisconnects.Add(1)
	}
	s.finishQuery(outcomeExplain, start, logKey, epoch, &res.Stats, res.Stats.NumMatches, tr)
}
