package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
)

// handleUpdate applies a SPARQL 1.1 Update request (INSERT DATA /
// DELETE DATA over ground triples) and reports what changed.
//
// Correctness against the caching layers needs no work here beyond
// calling DB.Update: a data-changing update commits as a new cluster
// generation with a higher epoch, and every cache and singleflight key
// embeds the epoch, so a result computed before the write can never
// answer a request arriving after it. syncEpoch is called only to flush
// the now-unreachable entries eagerly (and make the flush observable in
// gstored_cache_flushes_total) — the same courtesy /repartition extends.
//
// Updates run inline rather than through the query scheduler: they
// serialize on the database's swap mutex anyway, touch only the delta's
// fragments, and must not be shed by admission control meant to protect
// query capacity. The workload log deliberately does not observe
// updates — it models query traversal frequency for the partition
// advisor (its crossing statistics do go stale as mutations drift the
// data; see DESIGN.md).
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request, text string) {
	if !s.cfg.Writable {
		http.Error(w, "read-only endpoint: restart with -writable to accept updates", http.StatusForbidden)
		return
	}
	if strings.TrimSpace(text) == "" {
		http.Error(w, "missing 'update' parameter", http.StatusBadRequest)
		return
	}
	// Writes skip the query scheduler but not admission control: they
	// serialize on the DB's swap mutex, so without a cap a flood of
	// update POSTs piles goroutines and bodies onto the lock unboundedly.
	// Shed beyond MaxInFlight queued writers, like queries shed.
	select {
	case s.updateSlots <- struct{}{}:
		defer func() { <-s.updateSlots }()
	default:
		s.metrics.Rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "update load limit reached, retry later", http.StatusServiceUnavailable)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
	defer cancel()
	stats, err := s.db.Update(ctx, text)
	if err != nil {
		// Updates get their own status mapping rather than failQuery's:
		// the client must be told its update (not "query") failed, though
		// the shared counters classify the failure the same way.
		switch {
		case errors.Is(err, context.DeadlineExceeded), errors.Is(ctx.Err(), context.DeadlineExceeded):
			s.metrics.Timeouts.Add(1)
			http.Error(w, fmt.Sprintf("update exceeded the %v time limit", s.cfg.QueryTimeout), http.StatusGatewayTimeout)
		case errors.Is(err, context.Canceled), errors.Is(ctx.Err(), context.Canceled):
			s.metrics.ClientDisconnects.Add(1)
			http.Error(w, "update canceled", http.StatusServiceUnavailable)
		default:
			s.metrics.Errors.Add(1)
			http.Error(w, fmt.Sprintf("update failed: %v", err), http.StatusBadRequest)
		}
		return
	}
	s.metrics.Updates.Add(1)
	s.metrics.TriplesInserted.Add(int64(stats.Inserted))
	s.metrics.TriplesDeleted.Add(int64(stats.Deleted))
	if stats.Inserted > 0 || stats.Deleted > 0 {
		// Flush the dead generation's cache entries now instead of at the
		// next query's lazy sync.
		s.syncEpoch()
	}
	w.Header().Set("Content-Type", "application/json")
	err = json.NewEncoder(w).Encode(map[string]any{
		"inserted":          stats.Inserted,
		"deleted":           stats.Deleted,
		"rebuilt_fragments": stats.RebuiltFragments,
		"epoch":             stats.Epoch,
	})
	if err != nil && r.Context().Err() != nil {
		s.metrics.ClientDisconnects.Add(1)
	}
}
