package server

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gstored"
	"gstored/internal/trace"
)

// SlowQueryRecord is one structured slow-query log line: everything an
// operator needs to see why a query was slow without re-running it —
// the canonical key identifies the query across textual variants, the
// epoch pins which cluster generation answered it, the stage and
// fragment breakdowns say where the time and traffic went, and the span
// timeline shows how the stages overlapped.
type SlowQueryRecord struct {
	Time    string `json:"time"`
	Outcome string `json:"outcome"`
	// Key is the canonical workload key (mode + canonicalized query),
	// the same key the cache, singleflight, and workload log use.
	Key        string  `json:"key"`
	Epoch      uint64  `json:"epoch"`
	WallMillis float64 `json:"wall_ms"`
	Rows       int     `json:"rows,omitempty"`

	// Engine-side fields; absent for servings that ran no engine (cache
	// hits carry the stats of the execution that populated the entry).
	ShipmentBytes int64              `json:"shipment_bytes,omitempty"`
	Messages      int64              `json:"messages,omitempty"`
	Stages        []ExplainStage     `json:"stages,omitempty"`
	Fragments     []ExplainFragment  `json:"fragments,omitempty"`
	Trace         []trace.Span       `json:"trace,omitempty"`
}

// slowLogger emits one JSON line per query at or over the threshold.
// A zero threshold logs every query — the knob CI uses to assert that
// every request produces a structured trace line.
type slowLogger struct {
	mu        sync.Mutex
	w         io.Writer
	threshold time.Duration
	// drops counts lines lost to marshal or sink failures (nil when the
	// owner does not track them): a silent slow-log gap during an
	// incident is itself an incident signal worth scraping.
	drops *atomic.Int64
}

func (l *slowLogger) noteDrop() {
	if l.drops != nil {
		l.drops.Add(1)
	}
}

func (l *slowLogger) maybeLog(o queryOutcome, wall time.Duration, key string, epoch uint64, stats *gstored.Stats, rows int, tr *trace.Trace) {
	if wall < l.threshold {
		return
	}
	rec := SlowQueryRecord{
		Time:       time.Now().UTC().Format(time.RFC3339Nano),
		Outcome:    outcomeNames[o],
		Key:        key,
		Epoch:      epoch,
		WallMillis: millis(wall),
		Rows:       rows,
		Trace:      tr.Spans(),
	}
	if stats != nil {
		rec.ShipmentBytes = stats.TotalShipment
		rec.Messages = stats.Messages
		rec.Stages = []ExplainStage{
			{Stage: "candidates", Millis: millis(stats.CandidatesTime), ShipmentBytes: stats.CandidatesShipment},
			{Stage: "partial", Millis: millis(stats.PartialTime)},
			{Stage: "lec", Millis: millis(stats.LECTime), ShipmentBytes: stats.LECShipment},
			{Stage: "assembly", Millis: millis(stats.AssemblyTime), ShipmentBytes: stats.AssemblyShipment},
		}
		rec.Fragments = explainFragments(stats.Fragments)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		l.noteDrop()
		return
	}
	line = append(line, '\n')
	// One line per write under one lock: concurrent slow queries must
	// not interleave bytes within a line (the sink may be a shared
	// file), and the rotating writer rotates on whole lines.
	l.mu.Lock()
	_, werr := l.w.Write(line)
	l.mu.Unlock()
	if werr != nil {
		l.noteDrop()
	}
}

// RotatingWriter is a size-bounded file sink for the slow-query log:
// when a write would push the current file past maxBytes, the file is
// rotated to <path>.1 (replacing any previous rotation) and a fresh
// file opened — so the log holds at most ~2x maxBytes on disk no matter
// how long the server runs or how slow its queries get.
type RotatingWriter struct {
	mu       sync.Mutex
	path     string
	maxBytes int64
	f        *os.File
	size     int64
}

// NewRotatingWriter opens (appending) the log file at path, rotating at
// maxBytes (minimum 1 KiB; 0 selects 64 MiB).
func NewRotatingWriter(path string, maxBytes int64) (*RotatingWriter, error) {
	if maxBytes == 0 {
		maxBytes = 64 << 20
	}
	if maxBytes < 1<<10 {
		maxBytes = 1 << 10
	}
	w := &RotatingWriter{path: path, maxBytes: maxBytes}
	if err := w.open(); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *RotatingWriter) open() error {
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close() // the Stat failure is the error worth reporting
		return err
	}
	w.f, w.size = f, st.Size()
	return nil
}

// Write implements io.Writer; callers are expected to write whole lines
// (the slow logger does), so rotation never splits a record.
func (w *RotatingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, fmt.Errorf("server: rotating writer closed")
	}
	if w.size > 0 && w.size+int64(len(p)) > w.maxBytes {
		if err := w.rotate(); err != nil {
			return 0, err
		}
	}
	n, err := w.f.Write(p)
	w.size += int64(n)
	return n, err
}

func (w *RotatingWriter) rotate() error {
	if err := w.f.Close(); err != nil {
		return err
	}
	w.f = nil
	if err := os.Rename(w.path, w.path+".1"); err != nil && !os.IsNotExist(err) {
		return err
	}
	return w.open()
}

// Close closes the current file; further writes fail.
func (w *RotatingWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
