package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"gstored/internal/engine"
	"gstored/internal/rdf"
)

// referenceResultsJSON is the original reflection-based serializer
// (map[string]jsonTerm per row through json.Marshal), kept as the
// byte-for-byte oracle for the hand-rolled fast path.
func referenceResultsJSON(dict *rdf.Dictionary, vars []string, rows []engine.Row) ([]byte, error) {
	var w bytes.Buffer
	head, err := json.Marshal(vars)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&w, `{"head":{"vars":%s},"results":{"bindings":[`, head)
	binding := make(map[string]jsonTerm, len(vars))
	for n, row := range rows {
		clear(binding)
		for i, name := range vars {
			if i >= len(row) || row[i] == rdf.NoTerm {
				continue
			}
			t, ok := dict.Decode(row[i])
			if !ok {
				return nil, fmt.Errorf("unknown term ID %d", row[i])
			}
			binding[name] = termJSON(t)
		}
		enc, err := json.Marshal(binding)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			w.WriteByte(',')
		}
		w.Write(enc)
	}
	w.WriteString("]}}\n")
	return w.Bytes(), nil
}

// TestWriteResultsJSONMatchesReference pins the fast path to the exact
// bytes encoding/json produced, across the characters where a hand
// escaper can drift: HTML-sensitive bytes, control characters, invalid
// UTF-8, U+2028/U+2029, language tags, and datatypes.
func TestWriteResultsJSONMatchesReference(t *testing.T) {
	dict := rdf.NewDictionary()
	terms := []rdf.Term{
		rdf.NewIRI("http://example.org/a"),
		rdf.NewIRI("http://example.org/q?x=1&y=<2>"),
		rdf.NewBlank("b0"),
		rdf.NewLiteral("plain"),
		rdf.NewLiteral(`quotes " and \ backslash`),
		rdf.NewLiteral("tab\tnewline\ncarriage\rbell\x07null\x00"),
		rdf.NewLiteral("html <script>&amp;</script>"),
		rdf.NewLiteral("line sep \u2028 para sep \u2029 end"),
		rdf.NewLiteral("invalid utf8 \xff\xfe tail"),
		rdf.NewLiteral("snow ☃ emoji \U0001F600"),
		rdf.NewLangLiteral("bonjour", "fr"),
		rdf.NewLangLiteral("weird<&>", "en-GB"),
		rdf.NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer"),
		rdf.NewTypedLiteral("<>&", "http://example.org/dt?a=1&b=2"),
	}
	ids := make([]rdf.TermID, len(terms))
	for i, tm := range terms {
		ids[i] = dict.Encode(tm)
	}

	cases := []struct {
		name string
		vars []string
		rows []engine.Row
	}{
		{"empty", []string{"x", "y"}, nil},
		{"one-var", []string{"x"}, []engine.Row{{ids[0]}, {ids[3]}}},
		{
			// Variable names deliberately out of sorted order, with one
			// needing escaping, so the sorted-key emission is exercised.
			"unsorted-vars",
			[]string{"zeta", "alpha", `we"ird`, "mid"},
			[]engine.Row{
				{ids[1], ids[4], ids[10], ids[12]},
				{ids[5], rdf.NoTerm, ids[7], ids[8]},
				{rdf.NoTerm, rdf.NoTerm, rdf.NoTerm, rdf.NoTerm},
			},
		},
		{
			"short-rows",
			[]string{"a", "b", "c"},
			[]engine.Row{{ids[2]}, {ids[6], ids[9]}, {}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := referenceResultsJSON(dict, tc.vars, tc.rows)
			if err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			if err := WriteResultsJSON(&got, dict, tc.vars, SliceSeq(tc.rows)); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Fatalf("fast path diverged from reference\n got: %s\nwant: %s", got.Bytes(), want)
			}
			var doc map[string]any
			if err := json.Unmarshal(got.Bytes(), &doc); err != nil {
				t.Fatalf("output is not valid JSON: %v", err)
			}
		})
	}

	// Randomized sweep: every term in every slot, random widths and
	// unbound holes, still byte-identical.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		nv := 1 + rng.Intn(4)
		vars := make([]string, nv)
		for i := range vars {
			// Suffix keeps names unique: engine projections never repeat a
			// variable, and the map-based reference would silently dedupe.
			vars[i] = fmt.Sprintf("v%c%d", 'a'+rng.Intn(6), i)
		}
		rows := make([]engine.Row, rng.Intn(8))
		for r := range rows {
			row := make(engine.Row, rng.Intn(nv+2))
			for c := range row {
				if rng.Intn(4) == 0 {
					row[c] = rdf.NoTerm
				} else {
					row[c] = ids[rng.Intn(len(ids))]
				}
			}
			rows[r] = row
		}
		want, err := referenceResultsJSON(dict, vars, rows)
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := WriteResultsJSON(&got, dict, vars, SliceSeq(rows)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("trial %d diverged\nvars: %q\n got: %s\nwant: %s", trial, vars, got.Bytes(), want)
		}
	}
}

// TestAppendJSONStringMatchesEncodingJSON fuzzes the string escaper
// against encoding/json directly.
func TestAppendJSONStringMatchesEncodingJSON(t *testing.T) {
	samples := []string{
		"", "plain", `"`, `\`, "<>&", "\n\r\t", "\x00\x1f\x7f",
		"\u2028\u2029", "\xff", "a\xc3\x28b", "héllo wörld", "日本語",
		"mix \"<&>\" \n \xff \u2028 ok",
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		b := make([]byte, rng.Intn(24))
		for j := range b {
			b[j] = byte(rng.Intn(256))
		}
		samples = append(samples, string(b))
	}
	for _, s := range samples {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		got := appendJSONString(nil, s)
		if !bytes.Equal(got, want) {
			t.Fatalf("escape mismatch for %q\n got: %s\nwant: %s", s, got, want)
		}
	}
}
