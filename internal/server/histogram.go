package server

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// histBuckets are the upper bounds (seconds, inclusive) of the latency
// histograms, spanning sub-millisecond cache hits to the 30s query
// timeout; observations beyond the last bound land in the implicit +Inf
// bucket. An array (not a slice) so the zero Histogram is ready to use.
var histBuckets = [...]float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Histogram is a fixed-bucket latency histogram in the Prometheus
// exposition model: cumulative le-labeled buckets plus _sum and _count.
// The zero value is ready to use; Observe is lock-free (one atomic add
// per bucket and sum), so it sits on the serving hot path without
// contending the way a mutexed summary would.
type Histogram struct {
	// buckets counts observations per bound, non-cumulative; the +Inf
	// overflow lives in the final slot. Cumulation happens at scrape.
	buckets [len(histBuckets) + 1]atomic.Int64
	sumNano atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	secs := d.Seconds()
	i := 0
	for ; i < len(histBuckets); i++ {
		if secs <= histBuckets[i] {
			break
		}
	}
	h.buckets[i].Add(1)
	h.sumNano.Add(int64(d))
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// labeledHistogram pairs one histogram with its label value for
// exposition (e.g. outcome="hit" or stage="partial").
type labeledHistogram struct {
	label string
	h     *Histogram
}

// writeHistograms renders one histogram family in the Prometheus text
// format: a single HELP/TYPE header, then per label value the cumulative
// le buckets (with the mandatory +Inf), _sum and _count series.
func writeHistograms(w io.Writer, name, help, labelName string, hs []labeledHistogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, lh := range hs {
		var cum int64
		for i, bound := range histBuckets {
			cum += lh.h.buckets[i].Load()
			fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", name, labelName, lh.label, formatBound(bound), cum)
		}
		cum += lh.h.buckets[len(histBuckets)].Load()
		fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, labelName, lh.label, cum)
		fmt.Fprintf(w, "%s_sum{%s=%q} %v\n", name, labelName, lh.label, seconds(lh.h.sumNano.Load()))
		fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, labelName, lh.label, cum)
	}
}

// formatBound renders a bucket bound the way Prometheus clients do:
// shortest decimal form ("0.005", "1", "30").
func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}
