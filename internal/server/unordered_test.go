package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"testing"
	"time"

	"gstored"
)

// TestUnorderedServeConformance drives the -unordered serve path over a
// small database: DISTINCT dedups, LIMIT bounds, the X-Cache header
// reports STREAM, and nothing is admitted to the result cache.
func TestUnorderedServeConformance(t *testing.T) {
	g := gstored.NewGraph()
	for s, o := range map[string]string{"a1": "b", "a2": "b", "a3": "c", "a4": "c", "a5": "c"} {
		g.AddIRIs("http://ex/"+s, "http://ex/knows", "http://ex/"+o)
	}
	db, err := gstored.Open(g, gstored.Config{Sites: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, db, Config{Unordered: true})

	for _, c := range []struct {
		query string
		want  int
	}{
		{`SELECT ?y WHERE { ?x <http://ex/knows> ?y }`, 5},
		{`SELECT DISTINCT ?y WHERE { ?x <http://ex/knows> ?y }`, 2},
		{`SELECT DISTINCT ?y WHERE { ?x <http://ex/knows> ?y } LIMIT 1`, 1},
		{`SELECT ?y WHERE { ?x <http://ex/knows> ?y } LIMIT 2 OFFSET 4`, 1},
		{`SELECT ?y WHERE { ?x <http://ex/knows> ?y } LIMIT 0`, 0},
	} {
		resp, doc := getJSONc(ts.URL, c.query)
		if resp == nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("query %q failed", c.query)
		}
		if got := resp.Header.Get("X-Cache"); got != "STREAM" {
			t.Errorf("query %q: X-Cache = %q, want STREAM", c.query, got)
		}
		if len(doc.Results.Bindings) != c.want {
			t.Errorf("query %q: %d bindings, want %d", c.query, len(doc.Results.Bindings), c.want)
		}
	}
	// Streamed responses are never materialized, so nothing can be cached.
	if st := s.CacheStats(); st.Entries != 0 {
		t.Errorf("unordered serving populated the cache: %+v", st)
	}
	// A distinct query emitted a set drawn from {b, c}.
	_, doc := getJSONc(ts.URL, `SELECT DISTINCT ?y WHERE { ?x <http://ex/knows> ?y }`)
	var vals []string
	for _, b := range doc.Results.Bindings {
		vals = append(vals, b["y"].Value)
	}
	sort.Strings(vals)
	if fmt.Sprint(vals) != fmt.Sprint([]string{"http://ex/b", "http://ex/c"}) {
		t.Errorf("distinct values = %v", vals)
	}
}

// TestUnorderedLimitStreamsEarly is the acceptance scenario: LIMIT 10 on
// a ≥100k-row LUBM query under -unordered ships bounded bytes and
// cancels the engine's remaining work, observable through the
// early-termination counter and the engine row counters (10 rows
// produced, not 168,885).
func TestUnorderedLimitStreamsEarly(t *testing.T) {
	if testing.Short() {
		t.Skip("LUBM build; skipped in -short")
	}
	ds := gstored.GenerateLUBM(1)
	db, err := gstored.Open(ds.Graph, gstored.Config{Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, db, Config{Unordered: true, QueryTimeout: 5 * time.Minute})

	q := largeCrossQuery() + " LIMIT 10"
	resp, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(q))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "STREAM" {
		t.Errorf("X-Cache = %q, want STREAM", got)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// 10 rows of 8 IRI bindings each serialize to a few KB; the full
	// 168,885-row answer is tens of MB. A loose 64 KiB ceiling proves the
	// response was bounded by the LIMIT, not the result size.
	if len(body) > 64<<10 {
		t.Errorf("LIMIT 10 response is %d bytes; the limit did not bound the stream", len(body))
	}
	var doc sparqlJSON
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("response is not valid JSON (truncated stream?): %v", err)
	}
	if len(doc.Results.Bindings) != 10 {
		t.Errorf("bindings = %d, want 10", len(doc.Results.Bindings))
	}
	if n := s.metrics.EarlyStops.Load(); n != 1 {
		t.Errorf("gstored_early_terminations_total = %d, want 1 (engine kept running past the limit?)", n)
	}
	if n := s.metrics.EngineRuns.Load(); n != 1 {
		t.Errorf("engine runs = %d, want 1", n)
	}
	if n := s.metrics.Matches.Load(); n != 10 {
		t.Errorf("gstored_matches_total = %d, want 10 — the engine materialized more than the limit", n)
	}
}

// TestUnorderedFirstRowBeforeCompletion pins first-row-early delivery at
// the HTTP layer: on the large cross query, the first body bytes arrive
// while the engine execution is still in flight (the engine-run counter
// has not yet been bumped, which happens only after the stream ends).
func TestUnorderedFirstRowBeforeCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("LUBM build; skipped in -short")
	}
	ds := gstored.GenerateLUBM(1)
	db, err := gstored.Open(ds.Graph, gstored.Config{Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, db, Config{Unordered: true, QueryTimeout: 5 * time.Minute})

	resp, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(largeCrossQuery()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Read one byte: with first-row flushing this returns as soon as the
	// first row is serialized, strictly before the engine finishes the
	// remaining ~168k rows (EngineRuns is only incremented afterwards).
	var b [1]byte
	if _, err := resp.Body.Read(b[:]); err != nil {
		t.Fatal(err)
	}
	if n := s.metrics.EngineRuns.Load(); n != 0 {
		t.Errorf("first byte arrived only after the engine completed (EngineRuns=%d)", n)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
}

// TestUnorderedFailureBeforeFirstRowGetsRealStatus pins the deferred
// commit: an execution that dies before producing any row must still
// reach the client as a real HTTP error, not as a well-formed empty
// result document claiming success.
func TestUnorderedFailureBeforeFirstRowGetsRealStatus(t *testing.T) {
	s, ts := newTestServer(t, testDB(t), Config{Unordered: true, QueryTimeout: time.Nanosecond})
	resp, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(knowsChain))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d (body %q), want 504 — a pre-first-row failure must not masquerade as an empty 200", resp.StatusCode, body)
	}
	if n := s.metrics.Timeouts.Load(); n != 1 {
		t.Errorf("timeouts = %d, want 1", n)
	}
}

// TestFailQueryClassifiesClientDisconnect pins the disconnect/error
// split: context.Canceled is the client's own fault and must count in
// gstored_client_disconnects_total, leaving the error counter — the one
// operator dashboards page on — untouched. Server faults still count as
// errors, deadlines as timeouts.
func TestFailQueryClassifiesClientDisconnect(t *testing.T) {
	s, _ := newTestServer(t, testDB(t), Config{})

	s.failQuery(httptest.NewRecorder(), context.Canceled)
	if got := s.metrics.ClientDisconnects.Load(); got != 1 {
		t.Errorf("client disconnects = %d, want 1", got)
	}
	if got := s.metrics.Errors.Load(); got != 0 {
		t.Errorf("errors = %d after a client disconnect, want 0 (dashboards would page)", got)
	}

	s.failQuery(httptest.NewRecorder(), fmt.Errorf("disk on fire"))
	if got := s.metrics.Errors.Load(); got != 1 {
		t.Errorf("errors = %d after a server fault, want 1", got)
	}

	s.failQuery(httptest.NewRecorder(), context.DeadlineExceeded)
	if got := s.metrics.Timeouts.Load(); got != 1 {
		t.Errorf("timeouts = %d, want 1", got)
	}
	if got := s.metrics.ClientDisconnects.Load(); got != 1 {
		t.Errorf("client disconnects = %d after unrelated failures, want still 1", got)
	}
}

// TestClientDisconnectCountedOnLiveQuery drives a real disconnect: the
// client hangs up while its uncontended query is queued behind a parked
// worker; the server must record a disconnect, not an error.
func TestClientDisconnectCountedOnLiveQuery(t *testing.T) {
	s, ts := newTestServer(t, testDB(t), Config{Workers: 1, MaxInFlight: 8})

	// Park the only worker so the query cannot start.
	started := make(chan struct{})
	release := make(chan struct{})
	go s.sched.Run(context.Background(), func(context.Context) error {
		close(started)
		<-release
		return nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		req, _ := http.NewRequestWithContext(ctx, "GET",
			ts.URL+"/sparql?query="+url.QueryEscape(knowsChain), nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	// Wait for the request to open its flight, then hang up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.flights.mu.Lock()
		n := len(s.flights.m)
		s.flights.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("query never opened a flight")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
	// Give the server a moment to observe the closed connection (the
	// request context cancels asynchronously), then free the worker: it
	// dequeues the query, finds its (detached but disconnect-cancelled)
	// context expired, and fails it without running.
	time.Sleep(50 * time.Millisecond)
	close(release)

	for s.metrics.ClientDisconnects.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("disconnect not recorded (errors=%d)", s.metrics.Errors.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.metrics.Errors.Load(); got != 0 {
		t.Errorf("errors = %d after a pure client disconnect, want 0", got)
	}
}
