package server

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	if h.Count() != 0 {
		t.Fatalf("zero histogram count = %d", h.Count())
	}
	h.Observe(300 * time.Microsecond) // <= 0.0005: first bucket
	h.Observe(500 * time.Microsecond) // == 0.0005: bounds are inclusive
	h.Observe(700 * time.Millisecond) // between 0.5 and 1
	h.Observe(2 * time.Minute)        // past the last bound: +Inf
	if got := h.Count(); got != 4 {
		t.Errorf("count = %d, want 4", got)
	}
	if got := h.buckets[0].Load(); got != 2 {
		t.Errorf("first bucket = %d, want 2 (inclusive upper bound)", got)
	}
	if got := h.buckets[len(histBuckets)].Load(); got != 1 {
		t.Errorf("+Inf bucket = %d, want 1", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Errorf("count = %d, want 8000", got)
	}
}

func TestWriteHistogramsExposition(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Millisecond)
	a.Observe(time.Second)
	b.Observe(time.Minute)
	var sb strings.Builder
	writeHistograms(&sb, "test_seconds", "Test.", "kind", []labeledHistogram{
		{label: "a", h: &a}, {label: "b", h: &b},
	})
	out := sb.String()

	if !strings.HasPrefix(out, "# HELP test_seconds Test.\n# TYPE test_seconds histogram\n") {
		t.Errorf("missing header:\n%s", out)
	}
	for _, want := range []string{
		`test_seconds_bucket{kind="a",le="0.001"} 1`,  // 1ms lands exactly on the bound
		`test_seconds_bucket{kind="a",le="1"} 2`,      // cumulative: both observations
		`test_seconds_bucket{kind="a",le="+Inf"} 2`,   // mandatory +Inf
		`test_seconds_count{kind="a"} 2`,              // equals +Inf
		`test_seconds_sum{kind="a"} 1.001`,            // 1ms + 1s
		`test_seconds_bucket{kind="b",le="30"} 0`,     // a minute exceeds every bound
		`test_seconds_bucket{kind="b",le="+Inf"} 1`,
		`test_seconds_count{kind="b"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
}
