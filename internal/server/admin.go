package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"gstored"
)

// The admin surface of the advisor loop:
//
//	GET  /advisor      evaluate the live workload against (strategy, k)
//	                   candidates and report a recommendation + cost table
//	POST /repartition  apply a partitioning online — either an explicit
//	                   {"strategy": ..., "k": ...} body or, with an empty
//	                   body, the advisor's current recommendation
//
// Both are JSON in/out and deliberately unauthenticated, like /metrics:
// the server is an internal component; put it behind your proxy.

// advisorCost is the JSON rendering of one cost evaluation.
type advisorCost struct {
	Cost             float64 `json:"cost"`
	EV               float64 `json:"ev"`
	MaxFragmentEdges int     `json:"max_fragment_edges"`
	Crossing         int     `json:"crossing_edges"`
	WeightedCrossing float64 `json:"weighted_crossing"`
}

func costJSON(c gstored.CostBreakdown) advisorCost {
	return advisorCost{
		Cost:             c.Cost,
		EV:               c.EV,
		MaxFragmentEdges: c.MaxFragmentEdges,
		Crossing:         c.NumCrossing,
		WeightedCrossing: c.WeightedCrossing,
	}
}

// advisorCandidate is one (strategy, k) row of the /advisor cost table.
type advisorCandidate struct {
	Strategy     string      `json:"strategy"`
	K            int         `json:"k"`
	DataCost     advisorCost `json:"data_cost"`
	WorkloadCost advisorCost `json:"workload_cost"`
}

// advisorResponse is the /advisor payload.
type advisorResponse struct {
	// Current identifies the partitioning serving traffic now.
	Current struct {
		Strategy string `json:"strategy"`
		K        int    `json:"k"`
		Epoch    uint64 `json:"epoch"`
	} `json:"current"`
	// Workload summarizes the query log the recommendation is based on.
	Workload struct {
		Queries         uint64 `json:"queries"`
		Distinct        int    `json:"distinct"`
		Evicted         uint64 `json:"evicted"`
		PartialMatches  uint64 `json:"partial_matches"`
		CrossingMatches uint64 `json:"crossing_matches"`
		ShipmentBytes   int64  `json:"shipment_bytes"`
	} `json:"workload"`
	// Recommended minimizes the workload-weighted Section VII cost.
	Recommended struct {
		Strategy string `json:"strategy"`
		K        int    `json:"k"`
	} `json:"recommended"`
	// DataOnly is what the unweighted Section VII model would pick over
	// the same candidates; when it differs from Recommended, the
	// workload changed the verdict.
	DataOnly struct {
		Strategy string `json:"strategy"`
		K        int    `json:"k"`
	} `json:"data_only"`
	DiffersFromDataOnly bool               `json:"differs_from_data_only"`
	Candidates          []advisorCandidate `json:"candidates"`
}

// advisorKs resolves the candidate site counts: an explicit ?k=4,8,12
// wins, then Config.AdvisorKs, then the current site count.
func (s *Server) advisorKs(r *http.Request) ([]int, error) {
	if raw := r.URL.Query().Get("k"); raw != "" {
		var ks []int
		for _, part := range strings.Split(raw, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || k <= 0 {
				return nil, fmt.Errorf("invalid k %q (want positive integers, comma-separated)", part)
			}
			ks = append(ks, k)
		}
		return ks, nil
	}
	if len(s.cfg.AdvisorKs) > 0 {
		return s.cfg.AdvisorKs, nil
	}
	return []int{s.db.NumSites()}, nil
}

// advise runs the advisor over the live query log.
func (s *Server) advise(ks []int) (*gstored.Recommendation, gstored.QueryLogSnapshot, error) {
	var snap gstored.QueryLogSnapshot
	if s.qlog != nil {
		snap = s.qlog.Snapshot()
	}
	s.metrics.AdvisorRuns.Add(1)
	rec, err := s.db.Advise(snap.Workload(0), ks...)
	return rec, snap, err
}

func (s *Server) handleAdvisor(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		http.Error(w, "use GET", http.StatusMethodNotAllowed)
		return
	}
	ks, err := s.advisorKs(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rec, snap, err := s.advise(ks)
	if err != nil {
		s.metrics.Errors.Add(1)
		http.Error(w, fmt.Sprintf("advisor failed: %v", err), http.StatusInternalServerError)
		return
	}
	var resp advisorResponse
	resp.Current.Strategy, resp.Current.K, resp.Current.Epoch = s.db.ClusterInfo()
	resp.Workload.Queries = snap.Queries
	resp.Workload.Distinct = snap.Distinct
	resp.Workload.Evicted = snap.Evicted
	resp.Workload.PartialMatches = snap.PartialMatches
	resp.Workload.CrossingMatches = snap.CrossingMatches
	resp.Workload.ShipmentBytes = snap.ShipmentBytes
	resp.Recommended.Strategy = rec.Strategy
	resp.Recommended.K = rec.K
	resp.DataOnly.Strategy = rec.DataStrategy
	resp.DataOnly.K = rec.DataK
	resp.DiffersFromDataOnly = rec.Differs()
	for _, c := range rec.Candidates {
		resp.Candidates = append(resp.Candidates, advisorCandidate{
			Strategy:     c.Strategy,
			K:            c.K,
			DataCost:     costJSON(c.DataCost),
			WorkloadCost: costJSON(c.WorkloadCost),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil && r.Context().Err() != nil {
		s.metrics.ClientDisconnects.Add(1)
	}
}

// repartitionRequest is the optional POST /repartition body. An empty
// body applies the advisor's current recommendation.
type repartitionRequest struct {
	Strategy string `json:"strategy"`
	K        int    `json:"k"`
}

func (s *Server) handleRepartition(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		http.Error(w, "use POST", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<16))
	if err != nil {
		http.Error(w, fmt.Sprintf("reading body: %v", err), http.StatusBadRequest)
		return
	}
	var req repartitionRequest
	if len(strings.TrimSpace(string(body))) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, fmt.Sprintf("malformed body: %v (want {\"strategy\": ..., \"k\": ...} or empty)", err), http.StatusBadRequest)
			return
		}
	}

	var assign *gstored.Assignment
	switch {
	case req.Strategy == "" && req.K == 0:
		// Advisor-driven: apply the recommendation for the configured ks.
		ks, kerr := s.advisorKs(r)
		if kerr != nil {
			http.Error(w, kerr.Error(), http.StatusBadRequest)
			return
		}
		rec, _, aerr := s.advise(ks)
		if aerr != nil {
			s.metrics.Errors.Add(1)
			http.Error(w, fmt.Sprintf("advisor failed: %v", aerr), http.StatusInternalServerError)
			return
		}
		assign = rec.Assignment
	case req.Strategy != "" && req.K > 0:
		assign, err = s.db.PlanPartition(req.Strategy, req.K)
		if err != nil {
			http.Error(w, fmt.Sprintf("planning partition: %v", err), http.StatusBadRequest)
			return
		}
	default:
		http.Error(w, "provide both strategy and k, or neither (advisor-driven)", http.StatusBadRequest)
		return
	}

	if err := s.db.Repartition(assign); err != nil {
		s.metrics.Errors.Add(1)
		http.Error(w, fmt.Sprintf("repartition failed: %v", err), http.StatusInternalServerError)
		return
	}
	s.metrics.Repartitions.Add(1)
	// Sync the cache to the new epoch immediately: queries would do it
	// lazily on their next arrival, but flushing here frees the dead
	// generation's entries right away and makes the flush observable to
	// the caller via gstored_cache_flushes_total.
	s.syncEpoch()
	// One consistent snapshot: a racing swap must not tear the tuple
	// (though it may report the racer's generation rather than ours).
	strategy, k, epoch := s.db.ClusterInfo()
	w.Header().Set("Content-Type", "application/json")
	err = json.NewEncoder(w).Encode(map[string]any{
		"applied": map[string]any{
			"strategy": strategy,
			"k":        k,
		},
		"epoch": epoch,
	})
	if err != nil && r.Context().Err() != nil {
		s.metrics.ClientDisconnects.Add(1)
	}
}
