package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"gstored"
)

// testDB builds a three-site database over a small social graph.
func testDB(t *testing.T) *gstored.DB {
	t.Helper()
	g := gstored.NewGraph()
	g.AddIRIs("http://ex/alice", "http://ex/knows", "http://ex/bob")
	g.AddIRIs("http://ex/bob", "http://ex/knows", "http://ex/carol")
	g.AddIRIs("http://ex/carol", "http://ex/knows", "http://ex/alice")
	g.Add(gstored.IRI("http://ex/carol"), gstored.IRI("http://ex/name"), gstored.LangLiteral("Carol", "en"))
	db, err := gstored.Open(g, gstored.Config{Sites: 3})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func newTestServer(t *testing.T, db *gstored.DB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(db, cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// sparqlJSON is the SPARQL 1.1 JSON results document shape.
type sparqlJSON struct {
	Head struct {
		Vars []string `json:"vars"`
	} `json:"head"`
	Results struct {
		Bindings []map[string]struct {
			Type     string `json:"type"`
			Value    string `json:"value"`
			Lang     string `json:"xml:lang"`
			Datatype string `json:"datatype"`
		} `json:"bindings"`
	} `json:"results"`
}

func getJSON(t *testing.T, base, query string) (*http.Response, sparqlJSON) {
	t.Helper()
	resp, err := http.Get(base + "/sparql?query=" + url.QueryEscape(query))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var doc sparqlJSON
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("bad JSON (%s): %v", body, err)
		}
	}
	return resp, doc
}

const knowsChain = `SELECT ?x ?n WHERE { ?x <http://ex/knows> ?y . ?y <http://ex/name> ?n }`

func TestSparqlGetJSON(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), Config{})
	resp, doc := getJSON(t, ts.URL, knowsChain)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeJSON {
		t.Errorf("Content-Type = %q", ct)
	}
	if resp.Header.Get("X-Cache") != "MISS" {
		t.Errorf("first request should be a MISS, got %q", resp.Header.Get("X-Cache"))
	}
	if len(doc.Head.Vars) != 2 || doc.Head.Vars[0] != "x" || doc.Head.Vars[1] != "n" {
		t.Errorf("vars = %v", doc.Head.Vars)
	}
	if len(doc.Results.Bindings) != 1 {
		t.Fatalf("bindings = %v", doc.Results.Bindings)
	}
	b := doc.Results.Bindings[0]
	if b["x"].Type != "uri" || b["x"].Value != "http://ex/bob" {
		t.Errorf("x = %+v", b["x"])
	}
	if b["n"].Type != "literal" || b["n"].Value != "Carol" || b["n"].Lang != "en" {
		t.Errorf("n = %+v", b["n"])
	}
}

func TestCacheHitOnVariableRenamedQuery(t *testing.T) {
	s, ts := newTestServer(t, testDB(t), Config{})
	if resp, _ := getJSON(t, ts.URL, knowsChain); resp.Header.Get("X-Cache") != "MISS" {
		t.Fatal("first request should miss")
	}
	renamed := `SELECT ?who ?label WHERE { ?who <http://ex/knows> ?mid . ?mid <http://ex/name> ?label }`
	resp, doc := getJSON(t, ts.URL, renamed)
	if resp.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("renamed variant should hit, got %q", resp.Header.Get("X-Cache"))
	}
	// The hit is served under the submitted query's variable names.
	if len(doc.Head.Vars) != 2 || doc.Head.Vars[0] != "who" || doc.Head.Vars[1] != "label" {
		t.Errorf("vars = %v", doc.Head.Vars)
	}
	b := doc.Results.Bindings[0]
	if b["who"].Value != "http://ex/bob" || b["label"].Value != "Carol" {
		t.Errorf("binding = %v", b)
	}
	st := s.CacheStats()
	if st.Hits != 1 || st.Misses < 1 {
		t.Errorf("cache stats = %+v", st)
	}
}

func TestSparqlPostForms(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), Config{})
	resp, err := http.PostForm(ts.URL+"/sparql", url.Values{"query": {knowsChain}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("form POST status = %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/sparql", "application/sparql-query", strings.NewReader(knowsChain))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("raw POST status = %d", resp.StatusCode)
	}
}

func TestSparqlTSV(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), Config{})
	req, _ := http.NewRequest("GET", ts.URL+"/sparql?query="+url.QueryEscape(knowsChain), nil)
	req.Header.Set("Accept", ContentTypeTSV)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeTSV {
		t.Errorf("Content-Type = %q", ct)
	}
	want := "?x\t?n\n<http://ex/bob>\t\"Carol\"@en\n"
	if string(body) != want {
		t.Errorf("TSV = %q, want %q", body, want)
	}
}

func TestSparqlErrors(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), Config{})
	cases := []struct {
		name string
		do   func() (*http.Response, error)
		want int
	}{
		{"missing query", func() (*http.Response, error) { return http.Get(ts.URL + "/sparql") }, http.StatusBadRequest},
		{"syntax error", func() (*http.Response, error) {
			return http.Get(ts.URL + "/sparql?query=" + url.QueryEscape("SELECT WHERE"))
		}, http.StatusBadRequest},
		{"bad method", func() (*http.Response, error) {
			req, _ := http.NewRequest("DELETE", ts.URL+"/sparql", nil)
			return http.DefaultClient.Do(req)
		}, http.StatusMethodNotAllowed},
		{"bad content type", func() (*http.Response, error) {
			return http.Post(ts.URL+"/sparql", "application/xml", strings.NewReader("x"))
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := tc.do()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

func TestAdmissionControlSheds503(t *testing.T) {
	s, ts := newTestServer(t, testDB(t), Config{MaxInFlight: 1, Workers: 1})
	// Occupy the scheduler's only slot with a blocking task so the next
	// HTTP query is shed deterministically.
	started := make(chan struct{})
	release := make(chan struct{})
	go s.sched.Run(context.Background(), func(context.Context) error {
		close(started)
		<-release
		return nil
	})
	<-started
	defer close(release)

	resp, _ := getJSON(t, ts.URL, knowsChain)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 should carry Retry-After")
	}
	if n := s.metrics.Rejected.Load(); n != 1 {
		t.Errorf("rejected counter = %d", n)
	}
}

func TestQueryTimeout504(t *testing.T) {
	s, ts := newTestServer(t, testDB(t), Config{QueryTimeout: time.Nanosecond})
	resp, _ := getJSON(t, ts.URL, knowsChain)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if n := s.metrics.Timeouts.Load(); n != 1 {
		t.Errorf("timeout counter = %d", n)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), Config{})
	if _, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(knowsChain)); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" || health["sites"] != float64(3) {
		t.Errorf("healthz = %v", health)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{
		"gstored_queries_total 1",
		"gstored_cache_misses_total 1",
		"gstored_cache_entries 1",
		"gstored_stage_seconds_total{stage=\"partial\"}",
		"gstored_queries_inflight 0",
	} {
		if !strings.Contains(string(body), metric) {
			t.Errorf("metrics missing %q in:\n%s", metric, body)
		}
	}
}

// TestUnknownConstantQuery pins the read-only parse path: querying for a
// term absent from the data returns an empty result set and must not
// grow the shared dictionary (a client could otherwise leak server
// memory one constant per request).
func TestUnknownConstantQuery(t *testing.T) {
	db := testDB(t)
	_, ts := newTestServer(t, db, Config{})
	before := db.Graph.Dict.Len()
	for i := 0; i < 3; i++ {
		q := fmt.Sprintf(`SELECT ?x WHERE { ?x <http://ex/knows> <http://junk/nobody%d> }`, i)
		resp, doc := getJSON(t, ts.URL, q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if len(doc.Results.Bindings) != 0 {
			t.Errorf("unknown constant matched %v", doc.Results.Bindings)
		}
	}
	if after := db.Graph.Dict.Len(); after != before {
		t.Errorf("dictionary grew from %d to %d terms", before, after)
	}
}

func TestCacheDisabled(t *testing.T) {
	s, ts := newTestServer(t, testDB(t), Config{CacheEntries: -1})
	for i := 0; i < 2; i++ {
		resp, _ := getJSON(t, ts.URL, knowsChain)
		if resp.Header.Get("X-Cache") != "MISS" {
			t.Fatalf("request %d: caching disabled but got %q", i, resp.Header.Get("X-Cache"))
		}
	}
	if st := s.CacheStats(); st != (CacheStats{}) {
		t.Errorf("disabled cache stats = %+v", st)
	}
}
