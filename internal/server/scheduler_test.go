package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestSchedulerRunsTasks(t *testing.T) {
	s := NewScheduler(2, 4)
	defer s.Close()
	ran := false
	err := s.Run(context.Background(), func(ctx context.Context) error {
		ran = true
		return nil
	})
	if err != nil || !ran {
		t.Fatalf("Run = %v, ran = %v", err, ran)
	}
	sentinel := errors.New("boom")
	if err := s.Run(context.Background(), func(context.Context) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("Run should surface the task error, got %v", err)
	}
}

func TestSchedulerAdmissionControl(t *testing.T) {
	s := NewScheduler(1, 2)
	defer s.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	errs := make(chan error, 2)
	// Task 1 occupies the only worker; task 2 sits admitted in the queue.
	go func() {
		errs <- s.Run(context.Background(), func(context.Context) error {
			close(started)
			<-release
			return nil
		})
	}()
	<-started
	go func() {
		errs <- s.Run(context.Background(), func(context.Context) error { return nil })
	}()
	// Wait for task 2 to be admitted (in-flight reaches the limit).
	deadline := time.After(2 * time.Second)
	for s.InFlight() < 2 {
		select {
		case <-deadline:
			t.Fatal("second task never admitted")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// Task 3 exceeds the in-flight limit and must be shed immediately.
	if err := s.Run(context.Background(), func(context.Context) error { return nil }); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-limit Run = %v, want ErrOverloaded", err)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("admitted task failed: %v", err)
		}
	}
	if n := s.InFlight(); n != 0 {
		t.Errorf("in-flight after drain = %d", n)
	}
}

func TestSchedulerSkipsExpiredQueuedTask(t *testing.T) {
	s := NewScheduler(1, 4)
	defer s.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	go s.Run(context.Background(), func(context.Context) error {
		close(started)
		<-release
		return nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expires while the task waits in the queue
	errCh := make(chan error, 1)
	ran := false
	go func() {
		errCh <- s.Run(ctx, func(context.Context) error {
			ran = true
			return nil
		})
	}()
	close(release)
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("expired queued task = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("expired task must not run")
	}
}

func TestSchedulerCloseFailsQueuedTasks(t *testing.T) {
	s := NewScheduler(1, 4)
	started := make(chan struct{})
	release := make(chan struct{})
	go s.Run(context.Background(), func(context.Context) error {
		close(started)
		<-release
		return nil
	})
	<-started
	queued := make(chan error, 1)
	go func() {
		queued <- s.Run(context.Background(), func(context.Context) error { return nil })
	}()
	for s.InFlight() < 2 {
		time.Sleep(time.Millisecond)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release) // let the running task finish so Close can drain
	}()
	s.Close()
	if err := <-queued; !errors.Is(err, ErrClosed) && err != nil {
		t.Fatalf("queued task after Close = %v, want ErrClosed or nil", err)
	}
	// Run after Close must fail fast, not hang on a dead worker pool.
	if err := s.Run(context.Background(), func(context.Context) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run after Close = %v, want ErrClosed", err)
	}
}
