package server

import (
	"fmt"
	"testing"

	"gstored/internal/engine"
)

func entry(n int) *CachedResult {
	return &CachedResult{Rows: []engine.Row{{0}}, Stats: engine.Stats{NumMatches: n}}
}

func TestCacheHitMissCounters(t *testing.T) {
	c := NewCache(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache should miss")
	}
	c.Put("a", entry(1))
	got, ok := c.Get("a")
	if !ok || got.Stats.NumMatches != 1 {
		t.Fatalf("Get(a) = %v, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evictions != 0 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", entry(1))
	c.Put("b", entry(2))
	c.Get("a") // refresh a; b becomes least recently used
	c.Put("c", entry(3))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be resident")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := NewCache(2)
	c.Put("a", entry(1))
	c.Put("a", entry(9))
	got, ok := c.Get("a")
	if !ok || got.Stats.NumMatches != 9 {
		t.Fatalf("Get(a) = %v, %v", got, ok)
	}
	if st := c.Stats(); st.Entries != 1 || st.Evictions != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(8)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%16)
				if _, ok := c.Get(key); !ok {
					c.Put(key, entry(i))
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if st := c.Stats(); st.Entries > 8 {
		t.Errorf("cache exceeded capacity: %+v", st)
	}
	_ = done
}
