package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"strings"
	"sync"
	"testing"

	"gstored"
)

// TestEndToEndLUBM drives the acceptance scenario: a server over a
// generated LUBM dataset answers a benchmark query from many concurrent
// HTTP clients with results matching direct engine evaluation, and a
// variable-renamed repeat of the query is served from the result cache —
// all race-clean under go test -race.
func TestEndToEndLUBM(t *testing.T) {
	ds := gstored.GenerateLUBM(2)
	db, err := gstored.Open(ds.Graph, gstored.Config{Sites: 6})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{MaxInFlight: 32})
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()

	lq1, err := ds.Query("LQ1")
	if err != nil {
		t.Fatal(err)
	}
	want := expectedBindings(t, db, lq1.SPARQL)
	if len(want) == 0 {
		t.Fatal("LQ1 should have results on LUBM(2); empty baseline makes the test vacuous")
	}

	// ≥8 concurrent clients, several requests each, mixing LQ1 with other
	// benchmark queries so cache hits and engine runs interleave.
	const clients = 10
	const perClient = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				sparql := lq1.SPARQL
				expect := want
				if i == perClient-1 { // one different query per client
					other := ds.Queries[c%len(ds.Queries)]
					sparql = other.SPARQL
					expect = nil // checked for status only
				}
				got, err := fetchBindings(ts.URL, sparql)
				if err != nil {
					errs <- fmt.Errorf("client %d request %d: %w", c, i, err)
					return
				}
				if expect != nil && !equalBindings(got, expect) {
					errs <- fmt.Errorf("client %d request %d: got %d bindings, want %d", c, i, len(got), len(expect))
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Variable-renamed repeat of LQ1 must be a measured cache hit.
	hitsBefore := srv.CacheStats().Hits
	renamed := strings.NewReplacer("?x", "?prof", "?y", "?student", "?c", "?course").Replace(lq1.SPARQL)
	resp, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(renamed))
	if err != nil {
		t.Fatal(err)
	}
	var doc sparqlJSON
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("renamed LQ1 should hit the cache, got %q", resp.Header.Get("X-Cache"))
	}
	if hits := srv.CacheStats().Hits; hits <= hitsBefore {
		t.Errorf("cache hits did not increase: %d -> %d", hitsBefore, hits)
	}
	if got := bindingSet(doc, []string{"prof", "student", "course"}); !equalBindings(got, want) {
		t.Errorf("renamed query: got %d bindings, want %d", len(got), len(want))
	}
}

// expectedBindings evaluates sparql directly against db and returns the
// sorted multiset of projected rows as decoded term strings.
func expectedBindings(t *testing.T, db *gstored.DB, sparql string) []string {
	t.Helper()
	res, err := db.Query(sparql)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(res.Rows))
	for _, row := range db.Rows(res) {
		out = append(out, strings.Join(row, "\x1f"))
	}
	sort.Strings(out)
	return out
}

// fetchBindings GETs sparql from the server and returns the sorted
// multiset of bindings in head-var order.
func fetchBindings(base, sparql string) ([]string, error) {
	resp, err := http.Get(base + "/sparql?query=" + url.QueryEscape(sparql))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var doc sparqlJSON
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return bindingSet(doc, doc.Head.Vars), nil
}

// bindingSet renders each binding as a sorted-comparable string in the
// given column order, using the same N-Triples term forms as DB.Rows.
func bindingSet(doc sparqlJSON, vars []string) []string {
	out := make([]string, 0, len(doc.Results.Bindings))
	for _, b := range doc.Results.Bindings {
		cells := make([]string, len(vars))
		for i, v := range vars {
			term, ok := b[v]
			if !ok {
				cells[i] = "NULL"
				continue
			}
			switch term.Type {
			case "uri":
				cells[i] = "<" + term.Value + ">"
			case "bnode":
				cells[i] = "_:" + term.Value
			default:
				s := `"` + term.Value + `"`
				if term.Lang != "" {
					s += "@" + term.Lang
				} else if term.Datatype != "" {
					s += "^^<" + term.Datatype + ">"
				}
				cells[i] = s
			}
		}
		out = append(out, strings.Join(cells, "\x1f"))
	}
	sort.Strings(out)
	return out
}

func equalBindings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
