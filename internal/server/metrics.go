package server

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"gstored/internal/engine"
)

// Metrics aggregates serving-layer and engine counters. All fields are
// monotonic counters updated atomically; gauges are computed at scrape
// time. Rendered in the Prometheus text exposition format by Write.
type Metrics struct {
	Queries           atomic.Int64 // answered queries (cache hits included)
	Errors            atomic.Int64 // parse + execution failures (server faults only)
	ClientDisconnects atomic.Int64 // queries abandoned by their own client hanging up
	SlowLogDrops      atomic.Int64 // slow-query log lines lost to marshal or sink write failures
	Rejected          atomic.Int64 // admission-control 503s
	Timeouts          atomic.Int64 // per-query deadline expiries
	QueryNanos        atomic.Int64 // wall time spent answering (engine runs only)
	EngineRuns        atomic.Int64 // engine executions (misses that actually ran)
	Coalesced         atomic.Int64 // waiters served by a concurrent identical execution
	CacheBypass       atomic.Int64 // results too large for the cache row cap, streamed uncached
	EarlyStops        atomic.Int64 // unordered streaming executions cancelled once LIMIT was satisfied
	AdvisorRuns       atomic.Int64 // /advisor evaluations of the workload-weighted cost model
	Repartitions      atomic.Int64 // successful online partition hot-swaps
	CacheFlushes      atomic.Int64 // result-cache flushes triggered by epoch advances
	Updates           atomic.Int64 // SPARQL Update requests applied successfully
	TriplesInserted   atomic.Int64 // triples added by updates (set semantics)
	TriplesDeleted    atomic.Int64 // triples removed by updates (set semantics)

	// Engine per-stage aggregates across executed (non-cached) queries,
	// mirroring the paper's Tables I–III columns.
	CandidatesNanos atomic.Int64
	PartialNanos    atomic.Int64
	LECNanos        atomic.Int64
	AssemblyNanos   atomic.Int64
	ShipmentBytes   atomic.Int64
	Messages        atomic.Int64 // simulated inter-site messages
	CommNanos       atomic.Int64 // estimated communication time under the link model
	PartialMatches  atomic.Int64
	Matches         atomic.Int64

	// QueryDurations are client-facing request latencies (parse through
	// last response byte) bucketed by how the request was answered; the
	// sum-only gstored_query_seconds_total hides the distribution these
	// expose.
	QueryDurations [numOutcomes]Histogram
	// StageDurations distribute per-stage engine wall time over executed
	// (non-cached) queries, one histogram per paper stage.
	StageDurations [len(stageNames)]Histogram
}

// queryOutcome labels a request latency observation with how the
// request was answered.
type queryOutcome int

const (
	outcomeHit       queryOutcome = iota // served from the result cache
	outcomeMiss                          // executed the engine (cache misses and bypasses)
	outcomeCoalesced                     // shared a concurrent identical execution
	outcomeStream                        // unordered first-row-early delivery
	outcomeExplain                       // ?explain=1 diagnostic execution
	outcomeError                         // failed: parse error, timeout, overload, fault
	numOutcomes
)

var outcomeNames = [numOutcomes]string{"hit", "miss", "coalesced", "stream", "explain", "error"}

// stageNames are the per-stage histogram labels, ordered like the
// paper's pipeline.
var stageNames = [...]string{"candidates", "partial", "lec", "assembly"}

// Observe folds one completed engine execution into the aggregates.
func (m *Metrics) Observe(s engine.Stats, wall time.Duration) {
	m.QueryNanos.Add(int64(wall))
	m.CandidatesNanos.Add(int64(s.CandidatesTime))
	m.PartialNanos.Add(int64(s.PartialTime))
	m.LECNanos.Add(int64(s.LECTime))
	m.AssemblyNanos.Add(int64(s.AssemblyTime))
	m.ShipmentBytes.Add(s.TotalShipment)
	m.Messages.Add(s.Messages)
	m.CommNanos.Add(int64(s.EstimatedCommTime))
	m.PartialMatches.Add(int64(s.NumPartialMatches))
	m.Matches.Add(int64(s.NumMatches))
	for i, d := range [...]time.Duration{s.CandidatesTime, s.PartialTime, s.LECTime, s.AssemblyTime} {
		m.StageDurations[i].Observe(d)
	}
}

// ObserveOutcome records one request's client-facing latency under its
// outcome label.
func (m *Metrics) ObserveOutcome(o queryOutcome, wall time.Duration) {
	m.QueryDurations[o].Observe(wall)
}

func writeMetric(w io.Writer, name, help, typ string, value any) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, typ, name, value)
}

func seconds(nanos int64) float64 { return float64(nanos) / float64(time.Second) }

// Gauges carries the point-in-time values scraped alongside the
// counters: workload-log occupancy and the cluster generation.
type Gauges struct {
	QueryLogEntries int    // distinct queries resident in the workload log
	QueryLogQueries uint64 // queries observed by the log, evicted included
	Epoch           uint64 // current cluster generation (advances on repartition and data-changing update)
	Sites           int    // current fragment/site count
	// SiteUp maps site ID → whether the site answered the scrape's health
	// probe (in-process sites always do; worker-hosted sites answer a
	// real RPC round trip).
	SiteUp map[int]bool
}

// Write renders the counters, the cache statistics, and the scheduler
// and advisor-loop gauges in the Prometheus text exposition format.
func (m *Metrics) Write(w io.Writer, cache CacheStats, inFlight int64, uptime time.Duration, g Gauges) {
	writeMetric(w, "gstored_queries_total", "Queries answered, including cache hits.", "counter", m.Queries.Load())
	writeMetric(w, "gstored_query_errors_total", "Queries failed by parse or execution errors (client disconnects excluded).", "counter", m.Errors.Load())
	writeMetric(w, "gstored_client_disconnects_total", "Queries abandoned because their own client disconnected; not a server fault.", "counter", m.ClientDisconnects.Load())
	writeMetric(w, "gstored_slowlog_dropped_total", "Slow-query log lines dropped because the record marshal or sink write failed.", "counter", m.SlowLogDrops.Load())
	writeMetric(w, "gstored_queries_rejected_total", "Requests shed by admission control (HTTP 503), updates included.", "counter", m.Rejected.Load())
	writeMetric(w, "gstored_query_timeouts_total", "Requests canceled by the per-query deadline, updates included.", "counter", m.Timeouts.Load())
	writeMetric(w, "gstored_queries_inflight", "Admitted queries currently queued or running.", "gauge", inFlight)
	writeMetric(w, "gstored_query_seconds_total", "Wall time spent executing queries.", "counter", seconds(m.QueryNanos.Load()))
	writeMetric(w, "gstored_engine_executions_total", "Queries that actually ran the engine (cache misses and bypasses, singleflight leaders only).", "counter", m.EngineRuns.Load())
	writeMetric(w, "gstored_singleflight_waiters_total", "Queries coalesced onto a concurrent identical execution instead of running the engine.", "counter", m.Coalesced.Load())
	writeMetric(w, "gstored_early_terminations_total", "Unordered streaming executions whose remaining distributed work was cancelled once LIMIT+OFFSET rows were delivered.", "counter", m.EarlyStops.Load())

	writeMetric(w, "gstored_cache_hits_total", "Result-cache hits.", "counter", cache.Hits)
	writeMetric(w, "gstored_cache_misses_total", "Result-cache misses.", "counter", cache.Misses)
	writeMetric(w, "gstored_cache_evictions_total", "Result-cache LRU evictions.", "counter", cache.Evictions)
	writeMetric(w, "gstored_cache_bypass_total", "Results streamed uncached because they exceeded the cache row cap.", "counter", m.CacheBypass.Load())
	writeMetric(w, "gstored_cache_entries", "Result-cache resident entries.", "gauge", cache.Entries)
	writeMetric(w, "gstored_cache_flushes_total", "Result-cache flushes triggered by cluster epoch advances.", "counter", m.CacheFlushes.Load())

	writeMetric(w, "gstored_querylog_entries", "Distinct queries resident in the workload log.", "gauge", g.QueryLogEntries)
	writeMetric(w, "gstored_querylog_queries_total", "Queries observed by the workload log (evicted entries included).", "counter", g.QueryLogQueries)
	writeMetric(w, "gstored_advisor_runs_total", "Workload-weighted partition advisor evaluations.", "counter", m.AdvisorRuns.Load())
	writeMetric(w, "gstored_repartitions_total", "Online partition hot-swaps applied.", "counter", m.Repartitions.Load())
	writeMetric(w, "gstored_updates_total", "SPARQL Update requests applied successfully (no-op updates included).", "counter", m.Updates.Load())
	writeMetric(w, "gstored_triples_inserted_total", "Triples added by updates (set semantics: already-present inserts count nothing).", "counter", m.TriplesInserted.Load())
	writeMetric(w, "gstored_triples_deleted_total", "Triples removed by updates (set semantics: absent deletes count nothing).", "counter", m.TriplesDeleted.Load())
	writeMetric(w, "gstored_partition_epoch", "Current cluster generation; advances on each repartition and each data-changing update.", "gauge", g.Epoch)
	writeMetric(w, "gstored_sites", "Current fragment/site count.", "gauge", g.Sites)
	if len(g.SiteUp) > 0 {
		fmt.Fprintf(w, "# HELP gstored_site_up Whether the site answered the scrape's health probe (worker-hosted sites answer a real RPC).\n# TYPE gstored_site_up gauge\n")
		ids := make([]int, 0, len(g.SiteUp))
		for id := range g.SiteUp {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			v := 0
			if g.SiteUp[id] {
				v = 1
			}
			fmt.Fprintf(w, "gstored_site_up{site=\"%d\"} %d\n", id, v)
		}
	}

	stageNanos := [len(stageNames)]int64{
		m.CandidatesNanos.Load(),
		m.PartialNanos.Load(),
		m.LECNanos.Load(),
		m.AssemblyNanos.Load(),
	}
	fmt.Fprintf(w, "# HELP gstored_stage_seconds_total Engine time per paper stage.\n# TYPE gstored_stage_seconds_total counter\n")
	for i, name := range stageNames {
		fmt.Fprintf(w, "gstored_stage_seconds_total{stage=%q} %v\n", name, seconds(stageNanos[i]))
	}
	writeMetric(w, "gstored_shipment_bytes_total", "Simulated inter-site data shipment.", "counter", m.ShipmentBytes.Load())
	writeMetric(w, "gstored_messages_total", "Simulated inter-site messages (shipments and broadcasts).", "counter", m.Messages.Load())
	writeMetric(w, "gstored_estimated_comm_seconds_total", "Estimated communication time of the metered traffic under the cluster link model.", "counter", seconds(m.CommNanos.Load()))
	writeMetric(w, "gstored_partial_matches_total", "Local partial matches enumerated.", "counter", m.PartialMatches.Load())
	writeMetric(w, "gstored_matches_total", "Result rows produced by the engine.", "counter", m.Matches.Load())

	queryHists := make([]labeledHistogram, numOutcomes)
	for i := range m.QueryDurations {
		queryHists[i] = labeledHistogram{label: outcomeNames[i], h: &m.QueryDurations[i]}
	}
	writeHistograms(w, "gstored_query_duration_seconds",
		"Client-facing request latency (parse through last response byte) by how the request was answered.",
		"outcome", queryHists)
	stageHists := make([]labeledHistogram, len(stageNames))
	for i := range m.StageDurations {
		stageHists[i] = labeledHistogram{label: stageNames[i], h: &m.StageDurations[i]}
	}
	writeHistograms(w, "gstored_stage_duration_seconds",
		"Engine wall time per paper stage per executed (non-cached) query.",
		"stage", stageHists)

	writeMetric(w, "gstored_uptime_seconds", "Seconds since the server started.", "gauge", uptime.Seconds())
}
