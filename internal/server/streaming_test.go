package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"gstored"
)

// TestNegotiateMatrix pins Accept-header parsing: media ranges split on
// commas, parameters (q-values included) stripped, exact media-type
// match, first supported range wins, JSON default. The substring bug it
// replaces picked TSV whenever the header merely contained the TSV type.
func TestNegotiateMatrix(t *testing.T) {
	cases := []struct {
		accept  string
		format  string // ?format override, usually empty
		wantTSV bool
	}{
		{accept: "", wantTSV: false},
		{accept: ContentTypeTSV, wantTSV: true},
		{accept: ContentTypeJSON, wantTSV: false},
		// The q-param regression: JSON listed first must win even though
		// the raw header contains the TSV media type.
		{accept: "application/sparql-results+json, text/tab-separated-values;q=0.1", wantTSV: false},
		{accept: "text/tab-separated-values;q=0.9, application/sparql-results+json", wantTSV: true},
		{accept: "text/tab-separated-values; q=0.3", wantTSV: true},
		{accept: "application/json", wantTSV: false},
		{accept: "application/*", wantTSV: false},
		{accept: "*/*", wantTSV: false},
		{accept: "text/*", wantTSV: true},
		// Unsupported types fall through to the JSON default; a type that
		// merely shares a prefix with TSV must not match.
		{accept: "text/html, application/xhtml+xml", wantTSV: false},
		{accept: "text/tab-separated-values-extended", wantTSV: false},
		{accept: "TEXT/TAB-SEPARATED-VALUES", wantTSV: true},
		// Explicit ?format= override beats any Accept header.
		{accept: ContentTypeJSON, format: "tsv", wantTSV: true},
		{accept: ContentTypeTSV, format: "json", wantTSV: false},
	}
	for _, tc := range cases {
		target := "/sparql?query=x"
		if tc.format != "" {
			target += "&format=" + tc.format
		}
		req, _ := http.NewRequest("GET", target, nil)
		if tc.accept != "" {
			req.Header.Set("Accept", tc.accept)
		}
		ct, tsv := negotiate(req)
		if tsv != tc.wantTSV {
			t.Errorf("negotiate(Accept=%q, format=%q): tsv = %v, want %v", tc.accept, tc.format, tsv, tc.wantTSV)
		}
		wantCT := ContentTypeJSON
		if tc.wantTSV {
			wantCT = ContentTypeTSV
		}
		if ct != wantCT {
			t.Errorf("negotiate(Accept=%q): contentType = %q, want %q", tc.accept, ct, wantCT)
		}
	}
}

// TestTSVEscapesControlCharacters is the column-shift regression: a
// literal containing a raw tab, newline, and quote must serialize as its
// escaped N-Triples form on one line, leaving every later column in
// place.
func TestTSVEscapesControlCharacters(t *testing.T) {
	g := gstored.NewGraph()
	g.Add(gstored.IRI("http://ex/alice"), gstored.IRI("http://ex/note"), gstored.Literal("tab\there\nline\"quote"))
	g.AddIRIs("http://ex/alice", "http://ex/site", "http://ex/home")
	db, err := gstored.Open(g, gstored.Config{Sites: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, db, Config{})

	// The hazardous literal is in the FIRST column: if its tab or newline
	// leaked raw, ?x and ?site would shift right or onto another line.
	q := `SELECT ?n ?x ?site WHERE { ?x <http://ex/note> ?n . ?x <http://ex/site> ?site }`
	resp, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(q) + "&format=tsv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("TSV = %q: want header + 1 row, got %d lines", body, len(lines))
	}
	for i, line := range lines {
		if got := strings.Count(line, "\t"); got != 2 {
			t.Errorf("line %d %q has %d tabs, want 2", i, line, got)
		}
	}
	cells := strings.Split(lines[1], "\t")
	if want := `"tab\there\nline\"quote"`; cells[0] != want {
		t.Errorf("literal cell = %q, want %q", cells[0], want)
	}
	if cells[1] != "<http://ex/alice>" || cells[2] != "<http://ex/home>" {
		t.Errorf("later columns shifted: %q", cells[1:])
	}
}

// TestSingleflightCoalescesIdenticalQueries pins the acceptance
// criterion: N concurrent identical cold queries execute the engine
// exactly once — one leader reports MISS, the waiters COALESCED (or HIT
// if they arrive after the leader cached) — and every client still gets
// the full result.
func TestSingleflightCoalescesIdenticalQueries(t *testing.T) {
	s, ts := newTestServer(t, testDB(t), Config{Workers: 1, MaxInFlight: 32})

	// Park the scheduler's only worker so the leader's engine run cannot
	// start; the remaining identical queries must pile onto its flight.
	started := make(chan struct{})
	release := make(chan struct{})
	go s.sched.Run(context.Background(), func(context.Context) error {
		close(started)
		<-release
		return nil
	})
	<-started

	const n = 6
	type reply struct {
		state    string
		bindings int
		err      error
	}
	replies := make(chan reply, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, doc := getJSONc(ts.URL, knowsChain)
			if resp == nil {
				replies <- reply{err: fmt.Errorf("request failed")}
				return
			}
			replies <- reply{state: resp.Header.Get("X-Cache"), bindings: len(doc.Results.Bindings)}
		}()
	}

	// All requests are in: 1 leader (queued behind the parked worker) and
	// n-1 waiters on its flight. Coalesced counts the waiters as they
	// join, so once it reaches n-1 the engine can safely run.
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.Coalesced.Load() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d waiters coalesced", s.metrics.Coalesced.Load(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	states := map[string]int{}
	for i := 0; i < n; i++ {
		rp := <-replies
		if rp.err != nil {
			t.Fatal(rp.err)
		}
		if rp.bindings != 1 {
			t.Errorf("coalesced reply had %d bindings, want 1", rp.bindings)
		}
		states[rp.state]++
	}
	if states["MISS"] != 1 {
		t.Errorf("X-Cache states = %v, want exactly one MISS", states)
	}
	if states["COALESCED"]+states["HIT"] != n-1 {
		t.Errorf("X-Cache states = %v, want %d COALESCED/HIT", states, n-1)
	}
	if runs := s.metrics.EngineRuns.Load(); runs != 1 {
		t.Errorf("engine executed %d times for %d identical queries, want 1", runs, n)
	}
	if waiters := s.metrics.Coalesced.Load(); waiters != n-1 {
		t.Errorf("coalesced waiters = %d, want %d", waiters, n-1)
	}

	// A later identical query is a plain cache hit, not a new flight.
	resp, _ := getJSONc(ts.URL, knowsChain)
	if resp.Header.Get("X-Cache") != "HIT" {
		t.Errorf("post-flight request: X-Cache = %q, want HIT", resp.Header.Get("X-Cache"))
	}
}

// TestSingleflightSurvivesLeaderDisconnect pins the detached-execution
// rule: once a waiter has coalesced onto a flight, the leader's client
// hanging up must not cancel the shared engine run — the waiter still
// gets the full result.
func TestSingleflightSurvivesLeaderDisconnect(t *testing.T) {
	s, ts := newTestServer(t, testDB(t), Config{Workers: 1, MaxInFlight: 32})

	// Park the only worker so the leader's engine run cannot start yet.
	started := make(chan struct{})
	release := make(chan struct{})
	go s.sched.Run(context.Background(), func(context.Context) error {
		close(started)
		<-release
		return nil
	})
	<-started

	// Leader request on a cancelable context.
	leaderCtx, leaderCancel := context.WithCancel(context.Background())
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		req, _ := http.NewRequestWithContext(leaderCtx, "GET",
			ts.URL+"/sparql?query="+url.QueryEscape(knowsChain), nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	// Wait until the flight exists, then attach one waiter.
	deadline := time.Now().Add(5 * time.Second)
	flightCount := func() int {
		s.flights.mu.Lock()
		defer s.flights.mu.Unlock()
		return len(s.flights.m)
	}
	for flightCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never opened a flight")
		}
		time.Sleep(time.Millisecond)
	}
	waiterReply := make(chan reply1, 1)
	go func() {
		resp, doc := getJSONc(ts.URL, knowsChain)
		if resp == nil {
			waiterReply <- reply1{err: fmt.Errorf("waiter request failed")}
			return
		}
		waiterReply <- reply1{state: resp.Header.Get("X-Cache"), bindings: len(doc.Results.Bindings)}
	}()
	for s.metrics.Coalesced.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never coalesced")
		}
		time.Sleep(time.Millisecond)
	}

	// Leader hangs up; give the cancellation a moment to propagate, then
	// let the engine run.
	leaderCancel()
	<-leaderDone
	time.Sleep(20 * time.Millisecond)
	close(release)

	rp := <-waiterReply
	if rp.err != nil {
		t.Fatal(rp.err)
	}
	if rp.state != "COALESCED" && rp.state != "HIT" {
		t.Errorf("waiter X-Cache = %q, want COALESCED or HIT", rp.state)
	}
	if rp.bindings != 1 {
		t.Errorf("waiter got %d bindings, want 1 (leader disconnect canceled the shared run?)", rp.bindings)
	}
	if runs := s.metrics.EngineRuns.Load(); runs != 1 {
		t.Errorf("engine runs = %d, want 1", runs)
	}
}

type reply1 struct {
	state    string
	bindings int
	err      error
}

// getJSONc is getJSON without the testing.T plumbing, for concurrent use.
func getJSONc(base, query string) (*http.Response, sparqlJSON) {
	var doc sparqlJSON
	resp, err := http.Get(base + "/sparql?query=" + url.QueryEscape(query))
	if err != nil {
		return nil, doc
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK {
		_ = json.Unmarshal(body, &doc)
	}
	return resp, doc
}

// TestCacheBypassOversizedResult pins the row cap: a result larger than
// CacheMaxRows streams to the client (X-Cache: BYPASS), is not stored,
// and therefore re-executes — while a result at the cap is cached.
func TestCacheBypassOversizedResult(t *testing.T) {
	db := testDB(t) // the knows cycle has 3 rows for {?x knows ?y}
	s, ts := newTestServer(t, db, Config{CacheMaxRows: 2})

	big := `SELECT ?x ?y WHERE { ?x <http://ex/knows> ?y }`
	for i := 0; i < 2; i++ {
		resp, doc := getJSONc(ts.URL, big)
		if got := resp.Header.Get("X-Cache"); got != "BYPASS" {
			t.Fatalf("request %d: X-Cache = %q, want BYPASS", i, got)
		}
		if len(doc.Results.Bindings) != 3 {
			t.Fatalf("request %d: got %d bindings, want 3", i, len(doc.Results.Bindings))
		}
	}
	if st := s.CacheStats(); st.Entries != 0 {
		t.Errorf("oversized result was cached: %+v", st)
	}
	if n := s.metrics.EngineRuns.Load(); n != 2 {
		t.Errorf("engine runs = %d, want 2 (bypass never caches)", n)
	}
	if n := s.metrics.CacheBypass.Load(); n != 2 {
		t.Errorf("cache bypasses = %d, want 2", n)
	}

	// A query at the cap (1 row <= 2) is admitted and hits next time.
	small := knowsChain
	if resp, _ := getJSONc(ts.URL, small); resp.Header.Get("X-Cache") != "MISS" {
		t.Fatal("small query should miss first")
	}
	if resp, _ := getJSONc(ts.URL, small); resp.Header.Get("X-Cache") != "HIT" {
		t.Error("small query should hit second")
	}
}

// TestStreamingEmptyAndUnboundJSON exercises the incremental JSON writer
// on its edge shapes: zero rows must still produce a well-formed
// document, and unbound variables are omitted from their binding.
func TestStreamingEmptyAndUnboundJSON(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), Config{})
	resp, doc := getJSON(t, ts.URL, `SELECT ?x WHERE { ?x <http://ex/knows> <http://ex/nobody> }`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(doc.Head.Vars) != 1 || doc.Head.Vars[0] != "x" {
		t.Errorf("vars = %v", doc.Head.Vars)
	}
	if len(doc.Results.Bindings) != 0 {
		t.Errorf("bindings = %v, want none", doc.Results.Bindings)
	}
}

// TestConcurrentMixedQueriesUnderStreaming hammers the new handler path
// from many goroutines mixing hits, misses, bypasses and coalesced
// waiters; run under -race in CI it pins the pipeline's thread safety.
func TestConcurrentMixedQueriesUnderStreaming(t *testing.T) {
	s, ts := newTestServer(t, testDB(t), Config{CacheMaxRows: 2})
	queries := []string{
		knowsChain,
		`SELECT ?x ?y WHERE { ?x <http://ex/knows> ?y }`, // 3 rows: bypass
		`SELECT ?n WHERE { ?c <http://ex/name> ?n }`,
	}
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, _ := getJSONc(ts.URL, queries[(c+i)%len(queries)])
				if resp == nil || resp.StatusCode != http.StatusOK {
					t.Errorf("client %d request %d failed", c, i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if errs := s.metrics.Errors.Load(); errs != 0 {
		t.Errorf("errors = %d, want 0", errs)
	}
}
