package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"gstored/internal/engine"
	"gstored/internal/query"
)

// TestHealthzSiteTable checks the per-site table: one row per site with
// address, epoch, fragment count, up flag, and a heartbeat stamped by
// the probe itself.
func TestHealthzSiteTable(t *testing.T) {
	db := testDB(t)
	_, ts := newTestServer(t, db, Config{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Status    string       `json:"status"`
		Epoch     uint64       `json:"epoch"`
		SiteTable []healthSite `json:"site_table"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" {
		t.Errorf("status = %q", body.Status)
	}
	if len(body.SiteTable) != 3 {
		t.Fatalf("site table has %d rows, want 3", len(body.SiteTable))
	}
	for i, row := range body.SiteTable {
		if row.Site != i || !row.Up || row.Addr != "in-process" || row.Epoch != body.Epoch {
			t.Errorf("row %d = %+v", i, row)
		}
		if row.Fragments != 1 {
			t.Errorf("row %d fragments = %d, want 1 (each in-process site hosts one)", i, row.Fragments)
		}
		beat, err := time.Parse(time.RFC3339Nano, row.LastHeartbeat)
		if err != nil || time.Since(beat) > time.Minute {
			t.Errorf("row %d heartbeat %q (%v)", i, row.LastHeartbeat, err)
		}
	}
}

// TestMetricsSiteUpGauge checks the per-site liveness gauge appears with
// one labeled sample per site.
func TestMetricsSiteUpGauge(t *testing.T) {
	db := testDB(t)
	_, ts := newTestServer(t, db, Config{})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(b)
	for _, want := range []string{
		`gstored_site_up{site="0"} 1`,
		`gstored_site_up{site="1"} 1`,
		`gstored_site_up{site="2"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSyncEpochDecaysQueryLog: when the server notices an epoch advance
// (here via repartition), the workload log's crossing statistics age so
// the advisor is not weighted by the dead layout.
func TestSyncEpochDecaysQueryLog(t *testing.T) {
	db := testDB(t)
	s, _ := newTestServer(t, db, Config{})

	q, err := db.Parse(`SELECT ?x WHERE { ?x <http://ex/knows> ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	s.qlog.Observe("k", "q", (*query.Graph)(q), engine.Stats{NumCrossingMatches: 8, NumPartialMatches: 8, TotalShipment: 800})
	if got := s.qlog.Snapshot().CrossingMatches; got != 8 {
		t.Fatalf("pre-decay crossing = %d", got)
	}

	a, err := db.PlanPartition("hash", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Repartition(a); err != nil {
		t.Fatal(err)
	}
	// Any served request syncs the epoch; healthz does not, so use the
	// query path.
	if s.syncEpoch() != db.Epoch() {
		t.Fatal("epoch did not sync")
	}
	snap := s.qlog.Snapshot()
	if snap.CrossingMatches != 4 || snap.PartialMatches != 4 || snap.ShipmentBytes != 400 {
		t.Errorf("post-decay stats = %d/%d/%d, want 4/4/400", snap.CrossingMatches, snap.PartialMatches, snap.ShipmentBytes)
	}
	if snap.Queries != 1 {
		t.Errorf("frequency decayed: %d", snap.Queries)
	}
}
