package baselines

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"gstored/internal/fragment"
	"gstored/internal/paperexample"
	"gstored/internal/partition"
	"gstored/internal/query"
	"gstored/internal/rdf"
	"gstored/internal/store"
)

func paperDeployment(t *testing.T) (*paperexample.Example, *fragment.Distributed) {
	t.Helper()
	ex := paperexample.New()
	d, err := fragment.Build(ex.Store, ex.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	return ex, d
}

func systems(d *fragment.Distributed) []System {
	return []System{
		DREAM{Graph: d},
		S2RDF{Graph: d},
		CliqueSquare{Graph: d},
		S2X{Graph: d},
	}
}

func sortedKeys(rows [][]rdf.TermID) []string {
	keys := make([]string, 0, len(rows))
	for _, r := range rows {
		keys = append(keys, fmt.Sprint(r))
	}
	sort.Strings(keys)
	return keys
}

func centralized(st *store.Store, q *query.Graph) []string {
	var keys []string
	for _, b := range st.Match(q) {
		keys = append(keys, fmt.Sprint(b.Vars))
	}
	sort.Strings(keys)
	return keys
}

// TestAllBaselinesPaperQuery: every comparator returns the centralized
// answer on the running example.
func TestAllBaselinesPaperQuery(t *testing.T) {
	ex, d := paperDeployment(t)
	want := centralized(ex.Store, ex.Query)
	for _, sys := range systems(d) {
		rows, stats, err := sys.Execute(ex.Query)
		if err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		if got := sortedKeys(rows); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%s:\n got %v\nwant %v", sys.Name(), got, want)
		}
		if stats.ReportedTime <= 0 || stats.Jobs == 0 {
			t.Errorf("%s: stats incomplete: %+v", sys.Name(), stats)
		}
	}
}

// TestCloudOverheadsCharged: cloud systems must charge fixed overheads
// even on a tiny selective query — the Fig. 12 shape driver.
func TestCloudOverheadsCharged(t *testing.T) {
	ex, d := paperDeployment(t)
	for _, sys := range systems(d) {
		rows, stats, err := sys.Execute(ex.Query)
		if err != nil {
			t.Fatal(err)
		}
		_ = rows
		switch sys.Name() {
		case "DREAM":
			if stats.SimulatedOverhead != 0 {
				t.Error("DREAM is not a cloud system; no overhead expected")
			}
		default:
			if stats.SimulatedOverhead < DefaultOverheads.Superstep {
				t.Errorf("%s overhead %v suspiciously low", sys.Name(), stats.SimulatedOverhead)
			}
		}
	}
}

func TestStarDecompose(t *testing.T) {
	ex, _ := paperDeployment(t)
	stars := starDecompose(ex.Query)
	// The Fig. 2 query decomposes into 2 stars: one centered on ?p1 or
	// ?p2 (whichever greedy picks first has 2 edges), covering all 4 edges.
	covered := map[int]bool{}
	for _, star := range stars {
		if len(star) == 0 {
			t.Fatal("empty star")
		}
		for _, ei := range star {
			if covered[ei] {
				t.Fatalf("edge %d covered twice", ei)
			}
			covered[ei] = true
		}
	}
	if len(covered) != ex.Query.NumEdges() {
		t.Fatalf("stars cover %d of %d edges", len(covered), ex.Query.NumEdges())
	}
	// Greedy tie-breaking yields 2 or 3 stars for the Fig. 2 query (the
	// optimum is 2: centers ?p1 and ?t); either is a valid decomposition.
	if len(stars) < 2 || len(stars) > 3 {
		t.Errorf("star count = %d, want 2-3 for the Fig. 2 query", len(stars))
	}
	// A pure star query decomposes into one star.
	d := rdf.NewDictionary()
	starQ := query.NewBuilder(d).
		Triple(query.Var("x"), query.IRI("a"), query.Var("p")).
		Triple(query.Var("x"), query.IRI("b"), query.Var("q")).
		MustBuild()
	if got := starDecompose(starQ); len(got) != 1 {
		t.Errorf("star query decomposed into %d stars", len(got))
	}
}

func TestS2XResourceExhaustion(t *testing.T) {
	ex, d := paperDeployment(t)
	sys := S2X{Graph: d, MaxCandidates: 1}
	_, _, err := sys.Execute(ex.Query)
	if _, ok := err.(ErrResourceExhausted); !ok {
		t.Errorf("expected ErrResourceExhausted, got %v", err)
	}
}

func TestScanPatternConstants(t *testing.T) {
	ex, d := paperDeployment(t)
	st := globalStore(d)
	// Edge 3 is p1-name->"Crispin Wright"@en: scan must return exactly one
	// row binding p1=001.
	rel, err := scanPattern(st, ex.Query, 3, "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.rows) != 1 {
		t.Fatalf("scan returned %d rows, want 1", len(rel.rows))
	}
	if rel.rows[0][2] != ex.V[1] { // vertex v3 (?p1) is column 2
		t.Errorf("bound %d, want 001", rel.rows[0][2])
	}
}

func TestJoinRelationsSharedColumns(t *testing.T) {
	a := &relation{cols: []int{0, 1}, rows: [][]rdf.TermID{{1, 2, 0}, {1, 3, 0}}}
	b := &relation{cols: []int{1, 2}, rows: [][]rdf.TermID{{0, 2, 9}, {0, 4, 8}}}
	out, err := joinRelations(a, b, 3, "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.rows) != 1 {
		t.Fatalf("join produced %d rows, want 1", len(out.rows))
	}
	if fmt.Sprint(out.rows[0]) != fmt.Sprint([]rdf.TermID{1, 2, 9}) {
		t.Errorf("row = %v", out.rows[0])
	}
	if fmt.Sprint(out.cols) != fmt.Sprint([]int{0, 1, 2}) {
		t.Errorf("cols = %v", out.cols)
	}
}

// TestBaselinesEqualCentralizedProperty: all four systems agree with the
// centralized store on random data (no parallel query edges — see the
// package comment's injectivity note).
func TestBaselinesEqualCentralizedProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := rdf.NewGraph()
		nv := 5 + r.Intn(10)
		ne := 10 + r.Intn(25)
		for i := 0; i < ne; i++ {
			g.AddIRIs(fmt.Sprintf("v%d", r.Intn(nv)), fmt.Sprintf("p%d", r.Intn(2)), fmt.Sprintf("v%d", r.Intn(nv)))
		}
		st := store.FromGraph(g)
		q := query.NewBuilder(g.Dict).
			Triple(query.Var("x"), query.IRI("p0"), query.Var("y")).
			Triple(query.Var("y"), query.IRI("p1"), query.Var("z")).
			Triple(query.Var("w"), query.IRI("p0"), query.Var("z")).
			MustBuild()
		want := centralized(st, q)
		a, err := partition.Hash{}.Partition(st, 3)
		if err != nil {
			return false
		}
		d, err := fragment.Build(st, a)
		if err != nil {
			return false
		}
		for _, sys := range systems(d) {
			rows, _, err := sys.Execute(q)
			if err != nil {
				return false
			}
			if fmt.Sprint(sortedKeys(rows)) != fmt.Sprint(want) {
				t.Logf("seed %d %s:\n got %v\nwant %v", seed, sys.Name(), sortedKeys(rows), want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOverheadsOrDefault(t *testing.T) {
	var zero Overheads
	if zero.orDefault() != DefaultOverheads {
		t.Error("zero Overheads should default")
	}
	custom := Overheads{SparkJob: 1}
	if custom.orDefault() != custom {
		t.Error("custom Overheads should pass through")
	}
}
