package baselines

import (
	"sync"
	"time"

	"gstored/internal/fragment"
	"gstored/internal/query"
	"gstored/internal/rdf"
	"gstored/internal/store"
)

// ---------------------------------------------------------------------------
// DREAM [7]: every site stores the entire RDF dataset in a centralized
// store (RDF-3X in the original); the query is decomposed into star
// subqueries, each answered in full at one site, and the coordinator joins
// the star results. Strong on selective queries (no partitioning to fight,
// no cloud overhead); drowns in intermediate results when a complex query
// decomposes into large stars.

// DREAM simulates the DREAM system over a distributed deployment.
type DREAM struct {
	Graph *fragment.Distributed
}

// Name implements System.
func (DREAM) Name() string { return "DREAM" }

// Execute implements System.
func (s DREAM) Execute(q *query.Graph) ([][]rdf.TermID, *Stats, error) {
	start := time.Now()
	st := globalStore(s.Graph)
	stats := &Stats{}
	stars := starDecompose(q)

	// Each star runs at its own site (full replica), in parallel.
	rels := make([]*relation, len(stars))
	errs := make([]error, len(stars))
	var wg sync.WaitGroup
	for i := range stars {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rels[i], _, errs[i] = evalEdgeSet(st, q, stars[i], "DREAM")
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	// Star results ship to the coordinator.
	width := rowWidth(q)
	for _, rel := range rels {
		stats.Shipment += int64(len(rel.rows) * 4 * len(rel.cols))
	}
	// Coordinator joins star results (adaptive planner joins smallest
	// first; we approximate by ascending size).
	rel := rels[0]
	rest := rels[1:]
	for len(rest) > 0 {
		best := 0
		for i := range rest {
			if len(rest[i].rows) < len(rest[best].rows) {
				best = i
			}
		}
		var err error
		rel, err = joinRelations(rel, rest[best], width, "DREAM")
		if err != nil {
			return nil, nil, err
		}
		rest = append(rest[:best], rest[best+1:]...)
	}
	rows := dedupRows(rel, q)
	stats.MeasuredTime = time.Since(start)
	stats.ReportedTime = stats.MeasuredTime
	stats.Jobs = len(stars)
	return rows, stats, nil
}

// ---------------------------------------------------------------------------
// S2RDF [20]: RDF vertically partitioned into per-predicate tables in
// Spark SQL; a BGP becomes a sequence of table scans and binary equality
// joins, each a Spark stage with scheduling overhead and a shuffle
// proportional to the intermediate size.

// S2RDF simulates S2RDF's vertical-partitioning SQL execution.
type S2RDF struct {
	Graph     *fragment.Distributed
	Overheads Overheads
}

// Name implements System.
func (S2RDF) Name() string { return "S2RDF" }

// Execute implements System.
func (s S2RDF) Execute(q *query.Graph) ([][]rdf.TermID, *Stats, error) {
	o := s.Overheads.orDefault()
	start := time.Now()
	st := globalStore(s.Graph)
	stats := &Stats{}

	ordered := connectedOrder(q, allEdges(q))
	rel, err := scanPattern(st, q, ordered[0], "S2RDF")
	if err != nil {
		return nil, nil, err
	}
	stats.Jobs = 1
	stats.Shipment += int64(len(rel.rows) * 12)
	shuffled := int64(len(rel.rows))
	for _, ei := range ordered[1:] {
		next, err := scanPattern(st, q, ei, "S2RDF")
		if err != nil {
			return nil, nil, err
		}
		stats.Shipment += int64(len(next.rows) * 12)
		rel, err = joinRelations(rel, next, rowWidth(q), "S2RDF")
		if err != nil {
			return nil, nil, err
		}
		stats.Jobs++
		stats.Shipment += int64(len(rel.rows) * 4 * len(rel.cols))
		shuffled += int64(len(next.rows)) + int64(len(rel.rows))
	}
	rows := dedupRows(rel, q)
	stats.MeasuredTime = time.Since(start)
	stats.SimulatedOverhead = time.Duration(stats.Jobs)*o.SparkJob +
		time.Duration(shuffled)*o.ShufflePerRow
	stats.ReportedTime = stats.MeasuredTime + stats.SimulatedOverhead
	return rows, stats, nil
}

// ---------------------------------------------------------------------------
// CliqueSquare [4]: queries become flat plans of n-ary (star) equality
// joins executed as MapReduce rounds — first one round evaluating every
// star, then logarithmically many rounds joining the star results.

// CliqueSquare simulates CliqueSquare's flat MapReduce plans.
type CliqueSquare struct {
	Graph     *fragment.Distributed
	Overheads Overheads
}

// Name implements System.
func (CliqueSquare) Name() string { return "CliqueSquare" }

// Execute implements System.
func (s CliqueSquare) Execute(q *query.Graph) ([][]rdf.TermID, *Stats, error) {
	o := s.Overheads.orDefault()
	start := time.Now()
	st := globalStore(s.Graph)
	stats := &Stats{}
	stars := starDecompose(q)

	// Round 1: all stars in parallel (one MR round, n-ary joins).
	rels := make([]*relation, len(stars))
	errs := make([]error, len(stars))
	var wg sync.WaitGroup
	for i := range stars {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rels[i], _, errs[i] = evalEdgeSet(st, q, stars[i], "CliqueSquare")
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	rounds := 1
	shuffled := int64(0)
	for _, rel := range rels {
		shuffled += int64(len(rel.rows))
		stats.Shipment += int64(len(rel.rows) * 4 * len(rel.cols))
	}
	// Then flat binary-tree rounds over star results.
	width := rowWidth(q)
	for len(rels) > 1 {
		var nextRels []*relation
		for i := 0; i < len(rels); i += 2 {
			if i+1 == len(rels) {
				nextRels = append(nextRels, rels[i])
				continue
			}
			j, err := joinRelations(rels[i], rels[i+1], width, "CliqueSquare")
			if err != nil {
				return nil, nil, err
			}
			shuffled += int64(len(j.rows))
			stats.Shipment += int64(len(j.rows) * 4 * len(j.cols))
			nextRels = append(nextRels, j)
		}
		rels = nextRels
		rounds++
	}
	rows := dedupRows(rels[0], q)
	stats.Jobs = rounds
	stats.MeasuredTime = time.Since(start)
	stats.SimulatedOverhead = time.Duration(rounds)*o.MapReduceJob +
		time.Duration(shuffled)*o.ShufflePerRow
	stats.ReportedTime = stats.MeasuredTime + stats.SimulatedOverhead
	return rows, stats, nil
}

// ---------------------------------------------------------------------------
// S2X [19]: GraphX vertex-centric matching — triple patterns are
// distributed to all vertices, vertices validate their candidacy with
// their neighbors over Pregel supersteps, then partial results are
// collected and merged.

// S2X simulates S2X's vertex-centric candidate validation.
type S2X struct {
	Graph     *fragment.Distributed
	Overheads Overheads
	// MaxCandidates aborts when the initial candidate sets exceed this
	// total (0 = maxIntermediateRows); this is how the real S2X runs out
	// of memory on LUBM 1B.
	MaxCandidates int
}

// Name implements System.
func (S2X) Name() string { return "S2X" }

// Execute implements System.
func (s S2X) Execute(q *query.Graph) ([][]rdf.TermID, *Stats, error) {
	o := s.Overheads.orDefault()
	start := time.Now()
	st := globalStore(s.Graph)
	stats := &Stats{}
	limit := s.MaxCandidates
	if limit == 0 {
		limit = maxIntermediateRows
	}

	// Superstep 0: every vertex checks its own triple-pattern candidacy.
	cand := make([]map[rdf.TermID]bool, len(q.Vertices))
	total := 0
	for qv := range q.Vertices {
		cand[qv] = make(map[rdf.TermID]bool)
		for _, u := range st.Candidates(q, qv) {
			cand[qv][u] = true
		}
		total += len(cand[qv])
	}
	if total > limit {
		return nil, nil, ErrResourceExhausted{System: "S2X", Rows: total}
	}
	supersteps := 1
	messages := int64(total)

	// Iterative neighbor validation to fixpoint: u stays a candidate for
	// qv only if every incident query edge has a supporting neighbor that
	// is itself a candidate.
	for changed := true; changed; {
		changed = false
		supersteps++
		for qv := range q.Vertices {
			for u := range cand[qv] {
				if !supported(st, q, cand, qv, u) {
					delete(cand[qv], u)
					changed = true
				}
			}
			messages += int64(len(cand[qv]))
		}
	}

	// Collect & merge: enumerate matches over the surviving candidates.
	var rows [][]rdf.TermID
	st.MatchFunc(q, store.MatchOptions{
		VertexFilter: func(qv int, u rdf.TermID) bool { return cand[qv][u] },
	}, func(b store.Binding) bool {
		rows = append(rows, append([]rdf.TermID(nil), b.Vars...))
		return true
	})
	stats.Shipment = messages * 8
	stats.Jobs = supersteps
	stats.MeasuredTime = time.Since(start)
	stats.SimulatedOverhead = time.Duration(supersteps)*o.Superstep + o.CollectMerge +
		time.Duration(messages)*o.ShufflePerRow
	stats.ReportedTime = stats.MeasuredTime + stats.SimulatedOverhead
	return rows, stats, nil
}

// supported reports whether u can still match qv given the current
// candidate sets: each incident query edge needs at least one adjacent
// data edge whose far endpoint remains a candidate.
func supported(st *store.Store, q *query.Graph, cand []map[rdf.TermID]bool, qv int, u rdf.TermID) bool {
	for _, e := range q.Edges {
		if e.From == qv {
			adj := st.Out(u)
			if !e.HasVarLabel() {
				adj = st.OutWith(u, e.Label)
			}
			ok := false
			for _, he := range adj {
				if cand[e.To][he.V] {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		if e.To == qv {
			adj := st.In(u)
			if !e.HasVarLabel() {
				adj = st.InWith(u, e.Label)
			}
			ok := false
			for _, he := range adj {
				if cand[e.From][he.V] {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
	}
	return true
}

func allEdges(q *query.Graph) []int {
	out := make([]int, len(q.Edges))
	for i := range out {
		out[i] = i
	}
	return out
}
