// Package baselines implements execution-model simulations of the four
// comparator systems of Section VIII-F — DREAM [7], S2X [19], S2RDF [20]
// and CliqueSquare [4]. Each system executes the real query over the real
// data under its characteristic execution model (replication + star
// decomposition, vertex-centric supersteps, vertical-partition scans and
// binary joins, flat n-ary star plans) and charges that model's overheads,
// so comparative *shapes* (who wins where, per Fig. 12) are reproduced
// without the original Hadoop/Spark stacks.
//
// Simulated overhead constants live in Overheads and are documented there;
// they model job launch and shuffle latencies of the cloud stacks, which
// dominate those systems on selective queries.
//
// Known semantic deviation: the relational evaluator used by the cloud
// baselines does not enforce Definition 3's injective multi-edge mapping
// between parallel query edges (neither do SQL-on-Hadoop systems); none of
// the benchmark queries use parallel edges.
package baselines

import (
	"fmt"
	"sort"
	"time"

	"gstored/internal/fragment"
	"gstored/internal/query"
	"gstored/internal/rdf"
	"gstored/internal/store"
)

// Stats describes one baseline execution.
type Stats struct {
	// MeasuredTime is the wall-clock compute time.
	MeasuredTime time.Duration
	// SimulatedOverhead charges the execution model's fixed costs (job
	// launches, supersteps, shuffles).
	SimulatedOverhead time.Duration
	// ReportedTime = MeasuredTime + SimulatedOverhead; the Fig. 12 metric.
	ReportedTime time.Duration
	// Shipment is the bytes moved between workers/coordinator.
	Shipment int64
	// Jobs counts Spark/MapReduce jobs or Pregel supersteps.
	Jobs int
}

// System is a comparator engine.
type System interface {
	Name() string
	// Execute returns result rows (bindings indexed by query variable).
	Execute(q *query.Graph) ([][]rdf.TermID, *Stats, error)
}

// Overheads models the fixed costs of the cloud stacks. Defaults are of
// the order reported for Hadoop/Spark job scheduling in [1]: hundreds of
// milliseconds per job — which is why the cloud systems lose on selective
// queries no matter the data size.
type Overheads struct {
	SparkJob      time.Duration // per S2RDF join stage
	MapReduceJob  time.Duration // per CliqueSquare MR round
	Superstep     time.Duration // per S2X Pregel superstep
	CollectMerge  time.Duration // S2X final result collection
	ShufflePerRow time.Duration // per intermediate row shuffled (cloud systems)
}

// DefaultOverheads is used when a zero Overheads is supplied.
var DefaultOverheads = Overheads{
	SparkJob:      150 * time.Millisecond,
	MapReduceJob:  400 * time.Millisecond,
	Superstep:     100 * time.Millisecond,
	CollectMerge:  200 * time.Millisecond,
	ShufflePerRow: 2 * time.Microsecond,
}

func (o Overheads) orDefault() Overheads {
	if o == (Overheads{}) {
		return DefaultOverheads
	}
	return o
}

// maxIntermediateRows aborts a baseline whose execution model materializes
// an unreasonable intermediate result (this is how S2X "fails to run all
// queries on LUBM 1B" in Section VIII-F).
const maxIntermediateRows = 4 << 20

// ErrResourceExhausted reports a baseline exceeding its intermediate
// result budget, mirroring the paper's "system X fails on dataset Y".
type ErrResourceExhausted struct {
	System string
	Rows   int
}

func (e ErrResourceExhausted) Error() string {
	return fmt.Sprintf("%s: intermediate result exceeded %d rows (%d)", e.System, maxIntermediateRows, e.Rows)
}

// ---------------------------------------------------------------------------
// Shared relational machinery.

// relation is a set of partial binding rows over the query's vertex and
// variable columns: row layout is [vertexBindings… varBindings…], width
// |V(Q)| + |Vars(Q)|, with rdf.NoTerm outside the bound column set.
type relation struct {
	cols []int // bound columns, sorted
	rows [][]rdf.TermID
}

func rowWidth(q *query.Graph) int { return len(q.Vertices) + len(q.Vars) }

// patternColumns lists the columns bound by one triple pattern.
func patternColumns(q *query.Graph, ei int) []int {
	e := q.Edges[ei]
	set := map[int]bool{e.From: true, e.To: true}
	if v := q.Vertices[e.From]; v.IsVar() {
		set[len(q.Vertices)+v.Var] = true
	}
	if v := q.Vertices[e.To]; v.IsVar() {
		set[len(q.Vertices)+v.Var] = true
	}
	if e.HasVarLabel() {
		set[len(q.Vertices)+e.LabelVar] = true
	}
	cols := make([]int, 0, len(set))
	for c := range set {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	return cols
}

// scanPattern materializes one triple pattern's bindings from st (the
// vertical-partition table scan of S2RDF; the paper calls this the
// filter-and-evaluate scan).
func scanPattern(st *store.Store, q *query.Graph, ei int, system string) (*relation, error) {
	e := q.Edges[ei]
	width := rowWidth(q)
	rel := &relation{cols: patternColumns(q, ei)}
	emit := func(t rdf.Triple) {
		if vf := q.Vertices[e.From]; !vf.IsVar() && vf.Const != t.S {
			return
		}
		if vt := q.Vertices[e.To]; !vt.IsVar() && vt.Const != t.O {
			return
		}
		if e.From == e.To && t.S != t.O {
			return
		}
		row := make([]rdf.TermID, width)
		row[e.From] = t.S
		row[e.To] = t.O
		if v := q.Vertices[e.From]; v.IsVar() {
			row[len(q.Vertices)+v.Var] = t.S
		}
		if v := q.Vertices[e.To]; v.IsVar() {
			row[len(q.Vertices)+v.Var] = t.O
		}
		if e.HasVarLabel() {
			row[len(q.Vertices)+e.LabelVar] = t.P
		}
		rel.rows = append(rel.rows, row)
	}
	if e.HasVarLabel() {
		for _, p := range st.Predicates() {
			for _, t := range st.TriplesWith(p) {
				emit(t)
			}
		}
	} else {
		for _, t := range st.TriplesWith(e.Label) {
			emit(t)
		}
	}
	if len(rel.rows) > maxIntermediateRows {
		return nil, ErrResourceExhausted{System: system, Rows: len(rel.rows)}
	}
	return rel, nil
}

// joinRelations hash-joins a and b on their shared columns (cartesian
// product if none — callers should order joins to avoid that).
func joinRelations(a, b *relation, width int, system string) (*relation, error) {
	shared := intersect(a.cols, b.cols)
	key := func(row []rdf.TermID) string {
		out := make([]byte, 0, len(shared)*5)
		for _, c := range shared {
			v := row[c]
			out = append(out, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ',')
		}
		return string(out)
	}
	index := make(map[string][][]rdf.TermID, len(b.rows))
	for _, row := range b.rows {
		k := key(row)
		index[k] = append(index[k], row)
	}
	out := &relation{cols: union(a.cols, b.cols)}
	for _, ra := range a.rows {
		for _, rb := range index[key(ra)] {
			merged := make([]rdf.TermID, width)
			copy(merged, ra)
			okRow := true
			for _, c := range b.cols {
				if merged[c] != rdf.NoTerm && merged[c] != rb[c] {
					okRow = false
					break
				}
				merged[c] = rb[c]
			}
			if okRow {
				out.rows = append(out.rows, merged)
				if len(out.rows) > maxIntermediateRows {
					return nil, ErrResourceExhausted{System: system, Rows: len(out.rows)}
				}
			}
		}
	}
	return out, nil
}

func intersect(a, b []int) []int {
	set := make(map[int]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	var out []int
	for _, x := range b {
		if set[x] {
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

func union(a, b []int) []int {
	set := make(map[int]bool, len(a)+len(b))
	for _, x := range a {
		set[x] = true
	}
	for _, x := range b {
		set[x] = true
	}
	out := make([]int, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}

// dedupRows removes duplicate rows (relational algebra is set-based;
// matching semantics key on the variable bindings).
func dedupRows(rel *relation, q *query.Graph) [][]rdf.TermID {
	seen := make(map[string]bool, len(rel.rows))
	var out [][]rdf.TermID
	for _, row := range rel.rows {
		vars := row[len(q.Vertices):]
		k := fmt.Sprint(vars)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, append([]rdf.TermID(nil), vars...))
	}
	return out
}

// starDecompose greedily covers the query edges with stars: repeatedly
// pick the vertex with the most uncovered incident edges and claim them.
// DREAM and CliqueSquare both decompose queries this way.
func starDecompose(q *query.Graph) [][]int {
	covered := make([]bool, len(q.Edges))
	var stars [][]int
	for remaining := len(q.Edges); remaining > 0; {
		bestV, bestCnt := -1, 0
		for v := range q.Vertices {
			cnt := 0
			for i, e := range q.Edges {
				if !covered[i] && (e.From == v || e.To == v) {
					cnt++
				}
			}
			if cnt > bestCnt {
				bestV, bestCnt = v, cnt
			}
		}
		var star []int
		for i, e := range q.Edges {
			if !covered[i] && (e.From == bestV || e.To == bestV) {
				covered[i] = true
				star = append(star, i)
				remaining--
			}
		}
		stars = append(stars, star)
	}
	return stars
}

// evalEdgeSet evaluates a set of query edges by scan + hash joins over st,
// joining in a connected order.
func evalEdgeSet(st *store.Store, q *query.Graph, edges []int, system string) (*relation, int, error) {
	if len(edges) == 0 {
		return &relation{}, 0, nil
	}
	ordered := connectedOrder(q, edges)
	rel, err := scanPattern(st, q, ordered[0], system)
	if err != nil {
		return nil, 0, err
	}
	joins := 0
	for _, ei := range ordered[1:] {
		next, err := scanPattern(st, q, ei, system)
		if err != nil {
			return nil, joins, err
		}
		rel, err = joinRelations(rel, next, rowWidth(q), system)
		if err != nil {
			return nil, joins, err
		}
		joins++
	}
	return rel, joins, nil
}

// connectedOrder orders the edge subset so each edge after the first
// shares a vertex with an earlier one when possible.
func connectedOrder(q *query.Graph, edges []int) []int {
	if len(edges) <= 1 {
		return edges
	}
	used := make([]bool, len(edges))
	bound := map[int]bool{}
	out := make([]int, 0, len(edges))
	take := func(i int) {
		used[i] = true
		e := q.Edges[edges[i]]
		bound[e.From] = true
		bound[e.To] = true
		out = append(out, edges[i])
	}
	take(0)
	for len(out) < len(edges) {
		picked := -1
		for i := range edges {
			if used[i] {
				continue
			}
			e := q.Edges[edges[i]]
			if bound[e.From] || bound[e.To] {
				picked = i
				break
			}
		}
		if picked == -1 {
			for i := range edges {
				if !used[i] {
					picked = i
					break
				}
			}
		}
		take(picked)
	}
	return out
}

// globalStore returns the whole-graph store of a distributed deployment
// (cloud systems and DREAM see the full dataset).
func globalStore(d *fragment.Distributed) *store.Store { return d.Global }
