package exp

import (
	"strings"
	"testing"

	"gstored/internal/engine"
	"gstored/internal/workload"
)

func smallLUBM() *workload.Dataset {
	return workload.NewLUBM(workload.LUBMConfig{Universities: 3})
}

func TestRunStageTableShapes(t *testing.T) {
	table, err := RunStageTable(smallLUBM(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 7 {
		t.Fatalf("%d rows", len(table.Rows))
	}
	byName := map[string]StageRow{}
	for _, r := range table.Rows {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Query, r.Err)
		}
		byName[r.Query] = r
	}
	// Paper shape: star queries do no distributed work.
	for _, star := range []string{"LQ2", "LQ4", "LQ5"} {
		s := byName[star].Stats
		if !s.StarFastPath {
			t.Errorf("%s should take the star fast path", star)
		}
		if s.LECShipment != 0 || s.CandidatesShipment != 0 || s.NumPartialMatches != 0 {
			t.Errorf("%s: star query did distributed work: %+v", star, s)
		}
	}
	// Complex queries do.
	for _, cq := range []string{"LQ1", "LQ6", "LQ7"} {
		s := byName[cq].Stats
		if s.StarFastPath {
			t.Errorf("%s misclassified as star", cq)
		}
		if s.NumPartialMatches == 0 {
			t.Errorf("%s produced no partial matches", cq)
		}
	}
	// LQ3 is empty; LQ7 is the biggest.
	if byName["LQ3"].Stats.NumMatches != 0 {
		t.Errorf("LQ3 matches = %d", byName["LQ3"].Stats.NumMatches)
	}
	if byName["LQ7"].Stats.NumMatches <= byName["LQ6"].Stats.NumMatches {
		t.Error("LQ7 should dwarf LQ6")
	}
	out := table.Render()
	if !strings.Contains(out, "LQ1") || !strings.Contains(out, "#Match") {
		t.Error("render missing expected content")
	}
}

func TestRunAblationOrdering(t *testing.T) {
	a, err := RunAblation(smallLUBM(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Queries) != 4 { // LQ1, LQ3, LQ6, LQ7 (the complex ones)
		t.Fatalf("ablation over %v", a.Queries)
	}
	for _, qn := range a.Queries {
		for _, m := range a.Modes {
			if a.Cells[qn][m].Err != nil {
				t.Fatalf("%s/%v: %v", qn, m, a.Cells[qn][m].Err)
			}
		}
		// Structural guarantee behind Fig. 9: pruning means LO never ships
		// more partial matches to the assembly than Basic does. (Total
		// shipment CAN grow on unselective queries — the paper notes the
		// feature exchange is extra communication.)
		basic := a.Cells[qn][engine.Basic]
		lo := a.Cells[qn][engine.LO]
		if lo.Stats.AssemblyShipment > basic.Stats.AssemblyShipment {
			t.Errorf("%s: LO assembly shipment %d > Basic %d",
				qn, lo.Stats.AssemblyShipment, basic.Stats.AssemblyShipment)
		}
		if lo.Stats.NumRetainedPartialMatches > basic.Stats.NumRetainedPartialMatches {
			t.Errorf("%s: LO retained more PMs than Basic", qn)
		}
	}
	if !strings.Contains(a.Render(), "gStoreD-Basic") {
		t.Error("render missing mode columns")
	}
}

func TestRunPartitionings(t *testing.T) {
	p, err := RunPartitionings(smallLUBM(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Strategies) != 3 {
		t.Fatalf("strategies = %v", p.Strategies)
	}
	// Table IV shape on LUBM: semantic hash beats plain hash.
	if p.Costs["semantic-hash"].Cost >= p.Costs["hash"].Cost {
		t.Errorf("semantic-hash cost %.3g should beat hash %.3g on LUBM",
			p.Costs["semantic-hash"].Cost, p.Costs["hash"].Cost)
	}
	for _, qn := range p.Queries {
		for _, s := range p.Strategies {
			if p.Cells[qn][s].Err != nil {
				t.Fatalf("%s/%s: %v", qn, s, p.Cells[qn][s].Err)
			}
		}
	}
	if !strings.Contains(p.Render(), "CostPartitioning") {
		t.Error("render missing costs")
	}
}

func TestRunScalability(t *testing.T) {
	s, err := RunScalability([]int{2, 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Triples) != 2 || s.Triples[1] <= s.Triples[0] {
		t.Fatalf("triples = %v", s.Triples)
	}
	if len(s.Queries) != 7 {
		t.Fatalf("queries = %v", s.Queries)
	}
	if !strings.Contains(s.Render(), "star queries") {
		t.Error("render missing star panel")
	}
}

func TestRunComparison(t *testing.T) {
	c, err := RunComparison(smallLUBM(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Systems) != 7 { // 4 baselines + 3 gStoreD partitionings
		t.Fatalf("systems = %v", c.Systems)
	}
	for _, qn := range c.Queries {
		for _, s := range c.Systems {
			if c.Cells[qn][s].Err != nil {
				t.Fatalf("%s/%s: %v", qn, s, c.Cells[qn][s].Err)
			}
		}
	}
	// Fig. 12 shape on selective queries: cloud systems pay job overheads
	// that gStoreD does not.
	lq5 := c.Cells["LQ5"]
	if lq5["S2RDF"].Time < lq5["gStoreD-hash"].Time {
		t.Errorf("S2RDF (%v) should not beat gStoreD (%v) on the selective star LQ5",
			lq5["S2RDF"].Time, lq5["gStoreD-hash"].Time)
	}
	if lq5["CliqueSquare"].Time < lq5["gStoreD-hash"].Time {
		t.Error("CliqueSquare should not beat gStoreD on LQ5")
	}
	if !strings.Contains(c.Render(), "DREAM") {
		t.Error("render missing systems")
	}
}
