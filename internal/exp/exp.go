// Package exp is the experiment harness: one runner per table and figure
// of the paper's evaluation (Section VIII), each producing the same rows
// or series the paper reports, rendered as aligned text tables.
//
// The per-experiment index lives in DESIGN.md; EXPERIMENTS.md records
// measured outputs against the paper's.
package exp

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"gstored/internal/baselines"
	"gstored/internal/engine"
	"gstored/internal/fragment"
	"gstored/internal/partition"
	"gstored/internal/store"
	"gstored/internal/workload"
)

// DefaultSites is the paper's cluster size.
const DefaultSites = 12

// buildEngine partitions ds with the strategy and returns an engine.
func buildEngine(ds *workload.Dataset, strat partition.Strategy, sites int) (*engine.Engine, *fragment.Distributed, error) {
	st := store.FromGraph(ds.Graph)
	d, err := fragment.BuildWith(st, strat, sites)
	if err != nil {
		return nil, nil, err
	}
	return engine.New(d), d, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000.0 }
func kb(b int64) float64         { return float64(b) / 1024.0 }

// ---------------------------------------------------------------------------
// Tables I-III: evaluation of each stage.

// StageRow is one benchmark query's stage breakdown.
type StageRow struct {
	Query     string
	Shape     string
	Selective bool
	Stats     engine.Stats
	Err       error
}

// StageTable reproduces Table I/II/III for one dataset.
type StageTable struct {
	Dataset string
	Sites   int
	Rows    []StageRow
}

// RunStageTable evaluates every benchmark query of ds under the full
// system (hash partitioning, the paper's default) and collects per-stage
// statistics.
func RunStageTable(ds *workload.Dataset, sites int) (*StageTable, error) {
	eng, _, err := buildEngine(ds, partition.Hash{}, sites)
	if err != nil {
		return nil, err
	}
	t := &StageTable{Dataset: ds.Name, Sites: sites}
	for _, bq := range ds.Queries {
		q, err := bq.Parse(ds.Graph.Dict)
		if err != nil {
			return nil, err
		}
		res, err := eng.Execute(q, engine.Config{Mode: engine.Full})
		row := StageRow{Query: bq.Name, Shape: bq.Shape, Selective: bq.Selective, Err: err}
		if err == nil {
			row.Stats = res.Stats
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Render formats the table with the paper's column structure.
func (t *StageTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Evaluation of Each Stage on %s (%d sites)\n", t.Dataset, t.Sites)
	fmt.Fprintf(&b, "%-5s %-4s %-9s | %9s %9s | %9s | %9s %9s | %9s %9s | %9s | %8s %8s %8s\n",
		"Query", "Sel", "Shape",
		"CandTime", "CandKB", "LPMTime", "LECTime", "LECKB", "AsmTime", "AsmKB", "Total",
		"#LPM", "#Cross", "#Match")
	for _, r := range t.Rows {
		if r.Err != nil {
			fmt.Fprintf(&b, "%-5s ERROR: %v\n", r.Query, r.Err)
			continue
		}
		sel := ""
		if r.Selective {
			sel = "*"
		}
		s := r.Stats
		fmt.Fprintf(&b, "%-5s %-4s %-9s | %9.1f %9.1f | %9.1f | %9.1f %9.1f | %9.1f %9.1f | %9.1f | %8d %8d %8d\n",
			r.Query, sel, r.Shape,
			ms(s.CandidatesTime), kb(s.CandidatesShipment),
			ms(s.PartialTime),
			ms(s.LECTime), kb(s.LECShipment),
			ms(s.AssemblyTime), kb(s.AssemblyShipment),
			ms(s.TotalTime),
			s.NumPartialMatches, s.NumCrossingMatches, s.NumMatches)
	}
	b.WriteString("Sel * = query contains selective triple patterns (paper's checkmark column).\n")
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig. 9: evaluation of the different optimizations (ablation).

// AblationCell is one (query, mode) measurement.
type AblationCell struct {
	Time     time.Duration
	Shipment int64
	Stats    engine.Stats
	Err      error
}

// Ablation reproduces Fig. 9 for one dataset: response time per non-star
// query under the four engine modes.
type Ablation struct {
	Dataset string
	Queries []string
	Modes   []engine.Mode
	Cells   map[string]map[engine.Mode]AblationCell
}

// RunAblation executes every complex benchmark query of ds under all four
// modes (star queries bypass the optimizations, as in the paper).
func RunAblation(ds *workload.Dataset, sites int) (*Ablation, error) {
	eng, _, err := buildEngine(ds, partition.Hash{}, sites)
	if err != nil {
		return nil, err
	}
	a := &Ablation{
		Dataset: ds.Name,
		Modes:   []engine.Mode{engine.Basic, engine.LA, engine.LO, engine.Full},
		Cells:   map[string]map[engine.Mode]AblationCell{},
	}
	for _, bq := range ds.Queries {
		if bq.Shape != workload.ShapeComplex {
			continue
		}
		q, err := bq.Parse(ds.Graph.Dict)
		if err != nil {
			return nil, err
		}
		a.Queries = append(a.Queries, bq.Name)
		a.Cells[bq.Name] = map[engine.Mode]AblationCell{}
		for _, mode := range a.Modes {
			res, err := eng.Execute(q, engine.Config{Mode: mode})
			cell := AblationCell{Err: err}
			if err == nil {
				cell.Time = res.Stats.TotalTime
				cell.Shipment = res.Stats.TotalShipment
				cell.Stats = res.Stats
			}
			a.Cells[bq.Name][mode] = cell
		}
	}
	return a, nil
}

// Render formats the ablation like Fig. 9's grouped bars.
func (a *Ablation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Evaluation of Different Optimizations on %s (response time, ms)\n", a.Dataset)
	fmt.Fprintf(&b, "%-6s", "Query")
	for _, m := range a.Modes {
		fmt.Fprintf(&b, " %14s", m)
	}
	b.WriteString("\n")
	for _, qn := range a.Queries {
		fmt.Fprintf(&b, "%-6s", qn)
		for _, m := range a.Modes {
			c := a.Cells[qn][m]
			if c.Err != nil {
				fmt.Fprintf(&b, " %14s", "FAIL")
				continue
			}
			fmt.Fprintf(&b, " %14.1f", ms(c.Time))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table IV + Fig. 10: partitioning strategies.

// PartitioningCell is one (strategy, query) measurement.
type PartitioningCell struct {
	Time        time.Duration
	LECShipment int64
	Err         error
}

// Partitionings reproduces Table IV (costs) and Fig. 10 (per-query
// evaluation under each strategy).
type Partitionings struct {
	Dataset    string
	Strategies []string
	Costs      map[string]partition.CostBreakdown
	Queries    []string
	Cells      map[string]map[string]PartitioningCell
}

// RunPartitionings evaluates hash, semantic-hash and METIS partitionings
// of ds: their Section VII costs and the full system's behaviour on the
// complex queries.
func RunPartitionings(ds *workload.Dataset, sites int) (*Partitionings, error) {
	p := &Partitionings{
		Dataset: ds.Name,
		Costs:   map[string]partition.CostBreakdown{},
		Cells:   map[string]map[string]PartitioningCell{},
	}
	st := store.FromGraph(ds.Graph)
	for _, strat := range []partition.Strategy{partition.Hash{}, partition.SemanticHash{}, partition.Metis{}} {
		p.Strategies = append(p.Strategies, strat.Name())
		a, err := strat.Partition(st, sites)
		if err != nil {
			return nil, err
		}
		p.Costs[strat.Name()] = partition.Cost(st, a)
		d, err := fragment.Build(st, a)
		if err != nil {
			return nil, err
		}
		eng := engine.New(d)
		for _, bq := range ds.Queries {
			if bq.Shape != workload.ShapeComplex {
				continue
			}
			q, err := bq.Parse(ds.Graph.Dict)
			if err != nil {
				return nil, err
			}
			if p.Cells[bq.Name] == nil {
				p.Cells[bq.Name] = map[string]PartitioningCell{}
				p.Queries = append(p.Queries, bq.Name)
			}
			res, err := eng.Execute(q, engine.Config{Mode: engine.Full})
			cell := PartitioningCell{Err: err}
			if err == nil {
				cell.Time = res.Stats.TotalTime
				cell.LECShipment = res.Stats.LECShipment
			}
			p.Cells[bq.Name][strat.Name()] = cell
		}
	}
	sort.Strings(p.Queries)
	return p, nil
}

// RenderCosts formats the Table IV rows.
func (p *Partitionings) RenderCosts() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CostPartitioning on %s\n", p.Dataset)
	for _, s := range p.Strategies {
		c := p.Costs[s]
		fmt.Fprintf(&b, "%-14s cost=%.3g  E_F(V)=%.3g  maxFragEdges=%d  crossing=%d\n",
			s, c.Cost, c.EV, c.MaxFragmentEdges, c.NumCrossing)
	}
	return b.String()
}

// Render formats the Fig. 10 series.
func (p *Partitionings) Render() string {
	var b strings.Builder
	b.WriteString(p.RenderCosts())
	fmt.Fprintf(&b, "Evaluation under each partitioning (time ms / LEC shipment KB)\n%-6s", "Query")
	for _, s := range p.Strategies {
		fmt.Fprintf(&b, " %22s", s)
	}
	b.WriteString("\n")
	for _, qn := range p.Queries {
		fmt.Fprintf(&b, "%-6s", qn)
		for _, s := range p.Strategies {
			c := p.Cells[qn][s]
			if c.Err != nil {
				fmt.Fprintf(&b, " %22s", "FAIL")
				continue
			}
			fmt.Fprintf(&b, " %12.1f/%9.1f", ms(c.Time), kb(c.LECShipment))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig. 11: scalability.

// Scalability reproduces Fig. 11: response time per query across dataset
// scales.
type Scalability struct {
	Scales  []int // universities
	Triples []int
	Queries []string
	Shapes  map[string]string
	// Times[query][i] is the response time at Scales[i].
	Times map[string][]time.Duration
}

// RunScalability evaluates the LUBM benchmark at increasing scales.
func RunScalability(scales []int, sites int) (*Scalability, error) {
	s := &Scalability{Scales: scales, Times: map[string][]time.Duration{}, Shapes: map[string]string{}}
	for _, sc := range scales {
		ds := workload.NewLUBM(workload.LUBMConfig{Universities: sc})
		s.Triples = append(s.Triples, ds.Graph.Len())
		eng, _, err := buildEngine(ds, partition.Hash{}, sites)
		if err != nil {
			return nil, err
		}
		for _, bq := range ds.Queries {
			q, err := bq.Parse(ds.Graph.Dict)
			if err != nil {
				return nil, err
			}
			res, err := eng.Execute(q, engine.Config{Mode: engine.Full})
			if err != nil {
				return nil, err
			}
			if _, ok := s.Times[bq.Name]; !ok {
				s.Queries = append(s.Queries, bq.Name)
				s.Shapes[bq.Name] = bq.Shape
			}
			s.Times[bq.Name] = append(s.Times[bq.Name], res.Stats.TotalTime)
		}
	}
	return s, nil
}

// Render formats the two Fig. 11 panels (star vs other queries).
func (s *Scalability) Render() string {
	var b strings.Builder
	b.WriteString("Scalability on LUBM (response time, ms)\n")
	fmt.Fprintf(&b, "%-7s", "Scale")
	for i, sc := range s.Scales {
		fmt.Fprintf(&b, " %7du(%6dt)", sc, s.Triples[i])
	}
	b.WriteString("\n")
	for _, panel := range []string{workload.ShapeStar, workload.ShapeComplex} {
		fmt.Fprintf(&b, "-- %s queries --\n", panel)
		for _, qn := range s.Queries {
			if s.Shapes[qn] != panel {
				continue
			}
			fmt.Fprintf(&b, "%-7s", qn)
			for _, d := range s.Times[qn] {
				fmt.Fprintf(&b, " %16.1f", ms(d))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig. 12: online performance comparison.

// ComparisonCell is one (system, query) measurement.
type ComparisonCell struct {
	Time time.Duration
	Err  error
}

// Comparison reproduces Fig. 12 for one dataset: gStoreD over each
// partitioning versus DREAM, S2RDF, CliqueSquare and S2X.
type Comparison struct {
	Dataset string
	Systems []string
	Queries []string
	Cells   map[string]map[string]ComparisonCell
}

// RunComparison executes every benchmark query of ds on every system.
func RunComparison(ds *workload.Dataset, sites int) (*Comparison, error) {
	c := &Comparison{Dataset: ds.Name, Cells: map[string]map[string]ComparisonCell{}}
	st := store.FromGraph(ds.Graph)

	type sysFn struct {
		name string
		run  func(bq workload.BenchQuery) (time.Duration, error)
	}
	var systems []sysFn

	// The comparators need a deployment only for the global store.
	hashAssign, err := (partition.Hash{}).Partition(st, sites)
	if err != nil {
		return nil, err
	}
	hashDist, err := fragment.Build(st, hashAssign)
	if err != nil {
		return nil, err
	}
	for _, base := range []baselines.System{
		baselines.DREAM{Graph: hashDist},
		baselines.S2RDF{Graph: hashDist},
		baselines.CliqueSquare{Graph: hashDist},
		baselines.S2X{Graph: hashDist},
	} {
		base := base
		systems = append(systems, sysFn{name: base.Name(), run: func(bq workload.BenchQuery) (time.Duration, error) {
			q, err := bq.Parse(ds.Graph.Dict)
			if err != nil {
				return 0, err
			}
			_, stats, err := base.Execute(q)
			if err != nil {
				return 0, err
			}
			return stats.ReportedTime, nil
		}})
	}
	for _, strat := range []partition.Strategy{partition.Hash{}, partition.SemanticHash{}, partition.Metis{}} {
		d, err := fragment.BuildWith(st, strat, sites)
		if err != nil {
			return nil, err
		}
		eng := engine.New(d)
		systems = append(systems, sysFn{name: "gStoreD-" + strat.Name(), run: func(bq workload.BenchQuery) (time.Duration, error) {
			q, err := bq.Parse(ds.Graph.Dict)
			if err != nil {
				return 0, err
			}
			res, err := eng.Execute(q, engine.Config{Mode: engine.Full})
			if err != nil {
				return 0, err
			}
			return res.Stats.TotalTime, nil
		}})
	}

	for _, s := range systems {
		c.Systems = append(c.Systems, s.name)
	}
	for _, bq := range ds.Queries {
		c.Queries = append(c.Queries, bq.Name)
		c.Cells[bq.Name] = map[string]ComparisonCell{}
		for _, s := range systems {
			d, err := s.run(bq)
			c.Cells[bq.Name][s.name] = ComparisonCell{Time: d, Err: err}
		}
	}
	return c, nil
}

// Render formats the Fig. 12 panel for the dataset.
func (c *Comparison) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Online Performance Comparison on %s (reported time, ms)\n", c.Dataset)
	fmt.Fprintf(&b, "%-6s", "Query")
	for _, s := range c.Systems {
		fmt.Fprintf(&b, " %22s", s)
	}
	b.WriteString("\n")
	for _, qn := range c.Queries {
		fmt.Fprintf(&b, "%-6s", qn)
		for _, s := range c.Systems {
			cell := c.Cells[qn][s]
			if cell.Err != nil {
				fmt.Fprintf(&b, " %22s", "FAIL")
				continue
			}
			fmt.Fprintf(&b, " %22.1f", ms(cell.Time))
		}
		b.WriteString("\n")
	}
	return b.String()
}
